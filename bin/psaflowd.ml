(* psaflowd - serve psaflow flows over HTTP/JSON.

   A thin cmdliner shell around Serve.Server: parse flags into a
   Serve.Server.config, apply the process-wide knobs the CLI also has
   (--jobs, --cache), run until SIGTERM/SIGINT, exit with the drain
   status. *)

open Cmdliner

let socket_arg =
  let doc =
    "Listen on a Unix-domain socket at $(docv). The default; an existing \
     socket file at the path is replaced, and the file is removed on a \
     clean shutdown."
  in
  Arg.(
    value & opt string "psaflowd.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc =
    "Listen on TCP 127.0.0.1:$(docv) instead of a Unix socket. The daemon \
     never binds a non-loopback address."
  in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let jobs_arg =
  let doc =
    "Number of domains for parallel flow execution, shared by every \
     in-flight request. Defaults to the recommended domain count; values \
     below 2 are raised to 2 so request futures never run inline in the \
     accept loop."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let cache_arg =
  let doc =
    "Directory of the persistent evaluation cache shared by all requests \
     (this is what makes repeat requests cache splices), or $(b,off). \
     Default $(b,.psa-cache)."
  in
  Arg.(value & opt string ".psa-cache" & info [ "cache" ] ~docv:"DIR|off" ~doc)

let ledger_arg =
  let doc =
    "Directory of the persistent run ledger; each finished request appends \
     one record with kind $(b,serve), or $(b,off). Default $(b,.psa-runs)."
  in
  Arg.(value & opt string ".psa-runs" & info [ "ledger" ] ~docv:"DIR|off" ~doc)

let store_arg =
  let doc =
    "Directory of the persistent request store (one checksummed record per \
     request, plus per-request journal files). Default $(b,.psa-reqs)."
  in
  Arg.(value & opt string ".psa-reqs" & info [ "store" ] ~docv:"DIR" ~doc)

let queue_cap_arg =
  let doc =
    "Admission-queue bound: accepted-but-undispatched requests beyond this \
     are shed with HTTP 503. Default 64."
  in
  Arg.(value & opt int 64 & info [ "queue-cap" ] ~docv:"N" ~doc)

let max_inflight_arg =
  let doc =
    "Maximum concurrently executing requests. Defaults to the effective \
     $(b,--jobs) count."
  in
  Arg.(value & opt (some int) None & info [ "max-inflight" ] ~docv:"N" ~doc)

let rate_arg =
  let doc =
    "Per-client token-bucket refill rate in requests/second; 0 disables \
     rate limiting. Default 10."
  in
  Arg.(value & opt float 10.0 & info [ "rate" ] ~docv:"R" ~doc)

let burst_arg =
  let doc = "Per-client token-bucket capacity. Default 20." in
  Arg.(value & opt float 20.0 & info [ "burst" ] ~docv:"B" ~doc)

let max_body_arg =
  let doc = "Request-body size cap in bytes. Default 1048576 (1 MiB)." in
  Arg.(value & opt int (1024 * 1024) & info [ "max-body" ] ~docv:"BYTES" ~doc)

let no_resume_arg =
  let doc =
    "Do not re-admit queued/interrupted store entries at startup (they stay \
     visible in $(b,GET /v1/flows) but are not re-run)."
  in
  Arg.(value & flag & info [ "no-resume" ] ~doc)

let verbose_arg =
  let doc = "Log one line per request transition on stderr." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let main socket port jobs cache ledger store queue_cap max_inflight rate burst
    max_body no_resume verbose =
  (* request futures must land on worker domains, not the accept loop *)
  let jobs =
    max 2 (match jobs with Some n -> n | None -> Util.Pool.default_jobs ())
  in
  Util.Pool.set_default_jobs jobs;
  (match cache with
  | "off" -> Cache.set_dir None
  | dir -> Cache.set_dir (Some dir));
  let listen =
    match port with
    | Some p -> Serve.Server.Tcp p
    | None -> Serve.Server.Unix_sock socket
  in
  let cfg =
    {
      (Serve.Server.default_config listen) with
      Serve.Server.c_store = store;
      c_ledger = (match ledger with "off" -> None | dir -> Some dir);
      c_queue_cap = queue_cap;
      c_max_inflight =
        (match max_inflight with Some n -> max 1 n | None -> jobs);
      c_rate = rate;
      c_burst = burst;
      c_max_body = max_body;
      c_resume = not no_resume;
      c_verbose = verbose;
    }
  in
  match Serve.Server.run cfg with
  | Ok code -> code
  | Error msg ->
    Printf.eprintf "psaflowd: %s\n" msg;
    1

let cmd =
  let doc = "serve psaflow flows as an HTTP/JSON workload" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "$(tname) runs the flow engine as a daemon: clients submit flow \
         requests over HTTP (POST /v1/flows), poll their state, and fetch \
         the finished report and provenance. Concurrent requests share one \
         scheduler and one evaluation cache, so a request for a kernel \
         another client just ran is served by cache splicing rather than \
         recomputation.";
      `P
        "Reports served by the daemon are byte-identical to $(b,psaflow \
         run) output for the same spec. SIGTERM drains cleanly: in-flight \
         requests finish, queued ones persist and are resumed by the next \
         start.";
      `S Manpage.s_examples;
      `Pre
        "  psaflowd --socket /tmp/psa.sock &\n\
        \  curl --unix-socket /tmp/psa.sock \\\n\
        \       -d '{\"app\":\"nbody\",\"workload\":\"quick\"}' \\\n\
        \       http://localhost/v1/flows";
    ]
  in
  Cmd.v
    (Cmd.info "psaflowd" ~doc ~man)
    Term.(
      const main $ socket_arg $ port_arg $ jobs_arg $ cache_arg $ ledger_arg
      $ store_arg $ queue_cap_arg $ max_inflight_arg $ rate_arg $ burst_arg
      $ max_body_arg $ no_resume_arg $ verbose_arg)

let () = exit (Cmd.eval' cmd)
