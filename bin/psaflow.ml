(* psaflow - end-to-end design automation CLI.

   Runs the implemented PSA-flow (Fig. 4) on the benchmark suite: informed
   mode lets the Fig. 3 strategy pick one target, uninformed mode generates
   every design.  Also regenerates the paper's evaluation artifacts
   (Fig. 5, Table I, Fig. 6) and prints the task repository. *)

open Cmdliner

let mode_conv =
  Arg.enum [ ("informed", Pipeline.Informed); ("uninformed", Pipeline.Uninformed) ]

let app_arg =
  let doc =
    "Benchmark to run (nbody, kmeans, adpredictor, rush_larsen, bezier), or a \
     path to a mini-C++ source file when --file is given."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let file_arg =
  let doc = "Treat APP as a path to a mini-C++ source file and run the flow on it." in
  Arg.(value & flag & info [ "file"; "f" ] ~doc)

let scale_arg =
  let doc = "Outer-trip extrapolation factor for --file programs (default 1)." in
  Arg.(value & opt int 1 & info [ "scale" ] ~doc)

let mode_arg =
  let doc = "Branch-point A strategy: informed (Fig. 3 PSA) or uninformed (all paths)." in
  Arg.(value & opt mode_conv Pipeline.Uninformed & info [ "mode"; "m" ] ~doc)

let quick_arg =
  let doc = "Use the small test workload instead of the evaluation workload." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let explain_arg =
  let doc = "Print the PSA decision trail and the task log." in
  Arg.(value & flag & info [ "explain" ] ~doc)

let emit_arg =
  let doc = "Write the generated design sources into $(docv)." in
  Arg.(value & opt (some string) None & info [ "emit" ] ~docv:"DIR" ~doc)

let diff_arg =
  let doc = "Print a unified diff of each generated design against the reference source." in
  Arg.(value & flag & info [ "diff" ] ~doc)

let jobs_arg =
  let doc =
    "Number of domains used for parallel flow execution (branch fan-out, \
     suite runs, DSE sweeps). Defaults to the recommended domain count; \
     $(b,--jobs 1) forces the fully sequential reference semantics."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let interp_arg =
  let doc =
    "Interpreter backend: $(b,vm) (default; superinstruction VM over the \
     typed flat IR), $(b,compiled) (one-shot closure compilation) or \
     $(b,ast) (reference tree walker). All three produce bit-identical \
     results; the slower backends exist as semantic oracles and for \
     debugging."
  in
  let backend_conv =
    Arg.enum [ ("ast", `Ast); ("compiled", `Compiled); ("vm", `Vm) ]
  in
  Arg.(value & opt (some backend_conv) None & info [ "interp" ] ~docv:"BACKEND" ~doc)

let trace_arg =
  let doc =
    "Record a span trace of the whole command (flow phases, tasks, branch \
     fan-out, DSE points, interpreter runs, cache lookups, pool items) and \
     write it to $(docv) as Chrome trace-event JSON; open it in Perfetto or \
     chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let why_arg =
  let doc =
    "Print each design's provenance: the ordered tasks (with cache status), \
     branch decisions with the analysis facts that justified them, and DSE \
     sweeps with their explored point counts."
  in
  Arg.(value & flag & info [ "why" ] ~doc)

let cache_arg =
  let doc =
    "Directory of the persistent evaluation cache (interpreter runs, dynamic \
     tasks, DSE points are content-addressed and replayed on warm runs), or \
     $(b,off) to disable caching entirely. Default $(b,.psa-cache)."
  in
  Arg.(value & opt string ".psa-cache" & info [ "cache" ] ~docv:"DIR|off" ~doc)

let strict_arg =
  let doc =
    "Fail fast: the first task failure aborts the whole run (exit 1) instead \
     of pruning that branch path and continuing with the surviving designs."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let faults_arg =
  let doc =
    "Arm the deterministic fault-injection harness with $(docv): \
     comma-separated rules $(b,task:SITE), $(b,cache:KIND) or \
     $(b,pool:worker), each optionally suffixed $(b,@N) (fire only on the \
     N-th matching occurrence) and/or $(b,%P) (fire with probability P, \
     seeded), plus $(b,seed=N). Task sites are $(i,SCOPE/NAME) as printed \
     by $(b,psaflow tasks), matched by substring. Example: $(b,--faults \
     'task:FPGA/Generate oneAPI Design@1,seed=7')."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)

let ledger_arg =
  let doc =
    "Directory of the persistent run ledger: every $(b,psaflow run) appends \
     one structured record (spec, decision, designs, failures, metrics \
     snapshot) for later $(b,psaflow report)/$(b,diff)/$(b,stats) analysis, \
     or $(b,off) to disable. Default $(b,.psa-runs)."
  in
  Arg.(value & opt string ".psa-runs" & info [ "ledger" ] ~docv:"DIR|off" ~doc)

let journal_arg =
  let doc =
    "Flush the always-on flight-recorder journal (a bounded per-domain ring \
     of recent span/retry/fault events) to $(docv) as JSONL when the command \
     finishes. Without this flag the journal is written only when a run \
     fails (next to its ledger record)."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let apply_cache = function
  | "off" -> Cache.set_dir None
  | dir -> Cache.set_dir (Some dir)

let ledger_dir = function "off" -> None | dir -> Some dir

let cmdline () = String.concat " " (Array.to_list Sys.argv)

(* A ledger failure never fails the run it observes. *)
let append_record ledger record =
  match ledger with
  | None -> None
  | Some dir -> (
    match Obs.Ledger.append ~dir record with
    | Ok path -> Some path
    | Error msg ->
      Printf.eprintf "warning: ledger append failed: %s\n" msg;
      None)

(* Journal policy: --journal always flushes; a failed run additionally
   preserves the flight recorder next to its ledger record, so the
   events leading up to the failure survive the process. *)
let finish_journal ~journal ~status ~rec_path =
  (match journal with
  | None -> ()
  | Some file -> (
    match Obs.Journal.flush file with
    | Ok n -> Printf.printf "wrote journal %s (%d events)\n" file n
    | Error msg -> Printf.eprintf "failed to write journal %s: %s\n" file msg));
  match rec_path with
  | Some p when status <> 0 && journal = None ->
    let jf = Filename.chop_suffix p ".psarun" ^ ".journal.jsonl" in
    (match Obs.Journal.flush jf with
    | Ok n -> Printf.eprintf "flight recorder: %s (%d events)\n" jf n
    | Error msg -> Printf.eprintf "failed to write journal %s: %s\n" jf msg)
  | _ -> ()

(* Exit codes of `psaflow run`: 0 all designs ok, 1 flow failed (or
   --strict hit a task failure), 2 bad --faults spec, 3 partial (some
   branch paths pruned, at least one design), 4 none (every path pruned). *)
let exit_partial = 3

let exit_none = 4

let apply_faults = function
  | None -> Ok ()
  | Some spec -> (
    match Util.Faultsim.parse spec with
    | Ok s ->
      Util.Faultsim.arm s;
      Ok ()
    | Error msg -> Error msg)

let apply_jobs = function Some n -> Util.Pool.set_default_jobs n | None -> ()

(* Tracing wraps the whole command so the exported file covers every
   span the run produced; a failed write turns success into failure. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some file ->
    Obs.Trace.start ();
    let code = Fun.protect ~finally:Obs.Trace.stop f in
    (match Obs.Trace.write_file file with
     | Ok () ->
       Printf.printf "wrote trace %s\n" file;
       code
     | Error msg ->
       Printf.eprintf "failed to write trace %s: %s\n" file msg;
       max code 1)

let apply_interp = function
  | Some b -> Machine.set_default_backend b
  | None -> ()

let print_interp_stats () =
  let s = Machine.exec_stats () in
  if s.Machine.exec_runs > 0 then begin
    (* no wall-clock figures here: --explain is byte-identical at any
       --jobs level and across reruns; throughput is measured by
       [bench/main.exe interp] instead *)
    Printf.printf "\ninterpreter (%s backend): %d runs, %d statements\n"
      (Machine.backend_name (Machine.default_backend ()))
      s.Machine.exec_runs s.Machine.exec_steps;
    if Machine.default_backend () = `Vm && s.Machine.exec_steps > 0 then begin
      let planned = Machine.planned_steps () in
      Printf.printf "vm coverage: %d / %d planned statements (%.3f)\n" planned
        s.Machine.exec_steps
        (float_of_int planned /. float_of_int s.Machine.exec_steps)
    end
  end

(* Per-loop plan outcomes for --explain: what the lowering pass decided for
   every for statement in the app, plus any loops whose plan bailed back to
   the closure path at runtime.  Both sources are deterministic sets in
   program order, so the output is byte-identical at any --jobs. *)
let print_vm_plan app =
  let report = Ir_lower.plan_report (App.program app) in
  if report <> [] then begin
    let bails = Machine.plan_bail_sites () in
    Printf.printf "\nvm loop plans:\n";
    List.iter
      (fun (loc, outcome) ->
        let reasons =
          List.filter_map
            (fun (l, r) -> if l = loc then Some r else None)
            bails
        in
        let status =
          match (outcome : Ir_lower.outcome) with
          | Unplannable reason -> Printf.sprintf "unplannable: %s" reason
          | Planned { levels; sites } ->
            let shape =
              Printf.sprintf "%d level%s, %d site%s" levels
                (if levels = 1 then "" else "s")
                sites
                (if sites = 1 then "" else "s")
            in
            (match reasons with
             | [] -> Printf.sprintf "planned (%s)" shape
             | rs ->
               Printf.sprintf "planned (%s), bailed: %s" shape
                 (String.concat ", " rs))
        in
        Printf.printf "  %-32s %s\n" (Loc.to_string loc) status)
      report
  end

(* Scheduling and wall-clock telemetry (pool.* steal/idle/queue
   instruments, *.seconds timings, single-flight waits) varies with
   work-stealing order and machine speed, so printing it would break
   the guarantee that --explain output is byte-identical at any --jobs
   level.  The shared Obs.Metrics.jobs_invariant predicate decides;
   bench --json and ledger records still carry everything. *)
let print_metrics () =
  let metrics =
    List.filter
      (fun (name, _) -> Obs.Metrics.jobs_invariant name)
      (Obs.Metrics.snapshot ())
  in
  if metrics <> [] then begin
    Printf.printf "\nmetrics:\n";
    List.iter
      (fun (name, v) ->
        match v with
        | Obs.Metrics.Count n -> if n <> 0 then Printf.printf "  %-28s %d\n" name n
        | Obs.Metrics.Value f ->
          if f <> 0.0 then Printf.printf "  %-28s %.4g\n" name f
        | Obs.Metrics.Summary { count; sum; p50; p90; p99; _ } ->
          if count > 0 then
            Printf.printf "  %-28s n=%d sum=%.4g p50=%.4g p90=%.4g p99=%.4g\n" name
              count sum p50 p90 p99)
      metrics
  end

let print_cache_stats () =
  match Cache.dir () with
  | None -> Printf.printf "\ncache disabled\n"
  | Some dir ->
    let s = Cache.stats () in
    (* single-flight waits are omitted: how often two domains raced on a
       key is a scheduling accident, and this block must stay
       byte-identical at any --jobs level (bench --json still carries
       the cache.<kind>.waits counters) *)
    Printf.printf
      "\nevaluation cache (%s): %d memory hits, %d disk hits, %d misses, %d \
       errors%s, %d evictions, %d bytes read, %d bytes written\n"
      dir s.Cache.mem_hits s.Cache.disk_hits s.Cache.misses s.Cache.errors
      (if s.Cache.corrupt > 0 then Printf.sprintf ", %d corrupt" s.Cache.corrupt
       else "")
      s.Cache.evictions s.Cache.bytes_read s.Cache.bytes_written;
    List.iter
      (fun (kind, (k : Cache.stats)) ->
        if k.Cache.mem_hits + k.Cache.disk_hits + k.Cache.misses > 0 then
          Printf.printf "  %-6s %4d mem, %4d disk, %4d miss%s\n" kind
            k.Cache.mem_hits k.Cache.disk_hits k.Cache.misses
            (if k.Cache.corrupt > 0 then
               Printf.sprintf ", %d corrupt" k.Cache.corrupt
             else ""))
      (Cache.stats_by_kind ())

let find_app slug =
  match Suite.find slug with
  | Some app -> Ok app
  | None ->
    Error
      (Printf.sprintf "unknown benchmark %S (try: %s)" slug
         (String.concat ", " (List.map (fun (a : App.t) -> a.app_slug) Suite.all)))

let app_of_file path ~scale =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    src
  with
  | exception Sys_error msg -> Error msg
  | src ->
    let slug = Filename.remove_extension (Filename.basename path) in
    let app =
      {
        App.app_name = slug ^ " (user program)";
        app_slug = slug;
        app_descr = "user-supplied source: " ^ path;
        app_source = src;
        app_eval_overrides = [];
        app_test_overrides = [];
        app_outer_scale = scale;
      }
    in
    (* fail early with a readable message on parse/type errors *)
    (match App.program app with
     | exception Failure msg -> Error msg
     | _ -> Ok app)

let emit_designs dir (rep : Engine.report) =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iter
    (fun (d : Design.t) ->
      let file =
        Printf.sprintf "%s/%s_%s.cpp" dir rep.Engine.rep_app.App.app_slug
          (String.map
             (function ' ' -> '_' | c -> c)
             (String.lowercase_ascii (Target.short d.Design.d_target)))
      in
      (* temp file + atomic rename: an interrupted run never leaves a
         half-written source under the requested name *)
      match
        Obs.Atomic_io.write_file file (Pretty.program_to_string d.Design.d_program)
      with
      | Ok () -> Printf.printf "wrote %s\n" file
      | Error msg -> Printf.eprintf "failed to write %s: %s\n" file msg)
    rep.Engine.rep_designs

let run_cmd =
  let run slug file scale mode quick explain why emit diff jobs interp cache
      strict faults trace ledger journal =
    apply_jobs jobs;
    apply_interp interp;
    apply_cache cache;
    let ledger = ledger_dir ledger in
    let cmdline = cmdline () in
    (* a run that never reaches the engine still leaves a ledger trace *)
    let record_failure ~app ~workload ~msg =
      let status = 1 in
      let rec_path =
        append_record ledger
          (Run_record.of_failure ~cmdline ~status ~app
             ~mode:(Pipeline.mode_name mode) ~workload msg)
      in
      finish_journal ~journal ~status ~rec_path;
      status
    in
    match apply_faults faults with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok () -> (
      with_trace trace @@ fun () ->
      match (if file then app_of_file slug ~scale else find_app slug) with
      | Error msg ->
        prerr_endline msg;
        record_failure ~app:slug ~workload:[] ~msg
      | Ok app ->
        let workload =
          if quick then app.App.app_test_overrides else app.App.app_eval_overrides
        in
        (match Engine.run ~workload ~strict ~mode app with
         | Error msg ->
           Printf.eprintf "flow failed: %s\n" msg;
           record_failure ~app:app.App.app_slug ~workload ~msg
         | Ok rep ->
           let status =
             if rep.Engine.rep_failures = [] then 0
             else if rep.Engine.rep_designs <> [] then exit_partial
             else exit_none
           in
           (* append before printing: the --explain footer counts this
              run's record too, and printing can no longer change what
              the flow recorded *)
           let rec_path =
             append_record ledger (Run_record.of_report ~cmdline ~status ~mode rep)
           in
           (* the same bytes psaflowd serves for this spec (serve-check
              compares them) *)
           print_string (Report.run_text rep);
           if why then begin
             print_newline ();
             print_string (Report.why_text rep)
           end;
           if explain then begin
             print_newline ();
             print_string (Report.log_text rep);
             print_interp_stats ();
             print_vm_plan app;
             print_cache_stats ();
             print_metrics ();
             (* population size only: counts are a property of the ledger
                directory, not of this run's scheduling *)
             match ledger with
             | Some dir ->
               Printf.printf "\nledger: %s (%d records)\n" dir
                 (Obs.Ledger.count ~dir)
             | None -> ()
           end;
           (match emit with Some dir -> emit_designs dir rep | None -> ());
           if diff then begin
             let reference = Pretty.program_to_string (App.program app) in
             List.iter
               (fun (d : Design.t) ->
                 Printf.printf "\n--- reference\n+++ %s\n%s"
                   (Design.label d)
                   (Util.Diff.unified ~old_text:reference
                      (Pretty.program_to_string d.Design.d_program)))
               rep.Engine.rep_designs
           end;
           finish_journal ~journal ~status ~rec_path;
           status))
  in
  let doc =
    "Run the PSA-flow on one benchmark (or, with --file, on any mini-C++ \
     source) and print the evaluated designs."
  in
  let exits =
    Cmd.Exit.info 1 ~doc:"the flow failed outright (or $(b,--strict) aborted it)."
    :: Cmd.Exit.info 2 ~doc:"invalid $(b,--faults) specification."
    :: Cmd.Exit.info exit_partial
         ~doc:
           "partial success: task failures pruned some branch paths, but at \
            least one design was produced."
    :: Cmd.Exit.info exit_none
         ~doc:"total failure: every branch path was pruned; no design survived."
    :: Cmd.Exit.defaults
  in
  Cmd.v (Cmd.info "run" ~doc ~exits)
    Term.(const run $ app_arg $ file_arg $ scale_arg $ mode_arg $ quick_arg
          $ explain_arg $ why_arg $ emit_arg $ diff_arg $ jobs_arg $ interp_arg
          $ cache_arg $ strict_arg $ faults_arg $ trace_arg $ ledger_arg
          $ journal_arg)

let apps_cmd =
  let run () =
    List.iter
      (fun (a : App.t) ->
        Printf.printf "%-12s %-28s %s\n" a.app_slug a.app_name a.app_descr)
      Suite.all;
    0
  in
  let doc = "List the benchmark applications." in
  Cmd.v (Cmd.info "apps" ~doc) Term.(const run $ const ())

let tasks_cmd =
  let run () =
    let table = Util.Table.create ~headers:[ "scope"; "task"; "kind"; "dynamic" ] in
    let seen = Hashtbl.create 32 in
    List.iter
      (fun (t : Task.t) ->
        (* tasks shared by several device paths appear once *)
        let key = (Task.scope_label t.Task.scope, t.Task.name) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          Util.Table.add_row table
            [
              Task.scope_label t.Task.scope;
              t.Task.name;
              Task.kind_letter t.Task.kind;
              (if t.Task.dynamic then "yes" else "");
            ]
        end)
      Pipeline.repository;
    Util.Table.print table;
    0
  in
  let doc = "Print the repository of codified design-flow tasks (Fig. 4)." in
  Cmd.v (Cmd.info "tasks" ~doc) Term.(const run $ const ())

let with_reports quick f =
  let reports = Runs.ok_reports (Runs.collect ~quick ()) in
  if reports = [] then begin
    prerr_endline "no successful flow runs";
    1
  end
  else begin
    f reports;
    0
  end

let fig5_cmd =
  let run quick jobs interp cache trace =
    apply_jobs jobs;
    apply_interp interp;
    apply_cache cache;
    with_trace trace (fun () ->
        with_reports quick (fun reports ->
            print_string (Fig5.render (Fig5.of_reports reports))))
  in
  let doc = "Regenerate Fig. 5 (speedups of all generated designs)." in
  Cmd.v (Cmd.info "fig5" ~doc)
    Term.(const run $ quick_arg $ jobs_arg $ interp_arg $ cache_arg $ trace_arg)

let table1_cmd =
  let run quick jobs interp cache trace =
    apply_jobs jobs;
    apply_interp interp;
    apply_cache cache;
    with_trace trace (fun () ->
        with_reports quick (fun reports ->
            print_string (Table1.render (Table1.of_reports reports))))
  in
  let doc = "Regenerate Table I (added lines of code per design)." in
  Cmd.v (Cmd.info "table1" ~doc)
    Term.(const run $ quick_arg $ jobs_arg $ interp_arg $ cache_arg $ trace_arg)

let fig6_cmd =
  let run quick jobs interp cache trace =
    apply_jobs jobs;
    apply_interp interp;
    apply_cache cache;
    with_trace trace (fun () ->
        with_reports quick (fun reports ->
            print_string (Fig6.render (Fig6.of_reports reports))))
  in
  let doc = "Regenerate Fig. 6 (FPGA vs GPU cost across price ratios)." in
  Cmd.v (Cmd.info "fig6" ~doc)
    Term.(const run $ quick_arg $ jobs_arg $ interp_arg $ cache_arg $ trace_arg)

let dot_cmd =
  let run mode =
    print_string (Graph.to_dot ~name:"psaflow" (Pipeline.full_flow mode));
    0
  in
  let doc = "Print the implemented PSA-flow as a Graphviz digraph (Fig. 4)." in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ mode_arg)

let budget_cmd =
  let run slug budget quick jobs interp cache trace =
    apply_jobs jobs;
    apply_interp interp;
    apply_cache cache;
    with_trace trace @@ fun () ->
    match find_app slug with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok app ->
      let workload =
        if quick then app.App.app_test_overrides else app.App.app_eval_overrides
      in
      (match Engine.run_budgeted ~workload ~budget app with
       | Error msg ->
         Printf.eprintf "flow failed: %s\n" msg;
         1
       | Ok br ->
         Printf.printf "%s under a budget of $%g per run\n\n" app.App.app_name budget;
         List.iter
           (fun (a : Engine.attempt) ->
             Printf.printf "  tried %-5s -> %s\n" a.Engine.at_branch
               (match a.Engine.at_design, a.Engine.at_cost with
                | Some d, Some c ->
                  Printf.sprintf "%s, %.3g s, $%.3g%s"
                    (Target.short d.Design.d_target)
                    (Option.value d.Design.d_time_s ~default:Float.nan)
                    c
                    (if a.Engine.at_within then " (within budget)" else " (over budget)")
                | _, _ -> "no feasible design"))
           br.Engine.br_attempts;
         (match br.Engine.br_accepted with
          | Some { Engine.at_design = Some d; _ } ->
            Printf.printf "\naccepted: %s%s\n" (Design.label d)
              (if br.Engine.br_within_budget then ""
               else " - nothing fits the budget; cheapest design reported")
          | _ -> print_endline "\nno design could be produced");
         0)
  in
  let budget_arg =
    let doc = "Budget in USD per execution of the hotspot." in
    Arg.(required & pos 1 (some float) None & info [] ~docv:"USD" ~doc)
  in
  let doc = "Run the informed flow under a monetary budget (Fig. 3's cost feedback)." in
  Cmd.v (Cmd.info "budget" ~doc)
    Term.(
      const run $ app_arg $ budget_arg $ quick_arg $ jobs_arg $ interp_arg
      $ cache_arg $ trace_arg)

(* ---- ledger analysis: report | diff | stats ---- *)

let ledger_pos n name =
  let doc = Printf.sprintf "%s: a ledger directory or a single record file." name in
  Arg.(value & pos n string ".psa-runs" & info [] ~docv:"LEDGER" ~doc)

let warn_skipped skipped =
  if skipped > 0 then
    Printf.eprintf "warning: skipped %d unreadable record file%s\n" skipped
      (if skipped = 1 then "" else "s")

let report_cmd =
  let run path =
    match Obs.Ledger.load_path path with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok ((_, skipped) as pop) ->
      warn_skipped skipped;
      print_string (Obs.Ledger_report.report pop);
      0
  in
  let doc =
    "Aggregate a run ledger: population by kind/app/status, failure \
     taxonomy, cache hit rates, latency percentiles, interpreter \
     throughput and mean section timings — reconstructed purely from \
     persisted records, nothing rerun."
  in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run $ ledger_pos 0 "Ledger")

let tol_arg =
  let doc =
    "Relative growth tolerance for mean section times (a 0.05 s absolute \
     noise floor always applies)."
  in
  Arg.(value & opt float 0.20 & info [ "tol" ] ~docv:"FRACTION" ~doc)

let diff_ledger_cmd =
  let run a b tol =
    match (Obs.Ledger.load_path a, Obs.Ledger.load_path b) with
    | Error msg, _ | _, Error msg ->
      prerr_endline msg;
      2
    | Ok pa, Ok pb ->
      warn_skipped (snd pa);
      warn_skipped (snd pb);
      let text, regression =
        Obs.Ledger_report.diff ~tol ~label_a:a ~label_b:b pa pb
      in
      print_string text;
      if regression then 1 else 0
  in
  let doc =
    "Compare two ledgers (B against baseline A): per-metric deltas with \
     thresholds and a regression verdict. Exits 1 on regression — wire it \
     into CI."
  in
  let exits =
    Cmd.Exit.info 1 ~doc:"B regresses against A."
    :: Cmd.Exit.info 2 ~doc:"a ledger could not be read."
    :: Cmd.Exit.defaults
  in
  Cmd.v (Cmd.info "diff" ~doc ~exits)
    Term.(const run $ ledger_pos 0 "Baseline A" $ ledger_pos 1 "Candidate B" $ tol_arg)

let stats_cmd =
  let run path =
    match Obs.Ledger.load_path path with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok ((_, skipped) as pop) ->
      warn_skipped skipped;
      print_string (Obs.Ledger_report.stats pop);
      0
  in
  let doc = "Per-(app, mode) population table over a run ledger." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ ledger_pos 0 "Ledger")

let main =
  let doc = "auto-generating diverse heterogeneous designs (PSA-flows)" in
  Cmd.group (Cmd.info "psaflow" ~doc)
    [ run_cmd; apps_cmd; tasks_cmd; dot_cmd; budget_cmd; fig5_cmd; table1_cmd;
      fig6_cmd; report_cmd; diff_ledger_cmd; stats_cmd ]

let () = exit (Cmd.eval' main)
