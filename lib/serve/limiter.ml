type verdict =
  | Admit
  | Limited of float

type bucket = {
  mutable tokens : float;
  mutable last : float;  (** clock value of the last refill *)
}

type t = {
  rate : float;
  burst : float;
  clock : unit -> float;
  table : (string, bucket) Hashtbl.t;
  lock : Mutex.t;
}

let create ?(clock = Obs.Monotonic.now_s) ~rate ~burst () =
  {
    rate;
    burst = Float.max 1.0 burst;
    clock;
    table = Hashtbl.create 16;
    lock = Mutex.create ();
  }

let check t ~client =
  if t.rate <= 0.0 then Admit
  else begin
    Mutex.lock t.lock;
    let now = t.clock () in
    let b =
      match Hashtbl.find_opt t.table client with
      | Some b -> b
      | None ->
        let b = { tokens = t.burst; last = now } in
        Hashtbl.replace t.table client b;
        b
    in
    (* continuous refill; a clock that stands still refills nothing *)
    let elapsed = Float.max 0.0 (now -. b.last) in
    b.tokens <- Float.min t.burst (b.tokens +. (elapsed *. t.rate));
    b.last <- now;
    let v =
      if b.tokens >= 1.0 then begin
        b.tokens <- b.tokens -. 1.0;
        Admit
      end
      else Limited ((1.0 -. b.tokens) /. t.rate)
    in
    Mutex.unlock t.lock;
    v
  end

let clients t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n
