module M = Obs.Metrics

type listen =
  | Unix_sock of string
  | Tcp of int

type config = {
  c_listen : listen;
  c_store : string;
  c_ledger : string option;
  c_queue_cap : int;
  c_max_inflight : int;
  c_rate : float;
  c_burst : float;
  c_max_body : int;
  c_resume : bool;
  c_verbose : bool;
  c_runner : Request.spec -> Request.outcome;
}

let default_config listen =
  {
    c_listen = listen;
    c_store = ".psa-reqs";
    c_ledger = Some ".psa-runs";
    c_queue_cap = 64;
    c_max_inflight = Util.Pool.default_jobs ();
    c_rate = 10.0;
    c_burst = 20.0;
    c_max_body = 1024 * 1024;
    c_resume = true;
    c_verbose = false;
    c_runner = Request.run;
  }

(* ---- metrics ---- *)

let m_requests = M.counter "serve.requests"

let m_accepted = M.counter "serve.accepted"

let m_ratelimited = M.counter "serve.ratelimited"

let m_malformed = M.counter "serve.malformed"

let m_shed = M.counter "serve.shed"

let m_completed = M.counter "serve.completed"

let m_failed = M.counter "serve.failed"

let m_resumed = M.counter "serve.resumed"

let m_inflight = M.gauge "serve.inflight"

let m_queue_high = M.gauge "serve.queue_depth"

let m_seconds = M.histogram "serve.request.seconds"

(* ---- stop flag (shared with the signal handlers) ---- *)

let stop_flag = Atomic.make false

let request_stop () = Atomic.set stop_flag true

(* ---- server state ---- *)

type t = {
  cfg : config;
  lock : Mutex.t;
  registry : (string, Store.entry) Hashtbl.t;
  queue : string Admission.t;  (* ids awaiting dispatch, FIFO *)
  limiter : Limiter.t;
  mutable inflight : int;
  mutable exclusive : bool;  (* a step-budgeted request owns the scheduler *)
  mutable parked : string option;
      (* exclusive head-of-line request waiting for the daemon to go idle *)
  mutable next_id : int;
  cmdline : string;
}

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception exn ->
    Mutex.unlock t.lock;
    raise exn

let log t fmt =
  Printf.ksprintf
    (fun s -> if t.cfg.c_verbose then Printf.eprintf "psaflowd: %s\n%!" s)
    fmt

(* A store write failure must never fail the request it records: the
   daemon keeps serving from memory and says so on stderr. *)
let persist t e =
  Hashtbl.replace t.registry e.Store.e_id e;
  match Store.save ~dir:t.cfg.c_store e with
  | Ok () -> ()
  | Error msg -> Printf.eprintf "psaflowd: store write failed: %s\n%!" msg

let fresh_id t =
  let id = Printf.sprintf "q%06d" t.next_id in
  t.next_id <- t.next_id + 1;
  id

(* ---- JSON response bodies ---- *)

let error_body msg =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "{\"error\":";
  Obs.Json_out.str buf msg;
  Buffer.add_char buf '}';
  Buffer.contents buf

let needs_exclusive spec = spec.Request.sp_step_budget <> None

let spec_of_entry (e : Store.entry) =
  match Codec.parse e.Store.e_spec with
  | Ok (spec, _) -> Some spec
  | Error _ -> None

let entry_summary buf (e : Store.entry) =
  let first = ref true in
  let field = Obs.Json_out.field buf ~first in
  Buffer.add_char buf '{';
  field "id";
  Obs.Json_out.str buf e.Store.e_id;
  field "state";
  Obs.Json_out.str buf (Store.state_name e.Store.e_state);
  if e.Store.e_status >= 0 then begin
    field "status";
    Obs.Json_out.num buf (float_of_int e.Store.e_status)
  end;
  Buffer.add_char buf '}'

let entry_body (e : Store.entry) =
  let buf = Buffer.create 256 in
  let first = ref true in
  let field = Obs.Json_out.field buf ~first in
  let str_f name v = field name; Obs.Json_out.str buf v in
  Buffer.add_char buf '{';
  str_f "id" e.Store.e_id;
  str_f "state" (Store.state_name e.Store.e_state);
  if e.Store.e_status >= 0 then begin
    field "status";
    Obs.Json_out.num buf (float_of_int e.Store.e_status)
  end;
  str_f "client" e.Store.e_client;
  str_f "spec" e.Store.e_spec;
  if e.Store.e_error <> "" then str_f "error" e.Store.e_error;
  if e.Store.e_ledger <> "" then str_f "ledger" e.Store.e_ledger;
  if e.Store.e_state = Store.Done || e.Store.e_report <> "" then begin
    str_f "report" (Printf.sprintf "/v1/flows/%s/report" e.Store.e_id);
    str_f "why" (Printf.sprintf "/v1/flows/%s/why" e.Store.e_id)
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let health_body t =
  with_lock t (fun () ->
      let buf = Buffer.create 128 in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"ok\":true,\"draining\":%b,\"inflight\":%d,\"queued\":%d,\"capacity\":%d}"
           (Atomic.get stop_flag) t.inflight
           (Admission.length t.queue)
           (Admission.capacity t.queue));
      Buffer.contents buf)

let apps_body () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"apps\":[";
  List.iteri
    (fun i (a : App.t) ->
      if i > 0 then Buffer.add_char buf ',';
      let first = ref true in
      let field = Obs.Json_out.field buf ~first in
      Buffer.add_char buf '{';
      field "slug";
      Obs.Json_out.str buf a.App.app_slug;
      field "name";
      Obs.Json_out.str buf a.App.app_name;
      field "descr";
      Obs.Json_out.str buf a.App.app_descr;
      Buffer.add_char buf '}')
    Suite.all;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let metrics_body () =
  let buf = Buffer.create 1024 in
  let first = ref true in
  Buffer.add_char buf '{';
  List.iter
    (fun (name, v) ->
      Obs.Json_out.field buf ~first name;
      Obs.Json_out.gnum buf v)
    (M.flatten (M.snapshot ()));
  Buffer.add_char buf '}';
  Buffer.contents buf

let flows_body t =
  with_lock t (fun () ->
      let entries =
        Hashtbl.fold (fun _ e acc -> e :: acc) t.registry []
        |> List.sort (fun a b -> compare a.Store.e_id b.Store.e_id)
      in
      let buf = Buffer.create 256 in
      Buffer.add_string buf "{\"flows\":[";
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_char buf ',';
          entry_summary buf e)
        entries;
      Buffer.add_string buf "]}";
      Buffer.contents buf)

(* ---- dispatch ---- *)

(* Move queued requests into flight while slots remain.  An exclusive
   (step-budgeted) request blocks at the head until the daemon is idle,
   then runs alone: the interpreter step cap is process-wide, so overlap
   would leak it into innocent requests.  Spawning happens outside the
   lock — with --jobs 1 a spawn executes the whole flow inline. *)
let rec pump t =
  let to_start =
    with_lock t (fun () ->
        let start e excl =
          t.inflight <- t.inflight + 1;
          if excl then t.exclusive <- true;
          M.Gauge.set m_inflight (float_of_int t.inflight);
          persist t { e with Store.e_state = Store.Running }
        in
        let rec fill acc =
          if Atomic.get stop_flag then List.rev acc
          else if t.exclusive || t.inflight >= t.cfg.c_max_inflight then
            List.rev acc
          else
            match t.parked with
            | Some id when t.inflight > 0 ->
              (* head-of-line: everything waits until the daemon is idle *)
              ignore id;
              List.rev acc
            | Some id -> (
              t.parked <- None;
              match Hashtbl.find_opt t.registry id with
              | None -> fill acc
              | Some e ->
                start e true;
                fill ((id, true) :: acc))
            | None -> (
              match Admission.take t.queue with
              | None -> List.rev acc
              | Some id -> (
                match Hashtbl.find_opt t.registry id with
                | None -> fill acc (* unreachable: registry holds every id *)
                | Some e ->
                  let excl =
                    match spec_of_entry e with
                    | Some spec -> needs_exclusive spec
                    | None -> false
                  in
                  if excl && t.inflight > 0 then begin
                    (* wait for idle without losing the queue position *)
                    t.parked <- Some id;
                    List.rev acc
                  end
                  else begin
                    start e excl;
                    fill ((id, excl) :: acc)
                  end))
        in
        fill [])
  in
  List.iter
    (fun (id, excl) ->
      ignore
        (Util.Pool.Fut.spawn ~label:("serve:" ^ id) (fun () ->
             run_one t id excl)))
    to_start

and run_one t id excl =
  let t0 = Obs.Monotonic.now_s () in
  let entry =
    with_lock t (fun () -> Hashtbl.find_opt t.registry id)
  in
  (match entry with
  | None -> ()
  | Some e ->
    let finished =
      match Codec.parse e.Store.e_spec with
      | Error msg ->
        (* a persisted spec can only fail validation across a schema
           change; surface it as a failed request, not a crash *)
        { e with Store.e_state = Store.Failed; e_status = 1; e_error = msg }
      | Ok (spec, _) -> (
        match t.cfg.c_runner spec with
        | outcome ->
          let ledger_path =
            match (t.cfg.c_ledger, outcome.Request.oc_report) with
            | Some dir, Some rep -> (
              let record =
                Run_record.of_report ~kind:"serve"
                  ~cmdline:(t.cmdline ^ " " ^ id)
                  ~status:outcome.Request.oc_status ~mode:spec.Request.sp_mode
                  rep
              in
              match Obs.Ledger.append ~dir record with
              | Ok path -> path
              | Error msg ->
                Printf.eprintf "psaflowd: ledger append failed: %s\n%!" msg;
                "")
            | Some dir, None -> (
              let app =
                match spec.Request.sp_source with
                | Request.Builtin slug -> slug
                | Request.Inline { name; _ } -> name
              in
              let record =
                Run_record.of_failure ~kind:"serve"
                  ~cmdline:(t.cmdline ^ " " ^ id)
                  ~status:outcome.Request.oc_status ~app
                  ~mode:(Pipeline.mode_name spec.Request.sp_mode)
                  ~workload:[] outcome.Request.oc_error
              in
              match Obs.Ledger.append ~dir record with
              | Ok path -> path
              | Error _ -> "")
            | None, _ -> ""
          in
          if outcome.Request.oc_report <> None then
            {
              e with
              Store.e_state = Store.Done;
              e_status = outcome.Request.oc_status;
              e_report = outcome.Request.oc_text;
              e_why = outcome.Request.oc_why;
              e_ledger = ledger_path;
            }
          else
            {
              e with
              Store.e_state = Store.Failed;
              e_status = outcome.Request.oc_status;
              e_error = outcome.Request.oc_error;
              e_ledger = ledger_path;
            }
        | exception exn ->
          {
            e with
            Store.e_state = Store.Failed;
            e_status = 1;
            e_error = "internal: " ^ Printexc.to_string exn;
          })
    in
    with_lock t (fun () -> persist t finished);
    (* per-request flight-recorder flush: the post-mortem trail survives
       the daemon even for successful runs *)
    (match
       Obs.Journal.flush
         (Filename.concat t.cfg.c_store (id ^ ".journal.jsonl"))
     with
    | Ok _ -> ()
    | Error msg -> Printf.eprintf "psaflowd: journal flush failed: %s\n%!" msg);
    M.Histogram.observe m_seconds (Obs.Monotonic.now_s () -. t0);
    (match finished.Store.e_state with
    | Store.Done ->
      M.Counter.incr m_completed;
      log t "%s done (status %d)" id finished.Store.e_status
    | _ ->
      M.Counter.incr m_failed;
      log t "%s failed: %s" id finished.Store.e_error));
  with_lock t (fun () ->
      t.inflight <- t.inflight - 1;
      if excl then t.exclusive <- false;
      M.Gauge.set m_inflight (float_of_int t.inflight));
  pump t

(* ---- request handling ---- *)

let client_of rq body_client =
  match body_client with
  | Some c -> c
  | None -> (
    match Http.header rq "x-client" with
    | Some c when c <> "" -> c
    | _ -> "anon")

let submit t (rq : Http.request) =
  if Atomic.get stop_flag then
    Http.response ~status:503 (error_body "draining")
  else
    match Codec.parse rq.Http.rq_body with
    | Error msg ->
      M.Counter.incr m_malformed;
      Http.response ~status:400 (error_body msg)
    | Ok (spec, body_client) -> (
      let client = client_of rq body_client in
      match Limiter.check t.limiter ~client with
      | Limiter.Limited after ->
        M.Counter.incr m_ratelimited;
        Http.response ~status:429
          ~extra_headers:
            [ ("Retry-After", Printf.sprintf "%.0f" (Float.ceil after)) ]
          (error_body "rate limit exceeded")
      | Limiter.Admit -> (
        (* resolution errors (unknown app, unparsable source) answer 400
           at the door rather than burning an admission slot *)
        match Request.resolve spec with
        | Error msg ->
          M.Counter.incr m_malformed;
          Http.response ~status:400 (error_body msg)
        | Ok _ ->
          let admitted =
            with_lock t (fun () ->
                let id = fresh_id t in
                let e =
                  {
                    Store.e_id = id;
                    e_received = Unix.gettimeofday ();
                    e_client = client;
                    e_spec = Codec.to_json ~client spec;
                    e_state = Store.Queued;
                    e_status = -1;
                    e_error = "";
                    e_report = "";
                    e_why = "";
                    e_ledger = "";
                  }
                in
                if Admission.offer t.queue id then begin
                  persist t e;
                  let depth = Admission.length t.queue in
                  if float_of_int depth > M.Gauge.value m_queue_high then
                    M.Gauge.set m_queue_high (float_of_int depth);
                  Some e
                end
                else begin
                  (* shed: nothing persisted, the id is never visible *)
                  t.next_id <- t.next_id - 1;
                  None
                end)
          in
          match admitted with
          | None ->
            M.Counter.incr m_shed;
            log t "shed (queue full)";
            Http.response ~status:503
              ~extra_headers:[ ("Retry-After", "1") ]
              (error_body "overloaded: admission queue full")
          | Some e ->
            M.Counter.incr m_accepted;
            log t "%s accepted from %s" e.Store.e_id client;
            pump t;
            Http.response ~status:202 (entry_body e)))

let lookup t id = with_lock t (fun () -> Hashtbl.find_opt t.registry id)

let flow_subresource t id sub =
  match lookup t id with
  | None -> Http.response ~status:404 (error_body ("no such flow " ^ id))
  | Some e -> (
    let ready text =
      if e.Store.e_state = Store.Done then
        Http.response ~status:200 ~content_type:"text/plain; charset=utf-8" text
      else
        Http.response ~status:409
          (error_body
             (Printf.sprintf "flow %s is %s, not done" id
                (Store.state_name e.Store.e_state)))
    in
    match sub with
    | "report" -> ready e.Store.e_report
    | "why" -> ready e.Store.e_why
    | _ -> Http.response ~status:404 (error_body "unknown subresource"))

let route t (rq : Http.request) =
  let path = rq.Http.rq_path in
  let segments =
    String.split_on_char '/' path |> List.filter (fun s -> s <> "")
  in
  match (rq.Http.rq_method, segments) with
  | "GET", [ "healthz" ] -> Http.response ~status:200 (health_body t)
  | "GET", [ "v1"; "apps" ] -> Http.response ~status:200 (apps_body ())
  | "GET", [ "v1"; "metrics" ] -> Http.response ~status:200 (metrics_body ())
  | "GET", [ "v1"; "flows" ] -> Http.response ~status:200 (flows_body t)
  | "POST", [ "v1"; "flows" ] -> submit t rq
  | "GET", [ "v1"; "flows"; id ] -> (
    match lookup t id with
    | Some e -> Http.response ~status:200 (entry_body e)
    | None -> Http.response ~status:404 (error_body ("no such flow " ^ id)))
  | "GET", [ "v1"; "flows"; id; sub ] -> flow_subresource t id sub
  | _, ([ "healthz" ] | [ "v1"; ("apps" | "metrics" | "flows") ] | [ "v1"; "flows"; _ ] | [ "v1"; "flows"; _; _ ]) ->
    Http.response ~status:405 (error_body "method not allowed")
  | _ -> Http.response ~status:404 (error_body ("no such path " ^ path))

let handle_conn t fd =
  M.Counter.incr m_requests;
  (* a stalled or hostile client times out instead of wedging the loop *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0
   with Unix.Unix_error _ -> ());
  (match Http.read_request ~max_body:t.cfg.c_max_body fd with
  | Error Http.Closed -> ()
  | Error Http.Too_large ->
    Http.send fd (Http.response ~status:413 (error_body "request too large"))
  | Error (Http.Bad_request msg) ->
    Http.send fd (Http.response ~status:400 (error_body msg))
  | Ok rq -> Http.send fd (route t rq));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- startup / shutdown ---- *)

let bind_listener = function
  | Unix_sock path -> (
    (* a stale socket file from a dead daemon would make bind fail;
       replacing it is safe under the one-daemon-per-path convention *)
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.bind fd (Unix.ADDR_UNIX path) with
    | () ->
      Unix.listen fd 64;
      Ok (fd, Printf.sprintf "unix:%s" path)
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e)))
  | Tcp port -> (
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    match Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
    | () ->
      Unix.listen fd 64;
      Ok (fd, Printf.sprintf "http://127.0.0.1:%d" port)
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot bind 127.0.0.1:%d: %s" port
           (Unix.error_message e)))

let resume t =
  let entries, bad = Store.recover ~dir:t.cfg.c_store in
  if bad > 0 then
    Printf.eprintf "psaflowd: skipped %d unreadable store record%s\n%!" bad
      (if bad = 1 then "" else "s");
  let resumable = ref 0 in
  List.iter
    (fun (e : Store.entry) ->
      Hashtbl.replace t.registry e.Store.e_id e;
      (match
         int_of_string_opt
           (String.sub e.Store.e_id 1 (String.length e.Store.e_id - 1))
       with
      | Some n -> t.next_id <- max t.next_id (n + 1)
      | None -> ());
      match e.Store.e_state with
      | Store.Queued | Store.Interrupted ->
        if t.cfg.c_resume then begin
          incr resumable;
          M.Counter.incr m_resumed;
          let e = { e with Store.e_state = Store.Queued } in
          persist t e;
          (* past the live-traffic bound by design: these were admitted
             by a previous life and the queue is empty right now *)
          Admission.force t.queue e.Store.e_id
        end
      | Store.Running | Store.Done | Store.Failed -> ())
    entries;
  if !resumable > 0 then log t "resumed %d unfinished request(s)" !resumable

let drain t =
  let rec wait () =
    let busy = with_lock t (fun () -> t.inflight > 0) in
    if busy then begin
      Unix.sleepf 0.05;
      wait ()
    end
  in
  wait ()

let run cfg =
  Atomic.set stop_flag false;
  match
    (* fail startup early if the store directory cannot exist *)
    Store.save ~dir:cfg.c_store
      {
        Store.e_id = ".probe";
        e_received = 0.0;
        e_client = "";
        e_spec = "{}";
        e_state = Store.Failed;
        e_status = -1;
        e_error = "";
        e_report = "";
        e_why = "";
        e_ledger = "";
      }
  with
  | Error msg -> Error ("store unusable: " ^ msg)
  | Ok () -> (
    (try Unix.unlink (Filename.concat cfg.c_store ".probe.psareq")
     with Unix.Unix_error _ -> ());
    (* liveness: request futures must land on worker domains — with a
       default job count of 1, spawn evaluates eagerly and a long or
       gated request would wedge the accept loop *)
    if Util.Pool.default_jobs () < 2 then Util.Pool.set_default_jobs 2;
    match bind_listener cfg.c_listen with
    | Error _ as e -> e
    | Ok (listener, where) ->
      let t =
        {
          cfg;
          lock = Mutex.create ();
          registry = Hashtbl.create 64;
          queue = Admission.create ~capacity:cfg.c_queue_cap;
          limiter = Limiter.create ~rate:cfg.c_rate ~burst:cfg.c_burst ();
          inflight = 0;
          exclusive = false;
          parked = None;
          next_id = 1;
          cmdline = String.concat " " (Array.to_list Sys.argv);
        }
      in
      let old_term =
        Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_stop ()))
      in
      let old_int =
        Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> request_stop ()))
      in
      let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      Fun.protect
        ~finally:(fun () ->
          Sys.set_signal Sys.sigterm old_term;
          Sys.set_signal Sys.sigint old_int;
          Sys.set_signal Sys.sigpipe old_pipe)
        (fun () ->
          resume t;
          pump t;
          Printf.printf "psaflowd: listening on %s\n%!" where;
          let rec loop () =
            if Atomic.get stop_flag then ()
            else begin
              (match Unix.select [ listener ] [] [] 0.2 with
              | [], _, _ -> ()
              | _ :: _, _, _ -> (
                match Unix.accept listener with
                | fd, _ -> handle_conn t fd
                | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _)
                  -> ())
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
              loop ()
            end
          in
          loop ();
          (try Unix.close listener with Unix.Unix_error _ -> ());
          (match cfg.c_listen with
          | Unix_sock path -> (
            try Unix.unlink path with Unix.Unix_error _ -> ())
          | Tcp _ -> ());
          log t "draining (%d in flight, %d queued)"
            (with_lock t (fun () -> t.inflight))
            (Admission.length t.queue);
          drain t;
          Printf.printf "psaflowd: drained\n%!";
          Ok 0))
