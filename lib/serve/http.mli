(** Minimal HTTP/1.1 framing over a connected socket.

    Just enough protocol for [psaflowd]'s request/response API — no
    external deps, no keep-alive, no chunked transfer: each connection
    carries exactly one request and one [Connection: close] response,
    which keeps the server loop allocation-light and trivially correct
    under concurrent clients.

    {2 Robustness invariants}

    - The header block is capped ({!max_header_bytes}) and the body is
      capped by the caller ([?max_body]); both caps turn a hostile or
      broken client into a clean {!error}, never into unbounded memory.
    - A read timeout must be armed by the caller (via [SO_RCVTIMEO] on
      the socket) so a stalled client cannot wedge the accept loop; a
      timeout surfaces as {!Closed}.
    - Parsing tolerates bare-LF line endings (hand-written clients) but
      emits strict CRLF. *)

type request = {
  rq_method : string;  (** uppercased, e.g. ["GET"] *)
  rq_path : string;  (** path only; a [?query] suffix is split off and kept *)
  rq_query : string;  (** raw query string, [""] when absent *)
  rq_headers : (string * string) list;  (** names lowercased, in arrival order *)
  rq_body : string;
}

type error =
  | Bad_request of string  (** unparsable framing — answer 400 *)
  | Too_large  (** header or body cap exceeded — answer 413 *)
  | Closed  (** peer closed or timed out before a full request arrived *)

val max_header_bytes : int
(** Cap on the request line + header block (16 KiB). *)

val read_request : ?max_body:int -> Unix.file_descr -> (request, error) result
(** Read one request from a connected socket.  [max_body] defaults to
    1 MiB.  Never raises on I/O errors: they degrade to {!Closed}. *)

val header : request -> string -> string option
(** Case-insensitive header lookup (first match). *)

val status_text : int -> string
(** Canonical reason phrase, e.g. [429 -> "Too Many Requests"]. *)

val response :
  status:int ->
  ?content_type:string ->
  ?extra_headers:(string * string) list ->
  string ->
  string
(** Serialize a complete response (status line, [Content-Length],
    [Connection: close], body).  [content_type] defaults to
    ["application/json"]. *)

val send : Unix.file_descr -> string -> unit
(** Write all bytes, swallowing [EPIPE]/reset from a vanished client —
    the server never crashes because a client hung up first. *)
