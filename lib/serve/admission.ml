type 'a t = {
  cap : int;
  q : 'a Queue.t;
  lock : Mutex.t;
}

let create ~capacity = { cap = max 0 capacity; q = Queue.create (); lock = Mutex.create () }

let capacity t = t.cap

let with_lock t f =
  Mutex.lock t.lock;
  let v = f () in
  Mutex.unlock t.lock;
  v

let offer t x =
  with_lock t (fun () ->
      if Queue.length t.q >= t.cap then false
      else begin
        Queue.add x t.q;
        true
      end)

let force t x = with_lock t (fun () -> Queue.add x t.q)

let take t = with_lock t (fun () -> Queue.take_opt t.q)

let length t = with_lock t (fun () -> Queue.length t.q)
