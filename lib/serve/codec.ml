module J = Obs.Trace_json

let known_keys =
  [ "app"; "source"; "source_name"; "scale"; "mode"; "workload";
    "step_budget"; "jobs"; "client" ]

let str_field name fields =
  match List.assoc_opt name fields with
  | None -> Ok None
  | Some (J.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

(* Integers ride in JSON numbers; anything fractional or non-positive is
   a spec error, not something to round. *)
let pos_int_field name fields =
  match List.assoc_opt name fields with
  | None -> Ok None
  | Some (J.Num f) when Float.is_integer f && f >= 1.0 && f < 1e15 ->
    Ok (Some (int_of_float f))
  | Some _ -> Error (Printf.sprintf "field %S must be a positive integer" name)

let enum_field name fields choices ~default =
  match List.assoc_opt name fields with
  | None -> Ok default
  | Some (J.Str s) -> (
    match List.assoc_opt s choices with
    | Some v -> Ok v
    | None ->
      Error
        (Printf.sprintf "field %S must be one of: %s" name
           (String.concat ", " (List.map fst choices))))
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let ( let* ) = Result.bind

let parse body =
  match J.parse body with
  | Error msg -> Error ("invalid JSON: " ^ msg)
  | Ok (J.Obj fields) -> (
    match
      List.find_opt (fun (k, _) -> not (List.mem k known_keys)) fields
    with
    | Some (k, _) -> Error (Printf.sprintf "unknown field %S" k)
    | None ->
      let* app = str_field "app" fields in
      let* source = str_field "source" fields in
      let* source_name = str_field "source_name" fields in
      let* scale = pos_int_field "scale" fields in
      let* mode =
        enum_field "mode" fields
          [ ("informed", Pipeline.Informed); ("uninformed", Pipeline.Uninformed) ]
          ~default:Pipeline.Uninformed
      in
      let* quick =
        enum_field "workload" fields
          [ ("quick", true); ("eval", false) ]
          ~default:false
      in
      let* step_budget = pos_int_field "step_budget" fields in
      let* jobs = pos_int_field "jobs" fields in
      let* client = str_field "client" fields in
      let* () =
        match client with
        | Some "" -> Error "field \"client\" must be non-empty"
        | _ -> Ok ()
      in
      let* src =
        match (app, source) with
        | Some a, None ->
          if source_name <> None || scale <> None then
            Error "\"source_name\"/\"scale\" apply only to inline sources"
          else Ok (Request.Builtin a)
        | None, Some text ->
          Ok
            (Request.Inline
               {
                 name = Option.value source_name ~default:"inline";
                 text;
                 scale = Option.value scale ~default:1;
               })
        | Some _, Some _ -> Error "give either \"app\" or \"source\", not both"
        | None, None -> Error "one of \"app\" or \"source\" is required"
      in
      Ok
        ( {
            Request.sp_source = src;
            sp_mode = mode;
            sp_quick = quick;
            sp_step_budget = step_budget;
            sp_jobs_hint = jobs;
          },
          client ))
  | Ok _ -> Error "request body must be a JSON object"

let to_json ?client (spec : Request.spec) =
  let buf = Buffer.create 256 in
  let first = ref true in
  let field = Obs.Json_out.field buf ~first in
  let str_f name v =
    field name;
    Obs.Json_out.str buf v
  in
  let int_f name v =
    field name;
    Obs.Json_out.num buf (float_of_int v)
  in
  Buffer.add_char buf '{';
  (match spec.Request.sp_source with
  | Request.Builtin slug -> str_f "app" slug
  | Request.Inline { name; text; scale } ->
    str_f "source" text;
    str_f "source_name" name;
    if scale <> 1 then int_f "scale" scale);
  str_f "mode" (Pipeline.mode_name spec.Request.sp_mode);
  str_f "workload" (if spec.Request.sp_quick then "quick" else "eval");
  Option.iter (int_f "step_budget") spec.Request.sp_step_budget;
  Option.iter (int_f "jobs") spec.Request.sp_jobs_hint;
  Option.iter (str_f "client") client;
  Buffer.add_char buf '}';
  Buffer.contents buf
