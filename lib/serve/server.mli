(** The [psaflowd] daemon core: accept loop, router and dispatcher.

    Serves the flow engine as an HTTP/JSON workload: requests are
    validated ([Codec]), rate-limited per client ([Limiter]), admitted
    through a bounded queue ([Admission]) and executed concurrently as
    {!Util.Pool.Fut} futures on the process-wide work-stealing scheduler
    — the same scheduler a CLI run uses, so branch fan-outs and DSE
    sweeps of concurrent requests interleave freely.  All requests share
    the process evaluation cache: request N+1 for a kernel another client
    just ran is served by cache splicing (single-flight dedup while the
    first is still computing; memory/disk hits afterwards), not by
    recomputation.

    {2 Admission state machine}

    {v
    POST /v1/flows
      -> 429 when the client's token bucket is empty   (serve.ratelimited)
      -> 400 when the body fails Codec validation      (serve.malformed)
      -> 503 when the admission queue is full          (serve.shed)
      -> 202 otherwise: record persisted as "queued"   (serve.accepted)
    queued   -> running      when the dispatcher has an inflight slot
    running  -> done|failed  when its future settles   (serve.completed/.failed)
    running  -> interrupted  only by daemon death (detected at next startup)
    queued/interrupted -> queued  re-admitted at startup (serve.resumed)
    v}

    Shedding happens strictly before flow work: an overload burst beyond
    the queue bound costs one rejected connection each, and cannot crash,
    stall or slow requests already in flight.

    {2 Drain semantics}

    SIGTERM/SIGINT (or {!request_stop}) puts the daemon in draining
    state: the listener closes, nothing new is dispatched, in-flight
    futures run to completion and persist their terminal records, queued
    requests stay [queued] on disk, and {!run} returns 0.  Combined with
    [Store.recover]'s rewrite of [running] records, a daemon killed at
    {e any} point leaves every request either terminal (report preserved)
    or resumable — a subsequent start with [resume] re-admits the
    unfinished ones.

    {2 Determinism}

    Report bytes served for a spec equal the CLI's for the same spec at
    any [--jobs] level and any request interleaving (see {!Request});
    what concurrency and restarts may change is only telemetry ([serve.*],
    cache temperatures) and which requests shed under overload.
    Step-budgeted requests are dispatched exclusively (never overlapping
    another request) because the interpreter step cap is process-wide. *)

type listen =
  | Unix_sock of string  (** path; an existing socket file is replaced *)
  | Tcp of int  (** loopback (127.0.0.1) port *)

type config = {
  c_listen : listen;
  c_store : string;  (** request-store directory *)
  c_ledger : string option;  (** ledger directory, [None] = off *)
  c_queue_cap : int;  (** admission-queue bound *)
  c_max_inflight : int;  (** concurrent dispatched requests *)
  c_rate : float;  (** per-client tokens/second; <= 0 disables limiting *)
  c_burst : float;  (** per-client bucket capacity *)
  c_max_body : int;  (** request-body cap in bytes *)
  c_resume : bool;  (** re-admit queued/interrupted store entries at startup *)
  c_verbose : bool;  (** per-request log lines on stderr *)
  c_runner : Request.spec -> Request.outcome;
      (** how an admitted request executes; {!Request.run} in production,
          injectable so tests can gate/fail requests deterministically *)
}

val default_config : listen -> config
(** Production defaults: store [.psa-reqs], ledger [.psa-runs], queue cap
    64, inflight = the pool's default job count, 10 req/s burst 20 per
    client, 1 MiB bodies, resume on, quiet, {!Request.run}. *)

val run : config -> (int, string) result
(** Bind, resume, serve until a stop signal, drain, and return the exit
    code (0 on a clean drain).  [Error] only for startup failures (bind,
    unusable store).  Installs SIGTERM/SIGINT handlers and ignores
    SIGPIPE for the duration.  Raises the scheduler's default job count
    to at least 2 so request futures run on worker domains rather than
    inline in the accept loop (which would wedge the listener for the
    duration of a flow). *)

val request_stop : unit -> unit
(** What the signal handlers call; exposed so tests (and embedders) can
    drain a server running in another domain without process signals. *)
