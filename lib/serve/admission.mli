(** Bounded FIFO admission queue: the daemon's waiting room.

    Holds requests that have been accepted but not yet dispatched to the
    scheduler.  The bound is the backpressure mechanism: {!offer} on a
    full queue refuses ([false]) and the server turns that refusal into
    the load-shed response (503 + [serve.shed]) {e before} any flow work
    happens — an overloaded daemon degrades by rejecting cheaply at the
    door, never by queueing unboundedly or stalling in-flight runs.

    Pure bookkeeping: no metrics, no I/O, no scheduling — a mutex around
    a [Queue.t] — so load-shed behavior is exactly testable with a
    synthetic burst.  FIFO order is the dispatch order, which keeps
    admission → execution order deterministic for a serial client. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] is clamped to >= 0; capacity 0 sheds every offer. *)

val capacity : 'a t -> int

val offer : 'a t -> 'a -> bool
(** Enqueue unless full; [false] means shed. *)

val force : 'a t -> 'a -> unit
(** Enqueue even past capacity.  Startup-resume only: re-admitted
    requests from a previous life must not be shed by a bound meant for
    live traffic (the queue is otherwise empty at that point). *)

val take : 'a t -> 'a option
(** Dequeue the oldest entry, if any. *)

val length : 'a t -> int
