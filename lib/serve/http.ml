type request = {
  rq_method : string;
  rq_path : string;
  rq_query : string;
  rq_headers : (string * string) list;
  rq_body : string;
}

type error =
  | Bad_request of string
  | Too_large
  | Closed

let max_header_bytes = 16 * 1024

let default_max_body = 1024 * 1024

(* Read until the blank line that ends the header block, returning the
   header bytes and whatever body prefix arrived in the same segments. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 2048 in
  let rec split_at i =
    (* i is the index just past "\n\r\n" or "\n\n" *)
    let all = Buffer.contents buf in
    let head = String.sub all 0 i in
    let rest = String.sub all i (String.length all - i) in
    Ok (head, rest)
  and find_end () =
    let s = Buffer.contents buf in
    let n = String.length s in
    let rec scan i =
      if i >= n then None
      else if s.[i] = '\n' then
        if i + 2 < n && s.[i + 1] = '\r' && s.[i + 2] = '\n' then Some (i + 3)
        else if i + 1 < n && s.[i + 1] = '\n' then Some (i + 2)
        else scan (i + 1)
      else scan (i + 1)
    in
    scan 0
  and go () =
    match find_end () with
    | Some i -> split_at i
    | None ->
      if Buffer.length buf > max_header_bytes then Error Too_large
      else begin
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Error Closed
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error _ -> Error Closed
      end
  in
  go ()

let read_exactly fd prefix want =
  let buf = Buffer.create want in
  Buffer.add_string buf prefix;
  let chunk = Bytes.create 4096 in
  let rec go () =
    if Buffer.length buf >= want then
      Ok (String.sub (Buffer.contents buf) 0 want)
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Error Closed
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      | exception Unix.Unix_error _ -> Error Closed
  in
  go ()

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let parse_headers lines =
  List.filter_map
    (fun line ->
      match String.index_opt line ':' with
      | None -> None (* tolerated: skip malformed header lines *)
      | Some i ->
        let name = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
        let value =
          String.trim (String.sub line (i + 1) (String.length line - i - 1))
        in
        Some (name, value))
    lines

let header rq name =
  List.assoc_opt (String.lowercase_ascii name) rq.rq_headers

let read_request ?(max_body = default_max_body) fd =
  match read_head fd with
  | Error _ as e -> e
  | Ok (head, body_prefix) -> (
    match String.split_on_char '\n' head with
    | [] -> Error (Bad_request "empty request")
    | req_line :: header_lines -> (
      let req_line = strip_cr req_line in
      match String.split_on_char ' ' req_line with
      | [ meth; target; _version ] -> (
        let path, query =
          match String.index_opt target '?' with
          | None -> (target, "")
          | Some i ->
            ( String.sub target 0 i,
              String.sub target (i + 1) (String.length target - i - 1) )
        in
        let headers =
          parse_headers
            (List.filter (fun l -> l <> "") (List.map strip_cr header_lines))
        in
        let rq =
          {
            rq_method = String.uppercase_ascii meth;
            rq_path = path;
            rq_query = query;
            rq_headers = headers;
            rq_body = "";
          }
        in
        match header rq "content-length" with
        | None ->
          if body_prefix = "" then Ok rq
          else Error (Bad_request "body without content-length")
        | Some l -> (
          match int_of_string_opt (String.trim l) with
          | None -> Error (Bad_request "invalid content-length")
          | Some n when n < 0 -> Error (Bad_request "invalid content-length")
          | Some n when n > max_body -> Error Too_large
          | Some n -> (
            match read_exactly fd body_prefix n with
            | Ok body -> Ok { rq with rq_body = body }
            | Error _ -> Error Closed)))
      | _ -> Error (Bad_request ("bad request line: " ^ req_line))))

let status_text = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | c -> if c >= 200 && c < 300 then "OK" else "Error"

let response ~status ?(content_type = "application/json")
    ?(extra_headers = []) body =
  let buf = Buffer.create (String.length body + 256) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  Buffer.add_string buf (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    extra_headers;
  Buffer.add_string buf "Connection: close\r\n\r\n";
  Buffer.add_string buf body;
  Buffer.contents buf

let send fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error _ -> () (* client gone; nothing to salvage *)
  in
  go 0
