module J = Obs.Trace_json

type state =
  | Queued
  | Running
  | Done
  | Failed
  | Interrupted

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Interrupted -> "interrupted"

let state_of_name = function
  | "queued" -> Some Queued
  | "running" -> Some Running
  | "done" -> Some Done
  | "failed" -> Some Failed
  | "interrupted" -> Some Interrupted
  | _ -> None

type entry = {
  e_id : string;
  e_received : float;
  e_client : string;
  e_spec : string;
  e_state : state;
  e_status : int;
  e_error : string;
  e_report : string;
  e_why : string;
  e_ledger : string;
}

let tag = "psareq"

let version = 1

let skipped = Obs.Metrics.counter "serve.store.skipped"

let to_json e =
  let buf = Buffer.create 512 in
  let first = ref true in
  let field = Obs.Json_out.field buf ~first in
  let str_f name v = field name; Obs.Json_out.str buf v in
  Buffer.add_char buf '{';
  str_f "id" e.e_id;
  field "received";
  Obs.Json_out.gnum buf e.e_received;
  str_f "client" e.e_client;
  str_f "spec" e.e_spec;
  str_f "state" (state_name e.e_state);
  field "status";
  Obs.Json_out.num buf (float_of_int e.e_status);
  str_f "error" e.e_error;
  str_f "report" e.e_report;
  str_f "why" e.e_why;
  str_f "ledger" e.e_ledger;
  Buffer.add_char buf '}';
  Buffer.contents buf

let of_json text =
  match J.parse text with
  | Error msg -> Error msg
  | Ok j -> (
    let str name =
      match J.member name j with Some (J.Str s) -> Some s | _ -> None
    in
    let num name =
      match J.member name j with Some (J.Num f) -> Some f | _ -> None
    in
    match
      (str "id", num "received", str "client", str "spec", str "state",
       num "status", str "error", str "report", str "why", str "ledger")
    with
    | ( Some id, Some received, Some client, Some spec, Some state,
        Some status, Some error, Some report, Some why, Some ledger ) -> (
      match state_of_name state with
      | None -> Error ("unknown state " ^ state)
      | Some st ->
        Ok
          {
            e_id = id;
            e_received = received;
            e_client = client;
            e_spec = spec;
            e_state = st;
            e_status = int_of_float status;
            e_error = error;
            e_report = report;
            e_why = why;
            e_ledger = ledger;
          })
    | _ -> Error "missing field")

let path ~dir id = Filename.concat dir (id ^ ".psareq")

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (e, _, _) ->
    failwith (Printf.sprintf "cannot create %s: %s" dir (Unix.error_message e))

let save ~dir e =
  match ensure_dir dir with
  | () ->
    Obs.Atomic_io.write_checksummed ~tag ~version (path ~dir e.e_id) (to_json e)
  | exception Failure msg -> Error msg

let read_entry file =
  match Obs.Atomic_io.read_checksummed ~tag ~version file with
  | Ok payload -> (
    match of_json (String.trim payload) with
    | Ok e -> Some e
    | Error _ ->
      Obs.Metrics.Counter.incr skipped;
      None)
  | Error _ ->
    Obs.Metrics.Counter.incr skipped;
    None

let entry_files dir =
  match Sys.readdir dir with
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".psareq")
    |> List.sort compare
  | exception Sys_error _ -> []

let load ~dir =
  let files = entry_files dir in
  let bad = ref 0 in
  let entries =
    List.filter_map
      (fun f ->
        match read_entry (Filename.concat dir f) with
        | Some e -> Some e
        | None ->
          incr bad;
          None)
      files
  in
  (entries, !bad)

let find ~dir id =
  let file = path ~dir id in
  if Sys.file_exists file then read_entry file else None

let recover ~dir =
  let entries, bad = load ~dir in
  let entries =
    List.map
      (fun e ->
        if e.e_state = Running then begin
          let e = { e with e_state = Interrupted } in
          (* best-effort: an unwritable store degrades to in-memory-only
             detection; the daemon still re-runs the request *)
          (match save ~dir e with Ok () | Error _ -> ());
          e
        end
        else e)
      entries
  in
  (entries, bad)

let fresh_id ~dir =
  let next =
    List.fold_left
      (fun acc f ->
        let base = Filename.chop_suffix f ".psareq" in
        match
          if String.length base > 1 && base.[0] = 'q' then
            int_of_string_opt (String.sub base 1 (String.length base - 1))
          else None
        with
        | Some n -> max acc (n + 1)
        | None -> acc)
      1 (entry_files dir)
  in
  Printf.sprintf "q%06d" next
