(** Persistent request store: one checksummed file per served request.

    The daemon's unit of crash-safety.  Every admitted request gets a
    record file ([<id>.psareq]) that is atomically rewritten at each
    state transition ({!Obs.Atomic_io} temp + rename with format tag,
    schema version and payload digest — the [.psa-cache]/ledger
    discipline), so at any kill point the store holds a complete, valid
    view of every request: what was asked (the [Codec] encoding of the
    spec, which
    re-parses through full validation on resume), where it got to, and —
    for finished requests — the rendered report/provenance texts and the
    ledger record path.

    {2 Resumability invariants}

    - A request is {e resumable} iff its persisted state is {!Queued} or
      {!Interrupted}; {!recover} (run once at daemon startup) rewrites
      any {!Running} record to {!Interrupted}, because a run that was in
      flight when the process died never reached a terminal state — this
      is how an interrupted run is {e detected}.
    - Terminal records ({!Done}, {!Failed}) are never rewritten by
      recovery; a completed report survives any number of restarts.
    - Corrupt/truncated/foreign-version files are skipped and counted,
      never fatal — a damaged store degrades to a smaller history.
    - Ids are zero-padded and monotonic ({!fresh_id}), so file-name
      order is admission order and id allocation survives restarts. *)

type state =
  | Queued  (** admitted, not yet dispatched *)
  | Running  (** in flight on the scheduler *)
  | Done  (** flow finished; [e_status] carries the exit code *)
  | Failed  (** flow failed outright or the spec no longer resolves *)
  | Interrupted  (** was [Running] when a previous daemon died *)

val state_name : state -> string
(** Stable lowercase wire name ("queued", "running", "done", "failed",
    "interrupted"). *)

type entry = {
  e_id : string;
  e_received : float;  (** unix time at admission (volatile) *)
  e_client : string;
  e_spec : string;  (** [Codec.to_json] encoding of the request *)
  e_state : state;
  e_status : int;  (** exit code; [-1] until terminal *)
  e_error : string;  (** [""] unless [Failed] *)
  e_report : string;  (** {!Report.run_text} bytes; [""] until [Done] *)
  e_why : string;  (** {!Report.why_text} bytes; [""] until [Done] *)
  e_ledger : string;  (** ledger record path, [""] when none was written *)
}

val save : dir:string -> entry -> (unit, string) result
(** Atomically (re)publish the entry's record file; [dir] is created on
    first use. *)

val load : dir:string -> entry list * int
(** All valid entries in id order, plus the skipped-file count.  A
    missing directory is an empty store. *)

val find : dir:string -> string -> entry option
(** Single-entry lookup by id. *)

val recover : dir:string -> entry list * int
(** {!load}, rewriting every [Running] entry to [Interrupted] on disk
    first.  The result is the post-rewrite view: callers re-enqueue the
    [Queued]/[Interrupted] entries and leave terminal ones alone. *)

val fresh_id : dir:string -> string
(** Next unused id ([q000001], [q000002], ...), one past the highest id
    present in [dir] — monotonic across restarts. *)
