(** Per-client token-bucket rate limiter.

    Each client identity owns a bucket holding up to [burst] tokens,
    refilled continuously at [rate] tokens per second; admitting a
    request costs one token, and a client with an empty bucket is told
    how long until the next token ({!Limited}).  Clients are independent:
    one identity flooding the daemon cannot consume another's tokens.

    {2 Determinism invariant}

    All state transitions are pure functions of (creation parameters,
    the sequence of [(clock value, client)] pairs passed to {!check}).
    With an injected [clock], replaying the same arrival script yields
    the same verdict sequence — the test suite's replay-determinism gate
    relies on this, and it is what makes 429 behavior debuggable from a
    request log.  The default clock is {!Obs.Monotonic.now_s}, immune to
    wall-clock steps.

    Thread-safety: {!check} may be called from any domain; a single lock
    guards the bucket table (the daemon calls it once per HTTP request,
    far off any hot path). *)

type t

type verdict =
  | Admit
  | Limited of float
      (** seconds until one full token is available (the [Retry-After]
          hint, always > 0) *)

val create : ?clock:(unit -> float) -> rate:float -> burst:float -> unit -> t
(** [rate] tokens/second, capacity [burst] (clamped to >= 1 token).
    A non-positive [rate] disables limiting: every {!check} admits. *)

val check : t -> client:string -> verdict
(** Spend one token of [client]'s bucket, creating it full on first
    sight. *)

val clients : t -> int
(** Distinct identities seen (testing/metrics). *)
