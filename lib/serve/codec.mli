(** Wire codec for flow requests: the [POST /v1/flows] body.

    One JSON object maps to one {!Request.spec} (plus an optional client
    identity for rate limiting).  Parsing is {e strict}: unknown keys,
    wrong types, out-of-range values and ambiguous sources are rejected
    with a message naming the offending field — a malformed request can
    never be half-accepted.  Emission ({!to_json}) is canonical and
    deterministic (fixed key order, {!Obs.Json_out} number formatting),
    and {!parse} inverts it exactly: [parse (to_json ?client spec)]
    returns [(spec, client)] for every representable spec.  The request
    store persists specs in this very encoding, so a resumed request
    re-parses through the same validation as a fresh one.

    {2 Schema}

    {v
    {
      "app": "nbody",              -- suite slug; XOR with "source"
      "source": "void main() ...", -- inline mini-C++ text
      "source_name": "myprog",     -- optional, with "source" only
      "scale": 4,                  -- optional outer-trip factor, with "source" only
      "mode": "uninformed",        -- optional: "informed" | "uninformed" (default)
      "workload": "eval",          -- optional: "quick" | "eval" (default)
      "step_budget": 100000,       -- optional positive interpreter step cap
      "jobs": 4,                   -- optional advisory parallelism hint
      "client": "alice"            -- optional rate-limit identity
    }
    v} *)

val parse : string -> (Request.spec * string option, string) result
(** Decode and validate a request body.  The returned option is the
    in-body client identity (the server falls back to the [X-Client]
    header, then ["anon"]). *)

val to_json : ?client:string -> Request.spec -> string
(** Canonical one-line encoding (no trailing newline). *)
