(** Small statistics helpers used by analyses, DSE and experiment reports. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val geomean : float array -> float
(** Geometric mean of positive values; 0 on the empty array. *)

val stddev : float array -> float
(** Population standard deviation. *)

val median : float array -> float
(** Median (does not mutate the input). *)

val percentile : float array -> float -> float
(** [percentile a p] for [p] in [\[0,100\]], linear interpolation. *)

val minimum : float array -> float
val maximum : float array -> float

val argmin : ('a -> float) -> 'a list -> 'a option
(** Element minimising the key, [None] on empty input. *)

val argmax : ('a -> float) -> 'a list -> 'a option

val clamp : lo:float -> hi:float -> float -> float

val round_sig : int -> float -> float
(** [round_sig n x] rounds [x] to [n] significant digits. *)
