type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  headers : string list;
  mutable aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ~headers =
  { headers; aligns = Array.make (List.length headers) Left; rows = [] }

let set_aligns t aligns =
  List.iteri
    (fun i a -> if i < Array.length t.aligns then t.aligns.(i) <- a)
    aligns

let add_row t cells = t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
      let left = (width - n) / 2 in
      String.make left ' ' ^ s ^ String.make (width - n - left) ' '

let render t =
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri
      (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c))
      cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Separator -> ()) t.rows;
  let rule =
    "+"
    ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let line align_of cells =
    let padded =
      List.init ncols (fun i ->
          let c = try List.nth cells i with Failure _ -> "" in
          " " ^ pad (align_of i) widths.(i) c ^ " ")
    in
    "|" ^ String.concat "|" padded ^ "|"
  in
  let buf = Buffer.create 256 in
  let addl s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
  addl rule;
  addl (line (fun _ -> Center) t.headers);
  addl rule;
  List.iter
    (function
      | Cells c -> addl (line (fun i -> t.aligns.(i)) c)
      | Separator -> addl rule)
    (List.rev t.rows);
  addl rule;
  Buffer.contents buf

let print t = print_string (render t)
