(** Plain-text table rendering for experiment reports.

    Produces aligned, boxed tables similar to the ones the paper prints,
    e.g. Table I and the Fig. 5 speedup matrix. *)

type align = Left | Right | Center

type t

val create : headers:string list -> t
(** New table with the given column headers (left-aligned by default). *)

val set_aligns : t -> align list -> unit
(** Override per-column alignment; shorter lists leave the tail unchanged. *)

val add_row : t -> string list -> unit
(** Append a row. Rows shorter than the header are padded with [""]. *)

val add_separator : t -> unit
(** Append a horizontal rule between row groups. *)

val render : t -> string
(** Render with unicode-free ASCII box drawing. *)

val print : t -> unit
(** [render] followed by [print_string]. *)
