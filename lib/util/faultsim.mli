(** Deterministic fault injection for resilience testing.

    A fault {e spec} arms a set of rules that make chosen sites misbehave:
    flow tasks return errors, cache disk reads come back corrupted, pool
    workers crash mid-loop.  Sites ask {!fire} whether to misbehave; rules
    select sites by class and by a substring of the site name, and decide
    {e when} to fire either by occurrence count (the [n]-th matching call,
    exactly reproducible at [--jobs 1]) or by a seeded probability drawn
    with {!Prng} from the (site, occurrence, seed) triple — deterministic
    for a given spec regardless of thread interleaving.

    The harness is process-global and off by default; when disarmed,
    {!fire} is a single atomic load.  It is armed from the CLIs
    ([psaflow run --faults SPEC], [bench/main.exe --faults SPEC]) and from
    tests, never in library code.

    {2 Spec grammar}

    A spec is a comma-separated list of entries:

    {v
    spec  ::= entry ("," entry)*
    entry ::= "seed=" INT
            | class ":" site-substring ("@" INT)? ("%" FLOAT)?
    class ::= "task" | "cache" | "pool"
    v}

    - [task:FPGA/Generate oneAPI Design] — every application of a task
      whose [scope/name] site contains the substring fails;
    - [task:GPU-2080@1] — only the first matching task application fails;
    - [cache:task@2] — the second disk read of the ["task"] cache kind is
      corrupted (the payload digest check then evicts the entry);
    - [pool:worker@3] — the third pool work-item pull crashes its worker
      (the pool recovers the lost items, see {!Pool});
    - [task:Profile%0.5,seed=7] — each matching application fails with
      probability 0.5, decided by a splitmix64 draw seeded from the site
      name, the occurrence index and seed 7.

    Every fired fault increments the [fault.injected.<class>] counter in
    the metrics registry. *)

(** Site class a rule applies to. *)
type target =
  | Task_site  (** flow-task application, site = ["<scope>/<name>"] *)
  | Cache_site  (** cache disk read, site = the cache kind *)
  | Pool_site  (** pool work-item pull, site = ["worker"] *)

type rule = {
  ru_target : target;
  ru_site : string;  (** substring matched against the site name *)
  ru_nth : int option;  (** fire only on the [n]-th match (1-based) *)
  ru_prob : float option;  (** fire with this probability per match *)
}

type spec = {
  sp_rules : rule list;
  sp_seed : int;  (** seeds probabilistic draws; default 0 *)
}

exception Crash of string
(** Raised inside a pool worker when a [pool] rule fires; {!Pool.map}
    treats it as a worker death and recovers the lost work items. *)

val parse : string -> (spec, string) result
(** Parse the {{!section-grammar} spec grammar} above.  The error names
    the offending entry. *)

val arm : spec -> unit
(** Install the spec (replacing any previous one) and reset all
    occurrence counters. *)

val disarm : unit -> unit
(** Remove the armed spec; {!fire} returns [false] everywhere again. *)

val armed : unit -> bool

val fire : target -> site:string -> bool
(** [fire target ~site] asks whether an armed rule wants this call to
    fail.  Each matching rule's occurrence counter is advanced even when
    the rule decides not to fire, so [@n] selects the [n]-th match
    globally.  Always [false] when disarmed. *)

val injected : unit -> int
(** Total faults fired since the process started (sum of the
    [fault.injected.*] counters). *)
