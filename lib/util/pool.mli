(** A fixed-size work pool built on OCaml 5 domains.

    [map] distributes list elements over a bounded number of domains and
    returns the results in input order, so a parallel map is observably
    identical to [List.map] whenever [f] is pure.  Exceptions raised by
    [f] are marshalled back to the submitting domain and re-raised there
    (the exception of the smallest-index failing element wins, with its
    original backtrace), mirroring the first failure a sequential
    left-to-right map would have hit.

    The module keeps a global budget of spare domains so that nested
    [map] calls — e.g. a parallel suite run whose flows fan out branch
    paths in parallel — can never oversubscribe the machine or deadlock:
    when no spare domain is available the map simply degrades to the
    sequential path.  With [set_default_jobs 1] every call takes the
    sequential path, which is the reference semantics.

    {2 Determinism invariant}

    For a pure [f], the value returned by [map f xs] is the same for
    every job count — input order is preserved, the first failure in
    input order wins, and work-stealing order is never observable.  The
    rest of the repo relies on this: [psaflow run --jobs N] must emit
    byte-identical output for every [N].

    {2 Worker failure}

    A worker killed by an injected pool fault ({!Faultsim.Crash}, armed
    via [--faults pool:worker]) is not fatal: after the surviving
    workers drain the queue, any work item lost with the dead worker is
    recomputed inline by the submitting domain, in input order, so the
    result is still byte-identical to the fault-free run.  Each death
    increments the [pool.worker_failures] counter. *)

type t
(** A pool descriptor: a requested degree of parallelism. *)

val create : jobs:int -> t
(** [create ~jobs] makes a pool that uses at most [jobs] domains
    (including the caller's).  [jobs] is clamped to [\[1; 126\]]. *)

val size : t -> int
(** Degree of parallelism the pool was created with (after clamping). *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Set the degree of parallelism used by [map] when no explicit pool is
    given, and reset the global spare-domain budget accordingly.  The
    initial default is [recommended_jobs ()]. *)

val default_jobs : unit -> int
(** Current default degree of parallelism. *)

val map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] is [List.map f xs], computed on up to [size pool]
    domains (the default pool when [?pool] is omitted).  Results keep
    their input order.  Runs sequentially when the list has fewer than
    two elements, when the pool size is 1, or when the spare-domain
    budget is exhausted. *)
