(** A future-based work-stealing scheduler on OCaml 5 domains.

    Every domain that touches the pool owns a bounded work-stealing
    deque (LIFO for the owner, FIFO for thieves; overflow spills to a
    global injector queue), and a long-lived set of worker domains —
    grown lazily to [default_jobs () - 1], shrunk by
    {!set_default_jobs} — pops, drains and steals from all of them.
    {!Fut.spawn} enqueues a future and returns immediately;
    {!Fut.await} drives it to completion.  A domain blocked on [await]
    never idles while work exists: it runs its own still-pending future
    inline, executes {e other} queued tasks (help-first stealing), and
    parks only when no runnable task exists anywhere.  Nested
    parallelism therefore composes: suite runs, branch fan-outs and DSE
    sweeps all feed the same deques, and an inner [map] issued from a
    worker is serviced by every idle domain instead of degrading to
    sequential execution.

    Help-first stealing cannot deadlock on nested [await]: a claim is
    only ever held by an executor actively running the claimed thunk
    (or by a dead one, which the awaiter reclaims), and structured
    usage — awaiting only futures you spawned — makes the
    waits-on relation a sub-DAG of the spawn tree, so some claimed
    future always has a running executor making progress.

    {2 Determinism invariant}

    For a pure [f], the value returned by [map f xs] is the same for
    every job count: results are read back in input order, the first
    failure in input order is re-raised (with its original backtrace)
    after all elements settle, and work-stealing order is never
    observable in results.  With an effective job count of 1 the
    scheduler is never engaged — [spawn] evaluates eagerly in program
    order and [map] is [List.map] — which is the reference semantics.
    The rest of the repo relies on this: [psaflow run --jobs N] must
    emit byte-identical reports, [--why] and [--explain] output for
    every [N].  (The [pool.*] metrics themselves are scheduling
    telemetry and are deliberately excluded from [--explain].)

    {2 Worker failure}

    An injected pool fault ({!Faultsim.Crash}, armed via
    [--faults pool:worker]) fires between claiming a task and computing
    it.  A worker domain dies on the spot and its claimed task — owned
    or stolen — is detected by the awaiting domain through the
    claimant's dead flag, re-claimed, and recomputed without re-firing,
    so the result is byte-identical to the fault-free run.  The
    submitting domain survives a fired fault and recovers the same way.
    Each occurrence increments [pool.worker_failures].  Dead workers
    are respawned by the next [map]/[spawn] that needs them, never from
    the crash path, so recovery terminates even under always-firing
    fault rules. *)

type t
(** A pool descriptor: a requested degree of parallelism. *)

val create : jobs:int -> t
(** [create ~jobs] makes a pool that uses at most [jobs] domains
    (including the caller's).  [jobs] is clamped to [\[1; 126\]]. *)

val size : t -> int
(** Degree of parallelism the pool was created with (after clamping). *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Set the degree of parallelism used when no explicit pool is given,
    joining surplus worker domains.  Growth back to the new target is
    lazy (the next [spawn]/[map] that needs workers creates them).  The
    initial default is [recommended_jobs ()]. *)

val default_jobs : unit -> int
(** Current default degree of parallelism. *)

(** Structured futures over the shared scheduler. *)
module Fut : sig
  type 'a t
  (** A future: a task that is pending, running, or settled. *)

  val spawn : ?label:string -> (unit -> 'a) -> 'a t
  (** [spawn f] schedules [f] on the pool and returns its future.  When
      the default job count is 1, [f] runs eagerly at the spawn point
      (in program order, exceptions propagating immediately) so
      sequential runs never observe the scheduler.  [label] names the
      task's span in [--trace] output. *)

  val await : 'a t -> 'a
  (** [await fut] returns the future's value, executing it inline if no
      worker picked it up, helping with other queued tasks while it is
      running elsewhere, and reclaiming it if its executor was killed
      by an injected crash.  Re-raises the task's exception with its
      original backtrace. *)

  val await_all : 'a t list -> 'a list
  (** [await_all futs] settles {e every} future, then returns their
      values in order — or re-raises the first failure in list order,
      as a sequential left-to-right evaluation would have.  Settling
      everything first keeps side effects (metrics, cache writes) of
      later elements inside the call, matching the fork-join pool's
      join-before-raise behavior. *)
end

val map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] is [List.map f xs], computed as one spawned future per
    element awaited in input order (on the default pool when [?pool] is
    omitted).  Runs sequentially in the calling domain when the list
    has fewer than two elements or the effective job count is 1. *)
