(* A future-based work-stealing scheduler on OCaml 5 domains.

   Shape: every domain that touches the pool owns a bounded Chase–Lev
   style deque (LIFO for the owner, FIFO for thieves); overflow spills
   into a global mutex-protected injector queue.  [Fut.spawn] allocates
   a future, enqueues a pointer to it, and returns immediately;
   [Fut.await] drives the future to completion.  A long-lived set of
   worker domains (grown lazily to [default_jobs () - 1], shrunk by
   [set_default_jobs]) pops its own deque, drains the injector, and
   steals from every registered deque.

   Correctness never depends on the queues: a queue entry is only a
   *hint* that a future may be runnable.  The future itself carries an
   atomic state machine

     New thunk  --CAS-->  Claimed (thunk, claimant)  -->  Done result

   and whoever wins the CAS runs the thunk, so a stale or duplicated
   queue entry is harmless — the loser of the race just moves on.  An
   awaiting domain never idles while work exists: it claims its own
   still-New future inline, else executes *other* pending tasks
   (help-first stealing), and only parks when no runnable task exists
   anywhere.  Parking uses an activity counter + condition variable;
   every spawn, completion, and worker death bumps the counter, and a
   parker re-checks it under the lock before sleeping, so wakeups
   cannot be lost.

   Determinism: results are read back in input order ([map] awaits its
   futures left to right and surfaces the first failure in input
   order), so scheduling order is never observable in results.  With an
   effective job count of 1 the pool is never engaged at all —
   [Fut.spawn] evaluates eagerly and [map] is [List.map] — which is the
   reference semantics every parallel run must reproduce byte for byte.

   Crash recovery: an injected pool fault ([Faultsim.Crash], site
   "pool:worker") fires between claiming a task and computing it.  A
   worker domain dies on the spot, leaving the future Claimed by a
   claimant whose [alive] flag is now false; the awaiting domain
   detects the dead claimant, re-claims the future, and recomputes it
   without re-firing.  The submitting domain itself survives a fired
   fault: it counts the failure and recomputes immediately.  Both paths
   increment [pool.worker_failures] and keep [map f xs = List.map f xs]. *)

type t = { size : int }

(* The OCaml 5 runtime supports at most 128 live domains; stay a couple
   below so library users can spawn their own. *)
let hard_cap = 126

let clamp jobs = max 1 (min jobs hard_cap)

let create ~jobs = { size = clamp jobs }

let size t = t.size

let recommended_jobs () = Domain.recommended_domain_count ()

let default = Atomic.make (clamp (recommended_jobs ()))

let default_jobs () = Atomic.get default

(* ---- scheduler telemetry (nondeterministic; excluded from --explain) ---- *)

let m_failures = lazy (Obs.Metrics.counter "pool.worker_failures")
let m_spawned = lazy (Obs.Metrics.counter "pool.spawned")
let m_steals = lazy (Obs.Metrics.counter "pool.steals")
let m_idle_ns = lazy (Obs.Metrics.counter "pool.idle_ns")
let m_depth = lazy (Obs.Metrics.gauge "pool.queue_depth")

(* ---- futures ---- *)

(* [alive] is cleared when the claiming executor dies to an injected
   crash: it marks every claim that executor still held as reclaimable. *)
type claimant = { alive : bool Atomic.t }

type 'a state =
  | New of (unit -> 'a)
  | Claimed of (unit -> 'a) * claimant
  | Done of ('a, exn * Printexc.raw_backtrace) result

type 'a fut = 'a state Atomic.t

type task = Any : 'a fut -> task

(* ---- bounded work-stealing deque ---- *)

module Deque = struct
  (* Chase–Lev shape: the owner pushes and pops at [bottom], thieves
     CAS [top] forward.  OCaml's [Atomic] operations are sequentially
     consistent, so no explicit fences are needed.  Capacity is fixed;
     a full deque rejects the push and the caller spills to the
     injector.  A slot is only overwritten once [top] has advanced past
     it (the push guard keeps [bottom - top < capacity]), so a thief
     that read a stale slot always fails its CAS on [top]. *)
  let capacity = 256
  let mask = capacity - 1

  type nonrec t = {
    top : int Atomic.t;
    bottom : int Atomic.t;
    slots : task option Atomic.t array;
  }

  let create () =
    {
      top = Atomic.make 0;
      bottom = Atomic.make 0;
      slots = Array.init capacity (fun _ -> Atomic.make None);
    }

  let depth d = max 0 (Atomic.get d.bottom - Atomic.get d.top)

  let push d task =
    let b = Atomic.get d.bottom in
    let t = Atomic.get d.top in
    if b - t >= capacity then false
    else begin
      Atomic.set d.slots.(b land mask) (Some task);
      Atomic.set d.bottom (b + 1);
      true
    end

  let pop d =
    let b = Atomic.get d.bottom - 1 in
    Atomic.set d.bottom b;
    let t = Atomic.get d.top in
    if b < t then begin
      (* empty: undo the decrement *)
      Atomic.set d.bottom t;
      None
    end
    else begin
      let x = Atomic.get d.slots.(b land mask) in
      if b > t then x
      else begin
        (* last element: race thieves for it via the CAS on [top] *)
        let won = Atomic.compare_and_set d.top t (t + 1) in
        Atomic.set d.bottom (t + 1);
        if won then x else None
      end
    end

  let steal d =
    let t = Atomic.get d.top in
    let b = Atomic.get d.bottom in
    if t >= b then None
    else begin
      let x = Atomic.get d.slots.(t land mask) in
      if Atomic.compare_and_set d.top t (t + 1) then x else None
    end
end

(* ---- global injector (deque overflow) ---- *)

module Injector = struct
  let q : task Queue.t = Queue.create ()
  let lock = Mutex.create ()

  let push task =
    Mutex.lock lock;
    Queue.push task q;
    Mutex.unlock lock

  let pop () =
    Mutex.lock lock;
    let x = if Queue.is_empty q then None else Some (Queue.pop q) in
    Mutex.unlock lock;
    x

  let depth () =
    Mutex.lock lock;
    let n = Queue.length q in
    Mutex.unlock lock;
    n
end

(* ---- deque registry (steal victims) ---- *)

(* Copy-on-write array of every deque ever registered.  Deques of dead
   domains stay listed: their leftover entries remain stealable, and a
   stale empty deque costs one load per steal scan.  The registry is
   bounded by the number of domains created over the process lifetime. *)
let all_deques : Deque.t array Atomic.t = Atomic.make [||]

let rec register_deque d =
  let cur = Atomic.get all_deques in
  let next = Array.append cur [| d |] in
  if not (Atomic.compare_and_set all_deques cur next) then register_deque d

(* ---- per-domain executor context ---- *)

type ctx = {
  deque : Deque.t;
  claimant : claimant;
  mutable rr : int;  (* steal-scan rotation cursor *)
}

let ctx_key =
  Domain.DLS.new_key (fun () ->
      let d = Deque.create () in
      register_deque d;
      { deque = d; claimant = { alive = Atomic.make true }; rr = 0 })

(* ---- parking ---- *)

(* [activity] is bumped by every event that could unblock a sleeper
   (spawn, completion, worker death, generation change).  A parker
   snapshots it *before* its final scan for work; if the snapshot is
   stale by the time it holds the lock, something happened in between
   and it returns to rescan instead of sleeping.  The waker broadcasts
   only when [parked > 0]; sequential consistency of the atomics makes
   the skipped broadcast safe (see pool.mli). *)
let activity = Atomic.make 0
let parked = Atomic.make 0
let park_lock = Mutex.create ()
let park_cond = Condition.create ()

let wake_all () =
  Atomic.incr activity;
  if Atomic.get parked > 0 then begin
    Mutex.lock park_lock;
    Condition.broadcast park_cond;
    Mutex.unlock park_lock
  end

let park ?(should_stop = fun () -> false) snap =
  Mutex.lock park_lock;
  Atomic.incr parked;
  if Atomic.get activity = snap && not (should_stop ()) then begin
    let t0 = Obs.Monotonic.now_s () in
    let wait () =
      while Atomic.get activity = snap && not (should_stop ()) do
        Condition.wait park_cond park_lock
      done
    in
    if Obs.Trace.enabled () then
      Obs.Trace.with_span ~name:"pool-idle" ~kind:Obs.Trace.Pool (fun _ -> wait ())
    else wait ();
    Obs.Metrics.Counter.add (Lazy.force m_idle_ns)
      (int_of_float ((Obs.Monotonic.now_s () -. t0) *. 1e9))
  end;
  Atomic.decr parked;
  Mutex.unlock park_lock

(* ---- task execution ---- *)

let complete fut thunk =
  let r =
    match thunk () with
    | v -> Ok v
    | exception e -> Error (e, Printexc.get_raw_backtrace ())
  in
  Atomic.set fut (Done r);
  wake_all ()

(* Run a claim held by a domain that survives injected crashes (an
   awaiting or helping domain): a fired pool fault counts a worker
   failure and the task is recomputed on the spot without re-firing —
   the same recovery a crashed submitter performed in the fork-join
   pool. *)
let run_claim_surviving fut thunk =
  if Faultsim.fire Faultsim.Pool_site ~site:"worker" then
    Obs.Metrics.Counter.incr (Lazy.force m_failures);
  complete fut thunk

(* ---- finding work ---- *)

let find_task ctx =
  match Deque.pop ctx.deque with
  | Some _ as r -> r
  | None -> (
    match Injector.pop () with
    | Some _ as r -> r
    | None ->
      let ds = Atomic.get all_deques in
      let n = Array.length ds in
      if n = 0 then None
      else begin
        let start = ctx.rr in
        ctx.rr <- ctx.rr + 1;
        let rec go i =
          if i >= n then None
          else
            let d = ds.((start + i) mod n) in
            if d == ctx.deque then go (i + 1)
            else
              match Deque.steal d with
              | Some _ as r ->
                Obs.Metrics.Counter.incr (Lazy.force m_steals);
                r
              | None -> go (i + 1)
        in
        go 0
      end)

(* Help-first execution by an awaiting domain: claim a hinted future if
   it is still New and run it, surviving injected crashes.  Claimed or
   Done hints are stale — skip them. *)
let help_run ctx (Any fut) =
  match Atomic.get fut with
  | New thunk as st ->
    if Atomic.compare_and_set fut st (Claimed (thunk, ctx.claimant)) then
      run_claim_surviving fut thunk
  | Claimed _ | Done _ -> ()

(* ---- worker domains ---- *)

type worker = {
  w_dom : unit Domain.t;
  w_stop : bool Atomic.t;
  w_dead : bool Atomic.t;
}

let workers : worker list ref = ref []
let workers_lock = Mutex.create ()
let live_workers = Atomic.make 0

(* Returns [true] when the worker crashed and must die: the claim it
   holds is left behind for the awaiting domain to reclaim, which is
   exactly the "item lost with the dead worker" scenario the joiner-side
   recovery exists for. *)
let worker_run ctx (Any fut) =
  match Atomic.get fut with
  | New thunk as st ->
    if Atomic.compare_and_set fut st (Claimed (thunk, ctx.claimant)) then begin
      if Faultsim.fire Faultsim.Pool_site ~site:"worker" then begin
        Atomic.set ctx.claimant.alive false;
        Obs.Metrics.Counter.incr (Lazy.force m_failures);
        true
      end
      else begin
        complete fut thunk;
        false
      end
    end
    else false
  | Claimed _ | Done _ -> false

let worker_body stop dead () =
  let ctx = Domain.DLS.get ctx_key in
  let rec loop () =
    if not (Atomic.get stop) then begin
      let snap = Atomic.get activity in
      match find_task ctx with
      | Some task -> if not (worker_run ctx task) then loop ()
      | None ->
        park ~should_stop:(fun () -> Atomic.get stop) snap;
        loop ()
    end
  in
  loop ();
  Atomic.set dead true;
  Atomic.decr live_workers;
  (* wake awaiting domains so claims held by a crashed worker are
     reclaimed promptly, and joiners notice the exit *)
  wake_all ()

let spawn_worker () =
  let stop = Atomic.make false and dead = Atomic.make false in
  Atomic.incr live_workers;
  { w_dom = Domain.spawn (worker_body stop dead); w_stop = stop; w_dead = dead }

(* Grow the worker set to [k] live domains, first reaping any that died
   to injected crashes.  Dead workers are only respawned here — never
   from the crash path — so an always-firing fault rule cannot cause an
   unbounded respawn storm: recovery falls to the awaiting domains,
   which never die. *)
let ensure_workers k =
  let k = min k (hard_cap - 1) in
  if k > 0 && Atomic.get live_workers < k then begin
    Mutex.lock workers_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock workers_lock) @@ fun () ->
    let dead, live = List.partition (fun w -> Atomic.get w.w_dead) !workers in
    List.iter (fun w -> Domain.join w.w_dom) dead;
    let deficit = k - List.length live in
    let fresh = List.init (max 0 deficit) (fun _ -> spawn_worker ()) in
    workers := fresh @ live
  end

let set_default_jobs jobs =
  let jobs = clamp jobs in
  Atomic.set default jobs;
  (* shrink the worker set to the new target; growth stays lazy *)
  Mutex.lock workers_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock workers_lock) @@ fun () ->
  let dead, live = List.partition (fun w -> Atomic.get w.w_dead) !workers in
  List.iter (fun w -> Domain.join w.w_dom) dead;
  let rec split n = function
    | [] -> ([], [])
    | w :: tl ->
      if n > 0 then
        let keep, excess = split (n - 1) tl in
        (w :: keep, excess)
      else ([], w :: tl)
  in
  let keep, excess = split (jobs - 1) live in
  List.iter (fun w -> Atomic.set w.w_stop true) excess;
  wake_all ();
  List.iter (fun w -> Domain.join w.w_dom) excess;
  workers := keep

(* ---- spawn / await ---- *)

let note_depth ctx =
  let g = Lazy.force m_depth in
  let d = float_of_int (Deque.depth ctx.deque + Injector.depth ()) in
  if d > Obs.Metrics.Gauge.value g then Obs.Metrics.Gauge.set g d

let enqueue_spawn thunk =
  let ctx = Domain.DLS.get ctx_key in
  let fut = Atomic.make (New thunk) in
  Obs.Metrics.Counter.incr (Lazy.force m_spawned);
  if not (Deque.push ctx.deque (Any fut)) then Injector.push (Any fut);
  note_depth ctx;
  wake_all ();
  fut

let await_result fut =
  let ctx = Domain.DLS.get ctx_key in
  let rec loop () =
    (* snapshot before inspecting the future: a completion bumped
       [activity] after this read, so parking on the snapshot cannot
       miss it *)
    let snap = Atomic.get activity in
    match Atomic.get fut with
    | Done r -> r
    | New thunk as st ->
      (* nobody picked it up yet: run it inline *)
      if Atomic.compare_and_set fut st (Claimed (thunk, ctx.claimant)) then
        run_claim_surviving fut thunk;
      loop ()
    | Claimed (thunk, cl) as st ->
      if not (Atomic.get cl.alive) then begin
        (* the claiming worker died: reclaim and recompute without
           re-firing, so recovery always terminates *)
        if Atomic.compare_and_set fut st (Claimed (thunk, ctx.claimant)) then
          complete fut thunk;
        loop ()
      end
      else begin
        (* claimed by a live executor: help with other pending work
           rather than idling, park only when none exists *)
        (match find_task ctx with
         | Some task -> help_run ctx task
         | None -> park snap);
        loop ()
      end
  in
  loop ()

let reraise (e, bt) = Printexc.raise_with_backtrace e bt

let await fut =
  match await_result fut with Ok v -> v | Error eb -> reraise eb

(* Settle every future, then surface the first failure in input order —
   the same answer a sequential left-to-right map raises, regardless of
   completion order. *)
let settle_all futs =
  let rs = List.map await_result futs in
  let rec firsterr = function
    | [] -> ()
    | Ok _ :: tl -> firsterr tl
    | Error eb :: _ -> reraise eb
  in
  firsterr rs;
  List.map (function Ok v -> v | Error _ -> assert false) rs

let spawn ?label f =
  let f =
    match label with
    | Some name when Obs.Trace.enabled () ->
      fun () -> Obs.Trace.with_span ~name ~kind:Obs.Trace.Pool (fun _ -> f ())
    | _ -> f
  in
  if default_jobs () <= 1 then
    (* sequential reference semantics: evaluate in program order, let
       exceptions propagate from the spawn point, never engage the
       scheduler *)
    Atomic.make (Done (Ok (f ())))
  else begin
    ensure_workers (default_jobs () - 1);
    enqueue_spawn f
  end

module Fut = struct
  type 'a t = 'a fut

  let spawn = spawn
  let await = await
  let await_all = settle_all
end

(* ---- map ---- *)

let map ?pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
    let jobs = match pool with Some p -> p.size | None -> default_jobs () in
    if jobs <= 1 then List.map f xs
    else begin
      ensure_workers (jobs - 1);
      let n = List.length xs in
      let traced = Obs.Trace.enabled () in
      let futs =
        List.mapi
          (fun i x ->
            enqueue_spawn (fun () ->
                if traced then
                  Obs.Trace.with_span
                    ~attrs:[ ("item", Obs.Trace.Int i); ("of", Obs.Trace.Int n) ]
                    ~name:"pool-item" ~kind:Obs.Trace.Pool
                    (fun _ -> f x)
                else f x))
          xs
      in
      settle_all futs
    end
