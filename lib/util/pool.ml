type t = { size : int }

(* The OCaml 5 runtime supports at most 128 live domains; stay a couple
   below so library users can spawn their own. *)
let hard_cap = 126

let clamp jobs = max 1 (min jobs hard_cap)

let create ~jobs = { size = clamp jobs }

let size t = t.size

let recommended_jobs () = Domain.recommended_domain_count ()

(* Default parallelism plus a global budget of spare domains.  Every
   parallel [map] (on the default pool) draws the extra domains it wants
   from [spare] and returns them when done; nested maps that find the
   budget empty run sequentially, so the total number of live domains
   is bounded by the configured job count no matter how maps nest. *)
let default = Atomic.make (clamp (recommended_jobs ()))
let spare = Atomic.make (clamp (recommended_jobs ()) - 1)

let set_default_jobs jobs =
  let jobs = clamp jobs in
  Atomic.set default jobs;
  Atomic.set spare (jobs - 1)

let default_jobs () = Atomic.get default

let rec take_spare want =
  if want <= 0 then 0
  else
    let cur = Atomic.get spare in
    if cur <= 0 then 0
    else
      let got = min want cur in
      if Atomic.compare_and_set spare cur (cur - got) then got
      else take_spare want

let release_spare n = if n > 0 then ignore (Atomic.fetch_and_add spare n)

let worker_failures = lazy (Obs.Metrics.counter "pool.worker_failures")

(* Run [f] over [input] on [extra + 1] domains (the caller participates).
   Work is handed out by an atomic cursor; each slot records either the
   result or the exception (with backtrace) of its element. *)
let parallel_run f input extra =
  let n = Array.length input in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let traced = Obs.Trace.enabled () in
  let apply i x =
    if not traced then f x
    else
      Obs.Trace.with_span
        ~attrs:[ ("item", Obs.Trace.Int i); ("of", Obs.Trace.Int n) ]
        ~name:"pool-item" ~kind:Obs.Trace.Pool
        (fun _ -> f x)
  in
  let capture i x =
    match apply i x with
    | v -> Ok v
    | exception e -> Error (e, Printexc.get_raw_backtrace ())
  in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (* Injected pool faults kill the worker between claiming an item
           and computing it — the worst spot: the item is lost unless the
           recovery scan below picks it up. *)
        if Faultsim.fire Faultsim.Pool_site ~site:"worker" then
          raise (Faultsim.Crash (Printf.sprintf "pool worker died on item %d" i));
        results.(i) <- Some (capture i input.(i));
        loop ()
      end
    in
    try loop ()
    with Faultsim.Crash _ ->
      Obs.Metrics.Counter.incr (Lazy.force worker_failures)
  in
  let domains = List.init extra (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  (* Recover items lost to crashed workers: recompute them inline, in
     input order, so results stay byte-identical even under pool faults. *)
  Array.iteri
    (fun i slot ->
      match slot with
      | Some _ -> ()
      | None -> results.(i) <- Some (capture i input.(i)))
    results;
  (* Re-raise the first failure in input order, as a sequential map
     would have surfaced it. *)
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ())
    results;
  List.init n (fun i ->
      match results.(i) with
      | Some (Ok v) -> v
      | Some (Error _) | None -> assert false)

let map ?pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ -> (
    let n = List.length xs in
    match pool with
    | Some p ->
      (* Explicit pools bound themselves; they do not touch the global
         budget (tests use them to force parallelism regardless of the
         configured default). *)
      let extra = min (p.size - 1) (n - 1) in
      if extra <= 0 then List.map f xs
      else parallel_run f (Array.of_list xs) extra
    | None ->
      let extra = take_spare (min (default_jobs () - 1) (n - 1)) in
      if extra <= 0 then List.map f xs
      else
        Fun.protect
          ~finally:(fun () -> release_spare extra)
          (fun () -> parallel_run f (Array.of_list xs) extra))
