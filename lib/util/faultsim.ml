(* Deterministic fault-injection harness.  See faultsim.mli for the spec
   grammar and determinism contract. *)

type target = Task_site | Cache_site | Pool_site

type rule = {
  ru_target : target;
  ru_site : string;
  ru_nth : int option;
  ru_prob : float option;
}

type spec = { sp_rules : rule list; sp_seed : int }

exception Crash of string

(* Armed state: the spec plus one occurrence counter per rule.  Counters
   are atomics so [fire] is callable from any pool worker. *)
type armed_state = { st_spec : spec; st_counts : int Atomic.t array }

let state : armed_state option Atomic.t = Atomic.make None

let target_label = function
  | Task_site -> "task"
  | Cache_site -> "cache"
  | Pool_site -> "pool"

let injected_counter tgt =
  Obs.Metrics.counter ("fault.injected." ^ target_label tgt)

let parse_target = function
  | "task" -> Some Task_site
  | "cache" -> Some Cache_site
  | "pool" -> Some Pool_site
  | _ -> None

(* entry := 'seed=' INT | class ':' site ['@' nth] ['%' prob] *)
let parse_entry entry =
  let entry = String.trim entry in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt entry ':' with
  | None -> (
      match String.index_opt entry '=' with
      | Some i when String.sub entry 0 i = "seed" -> (
          let v = String.sub entry (i + 1) (String.length entry - i - 1) in
          match int_of_string_opt (String.trim v) with
          | Some seed -> Ok (`Seed seed)
          | None -> fail "fault spec: bad seed %S" v)
      | _ -> fail "fault spec: entry %S is not CLASS:SITE or seed=N" entry)
  | Some i -> (
      let cls = String.sub entry 0 i in
      let rest = String.sub entry (i + 1) (String.length entry - i - 1) in
      match parse_target cls with
      | None -> fail "fault spec: unknown class %S (want task|cache|pool)" cls
      | Some tgt -> (
          (* split off a trailing %prob, then a trailing @nth *)
          let site, prob =
            match String.rindex_opt rest '%' with
            | Some j ->
                ( String.sub rest 0 j,
                  Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
            | None -> (rest, None)
          in
          let site, nth =
            match String.rindex_opt site '@' with
            | Some j ->
                ( String.sub site 0 j,
                  Some (String.sub site (j + 1) (String.length site - j - 1)) )
            | None -> (site, None)
          in
          let site = String.trim site in
          let site = if site = "" && tgt = Pool_site then "worker" else site in
          match (nth, prob) with
          | Some n, _ when int_of_string_opt (String.trim n) = None ->
              fail "fault spec: bad occurrence %S in %S" n entry
          | _, Some p when float_of_string_opt (String.trim p) = None ->
              fail "fault spec: bad probability %S in %S" p entry
          | _ ->
              let ru_nth =
                Option.map (fun n -> int_of_string (String.trim n)) nth
              in
              let ru_prob =
                Option.map (fun p -> float_of_string (String.trim p)) prob
              in
              (match ru_nth with
              | Some n when n < 1 ->
                  fail "fault spec: occurrence @%d must be >= 1 in %S" n entry
              | _ -> Ok (`Rule { ru_target = tgt; ru_site = site; ru_nth; ru_prob }))))

let parse s =
  let entries =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun e -> e <> "")
  in
  if entries = [] then Error "fault spec: empty"
  else
    let rec go rules seed = function
      | [] -> Ok { sp_rules = List.rev rules; sp_seed = seed }
      | e :: rest -> (
          match parse_entry e with
          | Error _ as err -> err
          | Ok (`Seed s) -> go rules s rest
          | Ok (`Rule r) -> go (r :: rules) seed rest)
    in
    go [] 0 entries

let arm spec =
  let st_counts =
    Array.init (List.length spec.sp_rules) (fun _ -> Atomic.make 0)
  in
  Atomic.set state (Some { st_spec = spec; st_counts })

let disarm () = Atomic.set state None
let armed () = Atomic.get state <> None

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then true
  else
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0

(* Probabilistic decisions hash the (site, occurrence, seed) triple into a
   fresh splitmix64 stream, so the outcome is independent of the order in
   which concurrent sites consult the harness. *)
let prob_fires ~seed ~site ~count p =
  let key = Hashtbl.hash (site, count, seed) in
  let g = Prng.create (seed lxor (key * 0x9e3779b9)) in
  Prng.uniform g < p

let fire tgt ~site =
  match Atomic.get state with
  | None -> false
  | Some { st_spec; st_counts } ->
      let hit = ref false in
      List.iteri
        (fun i r ->
          if r.ru_target = tgt && contains ~needle:r.ru_site site then begin
            let count = 1 + Atomic.fetch_and_add st_counts.(i) 1 in
            let fires =
              (match r.ru_nth with Some n -> count = n | None -> true)
              && match r.ru_prob with
                 | Some p ->
                     prob_fires ~seed:st_spec.sp_seed ~site ~count p
                 | None -> true
            in
            if fires then hit := true
          end)
        st_spec.sp_rules;
      if !hit then begin
        Obs.Metrics.Counter.incr (injected_counter tgt);
        Obs.Journal.record ~kind:"fault" ~detail:(target_label tgt) site
      end;
      !hit

let injected () =
  List.fold_left
    (fun acc tgt -> acc + Obs.Metrics.Counter.value (injected_counter tgt))
    0
    [ Task_site; Cache_site; Pool_site ]
