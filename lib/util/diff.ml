type line =
  | Keep of string
  | Add of string
  | Drop of string

(* standard dynamic-programming LCS; inputs here are source files of a few
   hundred lines, so the quadratic table is fine *)
let diff_lines old_lines new_lines =
  let a = Array.of_list old_lines and b = Array.of_list new_lines in
  let n = Array.length a and m = Array.length b in
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if String.equal a.(i) b.(j) then 1 + lcs.(i + 1).(j + 1)
         else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i < n && j < m && String.equal a.(i) b.(j) then
      walk (i + 1) (j + 1) (Keep a.(i) :: acc)
    else if j < m && (i = n || lcs.(i).(j + 1) >= lcs.(i + 1).(j)) then
      walk i (j + 1) (Add b.(j) :: acc)
    else if i < n then walk (i + 1) j (Drop a.(i) :: acc)
    else List.rev acc
  in
  walk 0 0 []

let split text = String.split_on_char '\n' text

let unified ?(context = 2) ~old_text new_text =
  let ops = Array.of_list (diff_lines (split old_text) (split new_text)) in
  let n = Array.length ops in
  let changed i = match ops.(i) with Keep _ -> false | Add _ | Drop _ -> true in
  (* mark lines to print: changes plus [context] neighbours *)
  let show = Array.make n false in
  for i = 0 to n - 1 do
    if changed i then
      for j = max 0 (i - context) to min (n - 1) (i + context) do
        show.(j) <- true
      done
  done;
  if not (Array.exists Fun.id show) then ""
  else begin
    let buf = Buffer.create 1024 in
    (* track line numbers in both files for hunk headers *)
    let old_no = ref 1 and new_no = ref 1 in
    let in_hunk = ref false in
    for i = 0 to n - 1 do
      (if show.(i) then begin
         if not !in_hunk then begin
           Buffer.add_string buf (Printf.sprintf "@@ -%d +%d @@\n" !old_no !new_no);
           in_hunk := true
         end;
         match ops.(i) with
         | Keep l -> Buffer.add_string buf (" " ^ l ^ "\n")
         | Add l -> Buffer.add_string buf ("+" ^ l ^ "\n")
         | Drop l -> Buffer.add_string buf ("-" ^ l ^ "\n")
       end
       else in_hunk := false);
      (match ops.(i) with
       | Keep _ ->
         incr old_no;
         incr new_no
       | Add _ -> incr new_no
       | Drop _ -> incr old_no)
    done;
    Buffer.contents buf
  end

let stats old_text new_text =
  List.fold_left
    (fun (add, drop) op ->
      match op with
      | Keep _ -> (add, drop)
      | Add _ -> (add + 1, drop)
      | Drop _ -> (add, drop + 1))
    (0, 0)
    (diff_lines (split old_text) (split new_text))
