let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let geomean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. log x) a;
    exp (!acc /. float_of_int n)
  end

let stddev a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let m = mean a in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) ** 2.0)) a;
    sqrt (!acc /. float_of_int n)
  end

let sorted a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let b = sorted a in
  if n = 1 then b.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (b.(lo) *. (1.0 -. frac)) +. (b.(hi) *. frac)
  end

let median a = percentile a 50.0

let minimum a = Array.fold_left min a.(0) a
let maximum a = Array.fold_left max a.(0) a

let argmin key l =
  let better acc x =
    match acc with
    | None -> Some (x, key x)
    | Some (_, k) ->
      let kx = key x in
      if kx < k then Some (x, kx) else acc
  in
  Option.map fst (List.fold_left better None l)

let argmax key l = argmin (fun x -> -.key x) l

let clamp ~lo ~hi x = Float.min hi (Float.max lo x)

let round_sig n x =
  if x = 0.0 || not (Float.is_finite x) then x
  else begin
    let magnitude = Float.floor (Float.log10 (Float.abs x)) in
    let factor = 10.0 ** (float_of_int (n - 1) -. magnitude) in
    Float.round (x *. factor) /. factor
  end
