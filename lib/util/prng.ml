type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014). *)
let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (int64 t) mask) in
  v mod bound

let uniform t =
  let v = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let float t x = uniform t *. x

let gaussian t =
  let rec draw () =
    let u1 = uniform t in
    if u1 <= 1e-300 then draw () else u1
  in
  let u1 = draw () and u2 = uniform t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t =
  let s = int64 t in
  { state = s }
