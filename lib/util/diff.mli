(** Line-based unified diffs.

    Used to show exactly what a design-flow changed in a program: the paper
    emphasises that generated implementations are human-readable and
    hand-tunable, and a diff against the reference source is the most
    direct evidence. *)

type line =
  | Keep of string     (** present in both *)
  | Add of string      (** only in the new text *)
  | Drop of string     (** only in the old text *)

val diff_lines : string list -> string list -> line list
(** Longest-common-subsequence diff of two line lists. *)

val unified : ?context:int -> old_text:string -> string -> string
(** [unified ~old_text new_text]: classic unified format with [context]
    lines (default 2) around each hunk; the empty string when the texts
    are equal. *)

val stats : string -> string -> int * int
(** (added, removed) line counts between two texts. *)
