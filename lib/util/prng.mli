(** Deterministic pseudo-random number generation.

    A small splitmix64-based generator used wherever the reproduction needs
    randomness (workload generation, property-test seeds).  Keeping our own
    generator guarantees experiments are bit-reproducible across runs and
    OCaml versions, unlike [Stdlib.Random] whose algorithm may change. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy t] duplicates the state so two streams can diverge. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val gaussian : t -> float
(** Standard normal via Box-Muller. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)
