let unroll_fixed_inner ?(threshold = 64) (p : Ast.program) ~kernel =
  match Ast.find_func p kernel with
  | None -> p
  | Some fn ->
    (match Query.outermost_loops fn with
     | [] -> p
     | outer :: _ ->
       let consts = Consteval.of_program p in
       let inner = Query.inner_loops outer in
       List.fold_left
         (fun p (lm : Query.loop_match) ->
           if Dependence.fully_unrollable ~threshold consts lm then
             Rewrite.set_pragmas p ~sid:lm.lm_stmt.sid
               (lm.lm_stmt.Ast.pragmas @ [ { Ast.pname = "unroll"; pargs = [] } ])
           else p)
         p inner)

let outer_loop_sid (p : Ast.program) ~kernel =
  match Ast.find_func p kernel with
  | None -> None
  | Some fn ->
    (match Query.outermost_loops fn with
     | [] -> None
     | outer :: _ -> Some outer.lm_stmt.sid)

let set_outer_unroll p ~kernel ~factor =
  match outer_loop_sid p ~kernel with
  | None -> p
  | Some sid ->
    (match Query.find_stmt p sid with
     | None -> p
     | Some (_, s) ->
       let without =
         List.filter (fun (pr : Ast.pragma) -> pr.pname <> "unroll") s.Ast.pragmas
       in
       Rewrite.set_pragmas p ~sid
         (without @ [ { Ast.pname = "unroll"; pargs = [ string_of_int factor ] } ]))

let outer_unroll_factor p ~kernel =
  match outer_loop_sid p ~kernel with
  | None -> 1
  | Some sid ->
    (match Query.find_stmt p sid with
     | None -> 1
     | Some (_, s) ->
       (match
          List.find_opt (fun (pr : Ast.pragma) -> pr.pname = "unroll") s.Ast.pragmas
        with
        | Some { pargs = [ n ]; _ } -> (try int_of_string n with Failure _ -> 1)
        | Some _ | None -> 1))
