open Builder

type applied = {
  sm_program : Ast.program;
  sm_arrays : string list;
  sm_loop_sid : int;
  sm_tile : int;
}

(* arrays read as [a[j]] (exactly the loop index) inside the loop body *)
let arrays_indexed_by (body : Ast.block) ~index : string list =
  let found = ref [] in
  let note name = if not (List.mem name !found) then found := name :: !found in
  let rec expr_walk (e : Ast.expr) =
    (match e.Ast.edesc with
     | Ast.Index (base, sub) ->
       (match base.Ast.edesc, sub.Ast.edesc with
        | Ast.Var arr, Ast.Var v when v = index -> note arr
        | _, _ -> ())
     | _ -> ());
    List.iter expr_walk (Ast.expr_children e)
  in
  let rec stmt_walk (s : Ast.stmt) =
    List.iter expr_walk (Ast.stmt_exprs s);
    List.iter (List.iter stmt_walk) (Ast.stmt_sub_blocks s)
  in
  List.iter stmt_walk body;
  List.rev !found

let candidate_arrays (p : Ast.program) ~body_fn =
  match Ast.find_func p body_fn with
  | None -> None
  | Some fn ->
    let read_only_ptrs =
      List.filter_map
        (fun (prm : Ast.param) ->
          match prm.prm_ty with
          | Ast.Tptr _ when prm.prm_const -> Some prm.prm_name
          | _ -> None)
        fn.fparams
    in
    let loops = Query.loops_in_func fn in
    let viable =
      List.filter_map
        (fun (lm : Query.loop_match) ->
          let arrays =
            List.filter (fun a -> List.mem a read_only_ptrs)
              (arrays_indexed_by lm.lm_body ~index:lm.lm_header.index)
          in
          (* the array must not be written in the loop *)
          let writes = Query.writes_in_block lm.lm_body in
          let arrays = List.filter (fun a -> not (List.mem a writes)) arrays in
          if arrays = [] then None else Some (lm, arrays))
        loops
    in
    (* prefer the deepest (innermost) viable loop *)
    (match
       List.sort
         (fun (a, _) (b, _) ->
           compare (Query.loop_depth b.Query.lm_ctx) (Query.loop_depth a.Query.lm_ctx))
         viable
     with
     | [] -> None
     | (lm, arrays) :: _ -> Some (lm.lm_stmt.Ast.sid, arrays))

let tile_var = "__jj"
let stage_var = "__t"

let apply ?(tile = 256) (p : Ast.program) ~body_fn =
  match candidate_arrays p ~body_fn with
  | None -> Error (Printf.sprintf "no shared-memory candidate in %s" body_fn)
  | Some (loop_sid, arrays) ->
    (match Query.find_loop p loop_sid with
     | None -> Error "candidate loop disappeared"
     | Some lm ->
       let h = lm.lm_header in
       let j = h.index in
       if not (match h.step.Ast.edesc with Ast.Int_lit 1 -> true | _ -> false) then
         Error "shared-memory tiling requires a unit-stride loop"
       else begin
         let fn = lm.lm_ctx.Query.cx_func in
         let tenv = Typecheck.env_for_func p fn in
         let elem_ty arr =
           match Typecheck.lookup_var tenv arr with
           | Some (Ast.Tptr t) -> t
           | Some t -> t
           | None -> Ast.Tfloat
         in
         let tile_name arr = "__tile_" ^ arr in
         (* redirect a[j] -> __tile_a[j - __jj] *)
         let body' =
           Rewrite.map_exprs_in_block
             (fun e ->
               match e.Ast.edesc with
               | Ast.Index (base, sub) ->
                 (match base.Ast.edesc, sub.Ast.edesc with
                  | Ast.Var arr, Ast.Var v when v = j && List.mem arr arrays ->
                    Some (idx2 (tile_name arr) (var j -: var tile_var))
                  | _, _ -> None)
               | _ -> None)
             lm.lm_body
         in
         (* staging: for (__t = 0; __t < TILE; __t++) if (__jj+__t < hi) tile[t] = a[__jj+__t]; *)
         let stage_stmts =
           List.concat_map
             (fun arr ->
               let decl =
                 Ast.mk_stmt
                   ~pragmas:[ { Ast.pname = "hip"; pargs = [ "shared" ] } ]
                   (Ast.Decl
                      {
                        Ast.dty = elem_ty arr;
                        dname = tile_name arr;
                        dinit = None;
                        darray = Some (ilit tile);
                        dconst = false;
                      })
               in
               let copy =
                 for_ stage_var ~lo:(ilit 0) ~hi:(ilit tile)
                   [
                     if_
                       (var tile_var +: var stage_var <: (Ast.refresh_expr h.hi))
                       [
                         assign
                           (idx2 (tile_name arr) (var stage_var))
                           (idx2 arr (var tile_var +: var stage_var));
                       ]
                       [];
                   ]
               in
               [ decl; copy ])
             arrays
         in
         let inner_loop =
           Ast.mk_stmt
             (Ast.For
                ( {
                    Ast.index = j;
                    lo = var tile_var;
                    cmp = Ast.CLt;
                    hi = call "imin" [ var tile_var +: ilit tile;
                                       (Ast.refresh_expr h.hi) ];
                    step = ilit 1;
                  },
                  body' ))
         in
         let outer =
           Ast.mk_stmt
             ~pragmas:
               (lm.lm_stmt.Ast.pragmas
                @ [ { Ast.pname = "hip"; pargs = [ "shared_tiling" ] } ])
             (Ast.For
                ( {
                    Ast.index = tile_var;
                    lo = (Ast.refresh_expr h.lo);
                    cmp = Ast.CLt;
                    hi = (Ast.refresh_expr h.hi);
                    step = ilit tile;
                  },
                  stage_stmts @ [ inner_loop ] ))
         in
         let p = Rewrite.replace_stmt p ~sid:loop_sid outer in
         Ok { sm_program = p; sm_arrays = arrays; sm_loop_sid = outer.Ast.sid; sm_tile = tile }
       end)
