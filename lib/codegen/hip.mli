(** "Generate HIP Design" (code-generation task, Fig. 4).

    Restructures a program with an extracted kernel into a CPU+GPU design:

    - the kernel's outer loop becomes a per-thread device body
      [<kernel>__hip_body(int __tid, ...)] guarded against the loop bound;
    - a launch function [<kernel>__hip_launch] iterates the grid (annotated
      [#pragma hip kernel_launch blocksize(N)]) — under the interpreter it
      executes every thread sequentially with identical semantics;
    - the original kernel function becomes the management code: device
      buffer declarations, host-to-device copy loops, the launch, and
      device-to-host copy-back loops — the added lines Table I counts for
      HIP designs.

    The GPU-specific optimisations (SP transforms, pinned memory, shared
    memory buffers, specialised math functions, blocksize DSE) then operate
    on the generated design. *)

type result = {
  hip_program : Ast.program;
  hip_body_fn : string;      (** device thread body *)
  hip_launch_fn : string;    (** grid loop (profile this as the kernel region) *)
  hip_manage_fn : string;    (** host management, keeps the kernel's original name *)
  hip_written_arrays : string list;  (** copied back to the host *)
}

val generate :
  ?blocksize:int -> Ast.program -> kernel:string -> (result, string) Stdlib.result
(** Fails when the outer loop is not parallel (GPU threads cannot carry
    scalar reductions without atomics), has a non-unit step, or when a
    pointer argument's length cannot be resolved ({!Buffers}). *)

val set_blocksize : Ast.program -> launch_fn:string -> int -> Ast.program

val blocksize : Ast.program -> launch_fn:string -> int option

val employ_pinned : Ast.program -> manage_fn:string -> Ast.program
(** "Employ HIP Pinned Memory": annotate the device buffers. *)

val is_pinned : Ast.program -> manage_fn:string -> bool
