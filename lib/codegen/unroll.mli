(** Loop-unroll annotations for the FPGA path.

    "Unroll Fixed Loops" marks every fully-unrollable inner loop of the
    kernel with [#pragma unroll] (spatial replication in hardware); the
    "Unroll Until Overmap" DSE sets a [#pragma unroll N] factor on the
    kernel's outermost loop, with N chosen against the resource report
    (Fig. 2). *)

val unroll_fixed_inner :
  ?threshold:int -> Ast.program -> kernel:string -> Ast.program
(** Annotate inner loops with static trip counts at most [threshold]
    (default 64) inside the kernel's outermost loop. *)

val set_outer_unroll : Ast.program -> kernel:string -> factor:int -> Ast.program
(** Set (replacing any previous) [#pragma unroll factor] on the kernel's
    outermost loop. *)

val outer_unroll_factor : Ast.program -> kernel:string -> int
(** Factor currently annotated (1 when absent). *)
