(** "Introduce Shared Mem Buf" (GPU transform, Fig. 4).

    Tiles an inner loop that streams read-only arrays indexed by the inner
    index: the loop is blocked by the tile size, each tile is staged into a
    local buffer (annotated [#pragma hip shared]), and the uses are
    redirected into the buffer.  On a GPU the staging loop is the
    cooperative block-wide load; under the interpreter it is a per-thread
    copy with identical semantics.  The performance model credits the
    block-wide reuse by dividing global traffic by the blocksize. *)

type applied = {
  sm_program : Ast.program;
  sm_arrays : string list;   (** arrays staged through shared tiles *)
  sm_loop_sid : int;         (** the tiled inner loop *)
  sm_tile : int;
}

val candidate_arrays : Ast.program -> body_fn:string -> (int * string list) option
(** For the kernel body function: the innermost streaming loop's id and the
    read-only pointer parameters it indexes directly by the loop index. *)

val apply :
  ?tile:int -> Ast.program -> body_fn:string -> (applied, string) result
(** Tile the streaming loop (default tile 256).  Fails when no candidate
    loop/array pair exists. *)
