(* an expression is scope-independent when it only reads global constants *)
let scope_independent (p : Ast.program) (e : Ast.expr) =
  let globals = List.map (fun (d : Ast.decl) -> d.dname) (Ast.globals_decls p) in
  Ast.fold_expr
    (fun ok e ->
      match e.Ast.edesc with
      | Ast.Var v -> ok && List.mem v globals
      | Ast.Call _ -> false
      | _ -> ok)
    true e

let decl_size (d : Ast.decl) name =
  if d.dname = name then d.darray else None

let length_expr_of_array (p : Ast.program) name =
  (* search globals first, then every function body *)
  let from_globals =
    List.find_map (fun d -> decl_size d name) (Ast.globals_decls p)
  in
  let found =
    match from_globals with
    | Some e -> Some e
    | None ->
      let in_func (fn : Ast.func) =
        let result = ref None in
        let rec walk (s : Ast.stmt) =
          (match s.sdesc with
           | Decl d -> (match decl_size d name with Some e -> result := Some e | None -> ())
           | _ -> ());
          List.iter (List.iter walk) (Ast.stmt_sub_blocks s)
        in
        List.iter walk fn.fbody;
        !result
      in
      List.find_map in_func (Ast.funcs p)
  in
  match found with
  | Some e when scope_independent p e -> Some e
  | Some _ | None -> None

let lengths_for_params p ~caller ~args =
  ignore caller;
  let resolve name =
    match length_expr_of_array p name with
    | Some e -> Some (name, e)
    | None -> None
  in
  let resolved = List.map resolve args in
  if List.for_all Option.is_some resolved then Some (List.filter_map Fun.id resolved)
  else None
