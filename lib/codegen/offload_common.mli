(** Shared machinery of the HIP and oneAPI generators: parameter splitting,
    buffer-length resolution through the kernel's call site, and the
    buffer/copy-loop emission both management codes need. *)

val split_params : Ast.param list -> Ast.param list * Ast.param list
(** Pointer parameters, then scalar parameters. *)

val call_site_args : Ast.program -> callee:string -> string option list option
(** Argument names of the first call to [callee]; [None] entries for
    arguments that are not plain variables (e.g. literals). *)

val resolve_lengths :
  Ast.program -> kernel:string -> Ast.param list -> (string * Ast.expr) list option
(** Length expression per pointer parameter, resolved via the call site. *)

val device_elem_ty : Ast.ty -> Ast.ty
(** Demoted device element type: [double] becomes [float]. *)

val buffer_decl :
  vendor:string -> Ast.param -> len:Ast.expr -> dev_name:(string -> string) -> Ast.stmt
(** [<elem> d_x[len];] annotated [#pragma <vendor> device_buffer]; the SP
    task demotes the element type later if validation allows. *)

val copy_loop :
  vendor:string -> tag:string -> dst:string -> src:string -> len:Ast.expr -> Ast.stmt
(** [for (__k...) dst[__k] = src[__k];] annotated
    [#pragma <vendor> <tag>]. *)

val written_pointer_params : Ast.func -> Ast.param list
(** Pointer parameters the function body writes through. *)
