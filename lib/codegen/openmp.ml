type result = {
  omp_program : Ast.program;
  omp_loop_sid : int;
  omp_reductions : string list;
}

let red_op_str = function
  | Dependence.Radd -> "+"
  | Dependence.Rmul -> "*"
  | Dependence.Rmin -> "min"
  | Dependence.Rmax -> "max"

let generate (p : Ast.program) ~kernel =
  match Ast.find_func p kernel with
  | None -> Error (Printf.sprintf "kernel %s not found" kernel)
  | Some fn ->
    (match Query.outermost_loops fn with
     | [] -> Error (Printf.sprintf "kernel %s has no loop" kernel)
     | outer :: _ ->
       let verdict = Dependence.analyse_loop p outer in
       if not verdict.Dependence.parallel_with_reductions then
         Error
           (Printf.sprintf "outer loop of %s carries a dependence; cannot parallelise"
              kernel)
       else begin
         let scalar_reds =
           List.filter (fun (r : Dependence.reduction) -> not r.red_is_array)
             verdict.Dependence.reductions
         in
         let clauses =
           List.map
             (fun (r : Dependence.reduction) ->
               Printf.sprintf "%s:%s" (red_op_str r.red_op) r.red_target)
             scalar_reds
         in
         let pragma_args =
           [ "parallel"; "for" ]
           @ List.map (fun c -> Printf.sprintf "reduction(%s)" c) clauses
         in
         let p =
           Rewrite.set_pragmas p ~sid:outer.lm_stmt.sid
             (outer.lm_stmt.Ast.pragmas @ [ { Ast.pname = "omp"; pargs = pragma_args } ])
         in
         Ok { omp_program = p; omp_loop_sid = outer.lm_stmt.sid; omp_reductions = clauses }
       end)

let find_parallel_loop p ~kernel =
  match Ast.find_func p kernel with
  | None -> None
  | Some fn ->
    List.find_opt
      (fun (lm : Query.loop_match) ->
        List.exists (fun (pr : Ast.pragma) -> pr.pname = "omp") lm.lm_stmt.Ast.pragmas)
      (Query.loops_in_func fn)

let set_num_threads p ~kernel ~threads =
  match find_parallel_loop p ~kernel with
  | None -> p
  | Some lm ->
    let pragmas =
      List.map
        (fun (pr : Ast.pragma) ->
          if pr.pname <> "omp" then pr
          else begin
            let args =
              List.filter
                (fun a -> not (String.length a >= 12 && String.sub a 0 12 = "num_threads("))
                pr.pargs
            in
            { pr with pargs = args @ [ Printf.sprintf "num_threads(%d)" threads ] }
          end)
        lm.lm_stmt.Ast.pragmas
    in
    Rewrite.set_pragmas p ~sid:lm.lm_stmt.sid pragmas

let num_threads p ~kernel =
  match find_parallel_loop p ~kernel with
  | None -> None
  | Some lm ->
    List.find_map
      (fun (pr : Ast.pragma) ->
        if pr.pname <> "omp" then None
        else
          List.find_map
            (fun a ->
              if String.length a > 12 && String.sub a 0 12 = "num_threads(" then
                int_of_string_opt (String.sub a 12 (String.length a - 13))
              else None)
            pr.pargs)
      lm.lm_stmt.Ast.pragmas
