(** "Employ Specialised Math Fns" (GPU transform, Fig. 4).

    Rewrites patterns into the hardware-accelerated intrinsics GPUs provide:
    [1.0 / sqrt(x)] becomes [rsqrt(x)] (and the [f]-suffixed variants
    likewise), saving a full-precision divide on the SFU path. *)

val apply : Ast.program -> fnames:string list -> Ast.program

val rsqrt_sites : Ast.program -> fname:string -> int
(** Number of rewritable [1/sqrt] sites in a function (diagnostics). *)
