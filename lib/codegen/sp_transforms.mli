(** Single-precision transforms ("Employ SP Math Fns", "Employ SP Numeric
    Literals", and kernel-data demotion), applied on the GPU and FPGA
    branches of the PSA-flow.

    GeForce GPUs run double-precision arithmetic at 1/32 of single-precision
    rate and FPGA double-precision operator cores are several times larger,
    so accelerator kernels are demoted to [float] end to end: math calls,
    literals, and the kernel's data (parameters, locals, device buffers).
    Host data stays double; the generated copy loops convert on transfer. *)

val sp_math_fns : Ast.program -> fnames:string list -> Ast.program
(** Replace double-precision math calls ([sqrt], [exp], ...) by their
    single-precision counterparts ([sqrtf], [expf], ...) inside the listed
    functions. *)

val sp_literals : Ast.program -> fnames:string list -> Ast.program
(** Give floating literals inside the listed functions the [f] suffix. *)

val demote_types : Ast.program -> fnames:string list -> Ast.program
(** Turn [double] parameters, locals and local arrays of the listed
    functions into [float]. *)

val apply_all : Ast.program -> fnames:string list -> Ast.program
(** Math functions + literals + types, the full SP pipeline. *)
