(** "Generate oneAPI Design" (code-generation task, Fig. 4).

    Restructures a program with an extracted kernel into a CPU+FPGA design:

    - the kernel loop nest moves into a pipelined device kernel
      [<kernel>__fpga_kernel] (annotated [#pragma oneapi single_task]);
      the whole loop stays intact — the FPGA executes it as a pipeline;
    - the original kernel function becomes management code: buffer
      declarations, host-to-device copy loops, the kernel invocation, and
      copy-back loops (oneAPI designs add the most LOC in Table I);
    - FPGA-specific tasks then annotate the design: "Unroll Fixed Loops"
      ([#pragma unroll] on static-bound inner loops), the per-device
      "Unroll Until Overmap" DSE ([#pragma unroll N] on the outer loop),
      SP transforms, and "Zero-Copy Data Transfer" on Stratix10
      (buffers replaced by direct host access over USM). *)

type result = {
  oneapi_program : Ast.program;
  oneapi_kernel_fn : string;   (** pipelined device kernel (profile region) *)
  oneapi_manage_fn : string;   (** management, keeps the kernel's original name *)
  oneapi_written_arrays : string list;
}

val generate : Ast.program -> kernel:string -> (result, string) Stdlib.result
(** Fails when pointer-argument lengths cannot be resolved. *)

val employ_zero_copy : Ast.program -> manage_fn:string -> kernel_fn:string -> Ast.program
(** "Zero-Copy Data Transfer" (Stratix10): delete the buffers and copy
    loops; the device kernel is called directly on host arrays (annotated
    [#pragma oneapi zero_copy]). *)

val is_zero_copy : Ast.program -> kernel_fn:string -> bool
