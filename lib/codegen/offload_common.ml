open Builder

let split_params params =
  List.partition
    (fun (prm : Ast.param) ->
      match prm.Ast.prm_ty with Ast.Tptr _ -> true | _ -> false)
    params

let call_site_args (p : Ast.program) ~callee =
  let found = ref None in
  let check_expr (e : Ast.expr) =
    (match e.Ast.edesc with
     | Ast.Call (name, args) when name = callee && !found = None ->
       found :=
         Some
           (List.map
              (fun (a : Ast.expr) ->
                match a.Ast.edesc with Ast.Var v -> Some v | _ -> None)
              args)
     | _ -> ());
    None
  in
  ignore (Rewrite.map_exprs check_expr p);
  !found

let resolve_lengths (p : Ast.program) ~kernel params =
  match Ast.find_func p kernel with
  | None -> None
  | Some fn ->
    (match call_site_args p ~callee:kernel with
     | None -> None
     | Some args when List.length args <> List.length fn.Ast.fparams -> None
     | Some args ->
       let pairs =
         List.combine
           (List.map (fun (q : Ast.param) -> q.Ast.prm_name) fn.Ast.fparams)
           args
       in
       let resolve (prm : Ast.param) =
         match List.assoc_opt prm.Ast.prm_name pairs with
         | None | Some None -> None
         | Some (Some arg) ->
           (match Buffers.length_expr_of_array p arg with
            | Some e -> Some (prm.Ast.prm_name, e)
            | None -> None)
       in
       let resolved = List.map resolve params in
       if List.for_all Option.is_some resolved then
         Some (List.filter_map Fun.id resolved)
       else None)

let device_elem_ty = function
  | Ast.Tdouble | Ast.Tfloat -> Ast.Tfloat
  | t -> t

let buffer_decl ~vendor (prm : Ast.param) ~len ~dev_name =
  let elem = match prm.Ast.prm_ty with Ast.Tptr t -> t | t -> t in
  Ast.mk_stmt
    ~pragmas:[ pragma vendor [ "device_buffer" ] ]
    (Ast.Decl
       {
         Ast.dty = elem;
         dname = dev_name prm.Ast.prm_name;
         dinit = None;
         darray = Some (Ast.refresh_expr len);
         dconst = false;
       })

let copy_loop ~vendor ~tag ~dst ~src ~len =
  let k = "__k" in
  for_
    ~pragmas:[ pragma vendor [ tag ] ]
    k ~lo:(ilit 0) ~hi:(Ast.refresh_expr len)
    [ assign (idx2 dst (var k)) (idx2 src (var k)) ]

let written_pointer_params (fn : Ast.func) =
  let written = Query.writes_in_block fn.Ast.fbody in
  List.filter
    (fun (prm : Ast.param) ->
      match prm.Ast.prm_ty with
      | Ast.Tptr _ -> List.mem prm.Ast.prm_name written
      | _ -> false)
    fn.Ast.fparams
