open Builder

type result = {
  oneapi_program : Ast.program;
  oneapi_kernel_fn : string;
  oneapi_manage_fn : string;
  oneapi_written_arrays : string list;
}

let dev_name arr = "d_" ^ arr

let generate (p : Ast.program) ~kernel =
  match Ast.find_func p kernel with
  | None -> Error (Printf.sprintf "kernel %s not found" kernel)
  | Some fn ->
    (match Query.outermost_loops fn with
     | [] -> Error (Printf.sprintf "kernel %s has no loop" kernel)
     | outer :: _ ->
       let ptr_params, scalar_params = Offload_common.split_params fn.Ast.fparams in
       (match Offload_common.resolve_lengths p ~kernel ptr_params with
        | None -> Error "could not resolve device buffer lengths for pointer arguments"
        | Some lengths ->
          let kernel_fn_name = kernel ^ "__fpga_kernel" in
          (* device kernel: the loop nest, marked as a single_task pipeline *)
          let pipeline_loop =
            let s = Ast.refresh_stmt outer.lm_stmt in
            {
              s with
              Ast.pragmas = s.Ast.pragmas @ [ pragma "oneapi" [ "single_task" ] ];
            }
          in
          let kernel_fn =
            Builder.func kernel_fn_name (ptr_params @ scalar_params) [ pipeline_loop ]
          in
          (* management *)
          let written_ptrs =
            let w = Query.writes_in_block outer.lm_body in
            List.filter (fun (q : Ast.param) -> List.mem q.Ast.prm_name w) ptr_params
          in
          let buffer_decls =
            List.map
              (fun (q : Ast.param) ->
                Offload_common.buffer_decl ~vendor:"oneapi" q
                  ~len:(List.assoc q.Ast.prm_name lengths)
                  ~dev_name)
              ptr_params
          in
          let copy_in =
            List.map
              (fun (q : Ast.param) ->
                Offload_common.copy_loop ~vendor:"oneapi" ~tag:"memcpy_h2d"
                  ~dst:(dev_name q.Ast.prm_name) ~src:q.Ast.prm_name
                  ~len:(List.assoc q.Ast.prm_name lengths))
              ptr_params
          in
          let copy_out =
            List.map
              (fun (q : Ast.param) ->
                Offload_common.copy_loop ~vendor:"oneapi" ~tag:"memcpy_d2h"
                  ~dst:q.Ast.prm_name ~src:(dev_name q.Ast.prm_name)
                  ~len:(List.assoc q.Ast.prm_name lengths))
              written_ptrs
          in
          let kernel_args =
            List.map (fun (q : Ast.param) -> var (dev_name q.Ast.prm_name)) ptr_params
            @ List.map (fun (q : Ast.param) -> var q.Ast.prm_name) scalar_params
          in
          let manage_body =
            buffer_decls @ copy_in
            @ [ expr_stmt (call kernel_fn_name kernel_args) ]
            @ copy_out
          in
          let manage_fn = { fn with Ast.fbody = manage_body } in
          let globals =
            List.concat_map
              (fun g ->
                match g with
                | Ast.Gfunc f when f.Ast.fname = kernel ->
                  [ Ast.Gfunc kernel_fn; Ast.Gfunc manage_fn ]
                | _ -> [ g ])
              p.Ast.pglobals
          in
          let prog = { Ast.pglobals = globals } in
          Ok
            {
              oneapi_program = prog;
              oneapi_kernel_fn = kernel_fn_name;
              oneapi_manage_fn = kernel;
              oneapi_written_arrays =
                List.map (fun (q : Ast.param) -> q.Ast.prm_name) written_ptrs;
            }))

let employ_zero_copy (p : Ast.program) ~manage_fn ~kernel_fn =
  match Ast.find_func p manage_fn, Ast.find_func p kernel_fn with
  | Some mfn, Some kfn ->
    (* call the kernel directly on host memory *)
    let args = List.map (fun (q : Ast.param) -> var q.Ast.prm_name) mfn.Ast.fparams in
    let direct_call =
      Ast.mk_stmt
        ~pragmas:[ pragma "oneapi" [ "zero_copy" ] ]
        (Ast.Expr_stmt (call kernel_fn args))
    in
    let p = Ast.replace_func p { mfn with Ast.fbody = [ direct_call ] } in
    (* kernel params must accept host (double) arrays again: un-demote
       pointer parameter types while keeping the SP compute inside *)
    let fparams =
      List.map2
        (fun (orig : Ast.param) (dev : Ast.param) -> { dev with Ast.prm_ty = orig.Ast.prm_ty })
        mfn.Ast.fparams kfn.Ast.fparams
    in
    let kfn' = { kfn with Ast.fparams } in
    let p = Ast.replace_func p kfn' in
    (* annotate the pipeline loop *)
    (match Query.outermost_loops kfn' with
     | [] -> p
     | outer :: _ ->
       Rewrite.add_pragma p ~sid:outer.lm_stmt.Ast.sid (pragma "oneapi" [ "zero_copy" ]))
  | _, _ -> p

let is_zero_copy p ~kernel_fn =
  match Ast.find_func p kernel_fn with
  | None -> false
  | Some fn ->
    List.exists
      (fun (lm : Query.loop_match) ->
        List.exists
          (fun (pr : Ast.pragma) ->
            pr.Ast.pname = "oneapi" && List.mem "zero_copy" pr.Ast.pargs)
          lm.lm_stmt.Ast.pragmas)
      (Query.loops_in_func fn)
