let is_one (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Float_lit (1.0, _) -> true
  | Ast.Int_lit 1 -> true
  | _ -> false

let rewrite_expr (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Binary (Ast.Div, one, inner) when is_one one ->
    (match inner.Ast.edesc with
     | Ast.Call ("sqrt", [ x ]) -> Some { e with Ast.edesc = Ast.Call ("rsqrt", [ x ]) }
     | Ast.Call ("sqrtf", [ x ]) -> Some { e with Ast.edesc = Ast.Call ("rsqrtf", [ x ]) }
     | _ -> None)
  | _ -> None

let apply p ~fnames =
  {
    Ast.pglobals =
      List.map
        (function
          | Ast.Gfunc fn when List.mem fn.Ast.fname fnames ->
            Ast.Gfunc
              { fn with Ast.fbody = Rewrite.map_exprs_in_block rewrite_expr fn.Ast.fbody }
          | g -> g)
        p.Ast.pglobals;
  }

let rsqrt_sites p ~fname =
  match Ast.find_func p fname with
  | None -> 0
  | Some fn ->
    let n = ref 0 in
    let count (e : Ast.expr) =
      (match rewrite_expr e with Some _ -> incr n | None -> ());
      None
    in
    ignore (Rewrite.map_exprs_in_block count fn.Ast.fbody);
    !n
