open Builder

type result = {
  hip_program : Ast.program;
  hip_body_fn : string;
  hip_launch_fn : string;
  hip_manage_fn : string;
  hip_written_arrays : string list;
}

let tid = "__tid"

let dev_name arr = "d_" ^ arr

let generate ?(blocksize = 256) (p : Ast.program) ~kernel =
  match Ast.find_func p kernel with
  | None -> Error (Printf.sprintf "kernel %s not found" kernel)
  | Some fn ->
    (match Query.outermost_loops fn with
     | [] -> Error (Printf.sprintf "kernel %s has no loop" kernel)
     | outer :: _ ->
       let verdict = Dependence.analyse_loop p outer in
       let scalar_reds =
         List.filter (fun (r : Dependence.reduction) -> not r.Dependence.red_is_array)
           verdict.Dependence.reductions
       in
       if not verdict.Dependence.parallel_with_reductions then
         Error "outer loop carries a dependence; GPU mapping needs a parallel loop"
       else if scalar_reds <> [] then
         Error "outer loop reduces into a scalar; GPU mapping would need atomics"
       else if not (match outer.lm_header.step.Ast.edesc with Ast.Int_lit 1 -> true | _ -> false)
       then Error "GPU mapping requires a unit-stride outer loop"
       else begin
         let h = outer.lm_header in
         let params = fn.Ast.fparams in
         let ptr_params, scalar_params = Offload_common.split_params params in
         match Offload_common.resolve_lengths p ~kernel ptr_params with
         | None -> Error "could not resolve device buffer lengths for pointer arguments"
         | Some lengths ->
           let body_fn_name = kernel ^ "__hip_body" in
           let launch_fn_name = kernel ^ "__hip_launch" in
           (* ---- device body ---- *)
           let index_decl =
             decl Ast.Tint h.Ast.index (Ast.refresh_expr h.Ast.lo +: var tid)
           in
           let guard_cond =
             match h.Ast.cmp with
             | Ast.CLt -> var h.Ast.index <: Ast.refresh_expr h.Ast.hi
             | Ast.CLe -> var h.Ast.index <=: Ast.refresh_expr h.Ast.hi
           in
           let body_params = param Ast.Tint tid :: params in
           let body_fn =
             Builder.func body_fn_name body_params
               [ index_decl; if_ guard_cond (List.map Ast.refresh_stmt outer.lm_body) [] ]
           in
           (* ---- launch function ---- *)
           let total = "__total" in
           let launch_loop =
             for_
               ~pragmas:
                 [ pragma "hip" [ "kernel_launch"; Printf.sprintf "blocksize(%d)" blocksize ] ]
               tid ~lo:(ilit 0) ~hi:(var total)
               [
                 expr_stmt
                   (call body_fn_name
                      (var tid :: List.map (fun (q : Ast.param) -> var q.Ast.prm_name) params));
               ]
           in
           let launch_fn =
             Builder.func launch_fn_name (param Ast.Tint total :: params) [ launch_loop ]
           in
           (* ---- management function (same name as the kernel) ---- *)
           let written = Query.writes_in_block outer.lm_body in
           let written_ptrs =
             List.filter (fun (q : Ast.param) -> List.mem q.Ast.prm_name written) ptr_params
           in
           let buffer_decls =
             List.map
               (fun (q : Ast.param) ->
                 Offload_common.buffer_decl ~vendor:"hip" q
                   ~len:(List.assoc q.Ast.prm_name lengths)
                   ~dev_name)
               ptr_params
           in
           let copy_in =
             List.map
               (fun (q : Ast.param) ->
                 Offload_common.copy_loop ~vendor:"hip" ~tag:"memcpy_h2d"
                   ~dst:(dev_name q.Ast.prm_name) ~src:q.Ast.prm_name
                   ~len:(List.assoc q.Ast.prm_name lengths))
               ptr_params
           in
           let copy_out =
             List.map
               (fun (q : Ast.param) ->
                 Offload_common.copy_loop ~vendor:"hip" ~tag:"memcpy_d2h"
                   ~dst:q.Ast.prm_name ~src:(dev_name q.Ast.prm_name)
                   ~len:(List.assoc q.Ast.prm_name lengths))
               written_ptrs
           in
           let total_expr =
             match h.Ast.cmp with
             | Ast.CLt -> Ast.refresh_expr h.Ast.hi -: Ast.refresh_expr h.Ast.lo
             | Ast.CLe -> Ast.refresh_expr h.Ast.hi -: Ast.refresh_expr h.Ast.lo +: ilit 1
           in
           let launch_args =
             var total
             :: List.map (fun (q : Ast.param) -> var (dev_name q.Ast.prm_name)) ptr_params
             @ List.map (fun (q : Ast.param) -> var q.Ast.prm_name) scalar_params
           in
           let manage_body =
             buffer_decls @ copy_in
             @ [
                 decl Ast.Tint total total_expr;
                 expr_stmt (call launch_fn_name launch_args);
               ]
             @ copy_out
           in
           let manage_fn = { fn with Ast.fbody = manage_body } in
           (* launch/body parameter order: pointers then scalars, matching
              launch_args; rebuild their params accordingly *)
           let reordered = ptr_params @ scalar_params in
           let body_fn = { body_fn with Ast.fparams = param Ast.Tint tid :: reordered } in
           let launch_fn =
             { launch_fn with Ast.fparams = param Ast.Tint total :: reordered }
           in
           let launch_fn =
             {
               launch_fn with
               Ast.fbody =
                 [
                   for_
                     ~pragmas:
                       [
                         pragma "hip"
                           [ "kernel_launch"; Printf.sprintf "blocksize(%d)" blocksize ];
                       ]
                     tid ~lo:(ilit 0) ~hi:(var total)
                     [
                       expr_stmt
                         (call body_fn_name
                            (var tid
                             :: List.map (fun (q : Ast.param) -> var q.Ast.prm_name) reordered));
                     ];
                 ];
             }
           in
           (* splice: body + launch before the management function *)
           let globals =
             List.concat_map
               (fun g ->
                 match g with
                 | Ast.Gfunc f when f.Ast.fname = kernel ->
                   [ Ast.Gfunc body_fn; Ast.Gfunc launch_fn; Ast.Gfunc manage_fn ]
                 | _ -> [ g ])
               p.Ast.pglobals
           in
           let prog = { Ast.pglobals = globals } in
           Ok
             {
               hip_program = prog;
               hip_body_fn = body_fn_name;
               hip_launch_fn = launch_fn_name;
               hip_manage_fn = kernel;
               hip_written_arrays =
                 List.map (fun (q : Ast.param) -> q.Ast.prm_name) written_ptrs;
             }
       end)

let launch_pragma_loop (p : Ast.program) ~launch_fn =
  match Ast.find_func p launch_fn with
  | None -> None
  | Some fn ->
    List.find_opt
      (fun (lm : Query.loop_match) ->
        List.exists
          (fun (pr : Ast.pragma) ->
            pr.Ast.pname = "hip" && List.mem "kernel_launch" pr.Ast.pargs)
          lm.lm_stmt.Ast.pragmas)
      (Query.loops_in_func fn)

let set_blocksize p ~launch_fn n =
  match launch_pragma_loop p ~launch_fn with
  | None -> p
  | Some lm ->
    let pragmas =
      List.map
        (fun (pr : Ast.pragma) ->
          if pr.Ast.pname <> "hip" || not (List.mem "kernel_launch" pr.Ast.pargs) then pr
          else
            {
              pr with
              Ast.pargs =
                List.map
                  (fun a ->
                    if String.length a >= 10 && String.sub a 0 10 = "blocksize(" then
                      Printf.sprintf "blocksize(%d)" n
                    else a)
                  pr.Ast.pargs;
            })
        lm.lm_stmt.Ast.pragmas
    in
    Rewrite.set_pragmas p ~sid:lm.lm_stmt.Ast.sid pragmas

let blocksize p ~launch_fn =
  match launch_pragma_loop p ~launch_fn with
  | None -> None
  | Some lm ->
    List.find_map
      (fun (pr : Ast.pragma) ->
        if pr.Ast.pname <> "hip" then None
        else
          List.find_map
            (fun a ->
              if String.length a > 10 && String.sub a 0 10 = "blocksize(" then
                int_of_string_opt (String.sub a 10 (String.length a - 11))
              else None)
            pr.Ast.pargs)
      lm.lm_stmt.Ast.pragmas

let employ_pinned p ~manage_fn =
  match Ast.find_func p manage_fn with
  | None -> p
  | Some fn ->
    let fbody =
      List.map
        (fun (s : Ast.stmt) ->
          let is_buffer =
            List.exists
              (fun (pr : Ast.pragma) ->
                pr.Ast.pname = "hip" && List.mem "device_buffer" pr.Ast.pargs)
              s.Ast.pragmas
          in
          if is_buffer && not (List.exists (fun (pr : Ast.pragma) -> List.mem "pinned" pr.Ast.pargs) s.Ast.pragmas)
          then { s with Ast.pragmas = s.Ast.pragmas @ [ pragma "hip" [ "pinned" ] ] }
          else s)
        fn.Ast.fbody
    in
    Ast.replace_func p { fn with Ast.fbody }

let is_pinned p ~manage_fn =
  match Ast.find_func p manage_fn with
  | None -> false
  | Some fn ->
    List.exists
      (fun (s : Ast.stmt) ->
        List.exists
          (fun (pr : Ast.pragma) -> pr.Ast.pname = "hip" && List.mem "pinned" pr.Ast.pargs)
          s.Ast.pragmas)
      fn.Ast.fbody
