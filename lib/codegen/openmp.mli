(** OpenMP design generation ("Multi-Thread Parallel Loops" +
    "OMP Num Threads DSE", Fig. 4).

    Annotates the kernel's outermost loop with
    [#pragma omp parallel for] — including [reduction(...)] clauses derived
    from the dependence verdict — and records the selected thread count as a
    [num_threads(N)] clause.  The program text is otherwise unchanged,
    which is why Table I reports only ~2 % added LOC for OpenMP designs. *)

type result = {
  omp_program : Ast.program;
  omp_loop_sid : int;
  omp_reductions : string list;  (** rendered clauses, e.g. ["+:acc"] *)
}

val generate :
  Ast.program -> kernel:string -> (result, string) Stdlib.result
(** Fails when the kernel's outer loop is not parallel (a carried
    dependence other than a reduction). *)

val set_num_threads : Ast.program -> kernel:string -> threads:int -> Ast.program
(** Set/replace the [num_threads] clause on the kernel's parallel loop. *)

val num_threads : Ast.program -> kernel:string -> int option
