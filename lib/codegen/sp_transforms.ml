let sp_name = function
  | "sqrt" -> Some "sqrtf"
  | "rsqrt" -> Some "rsqrtf"
  | "sin" -> Some "sinf"
  | "cos" -> Some "cosf"
  | "tan" -> Some "tanf"
  | "exp" -> Some "expf"
  | "log" -> Some "logf"
  | "pow" -> Some "powf"
  | "fabs" -> Some "fabsf"
  | "fmin" -> Some "fminf"
  | "fmax" -> Some "fmaxf"
  | "floor" -> Some "floorf"
  | "ceil" -> Some "ceilf"
  | "tanh" -> Some "tanhf"
  | "erf" -> Some "erff"
  | _ -> None

let map_funcs (p : Ast.program) ~fnames f =
  {
    Ast.pglobals =
      List.map
        (function
          | Ast.Gfunc fn when List.mem fn.Ast.fname fnames -> Ast.Gfunc (f fn)
          | g -> g)
        p.Ast.pglobals;
  }

let sp_math_fns p ~fnames =
  map_funcs p ~fnames (fun fn ->
      {
        fn with
        Ast.fbody =
          Rewrite.map_exprs_in_block
            (fun e ->
              match e.Ast.edesc with
              | Ast.Call (name, args) ->
                (match sp_name name with
                 | Some name' -> Some { e with Ast.edesc = Ast.Call (name', args) }
                 | None -> None)
              | _ -> None)
            fn.Ast.fbody;
      })

let sp_literals p ~fnames =
  map_funcs p ~fnames (fun fn ->
      {
        fn with
        Ast.fbody =
          Rewrite.map_exprs_in_block
            (fun e ->
              match e.Ast.edesc with
              | Ast.Float_lit (v, false) -> Some { e with Ast.edesc = Ast.Float_lit (v, true) }
              | _ -> None)
            fn.Ast.fbody;
      })

let rec demote_ty = function
  | Ast.Tdouble -> Ast.Tfloat
  | Ast.Tptr t -> Ast.Tptr (demote_ty t)
  | (Ast.Tvoid | Ast.Tbool | Ast.Tint | Ast.Tfloat) as t -> t

let rec demote_stmt (s : Ast.stmt) =
  let s =
    match s.Ast.sdesc with
    | Ast.Decl d -> { s with Ast.sdesc = Ast.Decl { d with Ast.dty = demote_ty d.Ast.dty } }
    | _ -> s
  in
  let s =
    Rewrite.map_exprs_in_stmt
      (fun e ->
        match e.Ast.edesc with
        | Ast.Cast (t, a) when t = Ast.Tdouble -> Some { e with Ast.edesc = Ast.Cast (Ast.Tfloat, a) }
        | _ -> None)
      s
  in
  let sdesc =
    match s.Ast.sdesc with
    | Ast.If (c, b1, b2) -> Ast.If (c, List.map demote_stmt b1, List.map demote_stmt b2)
    | Ast.For (h, b) -> Ast.For (h, List.map demote_stmt b)
    | Ast.While (c, b) -> Ast.While (c, List.map demote_stmt b)
    | Ast.Scope b -> Ast.Scope (List.map demote_stmt b)
    | d -> d
  in
  { s with Ast.sdesc }

let demote_types p ~fnames =
  map_funcs p ~fnames (fun fn ->
      let fparams =
        List.map (fun prm -> { prm with Ast.prm_ty = demote_ty prm.Ast.prm_ty }) fn.Ast.fparams
      in
      let fbody = List.map demote_stmt fn.Ast.fbody in
      { fn with Ast.fparams; fbody; fret = demote_ty fn.Ast.fret })

let apply_all p ~fnames =
  let p = sp_math_fns p ~fnames in
  let p = sp_literals p ~fnames in
  demote_types p ~fnames
