(** Buffer-length resolution for offload code generation.

    The HIP and oneAPI generators emit device-buffer allocations and copy
    loops for every pointer argument of the kernel; those need a length
    expression valid inside the generated management function.  Lengths are
    recovered from the arrays' defining declarations and accepted only when
    they are built from literals and global constants (and therefore remain
    meaningful in any scope). *)

val length_expr_of_array : Ast.program -> string -> Ast.expr option
(** Defining size expression of a (global or local) array declaration with
    the given name, if it is scope-independent. *)

val lengths_for_params :
  Ast.program -> caller:string -> args:string list -> (string * Ast.expr) list option
(** For each argument name passed to a kernel from [caller], resolve the
    length expression of the underlying array.  [None] when any pointer
    argument cannot be resolved. *)
