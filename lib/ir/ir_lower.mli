(** Lowering pass: select canonical counted [for] loop nests and compile
    them to {!Ir.fast_loop} plans for the VM backend.

    A loop nest is plannable when every level's bounds are nest-invariant
    integer expressions (literals, unassigned outer int scalars, and
    [+]/[-]/[*]/negation over those), its body contains only statically
    typed statements the flat IR can express — declarations, assignments,
    expression statements, [if] statements, inner [for] loops, scopes —
    and all array accesses go through plain outer pointer variables.
    Ternaries and short-circuit [&&]/[||] lower to control-flow sites with
    per-site taken counters, so the executing backend's batched step and
    hardware-counter accounting stays exact even when arms cost
    differently.  Loops containing [while], [return], [break], [continue],
    user function calls, or statements inside observation regions are
    rejected, as is anything whose counter or rounding behaviour the flat
    IR cannot replicate bit-for-bit; rejected loops simply run on the
    closure backend, so lowering is a pure, sound optimisation with no
    effect on observable semantics (values, step budgets, counters, error
    messages, PRNG draws, or printed output).

    Lowering is purely syntactic + type-directed: it never looks at
    runtime values.  All value-dependent safety conditions (trip counts,
    bounds, aliasing, overflow) are checked per nest entry by the runtime
    guard in [Fastloop]. *)

(** Why a given [for] statement did or did not get a plan.  [Planned]
    reports the nest shape actually lowered (number of levels including
    the root, and number of control-flow sites). *)
type outcome =
  | Planned of { levels : int; sites : int }
  | Unplannable of string

val plan : ?region_sids:int list -> Ast.program -> Ir.plan
(** [plan ~region_sids p] typechecks [p] and builds fast-loop plans for
    every plannable [for] nest, keyed by the root [For] statement id.
    Loops whose body contains a statement in [region_sids] (observation
    regions / [trace_aliases] footprints) are not planned, since region
    tracking needs per-statement granularity; the guard additionally
    refuses to run while any region is active.  Inner loops of a planned
    nest also get independent entries of their own, so the compiled
    fallback still fast-paths them when the outer guard declines.
    Programs that fail {!Typecheck.check_program} produce an empty plan
    (the backends reproduce the walker's dynamic behaviour instead). *)

val plan_report :
  ?region_sids:int list -> Ast.program -> (Loc.t * outcome) list
(** Same walk as {!plan}, but returns one entry per [for] statement (in
    deterministic program order, outer loops before the loops they
    contain) describing the planning outcome — used by [--explain] to
    make coverage misses diagnosable. *)
