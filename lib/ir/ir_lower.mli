(** Lowering pass: select and compile canonical loops into {!Ir.fast_loop}s.

    The pass consumes typecheck results ({!Typecheck.env_for_func},
    {!Typecheck.lookup_var}) and walks every function body looking for
    innermost counted [for] loops whose bodies are straight-line, statically
    typed statements — scalar declarations with initialisers, assignments to
    scalars and array elements, and effectful expressions built from
    arithmetic, math intrinsics, [rand01()] and array reads.  Each eligible
    loop is lowered to a flat instruction array over unboxed register files,
    with affine array accesses turned into {!Ir.cursor}s (bounds checks
    elided, verified once by the executing backend's guard), loop-invariant
    loads hoisted, accumulator cells register-promoted, and the hottest
    opcode pairs fused into superinstructions.

    Anything the pass cannot prove eligible is simply left out of the plan:
    the executing backend falls back to the reference closure compiler for
    those loops, so lowering is a pure, sound optimisation with no effect on
    observable semantics (values, step budgets, counters, error messages,
    PRNG draws, or printed output). *)

val plan : ?region_sids:int list -> Ast.program -> Ir.plan
(** [plan ~region_sids p] lowers every eligible loop of [p], keyed by the
    [For] statement id.  Programs that fail {!Typecheck.check_program}
    produce an empty plan (the backends reproduce the walker's dynamic
    behaviour instead).  [region_sids] lists statement ids instrumented as
    observation regions ([trace_aliases] footprints): loops containing such
    statements are not planned, and the guard additionally refuses to run
    while any region is active. *)
