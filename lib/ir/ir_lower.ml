(* Lowering from the typed AST to flat fast-loop nest plans.

   Parity discipline: every lowered operation must be observably identical
   to what lib/interp/compile.ml's closures do for the same source node —
   same float rounding (single-precision demotion points), same counter
   increments, same error messages and locations, same PRNG draw order.
   Each arm below cites the compile.ml arm it mirrors; when in doubt the
   pass rejects the loop (raising [Reject] with a reason) and the loop
   simply runs on the closure backend.

   Since the nest extension, a plan is a tree: the root level's block may
   contain inner loop levels (whose bounds must be nest-invariant, so every
   level has one trip count per entry) and control-flow sites ([if]
   statements, ternaries and short-circuit operators, whose arms are
   sub-blocks selected by a 0/1 condition register).  Step and counter
   accounting stays exact because each block carries its own static cost
   and the executor counts taken then-arms per site. *)

open Ast

exception Reject of string

let reject r = raise (Reject r)

(* Value.demote lives in lib/interp, which depends on this library; the
   round trip is replicated bit-for-bit. *)
let demote32 f = Int32.float_of_bits (Int32.bits_of_float f)

(* ---- invariant integer expressions ---- *)

(* Smart constructors fold constants and units.  All identities hold in the
   wrap-around ring of native ints, so simplification never changes the
   value the guard computes. *)
let iadd a b =
  match a, b with
  | Ir.Iconst x, Ir.Iconst y -> Ir.Iconst (x + y)
  | Ir.Iconst 0, x | x, Ir.Iconst 0 -> x
  | _ -> Ir.Iadd (a, b)

let ineg = function
  | Ir.Iconst x -> Ir.Iconst (-x)
  | Ir.Ineg x -> x
  | x -> Ir.Ineg x

let isub a b =
  match a, b with
  | Ir.Iconst x, Ir.Iconst y -> Ir.Iconst (x - y)
  | x, Ir.Iconst 0 -> x
  | Ir.Iconst 0, x -> ineg x
  | _ -> Ir.Isub (a, b)

let imul a b =
  match a, b with
  | Ir.Iconst x, Ir.Iconst y -> Ir.Iconst (x * y)
  | Ir.Iconst 0, _ | _, Ir.Iconst 0 -> Ir.Iconst 0
  | Ir.Iconst 1, x | x, Ir.Iconst 1 -> x
  | _ -> Ir.Imul (a, b)

(* sparse per-level coefficient vectors: sorted (level, iexpr) assoc lists
   with no zero entries, merged pointwise *)
let cneg coefs = List.map (fun (l, e) -> (l, ineg e)) coefs

let rec cmerge f g xs ys =
  match xs, ys with
  | [], [] -> []
  | x :: tl, [] -> x :: cmerge f g tl []
  | [], (l, e) :: tl -> (l, g e) :: cmerge f g [] tl
  | (la, ea) :: ta, (lb, eb) :: tb ->
    if la < lb then (la, ea) :: cmerge f g ta ys
    else if lb < la then (lb, g eb) :: cmerge f g xs tb
    else (la, f ea eb) :: cmerge f g ta tb

let cnorm coefs = List.filter (fun (_, e) -> e <> Ir.Iconst 0) coefs

let cadd xs ys = cnorm (cmerge iadd (fun e -> e) xs ys)

let csub xs ys = cnorm (cmerge isub ineg xs ys)

let cscale k coefs =
  List.filter_map
    (fun (l, e) ->
      match imul k e with Ir.Iconst 0 -> None | e' -> Some (l, e'))
    coefs

(* ---- per-nest lowering context ---- *)

type mvar = {
  mv_name : string;
  mv_kind : Ir.var_kind;
  mv_reg : int;
  mutable mv_written : bool;
}

type marr = { ma_name : string; ma_ety : Ir.ety; mutable ma_stored : bool }

(* result of lowering an expression: register plus static kind, mirroring
   compile.ml's cexp kinds (booleans ride in int registers as 0/1) *)
type lres = Ri of int * bool | Rf of int * Ir.prec

(* what a name in the body's scope currently resolves to *)
type sym = Sindex of int  (** loop index of level [l] *) | Slocal of lres

type lctx = {
  env : Typecheck.env;  (* scope enclosing the nest (without the indexes) *)
  assigned : (string, unit) Hashtbl.t;  (* scalars assigned anywhere in nest *)
  all_locals : (string, unit) Hashtbl.t;  (* names declared anywhere in nest *)
  user_funcs : (string, unit) Hashtbl.t;
  region_set : (int, unit) Hashtbl.t;
  sym : (string, sym) Hashtbl.t;  (* scoped: add shadows, remove unshadows *)
  mutable nf : int;
  mutable ni : int;
  mutable pro : Ir.fop list;  (* reversed *)
  (* the block currently under construction *)
  mutable cur : Ir.fop list;  (* reversed pending straight-line run *)
  mutable items : Ir.bitem list;  (* reversed *)
  mutable cnt : Ir.counts;
  mutable steps : int;
  (* nest-wide tables *)
  mutable nlevels : int;
  lvls : (int, Ir.level) Hashtbl.t;
  lidx : (int, int) Hashtbl.t;  (* level id -> lazily allocated index reg *)
  mutable sites : Ir.site list;  (* reversed; id = index from front *)
  mutable nsites : int;
  vtbl : (string, int * mvar) Hashtbl.t;
  mutable vars : mvar list;  (* reversed; id = index from front *)
  mutable nvars : int;
  atbl : (string, int * marr) Hashtbl.t;
  mutable arrs : marr list;  (* reversed *)
  mutable narrs : int;
  mutable cursors : (int * (int * Ir.iexpr) list * Ir.iexpr) list;
      (* reversed; (array id, sparse per-level coefs, base) *)
  mutable ncursors : int;
  fconsts : (int64, int) Hashtbl.t;
  iconsts : (int, int) Hashtbl.t;
}

let allocf c =
  let r = c.nf in
  c.nf <- r + 1;
  r

let alloci c =
  let r = c.ni in
  c.ni <- r + 1;
  r

let emit c op = c.cur <- op :: c.cur

(* ---- block construction ----

   Blocks are built with an explicit save/restore stack so that site arms
   can be lowered mid-expression (ternaries) and closed in any order that
   respects nesting. *)

type openblk = {
  ob_cur : Ir.fop list;
  ob_items : Ir.bitem list;
  ob_cnt : Ir.counts;
  ob_steps : int;
}

let open_block c =
  let ob =
    { ob_cur = c.cur; ob_items = c.items; ob_cnt = c.cnt; ob_steps = c.steps }
  in
  c.cur <- [];
  c.items <- [];
  c.cnt <- Ir.zero_counts ();
  c.steps <- 0;
  ob

let flush_ops c =
  if c.cur <> [] then begin
    c.items <- Ir.Bops (Array.of_list (List.rev c.cur)) :: c.items;
    c.cur <- []
  end

let close_block c ob =
  flush_ops c;
  let b =
    {
      Ir.b_items = Array.of_list (List.rev c.items);
      b_steps = c.steps;
      b_cnt = c.cnt;
    }
  in
  c.cur <- ob.ob_cur;
  c.items <- ob.ob_items;
  c.cnt <- ob.ob_cnt;
  c.steps <- ob.ob_steps;
  b

let with_block c f =
  let ob = open_block c in
  f ();
  close_block c ob

let add_site c cond bt be =
  flush_ops c;
  let id = c.nsites in
  c.nsites <- id + 1;
  c.sites <- { Ir.s_cond = cond; s_then = bt; s_else = be } :: c.sites;
  c.items <- Ir.Bsite id :: c.items

let const_f c x =
  let key = Int64.bits_of_float x in
  match Hashtbl.find_opt c.fconsts key with
  | Some r -> r
  | None ->
    let r = allocf c in
    c.pro <- Ir.FConst (r, x) :: c.pro;
    Hashtbl.add c.fconsts key r;
    r

let const_i c n =
  match Hashtbl.find_opt c.iconsts n with
  | Some r -> r
  | None ->
    let r = alloci c in
    c.pro <- Ir.IConst (r, n) :: c.pro;
    Hashtbl.add c.iconsts n r;
    r

let level_index_reg c l =
  match Hashtbl.find_opt c.lidx l with
  | Some r -> r
  | None ->
    let r = alloci c in
    Hashtbl.add c.lidx l r;
    r

let getvar c name (kind : Ir.var_kind) =
  match Hashtbl.find_opt c.vtbl name with
  | Some (id, mv) ->
    if mv.mv_kind <> kind then reject "variable kind mismatch";
    (id, mv)
  | None ->
    let reg = match kind with Ir.Kfloat _ -> allocf c | _ -> alloci c in
    let mv = { mv_name = name; mv_kind = kind; mv_reg = reg; mv_written = false } in
    let id = c.nvars in
    c.nvars <- id + 1;
    c.vars <- mv :: c.vars;
    Hashtbl.add c.vtbl name (id, mv);
    (id, mv)

let getarr c name (ety : Ir.ety) =
  match Hashtbl.find_opt c.atbl name with
  | Some (id, ma) ->
    if ma.ma_ety <> ety then reject "array element-type mismatch";
    (id, ma)
  | None ->
    let ma = { ma_name = name; ma_ety = ety; ma_stored = false } in
    let id = c.narrs in
    c.narrs <- id + 1;
    c.arrs <- ma :: c.arrs;
    Hashtbl.add c.atbl name (id, ma);
    (id, ma)

let getcursor c aid (coefs : (int * Ir.iexpr) list) base =
  let rec find k = function
    | [] -> None
    | (a, co, b) :: tl ->
      if a = aid && co = coefs && b = base then Some k else find (k - 1) tl
  in
  match find (c.ncursors - 1) c.cursors with
  | Some k -> k
  | None ->
    let k = c.ncursors in
    c.ncursors <- k + 1;
    c.cursors <- (aid, coefs, base) :: c.cursors;
    k

(* counter-delta helpers; mirror Interp_rt.count_int_op / count_flop *)
let kint c = c.cnt.Ir.k_int_ops <- c.cnt.Ir.k_int_ops + 1

let kbranch c = c.cnt.Ir.k_branches <- c.cnt.Ir.k_branches + 1

let kflop c (p : Ir.prec) cls =
  let t = c.cnt in
  match p, cls with
  | Ir.Psingle, `Add -> t.Ir.k_sp_add <- t.Ir.k_sp_add + 1
  | Ir.Psingle, `Mul -> t.Ir.k_sp_mul <- t.Ir.k_sp_mul + 1
  | Ir.Psingle, `Div -> t.Ir.k_sp_div <- t.Ir.k_sp_div + 1
  | Ir.Psingle, `Special -> t.Ir.k_sp_special <- t.Ir.k_sp_special + 1
  | Ir.Pdouble, `Add -> t.Ir.k_dp_add <- t.Ir.k_dp_add + 1
  | Ir.Pdouble, `Mul -> t.Ir.k_dp_mul <- t.Ir.k_dp_mul + 1
  | Ir.Pdouble, `Div -> t.Ir.k_dp_div <- t.Ir.k_dp_div + 1
  | Ir.Pdouble, `Special -> t.Ir.k_dp_special <- t.Ir.k_dp_special + 1

let kload c (ety : Ir.ety) =
  c.cnt.Ir.k_loads <- c.cnt.Ir.k_loads + 1;
  c.cnt.Ir.k_bytes_loaded <-
    c.cnt.Ir.k_bytes_loaded + Ast.sizeof (Ir.ty_of_ety ety)

let kstore c (ety : Ir.ety) =
  c.cnt.Ir.k_stores <- c.cnt.Ir.k_stores + 1;
  c.cnt.Ir.k_bytes_stored <-
    c.cnt.Ir.k_bytes_stored + Ast.sizeof (Ir.ty_of_ety ety)

(* ---- affine index extraction ----

   idx(i_0..i_n) = sum_l coefs_l*i_l + base with nest-invariant coefs/base.
   The op count is the number of Binary/Unary int nodes the closure backend
   would count per evaluation; both are exact in the wrap-around ring, so
   the guard's per-level endpoint bounds check covers every reached
   iteration (with magnitude caps at run time to rule out overflow of the
   affine sum itself). *)
let rec affine c (e : expr) : ((int * Ir.iexpr) list * Ir.iexpr * int) option =
  match e.edesc with
  | Int_lit k -> Some ([], Ir.Iconst k, 0)
  | Var v ->
    (match Hashtbl.find_opt c.sym v with
     | Some (Sindex l) -> Some ([ (l, Ir.Iconst 1) ], Ir.Iconst 0, 0)
     | Some (Slocal _) -> None
     | None ->
       if Hashtbl.mem c.all_locals v then None
       else (
         match Typecheck.lookup_var c.env v with
         | Some Tint when not (Hashtbl.mem c.assigned v) ->
           let id, _ = getvar c v Ir.Kint in
           Some ([], Ir.Ivar id, 0)
         | _ -> None))
  | Unary (Neg, a) ->
    (match affine c a with
     | Some (ca, ba, n) -> Some (cneg ca, ineg ba, n + 1)
     | None -> None)
  | Binary (Add, a, b) ->
    (match affine c a, affine c b with
     | Some (ca, ba, na), Some (cb, bb, nb) ->
       Some (cadd ca cb, iadd ba bb, na + nb + 1)
     | _ -> None)
  | Binary (Sub, a, b) ->
    (match affine c a, affine c b with
     | Some (ca, ba, na), Some (cb, bb, nb) ->
       Some (csub ca cb, isub ba bb, na + nb + 1)
     | _ -> None)
  | Binary (Mul, a, b) ->
    (match affine c a, affine c b with
     | Some (ca, ba, na), Some (cb, bb, nb) ->
       if ca = [] then Some (cscale ba cb, imul ba bb, na + nb + 1)
       else if cb = [] then Some (cscale bb ca, imul ba bb, na + nb + 1)
       else None
     | _ -> None)
  | _ -> None

(* bound conversion: like [affine] but with no loop-variable leaf — every
   level's lo/hi/step must be invariant across the whole nest so trip
   counts are constants per entry *)
let rec invariant c (e : expr) : Ir.iexpr * int =
  match e.edesc with
  | Int_lit k -> (Ir.Iconst k, 0)
  | Var v ->
    if Hashtbl.mem c.sym v || Hashtbl.mem c.all_locals v then
      reject "non-invariant bound"
    else (
      match Typecheck.lookup_var c.env v with
      | Some Tint when not (Hashtbl.mem c.assigned v) ->
        let id, _ = getvar c v Ir.Kint in
        (Ir.Ivar id, 0)
      | _ -> reject "non-invariant bound")
  | Unary (Neg, a) ->
    let x, n = invariant c a in
    (ineg x, n + 1)
  | Binary (Add, a, b) ->
    let x, na = invariant c a in
    let y, nb = invariant c b in
    (iadd x y, na + nb + 1)
  | Binary (Sub, a, b) ->
    let x, na = invariant c a in
    let y, nb = invariant c b in
    (isub x y, na + nb + 1)
  | Binary (Mul, a, b) ->
    let x, na = invariant c a in
    let y, nb = invariant c b in
    (imul x y, na + nb + 1)
  | _ -> reject "non-invariant bound"

(* ---- expression lowering ---- *)

let as_int c = function
  | Ri (r, _) -> r
  | Rf (r, _) ->
    let d = alloci c in
    emit c (Ir.FtoI (d, r));
    d

let as_float c = function
  | Rf (r, _) -> r
  | Ri (r, _) ->
    let d = allocf c in
    emit c (Ir.ItoF (d, r));
    d

let as_truth c = function
  | Ri (r, true) -> r
  | Ri (r, false) ->
    let d = alloci c in
    emit c (Ir.ItoB (d, r));
    d
  | Rf (r, _) ->
    let d = alloci c in
    emit c (Ir.FtoB (d, r));
    d

let is_dp = function Rf (_, Ir.Pdouble) -> true | _ -> false

let cmpop_of = function
  | Lt -> Ir.Clt
  | Le -> Ir.Cle
  | Gt -> Ir.Cgt
  | Ge -> Ir.Cge
  | Eq -> Ir.Ceq
  | Ne -> Ir.Cne
  | _ -> assert false

let rec lexpr c (e : expr) : lres =
  match e.edesc with
  | Int_lit k -> Ri (const_i c k, false)
  | Bool_lit b -> Ri (const_i c (if b then 1 else 0), true)
  | Float_lit (x, true) -> Rf (const_f c (demote32 x), Ir.Psingle)
  | Float_lit (x, false) -> Rf (const_f c x, Ir.Pdouble)
  | Var v -> lvar c v
  | Unary (Neg, a) ->
    (match lexpr c a with
     | Ri (r, false) ->
       (* compile.ml Neg/Kint: count_int_op, negate *)
       let d = alloci c in
       emit c (Ir.INeg (d, r));
       kint c;
       Ri (d, false)
     | Ri (_, true) ->
       reject "negating a boolean"  (* walker raises "negating non-number" *)
     | Rf (r, p) ->
       (* compile.ml Neg/Kfloat: count_flop p Cadd, no demotion *)
       let d = allocf c in
       emit c (Ir.FNeg (d, r));
       kflop c p `Add;
       Rf (d, p))
  | Unary (Not, a) ->
    (* compile.ml Not: operand truth, count_int_op, logical negation *)
    let t = as_truth c (lexpr c a) in
    let d = alloci c in
    emit c (Ir.INot (d, t));
    kint c;
    Ri (d, true)
  | Binary (And, a, b) ->
    (* compile.ml And: count_branch; if lhs truth then rhs truth else false *)
    kbranch c;
    let ta = as_truth c (lexpr c a) in
    let d = alloci c in
    let ob1 = open_block c in
    let tb = as_truth c (lexpr c b) in
    emit c (Ir.IMov (d, tb));
    let bt = close_block c ob1 in
    let ob2 = open_block c in
    emit c (Ir.IConst (d, 0));
    let be = close_block c ob2 in
    add_site c ta bt be;
    Ri (d, true)
  | Binary (Or, a, b) ->
    (* compile.ml Or: count_branch; if lhs truth then true else rhs truth *)
    kbranch c;
    let ta = as_truth c (lexpr c a) in
    let d = alloci c in
    let ob1 = open_block c in
    emit c (Ir.IConst (d, 1));
    let bt = close_block c ob1 in
    let ob2 = open_block c in
    let tb = as_truth c (lexpr c b) in
    emit c (Ir.IMov (d, tb));
    let be = close_block c ob2 in
    add_site c ta bt be;
    Ri (d, true)
  | Binary ((Lt | Le | Gt | Ge | Eq | Ne) as op, a, b) ->
    (* compile.ml compare: both operands evaluated, then one count_int_op;
       any float operand promotes the comparison to raw doubles *)
    let la = lexpr c a in
    let lb = lexpr c b in
    let cop = cmpop_of op in
    let d = alloci c in
    (match la, lb with
     | Ri (x, _), Ri (y, _) -> emit c (Ir.ICmp (cop, d, x, y))
     | _ ->
       let x = as_float c la in
       let y = as_float c lb in
       emit c (Ir.FCmp (cop, d, x, y)));
    kint c;
    Ri (d, true)
  | Binary (op, a, b) -> lbinary c e op a b
  | Call (name, args) -> lcall c name args
  | Index (base, idx) -> lindex c e base idx
  | Cast (ty, a) -> lcast c ty a
  | Cond (cc, a, b) ->
    (* compile.ml Cond: count_branch, evaluate cond truth, run one arm.
       Both arms must share a specialised representation; otherwise
       compile.ml falls back to the generic Kval arm, which we reject. *)
    kbranch c;
    let t = as_truth c (lexpr c cc) in
    let ob1 = open_block c in
    let ra = lexpr c a in
    let ob2 = open_block c in
    let rb = lexpr c b in
    let res, mova, movb =
      match ra, rb with
      | Ri (x, ba), Ri (y, bb) when ba = bb ->
        let d = alloci c in
        (Ri (d, ba), Ir.IMov (d, x), Ir.IMov (d, y))
      | Rf (x, pa), Rf (y, pb) when pa = pb ->
        let d = allocf c in
        (Rf (d, pa), Ir.FMov (d, x), Ir.FMov (d, y))
      | _ -> reject "ternary arms differ in representation"
    in
    emit c movb;
    let be = close_block c ob2 in
    emit c mova;
    let bt = close_block c ob1 in
    add_site c t bt be;
    res

and lvar c v : lres =
  match Hashtbl.find_opt c.sym v with
  | Some (Slocal r) -> r
  | Some (Sindex l) -> Ri (level_index_reg c l, false)
  | None ->
    if Hashtbl.mem c.all_locals v then reject "use before declaration";
    (match Typecheck.lookup_var c.env v with
     | Some Tint -> Ri ((snd (getvar c v Ir.Kint)).mv_reg, false)
     | Some Tbool -> Ri ((snd (getvar c v Ir.Kbool)).mv_reg, true)
     | Some Tfloat ->
       Rf ((snd (getvar c v (Ir.Kfloat Ir.Psingle))).mv_reg, Ir.Psingle)
     | Some Tdouble ->
       Rf ((snd (getvar c v (Ir.Kfloat Ir.Pdouble))).mv_reg, Ir.Pdouble)
     | Some (Tptr _) | Some Tvoid | None -> reject "unsupported variable type")

and lbinary c e op a b : lres =
  let la = lexpr c a in
  let lb = lexpr c b in
  match la, lb with
  | Ri (ra, _), Ri (rb, _) ->
    (* compile.ml `Int/`Int arm *)
    let d = alloci c in
    (match op with
     | Add -> emit c (Ir.IAdd (d, ra, rb))
     | Sub -> emit c (Ir.ISub (d, ra, rb))
     | Mul -> emit c (Ir.IMul (d, ra, rb))
     | Div -> emit c (Ir.IDivZ (d, ra, rb, e.eloc))
     | Mod -> emit c (Ir.IModZ (d, ra, rb, e.eloc))
     | _ -> reject "unsupported operator");
    kint c;
    Ri (d, false)
  | _ ->
    (* float_op_prec join; Mod stays integral (compile.ml float-Mod arm) *)
    (match op with
     | Mod ->
       let x = as_int c la in
       let y = as_int c lb in
       let d = alloci c in
       emit c (Ir.IModZ (d, x, y, e.eloc));
       kint c;
       Ri (d, false)
     | Add | Sub | Mul | Div ->
       let p = if is_dp la || is_dp lb then Ir.Pdouble else Ir.Psingle in
       let x = as_float c la in
       let y = as_float c lb in
       let d = allocf c in
       (match op, p with
        | Add, Ir.Pdouble -> emit c (Ir.FAdd (d, x, y))
        | Sub, Ir.Pdouble -> emit c (Ir.FSub (d, x, y))
        | Mul, Ir.Pdouble -> emit c (Ir.FMul (d, x, y))
        | Div, Ir.Pdouble -> emit c (Ir.FDiv (d, x, y))
        | Add, Ir.Psingle -> emit c (Ir.FAddS (d, x, y))
        | Sub, Ir.Psingle -> emit c (Ir.FSubS (d, x, y))
        | Mul, Ir.Psingle -> emit c (Ir.FMulS (d, x, y))
        | Div, Ir.Psingle -> emit c (Ir.FDivS (d, x, y))
        | _ -> assert false);
       kflop c p (match op with Add | Sub -> `Add | Mul -> `Mul | _ -> `Div);
       Rf (d, p)
     | _ -> reject "unsupported operator")

and lcall c name args : lres =
  if Hashtbl.mem c.user_funcs name then reject "user function call";
  (* intrinsics, pre-resolved; specialisation matches compile.ml's exact
     arities — anything else is the generic Kval fallback there, so reject *)
  let f1 m single cls a =
    let x = as_float c (lexpr c a) in
    let d = allocf c in
    emit c (if single then Ir.FMath1S (m, d, x) else Ir.FMath1 (m, d, x));
    let p = if single then Ir.Psingle else Ir.Pdouble in
    kflop c p cls;
    Rf (d, p)
  in
  let f2 m single cls a b =
    let x = as_float c (lexpr c a) in
    let y = as_float c (lexpr c b) in
    let d = allocf c in
    emit c (if single then Ir.FMath2S (m, d, x, y) else Ir.FMath2 (m, d, x, y));
    let p = if single then Ir.Psingle else Ir.Pdouble in
    kflop c p cls;
    Rf (d, p)
  in
  match name, args with
  | "sqrt", [ a ] -> f1 Ir.Msqrt false `Special a
  | "sqrtf", [ a ] -> f1 Ir.Msqrt true `Special a
  | "rsqrt", [ a ] -> f1 Ir.Mrsqrt false `Special a
  | "rsqrtf", [ a ] -> f1 Ir.Mrsqrt true `Special a
  | "sin", [ a ] -> f1 Ir.Msin false `Special a
  | "sinf", [ a ] -> f1 Ir.Msin true `Special a
  | "cos", [ a ] -> f1 Ir.Mcos false `Special a
  | "cosf", [ a ] -> f1 Ir.Mcos true `Special a
  | "tan", [ a ] -> f1 Ir.Mtan false `Special a
  | "tanf", [ a ] -> f1 Ir.Mtan true `Special a
  | "exp", [ a ] -> f1 Ir.Mexp false `Special a
  | "expf", [ a ] -> f1 Ir.Mexp true `Special a
  | "log", [ a ] -> f1 Ir.Mlog false `Special a
  | "logf", [ a ] -> f1 Ir.Mlog true `Special a
  | "tanh", [ a ] -> f1 Ir.Mtanh false `Special a
  | "tanhf", [ a ] -> f1 Ir.Mtanh true `Special a
  | "erf", [ a ] -> f1 Ir.Merf false `Special a
  | "erff", [ a ] -> f1 Ir.Merf true `Special a
  | "fabs", [ a ] -> f1 Ir.Mfabs false `Add a
  | "fabsf", [ a ] -> f1 Ir.Mfabs true `Add a
  | "floor", [ a ] -> f1 Ir.Mfloor false `Add a
  | "floorf", [ a ] -> f1 Ir.Mfloor true `Add a
  | "ceil", [ a ] -> f1 Ir.Mceil false `Add a
  | "ceilf", [ a ] -> f1 Ir.Mceil true `Add a
  | "pow", [ a; b ] -> f2 Ir.Mpow false `Special a b
  | "powf", [ a; b ] -> f2 Ir.Mpow true `Special a b
  | "fmin", [ a; b ] -> f2 Ir.Mfmin false `Add a b
  | "fminf", [ a; b ] -> f2 Ir.Mfmin true `Add a b
  | "fmax", [ a; b ] -> f2 Ir.Mfmax false `Add a b
  | "fmaxf", [ a; b ] -> f2 Ir.Mfmax true `Add a b
  | "abs", [ a ] ->
    let x = as_int c (lexpr c a) in
    let d = alloci c in
    emit c (Ir.IAbs (d, x));
    kint c;
    Ri (d, false)
  | "imin", [ a; b ] ->
    let x = as_int c (lexpr c a) in
    let y = as_int c (lexpr c b) in
    let d = alloci c in
    emit c (Ir.IMin (d, x, y));
    kint c;
    Ri (d, false)
  | "imax", [ a; b ] ->
    let x = as_int c (lexpr c a) in
    let y = as_int c (lexpr c b) in
    let d = alloci c in
    emit c (Ir.IMax (d, x, y));
    kint c;
    Ri (d, false)
  | "rand01", [] ->
    (* no counters; one PRNG draw, in program order *)
    let d = allocf c in
    emit c (Ir.Rand d);
    Rf (d, Ir.Pdouble)
  | _ -> reject "unsupported intrinsic"

and larr c (base : expr) : int * marr =
  (* array operand: must be a plain variable of scalar-pointer type bound
     outside the nest, so the guard can resolve it once per entry *)
  match base.edesc with
  | Var v ->
    if Hashtbl.mem c.sym v || Hashtbl.mem c.all_locals v then
      reject "array shadowed by a body binding";
    (match Typecheck.lookup_var c.env v with
     | Some (Tptr sc) ->
       (match Ir.ety_of_ty sc with
        | Some ety -> getarr c v ety
        | None -> reject "unsupported element type")
     | _ -> reject "array operand is not a plain outer variable")
  | _ -> reject "array operand is not a plain outer variable"

and lindex c (e : expr) base idx : lres =
  let aid, ma = larr c base in
  let ety = ma.ma_ety in
  let load_affine cur =
    match ety with
    | Ir.Efloat32 ->
      let d = allocf c in
      emit c (Ir.FLd (d, cur));
      Rf (d, Ir.Psingle)
    | Ir.Efloat64 ->
      let d = allocf c in
      emit c (Ir.FLd (d, cur));
      Rf (d, Ir.Pdouble)
    | Ir.Eint ->
      let d = alloci c in
      emit c (Ir.ILd (d, cur));
      Ri (d, false)
    | Ir.Ebool ->
      (* stores normalise bool cells to 0/1, so a raw load is the walker's
         (x <> 0) *)
      let d = alloci c in
      emit c (Ir.ILd (d, cur));
      Ri (d, true)
  in
  let r =
    match affine c idx with
    | Some (coefs, bse, nops) ->
      c.cnt.Ir.k_int_ops <- c.cnt.Ir.k_int_ops + nops;
      load_affine (getcursor c aid coefs bse)
    | None ->
      let ii = as_int c (lexpr c idx) in
      (match ety with
       | Ir.Efloat32 ->
         let d = allocf c in
         emit c (Ir.FLdCk (d, aid, ii, e.eloc));
         Rf (d, Ir.Psingle)
       | Ir.Efloat64 ->
         let d = allocf c in
         emit c (Ir.FLdCk (d, aid, ii, e.eloc));
         Rf (d, Ir.Pdouble)
       | Ir.Eint ->
         let d = alloci c in
         emit c (Ir.ILdCk (d, aid, ii, e.eloc));
         Ri (d, false)
       | Ir.Ebool ->
         let d = alloci c in
         emit c (Ir.ILdCk (d, aid, ii, e.eloc));
         Ri (d, true))
  in
  kload c ety;
  r

and lcast c ty a : lres =
  let la = lexpr c a in
  (* compile.ml compile_cast: no counters on any specialised cast arm *)
  match ty with
  | Tint -> Ri (as_int c la, false)
  | Tbool -> Ri (as_truth c la, true)
  | Tfloat ->
    let x = as_float c la in
    let d = allocf c in
    emit c (Ir.FDem (d, x));
    Rf (d, Ir.Psingle)
  | Tdouble -> Rf (as_float c la, Ir.Pdouble)
  | Tptr _ | Tvoid -> reject "unsupported cast"

(* ---- statement lowering ---- *)

let cls_of_bop = function Add | Sub -> `Add | Mul -> `Mul | _ -> `Div

let binop_of_assign = function
  | AddEq -> Add
  | SubEq -> Sub
  | MulEq -> Mul
  | DivEq -> Div
  | Set -> assert false

let ldecl c ~added (d : decl) =
  if d.darray <> None then reject "array declaration in body";
  (match d.dty with
   | Tint | Tbool | Tfloat | Tdouble -> ()
   | _ -> reject "unsupported declaration type");
  if Hashtbl.mem c.sym d.dname then reject "shadowing declaration";
  let e0 =
    match d.dinit with Some e -> e | None -> reject "uninitialised declaration"
  in
  (* the initialiser is lowered before the name is bound, as in the
     closure backend's venv threading *)
  let la = lexpr c e0 in
  let res =
    (* coerced_value arms: as_int / as_truth / demote to Sp / raw Dp *)
    match d.dty with
    | Tint ->
      let x = as_int c la in
      let r = alloci c in
      emit c (Ir.IMov (r, x));
      Ri (r, false)
    | Tbool ->
      let x = as_truth c la in
      let r = alloci c in
      emit c (Ir.IMov (r, x));
      Ri (r, true)
    | Tfloat ->
      let x = as_float c la in
      let r = allocf c in
      emit c (Ir.FDem (r, x));
      Rf (r, Ir.Psingle)
    | Tdouble ->
      let x = as_float c la in
      let r = allocf c in
      emit c (Ir.FMov (r, x));
      Rf (r, Ir.Pdouble)
    | _ -> assert false
  in
  Hashtbl.add c.sym d.dname (Slocal res);
  added := d.dname :: !added

let lvar_assign c (s : stmt) v op (lr : lres) =
  let target =
    match Hashtbl.find_opt c.sym v with
    | Some (Sindex _) -> reject "assignment to a loop index"
    | Some (Slocal (Ri (r, b))) -> `Scalar (r, if b then Ir.Kbool else Ir.Kint)
    | Some (Slocal (Rf (r, p))) -> `Scalar (r, Ir.Kfloat p)
    | None ->
      if Hashtbl.mem c.all_locals v then reject "use before declaration";
      (match Typecheck.lookup_var c.env v with
       | Some Tint -> `Var (getvar c v Ir.Kint)
       | Some Tbool -> `Var (getvar c v Ir.Kbool)
       | Some Tfloat -> `Var (getvar c v (Ir.Kfloat Ir.Psingle))
       | Some Tdouble -> `Var (getvar c v (Ir.Kfloat Ir.Pdouble))
       | Some (Tptr _) | Some Tvoid | None -> reject "unsupported variable type")
  in
  let r, kind =
    match target with
    | `Scalar (r, k) -> (r, k)
    | `Var (_, mv) ->
      mv.mv_written <- true;
      (mv.mv_reg, mv.mv_kind)
  in
  match op with
  | Set ->
    (* compile_var_assign Set arms: Vint (as_int) / Vbool (as_truth) /
       Vfloat (Sp, demote) / Vfloat (Dp, as_float); no counters *)
    (match kind with
     | Ir.Kint ->
       let x = as_int c lr in
       emit c (Ir.IMov (r, x))
     | Ir.Kbool ->
       let x = as_truth c lr in
       emit c (Ir.IMov (r, x))
     | Ir.Kfloat Ir.Psingle ->
       let x = as_float c lr in
       emit c (Ir.FDem (r, x))
     | Ir.Kfloat Ir.Pdouble ->
       let x = as_float c lr in
       emit c (Ir.FMov (r, x)))
  | AddEq | SubEq | MulEq | DivEq ->
    let bop = binop_of_assign op in
    (match kind, lr with
     | Ir.Kint, Ri (y, _) ->
       (* rhs evaluated first (already lowered), old value read, one int
          op; Div checks zero at s.sloc before counting *)
       (match bop with
        | Add -> emit c (Ir.IAdd (r, r, y))
        | Sub -> emit c (Ir.ISub (r, r, y))
        | Mul -> emit c (Ir.IMul (r, r, y))
        | _ -> emit c (Ir.IDivZ (r, r, y, s.sloc)));
       kint c
     | Ir.Kint, Rf (y, p) ->
       (* float compound on an int variable: flop at rhs precision, result
          truncated back to int *)
       let t = allocf c in
       emit c (Ir.ItoF (t, r));
       let u = allocf c in
       (match bop, p with
        | Add, Ir.Pdouble -> emit c (Ir.FAdd (u, t, y))
        | Sub, Ir.Pdouble -> emit c (Ir.FSub (u, t, y))
        | Mul, Ir.Pdouble -> emit c (Ir.FMul (u, t, y))
        | Div, Ir.Pdouble -> emit c (Ir.FDiv (u, t, y))
        | Add, Ir.Psingle -> emit c (Ir.FAddS (u, t, y))
        | Sub, Ir.Psingle -> emit c (Ir.FSubS (u, t, y))
        | Mul, Ir.Psingle -> emit c (Ir.FMulS (u, t, y))
        | Div, Ir.Psingle -> emit c (Ir.FDivS (u, t, y))
        | _ -> assert false);
       kflop c p (cls_of_bop bop);
       emit c (Ir.FtoI (r, u))
     | Ir.Kbool, _ -> reject "compound assignment on bool"  (* generic arm *)
     | Ir.Kfloat tp, _ ->
       let p =
         match tp, lr with
         | Ir.Pdouble, _ -> Ir.Pdouble
         | _, Rf (_, Ir.Pdouble) -> Ir.Pdouble
         | _ -> Ir.Psingle
       in
       let y = as_float c lr in
       let demoted_store = tp = Ir.Psingle in
       (match bop, p with
        | Add, Ir.Pdouble when not demoted_store -> emit c (Ir.FAdd (r, r, y))
        | Sub, Ir.Pdouble when not demoted_store -> emit c (Ir.FSub (r, r, y))
        | Mul, Ir.Pdouble when not demoted_store -> emit c (Ir.FMul (r, r, y))
        | Div, Ir.Pdouble when not demoted_store -> emit c (Ir.FDiv (r, r, y))
        | Add, Ir.Psingle -> emit c (Ir.FAddS (r, r, y))
        | Sub, Ir.Psingle -> emit c (Ir.FSubS (r, r, y))
        | Mul, Ir.Psingle -> emit c (Ir.FMulS (r, r, y))
        | Div, Ir.Psingle -> emit c (Ir.FDivS (r, r, y))
        | bop', Ir.Pdouble ->
          (* single-precision target with a double-precision rhs: the op
             runs at Dp and only the stored value demotes *)
          let t = allocf c in
          (match bop' with
           | Add -> emit c (Ir.FAdd (t, r, y))
           | Sub -> emit c (Ir.FSub (t, r, y))
           | Mul -> emit c (Ir.FMul (t, r, y))
           | _ -> emit c (Ir.FDiv (t, r, y)));
          emit c (Ir.FDem (r, t))
        | _ -> assert false);
       kflop c p (cls_of_bop bop))

let lindex_assign c (s : stmt) (lhs : expr) base idx op (lr : lres) =
  let aid, ma = larr c base in
  let ety = ma.ma_ety in
  ma.ma_stored <- true;
  (* value conversions belong to the rhs closure and run before the index
     evaluates, so emit them first *)
  match op with
  | Set ->
    let src =
      match ety with
      | Ir.Efloat32 | Ir.Efloat64 -> as_float c lr
      | Ir.Eint -> as_int c lr
      | Ir.Ebool -> as_truth c lr
    in
    (match affine c idx with
     | Some (coefs, bse, nops) ->
       c.cnt.Ir.k_int_ops <- c.cnt.Ir.k_int_ops + nops;
       let cur = getcursor c aid coefs bse in
       (match ety with
        | Ir.Efloat32 -> emit c (Ir.FStDem (cur, src))
        | Ir.Efloat64 -> emit c (Ir.FSt (cur, src))
        | Ir.Eint -> emit c (Ir.ISt (cur, src))
        | Ir.Ebool -> emit c (Ir.IStB (cur, src)))
     | None ->
       let ii = as_int c (lexpr c idx) in
       (match ety with
        | Ir.Efloat32 | Ir.Efloat64 -> emit c (Ir.FStCk (aid, ii, src, lhs.eloc))
        | Ir.Eint | Ir.Ebool -> emit c (Ir.IStCk (aid, ii, src, lhs.eloc))));
    kstore c ety
  | AddEq | SubEq | MulEq | DivEq ->
    let bop = binop_of_assign op in
    (match ety with
     | Ir.Efloat32 | Ir.Efloat64 ->
       let p =
         match ety, lr with
         | Ir.Efloat64, _ -> Ir.Pdouble
         | _, Rf (_, Ir.Pdouble) -> Ir.Pdouble
         | _ -> Ir.Psingle
       in
       let y = as_float c lr in
       let ld, st =
         match affine c idx with
         | Some (coefs, bse, nops) ->
           c.cnt.Ir.k_int_ops <- c.cnt.Ir.k_int_ops + nops;
           let cur = getcursor c aid coefs bse in
           ( (fun d -> emit c (Ir.FLd (d, cur))),
             fun srcr ->
               emit c
                 (if ety = Ir.Efloat32 then Ir.FStDem (cur, srcr)
                  else Ir.FSt (cur, srcr)) )
         | None ->
           let ii = as_int c (lexpr c idx) in
           ( (fun d -> emit c (Ir.FLdCk (d, aid, ii, lhs.eloc))),
             fun srcr -> emit c (Ir.FStCk (aid, ii, srcr, lhs.eloc)) )
       in
       let x = allocf c in
       ld x;
       kload c ety;
       let t = allocf c in
       (match bop, p with
        | Add, Ir.Pdouble -> emit c (Ir.FAdd (t, x, y))
        | Sub, Ir.Pdouble -> emit c (Ir.FSub (t, x, y))
        | Mul, Ir.Pdouble -> emit c (Ir.FMul (t, x, y))
        | Div, Ir.Pdouble -> emit c (Ir.FDiv (t, x, y))
        | Add, Ir.Psingle -> emit c (Ir.FAddS (t, x, y))
        | Sub, Ir.Psingle -> emit c (Ir.FSubS (t, x, y))
        | Mul, Ir.Psingle -> emit c (Ir.FMulS (t, x, y))
        | Div, Ir.Psingle -> emit c (Ir.FDivS (t, x, y))
        | _ -> assert false);
       kflop c p (cls_of_bop bop);
       st t;
       kstore c ety
     | Ir.Eint ->
       (* compile.ml requires an int/bool-kinded rhs here *)
       let y =
         match lr with
         | Ri (y, _) -> y
         | Rf _ -> reject "float compound on int array"
       in
       let ld, st =
         match affine c idx with
         | Some (coefs, bse, nops) ->
           c.cnt.Ir.k_int_ops <- c.cnt.Ir.k_int_ops + nops;
           let cur = getcursor c aid coefs bse in
           ( (fun d -> emit c (Ir.ILd (d, cur))),
             fun srcr -> emit c (Ir.ISt (cur, srcr)) )
         | None ->
           let ii = as_int c (lexpr c idx) in
           ( (fun d -> emit c (Ir.ILdCk (d, aid, ii, lhs.eloc))),
             fun srcr -> emit c (Ir.IStCk (aid, ii, srcr, lhs.eloc)) )
       in
       let x = alloci c in
       ld x;
       kload c ety;
       let t = alloci c in
       (match bop with
        | Add -> emit c (Ir.IAdd (t, x, y))
        | Sub -> emit c (Ir.ISub (t, x, y))
        | Mul -> emit c (Ir.IMul (t, x, y))
        | _ -> emit c (Ir.IDivZ (t, x, y, s.sloc)));
       kint c;
       st t;
       kstore c ety
     | Ir.Ebool -> reject "compound assignment on bool array")

(* Every statement charges one step into the enclosing block (compile.ml
   batches one step per statement of a segment; control statements are
   charged by the segment that contains them, and their arms/bodies carry
   their own counts). *)
let rec lstmt c ~added (s : stmt) =
  if Hashtbl.mem c.region_set s.sid then reject "observation region";
  c.steps <- c.steps + 1;
  match s.sdesc with
  | Decl d -> ldecl c ~added d
  | Assign (lhs, op, rhs) ->
    let lr = lexpr c rhs in
    (match lhs.edesc with
     | Var v -> lvar_assign c s v op lr
     | Index (b, idx) -> lindex_assign c s lhs b idx op lr
     | _ -> reject "unsupported assignment target")
  | Expr_stmt e -> ignore (lexpr c e)
  | If (cond, b1, b2) ->
    (* compile.ml If: count_branch, evaluate cond truth, run one arm *)
    kbranch c;
    let t = as_truth c (lexpr c cond) in
    let bt = with_block c (fun () -> lblock c b1) in
    let be = with_block c (fun () -> lblock c b2) in
    add_site c t bt be
  | For (h, body) -> llevel c s h body
  | Scope b ->
    (* unconditional: the inner statements' cost folds into this block *)
    lblock c b
  | While _ -> reject "while loop"
  | Return _ -> reject "return inside loop"
  | Break -> reject "break"
  | Continue -> reject "continue"

and lblock c (stmts : stmt list) =
  let added = ref [] in
  List.iter (fun s -> lstmt c ~added s) stmts;
  List.iter (fun n -> Hashtbl.remove c.sym n) !added

and llevel c (s : stmt) (h : for_header) body =
  let lid = c.nlevels in
  c.nlevels <- lid + 1;
  (* all three bounds are re-evaluated by the closure backend (lo once per
     entry, hi per test, step per bump); they must be nest-invariant so
     the guard can derive one trip count per level per nest entry *)
  let lo, lo_ops = invariant c h.lo in
  let hi, hi_ops = invariant c h.hi in
  let step, step_ops = invariant c h.step in
  Hashtbl.add c.sym h.index (Sindex lid);
  let b = with_block c (fun () -> lblock c body) in
  Hashtbl.remove c.sym h.index;
  flush_ops c;
  Hashtbl.replace c.lvls lid
    {
      Ir.l_sid = s.sid;
      l_cle = h.cmp = CLe;
      l_lo = lo;
      l_lo_ops = lo_ops;
      l_hi = hi;
      l_hi_ops = hi_ops;
      l_step = step;
      l_step_ops = step_ops;
      l_index_reg = Hashtbl.find_opt c.lidx lid;
      l_body = b;
    };
  c.items <- Ir.Bloop lid :: c.items

(* ---- optimisation: hoisting, promotion, superinstruction fusion ---- *)

(* float-register def/use counting over all sections; used to identify
   single-definition single-use temporaries that fusion may absorb *)
let fcounts nf ops_list =
  let defs = Array.make (max nf 1) 0 in
  let uses = Array.make (max nf 1) 0 in
  let d r = defs.(r) <- defs.(r) + 1 in
  let u r = uses.(r) <- uses.(r) + 1 in
  List.iter
    (List.iter (fun (op : Ir.fop) ->
         match op with
         | FConst (x, _) | Rand x | FLdSub2 (x, _, _) -> d x
         | FMov (x, a) | FDem (x, a) | FNeg (x, a)
         | FMath1 (_, x, a) | FMath1S (_, x, a)
         | FRecip (x, a) | FRsqrt (x, a) ->
           d x;
           u a
         | ItoF (x, _) | FLd (x, _) | FLdCk (x, _, _, _) -> d x
         | FtoI (_, a) | FtoB (_, a) | FSt (_, a) | FStDem (_, a)
         | FStCk (_, _, a, _) | FAccSt (_, a) ->
           u a
         | FAdd (x, a, b) | FSub (x, a, b) | FMul (x, a, b) | FDiv (x, a, b)
         | FAddS (x, a, b) | FSubS (x, a, b) | FMulS (x, a, b) | FDivS (x, a, b)
         | FMath2 (_, x, a, b) | FMath2S (_, x, a, b) ->
           d x;
           u a;
           u b
         | FCmp (_, _, a, b) ->
           (* dest is an int register; both operands are float uses *)
           u a;
           u b
         | FLdSub (x, _, b) | FLdMul (x, _, b) | FLdAdd (x, _, b) ->
           d x;
           u b
         | FMulAdd (x, a, b, e) | FAddMul (x, e, a, b) | FSubMul (x, e, a, b) ->
           d x;
           u a;
           u b;
           u e
         | FMulAccSt (_, a, b) ->
           u a;
           u b
         | IConst _ | IMov _ | ItoB _ | IAdd _ | ISub _ | IMul _ | INeg _
         | IDivZ _ | IModZ _ | IAbs _ | IMin _ | IMax _ | ICmp _ | INot _
         | ILd _ | ISt _ | IStB _ | ILdCk _ | IStCk _ ->
           ()))
    ops_list;
  (defs, uses)

(* substitute register [d] with [r] in the float *use* positions of [op];
   None when [op] has no handled float-use of [d] *)
let subst_use (op : Ir.fop) d r : Ir.fop option =
  let hit = ref false in
  let sh x =
    if x = d then (
      hit := true;
      r)
    else x
  in
  let op' : Ir.fop =
    match op with
    | FMov (x, a) -> FMov (x, sh a)
    | FDem (x, a) -> FDem (x, sh a)
    | FNeg (x, a) -> FNeg (x, sh a)
    | FtoI (x, a) -> FtoI (x, sh a)
    | FtoB (x, a) -> FtoB (x, sh a)
    | FMath1 (m, x, a) -> FMath1 (m, x, sh a)
    | FMath1S (m, x, a) -> FMath1S (m, x, sh a)
    | FMath2 (m, x, a, b) -> FMath2 (m, x, sh a, sh b)
    | FMath2S (m, x, a, b) -> FMath2S (m, x, sh a, sh b)
    | FAdd (x, a, b) -> FAdd (x, sh a, sh b)
    | FSub (x, a, b) -> FSub (x, sh a, sh b)
    | FMul (x, a, b) -> FMul (x, sh a, sh b)
    | FDiv (x, a, b) -> FDiv (x, sh a, sh b)
    | FAddS (x, a, b) -> FAddS (x, sh a, sh b)
    | FSubS (x, a, b) -> FSubS (x, sh a, sh b)
    | FMulS (x, a, b) -> FMulS (x, sh a, sh b)
    | FDivS (x, a, b) -> FDivS (x, sh a, sh b)
    | FCmp (m, x, a, b) -> FCmp (m, x, sh a, sh b)
    | FSt (cu, a) -> FSt (cu, sh a)
    | FStDem (cu, a) -> FStDem (cu, sh a)
    | FStCk (ar, i, a, l) -> FStCk (ar, i, sh a, l)
    | FRecip (x, a) -> FRecip (x, sh a)
    | FRsqrt (x, a) -> FRsqrt (x, sh a)
    | FLdSub (x, cu, b) -> FLdSub (x, cu, sh b)
    | FLdMul (x, cu, b) -> FLdMul (x, cu, sh b)
    | FLdAdd (x, cu, b) -> FLdAdd (x, cu, sh b)
    | FMulAdd (x, a, b, e) -> FMulAdd (x, sh a, sh b, sh e)
    | FAddMul (x, e, a, b) -> FAddMul (x, sh e, sh a, sh b)
    | FSubMul (x, e, a, b) -> FSubMul (x, sh e, sh a, sh b)
    | FAccSt (cu, a) -> FAccSt (cu, sh a)
    | FMulAccSt (cu, a, b) -> FMulAccSt (cu, sh a, sh b)
    | _ -> op
  in
  if !hit then Some op' else None

(* retarget the float destination of [op] from [d] to [r] *)
let retarget (op : Ir.fop) d r : Ir.fop option =
  match op with
  | FConst (x, v) when x = d -> Some (FConst (r, v))
  | FMov (x, a) when x = d -> Some (FMov (r, a))
  | FDem (x, a) when x = d -> Some (FDem (r, a))
  | FNeg (x, a) when x = d -> Some (FNeg (r, a))
  | ItoF (x, a) when x = d -> Some (ItoF (r, a))
  | FMath1 (m, x, a) when x = d -> Some (FMath1 (m, r, a))
  | FMath1S (m, x, a) when x = d -> Some (FMath1S (m, r, a))
  | FMath2 (m, x, a, b) when x = d -> Some (FMath2 (m, r, a, b))
  | FMath2S (m, x, a, b) when x = d -> Some (FMath2S (m, r, a, b))
  | FAdd (x, a, b) when x = d -> Some (FAdd (r, a, b))
  | FSub (x, a, b) when x = d -> Some (FSub (r, a, b))
  | FMul (x, a, b) when x = d -> Some (FMul (r, a, b))
  | FDiv (x, a, b) when x = d -> Some (FDiv (r, a, b))
  | FAddS (x, a, b) when x = d -> Some (FAddS (r, a, b))
  | FSubS (x, a, b) when x = d -> Some (FSubS (r, a, b))
  | FMulS (x, a, b) when x = d -> Some (FMulS (r, a, b))
  | FDivS (x, a, b) when x = d -> Some (FDivS (r, a, b))
  | Rand x when x = d -> Some (Rand r)
  | FLd (x, cu) when x = d -> Some (FLd (r, cu))
  | FLdCk (x, ar, i, l) when x = d -> Some (FLdCk (r, ar, i, l))
  | FLdSub (x, a, b) when x = d -> Some (FLdSub (r, a, b))
  | FLdSub2 (x, a, b) when x = d -> Some (FLdSub2 (r, a, b))
  | FLdMul (x, a, b) when x = d -> Some (FLdMul (r, a, b))
  | FLdAdd (x, a, b) when x = d -> Some (FLdAdd (r, a, b))
  | FMulAdd (x, a, b, e) when x = d -> Some (FMulAdd (r, a, b, e))
  | FAddMul (x, e, a, b) when x = d -> Some (FAddMul (r, e, a, b))
  | FSubMul (x, e, a, b) when x = d -> Some (FSubMul (r, e, a, b))
  | FRecip (x, a) when x = d -> Some (FRecip (r, a))
  | FRsqrt (x, a) when x = d -> Some (FRsqrt (r, a))
  | _ -> None

(* Fusion never crosses a PRNG draw, a checked access, or a zero-checked
   division (only adjacent ops merge, and none of those opcodes appear in
   any pattern), so memory/effect/raise order is preserved exactly.  Fused
   arithmetic keeps operand order — a*b+c stays (a*b)+c with the same
   rounding — so results are bit-identical to the unfused sequence.
   [scan_fuse] applies at most one rewrite per call; the caller recomputes
   global def/use counts between rewrite sweeps. *)
let scan_fuse ~nf ~temp ~one_regs (ops : Ir.fop list) : Ir.fop list =
  let rec scan acc (ops : Ir.fop list) =
    match ops with
    | Ir.FLd (t1, c1) :: Ir.FLd (t2, c2) :: Ir.FSub (x, a, b) :: tl
      when a = t1 && b = t2 && t1 <> t2 && temp t1 && temp t2 ->
      List.rev_append acc (Ir.FLdSub2 (x, c1, c2) :: tl)
    | Ir.FLd (t, cu) :: Ir.FAdd (x, a, b) :: Ir.FSt (cu2, r) :: tl
      when a = t && cu2 = cu && temp t && temp x && x = r && b <> t ->
      List.rev_append acc (Ir.FAccSt (cu, b) :: tl)
    | Ir.FLd (t, cu) :: Ir.FSub (x, a, b) :: tl when a = t && temp t && b <> t
      ->
      List.rev_append acc (Ir.FLdSub (x, cu, b) :: tl)
    | Ir.FLd (t, cu) :: Ir.FAdd (x, a, b) :: tl when a = t && temp t && b <> t
      ->
      List.rev_append acc (Ir.FLdAdd (x, cu, b) :: tl)
    | Ir.FLd (t, cu) :: Ir.FMul (x, a, b) :: tl when a = t && temp t && b <> t
      ->
      List.rev_append acc (Ir.FLdMul (x, cu, b) :: tl)
    | Ir.FMul (t, a, b) :: Ir.FAdd (x, p, q) :: tl
      when p = t && temp t && q <> t ->
      List.rev_append acc (Ir.FMulAdd (x, a, b, q) :: tl)
    | Ir.FMul (t, a, b) :: Ir.FAdd (x, p, q) :: tl
      when q = t && temp t && p <> t ->
      List.rev_append acc (Ir.FAddMul (x, p, a, b) :: tl)
    | Ir.FMul (t, a, b) :: Ir.FSub (x, p, q) :: tl
      when q = t && temp t && p <> t ->
      List.rev_append acc (Ir.FSubMul (x, p, a, b) :: tl)
    | Ir.FMul (t, a, b) :: Ir.FAccSt (cu, q) :: tl when q = t && temp t ->
      List.rev_append acc (Ir.FMulAccSt (cu, a, b) :: tl)
    | Ir.FDiv (x, o, a) :: tl when o < nf && one_regs.(o) && a <> o ->
      List.rev_append acc (Ir.FRecip (x, a) :: tl)
    | Ir.FMath1 (Ir.Msqrt, t, a) :: Ir.FRecip (x, q) :: tl
      when q = t && temp t ->
      List.rev_append acc (Ir.FRsqrt (x, a) :: tl)
    | Ir.FMov (d, r) :: (op2 :: tl as rest) when temp d -> (
      match subst_use op2 d r with
      | Some op2' -> List.rev_append acc (op2' :: tl)
      | None -> scan (Ir.FMov (d, r) :: acc) rest)
    | op1 :: Ir.FMov (r, d) :: tl when temp d -> (
      match retarget op1 d r with
      | Some op1' -> List.rev_append acc (op1' :: tl)
      | None -> scan (Ir.FMov (r, d) :: op1 :: acc) tl)
    | op :: tl -> scan (op :: acc) tl
    | [] -> List.rev acc
  in
  scan [] ops

(* ---- whole-nest lowering ---- *)

(* names assigned / declared (including inner loop indexes) anywhere in the
   nest body, used for invariance and scoping decisions *)
let collect_info body =
  let assigned = Hashtbl.create 8 in
  let all_locals = Hashtbl.create 8 in
  let rec stmt s =
    match s.sdesc with
    | Assign ({ edesc = Var v; _ }, _, _) -> Hashtbl.replace assigned v ()
    | Assign _ | Expr_stmt _ | Return _ | Break | Continue -> ()
    | Decl d -> Hashtbl.replace all_locals d.dname ()
    | If (_, b1, b2) ->
      List.iter stmt b1;
      List.iter stmt b2
    | While (_, b) | Scope b -> List.iter stmt b
    | For (h, b) ->
      Hashtbl.replace all_locals h.index ();
      List.iter stmt b
  in
  List.iter stmt body;
  (assigned, all_locals)

let plan_loop ~env ~user_funcs ~region_set (s : stmt) (h : for_header)
    (body : block) : Ir.fast_loop =
  let assigned, all_locals = collect_info body in
  let c =
    {
      env;
      assigned;
      all_locals;
      user_funcs;
      region_set;
      sym = Hashtbl.create 8;
      nf = 0;
      ni = 0;
      pro = [];
      cur = [];
      items = [];
      cnt = Ir.zero_counts ();
      steps = 0;
      nlevels = 1;
      lvls = Hashtbl.create 4;
      lidx = Hashtbl.create 4;
      sites = [];
      nsites = 0;
      vtbl = Hashtbl.create 8;
      vars = [];
      nvars = 0;
      atbl = Hashtbl.create 8;
      arrs = [];
      narrs = 0;
      cursors = [];
      ncursors = 0;
      fconsts = Hashtbl.create 8;
      iconsts = Hashtbl.create 8;
    }
  in
  (* root level is id 0; its lo has already been evaluated into the frame
     slot by the enclosing compiled code, so only hi/step are lowered *)
  Hashtbl.add c.sym h.index (Sindex 0);
  let hi, hi_ops = invariant c h.hi in
  let step, step_ops = invariant c h.step in
  let root_body = with_block c (fun () -> lblock c body) in
  Hashtbl.remove c.sym h.index;
  Hashtbl.replace c.lvls 0
    {
      Ir.l_sid = s.sid;
      l_cle = h.cmp = CLe;
      l_lo = Ir.Iconst 0;
      l_lo_ops = 0;
      l_hi = hi;
      l_hi_ops = hi_ops;
      l_step = step;
      l_step_ops = step_ops;
      l_index_reg = Hashtbl.find_opt c.lidx 0;
      l_body = root_body;
    };
  let levels =
    Array.init c.nlevels (fun i ->
        match Hashtbl.find_opt c.lvls i with
        | Some l -> l
        | None -> assert false)
  in
  let sites = Array.of_list (List.rev c.sites) in
  let arrs = Array.of_list (List.rev c.arrs) in
  let cursors = Array.of_list (List.rev c.cursors) in
  let zero_coef cu =
    let _, coefs, _ = cursors.(cu) in
    coefs = []
  in
  let arr_of cu =
    let a, _, _ = cursors.(cu) in
    a
  in
  (* tree traversal helpers: every level/site block is referenced exactly
     once, so in-place array updates rewrite the whole nest *)
  let rewrite_tree (f : Ir.fop array -> Ir.fop array) =
    let rec blk (b : Ir.block) : Ir.block =
      { b with Ir.b_items = Array.map item b.Ir.b_items }
    and item (it : Ir.bitem) : Ir.bitem =
      match it with
      | Ir.Bops ops -> Ir.Bops (f ops)
      | Ir.Bsite sid ->
        let st = sites.(sid) in
        let s_then = blk st.Ir.s_then in
        let s_else = blk st.Ir.s_else in
        sites.(sid) <- { st with Ir.s_then; s_else };
        it
      | Ir.Bloop lid ->
        let lv = levels.(lid) in
        levels.(lid) <- { lv with Ir.l_body = blk lv.Ir.l_body };
        it
    in
    let lv0 = levels.(0) in
    levels.(0) <- { lv0 with Ir.l_body = blk lv0.Ir.l_body }
  in
  let iter_tree_ops (f : Ir.fop array -> unit) =
    let rec blk (b : Ir.block) = Array.iter item b.Ir.b_items
    and item = function
      | Ir.Bops ops -> f ops
      | Ir.Bsite sid ->
        blk sites.(sid).Ir.s_then;
        blk sites.(sid).Ir.s_else
      | Ir.Bloop lid -> blk levels.(lid).Ir.l_body
    in
    blk levels.(0).Ir.l_body
  in
  let pro = ref (List.rev c.pro) in
  let epi = ref [] in
  (* hoist: loads through invariant (all-zero-coefficient) cursors of
     arrays never stored move to the prologue (guard re-checks no aliasing
     store can clobber them); their counter costs stay at the original
     site, so accounting is unchanged *)
  let hoisted = Hashtbl.create 4 in
  rewrite_tree (fun ops ->
      let kept =
        List.filter_map
          (fun (op : Ir.fop) ->
            match op with
            | (FLd (_, cu) | ILd (_, cu))
              when zero_coef cu && not arrs.(arr_of cu).ma_stored ->
              pro := !pro @ [ op ];
              Hashtbl.replace hoisted (arr_of cu) ();
              None
            | _ -> Some op)
          (Array.to_list ops)
      in
      Array.of_list kept);
  (* promote: an array cell addressed only through one invariant cursor
     becomes a register, loaded on entry and stored back on exit (guard
     re-checks its base is distinct from every other accessed base).  The
     unconditional epilogue store is unobservable even if the storing arm
     never ran: it writes back the originally loaded bits. *)
  let cursor_uses = Array.make (max c.ncursors 1) 0 in
  let ck_arrs = Hashtbl.create 4 in
  iter_tree_ops
    (Array.iter (fun (op : Ir.fop) ->
         match op with
         | FLd (_, cu) | FSt (cu, _) | FStDem (cu, _) | ILd (_, cu)
         | ISt (cu, _) | IStB (cu, _) ->
           cursor_uses.(cu) <- cursor_uses.(cu) + 1
         | FLdCk (_, a, _, _) | FStCk (a, _, _, _) | ILdCk (_, a, _, _)
         | IStCk (a, _, _, _) ->
           Hashtbl.replace ck_arrs a ()
         | _ -> ()));
  let promoted = ref [] in
  let promoted_regs = ref [] in
  Array.iteri
    (fun aid (ma : marr) ->
      if ma.ma_stored && not (Hashtbl.mem ck_arrs aid) then begin
        let cus = ref [] in
        Array.iteri
          (fun cu (a, _, _) ->
            if a = aid && cursor_uses.(cu) > 0 then cus := cu :: !cus)
          cursors;
        match !cus with
        | [ cu ] when zero_coef cu ->
          let isf =
            match ma.ma_ety with
            | Ir.Efloat32 | Ir.Efloat64 -> true
            | _ -> false
          in
          let reg = if isf then allocf c else alloci c in
          pro := !pro @ [ (if isf then Ir.FLd (reg, cu) else Ir.ILd (reg, cu)) ];
          epi := !epi @ [ (if isf then Ir.FSt (cu, reg) else Ir.ISt (cu, reg)) ];
          rewrite_tree
            (Array.map (fun (op : Ir.fop) : Ir.fop ->
                 match op with
                 | FLd (d, cu') when cu' = cu -> FMov (d, reg)
                 | FSt (cu', sr) when cu' = cu -> FMov (reg, sr)
                 | FStDem (cu', sr) when cu' = cu -> FDem (reg, sr)
                 | ILd (d, cu') when cu' = cu -> IMov (d, reg)
                 | ISt (cu', sr) when cu' = cu -> IMov (reg, sr)
                 | IStB (cu', sr) when cu' = cu -> ItoB (reg, sr)
                 | _ -> op));
          promoted := aid :: !promoted;
          if isf then promoted_regs := reg :: !promoted_regs
        | _ -> ()
      end)
    arrs;
  (* fusion: fixpoint over the whole tree; def/use counts are global, so a
     temp absorbed in one block can never still be referenced in another *)
  let external_regs = Array.make (max c.nf 1) false in
  List.iter
    (fun mv ->
      match mv.mv_kind with
      | Ir.Kfloat _ -> external_regs.(mv.mv_reg) <- true
      | _ -> ())
    c.vars;
  List.iter (fun r -> external_regs.(r) <- true) !promoted_regs;
  let one_regs = Array.make (max c.nf 1) false in
  List.iter
    (fun (op : Ir.fop) ->
      match op with
      | FConst (r, v) when v = 1.0 -> one_regs.(r) <- true
      | _ -> ())
    !pro;
  let changed = ref true in
  while !changed do
    changed := false;
    let all = ref [ !pro; !epi ] in
    iter_tree_ops (fun ops -> all := Array.to_list ops :: !all);
    let defs, uses = fcounts c.nf !all in
    let temp d =
      d < c.nf && (not external_regs.(d)) && defs.(d) = 1 && uses.(d) = 1
    in
    rewrite_tree (fun ops ->
        let l = Array.to_list ops in
        let l' = scan_fuse ~nf:c.nf ~temp ~one_regs l in
        if l' <> l then begin
          changed := true;
          Array.of_list l'
        end
        else ops)
  done;
  {
    Ir.fl_sid = s.sid;
    fl_loc = s.sloc;
    fl_levels = levels;
    fl_sites = sites;
    fl_vars =
      Array.of_list
        (List.rev_map
           (fun mv ->
             {
               Ir.v_name = mv.mv_name;
               v_kind = mv.mv_kind;
               v_reg = mv.mv_reg;
               v_written = mv.mv_written;
             })
           c.vars);
    fl_arrs =
      Array.map
        (fun ma ->
          { Ir.a_name = ma.ma_name; a_ety = ma.ma_ety; a_stored = ma.ma_stored })
        arrs;
    fl_cursors =
      Array.map
        (fun (a, coefs, base) ->
          {
            Ir.c_arr = a;
            c_coefs =
              Array.init c.nlevels (fun l ->
                  match List.assoc_opt l coefs with
                  | Some e -> e
                  | None -> Ir.Iconst 0);
            c_base = base;
          })
        cursors;
    fl_prologue = Array.of_list !pro;
    fl_epilogue = Array.of_list !epi;
    fl_nf = c.nf;
    fl_ni = c.ni;
    fl_hoisted =
      Array.of_list (Hashtbl.fold (fun k () acc -> k :: acc) hoisted []);
    fl_promoted = Array.of_list !promoted;
  }

(* ---- program walk ---- *)

type outcome = Planned of { levels : int; sites : int } | Unplannable of string

let decl_binding_ty (d : decl) =
  match d.darray with Some _ -> Tptr d.dty | None -> d.dty

let plan_with ?(region_sids = []) ~(note : stmt -> outcome -> unit)
    (p : program) : Ir.plan =
  let tbl : Ir.plan = Hashtbl.create 16 in
  (match Typecheck.check_program p with
   | Error _ ->
     (* ill-typed: run everything on the reference backends; still visit
        every loop so plan reports cover the whole program *)
     let rec walk blk =
       List.iter
         (fun s ->
           match s.sdesc with
           | If (_, b1, b2) ->
             walk b1;
             walk b2
           | While (_, b) | Scope b -> walk b
           | For (_, b) ->
             note s (Unplannable "ill-typed program");
             walk b
           | Decl _ | Assign _ | Expr_stmt _ | Return _ | Break | Continue ->
             ())
         blk
     in
     List.iter (fun f -> walk f.fbody) (funcs p)
   | Ok () ->
     let user_funcs = Hashtbl.create 8 in
     List.iter (fun f -> Hashtbl.replace user_funcs f.fname ()) (funcs p);
     let region_set = Hashtbl.create 8 in
     List.iter (fun sid -> Hashtbl.replace region_set sid ()) region_sids;
     let rec walk_block env blk =
       ignore
         (List.fold_left
            (fun env s ->
              match s.sdesc with
              | Decl d -> Typecheck.bind env d.dname (decl_binding_ty d)
              | If (_, b1, b2) ->
                walk_block env b1;
                walk_block env b2;
                env
              | While (_, b) ->
                walk_block env b;
                env
              | Scope b ->
                walk_block env b;
                env
              | For (h, body) ->
                (match plan_loop ~env ~user_funcs ~region_set s h body with
                 | fl ->
                   Hashtbl.replace tbl s.sid fl;
                   note s
                     (Planned
                        {
                          levels = Array.length fl.Ir.fl_levels;
                          sites = Array.length fl.Ir.fl_sites;
                        })
                 | exception Reject r -> note s (Unplannable r));
                (* inner loops also get independent plan entries so the
                   fallback path still fast-paths them when the outer
                   guard declines *)
                walk_block (Typecheck.bind env h.index Tint) body;
                env
              | Assign _ | Expr_stmt _ | Return _ | Break | Continue -> env)
            env blk)
     in
     List.iter
       (fun f -> walk_block (Typecheck.env_for_func p f) f.fbody)
       (funcs p));
  tbl

let plan ?region_sids (p : program) : Ir.plan =
  plan_with ?region_sids ~note:(fun _ _ -> ()) p

let plan_report ?region_sids (p : program) : (Loc.t * outcome) list =
  let acc = ref [] in
  ignore (plan_with ?region_sids ~note:(fun s o -> acc := (s.sloc, o) :: !acc) p);
  List.rev !acc
