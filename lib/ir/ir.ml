let version = 2

type prec = Psingle | Pdouble

type var_kind = Kint | Kbool | Kfloat of prec

type var = { v_name : string; v_kind : var_kind; v_reg : int; v_written : bool }

type ety = Efloat32 | Efloat64 | Eint | Ebool

type arr = { a_name : string; a_ety : ety; a_stored : bool }

type iexpr =
  | Iconst of int
  | Ivar of int
  | Iadd of iexpr * iexpr
  | Isub of iexpr * iexpr
  | Imul of iexpr * iexpr
  | Ineg of iexpr

type cursor = { c_arr : int; c_coefs : iexpr array; c_base : iexpr }

type cmpop = Clt | Cle | Cgt | Cge | Ceq | Cne

type fop =
  | FConst of int * float
  | IConst of int * int
  | FMov of int * int
  | IMov of int * int
  | ItoF of int * int
  | FtoI of int * int
  | FtoB of int * int
  | ItoB of int * int
  | FDem of int * int
  | FAdd of int * int * int
  | FSub of int * int * int
  | FMul of int * int * int
  | FDiv of int * int * int
  | FNeg of int * int
  | FAddS of int * int * int
  | FSubS of int * int * int
  | FMulS of int * int * int
  | FDivS of int * int * int
  | IAdd of int * int * int
  | ISub of int * int * int
  | IMul of int * int * int
  | INeg of int * int
  | IDivZ of int * int * int * Loc.t
  | IModZ of int * int * int * Loc.t
  | IAbs of int * int
  | IMin of int * int * int
  | IMax of int * int * int
  | ICmp of cmpop * int * int * int
  | FCmp of cmpop * int * int * int
  | INot of int * int
  | FMath1 of m1 * int * int
  | FMath1S of m1 * int * int
  | FMath2 of m2 * int * int * int
  | FMath2S of m2 * int * int * int
  | Rand of int
  | FLd of int * int
  | FSt of int * int
  | FStDem of int * int
  | ILd of int * int
  | ISt of int * int
  | IStB of int * int
  | FLdCk of int * int * int * Loc.t
  | FStCk of int * int * int * Loc.t
  | ILdCk of int * int * int * Loc.t
  | IStCk of int * int * int * Loc.t
  | FLdSub of int * int * int
  | FLdSub2 of int * int * int
  | FLdMul of int * int * int
  | FLdAdd of int * int * int
  | FMulAdd of int * int * int * int
  | FAddMul of int * int * int * int
  | FSubMul of int * int * int * int
  | FRecip of int * int
  | FRsqrt of int * int
  | FAccSt of int * int
  | FMulAccSt of int * int * int

and m1 =
  | Msqrt
  | Mrsqrt
  | Msin
  | Mcos
  | Mtan
  | Mexp
  | Mlog
  | Mtanh
  | Merf
  | Mfabs
  | Mfloor
  | Mceil

and m2 = Mpow | Mfmin | Mfmax

type counts = {
  mutable k_int_ops : int;
  mutable k_sp_add : int;
  mutable k_sp_mul : int;
  mutable k_sp_div : int;
  mutable k_sp_special : int;
  mutable k_dp_add : int;
  mutable k_dp_mul : int;
  mutable k_dp_div : int;
  mutable k_dp_special : int;
  mutable k_loads : int;
  mutable k_stores : int;
  mutable k_bytes_loaded : int;
  mutable k_bytes_stored : int;
  mutable k_branches : int;
}

let zero_counts () =
  {
    k_int_ops = 0;
    k_sp_add = 0;
    k_sp_mul = 0;
    k_sp_div = 0;
    k_sp_special = 0;
    k_dp_add = 0;
    k_dp_mul = 0;
    k_dp_div = 0;
    k_dp_special = 0;
    k_loads = 0;
    k_stores = 0;
    k_bytes_loaded = 0;
    k_bytes_stored = 0;
    k_branches = 0;
  }

type block = { b_items : bitem array; b_steps : int; b_cnt : counts }

and bitem = Bops of fop array | Bsite of int | Bloop of int

type site = { s_cond : int; s_then : block; s_else : block }

type level = {
  l_sid : int;
  l_cle : bool;
  l_lo : iexpr;
  l_lo_ops : int;
  l_hi : iexpr;
  l_hi_ops : int;
  l_step : iexpr;
  l_step_ops : int;
  l_index_reg : int option;
  l_body : block;
}

type fast_loop = {
  fl_sid : int;
  fl_loc : Loc.t;
  fl_levels : level array;
  fl_sites : site array;
  fl_vars : var array;
  fl_arrs : arr array;
  fl_cursors : cursor array;
  fl_prologue : fop array;
  fl_epilogue : fop array;
  fl_nf : int;
  fl_ni : int;
  fl_hoisted : int array;
  fl_promoted : int array;
}

type plan = (int, fast_loop) Hashtbl.t

let ety_bytes = function Efloat32 -> 4 | Efloat64 -> 8 | Eint -> 4 | Ebool -> 1

let ety_of_ty = function
  | Ast.Tfloat -> Some Efloat32
  | Ast.Tdouble -> Some Efloat64
  | Ast.Tint -> Some Eint
  | Ast.Tbool -> Some Ebool
  | Ast.Tvoid | Ast.Tptr _ -> None

let ty_of_ety = function
  | Efloat32 -> Ast.Tfloat
  | Efloat64 -> Ast.Tdouble
  | Eint -> Ast.Tint
  | Ebool -> Ast.Tbool
