(** Typed flat IR for the superinstruction VM backend.

    The lowering pass ({!Ir_lower}) selects canonical counted [for] loop
    {e nests} — an outer loop whose inner loops have nest-invariant bounds
    — whose bodies are statically typed code with structured control flow
    ([if] statements and ternaries), and compiles each into a
    {!fast_loop}: a tree of blocks over flat arrays of register-style
    instructions ({!fop}) on unboxed float and int register files, plus
    everything the executing backend needs to stay observably identical
    to the reference tree walker — static per-block hardware-counter
    deltas, per-site taken counters for the data-dependent part of the
    accounting, and nest-invariant index expressions whose runtime values
    drive bounds-check elision across every level.

    The IR is purely structural: it references variables and arrays by
    name/id and never captures closures or runtime values, so it can be
    built once per program, hashed into memoization keys (see {!version}),
    and bound to a concrete frame by whichever backend executes it. *)

val version : int
(** Version of the IR semantics and instruction encoding.  Folded into
    interpreter memoization keys alongside the backend tag so cached
    results produced by an older lowering are never replayed. *)

(** {1 Scalar bindings} *)

(** Floating-point precision of a register or operation.  Single-precision
    results are demoted through a 32-bit round trip exactly like
    [Value.demote]. *)
type prec = Psingle | Pdouble

(** Static kind of an external scalar variable captured by a loop.
    Booleans are carried as 0/1 integers. *)
type var_kind = Kint | Kbool | Kfloat of prec

type var = {
  v_name : string;  (** source name, resolved against the enclosing scope *)
  v_kind : var_kind;
  v_reg : int;  (** register (int or float file, per [v_kind]) *)
  v_written : bool;  (** written in the body: written back on loop exit *)
}

(** {1 Arrays and access paths} *)

(** Exact element type an access site assumes; the runtime guard verifies
    the resolved array matches before the fast path may run. *)
type ety = Efloat32 | Efloat64 | Eint | Ebool

type arr = {
  a_name : string;
  a_ety : ety;
  a_stored : bool;  (** some access site stores through this array *)
}

(** Nest-invariant integer expression, evaluated once by the runtime guard
    (trip counts, affine coefficients).  [Ivar] indexes the {!var} table
    and must reference an int-kinded, unwritten variable; evaluation is
    total (no division, no effects). *)
type iexpr =
  | Iconst of int
  | Ivar of int
  | Iadd of iexpr * iexpr
  | Isub of iexpr * iexpr
  | Imul of iexpr * iexpr
  | Ineg of iexpr

(** Affine access path across the whole nest: element index =
    [sum_l coefs.(l) * i_l + base] over the levels' loop variables (the
    pointer's own offset is added by the guard).  All components are
    nest-invariant, so in-bounds endpoints per level imply every reached
    iteration is in bounds — this is what licenses bounds-check elision.
    [c_coefs] is indexed by level id (0 = root). *)
type cursor = { c_arr : int; c_coefs : iexpr array; c_base : iexpr }

(** Comparison operator for {!fop.ICmp}/{!fop.FCmp}. *)
type cmpop = Clt | Cle | Cgt | Cge | Ceq | Cne

(** {1 Instructions}

    Registers are indices into per-loop unboxed register files: [f]
    (floats) and [n] (ints; booleans as 0/1).  Plain arithmetic operates
    at double precision; [...S] variants demote the result through single
    precision.  [Ld]/[St] address memory through a {!cursor} with no
    per-access bounds check; [...Ck] variants take a runtime index
    register and check bounds, raising the walker's exact out-of-bounds
    error.  [ICmp]/[FCmp] materialise comparison results as 0/1 ints
    (each modelled as one integer op, like the walker).  The fused
    superinstructions at the end collapse the opcode pairs that dominate
    the suite's counter profile (load-sub, mul-add chains, and
    read-modify-write accumulations). *)
type fop =
  (* constants and moves *)
  | FConst of int * float
  | IConst of int * int
  | FMov of int * int
  | IMov of int * int
  (* conversions *)
  | ItoF of int * int  (** float reg <- float_of_int (int reg) *)
  | FtoI of int * int  (** int reg <- int_of_float (float reg) *)
  | FtoB of int * int  (** int reg <- (float reg <> 0.) as 0/1 *)
  | ItoB of int * int  (** int reg <- (int reg <> 0) as 0/1 *)
  | FDem of int * int  (** float reg <- demoted float reg *)
  (* float arithmetic (double, then single-demoted) *)
  | FAdd of int * int * int
  | FSub of int * int * int
  | FMul of int * int * int
  | FDiv of int * int * int
  | FNeg of int * int
  | FAddS of int * int * int
  | FSubS of int * int * int
  | FMulS of int * int * int
  | FDivS of int * int * int
  (* int arithmetic; division and modulo raise the walker's
     divide-by-zero error at the recorded location *)
  | IAdd of int * int * int
  | ISub of int * int * int
  | IMul of int * int * int
  | INeg of int * int
  | IDivZ of int * int * int * Loc.t
  | IModZ of int * int * int * Loc.t
  | IAbs of int * int
  | IMin of int * int * int
  | IMax of int * int * int
  (* comparisons and boolean negation (results are 0/1 ints) *)
  | ICmp of cmpop * int * int * int  (** [(op, d, a, b)] over int regs *)
  | FCmp of cmpop * int * int * int  (** [(op, d, a, b)] over float regs *)
  | INot of int * int  (** d <- 1 - truth(a) *)
  (* math intrinsics, pre-resolved to direct operations *)
  | FMath1 of m1 * int * int
  | FMath1S of m1 * int * int
  | FMath2 of m2 * int * int * int
  | FMath2S of m2 * int * int * int
  | Rand of int  (** float reg <- next PRNG draw *)
  (* memory, affine (bounds elided by the guard) *)
  | FLd of int * int  (** float reg <- farray(cursor) *)
  | FSt of int * int  (** farray(cursor) <- float reg, raw *)
  | FStDem of int * int  (** farray(cursor) <- demoted float reg *)
  | ILd of int * int
  | ISt of int * int
  | IStB of int * int  (** bool array store: normalise to 0/1 *)
  (* memory, runtime-checked (non-affine index in an int register) *)
  | FLdCk of int * int * int * Loc.t  (** dst, arr, idx reg, error loc *)
  | FStCk of int * int * int * Loc.t  (** arr, idx reg, src, error loc *)
  | ILdCk of int * int * int * Loc.t
  | IStCk of int * int * int * Loc.t
  (* superinstructions *)
  | FLdSub of int * int * int  (** dst <- farray(cur) -. freg *)
  | FLdSub2 of int * int * int  (** dst <- farray(cur1) -. farray(cur2) *)
  | FLdMul of int * int * int  (** dst <- farray(cur) *. freg *)
  | FLdAdd of int * int * int  (** dst <- farray(cur) +. freg *)
  | FMulAdd of int * int * int * int  (** [(d, a, b, c)]: d <- a *. b +. c *)
  | FAddMul of int * int * int * int  (** [(d, c, a, b)]: d <- c +. a *. b *)
  | FSubMul of int * int * int * int  (** [(d, c, a, b)]: d <- c -. a *. b *)
  | FRecip of int * int  (** d <- 1.0 /. a *)
  | FRsqrt of int * int  (** d <- 1.0 /. sqrt a *)
  | FAccSt of int * int  (** farray(cur) <- farray(cur) +. freg *)
  | FMulAccSt of int * int * int  (** farray(cur) <- farray(cur) +. a *. b *)

and m1 =
  | Msqrt
  | Mrsqrt
  | Msin
  | Mcos
  | Mtan
  | Mexp
  | Mlog
  | Mtanh
  | Merf
  | Mfabs
  | Mfloor
  | Mceil

and m2 = Mpow | Mfmin | Mfmax

(** {1 Counter deltas}

    Mirror of the interpreter's hardware-model counters ([Counters.t]
    minus [steps], which the step budget accounts separately).  Computed
    statically per block so the executing backend can batch a whole
    nest's worth of counting into one update per entry: the static block
    deltas are combined with per-level trip counts and per-site taken
    counters by the guard's cost walk. *)
type counts = {
  mutable k_int_ops : int;
  mutable k_sp_add : int;
  mutable k_sp_mul : int;
  mutable k_sp_div : int;
  mutable k_sp_special : int;
  mutable k_dp_add : int;
  mutable k_dp_mul : int;
  mutable k_dp_div : int;
  mutable k_dp_special : int;
  mutable k_loads : int;
  mutable k_stores : int;
  mutable k_bytes_loaded : int;
  mutable k_bytes_stored : int;
  mutable k_branches : int;
}

val zero_counts : unit -> counts

(** {1 Lowered loop nests}

    A planned nest is a tree of {!block}s.  A block's [b_cnt]/[b_steps]
    are the {e static} cost of running the block once: straight-line ops,
    each statement's own step, each site's branch + condition cost, and
    each inner [For]'s own step — but {e not} site arms (dynamic, covered
    by taken counters) or loop iterations (covered by trip counts). *)
type block = { b_items : bitem array; b_steps : int; b_cnt : counts }

(** One item of a block: a straight-line instruction run, a control-flow
    site (index into [fl_sites]), or an inner loop (index into
    [fl_levels]). *)
and bitem = Bops of fop array | Bsite of int | Bloop of int

(** One [if]/ternary/short-circuit site: [s_cond] is an int register
    holding 0/1 (written by the ops preceding the site); exactly one arm
    block runs per execution.  The executing backend counts taken
    then-arms per site so step/op accounting stays exact when the arms
    cost differently. *)
type site = { s_cond : int; s_then : block; s_else : block }

(** One loop level of the nest.  Level 0 is the root: its [l_lo] is
    unused (the root's initial index value is read from the frame slot,
    already evaluated by the enclosing compiled code) and [l_lo_ops] is
    0.  Inner levels' bounds are nest-invariant, so every level has a
    constant trip count for the whole entry. *)
type level = {
  l_sid : int;  (** statement id of the [For] this level came from *)
  l_cle : bool;  (** comparison is [<=] rather than [<] *)
  l_lo : iexpr;
  l_lo_ops : int;  (** int ops counted per evaluation of the bound *)
  l_hi : iexpr;
  l_hi_ops : int;
  l_step : iexpr;
  l_step_ops : int;
  l_index_reg : int option;  (** int reg refreshed with [i_l] each iteration *)
  l_body : block;
}

(** One canonical loop nest lowered to the flat IR.  The root level's
    body executes once per outer iteration; [fl_prologue] (hoisted
    constants and nest-invariant loads) once per entry after the guard
    commits, and [fl_epilogue] (write-backs of register-promoted array
    cells) once on normal exit.  [fl_hoisted] and [fl_promoted] name the
    arrays whose loads/cells were moved out of the nest; the guard
    re-checks at runtime that their bases do not alias any conflicting
    access before using the fast path. *)
type fast_loop = {
  fl_sid : int;  (** statement id of the root [For] *)
  fl_loc : Loc.t;  (** source location of the root [For] (diagnostics) *)
  fl_levels : level array;  (** level 0 = root *)
  fl_sites : site array;
  fl_vars : var array;
  fl_arrs : arr array;
  fl_cursors : cursor array;
  fl_prologue : fop array;
  fl_epilogue : fop array;
  fl_nf : int;  (** float register file size *)
  fl_ni : int;  (** int register file size *)
  fl_hoisted : int array;  (** arrs with loads hoisted into the prologue *)
  fl_promoted : int array;  (** arrs register-promoted across the nest *)
}

(** Plan for a whole program: lowered nests keyed by [For] statement id.
    Inner loops of a planned nest also get their own independent entries,
    so the compiled fallback path still fast-paths them when the outer
    guard declines. *)
type plan = (int, fast_loop) Hashtbl.t

val ety_bytes : ety -> int
(** Byte width of an element ([Efloat32] 4, [Efloat64] 8, [Eint] 4,
    [Ebool] 1), matching [Ast.sizeof]. *)

val ety_of_ty : Ast.ty -> ety option
(** Scalar element types only; [None] for [void] and pointers. *)

val ty_of_ety : ety -> Ast.ty
