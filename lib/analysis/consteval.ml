module Smap = Map.Make (String)

type env = int Smap.t

let empty = Smap.empty

let lookup env name = Smap.find_opt name env

let rec eval_int env (e : Ast.expr) : int option =
  match e.edesc with
  | Int_lit n -> Some n
  | Bool_lit b -> Some (if b then 1 else 0)
  | Var v -> lookup env v
  | Unary (Neg, a) -> Option.map (fun n -> -n) (eval_int env a)
  | Unary (Not, a) -> Option.map (fun n -> if n = 0 then 1 else 0) (eval_int env a)
  | Binary (op, a, b) ->
    (match eval_int env a, eval_int env b with
     | Some x, Some y ->
       (match op with
        | Add -> Some (x + y)
        | Sub -> Some (x - y)
        | Mul -> Some (x * y)
        | Div -> if y = 0 then None else Some (x / y)
        | Mod -> if y = 0 then None else Some (x mod y)
        | Lt -> Some (if x < y then 1 else 0)
        | Le -> Some (if x <= y then 1 else 0)
        | Gt -> Some (if x > y then 1 else 0)
        | Ge -> Some (if x >= y then 1 else 0)
        | Eq -> Some (if x = y then 1 else 0)
        | Ne -> Some (if x <> y then 1 else 0)
        | And -> Some (if x <> 0 && y <> 0 then 1 else 0)
        | Or -> Some (if x <> 0 || y <> 0 then 1 else 0))
     | _, _ -> None)
  | Cast (Tint, a) -> eval_int env a
  | Cond (c, a, b) ->
    (match eval_int env c with
     | Some 0 -> eval_int env b
     | Some _ -> eval_int env a
     | None -> None)
  | Float_lit _ | Call _ | Index _ | Cast _ -> None

let of_program (p : Ast.program) =
  List.fold_left
    (fun env g ->
      match g with
      | Ast.Gdecl { dty = Ast.Tint; dname; dinit = Some e; darray = None; dconst = true } ->
        (match eval_int env e with
         | Some n -> Smap.add dname n env
         | None -> env)
      | Ast.Gdecl _ | Ast.Gfunc _ -> env)
    empty p.pglobals

let with_overrides env bindings =
  List.fold_left (fun env (name, v) -> Smap.add name v env) env bindings
