(** Compile-time constant evaluation.

    Resolves integer expressions over literals and [const int] globals —
    the information static analyses have without running the program.
    Used for static trip counts ("fixed-bound loops") and full-unrollability
    checks. *)

type env
(** Mapping from names to known integer constants. *)

val empty : env

val of_program : Ast.program -> env
(** Constants from [const int name = <literal-expression>;] globals
    (resolved in order, so constants may reference earlier ones). *)

val with_overrides : env -> (string * int) list -> env
(** Extend/override bindings (e.g. workload parameters). *)

val lookup : env -> string -> int option

val eval_int : env -> Ast.expr -> int option
(** Integer value of the expression if statically known. *)
