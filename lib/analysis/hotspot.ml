type hotspot = {
  hs_sid : int;
  hs_func : string;
  hs_depth : int;
  hs_work : float;
  hs_share : float;
  hs_iterations : int;
  hs_stats : Machine.loop_stats;
}

let detect ?config p =
  let config = Memo.analysis_config ?config () in
  let result = Memo.run ~config p in
  let total = Counters.work result.counters in
  let total = if total <= 0.0 then 1.0 else total in
  let candidates =
    List.concat_map
      (fun fn ->
        List.filter_map
          (fun (lm : Query.loop_match) ->
            match Machine.find_loop_stats result lm.lm_stmt.sid with
            | None -> None
            | Some stats ->
              Some
                {
                  hs_sid = lm.lm_stmt.sid;
                  hs_func = fn.Ast.fname;
                  hs_depth = Query.loop_depth lm.lm_ctx;
                  hs_work = stats.ls_work;
                  hs_share = stats.ls_work /. total;
                  hs_iterations = stats.ls_iterations;
                  hs_stats = stats;
                })
          (Query.loops_in_func fn))
      (Ast.funcs p)
  in
  List.sort (fun a b -> compare b.hs_work a.hs_work) candidates

let hottest ?config p = match detect ?config p with [] -> None | h :: _ -> Some h

type extraction = {
  ex_program : Ast.program;
  ex_kernel : string;
  ex_params : Ast.param list;
  ex_call_sid : int;
}

let extract p ~sid ~kernel_name =
  match Query.find_stmt p sid with
  | None -> Error (Printf.sprintf "no statement with id %d" sid)
  | Some (ctx, stmt) ->
    (match stmt.sdesc with
     | Ast.For _ | Ast.While _ ->
       let fn = ctx.Query.cx_func in
       (* global declarations stay visible inside the outlined kernel, so
          only function-local free variables become parameters *)
       let global_names =
         List.map (fun (d : Ast.decl) -> d.Ast.dname) (Ast.globals_decls p)
       in
       let free =
         List.filter
           (fun v -> not (List.mem v global_names))
           (Typecheck.free_vars_stmt stmt)
       in
       (match Typecheck.scope_at p fn sid with
        | exception Not_found -> Error "statement scope could not be resolved"
        | scope ->
          let written = Query.writes_in_block [ stmt ] in
          let reads = Query.reads_in_block [ stmt ] in
          let classify v =
            match List.assoc_opt v scope with
            | None -> Error (Printf.sprintf "free variable %s has no visible type" v)
            | Some (Ast.Tptr elem) ->
              let read_only = not (List.mem v written) in
              Ok
                {
                  Ast.prm_name = v;
                  prm_ty = Ast.Tptr elem;
                  prm_restrict = false;
                  prm_const = read_only;
                }
            | Some ty ->
              if List.mem v written then
                Error
                  (Printf.sprintf
                     "loop writes free scalar %s; scalar results must flow through \
                      arrays before extraction" v)
              else
                Ok { Ast.prm_name = v; prm_ty = ty; prm_restrict = false; prm_const = true }
          in
          let rec build acc = function
            | [] -> Ok (List.rev acc)
            | v :: rest ->
              (match classify v with
               | Ok prm -> build (prm :: acc) rest
               | Error _ as e -> e)
          in
          (* pass pointers first, then scalars: stable, readable signatures *)
          let free_sorted =
            let ptrs, scalars =
              List.partition
                (fun v ->
                  match List.assoc_opt v scope with
                  | Some (Ast.Tptr _) -> true
                  | Some _ | None -> false)
                free
            in
            ptrs @ scalars
          in
          (match build [] free_sorted with
           | Error msg -> Error msg
           | Ok params ->
             ignore reads;
             (* the loop subtree moves into the kernel, so its node ids stay
                unique program-wide and analyses can still address the loop *)
             let body = [ stmt ] in
             let kernel =
               {
                 Ast.fname = kernel_name;
                 fret = Ast.Tvoid;
                 fparams = params;
                 fbody = body;
                 floc = stmt.Ast.sloc;
               }
             in
             let args = List.map (fun prm -> Builder.var prm.Ast.prm_name) params in
             let call_stmt = Builder.expr_stmt (Builder.call kernel_name args) in
             let p = Rewrite.replace_stmt p ~sid call_stmt in
             (* place the kernel definition right before its caller *)
             let globals =
               List.concat_map
                 (fun g ->
                   match g with
                   | Ast.Gfunc f when f.Ast.fname = fn.Ast.fname ->
                     [ Ast.Gfunc kernel; g ]
                   | _ -> [ g ])
                 p.Ast.pglobals
             in
             Ok
               {
                 ex_program = { Ast.pglobals = globals };
                 ex_kernel = kernel_name;
                 ex_params = params;
                 ex_call_sid = call_stmt.Ast.sid;
               }))
     | _ -> Error (Printf.sprintf "statement %d is not a loop" sid))
