(** Static loop-carried dependence analysis.

    Implements the paper's "Loop Dependence Analysis" task: for a canonical
    counted loop, decide whether iterations are independent (parallel),
    independent up to recognised reductions (parallelisable with a
    reduction clause / privatisation), or serialised by a genuine carried
    dependence.  Array subscripts are compared with ZIV/SIV-style tests on
    their affine forms ({!Affine}), including the flattened-2D
    delinearisation pattern [a\[i*C + j\]] with [j] ranging inside [\[0,C)].

    The verdict also reports recurrence chains (e.g. a floating-point
    accumulation), which the FPGA model turns into a pipeline initiation
    interval. *)

type reduction_op = Radd | Rmul | Rmin | Rmax

(** A recognised reduction: repeated [target op= e] where [e] does not
    otherwise read the target. *)
type reduction = {
  red_target : string;            (** scalar name, or array name for [a\[inv\] op= e] *)
  red_is_array : bool;
  red_op : reduction_op;
  red_ty : Ast.ty;                (** element/scalar type of the accumulator *)
}

(** A dependence that serialises the loop. *)
type carried =
  | Scalar_carried of string         (** free scalar written and live across iterations *)
  | Array_carried of { arr : string; reason : string }

type verdict = {
  loop_sid : int;
  index : string;
  carried : carried list;
  reductions : reduction list;
  parallel : bool;                   (** no carried deps and no reductions *)
  parallel_with_reductions : bool;   (** no carried deps (reductions allowed) *)
}

val analyse_loop :
  ?consts:Consteval.env -> Ast.program -> Query.loop_match -> verdict
(** Analyse one canonical loop.  [consts] defaults to the program's global
    constants; pass {!Consteval.with_overrides} when workload parameters are
    known. *)

val static_trip_count : Consteval.env -> Ast.for_header -> int option
(** Iterations of the loop when bounds and step are static. *)

val fully_unrollable :
  ?threshold:int -> Consteval.env -> Query.loop_match -> bool
(** "Fixed bounds under a certain threshold" (Fig. 3): the static trip
    count exists and is at most [threshold] (default 64). *)

val range_of : (string -> (int * int) option) -> Consteval.env -> Ast.expr -> (int * int) option
(** Interval of an integer expression given per-variable ranges — exposed
    for tests and the FPGA scheduler. *)
