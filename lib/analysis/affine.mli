(** Affine analysis of array subscripts with respect to a loop index.

    Classifies a subscript expression as [coeff*i + offset] (with integer
    [coeff], [offset]), loop-invariant, linear with a loop-invariant
    symbolic remainder (the flattened-2D pattern [i*C + j]), or unknown.
    This is the machinery behind the ZIV/SIV subscript tests in
    {!Dependence}. *)

type t =
  | Affine of { coeff : int; offset : int }
      (** [coeff * i + offset], all integer *)
  | Invariant
      (** does not mention the loop index *)
  | Linear_plus of { coeff : int; rest : Ast.expr }
      (** [coeff * i + rest], [rest] loop-invariant but not constant —
          e.g. [i * M + j] seen from loop [i], where [rest = j] *)
  | Unknown

val classify : index:string -> consts:Consteval.env -> Ast.expr -> t
(** Analyse a subscript with respect to loop index [index].  Other
    variables are symbols; their values may be known through [consts]. *)

val mentions : string -> Ast.expr -> bool
(** Does the expression read the given variable? *)

val invariant_in : index:string -> Ast.expr -> bool
(** [not (mentions index e)] — convenience used across analyses. *)
