type t =
  | Affine of { coeff : int; offset : int }
  | Invariant
  | Linear_plus of { coeff : int; rest : Ast.expr }
  | Unknown

let rec mentions name (e : Ast.expr) =
  match e.edesc with
  | Var v -> v = name
  | _ -> List.exists (mentions name) (Ast.expr_children e)

let invariant_in ~index e = not (mentions index e)

(* Decompose [e] as (coeff, offset, rest): e = coeff*i + offset + rest where
   [rest] is a list of loop-invariant sub-expressions. *)
let rec decompose ~index ~consts (e : Ast.expr) : (int * int * Ast.expr list) option =
  match Consteval.eval_int consts e with
  | Some n -> Some (0, n, [])
  | None ->
    (match e.edesc with
     | Var v when v = index -> Some (1, 0, [])
     | Var _ -> Some (0, 0, [ e ])
     | Unary (Neg, a) ->
       (match decompose ~index ~consts a with
        | Some (c, o, []) -> Some (-c, -o, [])
        | Some _ | None -> None)
     | Binary (Add, a, b) ->
       (match decompose ~index ~consts a, decompose ~index ~consts b with
        | Some (ca, oa, ra), Some (cb, ob, rb) -> Some (ca + cb, oa + ob, ra @ rb)
        | _, _ -> None)
     | Binary (Sub, a, b) ->
       (match decompose ~index ~consts a, decompose ~index ~consts b with
        | Some (ca, oa, []), Some (cb, ob, []) -> Some (ca - cb, oa - ob, [])
        | Some (ca, oa, ra), Some (cb, ob, []) -> Some (ca - cb, oa - ob, ra)
        | _, _ -> None)
     | Binary (Mul, a, b) ->
       (match Consteval.eval_int consts a, Consteval.eval_int consts b with
        | Some k, _ ->
          (match decompose ~index ~consts b with
           | Some (c, o, []) -> Some (k * c, k * o, [])
           | Some _ | None -> if mentions index b then None else Some (0, 0, [ e ]))
        | _, Some k ->
          (match decompose ~index ~consts a with
           | Some (c, o, []) -> Some (k * c, k * o, [])
           | Some _ | None -> if mentions index a then None else Some (0, 0, [ e ]))
        | None, None -> if mentions index e then None else Some (0, 0, [ e ]))
     | _ -> if mentions index e then None else Some (0, 0, [ e ]))

let classify ~index ~consts e =
  match decompose ~index ~consts e with
  | None -> if mentions index e then Unknown else Invariant
  | Some (0, _, _) -> Invariant
  | Some (coeff, offset, []) -> Affine { coeff; offset }
  | Some (coeff, offset, rest) ->
    let rest_expr =
      let combined =
        List.fold_left
          (fun acc r ->
            match acc with
            | None -> Some r
            | Some prev -> Some (Ast.mk_expr (Ast.Binary (Ast.Add, prev, r))))
          None rest
      in
      match combined, offset with
      | Some r, 0 -> r
      | Some r, o -> Ast.mk_expr (Ast.Binary (Ast.Add, r, Ast.mk_expr (Ast.Int_lit o)))
      | None, o -> Ast.mk_expr (Ast.Int_lit o)
    in
    Linear_plus { coeff; rest = rest_expr }
