type info = {
  tc_sid : int;
  tc_entries : int;
  tc_iterations : int;
  tc_avg : float;
  tc_static : int option;
}

let of_result (p : Ast.program) (result : Machine.result) =
  let consts = Consteval.of_program p in
  let loops = Query.loops p in
  List.filter_map
    (fun (lm : Query.loop_match) ->
      match Machine.find_loop_stats result lm.lm_stmt.sid with
      | None -> None
      | Some (stats : Machine.loop_stats) ->
        Some
          {
            tc_sid = lm.lm_stmt.sid;
            tc_entries = stats.ls_entries;
            tc_iterations = stats.ls_iterations;
            tc_avg =
              (if stats.ls_entries = 0 then 0.0
               else float_of_int stats.ls_iterations /. float_of_int stats.ls_entries);
            tc_static = Dependence.static_trip_count consts lm.lm_header;
          })
    loops

let analyse ?config p =
  let config = Memo.analysis_config ?config () in
  of_result p (Memo.run ~config p)

let find infos sid = List.find_opt (fun i -> i.tc_sid = sid) infos
