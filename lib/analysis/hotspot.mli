(** Hotspot loop detection and extraction (the partitioning stage).

    Detection instruments every loop with "timers" (the interpreter's
    inclusive work counters) and ranks the outermost loops of the entry
    function by their share of total execution work — the dynamic task the
    paper describes as "instrument the application with loop timers and
    execute to identify time-consuming loops".

    Extraction outlines the chosen loop into a standalone kernel function,
    replacing it with a call — the paper's "once a hotspot is identified, it
    is extracted into an isolated function for further analysis and
    eventual offloading". *)

type hotspot = {
  hs_sid : int;          (** loop statement id *)
  hs_func : string;      (** function containing the loop *)
  hs_depth : int;        (** loop nesting depth inside its function (0 = outermost) *)
  hs_work : float;       (** inclusive abstract cycles *)
  hs_share : float;      (** fraction of whole-program work, 0..1 *)
  hs_iterations : int;
  hs_stats : Machine.loop_stats;
}

val detect : ?config:Machine.config -> Ast.program -> hotspot list
(** Every loop of every function (all nesting levels), hottest first;
    nested loops' inclusive work overlaps their parents'.  [config]
    defaults to {!Machine.default_config}; loop profiling is forced on. *)

val hottest : ?config:Machine.config -> Ast.program -> hotspot option

(** Result of outlining a hotspot. *)
type extraction = {
  ex_program : Ast.program;   (** program with the kernel function added and the loop replaced by a call *)
  ex_kernel : string;         (** kernel function name *)
  ex_params : Ast.param list; (** kernel parameters, in call order *)
  ex_call_sid : int;          (** id of the replacement call statement *)
}

val extract :
  Ast.program -> sid:int -> kernel_name:string -> (extraction, string) result
(** Outline the loop with statement id [sid].  Free scalars are passed by
    value (const), arrays as pointers; globals remain globals (they stay
    visible inside the kernel, preserving static trip counts).  Fails with
    a message when the loop writes a free scalar (its value would not flow
    back) or when a free variable's type cannot be determined. *)
