(** Arithmetic-intensity analysis (FLOPs per byte).

    The informed PSA strategy (Fig. 3) offloads a hotspot only when
    [FLOPs/B > X]; this module provides both the dynamic measure (from a
    profiled region's counters and footprint) and a static per-iteration
    estimate from the AST.

    The dynamic measure is footprint-based — operations divided by the
    *distinct* bytes the region touches — so a kernel that re-reads a small
    working set (N-Body's inner loop) is correctly classified as
    compute-bound.  Expensive operations count at their flop-equivalent
    weight (a division or transcendental is many adds). *)

type measure = {
  ai_flop_equiv : float;   (** weighted floating-point work *)
  ai_raw_flops : int;      (** unweighted flop count *)
  ai_footprint_bytes : int;(** distinct bytes touched (in + out) *)
  ai_traffic_bytes : int;  (** total bytes moved by loads/stores *)
  ai_value : float;        (** flop-equivalents per footprint byte *)
}

val flop_equiv : Counters.t -> float
(** Weighted flops: add/mul 1, div 8, special functions 20. *)

val of_region_stats : Machine.region_stats -> measure

val compute_bound : ?threshold:float -> measure -> bool
(** [ai_value > threshold] (default [X = 5.0], the paper's tunable). *)

(** Static per-iteration estimate of a loop nest. *)
type static_estimate = {
  se_flops_per_iter : float;  (** flop-equivalents per outer iteration (nested loops multiplied by static trips) *)
  se_bytes_per_iter : float;  (** bytes accessed per outer iteration *)
  se_ai_traffic : float;      (** flops / bytes, traffic-based *)
}

val static_estimate :
  ?consts:Consteval.env -> Ast.program -> Query.loop_match -> static_estimate
(** Walk the loop body counting operations; inner loops with unknown static
    trip count are assumed to run [default_trip] = 16 iterations. *)
