(** Data in/out analysis (dynamic task, Fig. 4).

    Quantifies the data-transfer requirements of offloading a kernel: the
    bytes that must be copied to the accelerator before it runs (elements
    read before being written) and back afterwards (elements written).
    The PSA strategy compares the resulting transfer time against the CPU
    execution time of the hotspot. *)

type t = {
  dio_kernel : string;
  dio_invocations : int;
  dio_bytes_in : int;    (** per whole run (all invocations) *)
  dio_bytes_out : int;
  dio_traffic : Machine.array_traffic list;
  dio_region : Machine.region_stats;
}

val analyse : ?config:Machine.config -> Ast.program -> kernel:string -> t
(** Run the program profiling the kernel function as a region. *)

val of_region_stats : kernel:string -> Machine.region_stats -> t

val transfer_time : t -> bandwidth_bytes_per_s:float -> latency_s:float -> float
(** Estimated host<->device transfer time for the whole run:
    [(bytes_in + bytes_out) / bandwidth + invocations * latency]. *)
