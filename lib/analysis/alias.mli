(** Dynamic pointer-alias analysis (Fig. 4).

    Ensures "that pointer arguments do not reference overlapping memory
    locations".  Under the interpreter's memory model every array is a
    distinct base, so the check is exact: two pointer arguments alias iff a
    call passed them the same base.  Functions proven alias-free get their
    pointer parameters marked [__restrict__], which the code generators
    rely on. *)

type report = (string * bool) list
(** function name -> [true] when some call aliased two pointer arguments *)

val analyse : ?config:Machine.config -> Ast.program -> report

val no_alias : report -> string -> bool
(** [true] when the function was called and never with aliasing pointers;
    functions never observed default to [false] (unproven). *)

val mark_restrict : Ast.program -> fname:string -> Ast.program
(** Set [__restrict__] on every pointer parameter of the function. *)
