(** Loop trip-count analysis (dynamic task, Fig. 4).

    Runs the program under the interpreter with loop profiling and reports,
    per loop, how often it was entered and how many iterations it performed;
    the static trip count is attached when the bounds are compile-time
    constants. *)

type info = {
  tc_sid : int;            (** loop statement id *)
  tc_entries : int;
  tc_iterations : int;
  tc_avg : float;          (** iterations per entry *)
  tc_static : int option;  (** compile-time trip count, when bounds are static *)
}

val analyse : ?config:Machine.config -> Ast.program -> info list
(** Execute and profile every loop.  [config] defaults to
    {!Machine.default_config} with [profile_loops] forced on. *)

val of_result : Ast.program -> Machine.result -> info list
(** Extract trip counts from an existing profiled run. *)

val find : info list -> int -> info option
