type report = (string * bool) list

let analyse ?config p =
  let config = Memo.analysis_config ?config () in
  (Memo.run ~config p).aliased_funcs

let no_alias report fname =
  match List.assoc_opt fname report with Some aliased -> not aliased | None -> false

let mark_restrict p ~fname =
  match Ast.find_func p fname with
  | None -> p
  | Some fn ->
    let fparams =
      List.map
        (fun prm ->
          match prm.Ast.prm_ty with
          | Ast.Tptr _ -> { prm with Ast.prm_restrict = true }
          | _ -> prm)
        fn.Ast.fparams
    in
    Ast.replace_func p { fn with Ast.fparams }
