type measure = {
  ai_flop_equiv : float;
  ai_raw_flops : int;
  ai_footprint_bytes : int;
  ai_traffic_bytes : int;
  ai_value : float;
}

let div_weight = 8.0

let special_weight = 20.0

let flop_equiv (c : Counters.t) =
  float_of_int
    (c.flops_sp_add + c.flops_dp_add + c.flops_sp_mul + c.flops_dp_mul)
  +. (float_of_int (c.flops_sp_div + c.flops_dp_div) *. div_weight)
  +. (float_of_int (c.flops_sp_special + c.flops_dp_special) *. special_weight)

let of_region_stats (rs : Machine.region_stats) =
  let footprint = rs.rs_bytes_in + rs.rs_bytes_out in
  let flops = flop_equiv rs.rs_counters in
  {
    ai_flop_equiv = flops;
    ai_raw_flops = Counters.flops rs.rs_counters;
    ai_footprint_bytes = footprint;
    ai_traffic_bytes = Counters.bytes rs.rs_counters;
    ai_value = (if footprint = 0 then Float.infinity else flops /. float_of_int footprint);
  }

let compute_bound ?(threshold = 5.0) m = m.ai_value > threshold

type static_estimate = {
  se_flops_per_iter : float;
  se_bytes_per_iter : float;
  se_ai_traffic : float;
}

let default_trip = 16

let special_names =
  [ "sqrt"; "sqrtf"; "sin"; "sinf"; "cos"; "cosf"; "tan"; "tanf"; "exp"; "expf";
    "log"; "logf"; "pow"; "powf"; "tanh"; "tanhf"; "erf"; "erff"; "rsqrt"; "rsqrtf" ]

(* flops and bytes of one execution of an expression *)
let rec expr_cost tenv (e : Ast.expr) : float * float =
  let children =
    List.fold_left
      (fun (f, b) c ->
        let cf, cb = expr_cost tenv c in
        (f +. cf, b +. cb))
      (0.0, 0.0) (Ast.expr_children e)
  in
  let fl, by = children in
  match e.edesc with
  | Binary ((Add | Sub | Mul), a, b) ->
    let is_float =
      try
        Ast.is_float_ty (Typecheck.expr_ty tenv a)
        || Ast.is_float_ty (Typecheck.expr_ty tenv b)
      with Typecheck.Type_error _ -> true
    in
    if is_float then (fl +. 1.0, by) else (fl, by)
  | Binary (Div, a, b) ->
    let is_float =
      try
        Ast.is_float_ty (Typecheck.expr_ty tenv a)
        || Ast.is_float_ty (Typecheck.expr_ty tenv b)
      with Typecheck.Type_error _ -> true
    in
    if is_float then (fl +. div_weight, by) else (fl, by)
  | Call (name, _) when List.mem name special_names -> (fl +. special_weight, by)
  | Index (base, _) ->
    let bytes =
      try
        match Typecheck.expr_ty tenv base with
        | Ast.Tptr t -> float_of_int (Ast.sizeof t)
        | _ -> 8.0
      with Typecheck.Type_error _ -> 8.0
    in
    (fl, by +. bytes)
  | _ -> (fl, by)

let static_estimate ?consts (p : Ast.program) (lm : Query.loop_match) =
  let consts = match consts with Some c -> c | None -> Consteval.of_program p in
  let fn = lm.lm_ctx.cx_func in
  let tenv0 = Typecheck.env_for_func p fn in
  (* one pass over the body; nested loops multiply by their static trips *)
  let rec block_cost tenv blk =
    List.fold_left
      (fun ((f, b), tenv) s ->
        let (sf, sb), tenv = stmt_cost tenv s in
        ((f +. sf, b +. sb), tenv))
      ((0.0, 0.0), tenv)
      blk
    |> fst
  and stmt_cost tenv (s : Ast.stmt) =
    match s.sdesc with
    | Decl d ->
      let cost =
        match d.dinit with Some e -> expr_cost tenv e | None -> (0.0, 0.0)
      in
      let tenv =
        Typecheck.bind tenv d.dname
          (match d.darray with Some _ -> Ast.Tptr d.dty | None -> d.dty)
      in
      (cost, tenv)
    | Assign (lhs, op, rhs) ->
      let lf, lb = expr_cost tenv lhs in
      let rf, rb = expr_cost tenv rhs in
      let extra = match op with Ast.Set -> 0.0 | _ -> 1.0 in
      (* a store writes the same number of bytes the lhs load counted *)
      let store_bytes = match lhs.edesc with Ast.Index _ -> lb | _ -> 0.0 in
      ((lf +. rf +. extra, lb +. rb +. store_bytes), tenv)
    | Expr_stmt e -> (expr_cost tenv e, tenv)
    | If (c, b1, b2) ->
      let cf, cb = expr_cost tenv c in
      let tf, tb = block_cost tenv b1 in
      let ef, eb = block_cost tenv b2 in
      (* weight both arms at half probability *)
      ((cf +. (0.5 *. (tf +. ef)), cb +. (0.5 *. (tb +. eb))), tenv)
    | For (h, body) ->
      let trips =
        match Dependence.static_trip_count consts h with
        | Some n -> float_of_int n
        | None -> float_of_int default_trip
      in
      let tenv_body = Typecheck.bind tenv h.index Ast.Tint in
      let bf, bb = block_cost tenv_body body in
      ((trips *. bf, trips *. bb), tenv)
    | While (c, body) ->
      let cf, cb = expr_cost tenv c in
      let bf, bb = block_cost tenv body in
      let trips = float_of_int default_trip in
      ((trips *. (cf +. bf), trips *. (cb +. bb)), tenv)
    | Return (Some e) -> (expr_cost tenv e, tenv)
    | Return None | Break | Continue -> ((0.0, 0.0), tenv)
    | Scope body -> (block_cost tenv body, tenv)
  in
  let tenv = Typecheck.bind tenv0 lm.lm_header.index Ast.Tint in
  let f, b = block_cost tenv lm.lm_body in
  {
    se_flops_per_iter = f;
    se_bytes_per_iter = b;
    se_ai_traffic = (if b = 0.0 then Float.infinity else f /. b);
  }
