type reduction_op = Radd | Rmul | Rmin | Rmax

type reduction = {
  red_target : string;
  red_is_array : bool;
  red_op : reduction_op;
  red_ty : Ast.ty;
}

type carried =
  | Scalar_carried of string
  | Array_carried of { arr : string; reason : string }

type verdict = {
  loop_sid : int;
  index : string;
  carried : carried list;
  reductions : reduction list;
  parallel : bool;
  parallel_with_reductions : bool;
}

(* ---- static trip counts ---- *)

let static_trip_count consts (h : Ast.for_header) =
  match
    ( Consteval.eval_int consts h.lo,
      Consteval.eval_int consts h.hi,
      Consteval.eval_int consts h.step )
  with
  | Some lo, Some hi, Some step when step > 0 ->
    let span = match h.cmp with Ast.CLt -> hi - lo | Ast.CLe -> hi - lo + 1 in
    Some (max 0 ((span + step - 1) / step))
  | _, _, _ -> None

let fully_unrollable ?(threshold = 64) consts (lm : Query.loop_match) =
  match static_trip_count consts lm.lm_header with
  | Some n -> n <= threshold
  | None -> false

(* ---- interval arithmetic ---- *)

let rec range_of var_range consts (e : Ast.expr) : (int * int) option =
  match Consteval.eval_int consts e with
  | Some n -> Some (n, n)
  | None ->
    (match e.edesc with
     | Var v -> var_range v
     | Unary (Ast.Neg, a) ->
       Option.map (fun (lo, hi) -> (-hi, -lo)) (range_of var_range consts a)
     | Binary (Ast.Add, a, b) ->
       (match range_of var_range consts a, range_of var_range consts b with
        | Some (la, ha), Some (lb, hb) -> Some (la + lb, ha + hb)
        | _, _ -> None)
     | Binary (Ast.Sub, a, b) ->
       (match range_of var_range consts a, range_of var_range consts b with
        | Some (la, ha), Some (lb, hb) -> Some (la - hb, ha - lb)
        | _, _ -> None)
     | Binary (Ast.Mul, a, b) ->
       (match range_of var_range consts a, range_of var_range consts b with
        | Some (la, ha), Some (lb, hb) ->
          let products = [ la * lb; la * hb; ha * lb; ha * hb ] in
          Some (List.fold_left min max_int products, List.fold_left max min_int products)
        | _, _ -> None)
     | _ -> None)

(* ---- access collection ---- *)

type kind = Kread | Kwrite

type access = { acc_array : string; acc_sub : Ast.expr; acc_kind : kind }

(* Collect array accesses in a block.  [exclude] marks statement ids whose
   accesses are accounted for elsewhere (recognised reduction statements). *)
let collect_accesses ~exclude (blk : Ast.block) : access list =
  let acc = ref [] in
  let note kind (base : Ast.expr) (sub : Ast.expr) =
    match Query.array_base_name base with
    | Some name -> acc := { acc_array = name; acc_sub = sub; acc_kind = kind } :: !acc
    | None -> ()
  in
  let rec expr_reads (e : Ast.expr) =
    (match e.edesc with
     | Index (base, sub) -> note Kread base sub
     | _ -> ());
    List.iter expr_reads (Ast.expr_children e)
  in
  let rec stmt_walk (s : Ast.stmt) =
    if not (List.mem s.sid exclude) then begin
      (match s.sdesc with
       | Assign (lhs, op, rhs) ->
         (match lhs.edesc with
          | Index (base, sub) ->
            note Kwrite base sub;
            expr_reads sub;
            (match op with
             | Ast.Set -> ()
             | Ast.AddEq | Ast.SubEq | Ast.MulEq | Ast.DivEq -> note Kread base sub)
          | _ -> ());
         expr_reads rhs
       | _ -> List.iter expr_reads (Ast.stmt_exprs s));
      List.iter (List.iter stmt_walk) (Ast.stmt_sub_blocks s)
    end
  in
  List.iter stmt_walk blk;
  List.rev !acc

(* ---- scalar classification ---- *)

(* Scalars declared inside the body are private.  For free scalars we look
   at every write:
   - all writes are [s op= e] / [s = s op e] with e not reading s -> reduction
   - otherwise -> carried (conservative). *)

let reduction_op_of_assign = function
  | Ast.AddEq | Ast.SubEq -> Some Radd
  | Ast.MulEq -> Some Rmul
  | Ast.DivEq -> None
  | Ast.Set -> None

let reduction_op_of_binop = function
  | Ast.Add | Ast.Sub -> Some Radd
  | Ast.Mul -> Some Rmul
  | _ -> None

(* [s = s + e] or [s = e + s]: returns the op if the pattern matches. *)
let set_reduction_pattern (name : string) (rhs : Ast.expr) : reduction_op option =
  match rhs.edesc with
  | Binary (op, a, b) ->
    (match reduction_op_of_binop op with
     | None -> None
     | Some rop ->
       (match a.edesc, b.edesc with
        | Var v, _ when v = name && not (Affine.mentions name b) -> Some rop
        | _, Var v when v = name && not (Affine.mentions name a) && op <> Ast.Sub ->
          Some rop
        | _, _ -> None))
  | Call (("fmin" | "fminf"), [ a; b ]) | Call (("fmax" | "fmaxf"), [ a; b ]) ->
    let is_min =
      match rhs.edesc with Call (("fmin" | "fminf"), _) -> true | _ -> false
    in
    (match a.edesc, b.edesc with
     | Var v, _ when v = name && not (Affine.mentions name b) ->
       Some (if is_min then Rmin else Rmax)
     | _, Var v when v = name && not (Affine.mentions name a) ->
       Some (if is_min then Rmin else Rmax)
     | _, _ -> None)
  | _ -> None

type scalar_write = { sw_sid : int; sw_red : reduction_op option }

(* All writes to free scalars in the block, with the statements that are
   pure reduction updates flagged. *)
let scalar_writes (blk : Ast.block) : (string * scalar_write) list =
  let declared = ref [] in
  let out = ref [] in
  let rec walk_stmt (s : Ast.stmt) =
    (match s.sdesc with
     | Decl d -> declared := d.dname :: !declared
     | For (h, _) -> declared := h.index :: !declared
     | Assign (lhs, op, rhs) ->
       (match lhs.edesc with
        | Var v when not (List.mem v !declared) ->
          let red =
            match op with
            | Ast.Set -> set_reduction_pattern v rhs
            | _ ->
              (match reduction_op_of_assign op with
               | Some rop when not (Affine.mentions v rhs) -> Some rop
               | _ -> None)
          in
          out := (v, { sw_sid = s.sid; sw_red = red }) :: !out
        | _ -> ())
     | _ -> ());
    List.iter (List.iter walk_stmt) (Ast.stmt_sub_blocks s)
  in
  List.iter walk_stmt blk;
  List.rev !out

(* Is scalar [v] read in the block outside the given statement ids? *)
let scalar_read_outside ~exclude v (blk : Ast.block) =
  let found = ref false in
  let rec walk_stmt (s : Ast.stmt) =
    if not (List.mem s.sid exclude) then begin
      (match s.sdesc with
       | Assign (lhs, op, rhs) ->
         let lhs_reads =
           match lhs.edesc, op with
           | Var _, Ast.Set -> []
           | Var x, _ -> [ x ]
           | _, _ -> Query.reads_in_block [ Ast.mk_stmt (Ast.Expr_stmt lhs) ]
         in
         if List.mem v lhs_reads || Affine.mentions v rhs then found := true
       | _ ->
         if List.exists (Affine.mentions v) (Ast.stmt_exprs s) then found := true);
      List.iter (List.iter walk_stmt) (Ast.stmt_sub_blocks s)
    end
  in
  List.iter walk_stmt blk;
  !found

(* ---- array reduction pattern ---- *)

(* Statements of the form [a[sub] op= e] with [sub] invariant in the loop
   index and [e] not reading [a].  If *every* access to [a] in the body is
   such a statement, [a] is an array reduction target. *)

type array_red_stmt = { ars_sid : int; ars_array : string; ars_op : reduction_op }

let array_reduction_stmts ~index (blk : Ast.block) : array_red_stmt list =
  let out = ref [] in
  let rec walk_stmt (s : Ast.stmt) =
    (match s.sdesc with
     | Assign (lhs, op, rhs) ->
       (match lhs.edesc, reduction_op_of_assign op with
        | Index (base, sub), Some rop ->
          (match Query.array_base_name base with
           | Some arr
             when Affine.invariant_in ~index sub
                  && (not (Affine.mentions arr rhs))
                  && not (Affine.mentions index sub) ->
             out := { ars_sid = s.sid; ars_array = arr; ars_op = rop } :: !out
           | Some _ | None -> ())
        | _, _ -> ())
     | _ -> ());
    List.iter (List.iter walk_stmt) (Ast.stmt_sub_blocks s)
  in
  List.iter walk_stmt blk;
  List.rev !out

(* ---- subscript pair tests ---- *)

(* Inner loop index ranges: [for (int j = 0; j < C)] inside the body gives
   j in [0, C-1] when C is static. *)
let inner_ranges consts (blk : Ast.block) : (string -> (int * int) option) =
  let table = Hashtbl.create 8 in
  let rec walk_stmt (s : Ast.stmt) =
    (match s.sdesc with
     | For (h, _) ->
       (match
          ( Consteval.eval_int consts h.lo,
            Consteval.eval_int consts h.hi,
            Consteval.eval_int consts h.step )
        with
        | Some lo, Some hi, Some 1 ->
          let top = match h.cmp with Ast.CLt -> hi - 1 | Ast.CLe -> hi in
          Hashtbl.replace table h.index (lo, top)
        | _, _, _ -> ())
     | _ -> ());
    List.iter (List.iter walk_stmt) (Ast.stmt_sub_blocks s)
  in
  List.iter walk_stmt blk;
  fun v -> Hashtbl.find_opt table v

let exprs_syntactically_equal a b =
  String.equal (Pretty.expr_to_string a) (Pretty.expr_to_string b)

(* Test whether accesses [w] (a write) and [x] to the same array can touch
   the same element in *different* iterations of the loop. *)
let pair_carried ~index ~consts ~var_range (w : access) (x : access) :
    string option =
  let cw = Affine.classify ~index ~consts w.acc_sub in
  let cx = Affine.classify ~index ~consts x.acc_sub in
  match cw, cx with
  | Affine.Affine a, Affine.Affine b ->
    if a.coeff = b.coeff then
      if a.coeff = 0 then Some "same fixed element every iteration"
      else begin
        let d = b.offset - a.offset in
        if d = 0 then None
        else if d mod a.coeff = 0 then
          Some (Printf.sprintf "carried distance %d" (d / a.coeff))
        else None
      end
    else Some "subscripts with different strides"
  | Affine.Affine a, Affine.Invariant | Affine.Invariant, Affine.Affine a ->
    if a.coeff = 0 then Some "same fixed element every iteration"
    else Some "moving access against a fixed element"
  | Affine.Invariant, Affine.Invariant ->
    (* both fixed w.r.t. the loop: write repeats into the same cell *)
    Some "fixed element written every iteration"
  | Affine.Linear_plus a, Affine.Linear_plus b ->
    if a.coeff <> b.coeff || a.coeff = 0 then Some "subscripts with different strides"
    else begin
      (* delinearisation: rests confined to [0, coeff) cannot make distinct
         iterations collide; a rest that can exceed the stride can *)
      let in_block (r : Ast.expr) =
        match range_of var_range consts r with
        | Some (lo, hi) -> lo >= 0 && hi < abs a.coeff
        | None -> false
      in
      if in_block a.rest && in_block b.rest then None
      else if
        exprs_syntactically_equal a.rest b.rest
        && range_of var_range consts a.rest = None
      then
        (* same opaque offset in every iteration behaves like a shifted
           affine access: distinct iterations still touch distinct cells *)
        None
      else Some "flattened subscripts may overlap across iterations"
    end
  | Affine.Linear_plus a, Affine.Affine b | Affine.Affine b, Affine.Linear_plus a ->
    if a.coeff = b.coeff && a.coeff <> 0 then begin
      let in_block (r : Ast.expr) =
        match range_of var_range consts r with
        | Some (lo, hi) -> lo >= 0 && hi < abs a.coeff
        | None -> false
      in
      if in_block a.rest && b.offset >= 0 && b.offset < abs a.coeff then None
      else Some "flattened subscript may overlap affine access"
    end
    else Some "subscripts with different strides"
  | Affine.Unknown, _ | _, Affine.Unknown -> Some "non-affine subscript"
  | Affine.Linear_plus _, Affine.Invariant | Affine.Invariant, Affine.Linear_plus _ ->
    Some "moving access against a fixed element"

(* ---- main entry ---- *)

let dedup_carried l =
  List.rev
    (List.fold_left (fun acc c -> if List.mem c acc then acc else c :: acc) [] l)

(* arrays declared inside the body are private per iteration *)
let local_arrays (blk : Ast.block) =
  let out = ref [] in
  let rec walk (s : Ast.stmt) =
    (match s.sdesc with
     | Ast.Decl { darray = Some _; dname; _ } -> out := dname :: !out
     | _ -> ());
    List.iter (List.iter walk) (Ast.stmt_sub_blocks s)
  in
  List.iter walk blk;
  !out

let analyse_loop ?consts (p : Ast.program) (lm : Query.loop_match) : verdict =
  let consts = match consts with Some c -> c | None -> Consteval.of_program p in
  let index = lm.lm_header.index in
  let body = lm.lm_body in
  let private_arrays = local_arrays body in
  let fn = lm.lm_ctx.cx_func in
  let tenv = Typecheck.env_for_func p fn in
  let scalar_ty v =
    (* the scalar is free in the loop, so it is visible in the function scope
       or declared earlier inside the function; fall back on double *)
    match Typecheck.lookup_var tenv v with
    | Some t -> t
    | None ->
      (match Typecheck.scope_at p fn lm.lm_stmt.sid with
       | scope -> (match List.assoc_opt v scope with Some t -> t | None -> Ast.Tdouble)
       | exception Not_found -> Ast.Tdouble)
  in
  let array_elem_ty a =
    match scalar_ty a with Ast.Tptr t -> t | t -> t
  in
  (* scalars *)
  let swrites = scalar_writes body in
  let scalar_names =
    dedup_carried (List.map fst swrites)
  in
  let scalar_results =
    List.map
      (fun v ->
        let writes = List.filter (fun (n, _) -> n = v) swrites in
        let red_ops = List.map (fun (_, w) -> w.sw_red) writes in
        let all_red = List.for_all (fun r -> r <> None) red_ops in
        let wsids = List.map (fun (_, w) -> w.sw_sid) writes in
        if all_red && not (scalar_read_outside ~exclude:wsids v body) then
          let op = match List.hd red_ops with Some o -> o | None -> Radd in
          `Reduction
            { red_target = v; red_is_array = false; red_op = op; red_ty = scalar_ty v }
        else `Carried (Scalar_carried v))
      scalar_names
  in
  (* array reductions *)
  let ar_stmts =
    List.filter
      (fun a -> not (List.mem a.ars_array private_arrays))
      (array_reduction_stmts ~index body)
  in
  let ar_arrays = dedup_carried (List.map (fun a -> a.ars_array) ar_stmts) in
  let exclude = List.map (fun a -> a.ars_sid) ar_stmts in
  let accesses =
    List.filter
      (fun a -> not (List.mem a.acc_array private_arrays))
      (collect_accesses ~exclude body)
  in
  (* an array qualifies as a reduction target only if it has no accesses
     outside its reduction statements *)
  let ar_ok, ar_conflicted =
    List.partition
      (fun arr -> not (List.exists (fun a -> a.acc_array = arr) accesses))
      ar_arrays
  in
  let array_reductions =
    List.map
      (fun arr ->
        let op =
          match List.find_opt (fun a -> a.ars_array = arr) ar_stmts with
          | Some a -> a.ars_op
          | None -> Radd
        in
        { red_target = arr; red_is_array = true; red_op = op; red_ty = array_elem_ty arr })
      ar_ok
  in
  (* re-include accesses of conflicted pseudo-reduction arrays *)
  let accesses =
    if ar_conflicted = [] then accesses
    else
      collect_accesses
        ~exclude:
          (List.filter_map
             (fun a -> if List.mem a.ars_array ar_ok then Some a.ars_sid else None)
             ar_stmts)
        body
  in
  (* array pair tests *)
  let var_range = inner_ranges consts body in
  let arrays_written =
    dedup_carried
      (List.filter_map
         (fun a -> if a.acc_kind = Kwrite then Some a.acc_array else None)
         accesses)
  in
  let array_carried =
    List.concat_map
      (fun arr ->
        let of_arr = List.filter (fun a -> a.acc_array = arr) accesses in
        let writes = List.filter (fun a -> a.acc_kind = Kwrite) of_arr in
        List.concat_map
          (fun w ->
            (* the write is tested against every access including itself:
               a fixed-element write repeated each iteration is an output
               dependence *)
            List.filter_map
              (fun x ->
                match pair_carried ~index ~consts ~var_range w x with
                | Some reason -> Some (Array_carried { arr; reason })
                | None -> None)
              of_arr)
          writes)
      arrays_written
  in
  let scalar_carried =
    List.filter_map (function `Carried c -> Some c | `Reduction _ -> None) scalar_results
  in
  let scalar_reductions =
    List.filter_map (function `Reduction r -> Some r | `Carried _ -> None) scalar_results
  in
  let carried = dedup_carried (scalar_carried @ array_carried) in
  let reductions = scalar_reductions @ array_reductions in
  {
    loop_sid = lm.lm_stmt.sid;
    index;
    carried;
    reductions;
    parallel = carried = [] && reductions = [];
    parallel_with_reductions = carried = [];
  }
