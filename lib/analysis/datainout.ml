type t = {
  dio_kernel : string;
  dio_invocations : int;
  dio_bytes_in : int;
  dio_bytes_out : int;
  dio_traffic : Machine.array_traffic list;
  dio_region : Machine.region_stats;
}

let of_region_stats ~kernel (rs : Machine.region_stats) =
  {
    dio_kernel = kernel;
    dio_invocations = rs.rs_invocations;
    dio_bytes_in = rs.rs_bytes_in;
    dio_bytes_out = rs.rs_bytes_out;
    dio_traffic = rs.rs_traffic;
    dio_region = rs;
  }

let analyse ?config p ~kernel =
  let base = Memo.analysis_config ?config () in
  let config =
    { base with Machine.regions = Machine.Rfunc kernel :: base.Machine.regions }
  in
  let result = Memo.run ~config p in
  match Machine.find_region_stats result (Machine.Rfunc kernel) with
  | Some rs -> of_region_stats ~kernel rs
  | None ->
    of_region_stats ~kernel
      {
        Machine.rs_invocations = 0;
        rs_counters = Counters.create ();
        rs_traffic = [];
        rs_bytes_in = 0;
        rs_bytes_out = 0;
      }

let transfer_time t ~bandwidth_bytes_per_s ~latency_s =
  (float_of_int (t.dio_bytes_in + t.dio_bytes_out) /. bandwidth_bytes_per_s)
  +. (float_of_int t.dio_invocations *. latency_s)
