type candidate = {
  ca_stmt_sid : int;
  ca_array : string;
  ca_subscript : string;
}

(* accumulation statements [a[sub] op= rhs] inside the loop, keyed by
   (array, printed subscript) *)
type acc_stmt = {
  as_sid : int;
  as_array : string;
  as_sub : Ast.expr;
  as_key : string;
}

let acc_stmts (lm : Query.loop_match) : acc_stmt list =
  let index = lm.lm_header.index in
  let out = ref [] in
  let rec walk (s : Ast.stmt) =
    (match s.sdesc with
     | Assign (lhs, (Ast.AddEq | Ast.SubEq | Ast.MulEq), rhs) ->
       (match lhs.edesc with
        | Index (base, sub) ->
          (match Query.array_base_name base with
           | Some arr
             when Affine.invariant_in ~index sub && not (Affine.mentions arr rhs) ->
             out :=
               {
                 as_sid = s.sid;
                 as_array = arr;
                 as_sub = sub;
                 as_key = arr ^ "[" ^ Pretty.expr_to_string sub ^ "]";
               }
               :: !out
           | Some _ | None -> ())
        | _ -> ())
     | _ -> ());
    List.iter (List.iter walk) (Ast.stmt_sub_blocks s)
  in
  List.iter walk lm.lm_body;
  List.rev !out

(* does the loop access [arr] outside the given statements? *)
let accessed_elsewhere (lm : Query.loop_match) arr (sids : int list) =
  let touched = ref false in
  let rec check_expr (e : Ast.expr) =
    (match e.edesc with
     | Var v when v = arr -> touched := true
     | _ -> ());
    List.iter check_expr (Ast.expr_children e)
  in
  let rec walk (s : Ast.stmt) =
    if not (List.mem s.sid sids) then begin
      List.iter check_expr (Ast.stmt_exprs s);
      List.iter (List.iter walk) (Ast.stmt_sub_blocks s)
    end
  in
  List.iter walk lm.lm_body;
  !touched

let eligible_groups (p : Ast.program) ~loop_sid =
  match Query.find_loop p loop_sid with
  | None -> []
  | Some lm ->
    let stmts = acc_stmts lm in
    let keys =
      List.sort_uniq compare (List.map (fun a -> a.as_key) stmts)
    in
    List.filter_map
      (fun key ->
        let group = List.filter (fun a -> a.as_key = key) stmts in
        match group with
        | [] -> None
        | first :: _ ->
          let arr = first.as_array in
          (* the whole array must be untouched outside its own group AND
             outside groups of the same array with other subscripts only if
             those are this group... conservative: untouched outside all
             accumulation statements of this array *)
          let same_array_sids =
            List.filter_map
              (fun a -> if a.as_array = arr then Some a.as_sid else None)
              stmts
          in
          if accessed_elsewhere lm arr same_array_sids then None
          else Some (lm, key, group))
      keys

let candidates p ~loop_sid =
  List.concat_map
    (fun (_, key, group) ->
      List.map
        (fun a -> { ca_stmt_sid = a.as_sid; ca_array = a.as_array; ca_subscript = key })
        group)
    (eligible_groups p ~loop_sid)

let elem_ty_of (p : Ast.program) (lm : Query.loop_match) arr =
  let fn = lm.lm_ctx.cx_func in
  let tenv = Typecheck.env_for_func p fn in
  match Typecheck.lookup_var tenv arr with
  | Some (Ast.Tptr t) -> t
  | Some t -> t
  | None ->
    (match Typecheck.scope_at p fn lm.lm_stmt.sid with
     | scope ->
       (match List.assoc_opt arr scope with
        | Some (Ast.Tptr t) -> t
        | Some t -> t
        | None -> Ast.Tdouble)
     | exception Not_found -> Ast.Tdouble)

let apply p ~loop_sid =
  let groups = eligible_groups p ~loop_sid in
  match groups with
  | [] -> p
  | (lm, _, _) :: _ ->
    let counter = ref 0 in
    let pre = ref [] and post = ref [] in
    let p =
      List.fold_left
        (fun p (_, _, group) ->
          match group with
          | [] -> p
          | first :: _ ->
            incr counter;
            let tmp = Printf.sprintf "%s_acc%d" first.as_array !counter in
            let ety = elem_ty_of p lm first.as_array in
            let load =
              Builder.decl ety tmp (Builder.idx2 first.as_array first.as_sub)
            in
            let store =
              Builder.assign (Builder.idx2 first.as_array first.as_sub) (Builder.var tmp)
            in
            pre := load :: !pre;
            post := store :: !post;
            List.fold_left
              (fun p (a : acc_stmt) ->
                match Query.find_stmt p a.as_sid with
                | None -> p
                | Some (_, s) ->
                  (match s.Ast.sdesc with
                   | Ast.Assign (_, op, rhs) ->
                     Rewrite.replace_stmt p ~sid:a.as_sid
                       (Ast.mk_stmt ~loc:s.Ast.sloc (Ast.Assign (Builder.var tmp, op, rhs)))
                   | _ -> p))
              p group)
        p groups
    in
    let p = Rewrite.insert_before p ~sid:loop_sid (List.rev !pre) in
    Rewrite.insert_after p ~sid:loop_sid (List.rev !post)
