(** "Remove Array += Dependency" (target-independent transform, Fig. 4).

    A loop that accumulates into a loop-invariant array element,

    {v
    for (int j = 0; j < n; j++) {
      force[i] += f(j);          // load-add-store chain through memory
    }
    v}

    carries its dependence through a memory cell.  The transform scalarises
    the accumulator — hoist the load above the loop, accumulate in a local,
    store back after — turning the array dependence into a plain scalar
    reduction that the dependence analysis recognises, OpenMP can reduce,
    and the FPGA scheduler can pipeline with a register recurrence instead
    of a memory round-trip. *)

type candidate = {
  ca_stmt_sid : int;      (** the [a\[sub\] op= e] statement *)
  ca_array : string;
  ca_subscript : string;  (** printed subscript, the grouping key *)
}

val candidates : Ast.program -> loop_sid:int -> candidate list
(** Accumulation statements in the loop whose subscript is invariant in the
    loop index and whose array is not otherwise accessed in the loop. *)

val apply : Ast.program -> loop_sid:int -> Ast.program
(** Scalarise every candidate of the loop.  Programs without candidates are
    returned unchanged. *)
