(** Two-tier content-addressed evaluation cache.

    The PSA-flow recomputes the same evaluations over and over: the
    uninformed mode takes every branch path, device branch points evaluate
    both arms, and bench/experiment harnesses re-run whole suites.  This
    library gives every such evaluation a shared cache with two tiers:

    - an {b in-memory tier} with single-flight deduplication: when two
      {!Util.Pool} workers request the same [(kind, key)] concurrently
      (the two arms of a device branch point, neighbouring DSE sweep
      points, suite runs over the same app), one computes and the others
      block on its result instead of recomputing;
    - a {b persistent on-disk tier} (off by default; enabled via
      {!set_dir}, conventionally [.psa-cache/]) so warm reruns skip
      recomputation across processes.  Entries are written atomically
      (temp file + rename), carry the kind/version/key and a payload
      digest, and anything corrupted or mismatched is treated as a miss.
      The directory is size-capped with LRU-ish eviction (read hits
      refresh an entry's mtime; eviction removes oldest-mtime entries
      first).

    Keys are caller-supplied content strings — callers derive them from a
    canonical binary serialization of whatever the evaluation depends on
    (program, device spec, config, interpreter version).  The cache
    digests them for file names; equal content means equal key.

    Values cross the disk boundary via [Marshal], so cached value types
    must be closure-free.  Values served from the in-memory tier are
    physically shared between requesters and must be treated as
    read-only (the same caveat as {!Memo}).

    {2 Key versioning invariant}

    Every instance carries a {!SPEC.version}; an entry is only ever
    replayed under the exact [(kind, version)] it was recorded with.
    Whenever the cached value type, the serialization, or the semantics
    of the computation change, the version {e must} be bumped — stale
    entries then read as plain misses (never as corruption) and age out
    via eviction.  Keys themselves must already encode every input the
    computation depends on; the version covers what keys cannot: the
    meaning of the computation.

    {2 Failure accounting}

    A disk entry that fails its digest or header validation, or that no
    longer unmarshals, is {e corruption}: the entry is deleted, the
    lookup is recomputed, and the per-kind [cache.<kind>.corrupt]
    counter is incremented — it is never reported as a hit.  [errors]
    is reserved for failed writes.  Deterministic read corruption can be
    injected with {!Util.Faultsim} ([--faults cache:<kind>]) to exercise
    this path. *)

type stats = {
  mem_hits : int;        (** served from the in-memory tier *)
  disk_hits : int;       (** served from the on-disk tier *)
  misses : int;          (** computed by the caller *)
  waits : int;           (** single-flight: blocked on another worker's computation *)
  errors : int;          (** failed disk writes *)
  corrupt : int;         (** corrupted/mismatched disk entries, evicted and recomputed *)
  evictions : int;       (** disk entries removed by the size cap *)
  bytes_read : int;      (** payload bytes unmarshalled from disk *)
  bytes_written : int;   (** payload bytes written to disk *)
}

val zero_stats : stats

val add_stats : stats -> stats -> stats
(** Field-wise sum, for aggregating over instances. *)

val set_dir : string option -> unit
(** Enable ([Some dir]) or disable ([None], the default) the on-disk
    tier.  The directory is created lazily on first use. *)

val dir : unit -> string option

val enabled : unit -> bool
(** [dir () <> None]. *)

val set_max_bytes : int -> unit
(** Size cap for the on-disk tier (default 512 MiB).  Exceeding it after
    a store evicts oldest-mtime entries down to 3/4 of the cap. *)

val max_bytes : unit -> int

val stats : unit -> stats
(** Aggregate statistics over every cache instance since the last
    {!reset_stats}. *)

val stats_by_kind : unit -> (string * stats) list
(** Per-instance statistics, sorted by kind. *)

val reset_stats : unit -> unit

val clear_memory : unit -> unit
(** Drop the in-memory tier of every instance (testing: forces the next
    lookup to the disk tier).  In-flight computations are unaffected. *)

val entry_path : kind:string -> version:int -> key:string -> string option
(** Absolute path the disk tier would use for this entry, [None] when the
    disk tier is disabled.  Exposed so tests can corrupt/relabel entries. *)

module type SPEC = sig
  type value

  val kind : string
  (** Short namespace id; also the on-disk file prefix. *)

  val version : int
  (** Bumped whenever the value type or the semantics producing it
      change; entries recorded under any other version are never
      replayed. *)
end

module Make (V : SPEC) : sig
  val find_or_compute :
    ?on_disk_hit:(V.value -> unit) ->
    ?to_disk:(V.value -> V.value) ->
    key:string ->
    (unit -> V.value) ->
    V.value
  (** Serve [key] from the in-memory tier, else from the disk tier, else
      compute it (storing the result in both tiers).  Concurrent
      requests for the same key block on the first one (single-flight);
      exceptions from the computation propagate to the computing caller,
      are never cached, and release the waiters (which then compute
      themselves).  [on_disk_hit] runs on the freshly unmarshalled value
      before it is published to any requester (e.g. to re-reserve AST id
      ranges).  [to_disk] maps the value just before it is marshalled to
      the disk tier — use it to drop fields that are expensive to
      persist and semantically dead on replay; the in-memory tier and
      the returned value are never transformed, so only entries restored
      from disk observe the slimming. *)

  val stats : unit -> stats
  (** This instance's statistics since the last {!reset}. *)

  val reset : unit -> unit
  (** Drop the in-memory tier and zero this instance's statistics.  The
      disk tier is untouched. *)
end
