type stats = {
  mem_hits : int;
  disk_hits : int;
  misses : int;
  waits : int;
  errors : int;
  corrupt : int;
  evictions : int;
  bytes_read : int;
  bytes_written : int;
}

let zero_stats =
  {
    mem_hits = 0;
    disk_hits = 0;
    misses = 0;
    waits = 0;
    errors = 0;
    corrupt = 0;
    evictions = 0;
    bytes_read = 0;
    bytes_written = 0;
  }

let add_stats a b =
  {
    mem_hits = a.mem_hits + b.mem_hits;
    disk_hits = a.disk_hits + b.disk_hits;
    misses = a.misses + b.misses;
    waits = a.waits + b.waits;
    errors = a.errors + b.errors;
    corrupt = a.corrupt + b.corrupt;
    evictions = a.evictions + b.evictions;
    bytes_read = a.bytes_read + b.bytes_read;
    bytes_written = a.bytes_written + b.bytes_written;
  }

(* ------------------------------------------------------------------ *)
(* Global configuration and instance registry                          *)
(* ------------------------------------------------------------------ *)

let the_dir : string option Atomic.t = Atomic.make None

let the_max_bytes = Atomic.make (512 * 1024 * 1024)

let set_dir d = Atomic.set the_dir d

let dir () = Atomic.get the_dir

let enabled () = dir () <> None

let set_max_bytes n = Atomic.set the_max_bytes (max 1 n)

let max_bytes () = Atomic.get the_max_bytes

(* Every [Make] instance registers its stats/reset closures here so the
   CLIs can report and tests can clear all tiers at once. *)
let registry : (string * (unit -> stats)) list ref = ref []

let resets : (unit -> unit) list ref = ref []

let mem_clears : (unit -> unit) list ref = ref []

let registry_lock = Mutex.create ()

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let stats () =
  with_registry (fun () ->
      List.fold_left (fun acc (_, get) -> add_stats acc (get ())) zero_stats !registry)

let stats_by_kind () =
  with_registry (fun () ->
      List.sort compare (List.map (fun (kind, get) -> (kind, get ())) !registry))

let reset_stats () = with_registry (fun () -> List.iter (fun f -> f ()) !resets)

let clear_memory () = with_registry (fun () -> List.iter (fun f -> f ()) !mem_clears)

(* ------------------------------------------------------------------ *)
(* Disk tier                                                           *)
(* ------------------------------------------------------------------ *)

(* One entry per file: a small marshalled header (kind, version, hex key
   digest, payload digest) followed by the raw payload bytes.  Readers
   validate every header field and the payload digest; any mismatch,
   truncation or unmarshalling failure is a miss (and the offender is
   deleted).  Writes go to a unique temp file in the same directory and
   are published with an atomic rename, so concurrent processes never
   observe a half-written entry. *)

let suffix = ".bin"

let file_name ~kind ~version ~key =
  Printf.sprintf "%s-v%d-%s%s" kind version (Digest.to_hex (Digest.string key)) suffix

let entry_path ~kind ~version ~key =
  Option.map (fun d -> Filename.concat d (file_name ~kind ~version ~key)) (dir ())

let ensure_dir d = try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* Eviction is per-process best-effort: scan the directory, and when the
   cap is exceeded delete oldest-mtime entries down to 3/4 of it.
   Failures (entries deleted by a racing process) are ignored. *)
let evict_lock = Mutex.create ()

let entry_files d =
  match Sys.readdir d with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun name ->
           if Filename.check_suffix name suffix then
             let path = Filename.concat d name in
             match Unix.stat path with
             | exception Unix.Unix_error _ -> None
             | st when st.Unix.st_kind = Unix.S_REG ->
               Some (path, st.Unix.st_size, st.Unix.st_mtime)
             | _ -> None
           else None)

let evict d =
  Mutex.lock evict_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock evict_lock)
    (fun () ->
      let files = entry_files d in
      let total = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 files in
      let cap = max_bytes () in
      if total <= cap then 0
      else begin
        let target = cap * 3 / 4 in
        let by_age = List.sort (fun (_, _, a) (_, _, b) -> compare a b) files in
        let evicted = ref 0 in
        let remaining = ref total in
        List.iter
          (fun (path, sz, _) ->
            if !remaining > target then begin
              (try
                 Sys.remove path;
                 remaining := !remaining - sz;
                 incr evicted
               with Sys_error _ -> ())
            end)
          by_age;
        !evicted
      end)

type disk_outcome = Hit of string | Miss | Error_miss

let disk_find ~kind ~version ~key =
  match entry_path ~kind ~version ~key with
  | None -> Miss
  | Some path ->
    (match open_in_bin path with
     | exception Sys_error _ -> Miss
     | ic ->
       let outcome =
         match
           let k, v, keyhex, payload_md5 =
             (input_value ic : string * int * string * Digest.t)
           in
           if
             k <> kind || v <> version
             || keyhex <> Digest.to_hex (Digest.string key)
           then raise Exit;
           let len = in_channel_length ic - pos_in ic in
           let payload = really_input_string ic len in
           let payload =
             (* Injected cache faults flip a payload byte after the read,
                so the genuine digest check below rejects the entry and
                the genuine eviction path removes it. *)
             if Util.Faultsim.fire Util.Faultsim.Cache_site ~site:kind then
               if len = 0 then raise Exit
               else begin
                 let b = Bytes.of_string payload in
                 Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x01));
                 Bytes.to_string b
               end
             else payload
           in
           if Digest.string payload <> payload_md5 then raise Exit;
           payload
         with
         | payload -> Hit payload
         | exception _ -> Error_miss
       in
       close_in_noerr ic;
       (match outcome with
        | Hit _ ->
          (* LRU-ish: refresh the entry so eviction removes cold ones first *)
          (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ())
        | Error_miss -> ( try Sys.remove path with Sys_error _ -> ())
        | Miss -> ());
       outcome)

(* Returns the number of entries evicted, or -1 on a failed write. *)
let disk_store ~kind ~version ~key payload =
  match dir () with
  | None -> 0
  | Some d ->
    (* publication (unique temp file + atomic rename) is the shared
       Obs.Atomic_io discipline, also used by the run ledger and the
       trace writer *)
    (match
       ensure_dir d;
       Obs.Atomic_io.with_atomic_out
         (Filename.concat d (file_name ~kind ~version ~key))
         (fun oc ->
           output_value oc
             (kind, version, Digest.to_hex (Digest.string key), Digest.string payload);
           output_string oc payload)
     with
     | Ok () -> evict d
     | Error _ -> -1
     | exception (Sys_error _ | Unix.Unix_error _) -> -1)

(* ------------------------------------------------------------------ *)
(* Typed instances: in-memory tier + single-flight + disk round trips  *)
(* ------------------------------------------------------------------ *)

module type SPEC = sig
  type value

  val kind : string

  val version : int
end

module Make (V : SPEC) = struct
  type slot = Ready of V.value | Pending

  let table : (string, slot) Hashtbl.t = Hashtbl.create 64

  let ready_count = ref 0

  let max_ready = 512

  let lock = Mutex.create ()

  let cond = Condition.create ()

  (* Per-kind tallies live in the process-wide metrics registry (one
     counter per field, named "cache.<kind>.<field>") so `--explain` and
     bench JSON read cache behaviour through the same API as every other
     subsystem; [stats] assembles the legacy record from them. *)
  let metric field = Obs.Metrics.counter (Printf.sprintf "cache.%s.%s" V.kind field)

  let c_mem_hits = metric "mem_hits"

  let c_disk_hits = metric "disk_hits"

  let c_misses = metric "misses"

  let c_waits = metric "waits"

  let c_errors = metric "errors"

  let c_corrupt = metric "corrupt"

  let c_evictions = metric "evictions"

  let c_bytes_read = metric "bytes_read"

  let c_bytes_written = metric "bytes_written"

  let stats () =
    let v = Obs.Metrics.Counter.value in
    {
      mem_hits = v c_mem_hits;
      disk_hits = v c_disk_hits;
      misses = v c_misses;
      waits = v c_waits;
      errors = v c_errors;
      corrupt = v c_corrupt;
      evictions = v c_evictions;
      bytes_read = v c_bytes_read;
      bytes_written = v c_bytes_written;
    }

  let clear_memory_locked () =
    (* keep Pending slots: waiters are parked on them *)
    let pending =
      Hashtbl.fold
        (fun k slot acc -> match slot with Pending -> k :: acc | Ready _ -> acc)
        table []
    in
    Hashtbl.reset table;
    List.iter (fun k -> Hashtbl.replace table k Pending) pending;
    ready_count := 0

  let clear_memory () =
    Mutex.lock lock;
    clear_memory_locked ();
    Mutex.unlock lock

  let reset () =
    Mutex.lock lock;
    clear_memory_locked ();
    Mutex.unlock lock;
    List.iter
      (fun c -> Obs.Metrics.Counter.set c 0)
      [
        c_mem_hits; c_disk_hits; c_misses; c_waits; c_errors; c_corrupt;
        c_evictions; c_bytes_read; c_bytes_written;
      ]

  let () =
    Mutex.lock registry_lock;
    registry := (V.kind, stats) :: !registry;
    resets := reset :: !resets;
    mem_clears := clear_memory :: !mem_clears;
    Mutex.unlock registry_lock

  let publish key v =
    Mutex.lock lock;
    if !ready_count >= max_ready then clear_memory_locked ();
    Hashtbl.replace table key (Ready v);
    incr ready_count;
    Condition.broadcast cond;
    Mutex.unlock lock

  let unclaim key =
    Mutex.lock lock;
    Hashtbl.remove table key;
    Condition.broadcast cond;
    Mutex.unlock lock

  let compute_and_store ?(to_disk = Fun.id) key compute =
    match compute () with
    | v ->
      Obs.Metrics.Counter.incr c_misses;
      if enabled () then begin
        (* [to_disk] slims the persisted copy only; the in-memory tier
           and the caller always see the full value *)
        let payload = Marshal.to_string (to_disk v) [] in
        match disk_store ~kind:V.kind ~version:V.version ~key payload with
        | -1 -> Obs.Metrics.Counter.incr c_errors
        | evicted ->
          Obs.Metrics.Counter.add c_evictions evicted;
          Obs.Metrics.Counter.add c_bytes_written (String.length payload)
      end;
      publish key v;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      unclaim key;
      Printexc.raise_with_backtrace e bt

  let find_or_compute ?on_disk_hit ?to_disk ~key compute =
    Obs.Trace.with_span ~name:("cache:" ^ V.kind) ~kind:Obs.Trace.Cache_lookup
      (fun sp ->
        let outcome o = Obs.Trace.add_attr sp "outcome" (Obs.Trace.Str o) in
        Mutex.lock lock;
        let waited = ref false in
        let rec claim () =
          match Hashtbl.find_opt table key with
          | Some (Ready v) ->
            Obs.Metrics.Counter.incr c_mem_hits;
            Mutex.unlock lock;
            `Done v
          | Some Pending ->
            if not !waited then begin
              waited := true;
              Obs.Metrics.Counter.incr c_waits
            end;
            Condition.wait cond lock;
            claim ()
          | None ->
            Hashtbl.replace table key Pending;
            Mutex.unlock lock;
            `Compute
        in
        match claim () with
        | `Done v ->
          outcome "mem-hit";
          v
        | `Compute ->
          (match disk_find ~kind:V.kind ~version:V.version ~key with
           | Hit payload ->
             (match (Marshal.from_string payload 0 : V.value) with
              | v ->
                Obs.Metrics.Counter.incr c_disk_hits;
                Obs.Metrics.Counter.add c_bytes_read (String.length payload);
                (match on_disk_hit with Some f -> f v | None -> ());
                publish key v;
                outcome "disk-hit";
                v
              | exception _ ->
                (* unmarshalling failure: the payload digest matched but
                   the bytes do not decode — still a corrupt entry, never
                   a hit *)
                Obs.Metrics.Counter.incr c_corrupt;
                outcome "corrupt";
                compute_and_store ?to_disk key compute)
           | Miss ->
             outcome "miss";
             compute_and_store ?to_disk key compute
           | Error_miss ->
             (* corruption-evicted mid-run: count under corrupt, not
                errors, so hit/miss accounting stays truthful *)
             Obs.Metrics.Counter.incr c_corrupt;
             outcome "corrupt";
             compute_and_store ?to_disk key compute))
end
