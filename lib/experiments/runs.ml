let collect ?(quick = false) () =
  Util.Pool.map
    (fun (app : App.t) ->
      let workload =
        if quick then app.App.app_test_overrides else app.App.app_eval_overrides
      in
      Engine.run ~workload ~mode:Pipeline.Uninformed app)
    Suite.all

let ok_reports results =
  List.filter_map
    (function
      | Ok r -> Some r
      | Error msg ->
        Printf.eprintf "warning: flow failed: %s\n%!" msg;
        None)
    results

let branch_of_target = function
  | Target.Omp _ -> "cpu"
  | Target.Gpu _ -> "gpu"
  | Target.Fpga _ -> "fpga"

let auto_selected (rep : Engine.report) =
  let branch = rep.Engine.rep_decision.Psa.dec_path in
  rep.Engine.rep_designs
  |> List.filter (fun (d : Design.t) ->
         branch_of_target d.Design.d_target = branch
         && d.Design.d_feasible && d.Design.d_speedup <> None)
  |> List.sort Design.compare_speedup
  |> function
  | [] -> None
  | d :: _ -> Some d
