let collect ?(quick = false) () =
  (* one future per benchmark: a straggler app no longer barriers the
     others, and its inner branch/DSE tasks are stolen by domains that
     finished their own app early *)
  Suite.all
  |> List.map (fun (app : App.t) ->
         Util.Pool.Fut.spawn ~label:("run " ^ app.App.app_slug) (fun () ->
             let workload =
               if quick then app.App.app_test_overrides else app.App.app_eval_overrides
             in
             Engine.run ~workload ~mode:Pipeline.Uninformed app))
  |> Util.Pool.Fut.await_all

let ok_reports results =
  List.filter_map
    (function
      | Ok r -> Some r
      | Error msg ->
        Printf.eprintf "warning: flow failed: %s\n%!" msg;
        None)
    results

let branch_of_target = function
  | Target.Omp _ -> "cpu"
  | Target.Gpu _ -> "gpu"
  | Target.Fpga _ -> "fpga"

let auto_selected (rep : Engine.report) =
  let branch = rep.Engine.rep_decision.Psa.dec_path in
  rep.Engine.rep_designs
  |> List.filter (fun (d : Design.t) ->
         branch_of_target d.Design.d_target = branch
         && d.Design.d_feasible && d.Design.d_speedup <> None)
  |> List.sort Design.compare_speedup
  |> function
  | [] -> None
  | d :: _ -> Some d
