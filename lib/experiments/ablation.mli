(** Ablation study over the optimising transforms.

    The paper's speedups come from stacked transforms (scalarisation, SP
    demotion, shared-memory tiling, pinned memory, specialised math,
    zero-copy, the DSE passes).  This harness re-runs a benchmark's branch
    with one transform disabled at a time and reports the slowdown of the
    resulting design relative to the full flow — evidence for which design
    choices matter where. *)

type row = {
  ab_variant : string;        (** "full" or "without <task>" *)
  ab_time_s : float option;   (** best design time under the variant *)
  ab_slowdown : float option; (** time / full-flow time *)
}

val gpu : ?quick:bool -> App.t -> (row list, string) result
(** GPU-branch ablations (evaluated on the RTX 2080 Ti): drop
    "Remove Array += Dependency", the SP tasks, "Introduce Shared Mem
    Buf", "Employ Specialised Math Fns", "Employ HIP Pinned Memory", and
    the blocksize DSE (fixed 256) in turn. *)

val fpga : ?quick:bool -> App.t -> (row list, string) result
(** FPGA-branch ablations (evaluated on the Stratix10): drop "Unroll Fixed
    Loops", the SP tasks, "Zero-Copy Data Transfer", and the unroll DSE
    (fixed unroll 1) in turn. *)

val render : title:string -> row list -> string
