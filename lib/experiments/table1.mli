(** Table I — "Added lines of code (LOC) for each generated design compared
    to the reference unoptimised high-level source".

    One row per benchmark: the LOC delta of each generated design and the
    total over all five designs; the final row is the column average.
    Following the paper, the unsynthesisable Rush Larsen FPGA designs are
    excluded ("n/a"). *)

type row = {
  t1_app : string;
  t1_omp : float option;
  t1_hip_1080 : float option;
  t1_hip_2080 : float option;
  t1_a10 : float option;
  t1_s10 : float option;
  t1_total : float option;   (** sum over the five designs; None if any is n/a *)
}

val paper : (string * (float option * float option * float option * float option * float option * float option)) list
(** The paper's percentages: (OMP, HIP 1080, HIP 2080, A10, S10, total). *)

val of_reports : Engine.report list -> row list

val average : row list -> row
(** Column-wise average over the defined entries. *)

val render : row list -> string
