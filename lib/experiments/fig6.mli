(** Fig. 6 — "Relative costs of FPGA vs. GPU execution for varying resource
    prices".

    For the three benchmarks with both oneAPI Stratix10 and HIP 2080 Ti
    designs (AdPredictor, Bezier, N-Body in the paper), sweeps the FPGA/GPU
    price ratio and reports the relative cost and the crossover ratio at
    which FPGA and GPU executions cost the same. *)

type series = {
  f6_app : string;
  f6_fpga_s : float;            (** Stratix10 design time *)
  f6_gpu_s : float;             (** RTX 2080 Ti design time *)
  f6_points : (float * float) list;  (** price ratio -> relative cost (FPGA/GPU) *)
  f6_crossover : float;         (** ratio where costs are equal *)
}

val price_ratios : float list
(** The figure's x axis: 1/4, 1/3, 1/2, 1, 2, 3, 4. *)

val of_reports : Engine.report list -> series list
(** Skips benchmarks lacking either design (e.g. Rush Larsen). *)

val render : series list -> string
