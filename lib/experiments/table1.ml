type row = {
  t1_app : string;
  t1_omp : float option;
  t1_hip_1080 : float option;
  t1_hip_2080 : float option;
  t1_a10 : float option;
  t1_s10 : float option;
  t1_total : float option;
}

let paper =
  [
    ("rush_larsen", (Some 0.4, Some 6., Some 6., None, None, None));
    ("nbody", (Some 2., Some 37., Some 37., Some 52., Some 69., Some 197.));
    ("bezier", (Some 2., Some 26., Some 26., Some 34., Some 42., Some 130.));
    ("adpredictor", (Some 2., Some 31., Some 31., Some 42., Some 63., Some 169.));
    ("kmeans", (Some 4., Some 81., Some 81., Some 101., Some 147., Some 414.));
  ]

let loc_of rep short =
  match Engine.design_for rep ~short with
  | Some (d : Design.t) when d.Design.d_feasible -> Some d.Design.d_loc_added_pct
  | Some _ | None -> None

let of_reports reports =
  List.map
    (fun (rep : Engine.report) ->
      let omp = loc_of rep "OMP" in
      let h1 = loc_of rep "HIP 1080Ti" in
      let h2 = loc_of rep "HIP 2080Ti" in
      let a10 = loc_of rep "oneAPI A10" in
      let s10 = loc_of rep "oneAPI S10" in
      let total =
        match omp, h1, h2, a10, s10 with
        | Some a, Some b, Some c, Some d, Some e -> Some (a +. b +. c +. d +. e)
        | _, _, _, _, _ -> None
      in
      {
        t1_app = rep.Engine.rep_app.App.app_slug;
        t1_omp = omp;
        t1_hip_1080 = h1;
        t1_hip_2080 = h2;
        t1_a10 = a10;
        t1_s10 = s10;
        t1_total = total;
      })
    reports

let avg_opt values =
  let defined = List.filter_map Fun.id values in
  if defined = [] then None
  else Some (List.fold_left ( +. ) 0.0 defined /. float_of_int (List.length defined))

let average rows =
  {
    t1_app = "Average";
    t1_omp = avg_opt (List.map (fun r -> r.t1_omp) rows);
    t1_hip_1080 = avg_opt (List.map (fun r -> r.t1_hip_1080) rows);
    t1_hip_2080 = avg_opt (List.map (fun r -> r.t1_hip_2080) rows);
    t1_a10 = avg_opt (List.map (fun r -> r.t1_a10) rows);
    t1_s10 = avg_opt (List.map (fun r -> r.t1_s10) rows);
    t1_total = avg_opt (List.map (fun r -> r.t1_total) rows);
  }

let fmt v paper =
  Printf.sprintf "%s (%s)"
    (match v with Some x -> Printf.sprintf "%+.0f%%" x | None -> "n/a")
    (match paper with Some p -> Printf.sprintf "%+.0f%%" p | None -> "n/a")

let render rows =
  let table =
    Util.Table.create
      ~headers:
        [ "application"; "OMP"; "HIP 1080"; "HIP 2080"; "oneAPI A10"; "oneAPI S10";
          "total (5 designs)" ]
  in
  Util.Table.set_aligns table
    [ Util.Table.Left; Util.Table.Right; Util.Table.Right; Util.Table.Right;
      Util.Table.Right; Util.Table.Right; Util.Table.Right ];
  let all = rows @ [ average rows ] in
  List.iter
    (fun r ->
      let pomp, p1, p2, pa, ps, pt =
        match List.assoc_opt r.t1_app paper with
        | Some p -> p
        | None ->
          if r.t1_app = "Average" then
            (Some 2., Some 36., Some 36., Some 57., Some 81., Some 212.)
          else (None, None, None, None, None, None)
      in
      Util.Table.add_row table
        [
          r.t1_app;
          fmt r.t1_omp pomp;
          fmt r.t1_hip_1080 p1;
          fmt r.t1_hip_2080 p2;
          fmt r.t1_a10 pa;
          fmt r.t1_s10 ps;
          fmt r.t1_total pt;
        ])
    all;
  "Table I - added LOC per generated design vs reference; measured (paper)\n"
  ^ Util.Table.render table
