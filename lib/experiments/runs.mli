(** Shared evaluation runs.

    Every experiment (Fig. 5, Table I, Fig. 6) derives from the same five
    uninformed flow executions — one per benchmark — which generate all
    designs and record the informed decision alongside. *)

val collect : ?quick:bool -> unit -> (Engine.report, string) result list
(** Run the uninformed PSA-flow on every benchmark.  [quick] uses the test
    workloads (for smoke tests); the default uses the evaluation
    workloads. *)

val ok_reports : (Engine.report, string) result list -> Engine.report list
(** Drop failures (printing a warning for each). *)

val auto_selected : Engine.report -> Design.t option
(** The design the *informed* strategy would have produced: the fastest
    feasible design on the branch the recorded decision names (the paper's
    "Auto-Selected" bar). *)
