type row = {
  f5_app : string;
  f5_auto : (string * float) option;
  f5_omp : float option;
  f5_hip_1080 : float option;
  f5_hip_2080 : float option;
  f5_a10 : float option;
  f5_s10 : float option;
  f5_informed_is_best : bool;
}

let paper =
  [
    ("nbody", (Some 29., Some 337., Some 751., Some 1.1, Some 1.4));
    ("kmeans", (Some 29., Some 19., Some 24., Some 7., Some 13.));
    ("adpredictor", (Some 28., Some 10., Some 14., Some 10., Some 32.));
    ("rush_larsen", (Some 28., Some 63., Some 98., None, None));
    ("bezier", (Some 30., Some 63., Some 67., Some 23., Some 27.));
  ]

let speedup_of rep short =
  match Engine.design_for rep ~short with
  | Some d -> d.Design.d_speedup
  | None -> None

let of_reports reports =
  List.map
    (fun (rep : Engine.report) ->
      let auto =
        match Runs.auto_selected rep with
        | Some d ->
          (match d.Design.d_speedup with
           | Some s -> Some (Target.short d.Design.d_target, s)
           | None -> None)
        | None -> None
      in
      let best = Engine.best_design rep in
      let informed_is_best =
        match auto, best with
        | Some (_, sa), Some b ->
          (match b.Design.d_speedup with
           | Some sb -> sa >= 0.999 *. sb
           | None -> true)
        | _, _ -> false
      in
      {
        f5_app = rep.Engine.rep_app.App.app_slug;
        f5_auto = auto;
        f5_omp = speedup_of rep "OMP";
        f5_hip_1080 = speedup_of rep "HIP 1080Ti";
        f5_hip_2080 = speedup_of rep "HIP 2080Ti";
        f5_a10 = speedup_of rep "oneAPI A10";
        f5_s10 = speedup_of rep "oneAPI S10";
        f5_informed_is_best = informed_is_best;
      })
    reports

let fmt_speedup = function
  | Some s when Float.is_finite s -> Printf.sprintf "%.1fx" s
  | Some _ | None -> "n/a"

let fmt_pair measured paper =
  Printf.sprintf "%s (%s)" (fmt_speedup measured)
    (match paper with Some p -> Printf.sprintf "%.0fx" p | None -> "n/a")

let render rows =
  let table =
    Util.Table.create
      ~headers:
        [ "benchmark"; "auto-selected"; "OMP"; "HIP 1080Ti"; "HIP 2080Ti";
          "oneAPI A10"; "oneAPI S10"; "informed=best" ]
  in
  Util.Table.set_aligns table
    [ Util.Table.Left; Util.Table.Right; Util.Table.Right; Util.Table.Right;
      Util.Table.Right; Util.Table.Right; Util.Table.Right; Util.Table.Center ];
  List.iter
    (fun r ->
      let p =
        match List.assoc_opt r.f5_app paper with
        | Some p -> p
        | None -> (None, None, None, None, None)
      in
      let pomp, p1080, p2080, pa10, ps10 = p in
      Util.Table.add_row table
        [
          r.f5_app;
          (match r.f5_auto with
           | Some (t, s) -> Printf.sprintf "%.1fx [%s]" s t
           | None -> "n/a");
          fmt_pair r.f5_omp pomp;
          fmt_pair r.f5_hip_1080 p1080;
          fmt_pair r.f5_hip_2080 p2080;
          fmt_pair r.f5_a10 pa10;
          fmt_pair r.f5_s10 ps10;
          (if r.f5_informed_is_best then "yes" else "NO");
        ])
    rows;
  "Fig. 5 - hotspot speedups vs single-thread CPU; measured (paper)\n"
  ^ Util.Table.render table
