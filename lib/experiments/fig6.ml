type series = {
  f6_app : string;
  f6_fpga_s : float;
  f6_gpu_s : float;
  f6_points : (float * float) list;
  f6_crossover : float;
}

let price_ratios = [ 0.25; 1. /. 3.; 0.5; 1.; 2.; 3.; 4. ]

let of_reports reports =
  List.filter_map
    (fun (rep : Engine.report) ->
      let time short =
        match Engine.design_for rep ~short with
        | Some (d : Design.t) -> d.Design.d_time_s
        | None -> None
      in
      match time "oneAPI S10", time "HIP 2080Ti" with
      | Some fpga_s, Some gpu_s ->
        Some
          {
            f6_app = rep.Engine.rep_app.App.app_slug;
            f6_fpga_s = fpga_s;
            f6_gpu_s = gpu_s;
            f6_points =
              List.map
                (fun r -> (r, Cost.relative_cost ~fpga_s ~gpu_s ~price_ratio:r))
                price_ratios;
            f6_crossover = Cost.crossover_ratio ~fpga_s ~gpu_s;
          }
      | _, _ -> None)
    reports

let render series =
  let headers =
    "benchmark"
    :: List.map (fun r -> Printf.sprintf "r=%.2g" r) price_ratios
    @ [ "crossover" ]
  in
  let table = Util.Table.create ~headers in
  Util.Table.set_aligns table
    (Util.Table.Left :: List.map (fun _ -> Util.Table.Right) (List.tl headers));
  List.iter
    (fun s ->
      Util.Table.add_row table
        (s.f6_app
         :: List.map (fun (_, c) -> Printf.sprintf "%.2f" c) s.f6_points
         @ [ Printf.sprintf "%.2f" s.f6_crossover ]))
    series;
  "Fig. 6 - cost of Stratix10 execution relative to RTX 2080 Ti execution\n"
  ^ "(price ratio r = FPGA price / GPU price; values < 1 mean the FPGA is cheaper;\n"
  ^ " crossover = ratio at which both cost the same; paper: AdPredictor ~3.2, Bezier ~0.4)\n"
  ^ Util.Table.render table
