type row = {
  ab_variant : string;
  ab_time_s : float option;
  ab_slowdown : float option;
}

let ( let* ) = Result.bind

(* run the target-independent stage, optionally dropping one task *)
let analyse ?(drop = "") ~quick (app : App.t) =
  let tasks =
    List.filter (fun (t : Task.t) -> t.Task.name <> drop) Tasks.target_independent
  in
  let workload =
    if quick then app.App.app_test_overrides else app.App.app_eval_overrides
  in
  let art = Artifact.create app ~workload in
  match Graph.run (Graph.Seq (List.map (fun t -> Graph.Task t) tasks)) art with
  | Ok [ oc ] -> Ok oc.Graph.oc_artifact
  | Ok _ -> Error "unexpected fan-out"
  | Error e -> Error e

let best_time_of_branch art node =
  let* outcomes = Graph.run node art in
  let times =
    List.filter_map
      (fun (oc : Graph.outcome) ->
        match oc.Graph.oc_artifact.Artifact.art_design with
        | Some ds when ds.Artifact.ds_feasible -> ds.Artifact.ds_estimate_s
        | Some _ | None -> None)
      outcomes
  in
  match List.sort compare times with
  | [] -> Ok None
  | t :: _ -> Ok (Some t)

let seq tasks = Graph.Seq (List.map (fun t -> Graph.Task t) tasks)

let gpu_branch ?(drop = "") ?(fixed_blocksize = false) () =
  let stages =
    [
      Tasks.generate_hip_design;
      Tasks.gpu_sp_math_fns;
      Tasks.gpu_sp_numeric_literals;
      Tasks.introduce_shared_mem_buf;
      Tasks.employ_specialised_math_fns;
      Tasks.employ_hip_pinned_memory;
      Tasks.profile_gpu_design;
    ]
  in
  let dropped =
    List.filter
      (fun (t : Task.t) ->
        t.Task.name <> drop
        && not (drop = "Employ SP" && String.length t.Task.name >= 9
                && String.sub t.Task.name 0 9 = "Employ SP"))
      stages
  in
  let final =
    if fixed_blocksize then
      (* keep the generated default (256): evaluate the model at it *)
      Task.make ~name:"Fixed Blocksize 256" ~kind:Task.Optimisation
        ~scope:(Task.Gpu_device "2080") (fun art ->
          let ds = Artifact.design_exn art in
          match ds.Artifact.ds_kprofile, ds.Artifact.ds_kstatic, ds.Artifact.ds_body_fn with
          | Some kp, Some ks, Some body ->
            let params =
              {
                Gpu_model.blocksize = 256;
                pinned = Hip.is_pinned art.Artifact.art_program ~manage_fn:ds.Artifact.ds_manage_fn;
                shared_tiling =
                  (match Ast.find_func art.Artifact.art_program body with
                   | Some fn ->
                     List.exists
                       (fun (lm : Query.loop_match) ->
                         List.exists
                           (fun (pr : Ast.pragma) -> List.mem "shared_tiling" pr.Ast.pargs)
                           lm.lm_stmt.Ast.pragmas)
                       (Query.loops_in_func fn)
                   | None -> false);
              }
            in
            let e = Gpu_model.estimate Device.rtx_2080_ti ks kp params in
            let ds =
              {
                ds with
                Artifact.ds_target = Target.Gpu { spec = Device.rtx_2080_ti; params };
                ds_estimate_s = Some e.Gpu_model.ge_time_s;
                ds_feasible = e.Gpu_model.ge_launchable;
              }
            in
            Ok { art with Artifact.art_design = Some ds }
          | _, _, _ -> Error "profile missing")
    else Tasks.gpu_blocksize_dse Device.rtx_2080_ti
  in
  seq (dropped @ [ final ])

let fpga_branch ?(drop = "") ?(fixed_unroll = false) () =
  let stages =
    [
      Tasks.generate_oneapi_design;
      Tasks.unroll_fixed_loops;
      Tasks.fpga_sp_math_fns;
      Tasks.fpga_sp_numeric_literals;
      Tasks.zero_copy_data_transfer;
      Tasks.profile_fpga_design;
    ]
  in
  let dropped =
    List.filter
      (fun (t : Task.t) ->
        t.Task.name <> drop
        && not (drop = "Employ SP" && String.length t.Task.name >= 9
                && String.sub t.Task.name 0 9 = "Employ SP"))
      stages
  in
  let final =
    if fixed_unroll then
      Task.make ~name:"Fixed Unroll 1" ~kind:Task.Optimisation
        ~scope:(Task.Fpga_device "S10") (fun art ->
          let ds = Artifact.design_exn art in
          match ds.Artifact.ds_kprofile, ds.Artifact.ds_kstatic with
          | Some kp, Some ks ->
            let zero_copy =
              Oneapi.is_zero_copy art.Artifact.art_program
                ~kernel_fn:ds.Artifact.ds_compute_fn
            in
            let params = { Fpga_model.unroll = 1; zero_copy } in
            let e = Fpga_model.estimate Device.pac_stratix10 ks kp params in
            let ds =
              {
                ds with
                Artifact.ds_target = Target.Fpga { spec = Device.pac_stratix10; params };
                ds_estimate_s =
                  (if e.Fpga_model.fe_overmapped then None else Some e.Fpga_model.fe_time_s);
                ds_feasible = not e.Fpga_model.fe_overmapped;
              }
            in
            Ok { art with Artifact.art_design = Some ds }
          | _, _ -> Error "profile missing")
    else Tasks.fpga_unroll_until_overmap_dse Device.pac_stratix10
  in
  seq (dropped @ [ final ])

let study ~quick variants (app : App.t) =
  let* base_art = analyse ~quick app in
  let* rows =
    List.fold_left
      (fun acc (name, art, node) ->
        let* acc = acc in
        let* art = art in
        let* time = best_time_of_branch art node in
        Ok ((name, time) :: acc))
      (Ok [])
      (variants base_art)
  in
  let rows = List.rev rows in
  let full = List.assoc_opt "full" rows |> Option.join in
  Ok
    (List.map
       (fun (name, time) ->
         {
           ab_variant = name;
           ab_time_s = time;
           ab_slowdown =
             (match time, full with
              | Some t, Some f when f > 0.0 -> Some (t /. f)
              | _, _ -> None);
         })
       rows)

let gpu ?(quick = false) app =
  study ~quick
    (fun base ->
      [
        ("full", Ok base, gpu_branch ());
        ( "without Remove Array += Dependency",
          analyse ~quick ~drop:"Remove Array += Dependency" app,
          gpu_branch () );
        ("without SP transforms", Ok base, gpu_branch ~drop:"Employ SP" ());
        ("without Introduce Shared Mem Buf", Ok base, gpu_branch ~drop:"Introduce Shared Mem Buf" ());
        ("without Employ Specialised Math Fns", Ok base, gpu_branch ~drop:"Employ Specialised Math Fns" ());
        ("without Employ HIP Pinned Memory", Ok base, gpu_branch ~drop:"Employ HIP Pinned Memory" ());
        ("without Blocksize DSE (fixed 256)", Ok base, gpu_branch ~fixed_blocksize:true ());
      ])
    app

let fpga ?(quick = false) app =
  study ~quick
    (fun base ->
      [
        ("full", Ok base, fpga_branch ());
        ("without Unroll Fixed Loops", Ok base, fpga_branch ~drop:"Unroll Fixed Loops" ());
        ("without SP transforms", Ok base, fpga_branch ~drop:"Employ SP" ());
        ("without Zero-Copy Data Transfer", Ok base, fpga_branch ~drop:"Zero-Copy Data Transfer" ());
        ("without Unroll DSE (fixed 1)", Ok base, fpga_branch ~fixed_unroll:true ());
      ])
    app

let render ~title rows =
  let table = Util.Table.create ~headers:[ "variant"; "design time (s)"; "slowdown" ] in
  Util.Table.set_aligns table [ Util.Table.Left; Util.Table.Right; Util.Table.Right ];
  List.iter
    (fun r ->
      Util.Table.add_row table
        [
          r.ab_variant;
          (match r.ab_time_s with Some t -> Printf.sprintf "%.3g" t | None -> "n/a");
          (match r.ab_slowdown with
           | Some s -> Printf.sprintf "%.2fx" s
           | None -> "-");
        ])
    rows;
  title ^ "\n" ^ Util.Table.render table
