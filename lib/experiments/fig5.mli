(** Fig. 5 — "Accelerated hotspot region speedups of the automatically
    generated designs compared to the input, unoptimised reference executed
    on a single CPU thread".

    One row per benchmark with the Auto-Selected design (informed PSA at
    branch point A) and the five uninformed designs.  The paper's reported
    speedups are attached for shape comparison; overmapped FPGA designs
    print "n/a" exactly as the missing Rush Larsen bars. *)

type row = {
  f5_app : string;
  f5_auto : (string * float) option;   (** short target label, speedup *)
  f5_omp : float option;
  f5_hip_1080 : float option;
  f5_hip_2080 : float option;
  f5_a10 : float option;
  f5_s10 : float option;
  f5_informed_is_best : bool;          (** the headline claim, per app *)
}

val paper : (string * (float option * float option * float option * float option * float option)) list
(** Paper speedups per app slug: (OMP, 1080, 2080, A10, S10); [None] for
    the unsynthesisable Rush Larsen FPGA designs.  AdPredictor GPU/A10
    bars are approximate (read off the figure). *)

val of_reports : Engine.report list -> row list

val render : row list -> string
(** Table of measured values with the paper's numbers alongside. *)
