open Ast

let ilit n = mk_expr (Int_lit n)
let flit f = mk_expr (Float_lit (f, false))
let flit32 f = mk_expr (Float_lit (f, true))
let blit b = mk_expr (Bool_lit b)
let var v = mk_expr (Var v)
let neg e = mk_expr (Unary (Neg, e))
let bin op a b = mk_expr (Binary (op, a, b))
let ( +: ) a b = bin Add a b
let ( -: ) a b = bin Sub a b
let ( *: ) a b = bin Mul a b
let ( /: ) a b = bin Div a b
let ( %: ) a b = bin Mod a b
let ( <: ) a b = bin Lt a b
let ( <=: ) a b = bin Le a b
let ( >=: ) a b = bin Ge a b
let ( ==: ) a b = bin Eq a b
let and_ a b = bin And a b
let or_ a b = bin Or a b
let call name args = mk_expr (Call (name, args))
let idx a i = mk_expr (Index (a, i))
let idx2 name i = idx (var name) i
let cast t e = mk_expr (Cast (t, e))
let cond c a b = mk_expr (Cond (c, a, b))

let decl ?(const = false) ty name init =
  mk_stmt (Decl { dty = ty; dname = name; dinit = Some init; darray = None; dconst = const })

let decl_array ty name size =
  mk_stmt (Decl { dty = ty; dname = name; dinit = None; darray = Some size; dconst = false })

let decl_uninit ty name =
  mk_stmt (Decl { dty = ty; dname = name; dinit = None; darray = None; dconst = false })

let assign lhs rhs = mk_stmt (Assign (lhs, Set, rhs))
let add_assign lhs rhs = mk_stmt (Assign (lhs, AddEq, rhs))
let expr_stmt e = mk_stmt (Expr_stmt e)
let if_ c b1 b2 = mk_stmt (If (c, b1, b2))

let for_ ?(pragmas = []) index ~lo ~hi ?(step = ilit 1) body =
  mk_stmt ~pragmas (For ({ index; lo; cmp = CLt; hi; step }, body))

let while_ c body = mk_stmt (While (c, body))
let return_ e = mk_stmt (Return e)
let scope b = mk_stmt (Scope b)

let func ?(ret = Tvoid) name params body =
  { fname = name; fret = ret; fparams = params; fbody = body; floc = Loc.dummy }

let param ?(restrict_ = false) ?(const = false) ty name =
  { prm_name = name; prm_ty = ty; prm_restrict = restrict_; prm_const = const }

let pragma name args = { pname = name; pargs = args }
