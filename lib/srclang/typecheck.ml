open Ast

type error = { loc : Loc.t; msg : string }

exception Type_error of error

type fsig = { sig_ret : ty; sig_args : ty list }

let d = Tdouble
and f32 = Tfloat
and i = Tint

let intrinsics =
  let m1 name = (name, { sig_ret = d; sig_args = [ d ] }) in
  let m1f name = (name, { sig_ret = f32; sig_args = [ f32 ] }) in
  let m2 name = (name, { sig_ret = d; sig_args = [ d; d ] }) in
  let m2f name = (name, { sig_ret = f32; sig_args = [ f32; f32 ] }) in
  [
    m1 "sqrt"; m1f "sqrtf";
    m1 "sin"; m1f "sinf";
    m1 "cos"; m1f "cosf";
    m1 "tan"; m1f "tanf";
    m1 "exp"; m1f "expf";
    m1 "log"; m1f "logf";
    m1 "fabs"; m1f "fabsf";
    m1 "floor"; m1f "floorf";
    m1 "ceil"; m1f "ceilf";
    m1 "tanh"; m1f "tanhf";
    m1 "erf"; m1f "erff";
    m1 "rsqrt"; m1f "rsqrtf";
    m2 "pow"; m2f "powf";
    m2 "fmin"; m2f "fminf";
    m2 "fmax"; m2f "fmaxf";
    ("abs", { sig_ret = i; sig_args = [ i ] });
    ("imin", { sig_ret = i; sig_args = [ i; i ] });
    ("imax", { sig_ret = i; sig_args = [ i; i ] });
    ("rand01", { sig_ret = d; sig_args = [] });
    ("print_int", { sig_ret = Tvoid; sig_args = [ i ] });
    ("print_float", { sig_ret = Tvoid; sig_args = [ d ] });
  ]

let intrinsic_sig name = List.assoc_opt name intrinsics

let is_intrinsic name = intrinsic_sig name <> None

module Smap = Map.Make (String)

type env = { vars : ty Smap.t; fsigs : fsig Smap.t }

let err loc fmt = Printf.ksprintf (fun msg -> raise (Type_error { loc; msg })) fmt

let decl_ty (dd : decl) = match dd.darray with Some _ -> Tptr dd.dty | None -> dd.dty

let env_of_program p =
  let vars =
    List.fold_left
      (fun acc g ->
        match g with
        | Gdecl dd -> Smap.add dd.dname (decl_ty dd) acc
        | Gfunc _ -> acc)
      Smap.empty p.pglobals
  in
  let fsigs =
    List.fold_left
      (fun acc g ->
        match g with
        | Gfunc fn ->
          Smap.add fn.fname
            { sig_ret = fn.fret; sig_args = List.map (fun p -> p.prm_ty) fn.fparams }
            acc
        | Gdecl _ -> acc)
      Smap.empty p.pglobals
  in
  { vars; fsigs }

let bind env name ty = { env with vars = Smap.add name ty env.vars }

let env_for_func p fn =
  List.fold_left (fun env prm -> bind env prm.prm_name prm.prm_ty)
    (env_of_program p) fn.fparams

let lookup_var env name = Smap.find_opt name env.vars

let lookup_func env name =
  match Smap.find_opt name env.fsigs with
  | Some s -> Some s
  | None -> intrinsic_sig name

let is_numeric = function
  | Tint | Tfloat | Tdouble -> true
  | Tvoid | Tbool | Tptr _ -> false

let numeric_join a b =
  match a, b with
  | Tdouble, (Tint | Tfloat | Tdouble) | (Tint | Tfloat), Tdouble -> Some Tdouble
  | Tfloat, (Tint | Tfloat) | Tint, Tfloat -> Some Tfloat
  | Tint, Tint -> Some Tint
  | (Tvoid | Tbool | Tptr _ | Tint | Tfloat | Tdouble), _ -> None

(* Implicit conversion allowed from [src] to [dst]? *)
let converts ~src ~dst =
  equal_ty src dst
  || (is_numeric src && is_numeric dst)
  || (match src, dst with Tbool, Tint -> true | Tint, Tbool -> true | _, _ -> false)

let rec expr_ty env e =
  match e.edesc with
  | Int_lit _ -> Tint
  | Float_lit (_, single) -> if single then Tfloat else Tdouble
  | Bool_lit _ -> Tbool
  | Var v ->
    (match lookup_var env v with
     | Some t -> t
     | None -> err e.eloc "unbound variable %s" v)
  | Unary (Neg, a) ->
    let t = expr_ty env a in
    if is_numeric t then t else err e.eloc "negation of non-numeric type %s" (ty_to_string t)
  | Unary (Not, a) ->
    let t = expr_ty env a in
    (match t with
     | Tbool | Tint -> Tbool
     | _ -> err e.eloc "logical not on %s" (ty_to_string t))
  | Binary (op, a, b) ->
    let ta = expr_ty env a and tb = expr_ty env b in
    (match op with
     | Add | Sub | Mul | Div ->
       (match numeric_join ta tb with
        | Some t -> t
        | None ->
          err e.eloc "arithmetic on %s and %s" (ty_to_string ta) (ty_to_string tb))
     | Mod ->
       if equal_ty ta Tint && equal_ty tb Tint then Tint
       else err e.eloc "%% requires int operands"
     | Lt | Le | Gt | Ge ->
       if numeric_join ta tb <> None then Tbool
       else err e.eloc "comparison of %s and %s" (ty_to_string ta) (ty_to_string tb)
     | Eq | Ne ->
       if numeric_join ta tb <> None || (equal_ty ta Tbool && equal_ty tb Tbool) then
         Tbool
       else err e.eloc "equality on %s and %s" (ty_to_string ta) (ty_to_string tb)
     | And | Or ->
       let ok t = match t with Tbool | Tint -> true | _ -> false in
       if ok ta && ok tb then Tbool
       else err e.eloc "logical op on %s and %s" (ty_to_string ta) (ty_to_string tb))
  | Call (name, args) ->
    (match lookup_func env name with
     | None -> err e.eloc "call to unknown function %s" name
     | Some s ->
       if List.length s.sig_args <> List.length args then
         err e.eloc "function %s expects %d arguments, got %d" name
           (List.length s.sig_args) (List.length args);
       List.iter2
         (fun expected arg ->
           let actual = expr_ty env arg in
           if not (converts ~src:actual ~dst:expected) then
             err arg.eloc "argument of type %s where %s expected" (ty_to_string actual)
               (ty_to_string expected))
         s.sig_args args;
       s.sig_ret)
  | Index (base, idx) ->
    let tb = expr_ty env base and ti = expr_ty env idx in
    if not (equal_ty ti Tint) then err idx.eloc "array index must be int";
    (match tb with
     | Tptr t -> t
     | _ -> err base.eloc "indexing non-pointer type %s" (ty_to_string tb))
  | Cast (ty, a) ->
    let ta = expr_ty env a in
    if is_numeric ty && is_numeric ta then ty
    else if equal_ty ty ta then ty
    else err e.eloc "invalid cast from %s to %s" (ty_to_string ta) (ty_to_string ty)
  | Cond (c, a, b) ->
    let tc = expr_ty env c in
    (match tc with
     | Tbool | Tint -> ()
     | _ -> err c.eloc "condition must be bool, found %s" (ty_to_string tc));
    let ta = expr_ty env a and tb = expr_ty env b in
    (match numeric_join ta tb with
     | Some t -> t
     | None ->
       if equal_ty ta tb then ta
       else err e.eloc "branches of ?: have types %s and %s" (ty_to_string ta)
         (ty_to_string tb))

let is_lvalue e = match e.edesc with Var _ | Index _ -> true | _ -> false

let rec check_block env ~ret blk =
  ignore (List.fold_left (fun env s -> check_stmt env ~ret s) env blk)

and check_stmt env ~ret s =
  match s.sdesc with
  | Decl dd ->
    (match dd.darray with
     | Some n -> if not (equal_ty (expr_ty env n) Tint) then err n.eloc "array size must be int"
     | None -> ());
    (match dd.dinit with
     | Some e0 ->
       let t = expr_ty env e0 in
       let target = decl_ty dd in
       if not (converts ~src:t ~dst:target) then
         err e0.eloc "initialising %s with %s" (ty_to_string target) (ty_to_string t)
     | None -> ());
    bind env dd.dname (decl_ty dd)
  | Assign (lhs, op, rhs) ->
    if not (is_lvalue lhs) then err lhs.eloc "left side of assignment is not an lvalue";
    let tl = expr_ty env lhs and tr = expr_ty env rhs in
    (match op with
     | Set ->
       if not (converts ~src:tr ~dst:tl) then
         err rhs.eloc "assigning %s to %s" (ty_to_string tr) (ty_to_string tl)
     | AddEq | SubEq | MulEq | DivEq ->
       if not (is_numeric tl && is_numeric tr) then
         err rhs.eloc "compound assignment on %s and %s" (ty_to_string tl)
           (ty_to_string tr));
    env
  | Expr_stmt e ->
    ignore (expr_ty env e);
    env
  | If (c, b1, b2) ->
    check_cond env c;
    check_block env ~ret b1;
    check_block env ~ret b2;
    env
  | For (h, body) ->
    let env_body = bind env h.index Tint in
    if not (equal_ty (expr_ty env h.lo) Tint) then err h.lo.eloc "loop bound must be int";
    if not (equal_ty (expr_ty env_body h.hi) Tint) then err h.hi.eloc "loop bound must be int";
    if not (equal_ty (expr_ty env_body h.step) Tint) then err h.step.eloc "loop step must be int";
    check_block env_body ~ret body;
    env
  | While (c, body) ->
    check_cond env c;
    check_block env ~ret body;
    env
  | Return None ->
    if not (equal_ty ret Tvoid) then err s.sloc "missing return value";
    env
  | Return (Some e) ->
    let t = expr_ty env e in
    if not (converts ~src:t ~dst:ret) then
      err e.eloc "returning %s from function returning %s" (ty_to_string t)
        (ty_to_string ret);
    env
  | Break | Continue -> env
  | Scope body ->
    check_block env ~ret body;
    env

and check_cond env c =
  match expr_ty env c with
  | Tbool | Tint -> ()
  | t -> err c.eloc "condition must be bool, found %s" (ty_to_string t)

let check_func penv fn =
  let env =
    List.fold_left (fun env prm -> bind env prm.prm_name prm.prm_ty) penv fn.fparams
  in
  check_block env ~ret:fn.fret fn.fbody

let check_program p =
  let penv = env_of_program p in
  let errors = ref [] in
  List.iter
    (fun g ->
      match g with
      | Gfunc fn -> (try check_func penv fn with Type_error e -> errors := e :: !errors)
      | Gdecl dd -> (
        try
          match dd.dinit with
          | Some e0 ->
            let t = expr_ty penv e0 in
            if not (converts ~src:t ~dst:(decl_ty dd)) then
              err e0.eloc "initialising %s with %s"
                (ty_to_string (decl_ty dd))
                (ty_to_string t)
          | None -> ()
        with Type_error e -> errors := e :: !errors))
    p.pglobals;
  match List.rev !errors with [] -> Ok () | es -> Error es

let check_exn p =
  match check_program p with
  | Ok () -> ()
  | Error (e :: _) -> raise (Type_error e)
  | Error [] -> ()

(* ---- free variables ---- *)

module Sset = Set.Make (String)

let rec fv_expr bound acc e =
  match e.edesc with
  | Var v -> if Sset.mem v bound || List.mem v acc then acc else v :: acc
  | Int_lit _ | Float_lit _ | Bool_lit _ -> acc
  | _ -> List.fold_left (fv_expr bound) acc (expr_children e)

let rec fv_stmt bound acc s =
  match s.sdesc with
  | Decl dd ->
    let acc = List.fold_left (fv_expr bound) acc (stmt_exprs s) in
    (Sset.add dd.dname bound, acc)
  | For (h, body) ->
    let acc = fv_expr bound acc h.lo in
    let bound_body = Sset.add h.index bound in
    let acc = fv_expr bound_body acc h.hi in
    let acc = fv_expr bound_body acc h.step in
    let _, acc = fv_block bound_body acc body in
    (bound, acc)
  | If (_, b1, b2) ->
    let acc = List.fold_left (fv_expr bound) acc (stmt_exprs s) in
    let _, acc = fv_block bound acc b1 in
    let _, acc = fv_block bound acc b2 in
    (bound, acc)
  | While (_, body) | Scope body ->
    let acc = List.fold_left (fv_expr bound) acc (stmt_exprs s) in
    let _, acc = fv_block bound acc body in
    (bound, acc)
  | Assign _ | Expr_stmt _ | Return _ | Break | Continue ->
    (bound, List.fold_left (fv_expr bound) acc (stmt_exprs s))

and fv_block bound acc blk =
  List.fold_left (fun (bound, acc) s -> fv_stmt bound acc s) (bound, acc) blk

let free_vars_block blk =
  let _, acc = fv_block Sset.empty [] blk in
  List.rev acc

let free_vars_stmt s = free_vars_block [ s ]

(* ---- scope at a statement ---- *)

exception Found of (string * ty) list

let scope_at p fn sid =
  let penv = env_of_program p in
  let initial =
    List.fold_left (fun acc prm -> (prm.prm_name, prm.prm_ty) :: acc)
      (Smap.bindings penv.vars) fn.fparams
  in
  let rec walk scope blk =
    List.fold_left
      (fun scope s ->
        if s.sid = sid then raise (Found (List.rev scope));
        match s.sdesc with
        | Decl dd -> (dd.dname, decl_ty dd) :: scope
        | For (h, body) ->
          ignore (walk ((h.index, Tint) :: scope) body);
          scope
        | If (_, b1, b2) ->
          ignore (walk scope b1);
          ignore (walk scope b2);
          scope
        | While (_, body) | Scope body ->
          ignore (walk scope body);
          scope
        | Assign _ | Expr_stmt _ | Return _ | Break | Continue -> scope)
      scope blk
  in
  try
    ignore (walk initial fn.fbody);
    raise Not_found
  with Found scope -> scope
