(** Source locations for the mini-C++ frontend. *)

type t = { file : string; line : int; col : int }

val dummy : t
(** Location used for synthesised nodes. *)

val make : file:string -> line:int -> col:int -> t

val to_string : t -> string
(** ["file:line:col"]. *)

val pp : Format.formatter -> t -> unit
