(** Source emission for the mini-C++ AST.

    The printer produces human-readable C++-like text — the paper stresses
    that "Artisan ASTs closely mirror the source-code as written without
    lowering, [so] output implementations are human-readable and can be
    further hand-tuned".  Pragmas print on their own line before the
    statement they annotate.  Emitted text re-parses to an equivalent AST
    (see the round-trip property tests). *)

val expr_to_string : Ast.expr -> string

val stmt_to_string : ?indent:int -> Ast.stmt -> string

val block_to_string : ?indent:int -> Ast.block -> string

val func_to_string : Ast.func -> string

val program_to_string : Ast.program -> string

val pragma_to_string : Ast.pragma -> string
(** Full line including [#pragma]. *)
