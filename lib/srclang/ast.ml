type ty =
  | Tvoid
  | Tbool
  | Tint
  | Tfloat
  | Tdouble
  | Tptr of ty

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type assign_op = Set | AddEq | SubEq | MulEq | DivEq

type expr = { eid : int; eloc : Loc.t; edesc : expr_desc }

and expr_desc =
  | Int_lit of int
  | Float_lit of float * bool
  | Bool_lit of bool
  | Var of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list
  | Index of expr * expr
  | Cast of ty * expr
  | Cond of expr * expr * expr

type pragma = { pname : string; pargs : string list }

type for_header = {
  index : string;
  lo : expr;
  cmp : cmp_op;
  hi : expr;
  step : expr;
}

and cmp_op = CLt | CLe

type stmt = { sid : int; sloc : Loc.t; pragmas : pragma list; sdesc : stmt_desc }

and stmt_desc =
  | Decl of decl
  | Assign of expr * assign_op * expr
  | Expr_stmt of expr
  | If of expr * block * block
  | For of for_header * block
  | While of expr * block
  | Return of expr option
  | Break
  | Continue
  | Scope of block

and decl = {
  dty : ty;
  dname : string;
  dinit : expr option;
  darray : expr option;
  dconst : bool;
}

and block = stmt list

type param = { prm_name : string; prm_ty : ty; prm_restrict : bool; prm_const : bool }

type func = {
  fname : string;
  fret : ty;
  fparams : param list;
  fbody : block;
  floc : Loc.t;
}

type global =
  | Gfunc of func
  | Gdecl of decl

type program = { pglobals : global list }

(* Atomic so that rewrites running on several domains at once (see
   Util.Pool) never hand out the same id twice. *)
let counter = Atomic.make 0

let fresh_id () = 1 + Atomic.fetch_and_add counter 1

let mk_expr ?(loc = Loc.dummy) edesc = { eid = fresh_id (); eloc = loc; edesc }

let mk_stmt ?(loc = Loc.dummy) ?(pragmas = []) sdesc =
  { sid = fresh_id (); sloc = loc; pragmas; sdesc }

let funcs p =
  List.filter_map (function Gfunc f -> Some f | Gdecl _ -> None) p.pglobals

let find_func p name = List.find_opt (fun f -> f.fname = name) (funcs p)

let globals_decls p =
  List.filter_map (function Gdecl d -> Some d | Gfunc _ -> None) p.pglobals

let replace_func p f =
  let found = ref false in
  let globals =
    List.map
      (function
        | Gfunc g when g.fname = f.fname ->
          found := true;
          Gfunc f
        | g -> g)
      p.pglobals
  in
  if !found then { pglobals = globals } else { pglobals = globals @ [ Gfunc f ] }

let rec equal_ty a b =
  match a, b with
  | Tvoid, Tvoid | Tbool, Tbool | Tint, Tint | Tfloat, Tfloat | Tdouble, Tdouble ->
    true
  | Tptr a, Tptr b -> equal_ty a b
  | (Tvoid | Tbool | Tint | Tfloat | Tdouble | Tptr _), _ -> false

let is_float_ty = function
  | Tfloat | Tdouble -> true
  | Tvoid | Tbool | Tint | Tptr _ -> false

let sizeof = function
  | Tvoid -> 0
  | Tbool -> 1
  | Tint -> 4
  | Tfloat -> 4
  | Tdouble -> 8
  | Tptr _ -> 8

let rec ty_to_string = function
  | Tvoid -> "void"
  | Tbool -> "bool"
  | Tint -> "int"
  | Tfloat -> "float"
  | Tdouble -> "double"
  | Tptr t -> ty_to_string t ^ "*"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"

let unop_to_string = function Neg -> "-" | Not -> "!"

let assign_op_to_string = function
  | Set -> "="
  | AddEq -> "+="
  | SubEq -> "-="
  | MulEq -> "*="
  | DivEq -> "/="

let expr_children e =
  match e.edesc with
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> []
  | Unary (_, a) | Cast (_, a) -> [ a ]
  | Binary (_, a, b) | Index (a, b) -> [ a; b ]
  | Cond (a, b, c) -> [ a; b; c ]
  | Call (_, args) -> args

let rec fold_expr f acc e =
  let acc = f acc e in
  List.fold_left (fold_expr f) acc (expr_children e)

let stmt_sub_blocks s =
  match s.sdesc with
  | If (_, b1, b2) -> [ b1; b2 ]
  | For (_, b) | While (_, b) | Scope b -> [ b ]
  | Decl _ | Assign _ | Expr_stmt _ | Return _ | Break | Continue -> []

let stmt_exprs s =
  match s.sdesc with
  | Decl { dinit; darray; _ } -> List.filter_map Fun.id [ dinit; darray ]
  | Assign (lhs, _, rhs) -> [ lhs; rhs ]
  | Expr_stmt e -> [ e ]
  | If (c, _, _) | While (c, _) -> [ c ]
  | For (h, _) -> [ h.lo; h.hi; h.step ]
  | Return (Some e) -> [ e ]
  | Return None | Break | Continue | Scope _ -> []

let rec renumber_expr e =
  let edesc =
    match e.edesc with
    | (Int_lit _ | Float_lit _ | Bool_lit _ | Var _) as d -> d
    | Unary (op, a) -> Unary (op, renumber_expr a)
    | Binary (op, a, b) -> Binary (op, renumber_expr a, renumber_expr b)
    | Call (f, args) -> Call (f, List.map renumber_expr args)
    | Index (a, b) -> Index (renumber_expr a, renumber_expr b)
    | Cast (t, a) -> Cast (t, renumber_expr a)
    | Cond (a, b, c) -> Cond (renumber_expr a, renumber_expr b, renumber_expr c)
  in
  { e with eid = fresh_id (); edesc }

let rec renumber_stmt s =
  let sdesc =
    match s.sdesc with
    | Decl d ->
      Decl
        { d with
          dinit = Option.map renumber_expr d.dinit;
          darray = Option.map renumber_expr d.darray }
    | Assign (lhs, op, rhs) -> Assign (renumber_expr lhs, op, renumber_expr rhs)
    | Expr_stmt e -> Expr_stmt (renumber_expr e)
    | If (c, b1, b2) -> If (renumber_expr c, renumber_block b1, renumber_block b2)
    | For (h, b) ->
      let h =
        { h with
          lo = renumber_expr h.lo;
          hi = renumber_expr h.hi;
          step = renumber_expr h.step }
      in
      For (h, renumber_block b)
    | While (c, b) -> While (renumber_expr c, renumber_block b)
    | Return e -> Return (Option.map renumber_expr e)
    | (Break | Continue) as d -> d
    | Scope b -> Scope (renumber_block b)
  in
  { s with sid = fresh_id (); sdesc }

and renumber_block b = List.map renumber_stmt b

let refresh_expr = renumber_expr

let refresh_stmt = renumber_stmt

let renumber p =
  let globals =
    List.map
      (function
        | Gfunc f -> Gfunc { f with fbody = renumber_block f.fbody }
        | Gdecl d ->
          Gdecl
            { d with
              dinit = Option.map renumber_expr d.dinit;
              darray = Option.map renumber_expr d.darray })
      p.pglobals
  in
  { pglobals = globals }

let rec max_id_stmt acc s =
  let acc = max acc s.sid in
  let acc =
    List.fold_left (fold_expr (fun m e -> max m e.eid)) acc (stmt_exprs s)
  in
  List.fold_left
    (fun m b -> List.fold_left max_id_stmt m b)
    acc (stmt_sub_blocks s)

let max_id p =
  List.fold_left
    (fun acc g ->
      match g with
      | Gfunc f -> List.fold_left max_id_stmt acc f.fbody
      | Gdecl d ->
        List.fold_left
          (fold_expr (fun m e -> max m e.eid))
          acc
          (List.filter_map Fun.id [ d.dinit; d.darray ]))
    0 p.pglobals

let rec reserve_ids n =
  let cur = Atomic.get counter in
  if cur < n && not (Atomic.compare_and_set counter cur n) then reserve_ids n
