type t =
  | INT_LIT of int
  | FLOAT_LIT of float * bool
  | IDENT of string
  | KW_VOID | KW_BOOL | KW_INT | KW_FLOAT | KW_DOUBLE
  | KW_IF | KW_ELSE | KW_FOR | KW_WHILE | KW_RETURN
  | KW_CONST | KW_TRUE | KW_FALSE | KW_RESTRICT | KW_BREAK | KW_CONTINUE
  | PRAGMA of string
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | QUESTION | COLON
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMPAMP | BARBAR | BANG | AMP
  | LT | LE | GT | GE | EQEQ | NE
  | ASSIGN | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ
  | PLUSPLUS | MINUSMINUS
  | EOF

let to_string = function
  | INT_LIT n -> string_of_int n
  | FLOAT_LIT (f, single) -> string_of_float f ^ (if single then "f" else "")
  | IDENT s -> s
  | KW_VOID -> "void"
  | KW_BOOL -> "bool"
  | KW_INT -> "int"
  | KW_FLOAT -> "float"
  | KW_DOUBLE -> "double"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_FOR -> "for"
  | KW_WHILE -> "while"
  | KW_RETURN -> "return"
  | KW_CONST -> "const"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_RESTRICT -> "__restrict__"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | PRAGMA s -> "#pragma " ^ s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | QUESTION -> "?"
  | COLON -> ":"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMPAMP -> "&&"
  | BARBAR -> "||"
  | BANG -> "!"
  | AMP -> "&"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQEQ -> "=="
  | NE -> "!="
  | ASSIGN -> "="
  | PLUSEQ -> "+="
  | MINUSEQ -> "-="
  | STAREQ -> "*="
  | SLASHEQ -> "/="
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | EOF -> "<eof>"
