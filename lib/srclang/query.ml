open Ast

type ctx = { cx_func : func; cx_ancestors : stmt list }

let is_loop_stmt s = match s.sdesc with For _ | While _ -> true | _ -> false

let loop_depth ctx = List.length (List.filter is_loop_stmt ctx.cx_ancestors)

let fold_stmts_in_func fn f acc0 =
  let rec walk_block ancestors acc blk =
    List.fold_left (walk_stmt ancestors) acc blk
  and walk_stmt ancestors acc s =
    let ctx = { cx_func = fn; cx_ancestors = List.rev ancestors } in
    let acc = f acc ctx s in
    List.fold_left (walk_block (s :: ancestors)) acc (stmt_sub_blocks s)
  in
  walk_block [] acc0 fn.fbody

let select_stmts_in_func fn pred =
  List.rev
    (fold_stmts_in_func fn
       (fun acc ctx s -> if pred ctx s then (ctx, s) :: acc else acc)
       [])

let select_stmts p pred = List.concat_map (fun fn -> select_stmts_in_func fn pred) (funcs p)

type loop_match = {
  lm_ctx : ctx;
  lm_stmt : stmt;
  lm_header : for_header;
  lm_body : block;
}

let to_loop_match (ctx, s) =
  match s.sdesc with
  | For (h, body) -> { lm_ctx = ctx; lm_stmt = s; lm_header = h; lm_body = body }
  | _ -> invalid_arg "to_loop_match: not a for loop"

let is_for _ctx s = match s.sdesc with For _ -> true | _ -> false

let loops_in_func fn = List.map to_loop_match (select_stmts_in_func fn is_for)

let loops p = List.concat_map loops_in_func (funcs p)

let outermost_loops fn =
  List.filter (fun lm -> loop_depth lm.lm_ctx = 0) (loops_in_func fn)

let rec stmt_contains s id =
  s.sid = id
  || List.exists (fun e -> expr_contains e id) (stmt_exprs s)
  || List.exists (fun blk -> List.exists (fun s' -> stmt_contains s' id) blk)
       (stmt_sub_blocks s)

and expr_contains e id =
  e.eid = id || List.exists (fun c -> expr_contains c id) (expr_children e)

let inner_loops lm =
  let fn = lm.lm_ctx.cx_func in
  List.filter
    (fun inner ->
      inner.lm_stmt.sid <> lm.lm_stmt.sid
      && List.exists (fun anc -> anc.sid = lm.lm_stmt.sid) inner.lm_ctx.cx_ancestors)
    (loops_in_func fn)

let find_stmt p id =
  let matches = select_stmts p (fun _ s -> s.sid = id) in
  match matches with [] -> None | m :: _ -> Some m

let find_loop p id =
  match find_stmt p id with
  | Some ((_, s) as m) -> (match s.sdesc with For _ -> Some (to_loop_match m) | _ -> None)
  | None -> None

let rec calls_in_expr acc e =
  let acc = match e.edesc with Call (name, _) -> name :: acc | _ -> acc in
  List.fold_left calls_in_expr acc (expr_children e)

let rec calls_in_stmt acc s =
  let acc = List.fold_left calls_in_expr acc (stmt_exprs s) in
  List.fold_left (List.fold_left calls_in_stmt) acc (stmt_sub_blocks s)

let calls_in_block blk = List.rev (List.fold_left calls_in_stmt [] blk)

let dedup l =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] l)

let calls_user_functions p blk =
  dedup (List.filter (fun name -> find_func p name <> None) (calls_in_block blk))

let exprs_in_stmt s =
  let rec all_stmt acc s =
    let acc =
      List.fold_left (fun acc e -> fold_expr (fun acc e -> e :: acc) acc e) acc
        (stmt_exprs s)
    in
    List.fold_left (List.fold_left all_stmt) acc (stmt_sub_blocks s)
  in
  List.rev (all_stmt [] s)

let select_exprs p pred =
  let all =
    List.concat_map
      (fun fn -> List.concat_map exprs_in_stmt fn.fbody)
      (funcs p)
  in
  List.filter pred all

let rec array_base_name e =
  match e.edesc with
  | Var v -> Some v
  | Index (base, _) -> array_base_name base
  | _ -> None

let rec writes_in_stmt acc s =
  let acc =
    match s.sdesc with
    | Decl d -> d.dname :: acc
    | Assign (lhs, _, _) ->
      (match array_base_name lhs with Some v -> v :: acc | None -> acc)
    | _ -> acc
  in
  List.fold_left (List.fold_left writes_in_stmt) acc (stmt_sub_blocks s)

let writes_in_block blk = dedup (List.rev (List.fold_left writes_in_stmt [] blk))

let rec reads_in_expr ?(skip_lhs_base = false) acc e =
  match e.edesc with
  | Var v -> if skip_lhs_base then acc else v :: acc
  | Index (base, idx) ->
    let acc = reads_in_expr ~skip_lhs_base acc base in
    reads_in_expr acc idx
  | _ -> List.fold_left (fun acc c -> reads_in_expr acc c) acc (expr_children e)

let rec reads_in_stmt acc s =
  let acc =
    match s.sdesc with
    | Assign (lhs, op, rhs) ->
      (* a plain write [x = e] does not read x, but [x += e] and [a[i] = e]
         (the index) do *)
      let acc =
        match lhs.edesc, op with
        | Var _, Set -> acc
        | Var v, _ -> v :: acc
        | Index _, Set -> reads_in_expr ~skip_lhs_base:true acc lhs
        | Index _, _ -> reads_in_expr acc lhs
        | _, _ -> reads_in_expr acc lhs
      in
      reads_in_expr acc rhs
    | _ -> List.fold_left (fun acc e -> reads_in_expr acc e) acc (stmt_exprs s)
  in
  List.fold_left (List.fold_left reads_in_stmt) acc (stmt_sub_blocks s)

let reads_in_block blk = dedup (List.rev (List.fold_left reads_in_stmt [] blk))
