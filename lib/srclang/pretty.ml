open Ast

let prec_of_binop = function
  | Or -> 1
  | And -> 2
  | Eq | Ne -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

(* Print a float so it round-trips and always looks like a float literal. *)
let float_literal f single =
  let body =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else
      let s = Printf.sprintf "%.17g" f in
      if float_of_string s = f then
        let shorter = Printf.sprintf "%.9g" f in
        if float_of_string shorter = f then shorter else s
      else s
  in
  if single then body ^ "f" else body

let rec expr_prec e =
  match e.edesc with
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ | Call _ | Index _ -> 10
  | Cast _ | Unary _ -> 7
  | Binary (op, _, _) -> prec_of_binop op
  | Cond _ -> 0

and expr_to_buf buf e =
  match e.edesc with
  | Int_lit n ->
    if n < 0 then Buffer.add_string buf (Printf.sprintf "(%d)" n)
    else Buffer.add_string buf (string_of_int n)
  | Float_lit (f, single) -> Buffer.add_string buf (float_literal f single)
  | Bool_lit b -> Buffer.add_string buf (if b then "true" else "false")
  | Var v -> Buffer.add_string buf v
  | Unary (op, a) ->
    Buffer.add_string buf (unop_to_string op);
    (* parenthesise nested unaries: "--x" would lex as a decrement *)
    let nested_unary = match a.edesc with Unary _ -> true | _ -> false in
    paren_if buf (expr_prec a < 7 || nested_unary) a
  | Binary (op, a, b) ->
    let p = prec_of_binop op in
    paren_if buf (expr_prec a < p) a;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (binop_to_string op);
    Buffer.add_char buf ' ';
    (* right operand needs parens at equal precedence for -,/,% *)
    paren_if buf (expr_prec b <= p) b
  | Call (f, args) ->
    Buffer.add_string buf f;
    Buffer.add_char buf '(';
    List.iteri
      (fun i a ->
        if i > 0 then Buffer.add_string buf ", ";
        expr_to_buf buf a)
      args;
    Buffer.add_char buf ')'
  | Index (base, idx) ->
    paren_if buf (expr_prec base < 10) base;
    Buffer.add_char buf '[';
    expr_to_buf buf idx;
    Buffer.add_char buf ']'
  | Cast (ty, a) ->
    Buffer.add_char buf '(';
    Buffer.add_string buf (ty_to_string ty);
    Buffer.add_char buf ')';
    paren_if buf (expr_prec a < 7) a
  | Cond (c, a, b) ->
    paren_if buf (expr_prec c <= 0) c;
    Buffer.add_string buf " ? ";
    expr_to_buf buf a;
    Buffer.add_string buf " : ";
    paren_if buf (expr_prec b < 0) b

and paren_if buf need e =
  if need then begin
    Buffer.add_char buf '(';
    expr_to_buf buf e;
    Buffer.add_char buf ')'
  end
  else expr_to_buf buf e

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr_to_buf buf e;
  Buffer.contents buf

let pragma_to_string (p : pragma) =
  "#pragma " ^ String.concat " " (p.pname :: p.pargs)

let ind n = String.make (2 * n) ' '

let decl_to_string (d : decl) =
  let buf = Buffer.create 32 in
  if d.dconst then Buffer.add_string buf "const ";
  Buffer.add_string buf (ty_to_string d.dty);
  Buffer.add_char buf ' ';
  Buffer.add_string buf d.dname;
  (match d.darray with
   | Some n ->
     Buffer.add_char buf '[';
     expr_to_buf buf n;
     Buffer.add_char buf ']'
   | None -> ());
  (match d.dinit with
   | Some e ->
     Buffer.add_string buf " = ";
     expr_to_buf buf e
   | None -> ());
  Buffer.contents buf

let rec stmt_to_buf buf level (s : stmt) =
  List.iter
    (fun p ->
      Buffer.add_string buf (ind level);
      Buffer.add_string buf (pragma_to_string p);
      Buffer.add_char buf '\n')
    s.pragmas;
  Buffer.add_string buf (ind level);
  match s.sdesc with
  | Decl d ->
    Buffer.add_string buf (decl_to_string d);
    Buffer.add_string buf ";\n"
  | Assign (lhs, op, rhs) ->
    expr_to_buf buf lhs;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (assign_op_to_string op);
    Buffer.add_char buf ' ';
    expr_to_buf buf rhs;
    Buffer.add_string buf ";\n"
  | Expr_stmt e ->
    expr_to_buf buf e;
    Buffer.add_string buf ";\n"
  | If (c, then_blk, else_blk) ->
    Buffer.add_string buf "if (";
    expr_to_buf buf c;
    Buffer.add_string buf ") {\n";
    block_to_buf buf (level + 1) then_blk;
    Buffer.add_string buf (ind level);
    if else_blk = [] then Buffer.add_string buf "}\n"
    else begin
      Buffer.add_string buf "} else {\n";
      block_to_buf buf (level + 1) else_blk;
      Buffer.add_string buf (ind level);
      Buffer.add_string buf "}\n"
    end
  | For (h, body) ->
    Buffer.add_string buf "for (int ";
    Buffer.add_string buf h.index;
    Buffer.add_string buf " = ";
    expr_to_buf buf h.lo;
    Buffer.add_string buf "; ";
    Buffer.add_string buf h.index;
    Buffer.add_string buf (match h.cmp with CLt -> " < " | CLe -> " <= ");
    expr_to_buf buf h.hi;
    Buffer.add_string buf "; ";
    Buffer.add_string buf h.index;
    (match h.step.edesc with
     | Int_lit 1 -> Buffer.add_string buf "++"
     | _ ->
       Buffer.add_string buf " += ";
       expr_to_buf buf h.step);
    Buffer.add_string buf ") {\n";
    block_to_buf buf (level + 1) body;
    Buffer.add_string buf (ind level);
    Buffer.add_string buf "}\n"
  | While (c, body) ->
    Buffer.add_string buf "while (";
    expr_to_buf buf c;
    Buffer.add_string buf ") {\n";
    block_to_buf buf (level + 1) body;
    Buffer.add_string buf (ind level);
    Buffer.add_string buf "}\n"
  | Return None -> Buffer.add_string buf "return;\n"
  | Return (Some e) ->
    Buffer.add_string buf "return ";
    expr_to_buf buf e;
    Buffer.add_string buf ";\n"
  | Break -> Buffer.add_string buf "break;\n"
  | Continue -> Buffer.add_string buf "continue;\n"
  | Scope body ->
    Buffer.add_string buf "{\n";
    block_to_buf buf (level + 1) body;
    Buffer.add_string buf (ind level);
    Buffer.add_string buf "}\n"

and block_to_buf buf level (b : block) = List.iter (stmt_to_buf buf level) b

let stmt_to_string ?(indent = 0) s =
  let buf = Buffer.create 128 in
  stmt_to_buf buf indent s;
  Buffer.contents buf

let block_to_string ?(indent = 0) b =
  let buf = Buffer.create 256 in
  block_to_buf buf indent b;
  Buffer.contents buf

let param_to_string (p : param) =
  let buf = Buffer.create 32 in
  if p.prm_const then Buffer.add_string buf "const ";
  Buffer.add_string buf (ty_to_string p.prm_ty);
  if p.prm_restrict then Buffer.add_string buf " __restrict__";
  Buffer.add_char buf ' ';
  Buffer.add_string buf p.prm_name;
  Buffer.contents buf

let func_to_string (f : func) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (ty_to_string f.fret);
  Buffer.add_char buf ' ';
  Buffer.add_string buf f.fname;
  Buffer.add_char buf '(';
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (param_to_string p))
    f.fparams;
  Buffer.add_string buf ") {\n";
  block_to_buf buf 1 f.fbody;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let program_to_string (p : program) =
  let buf = Buffer.create 2048 in
  List.iteri
    (fun i g ->
      if i > 0 then Buffer.add_char buf '\n';
      match g with
      | Gfunc f -> Buffer.add_string buf (func_to_string f)
      | Gdecl d ->
        Buffer.add_string buf (decl_to_string d);
        Buffer.add_string buf ";\n")
    p.pglobals;
  Buffer.contents buf
