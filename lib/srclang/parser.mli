(** Recursive-descent parser for the mini-C++ subset.

    The accepted grammar is a C/C++ subset sufficient for the paper's five
    benchmarks: global constant declarations, function definitions over
    [void]/[bool]/[int]/[float]/[double] and pointers to them, canonical
    counted [for] loops, [while], [if]/[else], compound assignment,
    [break]/[continue]/[return], calls, array indexing, casts, the ternary
    operator, and [#pragma] annotations attached to the following statement.

    [for] loops are normalised at parse time into {!Ast.for_header}
    ([for (int i = lo; i < hi; i += step)]); loops that do not fit this shape
    are rejected, matching the canonical-loop requirement HLS flows place on
    kernel code. *)

exception Error of Loc.t * string

val parse_program : ?file:string -> string -> Ast.program
(** Parse a full translation unit. @raise Error on syntax errors. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (testing helper). *)

val parse_stmt : string -> Ast.stmt
(** Parse a single statement (testing helper). *)

val pragma_of_text : string -> Ast.pragma
(** Split raw [#pragma] text into name and arguments. *)
