(** Artisan-style AST query engine.

    Mirrors the paper's query mechanism (Fig. 2): design-flow tasks select
    AST nodes by predicates over node kind and structural relations
    ("loop.isForStmt ∧ fn.encloses(loop) ∧ loop.is_outermost"), then hand the
    matches to the rewriter.  All functions are pure; matches carry enough
    context (owning function, ancestor chain, nesting depth) for the
    analyses to reason about placement. *)

(** Context of a matched statement. *)
type ctx = {
  cx_func : Ast.func;           (** function the statement belongs to *)
  cx_ancestors : Ast.stmt list; (** enclosing statements, outermost first *)
}

val loop_depth : ctx -> int
(** Number of [For]/[While] statements in the ancestor chain. *)

val select_stmts : Ast.program -> (ctx -> Ast.stmt -> bool) -> (ctx * Ast.stmt) list
(** All statements satisfying the predicate, in source order. *)

val select_stmts_in_func : Ast.func -> (ctx -> Ast.stmt -> bool) -> (ctx * Ast.stmt) list

(** A matched canonical [for] loop. *)
type loop_match = {
  lm_ctx : ctx;
  lm_stmt : Ast.stmt;
  lm_header : Ast.for_header;
  lm_body : Ast.block;
}

val loops : Ast.program -> loop_match list
(** Every [For] statement in the program. *)

val loops_in_func : Ast.func -> loop_match list

val outermost_loops : Ast.func -> loop_match list
(** [For] loops not nested inside any other loop of the same function —
    the "loop.is_outermost" predicate of Fig. 2. *)

val inner_loops : loop_match -> loop_match list
(** [For] loops strictly inside the given loop (any depth). *)

val stmt_contains : Ast.stmt -> int -> bool
(** [stmt_contains s id] — does the subtree rooted at [s] contain a
    statement or expression with this id? (the "encloses" relation). *)

val find_stmt : Ast.program -> int -> (ctx * Ast.stmt) option
(** Locate a statement by id anywhere in the program. *)

val find_loop : Ast.program -> int -> loop_match option

val calls_in_block : Ast.block -> string list
(** Names of functions called anywhere in the block (with duplicates). *)

val calls_user_functions : Ast.program -> Ast.block -> string list
(** Called names that resolve to user-defined functions (deduplicated). *)

val select_exprs : Ast.program -> (Ast.expr -> bool) -> Ast.expr list
(** All expressions (including sub-expressions) satisfying the predicate. *)

val exprs_in_stmt : Ast.stmt -> Ast.expr list
(** Every expression in the statement subtree, including sub-expressions. *)

val writes_in_block : Ast.block -> string list
(** Names of variables written (assigned or declared) in the block,
    deduplicated; for [a\[i\] = ...] the base array name counts. *)

val reads_in_block : Ast.block -> string list
(** Names of variables read in the block, deduplicated. *)

val array_base_name : Ast.expr -> string option
(** For nested [Index] chains, the root variable name. *)
