exception Error of Loc.t * string

type state = { toks : (Token.t * Loc.t) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let peek_loc st = snd st.toks.(st.pos)

let peek_ahead st n =
  let i = min (st.pos + n) (Array.length st.toks - 1) in
  fst st.toks.(i)

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let fail st msg = raise (Error (peek_loc st, msg))

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek st)))

let expect_ident st =
  match peek st with
  | Token.IDENT name ->
    advance st;
    name
  | t -> fail st ("expected identifier but found " ^ Token.to_string t)

let pragma_of_text text : Ast.pragma =
  match String.split_on_char ' ' text |> List.filter (fun s -> s <> "") with
  | [] -> { pname = ""; pargs = [] }
  | name :: args -> { pname = name; pargs = args }

(* ---- types ---- *)

let base_ty st : Ast.ty option =
  match peek st with
  | Token.KW_VOID -> advance st; Some Ast.Tvoid
  | Token.KW_BOOL -> advance st; Some Ast.Tbool
  | Token.KW_INT -> advance st; Some Ast.Tint
  | Token.KW_FLOAT -> advance st; Some Ast.Tfloat
  | Token.KW_DOUBLE -> advance st; Some Ast.Tdouble
  | _ -> None

let rec pointer_suffix st ty =
  if peek st = Token.STAR then begin
    advance st;
    pointer_suffix st (Ast.Tptr ty)
  end
  else ty

let is_type_start = function
  | Token.KW_VOID | Token.KW_BOOL | Token.KW_INT | Token.KW_FLOAT | Token.KW_DOUBLE ->
    true
  | _ -> false

(* ---- expressions (precedence climbing) ---- *)

let rec parse_expression st = parse_cond st

and parse_cond st =
  let c = parse_or st in
  if peek st = Token.QUESTION then begin
    let loc = peek_loc st in
    advance st;
    let a = parse_expression st in
    expect st Token.COLON;
    let b = parse_cond st in
    Ast.mk_expr ~loc (Ast.Cond (c, a, b))
  end
  else c

and parse_or st =
  let rec loop lhs =
    if peek st = Token.BARBAR then begin
      let loc = peek_loc st in
      advance st;
      let rhs = parse_and st in
      loop (Ast.mk_expr ~loc (Ast.Binary (Ast.Or, lhs, rhs)))
    end
    else lhs
  in
  loop (parse_and st)

and parse_and st =
  let rec loop lhs =
    if peek st = Token.AMPAMP then begin
      let loc = peek_loc st in
      advance st;
      let rhs = parse_equality st in
      loop (Ast.mk_expr ~loc (Ast.Binary (Ast.And, lhs, rhs)))
    end
    else lhs
  in
  loop (parse_equality st)

and parse_equality st =
  let rec loop lhs =
    match peek st with
    | Token.EQEQ | Token.NE ->
      let op = if peek st = Token.EQEQ then Ast.Eq else Ast.Ne in
      let loc = peek_loc st in
      advance st;
      let rhs = parse_relational st in
      loop (Ast.mk_expr ~loc (Ast.Binary (op, lhs, rhs)))
    | _ -> lhs
  in
  loop (parse_relational st)

and parse_relational st =
  let rec loop lhs =
    let op =
      match peek st with
      | Token.LT -> Some Ast.Lt
      | Token.LE -> Some Ast.Le
      | Token.GT -> Some Ast.Gt
      | Token.GE -> Some Ast.Ge
      | _ -> None
    in
    match op with
    | Some op ->
      let loc = peek_loc st in
      advance st;
      let rhs = parse_additive st in
      loop (Ast.mk_expr ~loc (Ast.Binary (op, lhs, rhs)))
    | None -> lhs
  in
  loop (parse_additive st)

and parse_additive st =
  let rec loop lhs =
    let op =
      match peek st with
      | Token.PLUS -> Some Ast.Add
      | Token.MINUS -> Some Ast.Sub
      | _ -> None
    in
    match op with
    | Some op ->
      let loc = peek_loc st in
      advance st;
      let rhs = parse_multiplicative st in
      loop (Ast.mk_expr ~loc (Ast.Binary (op, lhs, rhs)))
    | None -> lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    let op =
      match peek st with
      | Token.STAR -> Some Ast.Mul
      | Token.SLASH -> Some Ast.Div
      | Token.PERCENT -> Some Ast.Mod
      | _ -> None
    in
    match op with
    | Some op ->
      let loc = peek_loc st in
      advance st;
      let rhs = parse_unary st in
      loop (Ast.mk_expr ~loc (Ast.Binary (op, lhs, rhs)))
    | None -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  let loc = peek_loc st in
  match peek st with
  | Token.MINUS ->
    advance st;
    Ast.mk_expr ~loc (Ast.Unary (Ast.Neg, parse_unary st))
  | Token.BANG ->
    advance st;
    Ast.mk_expr ~loc (Ast.Unary (Ast.Not, parse_unary st))
  | Token.PLUS ->
    advance st;
    parse_unary st
  | Token.LPAREN when is_type_start (peek_ahead st 1) ->
    (* cast: '(' type ')' unary *)
    advance st;
    let base =
      match base_ty st with
      | Some t -> t
      | None -> fail st "expected type in cast"
    in
    let ty = pointer_suffix st base in
    expect st Token.RPAREN;
    Ast.mk_expr ~loc (Ast.Cast (ty, parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let rec loop e =
    match peek st with
    | Token.LBRACKET ->
      let loc = peek_loc st in
      advance st;
      let idx = parse_expression st in
      expect st Token.RBRACKET;
      loop (Ast.mk_expr ~loc (Ast.Index (e, idx)))
    | _ -> e
  in
  loop (parse_primary st)

and parse_primary st =
  let loc = peek_loc st in
  match peek st with
  | Token.INT_LIT n ->
    advance st;
    Ast.mk_expr ~loc (Ast.Int_lit n)
  | Token.FLOAT_LIT (f, single) ->
    advance st;
    Ast.mk_expr ~loc (Ast.Float_lit (f, single))
  | Token.KW_TRUE ->
    advance st;
    Ast.mk_expr ~loc (Ast.Bool_lit true)
  | Token.KW_FALSE ->
    advance st;
    Ast.mk_expr ~loc (Ast.Bool_lit false)
  | Token.IDENT name ->
    advance st;
    if peek st = Token.LPAREN then begin
      advance st;
      let args =
        if peek st = Token.RPAREN then []
        else begin
          let rec more acc =
            if peek st = Token.COMMA then begin
              advance st;
              more (parse_expression st :: acc)
            end
            else List.rev acc
          in
          more [ parse_expression st ]
        end
      in
      expect st Token.RPAREN;
      Ast.mk_expr ~loc (Ast.Call (name, args))
    end
    else Ast.mk_expr ~loc (Ast.Var name)
  | Token.LPAREN ->
    advance st;
    let e = parse_expression st in
    expect st Token.RPAREN;
    e
  | t -> fail st ("unexpected token in expression: " ^ Token.to_string t)

(* ---- declarations ---- *)

let parse_decl_after_type st ~const ~ty : Ast.decl =
  let name = expect_ident st in
  let darray =
    if peek st = Token.LBRACKET then begin
      advance st;
      let n = parse_expression st in
      expect st Token.RBRACKET;
      Some n
    end
    else None
  in
  let dinit =
    if peek st = Token.ASSIGN then begin
      advance st;
      Some (parse_expression st)
    end
    else None
  in
  { Ast.dty = ty; dname = name; dinit; darray; dconst = const }

(* ---- statements ---- *)

let one_lit n = Ast.mk_expr (Ast.Int_lit n)

let rec parse_stmt_internal st : Ast.stmt =
  let pragmas = collect_pragmas st in
  let loc = peek_loc st in
  let stmt = parse_unannotated st in
  { stmt with Ast.pragmas = pragmas @ stmt.Ast.pragmas; sloc = loc }

and collect_pragmas st =
  match peek st with
  | Token.PRAGMA text ->
    advance st;
    pragma_of_text text :: collect_pragmas st
  | _ -> []

and parse_unannotated st : Ast.stmt =
  let loc = peek_loc st in
  match peek st with
  | Token.KW_CONST ->
    advance st;
    let base =
      match base_ty st with Some t -> t | None -> fail st "expected type after const"
    in
    let ty = pointer_suffix st base in
    let d = parse_decl_after_type st ~const:true ~ty in
    expect st Token.SEMI;
    Ast.mk_stmt ~loc (Ast.Decl d)
  | t when is_type_start t ->
    let base = match base_ty st with Some t -> t | None -> assert false in
    let ty = pointer_suffix st base in
    let d = parse_decl_after_type st ~const:false ~ty in
    expect st Token.SEMI;
    Ast.mk_stmt ~loc (Ast.Decl d)
  | Token.KW_IF ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expression st in
    expect st Token.RPAREN;
    let then_blk = parse_block_or_stmt st in
    let else_blk =
      if peek st = Token.KW_ELSE then begin
        advance st;
        parse_block_or_stmt st
      end
      else []
    in
    Ast.mk_stmt ~loc (Ast.If (cond, then_blk, else_blk))
  | Token.KW_FOR -> parse_for st loc
  | Token.KW_WHILE ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expression st in
    expect st Token.RPAREN;
    let body = parse_block_or_stmt st in
    Ast.mk_stmt ~loc (Ast.While (cond, body))
  | Token.KW_RETURN ->
    advance st;
    let e = if peek st = Token.SEMI then None else Some (parse_expression st) in
    expect st Token.SEMI;
    Ast.mk_stmt ~loc (Ast.Return e)
  | Token.KW_BREAK ->
    advance st;
    expect st Token.SEMI;
    Ast.mk_stmt ~loc Ast.Break
  | Token.KW_CONTINUE ->
    advance st;
    expect st Token.SEMI;
    Ast.mk_stmt ~loc Ast.Continue
  | Token.LBRACE -> Ast.mk_stmt ~loc (Ast.Scope (parse_block st))
  | _ ->
    (* assignment or expression statement *)
    let lhs = parse_expression st in
    let assign op =
      advance st;
      let rhs = parse_expression st in
      expect st Token.SEMI;
      Ast.mk_stmt ~loc (Ast.Assign (lhs, op, rhs))
    in
    (match peek st with
     | Token.ASSIGN -> assign Ast.Set
     | Token.PLUSEQ -> assign Ast.AddEq
     | Token.MINUSEQ -> assign Ast.SubEq
     | Token.STAREQ -> assign Ast.MulEq
     | Token.SLASHEQ -> assign Ast.DivEq
     | Token.PLUSPLUS ->
       advance st;
       expect st Token.SEMI;
       Ast.mk_stmt ~loc (Ast.Assign (lhs, Ast.AddEq, one_lit 1))
     | Token.MINUSMINUS ->
       advance st;
       expect st Token.SEMI;
       Ast.mk_stmt ~loc (Ast.Assign (lhs, Ast.SubEq, one_lit 1))
     | Token.SEMI ->
       advance st;
       Ast.mk_stmt ~loc (Ast.Expr_stmt lhs)
     | t -> fail st ("unexpected token after expression: " ^ Token.to_string t))

and parse_for st loc : Ast.stmt =
  expect st Token.KW_FOR;
  expect st Token.LPAREN;
  expect st Token.KW_INT;
  let index = expect_ident st in
  expect st Token.ASSIGN;
  let lo = parse_expression st in
  expect st Token.SEMI;
  let cond_var = expect_ident st in
  if cond_var <> index then
    fail st
      (Printf.sprintf "for-loop condition must test the index %s, found %s" index
         cond_var);
  let cmp =
    match peek st with
    | Token.LT -> advance st; Ast.CLt
    | Token.LE -> advance st; Ast.CLe
    | t -> fail st ("for-loop comparison must be < or <=, found " ^ Token.to_string t)
  in
  let hi = parse_expression st in
  expect st Token.SEMI;
  let upd_var = expect_ident st in
  if upd_var <> index then
    fail st
      (Printf.sprintf "for-loop update must modify the index %s, found %s" index
         upd_var);
  let step =
    match peek st with
    | Token.PLUSPLUS ->
      advance st;
      one_lit 1
    | Token.PLUSEQ ->
      advance st;
      parse_expression st
    | Token.ASSIGN ->
      (* i = i + step *)
      advance st;
      let v = expect_ident st in
      if v <> index then fail st "for-loop update must be of the form i = i + step";
      expect st Token.PLUS;
      parse_expression st
    | t -> fail st ("unsupported for-loop update: " ^ Token.to_string t)
  in
  expect st Token.RPAREN;
  let body = parse_block_or_stmt st in
  Ast.mk_stmt ~loc (Ast.For ({ Ast.index; lo; cmp; hi; step }, body))

and parse_block_or_stmt st : Ast.block =
  if peek st = Token.LBRACE then parse_block st else [ parse_stmt_internal st ]

and parse_block st : Ast.block =
  expect st Token.LBRACE;
  let rec loop acc =
    if peek st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else if peek st = Token.EOF then fail st "unexpected end of input inside block"
    else loop (parse_stmt_internal st :: acc)
  in
  loop []

(* ---- top level ---- *)

let parse_param st : Ast.param =
  let const1 =
    if peek st = Token.KW_CONST then begin
      advance st;
      true
    end
    else false
  in
  let base =
    match base_ty st with Some t -> t | None -> fail st "expected parameter type"
  in
  let ty = pointer_suffix st base in
  let restrict_ =
    if peek st = Token.KW_RESTRICT then begin
      advance st;
      true
    end
    else false
  in
  let name = expect_ident st in
  { Ast.prm_name = name; prm_ty = ty; prm_restrict = restrict_; prm_const = const1 }

let parse_global st : Ast.global =
  let const1 =
    if peek st = Token.KW_CONST then begin
      advance st;
      true
    end
    else false
  in
  let base =
    match base_ty st with Some t -> t | None -> fail st "expected type at top level"
  in
  let ty = pointer_suffix st base in
  let loc = peek_loc st in
  let name = expect_ident st in
  if peek st = Token.LPAREN then begin
    if const1 then fail st "functions cannot be declared const";
    advance st;
    let params =
      if peek st = Token.RPAREN then []
      else begin
        let rec more acc =
          if peek st = Token.COMMA then begin
            advance st;
            more (parse_param st :: acc)
          end
          else List.rev acc
        in
        more [ parse_param st ]
      end
    in
    expect st Token.RPAREN;
    let body = parse_block st in
    Ast.Gfunc { Ast.fname = name; fret = ty; fparams = params; fbody = body; floc = loc }
  end
  else begin
    let darray =
      if peek st = Token.LBRACKET then begin
        advance st;
        let n = parse_expression st in
        expect st Token.RBRACKET;
        Some n
      end
      else None
    in
    let dinit =
      if peek st = Token.ASSIGN then begin
        advance st;
        Some (parse_expression st)
      end
      else None
    in
    expect st Token.SEMI;
    Ast.Gdecl { Ast.dty = ty; dname = name; dinit; darray; dconst = const1 }
  end

let make_state ?file src =
  let toks = Array.of_list (Lexer.tokenize ?file src) in
  { toks; pos = 0 }

let parse_program ?file src =
  let st = make_state ?file src in
  let rec loop acc =
    if peek st = Token.EOF then List.rev acc else loop (parse_global st :: acc)
  in
  { Ast.pglobals = loop [] }

let parse_expr src =
  let st = make_state src in
  let e = parse_expression st in
  if peek st <> Token.EOF then fail st "trailing tokens after expression";
  e

let parse_stmt src =
  let st = make_state src in
  let s = parse_stmt_internal st in
  if peek st <> Token.EOF then fail st "trailing tokens after statement";
  s
