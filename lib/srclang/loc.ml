type t = { file : string; line : int; col : int }

let dummy = { file = "<synth>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let to_string t = Printf.sprintf "%s:%d:%d" t.file t.line t.col

let pp fmt t = Format.pp_print_string fmt (to_string t)
