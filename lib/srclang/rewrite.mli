(** AST instrumentation and rewriting.

    The paper's meta-programs "directly modify" source through instrument
    operations (Fig. 2: [instrument(before, loop, #pragma unroll $n)]).  This
    module provides those mechanisms: pragma insertion, statement
    replacement/insertion/deletion addressed by node id, and generic
    bottom-up statement/expression maps used by the optimising transforms.

    All operations return a new program; the input is never mutated.
    Addressing a non-existent id leaves the program unchanged (check with
    {!Query.find_stmt} first when that matters). *)

val map_stmts : (Ast.stmt -> Ast.stmt option) -> Ast.program -> Ast.program
(** Top-down statement rewriting.  For each statement, if the function
    returns [Some s'] the statement is replaced and the rewriter does not
    descend into the replacement; on [None] it recurses into sub-blocks. *)

val map_stmts_in_func : (Ast.stmt -> Ast.stmt option) -> Ast.func -> Ast.func

val map_exprs : (Ast.expr -> Ast.expr option) -> Ast.program -> Ast.program
(** Bottom-up expression rewriting over every expression in the program
    (children first, then the rewritten node is offered to the function). *)

val map_exprs_in_block : (Ast.expr -> Ast.expr option) -> Ast.block -> Ast.block

val map_exprs_in_stmt : (Ast.expr -> Ast.expr option) -> Ast.stmt -> Ast.stmt

val add_pragma : Ast.program -> sid:int -> Ast.pragma -> Ast.program
(** Attach a pragma to the statement with id [sid] (appended after existing
    pragmas) — the "instrument before" operation for directives. *)

val set_pragmas : Ast.program -> sid:int -> Ast.pragma list -> Ast.program
(** Replace the pragma list of a statement (used by DSE loops that re-try
    different directive parameters). *)

val replace_stmt : Ast.program -> sid:int -> Ast.stmt -> Ast.program

val replace_stmt_with_block : Ast.program -> sid:int -> Ast.stmt list -> Ast.program
(** Replace one statement by several (spliced without an extra scope). *)

val insert_before : Ast.program -> sid:int -> Ast.stmt list -> Ast.program

val insert_after : Ast.program -> sid:int -> Ast.stmt list -> Ast.program

val delete_stmt : Ast.program -> sid:int -> Ast.program

val replace_expr : Ast.program -> eid:int -> Ast.expr -> Ast.program

val rename_var : from:string -> to_:string -> Ast.block -> Ast.block
(** Capture-naive variable renaming inside a block (used when outlining
    hotspots whose free variables clash with parameter names). *)

val subst_var : string -> Ast.expr -> Ast.block -> Ast.block
(** [subst_var x e blk] replaces every read of variable [x] by [e]. *)

val subst_var_expr : string -> Ast.expr -> Ast.expr -> Ast.expr
