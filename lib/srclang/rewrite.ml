open Ast

(* ---- generic statement map (top-down) ---- *)

let rec map_stmt_td f s =
  match f s with
  | Some s' -> [ s' ]
  | None ->
    let sdesc =
      match s.sdesc with
      | If (c, b1, b2) -> If (c, map_block_td f b1, map_block_td f b2)
      | For (h, b) -> For (h, map_block_td f b)
      | While (c, b) -> While (c, map_block_td f b)
      | Scope b -> Scope (map_block_td f b)
      | (Decl _ | Assign _ | Expr_stmt _ | Return _ | Break | Continue) as d -> d
    in
    [ { s with sdesc } ]

and map_block_td f blk = List.concat_map (map_stmt_td f) blk

let map_stmts_in_func f fn = { fn with fbody = map_block_td f fn.fbody }

let map_stmts f p =
  {
    pglobals =
      List.map
        (function Gfunc fn -> Gfunc (map_stmts_in_func f fn) | Gdecl _ as g -> g)
        p.pglobals;
  }

(* A variant whose rewriting function may return several statements,
   used internally by insert/delete/splice. *)
let rec splice_stmt f s =
  match f s with
  | Some ss -> ss
  | None ->
    let sdesc =
      match s.sdesc with
      | If (c, b1, b2) -> If (c, splice_block f b1, splice_block f b2)
      | For (h, b) -> For (h, splice_block f b)
      | While (c, b) -> While (c, splice_block f b)
      | Scope b -> Scope (splice_block f b)
      | (Decl _ | Assign _ | Expr_stmt _ | Return _ | Break | Continue) as d -> d
    in
    [ { s with sdesc } ]

and splice_block f blk = List.concat_map (splice_stmt f) blk

let splice f p =
  {
    pglobals =
      List.map
        (function
          | Gfunc fn -> Gfunc { fn with fbody = splice_block f fn.fbody }
          | Gdecl _ as g -> g)
        p.pglobals;
  }

(* ---- generic expression map (bottom-up) ---- *)

let rec map_expr_bu f e =
  let rebuilt =
    let r = map_expr_bu f in
    match e.edesc with
    | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> e
    | Unary (op, a) -> { e with edesc = Unary (op, r a) }
    | Binary (op, a, b) -> { e with edesc = Binary (op, r a, r b) }
    | Call (name, args) -> { e with edesc = Call (name, List.map r args) }
    | Index (a, b) -> { e with edesc = Index (r a, r b) }
    | Cast (t, a) -> { e with edesc = Cast (t, r a) }
    | Cond (a, b, c) -> { e with edesc = Cond (r a, r b, r c) }
  in
  match f rebuilt with Some e' -> e' | None -> rebuilt

let rec map_exprs_in_stmt f s =
  let r = map_expr_bu f in
  let sdesc =
    match s.sdesc with
    | Decl d ->
      Decl { d with dinit = Option.map r d.dinit; darray = Option.map r d.darray }
    | Assign (lhs, op, rhs) -> Assign (r lhs, op, r rhs)
    | Expr_stmt e -> Expr_stmt (r e)
    | If (c, b1, b2) -> If (r c, map_exprs_in_block f b1, map_exprs_in_block f b2)
    | For (h, b) ->
      For ({ h with lo = r h.lo; hi = r h.hi; step = r h.step }, map_exprs_in_block f b)
    | While (c, b) -> While (r c, map_exprs_in_block f b)
    | Return e -> Return (Option.map r e)
    | (Break | Continue) as d -> d
    | Scope b -> Scope (map_exprs_in_block f b)
  in
  { s with sdesc }

and map_exprs_in_block f blk = List.map (map_exprs_in_stmt f) blk

let map_exprs f p =
  {
    pglobals =
      List.map
        (function
          | Gfunc fn -> Gfunc { fn with fbody = map_exprs_in_block f fn.fbody }
          | Gdecl d ->
            Gdecl
              {
                d with
                dinit = Option.map (map_expr_bu f) d.dinit;
                darray = Option.map (map_expr_bu f) d.darray;
              })
        p.pglobals;
  }

(* ---- id-addressed edits ---- *)

let add_pragma p ~sid pragma =
  map_stmts
    (fun s -> if s.sid = sid then Some { s with pragmas = s.pragmas @ [ pragma ] } else None)
    p

let set_pragmas p ~sid pragmas =
  map_stmts (fun s -> if s.sid = sid then Some { s with pragmas } else None) p

let replace_stmt p ~sid stmt =
  map_stmts (fun s -> if s.sid = sid then Some stmt else None) p

let replace_stmt_with_block p ~sid stmts =
  splice (fun s -> if s.sid = sid then Some stmts else None) p

let insert_before p ~sid stmts =
  splice (fun s -> if s.sid = sid then Some (stmts @ [ s ]) else None) p

let insert_after p ~sid stmts =
  splice (fun s -> if s.sid = sid then Some (s :: stmts) else None) p

let delete_stmt p ~sid = splice (fun s -> if s.sid = sid then Some [] else None) p

let replace_expr p ~eid expr =
  map_exprs (fun e -> if e.eid = eid then Some expr else None) p

(* ---- variable substitution ---- *)

let subst_var_expr x replacement e =
  map_expr_bu
    (fun e ->
      match e.edesc with
      | Var v when v = x -> Some (refresh_expr replacement)
      | _ -> None)
    e

let subst_var x replacement blk =
  map_exprs_in_block
    (fun e ->
      match e.edesc with
      | Var v when v = x -> Some (refresh_expr replacement)
      | _ -> None)
    blk

let rename_var ~from ~to_ blk =
  let rename_expr e =
    match e.edesc with
    | Var v when v = from -> Some { e with edesc = Var to_ }
    | _ -> None
  in
  let rec fix_stmt s =
    let s = map_exprs_in_stmt rename_expr s in
    let sdesc =
      match s.sdesc with
      | Decl d when d.dname = from -> Decl { d with dname = to_ }
      | For (h, b) when h.index = from ->
        For ({ h with index = to_ }, List.map fix_stmt b)
      | For (h, b) -> For (h, List.map fix_stmt b)
      | If (c, b1, b2) -> If (c, List.map fix_stmt b1, List.map fix_stmt b2)
      | While (c, b) -> While (c, List.map fix_stmt b)
      | Scope b -> Scope (List.map fix_stmt b)
      | d -> d
    in
    { s with sdesc }
  in
  List.map fix_stmt blk
