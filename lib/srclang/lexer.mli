(** Hand-written lexer for the mini-C++ subset.

    Handles line ([//]) and block ([/* */]) comments, integer and floating
    literals (with the [f] single-precision suffix), identifiers, keywords,
    C operators, and [#pragma] lines (captured verbatim as a single token). *)

exception Error of Loc.t * string
(** Raised on an unexpected character or malformed literal. *)

val tokenize : ?file:string -> string -> (Token.t * Loc.t) list
(** [tokenize ~file source] lexes the whole input, ending with [EOF]. *)
