(** Lines-of-code accounting for Table I ("added lines of code for each
    generated design compared to the reference source"). *)

val count_text : string -> int
(** Non-blank, non-comment-only lines in a source string. *)

val program_loc : Ast.program -> int
(** LOC of the pretty-printed program. *)

val added_loc : reference:Ast.program -> design:Ast.program -> int
(** [design] LOC minus [reference] LOC (may be negative). *)

val added_pct : reference:Ast.program -> design:Ast.program -> float
(** Added LOC as a percentage of the reference LOC, the unit Table I uses. *)
