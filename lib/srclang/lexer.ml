exception Error of Loc.t * string

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let loc_of st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
   | Some '\n' ->
     st.line <- st.line + 1;
     st.bol <- st.pos + 1
   | Some _ | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_digit c || is_alpha c

let keyword_of = function
  | "void" -> Some Token.KW_VOID
  | "bool" -> Some Token.KW_BOOL
  | "int" -> Some Token.KW_INT
  | "float" -> Some Token.KW_FLOAT
  | "double" -> Some Token.KW_DOUBLE
  | "if" -> Some Token.KW_IF
  | "else" -> Some Token.KW_ELSE
  | "for" -> Some Token.KW_FOR
  | "while" -> Some Token.KW_WHILE
  | "return" -> Some Token.KW_RETURN
  | "const" -> Some Token.KW_CONST
  | "true" -> Some Token.KW_TRUE
  | "false" -> Some Token.KW_FALSE
  | "break" -> Some Token.KW_BREAK
  | "continue" -> Some Token.KW_CONTINUE
  | "restrict" | "__restrict__" | "__restrict" -> Some Token.KW_RESTRICT
  | _ -> None

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do advance st done;
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    let start = loc_of st in
    advance st;
    advance st;
    let rec close () =
      match peek st with
      | None -> raise (Error (start, "unterminated block comment"))
      | Some '*' when peek2 st = Some '/' ->
        advance st;
        advance st
      | Some _ ->
        advance st;
        close ()
    in
    close ();
    skip_trivia st
  | Some _ | None -> ()

let lex_number st =
  let start = st.pos in
  let startloc = loc_of st in
  while (match peek st with Some c -> is_digit c | None -> false) do advance st done;
  let is_float = ref false in
  (match peek st, peek2 st with
   | Some '.', Some c when is_digit c ->
     is_float := true;
     advance st;
     while (match peek st with Some c -> is_digit c | None -> false) do advance st done
   | Some '.', (Some _ | None) when not (peek2 st = Some '.') ->
     (* trailing dot as in "1." *)
     is_float := true;
     advance st
   | _ -> ());
  (match peek st with
   | Some ('e' | 'E') ->
     is_float := true;
     advance st;
     (match peek st with Some ('+' | '-') -> advance st | _ -> ());
     while (match peek st with Some c -> is_digit c | None -> false) do advance st done
   | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  let single =
    match peek st with
    | Some ('f' | 'F') ->
      advance st;
      true
    | _ -> false
  in
  if !is_float || single then
    match float_of_string_opt text with
    | Some f -> Token.FLOAT_LIT (f, single)
    | None -> raise (Error (startloc, "malformed float literal: " ^ text))
  else
    match int_of_string_opt text with
    | Some n -> Token.INT_LIT n
    | None -> raise (Error (startloc, "malformed int literal: " ^ text))

let lex_pragma st =
  (* at '#': expect "pragma", capture rest of line *)
  let startloc = loc_of st in
  advance st;
  let start = st.pos in
  while (match peek st with Some c -> is_alpha c | None -> false) do advance st done;
  let word = String.sub st.src start (st.pos - start) in
  if word <> "pragma" then raise (Error (startloc, "expected #pragma, got #" ^ word));
  let rest_start = st.pos in
  while peek st <> None && peek st <> Some '\n' do advance st done;
  let text = String.trim (String.sub st.src rest_start (st.pos - rest_start)) in
  Token.PRAGMA text

let next_token st =
  skip_trivia st;
  let loc = loc_of st in
  let tok =
    match peek st with
    | None -> Token.EOF
    | Some c when is_digit c -> lex_number st
    | Some c when is_alpha c ->
      let start = st.pos in
      while (match peek st with Some c -> is_alnum c | None -> false) do advance st done;
      let word = String.sub st.src start (st.pos - start) in
      (match keyword_of word with Some kw -> kw | None -> Token.IDENT word)
    | Some '#' -> lex_pragma st
    | Some c ->
      let two tok = advance st; advance st; tok in
      let one tok = advance st; tok in
      (match c, peek2 st with
       | '&', Some '&' -> two Token.AMPAMP
       | '|', Some '|' -> two Token.BARBAR
       | '<', Some '=' -> two Token.LE
       | '>', Some '=' -> two Token.GE
       | '=', Some '=' -> two Token.EQEQ
       | '!', Some '=' -> two Token.NE
       | '+', Some '=' -> two Token.PLUSEQ
       | '-', Some '=' -> two Token.MINUSEQ
       | '*', Some '=' -> two Token.STAREQ
       | '/', Some '=' -> two Token.SLASHEQ
       | '+', Some '+' -> two Token.PLUSPLUS
       | '-', Some '-' -> two Token.MINUSMINUS
       | '(', _ -> one Token.LPAREN
       | ')', _ -> one Token.RPAREN
       | '{', _ -> one Token.LBRACE
       | '}', _ -> one Token.RBRACE
       | '[', _ -> one Token.LBRACKET
       | ']', _ -> one Token.RBRACKET
       | ';', _ -> one Token.SEMI
       | ',', _ -> one Token.COMMA
       | '?', _ -> one Token.QUESTION
       | ':', _ -> one Token.COLON
       | '+', _ -> one Token.PLUS
       | '-', _ -> one Token.MINUS
       | '*', _ -> one Token.STAR
       | '/', _ -> one Token.SLASH
       | '%', _ -> one Token.PERCENT
       | '<', _ -> one Token.LT
       | '>', _ -> one Token.GT
       | '=', _ -> one Token.ASSIGN
       | '!', _ -> one Token.BANG
       | '&', _ -> one Token.AMP
       | _ -> raise (Error (loc, Printf.sprintf "unexpected character %C" c)))
  in
  (tok, loc)

let tokenize ?(file = "<string>") src =
  let st = { src; file; pos = 0; line = 1; bol = 0 } in
  let rec loop acc =
    let (tok, _) as t = next_token st in
    if tok = Token.EOF then List.rev (t :: acc) else loop (t :: acc)
  in
  loop []
