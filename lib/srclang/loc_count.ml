let is_code_line line =
  let t = String.trim line in
  t <> "" && not (String.length t >= 2 && t.[0] = '/' && t.[1] = '/')

let count_text text =
  String.split_on_char '\n' text |> List.filter is_code_line |> List.length

let program_loc p = count_text (Pretty.program_to_string p)

let added_loc ~reference ~design = program_loc design - program_loc reference

let added_pct ~reference ~design =
  let ref_loc = program_loc reference in
  if ref_loc = 0 then 0.0
  else float_of_int (added_loc ~reference ~design) /. float_of_int ref_loc *. 100.0
