(** Tokens produced by the mini-C++ lexer. *)

type t =
  | INT_LIT of int
  | FLOAT_LIT of float * bool  (** value, [true] when suffixed with [f] (single precision) *)
  | IDENT of string
  | KW_VOID | KW_BOOL | KW_INT | KW_FLOAT | KW_DOUBLE
  | KW_IF | KW_ELSE | KW_FOR | KW_WHILE | KW_RETURN
  | KW_CONST | KW_TRUE | KW_FALSE | KW_RESTRICT | KW_BREAK | KW_CONTINUE
  | PRAGMA of string  (** full pragma text after [#pragma], up to end of line *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | QUESTION | COLON
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMPAMP | BARBAR | BANG | AMP
  | LT | LE | GT | GE | EQEQ | NE
  | ASSIGN | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ
  | PLUSPLUS | MINUSMINUS
  | EOF

val to_string : t -> string
(** Human-readable rendering used in parse-error messages. *)
