(** Abstract syntax tree of the mini-C++ subset.

    Every statement and expression node carries a unique integer id.  Ids are
    how the Artisan-style query results refer back into the tree and how the
    rewriter addresses nodes, mirroring the paper's "programmatic access to
    source code" (Fig. 2).  Use [fresh_id] when synthesising nodes, or the
    combinators in {!Builder}. *)

type ty =
  | Tvoid
  | Tbool
  | Tint
  | Tfloat   (** 32-bit *)
  | Tdouble  (** 64-bit *)
  | Tptr of ty

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type assign_op = Set | AddEq | SubEq | MulEq | DivEq

type expr = { eid : int; eloc : Loc.t; edesc : expr_desc }

and expr_desc =
  | Int_lit of int
  | Float_lit of float * bool  (** value, [true] = single-precision literal *)
  | Bool_lit of bool
  | Var of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list
  | Index of expr * expr       (** [a\[i\]] — base is an expression of pointer type *)
  | Cast of ty * expr
  | Cond of expr * expr * expr (** [c ? a : b] *)

type pragma = { pname : string; pargs : string list }
(** [#pragma pname pargs...], e.g. [{pname="omp"; pargs=\["parallel"; "for"\]}]
    or [{pname="unroll"; pargs=\["4"\]}]. *)

(** Canonical counted loop: [for (int i = lo; i < hi; i += step)].  The
    parser normalises C loop syntax ([i++], [i += k], [<] or [<=]) into this
    form, which is what the dependence and trip-count analyses consume. *)
type for_header = {
  index : string;
  lo : expr;
  cmp : cmp_op;
  hi : expr;
  step : expr;
}

and cmp_op = CLt | CLe

type stmt = { sid : int; sloc : Loc.t; pragmas : pragma list; sdesc : stmt_desc }

and stmt_desc =
  | Decl of decl
  | Assign of expr * assign_op * expr  (** lhs (Var/Index) op= rhs *)
  | Expr_stmt of expr                  (** expression evaluated for effects *)
  | If of expr * block * block
  | For of for_header * block
  | While of expr * block
  | Return of expr option
  | Break
  | Continue
  | Scope of block                     (** explicit nested { ... } *)

and decl = {
  dty : ty;
  dname : string;
  dinit : expr option;
  darray : expr option;  (** [Some n] for a stack/heap array [double a\[n\]] *)
  dconst : bool;
}

and block = stmt list

type param = { prm_name : string; prm_ty : ty; prm_restrict : bool; prm_const : bool }

type func = {
  fname : string;
  fret : ty;
  fparams : param list;
  fbody : block;
  floc : Loc.t;
}

type global =
  | Gfunc of func
  | Gdecl of decl

type program = { pglobals : global list }

val fresh_id : unit -> int
(** Next unique node id (shared counter for statements and expressions). *)

val mk_expr : ?loc:Loc.t -> expr_desc -> expr
val mk_stmt : ?loc:Loc.t -> ?pragmas:pragma list -> stmt_desc -> stmt

val funcs : program -> func list
(** All function definitions, in source order. *)

val find_func : program -> string -> func option

val globals_decls : program -> decl list

val replace_func : program -> func -> program
(** Replace the function with the same name; append if absent. *)

val equal_ty : ty -> ty -> bool

val is_float_ty : ty -> bool
(** [Tfloat] or [Tdouble]. *)

val sizeof : ty -> int
(** Size in bytes of a scalar of this type (pointers count as 8). *)

val ty_to_string : ty -> string
(** C syntax, e.g. ["double*"]. *)

val binop_to_string : binop -> string
val unop_to_string : unop -> string
val assign_op_to_string : assign_op -> string

val expr_children : expr -> expr list
(** Direct sub-expressions. *)

val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a
(** Pre-order fold over an expression and its descendants. *)

val stmt_sub_blocks : stmt -> block list
(** Direct sub-blocks of a statement (both arms for [If]). *)

val stmt_exprs : stmt -> expr list
(** Top-level expressions appearing directly in the statement (not
    recursing into sub-blocks).  For [For] this is [lo; hi; step]. *)

val refresh_expr : expr -> expr
(** Deep copy with fresh ids on every node; use when the same expression is
    spliced into the tree more than once. *)

val refresh_stmt : stmt -> stmt
(** Deep copy of a statement subtree with fresh ids. *)

val renumber : program -> program
(** Assign fresh ids to every node; used after textual round-trips to keep
    ids unique across programs. *)

val max_id : program -> int
(** Largest statement/expression id appearing in the program (0 when it
    has none). *)

val reserve_ids : int -> unit
(** Advance the shared id counter so every future {!fresh_id} exceeds
    [n].  Used when a program built by another process enters this one
    (e.g. an artifact loaded from the on-disk evaluation cache): without
    the reservation, later transforms could mint ids that collide with
    the loaded program's. *)
