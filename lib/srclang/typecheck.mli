(** Type checking and scope utilities for the mini-C++ subset.

    Besides whole-program checking, this module exposes the scope queries the
    design-flow tasks need: expression typing under an environment, free
    variables of a code region, and the variables visible at a given
    statement — the ingredients of hotspot extraction (outlining a loop into
    a kernel function). *)

type error = { loc : Loc.t; msg : string }

exception Type_error of error

type fsig = { sig_ret : Ast.ty; sig_args : Ast.ty list }

val intrinsics : (string * fsig) list
(** Built-in functions available to source programs: double and
    single-precision math ([sqrt]/[sqrtf], [sin], [cos], [exp], [log],
    [pow], [fabs], [fmin], [fmax], [floor], [tanh], [erf], ...), integer
    [abs]/[imin]/[imax], the deterministic [rand01()] generator and
    [print_int]/[print_float] output. *)

val intrinsic_sig : string -> fsig option

val is_intrinsic : string -> bool

type env
(** Typing environment: globals, function signatures, local scope. *)

val env_of_program : Ast.program -> env
(** Environment with all globals and function signatures in scope. *)

val env_for_func : Ast.program -> Ast.func -> env
(** [env_of_program] extended with the function's parameters. *)

val bind : env -> string -> Ast.ty -> env

val lookup_var : env -> string -> Ast.ty option

val lookup_func : env -> string -> fsig option
(** User-defined functions first, then intrinsics. *)

val expr_ty : env -> Ast.expr -> Ast.ty
(** Type of an expression. @raise Type_error on ill-typed expressions. *)

val check_program : Ast.program -> (unit, error list) result
(** Check every function body; collects all errors instead of stopping at
    the first. *)

val check_exn : Ast.program -> unit
(** Like {!check_program} but raises the first error. *)

val free_vars_block : Ast.block -> string list
(** Variables read or written in the block but not declared inside it, in
    first-use order.  Loop indices of loops inside the block are not free. *)

val free_vars_stmt : Ast.stmt -> string list

val scope_at : Ast.program -> Ast.func -> int -> (string * Ast.ty) list
(** [scope_at prog f sid] is the list of variables visible just before the
    statement with id [sid] inside [f] (globals, parameters, and locals
    declared earlier, innermost last).  @raise Not_found if [sid] does not
    occur in [f]. *)

val numeric_join : Ast.ty -> Ast.ty -> Ast.ty option
(** Usual arithmetic conversions: the wider of two numeric types. *)
