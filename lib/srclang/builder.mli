(** Combinators for synthesising AST fragments.

    Code generators (HIP/oneAPI/OpenMP management code) build host and
    kernel functions programmatically; these helpers keep that code close to
    the shape of the C++ they emit. *)

open Ast

val ilit : int -> expr

val flit : float -> expr
(** Double literal. *)

val flit32 : float -> expr
(** Single-precision literal (with [f] suffix). *)

val blit : bool -> expr
val var : string -> expr
val neg : expr -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( ==: ) : expr -> expr -> expr
val and_ : expr -> expr -> expr
val or_ : expr -> expr -> expr
val call : string -> expr list -> expr

val idx : expr -> expr -> expr
(** [idx a i] is [a\[i\]]. *)

val idx2 : string -> expr -> expr
(** [idx2 "a" i] is [a\[i\]]. *)

val cast : ty -> expr -> expr
val cond : expr -> expr -> expr -> expr

val decl : ?const:bool -> ty -> string -> expr -> stmt
val decl_array : ty -> string -> expr -> stmt
val decl_uninit : ty -> string -> stmt
val assign : expr -> expr -> stmt
val add_assign : expr -> expr -> stmt
val expr_stmt : expr -> stmt
val if_ : expr -> block -> block -> stmt
val for_ : ?pragmas:pragma list -> string -> lo:expr -> hi:expr -> ?step:expr -> block -> stmt
(** Canonical [for (int i = lo; i < hi; i += step)]; default step 1. *)

val while_ : expr -> block -> stmt
val return_ : expr option -> stmt
val scope : block -> stmt

val func : ?ret:ty -> string -> param list -> block -> func
val param : ?restrict_:bool -> ?const:bool -> ty -> string -> param

val pragma : string -> string list -> pragma
