type 'p evaluated = { point : 'p; score : float }

let sweep_all points ~eval =
  (* one future per point, settled in input order; spawning is cheap
     enough that even 1–2 point sweeps (constant in nested DSE calls) no
     longer warrant a serial fast path, and the futures let a sweep
     overlap with sibling branch paths instead of barriering on them *)
  points
  |> List.map (fun point -> Util.Pool.Fut.spawn (fun () -> { point; score = eval point }))
  |> Util.Pool.Fut.await_all

let best evaluated =
  let pick acc c =
    if not (Float.is_finite c.score) then acc
    else
      match acc with
      | None -> Some c
      | Some b -> if c.score < b.score then Some c else acc
  in
  List.fold_left pick None evaluated

let sweep points ~eval = best (sweep_all points ~eval)

let doubling_until ~init ~max ~feasible =
  if init <= 0 then invalid_arg "Search.doubling_until: init must be positive";
  if init > max || not (feasible init) then None
  else begin
    let rec grow n =
      let next = 2 * n in
      if next > max then n else if feasible next then grow next else n
    in
    Some (grow init)
  end

let powers_of_two ~lo ~hi =
  if lo <= 0 then invalid_arg "Search.powers_of_two: lo must be positive";
  let rec collect n acc = if n > hi then List.rev acc else collect (2 * n) (n :: acc) in
  collect lo []
