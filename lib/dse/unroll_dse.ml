type result = {
  ud_program : Ast.program;
  ud_unroll : int option;
  ud_estimate : Fpga_model.estimate;
  ud_trace : (int * float) list;
}

let max_unroll = 1024

let run (spec : Device.fpga_spec) (ks : Kstatic.t) (kp : Kprofile.t) ~zero_copy p
    ~kernel_fn =
  let resources_for =
    Point_cache.resources ~tag:"fpga-unroll" (spec, Point_cache.stable_ks ~kp ks)
      (fun unroll ->
        Fpga_model.resources_of spec ks ~unroll)
  in
  let trace = ref [] in
  let feasible unroll =
    let r = resources_for unroll in
    trace := (unroll, r) :: !trace;
    r.Fpga_model.r_alm_frac <= Fpga_model.overmap_threshold
    && r.Fpga_model.r_dsp_frac <= Fpga_model.overmap_threshold
  in
  let unroll = Search.doubling_until ~init:1 ~max:max_unroll ~feasible in
  let factor = Option.value unroll ~default:1 in
  (* the doubling loop already evaluated the winner's resource report;
     hand it to the estimator instead of recomputing it *)
  let resources = List.assoc_opt factor !trace in
  let estimate =
    Fpga_model.estimate ?resources spec ks kp { Fpga_model.unroll = factor; zero_copy }
  in
  let program =
    match unroll with
    | Some factor -> Unroll.set_outer_unroll p ~kernel:kernel_fn ~factor
    | None -> p
  in
  {
    ud_program = program;
    ud_unroll = unroll;
    ud_estimate = estimate;
    ud_trace =
      List.rev_map (fun (u, r) -> (u, r.Fpga_model.r_alm_frac)) !trace;
  }
