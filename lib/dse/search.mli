(** Generic design-space exploration strategies.

    The paper's DSE tasks use two shapes: an exhaustive sweep over a small
    discrete space (blocksize, thread counts) minimising estimated time,
    and the doubling loop of Fig. 2 that grows a factor until a resource
    report flags overmapping. *)

type 'p evaluated = { point : 'p; score : float }

val sweep : 'p list -> eval:('p -> float) -> 'p evaluated option
(** Point with minimal finite score; [None] when the space is empty or no
    point evaluates finite. *)

val sweep_all : 'p list -> eval:('p -> float) -> 'p evaluated list
(** Every point with its score, in input order (for reports).  Each
    point is spawned as a {!Util.Pool.Fut} task, so [eval] must be
    pure; with [--jobs 1] the points evaluate serially in input order. *)

val best : 'p evaluated list -> 'p evaluated option
(** Minimal finite-score element of an evaluated sweep (first wins on
    ties), without re-running any evaluation. *)

val doubling_until : init:int -> max:int -> feasible:(int -> bool) -> int option
(** Largest power-of-two multiple of [init] (init, 2·init, 4·init, ...)
    not exceeding [max] for which [feasible] holds — the Fig. 2 loop that
    doubles the unroll factor until the design overmaps.  [None] when even
    [init] is infeasible or exceeds [max]. *)

val powers_of_two : lo:int -> hi:int -> int list
(** [lo; 2lo; ...] up to [hi] inclusive (lo must be positive). *)
