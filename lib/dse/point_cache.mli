(** Content-addressed caching of DSE point evaluations.

    Every DSE strategy evaluates an analytic device model over a small
    integer space (blocksize, thread count, unroll factor).  The model
    inputs — device spec, kernel features, kernel profile, base
    parameters — are fixed for one DSE invocation, so each wrapper
    digests them once (the {e context}) and keys individual points as
    [context.point].  Identical sweeps across branch arms, suite runs
    and warm processes then replay instead of re-evaluating.

    Both wrappers return the evaluation function unchanged while the
    cache is disabled ({!Cache.enabled}), so [--cache off] pays nothing
    and stays byte-identical.  Evaluations must be pure and contexts
    closure-free (they are marshalled to build the key). *)

val stable_kp : Kprofile.t -> Kprofile.t
(** Sid-free copy of a kernel profile for use inside contexts: statement
    ids are allocation-order-dependent and differ between cold and warm
    processes, so they are replaced by positional information (inner
    loops by their index, the outer sid and verdict sid by 0, baseline
    per-loop statistics by sorted sid-free lists). *)

val stable_ks : kp:Kprofile.t -> Kstatic.t -> Kstatic.t
(** Same for static kernel features; the serial-inner link is rewritten
    to the index of the matching entry in [kp]'s inner-loop list. *)

val scores : tag:string -> 'ctx -> (int -> float) -> int -> float
(** [scores ~tag ctx eval] caches a score-valued evaluation under the
    namespace [tag] (e.g. ["gpu-blocksize"]). *)

val resources :
  tag:string ->
  'ctx ->
  (int -> Fpga_model.resources) ->
  int ->
  Fpga_model.resources
(** Same for FPGA resource reports (the unroll DSE's doubling loop). *)

val stats : unit -> Cache.stats
(** Combined counters of both point-cache instances. *)
