(** Per-device "Blocksize DSE" (GPU optimisation task, Fig. 4).

    Sweeps power-of-two blocksizes through the GPU occupancy/time model for
    a specific device ("the launch parameters that maximise occupancy and
    minimise latency ... are likely different for the same computation
    executed on different GPUs") and sets the launch annotation. *)

type result = {
  bd_program : Ast.program;
  bd_blocksize : int;
  bd_estimate : Gpu_model.estimate;
  bd_sweep : (int * float) list;  (** blocksize -> estimated seconds *)
}

val run :
  Device.gpu_spec ->
  Kstatic.t ->
  Kprofile.t ->
  base:Gpu_model.params ->
  Ast.program ->
  launch_fn:string ->
  result
