type result = {
  bd_program : Ast.program;
  bd_blocksize : int;
  bd_estimate : Gpu_model.estimate;
  bd_sweep : (int * float) list;
}

let run (spec : Device.gpu_spec) (ks : Kstatic.t) (kp : Kprofile.t) ~base p ~launch_fn =
  let candidates = Search.powers_of_two ~lo:32 ~hi:1024 in
  let eval =
    Point_cache.scores ~tag:"gpu-blocksize"
      (spec, Point_cache.stable_ks ~kp ks, Point_cache.stable_kp kp, base)
      (fun blocksize ->
        (Gpu_model.estimate spec ks kp { base with Gpu_model.blocksize })
          .Gpu_model.ge_time_s)
  in
  let sweep = Search.sweep_all candidates ~eval in
  let best =
    match Search.best sweep with
    | Some b -> b.Search.point
    | None -> 256
  in
  {
    bd_program = Hip.set_blocksize p ~launch_fn best;
    bd_blocksize = best;
    bd_estimate = Gpu_model.estimate spec ks kp { base with Gpu_model.blocksize = best };
    bd_sweep = List.map (fun (c : int Search.evaluated) -> (c.point, c.score)) sweep;
  }
