type result = {
  td_program : Ast.program;
  td_threads : int;
  td_estimate : Cpu_model.estimate;
  td_sweep : (int * float) list;
}

let run (spec : Device.cpu_spec) (kp : Kprofile.t) p ~kernel =
  let candidates = Search.powers_of_two ~lo:1 ~hi:spec.Device.cores in
  let candidates =
    if List.mem spec.Device.cores candidates then candidates
    else candidates @ [ spec.Device.cores ]
  in
  let eval =
    Point_cache.scores ~tag:"cpu-threads" (spec, Point_cache.stable_kp kp)
      (fun threads ->
        (Cpu_model.openmp spec ~threads kp).Cpu_model.ce_time_s)
  in
  let sweep = Search.sweep_all candidates ~eval in
  let best =
    match Search.best sweep with
    | Some b -> b.Search.point
    | None -> spec.Device.cores
  in
  {
    td_program = Openmp.set_num_threads p ~kernel ~threads:best;
    td_threads = best;
    td_estimate = Cpu_model.openmp spec ~threads:best kp;
    td_sweep = List.map (fun (c : int Search.evaluated) -> (c.point, c.score)) sweep;
  }
