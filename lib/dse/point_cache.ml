module Score = Cache.Make (struct
  type value = float

  let kind = "dsept"

  let version = 1
end)

module Resources = Cache.Make (struct
  type value = Fpga_model.resources

  let kind = "dsefr"

  let version = 1
end)

(* The context (device spec, kernel features, profile, base params) is
   digested once per DSE invocation; each point then costs one small
   string key.  Contexts must be closure-free (they are marshalled). *)
(* No_sharing: the profile inside a context may be freshly computed or
   unmarshalled from the disk tier; structural serialization keeps the
   key independent of that provenance *)
let ctx_key ~tag ctx = Digest.string (Marshal.to_string (tag, ctx) [ Marshal.No_sharing ])

(* Kernel profiles and static features embed raw statement ids, which
   depend on this process's id-allocation history — stable within a run
   but not across cold/warm runs.  For context keys the ids are replaced
   by positional information: inner loops by their index in [kp_inner],
   the serial-inner link by the index of the matching profile entry, and
   the baseline run's sid-keyed statistics by sorted sid-free lists. *)
let inner_index (kp : Kprofile.t) sid =
  let rec go i = function
    | [] -> -1
    | (il : Kprofile.inner_loop) :: _ when il.Kprofile.il_sid = sid -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 kp.Kprofile.kp_inner

let stable_kp (kp : Kprofile.t) =
  let r = kp.Kprofile.kp_cpu_baseline_result in
  {
    kp with
    Kprofile.kp_outer_sid = 0;
    kp_inner =
      List.mapi
        (fun i il -> { il with Kprofile.il_sid = i })
        kp.Kprofile.kp_inner;
    kp_outer_verdict = { kp.Kprofile.kp_outer_verdict with Dependence.loop_sid = 0 };
    kp_cpu_baseline_result =
      {
        r with
        Machine.loop_stats =
          List.sort compare (List.map (fun (_, ls) -> (0, ls)) r.Machine.loop_stats);
        region_stats =
          List.sort compare
            (List.map
               (fun (rg, rs) ->
                 ((match rg with Machine.Rstmt _ -> Machine.Rstmt 0 | rg -> rg), rs))
               r.Machine.region_stats);
      };
  }

let stable_ks ~(kp : Kprofile.t) (ks : Kstatic.t) =
  {
    ks with
    Kstatic.ks_has_serial_inner =
      Option.map
        (fun is -> { is with Kstatic.is_sid = inner_index kp is.Kstatic.is_sid })
        ks.Kstatic.ks_has_serial_inner;
  }

let point_key ctx point = ctx ^ "." ^ string_of_int point

let h_point_seconds = Obs.Metrics.histogram "dse.point.seconds"

(* Every point evaluation runs inside a [Dse_point] span — with or
   without the cache — so traces show the sweep shape either way, and
   each observation lands in the dse.point.seconds histogram that the
   run ledger persists. *)
let spanned ~tag eval point =
  Obs.Trace.with_span
    ~attrs:[ ("point", Obs.Trace.Int point) ]
    ~name:tag ~kind:Obs.Trace.Dse_point
    (fun _ ->
      let t0 = Obs.Monotonic.now_s () in
      Fun.protect
        ~finally:(fun () ->
          Obs.Metrics.Histogram.observe h_point_seconds
            (Obs.Monotonic.now_s () -. t0))
        (fun () -> eval point))

let scores ~tag ctx eval =
  if not (Cache.enabled ()) then spanned ~tag eval
  else
    let ctx = ctx_key ~tag ctx in
    fun point ->
      spanned ~tag
        (fun point ->
          Score.find_or_compute ~key:(point_key ctx point) (fun () -> eval point))
        point

let resources ~tag ctx eval =
  if not (Cache.enabled ()) then spanned ~tag eval
  else
    let ctx = ctx_key ~tag ctx in
    fun point ->
      spanned ~tag
        (fun point ->
          Resources.find_or_compute ~key:(point_key ctx point) (fun () -> eval point))
        point

let stats () = Cache.(add_stats (Score.stats ()) (Resources.stats ()))
