(** "OMP Num. Threads DSE" (CPU optimisation task, Fig. 4).

    Sweeps thread counts through the CPU model and annotates the parallel
    loop with the best [num_threads] clause. *)

type result = {
  td_program : Ast.program;
  td_threads : int;
  td_estimate : Cpu_model.estimate;
  td_sweep : (int * float) list;  (** thread count -> estimated seconds *)
}

val run :
  Device.cpu_spec -> Kprofile.t -> Ast.program -> kernel:string -> result
