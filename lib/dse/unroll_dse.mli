(** Per-device "Unroll Until Overmap DSE" (FPGA optimisation task, Fig. 2
    and Fig. 4).

    Doubles the outer-loop unroll factor, querying the FPGA resource model
    ("run a partial compile ... check the report for estimated LUT usage")
    until utilisation would exceed 90 %, and annotates the kernel loop with
    the final factor.  When even unroll 1 overmaps, the design is reported
    unsynthesisable — the paper's Rush Larsen case. *)

type result = {
  ud_program : Ast.program;
  ud_unroll : int option;          (** [None]: overmapped at unroll 1 *)
  ud_estimate : Fpga_model.estimate;
  ud_trace : (int * float) list;   (** factor -> ALM fraction examined by the DSE *)
}

val run :
  Device.fpga_spec ->
  Kstatic.t ->
  Kprofile.t ->
  zero_copy:bool ->
  Ast.program ->
  kernel_fn:string ->
  result
