(** The interpreter: executes mini-C++ programs while accumulating the event
    counters and profiles that the paper's dynamic analyses need.

    This is the stand-in for "run the instrumented application natively":
    hotspot detection reads {!loop_stats}, trip-count analysis reads
    iteration counts, data-movement analysis reads per-region array traffic,
    and pointer-alias analysis reads the per-function alias record. *)

exception Runtime_error of Loc.t * string

exception Step_limit_exceeded

(** A profiled code region: a whole function body, or a single statement. *)
type region = Rfunc of string | Rstmt of int

type config = {
  seed : int;                          (** seed for the in-language [rand01()] *)
  overrides : (string * Value.t) list; (** global constants to override, e.g. workload size [N] *)
  profile_loops : bool;                (** per-loop inclusive cost and trip counts *)
  regions : region list;               (** regions to profile for counters + data in/out *)
  trace_aliases : bool;                (** record pointer-argument aliasing per function *)
  max_steps : int;                     (** statement budget; exceeding raises {!Step_limit_exceeded} *)
  entry : string;                      (** entry function, default ["main"] *)
}

val default_config : config
(** seed 42, no overrides, all profiling off, 400M-step budget, entry [main]. *)

(** Inclusive statistics of one loop statement (identified by stmt id). *)
type loop_stats = {
  ls_entries : int;      (** times the loop was entered *)
  ls_iterations : int;   (** total iterations across entries *)
  ls_work : float;       (** inclusive abstract CPU cycles ({!Counters.work}) *)
  ls_counters : Counters.t; (** inclusive event counts *)
}

(** Per-array traffic observed inside a region (summed over invocations). *)
type array_traffic = {
  at_name : string;
  at_elem_bytes : int;
  at_read_elems : int;    (** distinct elements read before first write *)
  at_written_elems : int; (** distinct elements written *)
}

type region_stats = {
  rs_invocations : int;
  rs_counters : Counters.t;
  rs_traffic : array_traffic list;
  rs_bytes_in : int;   (** bytes that must reach an accelerator running the region *)
  rs_bytes_out : int;  (** bytes it must send back *)
}

type result = {
  ret : Value.t option;
  output : string list;                       (** lines from [print_int]/[print_float] *)
  counters : Counters.t;                      (** whole-program events *)
  loop_stats : (int * loop_stats) list;       (** by loop stmt id, present when [profile_loops] *)
  region_stats : (region * region_stats) list;
  aliased_funcs : (string * bool) list;       (** function -> two pointer args shared a base in some call *)
  memory : Memory.t;                          (** final memory, for inspecting results *)
}

(** Interpreter backend: [`Vm] (the superinstruction VM) additionally lowers
    eligible canonical loops to a typed flat IR executed over unboxed
    register files with bounds-check elision, fused opcode pairs and batched
    step/counter accounting; [`Compiled] lowers the AST to OCaml closures in
    a one-shot pass before execution (slot-indexed frames, pre-resolved
    calls, block-batched step counting); [`Ast] is the reference
    tree-walker.  All three produce bit-identical observables. *)
type backend = [ `Ast | `Compiled | `Vm ]

val interp_version : int
(** Bumped whenever observable interpreter semantics change; memoization
    keys include it (together with the backend tag) so cached results from
    older interpreters are never replayed. *)

val backend_name : backend -> string

val backend_of_string : string -> backend option

val default_backend : unit -> backend
(** The backend used when {!run} is not given [?backend]; initially
    [`Vm]. *)

val set_default_backend : backend -> unit

(** Cumulative execution statistics across all {!run} calls (thread-safe). *)
type exec_stats = {
  exec_runs : int;      (** completed interpreter runs *)
  exec_steps : int;     (** total interpreted statements *)
  exec_seconds : float; (** total wall-clock seconds inside the interpreter *)
}

val exec_stats : unit -> exec_stats

val reset_exec_stats : unit -> unit

val planned_steps : unit -> int
(** Statements executed on the VM backend's planned fast path, cumulative
    across all runs in the process (backed by the [vm.steps.planned]
    metric).  [planned_steps () / exec_steps] is the VM's step coverage:
    the fraction of interpreted statements that ran as lowered loop-nest
    plans rather than closures. *)

val plan_bail_sites : unit -> (Loc.t * string) list
(** Planned loops that fell back to the closure path at runtime, as a
    sorted (root location, reason) set — reasons like ["budget"],
    ["bounds"], ["alias"], ["trip-count"], ["profiled"], ["region"].
    Deterministic at any [--jobs]: memoization makes the set of executed
    runs, and therefore the set of bail sites, schedule-independent. *)

val set_step_cap : int option -> unit
(** Arm ([Some n]) or clear ([None]) a process-wide cap on [max_steps]:
    while armed, every {!run} executes with [min config.max_steps n].
    Used by flow resilience policies to give tasks an interpreter step
    budget.  Sound with respect to memoization: a capped run that
    completes is identical to the uncapped run (the cap only decides
    whether {!Step_limit_exceeded} fires), so the cap is deliberately
    absent from cache keys — which also means a memoized result can be
    replayed without re-spending the steps that produced it. *)

val step_cap : unit -> int option
(** The currently armed cap, if any. *)

val run : ?config:config -> ?backend:backend -> Ast.program -> result
(** Execute the program from its entry function.
    @raise Runtime_error on dynamic errors (bounds, division by zero, ...)
    @raise Step_limit_exceeded when [max_steps] is exhausted. *)

val find_loop_stats : result -> int -> loop_stats option

val find_region_stats : result -> region -> region_stats option
