type prec = Sp | Dp

type ptr = { base : int; offset : int }

type t =
  | Vint of int
  | Vbool of bool
  | Vfloat of prec * float
  | Vptr of ptr

let zero_of = function
  | Ast.Tint -> Vint 0
  | Ast.Tbool -> Vbool false
  | Ast.Tfloat -> Vfloat (Sp, 0.0)
  | Ast.Tdouble -> Vfloat (Dp, 0.0)
  | Ast.Tptr _ -> Vptr { base = -1; offset = 0 }
  | Ast.Tvoid -> invalid_arg "Value.zero_of: void"

let to_float = function
  | Vint n -> float_of_int n
  | Vbool b -> if b then 1.0 else 0.0
  | Vfloat (_, f) -> f
  | Vptr _ -> invalid_arg "Value.to_float: pointer"

let to_int = function
  | Vint n -> n
  | Vbool b -> if b then 1 else 0
  | Vfloat (_, f) -> int_of_float f
  | Vptr _ -> invalid_arg "Value.to_int: pointer"

let truth = function
  | Vbool b -> b
  | Vint n -> n <> 0
  | Vfloat (_, f) -> f <> 0.0
  | Vptr _ -> invalid_arg "Value.truth: pointer"

let demote f = Int32.float_of_bits (Int32.bits_of_float f)

let prec_of_ty = function
  | Ast.Tfloat -> Sp
  | Ast.Tdouble | Ast.Tint | Ast.Tbool | Ast.Tptr _ | Ast.Tvoid -> Dp

let coerce ty v =
  match ty, v with
  | Ast.Tint, _ -> Vint (to_int v)
  | Ast.Tbool, _ -> Vbool (truth v)
  | Ast.Tfloat, _ -> Vfloat (Sp, demote (to_float v))
  | Ast.Tdouble, _ -> Vfloat (Dp, to_float v)
  | Ast.Tptr _, Vptr p -> Vptr p
  | Ast.Tptr _, _ -> invalid_arg "Value.coerce: non-pointer to pointer"
  | Ast.Tvoid, _ -> invalid_arg "Value.coerce: void"

let to_string = function
  | Vint n -> string_of_int n
  | Vbool b -> string_of_bool b
  | Vfloat (Sp, f) -> Printf.sprintf "%gf" f
  | Vfloat (Dp, f) -> Printf.sprintf "%g" f
  | Vptr p -> Printf.sprintf "<ptr %d+%d>" p.base p.offset
