type storage =
  | Sfloat of float array  (* float and double arrays; element type disambiguates *)
  | Sint of int array

type entry = { storage : storage; ety : Ast.ty; ename : string }

type t = { mutable entries : entry array; mutable count : int }

let create () = { entries = [||]; count = 0 }

let grow t =
  let cap = Array.length t.entries in
  if t.count >= cap then begin
    let ncap = max 8 (2 * cap) in
    let fresh =
      Array.make ncap { storage = Sint [||]; ety = Ast.Tint; ename = "<empty>" }
    in
    Array.blit t.entries 0 fresh 0 cap;
    t.entries <- fresh
  end

let alloc t ~name ~elem_ty n =
  if n < 0 then invalid_arg "Memory.alloc: negative length";
  let storage =
    match elem_ty with
    | Ast.Tfloat | Ast.Tdouble -> Sfloat (Array.make n 0.0)
    | Ast.Tint | Ast.Tbool -> Sint (Array.make n 0)
    | Ast.Tvoid | Ast.Tptr _ ->
      invalid_arg ("Memory.alloc: unsupported element type for " ^ name)
  in
  grow t;
  let base = t.count in
  t.entries.(base) <- { storage; ety = elem_ty; ename = name };
  t.count <- base + 1;
  { Value.base; offset = 0 }

let entry t base =
  if base < 0 || base >= t.count then failwith "Memory: dangling pointer";
  t.entries.(base)

let length t base =
  match (entry t base).storage with
  | Sfloat a -> Array.length a
  | Sint a -> Array.length a

let elem_ty t base = (entry t base).ety

let elem_bytes t base = Ast.sizeof (entry t base).ety

let name t base = (entry t base).ename

let check t (ptr : Value.ptr) i =
  let e = entry t ptr.base in
  let idx = ptr.offset + i in
  let len = match e.storage with Sfloat a -> Array.length a | Sint a -> Array.length a in
  if idx < 0 || idx >= len then
    failwith
      (Printf.sprintf "array %s: index %d out of bounds [0,%d)" e.ename idx len);
  (e, idx)

let load t ptr i =
  let e, idx = check t ptr i in
  match e.storage, e.ety with
  | Sfloat a, Ast.Tfloat -> Value.Vfloat (Value.Sp, a.(idx))
  | Sfloat a, _ -> Value.Vfloat (Value.Dp, a.(idx))
  | Sint a, Ast.Tbool -> Value.Vbool (a.(idx) <> 0)
  | Sint a, _ -> Value.Vint a.(idx)

let store t ptr i v =
  let e, idx = check t ptr i in
  match e.storage, e.ety with
  | Sfloat a, Ast.Tfloat -> a.(idx) <- Value.demote (Value.to_float v)
  | Sfloat a, _ -> a.(idx) <- Value.to_float v
  | Sint a, Ast.Tbool -> a.(idx) <- (if Value.truth v then 1 else 0)
  | Sint a, _ -> a.(idx) <- Value.to_int v

(* Non-allocating equivalents of [to_float (load ...)], [to_int (load ...)],
   [store ... (Vfloat ...)] and [store ... (Vint ...)], for the compiled
   backend's typed fast paths.  Each case mirrors the boxed pipeline above
   exactly, including single-precision demotion and bool normalisation. *)

let load_float t ptr i =
  let e, idx = check t ptr i in
  match e.storage, e.ety with
  | Sfloat a, _ -> a.(idx)
  | Sint a, Ast.Tbool -> if a.(idx) <> 0 then 1.0 else 0.0
  | Sint a, _ -> float_of_int a.(idx)

let load_int t ptr i =
  let e, idx = check t ptr i in
  match e.storage, e.ety with
  | Sfloat a, _ -> int_of_float a.(idx)
  | Sint a, Ast.Tbool -> if a.(idx) <> 0 then 1 else 0
  | Sint a, _ -> a.(idx)

let store_float t ptr i x =
  let e, idx = check t ptr i in
  match e.storage, e.ety with
  | Sfloat a, Ast.Tfloat -> a.(idx) <- Value.demote x
  | Sfloat a, _ -> a.(idx) <- x
  | Sint a, Ast.Tbool -> a.(idx) <- (if x <> 0.0 then 1 else 0)
  | Sint a, _ -> a.(idx) <- int_of_float x

let store_int t ptr i n =
  let e, idx = check t ptr i in
  match e.storage, e.ety with
  | Sfloat a, Ast.Tfloat -> a.(idx) <- Value.demote (float_of_int n)
  | Sfloat a, _ -> a.(idx) <- float_of_int n
  | Sint a, Ast.Tbool -> a.(idx) <- (if n <> 0 then 1 else 0)
  | Sint a, _ -> a.(idx) <- n

type raw = Rfloat of float array | Rint of int array

let raw t base =
  match (entry t base).storage with Sfloat a -> Rfloat a | Sint a -> Rint a

let array_count t = t.count

let to_float_array t base =
  match (entry t base).storage with
  | Sfloat a -> Array.copy a
  | Sint a -> Array.map float_of_int a
