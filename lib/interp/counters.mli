(** Event counters accumulated by the interpreter.

    The counters are the raw observables every dynamic analysis consumes:
    hotspot detection ranks loops by {!work} (abstract single-thread CPU
    cycles), arithmetic-intensity analysis divides flops by bytes, and the
    device models take flops/bytes to their rooflines. *)

type t = {
  mutable int_ops : int;
  mutable flops_sp_add : int;   (** single-precision add/sub *)
  mutable flops_sp_mul : int;
  mutable flops_sp_div : int;
  mutable flops_sp_special : int;  (** sqrt/exp/sin/... *)
  mutable flops_dp_add : int;
  mutable flops_dp_mul : int;
  mutable flops_dp_div : int;
  mutable flops_dp_special : int;
  mutable loads : int;
  mutable stores : int;
  mutable bytes_loaded : int;
  mutable bytes_stored : int;
  mutable branches : int;
  mutable calls : int;
  mutable steps : int;          (** statements executed *)
}

val create : unit -> t

val reset : t -> unit

val copy : t -> t

val diff : t -> t -> t
(** [diff now before] — per-field subtraction (snapshot deltas). *)

val add_into : t -> t -> unit
(** [add_into acc d] accumulates [d] into [acc]. *)

val scale : t -> int -> t
(** Per-field multiplication (used to extrapolate a measured profile to a
    larger workload with the same per-iteration mix). *)

val flops : t -> int
(** All floating-point operations. *)

val flops_sp : t -> int

val flops_dp : t -> int

val bytes : t -> int
(** Bytes loaded plus stored. *)

val work : t -> float
(** Abstract single-thread CPU cycle estimate: weighted sum of events
    (divisions and special functions cost more; memory operations carry a
    nominal cache-hit latency).  Used to rank hotspots, not as wall-clock. *)

val pp : Format.formatter -> t -> unit
