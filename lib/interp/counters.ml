type t = {
  mutable int_ops : int;
  mutable flops_sp_add : int;
  mutable flops_sp_mul : int;
  mutable flops_sp_div : int;
  mutable flops_sp_special : int;
  mutable flops_dp_add : int;
  mutable flops_dp_mul : int;
  mutable flops_dp_div : int;
  mutable flops_dp_special : int;
  mutable loads : int;
  mutable stores : int;
  mutable bytes_loaded : int;
  mutable bytes_stored : int;
  mutable branches : int;
  mutable calls : int;
  mutable steps : int;
}

let create () =
  {
    int_ops = 0;
    flops_sp_add = 0;
    flops_sp_mul = 0;
    flops_sp_div = 0;
    flops_sp_special = 0;
    flops_dp_add = 0;
    flops_dp_mul = 0;
    flops_dp_div = 0;
    flops_dp_special = 0;
    loads = 0;
    stores = 0;
    bytes_loaded = 0;
    bytes_stored = 0;
    branches = 0;
    calls = 0;
    steps = 0;
  }

let reset t =
  t.int_ops <- 0;
  t.flops_sp_add <- 0;
  t.flops_sp_mul <- 0;
  t.flops_sp_div <- 0;
  t.flops_sp_special <- 0;
  t.flops_dp_add <- 0;
  t.flops_dp_mul <- 0;
  t.flops_dp_div <- 0;
  t.flops_dp_special <- 0;
  t.loads <- 0;
  t.stores <- 0;
  t.bytes_loaded <- 0;
  t.bytes_stored <- 0;
  t.branches <- 0;
  t.calls <- 0;
  t.steps <- 0

let copy t = { t with int_ops = t.int_ops }

let diff now before =
  {
    int_ops = now.int_ops - before.int_ops;
    flops_sp_add = now.flops_sp_add - before.flops_sp_add;
    flops_sp_mul = now.flops_sp_mul - before.flops_sp_mul;
    flops_sp_div = now.flops_sp_div - before.flops_sp_div;
    flops_sp_special = now.flops_sp_special - before.flops_sp_special;
    flops_dp_add = now.flops_dp_add - before.flops_dp_add;
    flops_dp_mul = now.flops_dp_mul - before.flops_dp_mul;
    flops_dp_div = now.flops_dp_div - before.flops_dp_div;
    flops_dp_special = now.flops_dp_special - before.flops_dp_special;
    loads = now.loads - before.loads;
    stores = now.stores - before.stores;
    bytes_loaded = now.bytes_loaded - before.bytes_loaded;
    bytes_stored = now.bytes_stored - before.bytes_stored;
    branches = now.branches - before.branches;
    calls = now.calls - before.calls;
    steps = now.steps - before.steps;
  }

let add_into acc d =
  acc.int_ops <- acc.int_ops + d.int_ops;
  acc.flops_sp_add <- acc.flops_sp_add + d.flops_sp_add;
  acc.flops_sp_mul <- acc.flops_sp_mul + d.flops_sp_mul;
  acc.flops_sp_div <- acc.flops_sp_div + d.flops_sp_div;
  acc.flops_sp_special <- acc.flops_sp_special + d.flops_sp_special;
  acc.flops_dp_add <- acc.flops_dp_add + d.flops_dp_add;
  acc.flops_dp_mul <- acc.flops_dp_mul + d.flops_dp_mul;
  acc.flops_dp_div <- acc.flops_dp_div + d.flops_dp_div;
  acc.flops_dp_special <- acc.flops_dp_special + d.flops_dp_special;
  acc.loads <- acc.loads + d.loads;
  acc.stores <- acc.stores + d.stores;
  acc.bytes_loaded <- acc.bytes_loaded + d.bytes_loaded;
  acc.bytes_stored <- acc.bytes_stored + d.bytes_stored;
  acc.branches <- acc.branches + d.branches;
  acc.calls <- acc.calls + d.calls;
  acc.steps <- acc.steps + d.steps

let scale t k =
  {
    int_ops = k * t.int_ops;
    flops_sp_add = k * t.flops_sp_add;
    flops_sp_mul = k * t.flops_sp_mul;
    flops_sp_div = k * t.flops_sp_div;
    flops_sp_special = k * t.flops_sp_special;
    flops_dp_add = k * t.flops_dp_add;
    flops_dp_mul = k * t.flops_dp_mul;
    flops_dp_div = k * t.flops_dp_div;
    flops_dp_special = k * t.flops_dp_special;
    loads = k * t.loads;
    stores = k * t.stores;
    bytes_loaded = k * t.bytes_loaded;
    bytes_stored = k * t.bytes_stored;
    branches = k * t.branches;
    calls = k * t.calls;
    steps = k * t.steps;
  }

let flops_sp t = t.flops_sp_add + t.flops_sp_mul + t.flops_sp_div + t.flops_sp_special

let flops_dp t = t.flops_dp_add + t.flops_dp_mul + t.flops_dp_div + t.flops_dp_special

let flops t = flops_sp t + flops_dp t

let bytes t = t.bytes_loaded + t.bytes_stored

(* Nominal per-event cycle costs for a modern superscalar core; only the
   ratios matter for hotspot ranking. *)
let work t =
  float_of_int t.int_ops *. 0.5
  +. float_of_int (t.flops_sp_add + t.flops_dp_add) *. 0.5
  +. float_of_int (t.flops_sp_mul + t.flops_dp_mul) *. 0.5
  +. float_of_int (t.flops_sp_div + t.flops_dp_div) *. 8.0
  +. float_of_int (t.flops_sp_special + t.flops_dp_special) *. 15.0
  +. float_of_int (t.loads + t.stores) *. 1.0
  +. float_of_int t.branches *. 0.5

let pp fmt t =
  Format.fprintf fmt
    "@[<v>int_ops=%d flops_sp=%d flops_dp=%d@ loads=%d stores=%d bytes=%d@ \
     branches=%d calls=%d steps=%d work=%.0f@]"
    t.int_ops (flops_sp t) (flops_dp t) t.loads t.stores (bytes t) t.branches t.calls
    t.steps (work t)
