(* Guarded executor for {!Ir.fast_loop}: the superinstruction VM's hot
   path.  [Compile] intercepts a planned [For] right after initialising the
   index slot; [try_run] either executes the whole loop here — unboxed
   register files, flat op arrays, batched step/counter accounting, bounds
   checks verified once at the endpoints — or returns [false] without any
   observable effect, in which case the caller falls back to the reference
   closure loop.

   Soundness discipline: everything before "commit" below is read-only on
   interpreter state (it only scribbles on [prepared] scratch), so bailing
   out at any point — including via the [Failure] raised by dangling
   pointers inside [Memory] accessors — leaves the slow path to reproduce
   the walker's behaviour exactly.  After commit the loop runs to
   completion; the only exceptions it can raise ([Runtime_error] from
   checked accesses and division by zero) are raised at the exact point the
   walker would raise them, with identical state. *)

open Interp_rt

(* Where an external name lives in the enclosing compiled function. *)
type source = Slot of int | Global of Value.t ref

type prepared = {
  fl : Ir.fast_loop;
  index_slot : int;
  var_srcs : source array;  (* per fl_vars entry *)
  arr_srcs : source array;  (* per fl_arrs entry *)
  (* register files and per-entry scratch, reused across entries *)
  f : float array;
  n : int array;
  (* the array resolution below matches the pointers currently in the
     frame, so re-entries with unchanged pointers can skip phases 3/5 *)
  mutable avalid : bool;
  (* per-array resolution: base id, pointer offset, length, name, raw data *)
  abase : int array;
  aoff : int array;
  alen : int array;
  aname : string array;
  afdata : float array array;
  aidata : int array array;
  adem : bool array;  (* element type is float32: stores demote *)
  abool : bool array;  (* element type is bool: stores normalise *)
  (* per-cursor position/stride plus the resolved data array *)
  cpos : int array;
  cstep : int array;
  cfdata : float array array;
  cidata : int array array;
}

exception Bail

(* Magnitude caps under which the affine endpoint algebra below is exact
   (no wrap-around): |index|,|bound|,|base|,|offset| <= 2^40 and
   |coef| <= 2^20 keep every intermediate below 2^61 < max_int. *)
let cap = 1 lsl 40
let coef_cap = 1 lsl 20

let no_f : float array = [||]
let no_i : int array = [||]

let prepare (fl : Ir.fast_loop) ~(index_slot : int)
    ~(lookup : string -> (source * Ast.ty) option) : prepared option =
  let ok = ref true in
  let dummy = Slot 0 in
  let var_srcs =
    Array.map
      (fun (v : Ir.var) ->
        match lookup v.Ir.v_name with
        | Some (src, ty) ->
          let want =
            match v.Ir.v_kind with
            | Ir.Kint -> Ast.Tint
            | Ir.Kbool -> Ast.Tbool
            | Ir.Kfloat Ir.Psingle -> Ast.Tfloat
            | Ir.Kfloat Ir.Pdouble -> Ast.Tdouble
          in
          if ty = want then src else (ok := false; dummy)
        | None -> (ok := false; dummy))
      fl.Ir.fl_vars
  in
  let arr_srcs =
    Array.map
      (fun (a : Ir.arr) ->
        match lookup a.Ir.a_name with
        | Some (src, Ast.Tptr ety) when ety = Ir.ty_of_ety a.Ir.a_ety -> src
        | _ -> (ok := false; dummy))
      fl.Ir.fl_arrs
  in
  if not !ok then None
  else begin
    let na = max 1 (Array.length fl.Ir.fl_arrs) in
    let nc = max 1 (Array.length fl.Ir.fl_cursors) in
    Some
      {
        fl;
        index_slot;
        var_srcs;
        arr_srcs;
        f = Array.make (max 1 fl.Ir.fl_nf) 0.0;
        n = Array.make (max 1 fl.Ir.fl_ni) 0;
        avalid = false;
        abase = Array.make na (-1);
        aoff = Array.make na 0;
        alen = Array.make na 0;
        aname = Array.make na "";
        afdata = Array.make na no_f;
        aidata = Array.make na no_i;
        adem = Array.map (fun (a : Ir.arr) -> a.Ir.a_ety = Ir.Efloat32) fl.Ir.fl_arrs;
        abool = Array.map (fun (a : Ir.arr) -> a.Ir.a_ety = Ir.Ebool) fl.Ir.fl_arrs;
        cpos = Array.make nc 0;
        cstep = Array.make nc 0;
        cfdata = Array.make nc no_f;
        cidata = Array.make nc no_i;
      }
  end

(* Loop-invariant integer expressions; [Ivar] indexes the var table and is
   guaranteed int-kinded and unwritten by the lowering. *)
let rec ieval p (e : Ir.iexpr) : int =
  match e with
  | Ir.Iconst k -> k
  | Ir.Ivar v -> p.n.(p.fl.Ir.fl_vars.(v).Ir.v_reg)
  | Ir.Iadd (a, b) -> ieval p a + ieval p b
  | Ir.Isub (a, b) -> ieval p a - ieval p b
  | Ir.Imul (a, b) -> ieval p a * ieval p b
  | Ir.Ineg a -> -ieval p a

let m1 (m : Ir.m1) (x : float) : float =
  match m with
  | Ir.Msqrt -> sqrt x
  | Ir.Mrsqrt -> 1.0 /. sqrt x
  | Ir.Msin -> sin x
  | Ir.Mcos -> cos x
  | Ir.Mtan -> tan x
  | Ir.Mexp -> exp x
  | Ir.Mlog -> log x
  | Ir.Mtanh -> tanh x
  | Ir.Merf -> erf_approx x
  | Ir.Mfabs -> Float.abs x
  | Ir.Mfloor -> Float.floor x
  | Ir.Mceil -> Float.ceil x

let m2 (m : Ir.m2) (x : float) (y : float) : float =
  match m with
  | Ir.Mpow -> Float.pow x y
  | Ir.Mfmin -> Float.min x y
  | Ir.Mfmax -> Float.max x y

(* Batched counter update: [k] scaled by [times] into the live counters.
   Mirrors the per-operation count_* calls of the reference backends. *)
let add_scaled (t : Counters.t) (k : Ir.counts) (times : int) =
  t.Counters.int_ops <- t.Counters.int_ops + (k.Ir.k_int_ops * times);
  t.Counters.flops_sp_add <- t.Counters.flops_sp_add + (k.Ir.k_sp_add * times);
  t.Counters.flops_sp_mul <- t.Counters.flops_sp_mul + (k.Ir.k_sp_mul * times);
  t.Counters.flops_sp_div <- t.Counters.flops_sp_div + (k.Ir.k_sp_div * times);
  t.Counters.flops_sp_special <-
    t.Counters.flops_sp_special + (k.Ir.k_sp_special * times);
  t.Counters.flops_dp_add <- t.Counters.flops_dp_add + (k.Ir.k_dp_add * times);
  t.Counters.flops_dp_mul <- t.Counters.flops_dp_mul + (k.Ir.k_dp_mul * times);
  t.Counters.flops_dp_div <- t.Counters.flops_dp_div + (k.Ir.k_dp_div * times);
  t.Counters.flops_dp_special <-
    t.Counters.flops_dp_special + (k.Ir.k_dp_special * times);
  t.Counters.loads <- t.Counters.loads + (k.Ir.k_loads * times);
  t.Counters.stores <- t.Counters.stores + (k.Ir.k_stores * times);
  t.Counters.bytes_loaded <- t.Counters.bytes_loaded + (k.Ir.k_bytes_loaded * times);
  t.Counters.bytes_stored <- t.Counters.bytes_stored + (k.Ir.k_bytes_stored * times);
  t.Counters.branches <- t.Counters.branches + (k.Ir.k_branches * times)

let oob p (a : int) (idx : int) (loc : Loc.t) =
  runtime_error loc "array %s: index %d out of bounds [0,%d)" p.aname.(a) idx
    p.alen.(a)

(* Flat-array dispatch loop.  Registers and cursor positions are validated
   by construction (lowering) and by the guard (bounds), so the only
   runtime checks left are the ones the source semantics demand: checked
   accesses and integer division by zero. *)
let exec p st (ops : Ir.fop array) =
  let f = p.f and n = p.n in
  let len = Array.length ops in
  for k = 0 to len - 1 do
    match Array.unsafe_get ops k with
    | Ir.FConst (d, x) -> f.(d) <- x
    | Ir.IConst (d, x) -> n.(d) <- x
    | Ir.FMov (d, a) -> f.(d) <- f.(a)
    | Ir.IMov (d, a) -> n.(d) <- n.(a)
    | Ir.ItoF (d, a) -> f.(d) <- float_of_int n.(a)
    | Ir.FtoI (d, a) -> n.(d) <- int_of_float f.(a)
    | Ir.FtoB (d, a) -> n.(d) <- (if f.(a) <> 0.0 then 1 else 0)
    | Ir.ItoB (d, a) -> n.(d) <- (if n.(a) <> 0 then 1 else 0)
    | Ir.FDem (d, a) -> f.(d) <- Value.demote f.(a)
    | Ir.FAdd (d, a, b) -> f.(d) <- f.(a) +. f.(b)
    | Ir.FSub (d, a, b) -> f.(d) <- f.(a) -. f.(b)
    | Ir.FMul (d, a, b) -> f.(d) <- f.(a) *. f.(b)
    | Ir.FDiv (d, a, b) -> f.(d) <- f.(a) /. f.(b)
    | Ir.FNeg (d, a) -> f.(d) <- -.f.(a)
    | Ir.FAddS (d, a, b) -> f.(d) <- Value.demote (f.(a) +. f.(b))
    | Ir.FSubS (d, a, b) -> f.(d) <- Value.demote (f.(a) -. f.(b))
    | Ir.FMulS (d, a, b) -> f.(d) <- Value.demote (f.(a) *. f.(b))
    | Ir.FDivS (d, a, b) -> f.(d) <- Value.demote (f.(a) /. f.(b))
    | Ir.IAdd (d, a, b) -> n.(d) <- n.(a) + n.(b)
    | Ir.ISub (d, a, b) -> n.(d) <- n.(a) - n.(b)
    | Ir.IMul (d, a, b) -> n.(d) <- n.(a) * n.(b)
    | Ir.INeg (d, a) -> n.(d) <- -n.(a)
    | Ir.IDivZ (d, a, b, loc) ->
      let y = n.(b) in
      if y = 0 then runtime_error loc "integer division by zero";
      n.(d) <- n.(a) / y
    | Ir.IModZ (d, a, b, loc) ->
      let y = n.(b) in
      if y = 0 then runtime_error loc "modulo by zero";
      n.(d) <- n.(a) mod y
    | Ir.IAbs (d, a) -> n.(d) <- abs n.(a)
    | Ir.IMin (d, a, b) ->
      let x = n.(a) and y = n.(b) in
      n.(d) <- (if x < y then x else y)
    | Ir.IMax (d, a, b) ->
      let x = n.(a) and y = n.(b) in
      n.(d) <- (if x > y then x else y)
    | Ir.FMath1 (m, d, a) -> f.(d) <- m1 m f.(a)
    | Ir.FMath1S (m, d, a) -> f.(d) <- Value.demote (m1 m f.(a))
    | Ir.FMath2 (m, d, a, b) -> f.(d) <- m2 m f.(a) f.(b)
    | Ir.FMath2S (m, d, a, b) -> f.(d) <- Value.demote (m2 m f.(a) f.(b))
    | Ir.Rand d -> f.(d) <- Util.Prng.uniform st.prng
    | Ir.FLd (d, c) -> f.(d) <- p.cfdata.(c).(p.cpos.(c))
    | Ir.FSt (c, s) -> p.cfdata.(c).(p.cpos.(c)) <- f.(s)
    | Ir.FStDem (c, s) -> p.cfdata.(c).(p.cpos.(c)) <- Value.demote f.(s)
    | Ir.ILd (d, c) -> n.(d) <- p.cidata.(c).(p.cpos.(c))
    | Ir.ISt (c, s) -> p.cidata.(c).(p.cpos.(c)) <- n.(s)
    | Ir.IStB (c, s) -> p.cidata.(c).(p.cpos.(c)) <- (if n.(s) <> 0 then 1 else 0)
    | Ir.FLdCk (d, a, i, loc) ->
      let idx = p.aoff.(a) + n.(i) in
      if idx < 0 || idx >= p.alen.(a) then oob p a idx loc;
      f.(d) <- p.afdata.(a).(idx)
    | Ir.FStCk (a, i, s, loc) ->
      let idx = p.aoff.(a) + n.(i) in
      if idx < 0 || idx >= p.alen.(a) then oob p a idx loc;
      p.afdata.(a).(idx) <- (if p.adem.(a) then Value.demote f.(s) else f.(s))
    | Ir.ILdCk (d, a, i, loc) ->
      let idx = p.aoff.(a) + n.(i) in
      if idx < 0 || idx >= p.alen.(a) then oob p a idx loc;
      n.(d) <- p.aidata.(a).(idx)
    | Ir.IStCk (a, i, s, loc) ->
      let idx = p.aoff.(a) + n.(i) in
      if idx < 0 || idx >= p.alen.(a) then oob p a idx loc;
      p.aidata.(a).(idx) <-
        (if p.abool.(a) then (if n.(s) <> 0 then 1 else 0) else n.(s))
    | Ir.FLdSub (d, c, b) -> f.(d) <- p.cfdata.(c).(p.cpos.(c)) -. f.(b)
    | Ir.FLdSub2 (d, c1, c2) ->
      f.(d) <- p.cfdata.(c1).(p.cpos.(c1)) -. p.cfdata.(c2).(p.cpos.(c2))
    | Ir.FLdMul (d, c, b) -> f.(d) <- p.cfdata.(c).(p.cpos.(c)) *. f.(b)
    | Ir.FLdAdd (d, c, b) -> f.(d) <- p.cfdata.(c).(p.cpos.(c)) +. f.(b)
    | Ir.FMulAdd (d, a, b, c) -> f.(d) <- (f.(a) *. f.(b)) +. f.(c)
    | Ir.FAddMul (d, c, a, b) -> f.(d) <- f.(c) +. (f.(a) *. f.(b))
    | Ir.FSubMul (d, c, a, b) -> f.(d) <- f.(c) -. (f.(a) *. f.(b))
    | Ir.FRecip (d, a) -> f.(d) <- 1.0 /. f.(a)
    | Ir.FRsqrt (d, a) -> f.(d) <- 1.0 /. sqrt f.(a)
    | Ir.FAccSt (c, s) ->
      let q = p.cfdata.(c) and i = p.cpos.(c) in
      q.(i) <- q.(i) +. f.(s)
    | Ir.FMulAccSt (c, a, b) ->
      let q = p.cfdata.(c) and i = p.cpos.(c) in
      q.(i) <- q.(i) +. (f.(a) *. f.(b))
  done

let read_src (fr : Value.t array) = function
  | Slot i -> fr.(i)
  | Global r -> !r

let attempt p st (fr : Value.t array) (acc : loop_acc) =
  let fl = p.fl in
  let vars = fl.Ir.fl_vars in
  (* 1. load external scalars, strictly typed (mismatch -> slow path) *)
  for k = 0 to Array.length vars - 1 do
    let v = vars.(k) in
    match v.Ir.v_kind, read_src fr p.var_srcs.(k) with
    | Ir.Kint, Value.Vint x -> p.n.(v.Ir.v_reg) <- x
    | Ir.Kbool, Value.Vbool b -> p.n.(v.Ir.v_reg) <- (if b then 1 else 0)
    | Ir.Kfloat _, Value.Vfloat (_, x) -> p.f.(v.Ir.v_reg) <- x
    | _ -> raise Bail
  done;
  (* 2. trip count: the loop is [for i = lo; i </<= hi; i += step] with
     invariant hi/step, so the iteration space is decided here once *)
  let lo = match fr.(p.index_slot) with Value.Vint x -> x | _ -> raise Bail in
  let hi = ieval p fl.Ir.fl_hi in
  let step = ieval p fl.Ir.fl_step in
  if step < 1 || step > cap then raise Bail;
  if lo < -cap || lo > cap || hi < -cap || hi > cap then raise Bail;
  let d = hi - lo + (if fl.Ir.fl_cle then 1 else 0) in
  if d <= 0 then raise Bail;
  let m = (d - 1) / step in
  let n_iters = m + 1 in
  let last_i = lo + (m * step) in
  let total = n_iters * fl.Ir.fl_body_steps in
  (* the budget must survive the whole loop; otherwise the slow path runs
     and raises Step_limit_exceeded at the exact offending statement *)
  if st.steps_left <= total then raise Bail;
  (* 3. resolve arrays: exact element type, raw storage, name for errors.
     [Memory] bases are append-only — an entry's storage is written
     exactly once, at allocation — so a resolution stays valid for as
     long as the frame holds the same base+offset pointer.  Re-entries
     with unchanged pointers (the common case for an inner loop entered
     once per outer iteration) skip the accessor calls and the alias
     re-checks entirely. *)
  let arrs = fl.Ir.fl_arrs in
  let na = Array.length arrs in
  let same = ref p.avalid in
  for k = 0 to na - 1 do
    match read_src fr p.arr_srcs.(k) with
    | Value.Vptr ptr ->
      if ptr.Value.base <> p.abase.(k) || ptr.Value.offset <> p.aoff.(k) then
        same := false
    | _ -> raise Bail
  done;
  if not !same then begin
    p.avalid <- false;
    for k = 0 to na - 1 do
      let a = arrs.(k) in
      match read_src fr p.arr_srcs.(k) with
      | Value.Vptr ptr ->
        let base = ptr.Value.base in
        if Memory.elem_ty st.mem base <> Ir.ty_of_ety a.Ir.a_ety then raise Bail;
        let off = ptr.Value.offset in
        if off < -cap || off > cap then raise Bail;
        p.abase.(k) <- base;
        p.aoff.(k) <- off;
        p.alen.(k) <- Memory.length st.mem base;
        p.aname.(k) <- Memory.name st.mem base;
        (match Memory.raw st.mem base with
         | Memory.Rfloat data -> p.afdata.(k) <- data
         | Memory.Rint data -> p.aidata.(k) <- data)
      | _ -> raise Bail
    done;
    (* 3b. alias re-checks for the code-motion the lowering performed on
       statically distinct names: hoisted loads must not alias any stored
       array, promoted cells must not alias any other accessed array.
       The verdict depends only on the resolved bases, so it is part of
       the cached resolution. *)
    Array.iter
      (fun h ->
        let bh = p.abase.(h) in
        for k = 0 to na - 1 do
          if arrs.(k).Ir.a_stored && p.abase.(k) = bh then raise Bail
        done)
      fl.Ir.fl_hoisted;
    Array.iter
      (fun pr ->
        let bp = p.abase.(pr) in
        for k = 0 to na - 1 do
          if k <> pr && p.abase.(k) = bp then raise Bail
        done)
      fl.Ir.fl_promoted;
    p.avalid <- true
  end;
  (* 4. cursors: evaluate affine endpoints; in-bounds endpoints imply every
     iteration is in bounds (coef/base invariant, index monotone) *)
  let cursors = fl.Ir.fl_cursors in
  for k = 0 to Array.length cursors - 1 do
    let c = cursors.(k) in
    let coef = ieval p c.Ir.c_coef and base = ieval p c.Ir.c_base in
    if coef < -coef_cap || coef > coef_cap then raise Bail;
    if base < -cap || base > cap then raise Bail;
    let a = c.Ir.c_arr in
    let start = (coef * lo) + base + p.aoff.(a) in
    let last = (coef * last_i) + base + p.aoff.(a) in
    let lo_idx = if start < last then start else last in
    let hi_idx = if start < last then last else start in
    if lo_idx < 0 || hi_idx >= p.alen.(a) then raise Bail;
    p.cpos.(k) <- start;
    p.cstep.(k) <- coef * step;
    p.cfdata.(k) <- p.afdata.(a);
    p.cidata.(k) <- p.aidata.(a)
  done;
  (* ---- commit: from here on the fast path runs the loop to the end ---- *)
  if total > 0 then consume_steps st total;
  add_scaled st.counters fl.Ir.fl_per_iter n_iters;
  add_scaled st.counters fl.Ir.fl_final 1;
  acc.la_iterations <- acc.la_iterations + n_iters;
  exec p st fl.Ir.fl_prologue;
  let iref = match fl.Ir.fl_index_reg with Some r -> r | None -> -1 in
  let body = fl.Ir.fl_body in
  let ncur = Array.length cursors in
  let i = ref lo in
  for _ = 1 to n_iters do
    if iref >= 0 then p.n.(iref) <- !i;
    exec p st body;
    for c = 0 to ncur - 1 do
      p.cpos.(c) <- p.cpos.(c) + p.cstep.(c)
    done;
    i := !i + step
  done;
  exec p st fl.Ir.fl_epilogue;
  (* write back mutated scalars with the representation [Set] maintains *)
  for k = 0 to Array.length vars - 1 do
    let v = vars.(k) in
    if v.Ir.v_written then begin
      let value =
        match v.Ir.v_kind with
        | Ir.Kint -> Value.Vint p.n.(v.Ir.v_reg)
        | Ir.Kbool -> Value.Vbool (p.n.(v.Ir.v_reg) <> 0)
        | Ir.Kfloat Ir.Psingle -> Value.Vfloat (Value.Sp, p.f.(v.Ir.v_reg))
        | Ir.Kfloat Ir.Pdouble -> Value.Vfloat (Value.Dp, p.f.(v.Ir.v_reg))
      in
      match p.var_srcs.(k) with Slot s -> fr.(s) <- value | Global r -> r := value
    end
  done;
  (* leave the index slot where the failing loop test read it *)
  fr.(p.index_slot) <- Value.Vint (lo + (n_iters * step))

let try_run p st (fr : Value.t array) (acc : loop_acc) : bool =
  (* observation regions want per-access footprints: defer to the slow path *)
  if st.active_regions <> [] then false
  else
    try
      attempt p st fr acc;
      true
    with
    | Bail | Failure _ -> false
