(* Guarded executor for {!Ir.fast_loop}: the superinstruction VM's hot
   path.  [Compile] intercepts a planned [For] right after initialising the
   root index slot; [try_run] either executes the whole nest here — unboxed
   register files, flat op arrays, batched step/counter accounting with
   per-site taken counters, bounds checks verified once at the endpoints of
   every level — or returns [false] without any observable effect, in which
   case the caller falls back to the reference closure loop.

   Soundness discipline: everything before "commit" below is read-only on
   interpreter state (it only scribbles on [prepared] scratch), so bailing
   out at any point — including via the [Failure] raised by dangling
   pointers inside [Memory] accessors — leaves the slow path to reproduce
   the walker's behaviour exactly.  After commit the nest runs to
   completion; the only exceptions it can raise ([Runtime_error] from
   checked accesses and division by zero) are raised at the exact point the
   walker would raise them, with identical memory, output, and PRNG state
   (counters are added after the run, but counter state is unobservable on
   aborted runs — only the raise identity is).  The step budget is
   pre-checked against the statically largest possible total, so the
   post-run [consume_steps] can never raise. *)

open Interp_rt

(* Where an external name lives in the enclosing compiled function. *)
type source = Slot of int | Global of Value.t ref

type prepared = {
  fl : Ir.fast_loop;
  index_slot : int;
  var_srcs : source array;  (* per fl_vars entry *)
  arr_srcs : source array;  (* per fl_arrs entry *)
  (* register files and per-entry scratch, reused across entries *)
  f : float array;
  n : int array;
  (* nest shape caches *)
  iregs : int array;  (* per level: index register or -1 *)
  simple : Ir.fop array option;
      (* single-level, site-free, one-run body: tight-loop special case *)
  (* per-entry level scratch: trip count, lo, step *)
  trip : int array;
  llo : int array;
  lstep : int array;
  (* per-site scratch: taken counter, max executions, cost delta vector *)
  tk : int array;
  cntmax : int array;
  dsite : int array array;
  (* the array resolution below matches the pointers currently in the
     frame, so re-entries with unchanged pointers can skip phases 4/4b *)
  mutable avalid : bool;
  (* per-array resolution: base id, pointer offset, length, name, raw data *)
  abase : int array;
  aoff : int array;
  alen : int array;
  aname : string array;
  afdata : float array array;
  aidata : int array array;
  adem : bool array;  (* element type is float32: stores demote *)
  abool : bool array;  (* element type is bool: stores normalise *)
  (* per-cursor position, per-level coefficient values, resolved data *)
  cpos : int array;
  ccoef : int array array;
  cfdata : float array array;
  cidata : int array array;
  (* per level: cursors with a statically nonzero coefficient there, and
     their per-entry enter/step/exit position deltas *)
  lev_cur : int array array;
  enter_d : int array array;
  step_d : int array array;
  exit_d : int array array;
}

exception Bail of string

(* ---- bail-site registry (diagnostics only) ----

   [--explain] reports why planned loops fell back at runtime.  Keyed by
   (root loc, reason) so the report is a set: identical at any [--jobs],
   because memoization/single-flight dedup makes the set of executed runs
   identical even when their interleaving is not. *)

let bail_mu = Mutex.create ()

let bail_tbl : (Loc.t * string, unit) Hashtbl.t = Hashtbl.create 16

let record_bail loc reason =
  Mutex.lock bail_mu;
  Hashtbl.replace bail_tbl (loc, reason) ();
  Mutex.unlock bail_mu

let bail_sites () : (Loc.t * string) list =
  Mutex.lock bail_mu;
  let l = Hashtbl.fold (fun k () acc -> k :: acc) bail_tbl [] in
  Mutex.unlock bail_mu;
  List.sort compare l

let reset_bail_sites () =
  Mutex.lock bail_mu;
  Hashtbl.reset bail_tbl;
  Mutex.unlock bail_mu

(* steps executed on the fast path, for the vm.coverage metric *)
let m_planned = Obs.Metrics.counter "vm.steps.planned"

let planned_steps () = Obs.Metrics.Counter.value m_planned

(* Magnitude caps under which the affine endpoint algebra below is exact
   (no wrap-around): |index|,|bound|,|base|,|offset| <= 2^40 and
   |coef| <= 2^20 keep every cursor position intermediate below 2^61 <
   max_int (re-checked cursor by cursor), and cost-walk quantities are
   checked against 2^55 so combining them with per-site counters cannot
   wrap either. *)
let cap = 1 lsl 40
let coef_cap = 1 lsl 20
let ccap = 1 lsl 55

let cadd x y =
  let s = x + y in
  if s > ccap || s < -ccap then raise (Bail "overflow");
  s

let cmul x y =
  if x = 0 || y = 0 then 0
  else begin
    let ax = abs x and ay = abs y in
    if ax > ccap / ay then raise (Bail "overflow");
    x * y
  end

let no_f : float array = [||]
let no_i : int array = [||]

let prepare (fl : Ir.fast_loop) ~(index_slot : int)
    ~(lookup : string -> (source * Ast.ty) option) : prepared option =
  let ok = ref true in
  let dummy = Slot 0 in
  let var_srcs =
    Array.map
      (fun (v : Ir.var) ->
        match lookup v.Ir.v_name with
        | Some (src, ty) ->
          let want =
            match v.Ir.v_kind with
            | Ir.Kint -> Ast.Tint
            | Ir.Kbool -> Ast.Tbool
            | Ir.Kfloat Ir.Psingle -> Ast.Tfloat
            | Ir.Kfloat Ir.Pdouble -> Ast.Tdouble
          in
          if ty = want then src else (ok := false; dummy)
        | None -> (ok := false; dummy))
      fl.Ir.fl_vars
  in
  let arr_srcs =
    Array.map
      (fun (a : Ir.arr) ->
        match lookup a.Ir.a_name with
        | Some (src, Ast.Tptr ety) when ety = Ir.ty_of_ety a.Ir.a_ety -> src
        | _ -> (ok := false; dummy))
      fl.Ir.fl_arrs
  in
  if not !ok then begin
    record_bail fl.Ir.fl_loc "binding";
    None
  end
  else begin
    let nl = Array.length fl.Ir.fl_levels in
    let ns = max 1 (Array.length fl.Ir.fl_sites) in
    let na = max 1 (Array.length fl.Ir.fl_arrs) in
    let nc = max 1 (Array.length fl.Ir.fl_cursors) in
    let lev_cur =
      Array.init nl (fun l ->
          let ids = ref [] in
          Array.iteri
            (fun k (c : Ir.cursor) ->
              if c.Ir.c_coefs.(l) <> Ir.Iconst 0 then ids := k :: !ids)
            fl.Ir.fl_cursors;
          Array.of_list (List.rev !ids))
    in
    let simple =
      if nl = 1 && Array.length fl.Ir.fl_sites = 0 then
        match (fl.Ir.fl_levels.(0)).Ir.l_body.Ir.b_items with
        | [| Ir.Bops ops |] -> Some ops
        | [||] -> Some [||]
        | _ -> None
      else None
    in
    Some
      {
        fl;
        index_slot;
        var_srcs;
        arr_srcs;
        f = Array.make (max 1 fl.Ir.fl_nf) 0.0;
        n = Array.make (max 1 fl.Ir.fl_ni) 0;
        iregs =
          Array.map
            (fun (l : Ir.level) ->
              match l.Ir.l_index_reg with Some r -> r | None -> -1)
            fl.Ir.fl_levels;
        simple;
        trip = Array.make nl 0;
        llo = Array.make nl 0;
        lstep = Array.make nl 1;
        tk = Array.make ns 0;
        cntmax = Array.make ns 0;
        dsite = Array.init ns (fun _ -> Array.make 15 0);
        avalid = false;
        abase = Array.make na (-1);
        aoff = Array.make na 0;
        alen = Array.make na 0;
        aname = Array.make na "";
        afdata = Array.make na no_f;
        aidata = Array.make na no_i;
        adem = Array.map (fun (a : Ir.arr) -> a.Ir.a_ety = Ir.Efloat32) fl.Ir.fl_arrs;
        abool = Array.map (fun (a : Ir.arr) -> a.Ir.a_ety = Ir.Ebool) fl.Ir.fl_arrs;
        cpos = Array.make nc 0;
        ccoef = Array.init nc (fun _ -> Array.make nl 0);
        cfdata = Array.make nc no_f;
        cidata = Array.make nc no_i;
        lev_cur;
        enter_d = Array.map (fun cs -> Array.make (max 1 (Array.length cs)) 0) lev_cur;
        step_d = Array.map (fun cs -> Array.make (max 1 (Array.length cs)) 0) lev_cur;
        exit_d = Array.map (fun cs -> Array.make (max 1 (Array.length cs)) 0) lev_cur;
      }
  end

(* Nest-invariant integer expressions; [Ivar] indexes the var table and is
   guaranteed int-kinded and unwritten by the lowering. *)
let rec ieval p (e : Ir.iexpr) : int =
  match e with
  | Ir.Iconst k -> k
  | Ir.Ivar v -> p.n.(p.fl.Ir.fl_vars.(v).Ir.v_reg)
  | Ir.Iadd (a, b) -> ieval p a + ieval p b
  | Ir.Isub (a, b) -> ieval p a - ieval p b
  | Ir.Imul (a, b) -> ieval p a * ieval p b
  | Ir.Ineg a -> -ieval p a

let m1 (m : Ir.m1) (x : float) : float =
  match m with
  | Ir.Msqrt -> sqrt x
  | Ir.Mrsqrt -> 1.0 /. sqrt x
  | Ir.Msin -> sin x
  | Ir.Mcos -> cos x
  | Ir.Mtan -> tan x
  | Ir.Mexp -> exp x
  | Ir.Mlog -> log x
  | Ir.Mtanh -> tanh x
  | Ir.Merf -> erf_approx x
  | Ir.Mfabs -> Float.abs x
  | Ir.Mfloor -> Float.floor x
  | Ir.Mceil -> Float.ceil x

let m2 (m : Ir.m2) (x : float) (y : float) : float =
  match m with
  | Ir.Mpow -> Float.pow x y
  | Ir.Mfmin -> Float.min x y
  | Ir.Mfmax -> Float.max x y

(* ---- static cost vectors ----

   15-element vectors: index 0 is steps, 1..14 the hardware-counter fields
   in a fixed order (see [apply_totals]).  All cost-walk arithmetic is
   checked against [ccap] so the combination with runtime taken counters
   below is provably exact. *)

let vec_of_block (b : Ir.block) =
  let c = b.Ir.b_cnt in
  [|
    b.Ir.b_steps;
    c.Ir.k_int_ops;
    c.Ir.k_sp_add;
    c.Ir.k_sp_mul;
    c.Ir.k_sp_div;
    c.Ir.k_sp_special;
    c.Ir.k_dp_add;
    c.Ir.k_dp_mul;
    c.Ir.k_dp_div;
    c.Ir.k_dp_special;
    c.Ir.k_loads;
    c.Ir.k_stores;
    c.Ir.k_bytes_loaded;
    c.Ir.k_bytes_stored;
    c.Ir.k_branches;
  |]

let ivec ~ints ~brs =
  let v = Array.make 15 0 in
  v.(1) <- ints;
  v.(14) <- brs;
  v

let vadd_into a b = Array.iteri (fun i x -> a.(i) <- cadd a.(i) x) b

let vscale k v = Array.map (fun x -> cmul k x) v

(* Cost of running [b] once, assuming each site takes its else arm; the
   per-site deltas (then cost minus else cost) and maximum execution
   counts land in [p.dsite]/[p.cntmax].  [mult] is the statically largest
   number of times [b] can run per nest entry.  Loop trip counts are the
   per-entry constants already computed in [p.trip]. *)
let rec eval_block p (b : Ir.block) (mult : int) : int array =
  let v = vec_of_block b in
  Array.iter
    (fun (it : Ir.bitem) ->
      match it with
      | Ir.Bops _ -> ()
      | Ir.Bsite sid ->
        let s = p.fl.Ir.fl_sites.(sid) in
        let et = eval_block p s.Ir.s_then mult in
        let ee = eval_block p s.Ir.s_else mult in
        let d = p.dsite.(sid) in
        Array.iteri (fun i x -> d.(i) <- cadd x (-ee.(i))) et;
        p.cntmax.(sid) <- mult;
        vadd_into v ee
      | Ir.Bloop lid ->
        let lv = p.fl.Ir.fl_levels.(lid) in
        let trip = p.trip.(lid) in
        let inner = eval_block p lv.Ir.l_body (cmul mult trip) in
        (* closure-loop bookkeeping: lo evaluated once per entry; each
           iteration pays the test (1 int op + hi ops + 1 branch) and the
           bump (1 int op + step ops); the final failing test pays
           1 + hi ops and a branch *)
        vadd_into v (ivec ~ints:lv.Ir.l_lo_ops ~brs:0);
        vadd_into inner
          (ivec ~ints:(2 + lv.Ir.l_hi_ops + lv.Ir.l_step_ops) ~brs:1);
        vadd_into v (vscale trip inner);
        vadd_into v (ivec ~ints:(1 + lv.Ir.l_hi_ops) ~brs:1))
    b.Ir.b_items;
  v

(* Batched counter update at commit: static baseline plus per-site taken
   deltas, scaled into the live counters.  Mirrors the per-operation
   count_* calls of the reference backends. *)
let apply_totals (t : Counters.t) (tot : int array) =
  t.Counters.int_ops <- t.Counters.int_ops + tot.(1);
  t.Counters.flops_sp_add <- t.Counters.flops_sp_add + tot.(2);
  t.Counters.flops_sp_mul <- t.Counters.flops_sp_mul + tot.(3);
  t.Counters.flops_sp_div <- t.Counters.flops_sp_div + tot.(4);
  t.Counters.flops_sp_special <- t.Counters.flops_sp_special + tot.(5);
  t.Counters.flops_dp_add <- t.Counters.flops_dp_add + tot.(6);
  t.Counters.flops_dp_mul <- t.Counters.flops_dp_mul + tot.(7);
  t.Counters.flops_dp_div <- t.Counters.flops_dp_div + tot.(8);
  t.Counters.flops_dp_special <- t.Counters.flops_dp_special + tot.(9);
  t.Counters.loads <- t.Counters.loads + tot.(10);
  t.Counters.stores <- t.Counters.stores + tot.(11);
  t.Counters.bytes_loaded <- t.Counters.bytes_loaded + tot.(12);
  t.Counters.bytes_stored <- t.Counters.bytes_stored + tot.(13);
  t.Counters.branches <- t.Counters.branches + tot.(14)

let oob p (a : int) (idx : int) (loc : Loc.t) =
  runtime_error loc "array %s: index %d out of bounds [0,%d)" p.aname.(a) idx
    p.alen.(a)

(* Flat-array dispatch loop.  Registers and cursor positions are validated
   by construction (lowering) and by the guard (bounds), so the only
   runtime checks left are the ones the source semantics demand: checked
   accesses and integer division by zero. *)
let exec p st (ops : Ir.fop array) =
  let f = p.f and n = p.n in
  let len = Array.length ops in
  for k = 0 to len - 1 do
    match Array.unsafe_get ops k with
    | Ir.FConst (d, x) -> f.(d) <- x
    | Ir.IConst (d, x) -> n.(d) <- x
    | Ir.FMov (d, a) -> f.(d) <- f.(a)
    | Ir.IMov (d, a) -> n.(d) <- n.(a)
    | Ir.ItoF (d, a) -> f.(d) <- float_of_int n.(a)
    | Ir.FtoI (d, a) -> n.(d) <- int_of_float f.(a)
    | Ir.FtoB (d, a) -> n.(d) <- (if f.(a) <> 0.0 then 1 else 0)
    | Ir.ItoB (d, a) -> n.(d) <- (if n.(a) <> 0 then 1 else 0)
    | Ir.FDem (d, a) -> f.(d) <- Value.demote f.(a)
    | Ir.FAdd (d, a, b) -> f.(d) <- f.(a) +. f.(b)
    | Ir.FSub (d, a, b) -> f.(d) <- f.(a) -. f.(b)
    | Ir.FMul (d, a, b) -> f.(d) <- f.(a) *. f.(b)
    | Ir.FDiv (d, a, b) -> f.(d) <- f.(a) /. f.(b)
    | Ir.FNeg (d, a) -> f.(d) <- -.f.(a)
    | Ir.FAddS (d, a, b) -> f.(d) <- Value.demote (f.(a) +. f.(b))
    | Ir.FSubS (d, a, b) -> f.(d) <- Value.demote (f.(a) -. f.(b))
    | Ir.FMulS (d, a, b) -> f.(d) <- Value.demote (f.(a) *. f.(b))
    | Ir.FDivS (d, a, b) -> f.(d) <- Value.demote (f.(a) /. f.(b))
    | Ir.IAdd (d, a, b) -> n.(d) <- n.(a) + n.(b)
    | Ir.ISub (d, a, b) -> n.(d) <- n.(a) - n.(b)
    | Ir.IMul (d, a, b) -> n.(d) <- n.(a) * n.(b)
    | Ir.INeg (d, a) -> n.(d) <- -n.(a)
    | Ir.IDivZ (d, a, b, loc) ->
      let y = n.(b) in
      if y = 0 then runtime_error loc "integer division by zero";
      n.(d) <- n.(a) / y
    | Ir.IModZ (d, a, b, loc) ->
      let y = n.(b) in
      if y = 0 then runtime_error loc "modulo by zero";
      n.(d) <- n.(a) mod y
    | Ir.IAbs (d, a) -> n.(d) <- abs n.(a)
    | Ir.IMin (d, a, b) ->
      let x = n.(a) and y = n.(b) in
      n.(d) <- (if x < y then x else y)
    | Ir.IMax (d, a, b) ->
      let x = n.(a) and y = n.(b) in
      n.(d) <- (if x > y then x else y)
    | Ir.ICmp (op, d, a, b) ->
      let x = n.(a) and y = n.(b) in
      let r =
        match op with
        | Ir.Clt -> x < y
        | Ir.Cle -> x <= y
        | Ir.Cgt -> x > y
        | Ir.Cge -> x >= y
        | Ir.Ceq -> x = y
        | Ir.Cne -> x <> y
      in
      n.(d) <- (if r then 1 else 0)
    | Ir.FCmp (op, d, a, b) ->
      let x = f.(a) and y = f.(b) in
      let r =
        match op with
        | Ir.Clt -> x < y
        | Ir.Cle -> x <= y
        | Ir.Cgt -> x > y
        | Ir.Cge -> x >= y
        | Ir.Ceq -> x = y
        | Ir.Cne -> x <> y
      in
      n.(d) <- (if r then 1 else 0)
    | Ir.INot (d, a) -> n.(d) <- (if n.(a) <> 0 then 0 else 1)
    | Ir.FMath1 (m, d, a) -> f.(d) <- m1 m f.(a)
    | Ir.FMath1S (m, d, a) -> f.(d) <- Value.demote (m1 m f.(a))
    | Ir.FMath2 (m, d, a, b) -> f.(d) <- m2 m f.(a) f.(b)
    | Ir.FMath2S (m, d, a, b) -> f.(d) <- Value.demote (m2 m f.(a) f.(b))
    | Ir.Rand d -> f.(d) <- Util.Prng.uniform st.prng
    | Ir.FLd (d, c) -> f.(d) <- p.cfdata.(c).(p.cpos.(c))
    | Ir.FSt (c, s) -> p.cfdata.(c).(p.cpos.(c)) <- f.(s)
    | Ir.FStDem (c, s) -> p.cfdata.(c).(p.cpos.(c)) <- Value.demote f.(s)
    | Ir.ILd (d, c) -> n.(d) <- p.cidata.(c).(p.cpos.(c))
    | Ir.ISt (c, s) -> p.cidata.(c).(p.cpos.(c)) <- n.(s)
    | Ir.IStB (c, s) -> p.cidata.(c).(p.cpos.(c)) <- (if n.(s) <> 0 then 1 else 0)
    | Ir.FLdCk (d, a, i, loc) ->
      let idx = p.aoff.(a) + n.(i) in
      if idx < 0 || idx >= p.alen.(a) then oob p a idx loc;
      f.(d) <- p.afdata.(a).(idx)
    | Ir.FStCk (a, i, s, loc) ->
      let idx = p.aoff.(a) + n.(i) in
      if idx < 0 || idx >= p.alen.(a) then oob p a idx loc;
      p.afdata.(a).(idx) <- (if p.adem.(a) then Value.demote f.(s) else f.(s))
    | Ir.ILdCk (d, a, i, loc) ->
      let idx = p.aoff.(a) + n.(i) in
      if idx < 0 || idx >= p.alen.(a) then oob p a idx loc;
      n.(d) <- p.aidata.(a).(idx)
    | Ir.IStCk (a, i, s, loc) ->
      let idx = p.aoff.(a) + n.(i) in
      if idx < 0 || idx >= p.alen.(a) then oob p a idx loc;
      p.aidata.(a).(idx) <-
        (if p.abool.(a) then (if n.(s) <> 0 then 1 else 0) else n.(s))
    | Ir.FLdSub (d, c, b) -> f.(d) <- p.cfdata.(c).(p.cpos.(c)) -. f.(b)
    | Ir.FLdSub2 (d, c1, c2) ->
      f.(d) <- p.cfdata.(c1).(p.cpos.(c1)) -. p.cfdata.(c2).(p.cpos.(c2))
    | Ir.FLdMul (d, c, b) -> f.(d) <- p.cfdata.(c).(p.cpos.(c)) *. f.(b)
    | Ir.FLdAdd (d, c, b) -> f.(d) <- p.cfdata.(c).(p.cpos.(c)) +. f.(b)
    | Ir.FMulAdd (d, a, b, c) -> f.(d) <- (f.(a) *. f.(b)) +. f.(c)
    | Ir.FAddMul (d, c, a, b) -> f.(d) <- f.(c) +. (f.(a) *. f.(b))
    | Ir.FSubMul (d, c, a, b) -> f.(d) <- f.(c) -. (f.(a) *. f.(b))
    | Ir.FRecip (d, a) -> f.(d) <- 1.0 /. f.(a)
    | Ir.FRsqrt (d, a) -> f.(d) <- 1.0 /. sqrt f.(a)
    | Ir.FAccSt (c, s) ->
      let q = p.cfdata.(c) and i = p.cpos.(c) in
      q.(i) <- q.(i) +. f.(s)
    | Ir.FMulAccSt (c, a, b) ->
      let q = p.cfdata.(c) and i = p.cpos.(c) in
      q.(i) <- q.(i) +. (f.(a) *. f.(b))
  done

(* ---- tree executor ---- *)

let rec run_block p st (b : Ir.block) =
  let items = b.Ir.b_items in
  for k = 0 to Array.length items - 1 do
    match Array.unsafe_get items k with
    | Ir.Bops ops -> exec p st ops
    | Ir.Bsite sid ->
      let s = Array.unsafe_get p.fl.Ir.fl_sites sid in
      if p.n.(s.Ir.s_cond) <> 0 then begin
        p.tk.(sid) <- p.tk.(sid) + 1;
        run_block p st s.Ir.s_then
      end
      else run_block p st s.Ir.s_else
    | Ir.Bloop lid -> run_level p st lid
  done

and run_level p st lid =
  let lv = Array.unsafe_get p.fl.Ir.fl_levels lid in
  let cs = p.lev_cur.(lid) in
  let en = p.enter_d.(lid) and sd = p.step_d.(lid) and ex = p.exit_d.(lid) in
  let ncs = Array.length cs in
  for j = 0 to ncs - 1 do
    let c = Array.unsafe_get cs j in
    p.cpos.(c) <- p.cpos.(c) + Array.unsafe_get en j
  done;
  let trip = p.trip.(lid) and step = p.lstep.(lid) in
  let ireg = p.iregs.(lid) in
  let body = lv.Ir.l_body in
  let i = ref p.llo.(lid) in
  for _ = 1 to trip do
    if ireg >= 0 then p.n.(ireg) <- !i;
    run_block p st body;
    for j = 0 to ncs - 1 do
      let c = Array.unsafe_get cs j in
      p.cpos.(c) <- p.cpos.(c) + Array.unsafe_get sd j
    done;
    i := !i + step
  done;
  (* net out this level's contribution so re-entries (inner levels run
     once per enclosing iteration) start from the enclosing position *)
  for j = 0 to ncs - 1 do
    let c = Array.unsafe_get cs j in
    p.cpos.(c) <- p.cpos.(c) - Array.unsafe_get ex j
  done

let read_src (fr : Value.t array) = function
  | Slot i -> fr.(i)
  | Global r -> !r

let attempt p st (fr : Value.t array) (acc : loop_acc) =
  let fl = p.fl in
  let levels = fl.Ir.fl_levels in
  let nl = Array.length levels in
  let nsites = Array.length fl.Ir.fl_sites in
  (* 0. per-loop profiling wants loop_stats for every level, but the fast
     path only accounts the root: run nests on the slow path when loop
     profiling is on (single-level plans profile exactly via [acc]) *)
  if st.cfg.profile_loops && nl > 1 then raise (Bail "profiled");
  (* 1. load external scalars, strictly typed (mismatch -> slow path) *)
  let vars = fl.Ir.fl_vars in
  for k = 0 to Array.length vars - 1 do
    let v = vars.(k) in
    match v.Ir.v_kind, read_src fr p.var_srcs.(k) with
    | Ir.Kint, Value.Vint x -> p.n.(v.Ir.v_reg) <- x
    | Ir.Kbool, Value.Vbool b -> p.n.(v.Ir.v_reg) <- (if b then 1 else 0)
    | Ir.Kfloat _, Value.Vfloat (_, x) -> p.f.(v.Ir.v_reg) <- x
    | _ -> raise (Bail "binding")
  done;
  (* 2. trip counts: every level is [for i = lo; i </<= hi; i += step]
     with nest-invariant bounds, so the whole iteration space is decided
     here once.  The root must run at least one iteration (a zero-trip
     root is cheaper on the slow path); inner levels may be empty. *)
  let root_lo =
    match fr.(p.index_slot) with
    | Value.Vint x -> x
    | _ -> raise (Bail "binding")
  in
  for l = 0 to nl - 1 do
    let lv = levels.(l) in
    let lo = if l = 0 then root_lo else ieval p lv.Ir.l_lo in
    let hi = ieval p lv.Ir.l_hi in
    let step = ieval p lv.Ir.l_step in
    if step < 1 || step > cap then raise (Bail "trip-count");
    if lo < -cap || lo > cap || hi < -cap || hi > cap then
      raise (Bail "trip-count");
    let d = hi - lo + (if lv.Ir.l_cle then 1 else 0) in
    let trip = if d <= 0 then 0 else ((d - 1) / step) + 1 in
    if l = 0 && trip = 0 then raise (Bail "trip-count");
    p.trip.(l) <- trip;
    p.llo.(l) <- lo;
    p.lstep.(l) <- step
  done;
  (* 3. cost walk: static baseline (all sites take their else arm) plus
     per-site deltas and max execution counts; all checked arithmetic.
     The budget must survive the statically largest possible total;
     otherwise the slow path runs and raises Step_limit_exceeded at the
     exact offending statement. *)
  let t0 = p.trip.(0) in
  let root = levels.(0) in
  let body_once = eval_block p root.Ir.l_body t0 in
  vadd_into body_once
    (ivec ~ints:(2 + root.Ir.l_hi_ops + root.Ir.l_step_ops) ~brs:1);
  let base_v = vscale t0 body_once in
  vadd_into base_v (ivec ~ints:(1 + root.Ir.l_hi_ops) ~brs:1);
  let max_steps = ref base_v.(0) in
  for s = 0 to nsites - 1 do
    let ds = p.dsite.(s).(0) in
    if ds > 0 then max_steps := cadd !max_steps (cmul p.cntmax.(s) ds)
  done;
  if st.steps_left <= !max_steps then raise (Bail "budget");
  (* 3b. overflow pre-verification: bound the absolute value of every
     per-field total the commit phase will compute, so the unchecked
     arithmetic there is provably exact *)
  for i = 0 to 14 do
    let acc = ref (abs base_v.(i)) in
    for s = 0 to nsites - 1 do
      acc := cadd !acc (cmul p.cntmax.(s) (abs p.dsite.(s).(i)))
    done
  done;
  (* 4. resolve arrays: exact element type, raw storage, name for errors.
     [Memory] bases are append-only — an entry's storage is written
     exactly once, at allocation — so a resolution stays valid for as
     long as the frame holds the same base+offset pointer.  Re-entries
     with unchanged pointers (the common case for a nest entered many
     times) skip the accessor calls and the alias re-checks entirely. *)
  let arrs = fl.Ir.fl_arrs in
  let na = Array.length arrs in
  let same = ref p.avalid in
  for k = 0 to na - 1 do
    match read_src fr p.arr_srcs.(k) with
    | Value.Vptr ptr ->
      if ptr.Value.base <> p.abase.(k) || ptr.Value.offset <> p.aoff.(k) then
        same := false
    | _ -> raise (Bail "binding")
  done;
  if not !same then begin
    p.avalid <- false;
    for k = 0 to na - 1 do
      let a = arrs.(k) in
      match read_src fr p.arr_srcs.(k) with
      | Value.Vptr ptr ->
        let base = ptr.Value.base in
        if Memory.elem_ty st.mem base <> Ir.ty_of_ety a.Ir.a_ety then
          raise (Bail "types");
        let off = ptr.Value.offset in
        if off < -cap || off > cap then raise (Bail "bounds");
        p.abase.(k) <- base;
        p.aoff.(k) <- off;
        p.alen.(k) <- Memory.length st.mem base;
        p.aname.(k) <- Memory.name st.mem base;
        (match Memory.raw st.mem base with
         | Memory.Rfloat data -> p.afdata.(k) <- data
         | Memory.Rint data -> p.aidata.(k) <- data)
      | _ -> raise (Bail "binding")
    done;
    (* 4b. alias re-checks for the code-motion the lowering performed on
       statically distinct names: hoisted loads must not alias any stored
       array, promoted cells must not alias any other accessed array.
       The verdict depends only on the resolved bases, so it is part of
       the cached resolution. *)
    Array.iter
      (fun h ->
        let bh = p.abase.(h) in
        for k = 0 to na - 1 do
          if arrs.(k).Ir.a_stored && p.abase.(k) = bh then raise (Bail "alias")
        done)
      fl.Ir.fl_hoisted;
    Array.iter
      (fun pr ->
        let bp = p.abase.(pr) in
        for k = 0 to na - 1 do
          if k <> pr && p.abase.(k) = bp then raise (Bail "alias")
        done)
      fl.Ir.fl_promoted;
    p.avalid <- true
  end;
  (* 5. cursors: evaluate the affine coefficients and the separable
     endpoint bounds — in-bounds extrema imply every reached iteration is
     in bounds.  A cursor with a nonzero coefficient at a zero-trip level
     is never dereferenced (every access is scoped inside that level), so
     it skips the checks. *)
  let cursors = fl.Ir.fl_cursors in
  let ncur = Array.length cursors in
  for k = 0 to ncur - 1 do
    let cu = cursors.(k) in
    let a = cu.Ir.c_arr in
    let base = ieval p cu.Ir.c_base in
    if base < -cap || base > cap then raise (Bail "bounds");
    let pos0 = base + p.aoff.(a) in
    let coefs = p.ccoef.(k) in
    let accessed = ref true in
    for l = 0 to nl - 1 do
      let coef = ieval p cu.Ir.c_coefs.(l) in
      if coef < -coef_cap || coef > coef_cap then raise (Bail "bounds");
      coefs.(l) <- coef;
      if cu.Ir.c_coefs.(l) <> Ir.Iconst 0 && p.trip.(l) = 0 then
        accessed := false
    done;
    if !accessed then begin
      (* The position is pos0 plus a sum of per-level terms coef*i_l,
         each ranging over an arithmetic progression, so the extrema are
         the sums of per-level extrema.  [mag] additionally bounds every
         intermediate position — any subset of levels entered, the index
         possibly one bump past its last iteration before the level's
         exit delta nets it out — so no position computation can wrap. *)
      let lo_b = ref pos0 and hi_b = ref pos0 in
      let mag = ref (abs pos0) in
      for l = 0 to nl - 1 do
        let coef = coefs.(l) in
        if coef <> 0 && p.trip.(l) > 0 then begin
          let lo = p.llo.(l) and trip = p.trip.(l) and step = p.lstep.(l) in
          let last = lo + ((trip - 1) * step) in
          let x = coef * lo and y = coef * last in
          lo_b := cadd !lo_b (if x < y then x else y);
          hi_b := cadd !hi_b (if x > y then x else y);
          let m = abs coef * (abs last + step) in
          let m = if abs x > m then abs x else m in
          mag := cadd !mag m
        end
      done;
      if !lo_b < 0 || !hi_b >= p.alen.(a) then raise (Bail "bounds")
    end;
    p.cpos.(k) <- pos0;
    p.cfdata.(k) <- p.afdata.(a);
    p.cidata.(k) <- p.aidata.(a)
  done;
  (* 5b. per-level cursor deltas: entering level l at index lo adds
     coef*lo, each bump adds coef*step, and exiting subtracts
     coef*(lo + trip*step) — exactly what the enters and bumps summed to,
     restoring the enclosing level's position *)
  for l = 0 to nl - 1 do
    let cs = p.lev_cur.(l) in
    let en = p.enter_d.(l) and sd = p.step_d.(l) and ex = p.exit_d.(l) in
    let lo = p.llo.(l) and trip = p.trip.(l) and step = p.lstep.(l) in
    for j = 0 to Array.length cs - 1 do
      let coef = p.ccoef.(cs.(j)).(l) in
      en.(j) <- coef * lo;
      sd.(j) <- coef * step;
      ex.(j) <- coef * (lo + (trip * step))
    done
  done;
  (* ---- commit: from here on the fast path runs the nest to the end ---- *)
  Array.fill p.tk 0 (Array.length p.tk) 0;
  exec p st fl.Ir.fl_prologue;
  (match p.simple with
   | Some ops ->
     (* single-level site-free nests keep the PR6-style tight loop *)
     let cs = p.lev_cur.(0) in
     let en = p.enter_d.(0) and sd = p.step_d.(0) in
     let ncs = Array.length cs in
     for j = 0 to ncs - 1 do
       let c = Array.unsafe_get cs j in
       p.cpos.(c) <- p.cpos.(c) + Array.unsafe_get en j
     done;
     let trip = p.trip.(0) and step = p.lstep.(0) in
     let ireg = p.iregs.(0) in
     let i = ref root_lo in
     for _ = 1 to trip do
       if ireg >= 0 then p.n.(ireg) <- !i;
       exec p st ops;
       for j = 0 to ncs - 1 do
         let c = Array.unsafe_get cs j in
         p.cpos.(c) <- p.cpos.(c) + Array.unsafe_get sd j
       done;
       i := !i + step
     done
   | None -> run_level p st 0);
  exec p st fl.Ir.fl_epilogue;
  (* exact totals: baseline plus taken deltas; the overflow
     pre-verification above guarantees none of this unchecked arithmetic
     can wrap, and the budget pre-check that consume_steps cannot raise *)
  let tot = Array.copy base_v in
  for s = 0 to nsites - 1 do
    let tks = p.tk.(s) in
    if tks > 0 then begin
      let d = p.dsite.(s) in
      for i = 0 to 14 do
        tot.(i) <- tot.(i) + (tks * d.(i))
      done
    end
  done;
  if tot.(0) > 0 then consume_steps st tot.(0);
  apply_totals st.counters tot;
  Obs.Metrics.Counter.add m_planned tot.(0);
  acc.la_iterations <- acc.la_iterations + p.trip.(0);
  (* write back mutated scalars with the representation [Set] maintains *)
  for k = 0 to Array.length vars - 1 do
    let v = vars.(k) in
    if v.Ir.v_written then begin
      let value =
        match v.Ir.v_kind with
        | Ir.Kint -> Value.Vint p.n.(v.Ir.v_reg)
        | Ir.Kbool -> Value.Vbool (p.n.(v.Ir.v_reg) <> 0)
        | Ir.Kfloat Ir.Psingle -> Value.Vfloat (Value.Sp, p.f.(v.Ir.v_reg))
        | Ir.Kfloat Ir.Pdouble -> Value.Vfloat (Value.Dp, p.f.(v.Ir.v_reg))
      in
      match p.var_srcs.(k) with Slot s -> fr.(s) <- value | Global r -> r := value
    end
  done;
  (* leave the root index slot where the failing loop test read it *)
  fr.(p.index_slot) <- Value.Vint (root_lo + (p.trip.(0) * p.lstep.(0)))

let try_run p st (fr : Value.t array) (acc : loop_acc) : bool =
  (* observation regions want per-access footprints: defer to the slow path *)
  if st.active_regions <> [] then begin
    record_bail p.fl.Ir.fl_loc "region";
    false
  end
  else
    try
      attempt p st fr acc;
      true
    with
    | Bail r ->
      record_bail p.fl.Ir.fl_loc r;
      false
    | Failure _ ->
      record_bail p.fl.Ir.fl_loc "memory";
      false
