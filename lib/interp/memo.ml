type stats = { hits : int; misses : int }

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                    *)
(* ------------------------------------------------------------------ *)

(* Rebuild a program with ids renumbered 1..n in traversal order, dummy
   locations, and every attribute the interpreter never reads stripped
   (pragmas, restrict/const qualifiers).  Returns the canonical program
   plus both directions of the statement-id mapping: [to_canon] is used
   to canonicalize the requester's config and to store results under
   canonical ids, [of_canon] to translate cached statistics back into
   the requester's ids.

   The traversal uses explicit lets so child ids are assigned strictly
   left-to-right regardless of constructor-argument evaluation order. *)
let canonicalize (p : Ast.program) =
  let next = ref 0 in
  let fresh () =
    incr next;
    !next
  in
  let to_canon : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let of_canon : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let open Ast in
  let rec expr e =
    let edesc =
      match e.edesc with
      | (Int_lit _ | Float_lit _ | Bool_lit _ | Var _) as d -> d
      | Unary (op, a) -> Unary (op, expr a)
      | Binary (op, a, b) ->
        let a = expr a in
        Binary (op, a, expr b)
      | Call (f, args) -> Call (f, List.map expr args)
      | Index (a, b) ->
        let a = expr a in
        Index (a, expr b)
      | Cast (t, a) -> Cast (t, expr a)
      | Cond (a, b, c) ->
        let a = expr a in
        let b = expr b in
        Cond (a, b, expr c)
    in
    { eid = fresh (); eloc = Loc.dummy; edesc }
  in
  let decl d =
    let dinit = Option.map expr d.dinit in
    let darray = Option.map expr d.darray in
    { d with dinit; darray; dconst = false }
  in
  let rec stmt s =
    let sid = fresh () in
    Hashtbl.replace to_canon s.sid sid;
    Hashtbl.replace of_canon sid s.sid;
    let sdesc =
      match s.sdesc with
      | Decl d -> Decl (decl d)
      | Assign (lhs, op, rhs) ->
        let lhs = expr lhs in
        Assign (lhs, op, expr rhs)
      | Expr_stmt e -> Expr_stmt (expr e)
      | If (c, b1, b2) ->
        let c = expr c in
        let b1 = block b1 in
        If (c, b1, block b2)
      | For (h, b) ->
        let lo = expr h.lo in
        let hi = expr h.hi in
        let step = expr h.step in
        For ({ h with lo; hi; step }, block b)
      | While (c, b) ->
        let c = expr c in
        While (c, block b)
      | Return e -> Return (Option.map expr e)
      | (Break | Continue) as d -> d
      | Scope b -> Scope (block b)
    in
    { sid; sloc = Loc.dummy; pragmas = []; sdesc }
  and block b = List.map stmt b in
  let param (prm : param) = { prm with prm_restrict = false; prm_const = false } in
  let global = function
    | Gfunc f ->
      let fparams = List.map param f.fparams in
      Gfunc { f with fparams; fbody = block f.fbody; floc = Loc.dummy }
    | Gdecl d -> Gdecl (decl d)
  in
  ({ pglobals = List.map global p.pglobals }, to_canon, of_canon)

let trans_sid map sid = Option.value (Hashtbl.find_opt map sid) ~default:sid

let trans_region map = function
  | Machine.Rstmt sid -> Machine.Rstmt (trans_sid map sid)
  | r -> r

(* Regions are a set as far as the interpreter is concerned (membership
   tests only), so sorting them makes the key order-insensitive. *)
let canon_config to_canon (c : Machine.config) =
  let regions = List.sort compare (List.map (trans_region to_canon) c.Machine.regions) in
  { c with Machine.regions }

let translate map (r : Machine.result) =
  {
    r with
    Machine.loop_stats =
      List.map (fun (sid, ls) -> (trans_sid map sid, ls)) r.Machine.loop_stats;
    region_stats =
      List.map (fun (rg, rs) -> (trans_region map rg, rs)) r.Machine.region_stats;
  }

(* ------------------------------------------------------------------ *)
(* The cache instance                                                  *)
(* ------------------------------------------------------------------ *)

(* Keys are digests of the marshalled canonical pair: programs and
   configs are closure-free data, and a digest avoids rehashing deep
   trees on every bucket comparison.  The interpreter version and the
   backend tag are folded in so results cached by an older interpreter
   (or by the other backend, should their observables ever diverge) are
   never replayed.

   Storage and single-flight dedup live in {!Cache}: concurrent pool
   workers requesting the same key block on one interpretation, and when
   the on-disk tier is enabled (Cache.set_dir) results persist across
   processes.  Entries are stored in canonical id space — cached
   statistics are translated into the requester's ids on every hit. *)
let backend_tag = function `Ast -> 0 | `Compiled -> 1 | `Vm -> 2

(* No_sharing: a marshalled value's bytes otherwise depend on physical
   sharing, which differs between freshly built structures and ones
   unmarshalled from the disk tier — same content, different key.
   Structural serialization makes keys provenance-independent. *)
let key_of backend canon_p config =
  Digest.string
    (Marshal.to_string
       (Machine.interp_version, Ir.version, backend_tag backend, canon_p, config)
       [ Marshal.No_sharing ])

module C = Cache.Make (struct
  type value = Machine.result

  let kind = "run"

  let version = 1
end)

let stats () =
  let s = C.stats () in
  { hits = s.Cache.mem_hits + s.Cache.disk_hits; misses = s.Cache.misses }

let reset () = C.reset ()

let run ?(config = Machine.default_config) ?backend p =
  let backend =
    match backend with Some b -> b | None -> Machine.default_backend ()
  in
  let canon_p, to_canon, of_canon = canonicalize p in
  let key = key_of backend canon_p (canon_config to_canon config) in
  (* Failed runs propagate their exception and are never cached. *)
  let canon_r =
    (* the persisted copy drops the final memory image (hundreds of KB
       per entry, nothing downstream reads it from a memoized run); the
       in-memory tier keeps the full result, so only cross-process
       replays observe an empty [memory] *)
    C.find_or_compute
      ~to_disk:(fun r -> { r with Machine.memory = Memory.create () })
      ~key
      (fun () -> translate to_canon (Machine.run ~config ~backend p))
  in
  translate of_canon canon_r

let analysis_config ?(config = Machine.default_config) () =
  { config with Machine.profile_loops = true; trace_aliases = true }
