(** Addressable array storage for the interpreter.

    Every array (global, local, or heap-like) is a distinct numbered base;
    pointers are (base, offset) pairs.  Distinct bases never alias, which is
    what makes the dynamic pointer-alias analysis exact: two pointer
    arguments alias iff they share a base. *)

type t

val create : unit -> t

val alloc : t -> name:string -> elem_ty:Ast.ty -> int -> Value.ptr
(** Allocate a zero-initialised array of the given element type and length,
    returning a pointer to its first element.
    @raise Invalid_argument for negative lengths or non-scalar types. *)

val length : t -> int -> int
(** Length of the array with the given base id. *)

val elem_ty : t -> int -> Ast.ty

val elem_bytes : t -> int -> int

val name : t -> int -> string

val load : t -> Value.ptr -> int -> Value.t
(** [load mem ptr i] reads element [ptr.offset + i].
    @raise Failure on out-of-bounds access (reported with array name). *)

val store : t -> Value.ptr -> int -> Value.t -> unit
(** Stores coerce the value to the array element type (demoting to single
    precision for [float] arrays). *)

val load_float : t -> Value.ptr -> int -> float
(** Unboxed [Value.to_float (load mem ptr i)]. Same bounds behaviour. *)

val load_int : t -> Value.ptr -> int -> int
(** Unboxed [Value.to_int (load mem ptr i)]. Same bounds behaviour. *)

val store_float : t -> Value.ptr -> int -> float -> unit
(** Unboxed [store mem ptr i (Vfloat (_, x))]: demotes into [float] arrays,
    truth-tests into [bool] arrays, truncates into [int] arrays. *)

val store_int : t -> Value.ptr -> int -> int -> unit
(** Unboxed [store mem ptr i (Vint n)]. *)

(** Direct view of an array's backing storage, for guarded fast paths that
    have already verified the element type and bounds. *)
type raw = Rfloat of float array | Rint of int array

val raw : t -> int -> raw
(** [raw mem base] exposes the live backing array (not a copy) of [base].
    @raise Failure on a dangling base. *)

val array_count : t -> int

val to_float_array : t -> int -> float array
(** Snapshot of an array's contents as floats (testing / output helper). *)
