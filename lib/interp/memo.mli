(** Memoization of {!Machine.run}.

    A flow run interprets the same program many times: hotspot detection,
    trip-count analysis, alias tracing, data-movement analysis and kernel
    profiling all execute the identical [(program, config)] pair, and
    ablation/DSE studies re-run whole branches over shared prefixes.  This
    table caches {!Machine.result}s keyed by a canonical form of the pair
    so each distinct interpretation happens once per process.

    Canonicalization makes the key independent of accidents of program
    identity: expression/statement ids are renumbered in traversal order,
    source locations are dummied, and attributes the interpreter never
    reads (pragmas, [restrict]/[const] qualifiers) are stripped.  Two
    programs that the interpreter cannot distinguish therefore share one
    cache entry, even when one was produced from the other by a
    pragma-only transform or an id-refreshing rewrite.  Cached loop and
    region statistics are translated back into the requester's own
    statement ids on every lookup, so a hit is structurally equivalent to
    a direct run.

    Thread safety: the table is mutex-guarded and safe to use from
    {!Util.Pool} workers.  Interpretation happens outside the lock; two
    domains racing on the same key may both compute it (both get correct
    results, one insertion wins).

    Sharing caveat: a cached {!Machine.result} is returned to every
    requester, so [result.memory] and [result.counters] are physically
    shared.  Callers must treat results as read-only — all in-tree
    consumers do ({!Counters.scale}, {!Counters.diff} and
    {!Memory.to_float_array} are non-mutating).

    Disk-tier caveat: the persisted copy of an entry drops the final
    memory image ([result.memory] unmarshals empty on a cross-process
    replay).  The image is hundreds of KB per entry and no consumer
    reads it from a memoized run; within one process the in-memory tier
    still returns the full result. *)

type stats = { hits : int; misses : int }

val stats : unit -> stats
(** Cumulative hit/miss counts since the last {!reset}.  [hits] sums the
    in-memory and on-disk tiers of the underlying {!Cache} instance. *)

val reset : unit -> unit
(** Empty the in-memory tier and zero the counters (the on-disk tier, if
    enabled via {!Cache.set_dir}, is untouched). *)

val canonicalize :
  Ast.program -> Ast.program * (int, int) Hashtbl.t * (int, int) Hashtbl.t
(** [canonicalize p] rebuilds [p] with expression/statement ids
    renumbered 1..n in traversal order, dummy source locations, and
    attributes the interpreter never reads (pragmas, [restrict]/[const])
    stripped.  Returns [(canon, to_canon, of_canon)] where [to_canon]
    maps each original statement id to its canonical id and [of_canon]
    is the inverse.  Two programs the interpreter cannot distinguish
    canonicalize to equal programs, which is what makes marshalled
    canonical forms usable as content-addressed cache keys (also reused
    by the flow-level task cache). *)

val trans_sid : (int, int) Hashtbl.t -> int -> int
(** Translate a statement id through a {!canonicalize} mapping; ids
    absent from the map are returned unchanged. *)

val run :
  ?config:Machine.config -> ?backend:Machine.backend -> Ast.program -> Machine.result
(** Memoizing equivalent of {!Machine.run}.  The cache key includes
    {!Machine.interp_version} and the backend tag ([backend] defaults to
    {!Machine.default_backend}), so entries cached under an older
    interpreter version or the other backend are never replayed.
    Exceptions ({!Machine.Runtime_error}, {!Machine.Step_limit_exceeded},
    ...) propagate and are never cached. *)

val analysis_config : ?config:Machine.config -> unit -> Machine.config
(** The shared instrumentation configuration used by the standalone
    analyses (hotspot, trip count, alias): [config] (default
    {!Machine.default_config}) with [profile_loops] and [trace_aliases]
    both enabled.  Instrumentation is purely observational, so turning
    both on lets every analysis of a program share one interpretation
    instead of one per analysis. *)
