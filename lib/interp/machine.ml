(* Public interpreter façade.

   Dispatches between the three backends over the shared Interp_rt core:
   - [`Vm] (default): the superinstruction VM — the closure compiler with
     eligible loops lowered to the typed flat IR and run by Fastloop;
   - [`Compiled]: Compile, the closure-compiling backend, plan-free;
   - [`Ast]: Walker, the reference tree-walker.

   Also keeps cumulative execution statistics (runs, interpreted
   statements, wall-clock seconds) so callers can report interpreter
   throughput without instrumenting every call site. *)

exception Runtime_error = Interp_rt.Runtime_error

exception Step_limit_exceeded = Interp_rt.Step_limit_exceeded

type region = Interp_rt.region = Rfunc of string | Rstmt of int

type config = Interp_rt.config = {
  seed : int;
  overrides : (string * Value.t) list;
  profile_loops : bool;
  regions : region list;
  trace_aliases : bool;
  max_steps : int;
  entry : string;
}

let default_config = Interp_rt.default_config

type loop_stats = Interp_rt.loop_stats = {
  ls_entries : int;
  ls_iterations : int;
  ls_work : float;
  ls_counters : Counters.t;
}

type array_traffic = Interp_rt.array_traffic = {
  at_name : string;
  at_elem_bytes : int;
  at_read_elems : int;
  at_written_elems : int;
}

type region_stats = Interp_rt.region_stats = {
  rs_invocations : int;
  rs_counters : Counters.t;
  rs_traffic : array_traffic list;
  rs_bytes_in : int;
  rs_bytes_out : int;
}

type result = Interp_rt.result = {
  ret : Value.t option;
  output : string list;
  counters : Counters.t;
  loop_stats : (int * loop_stats) list;
  region_stats : (region * region_stats) list;
  aliased_funcs : (string * bool) list;
  memory : Memory.t;
}

(* ---- backend selection ---- *)

type backend = [ `Ast | `Compiled | `Vm ]

(* Bump when observable interpreter semantics change; memoization keys
   include this so stale cached results are never replayed. *)
let interp_version = 2

let backend_name = function `Ast -> "ast" | `Compiled -> "compiled" | `Vm -> "vm"

let backend_of_string = function
  | "ast" -> Some `Ast
  | "compiled" -> Some `Compiled
  | "vm" -> Some `Vm
  | _ -> None

let default_backend_ref : backend Atomic.t = Atomic.make `Vm

let default_backend () = Atomic.get default_backend_ref

let set_default_backend b = Atomic.set default_backend_ref b

(* ---- cumulative execution statistics ---- *)

type exec_stats = { exec_runs : int; exec_steps : int; exec_seconds : float }

(* Backed by the process-wide metrics registry so interpreter throughput
   shows up next to cache and bench metrics without extra plumbing. *)
let m_runs = Obs.Metrics.counter "interp.runs"

let m_steps = Obs.Metrics.counter "interp.steps"

let m_seconds = Obs.Metrics.gauge "interp.seconds"

let exec_stats () =
  {
    exec_runs = Obs.Metrics.Counter.value m_runs;
    exec_steps = Obs.Metrics.Counter.value m_steps;
    exec_seconds = Obs.Metrics.Gauge.value m_seconds;
  }

let reset_exec_stats () =
  Obs.Metrics.Counter.set m_runs 0;
  Obs.Metrics.Counter.set m_steps 0;
  Obs.Metrics.Gauge.set m_seconds 0.0

let record_run steps seconds =
  Obs.Metrics.Counter.incr m_runs;
  Obs.Metrics.Counter.add m_steps steps;
  Obs.Metrics.Gauge.add m_seconds seconds

(* Statements executed on the VM's planned fast path (process-wide, like
   exec_stats); planned / exec_steps is the vm.coverage ratio. *)
let planned_steps = Fastloop.planned_steps

let plan_bail_sites = Fastloop.bail_sites

(* ---- resilience step cap ---- *)

(* When armed (flow resilience policies with a per-task step budget),
   every run's max_steps is clamped to this value.  A capped run that
   completes is identical to the uncapped run — the cap only affects
   whether Step_limit_exceeded fires — so the cap does not belong in
   memoization keys and capped results replay safely. *)
let the_step_cap : int option Atomic.t = Atomic.make None

let set_step_cap c = Atomic.set the_step_cap (Option.map (max 1) c)

let step_cap () = Atomic.get the_step_cap

let effective_config config =
  match Atomic.get the_step_cap with
  | None -> config
  | Some cap -> { config with max_steps = min config.max_steps cap }

(* ---- execution ---- *)

let run ?(config = default_config) ?backend (program : Ast.program) : result =
  let config = effective_config config in
  let backend = match backend with Some b -> b | None -> default_backend () in
  Obs.Trace.with_span
    ~attrs:[ ("backend", Obs.Trace.Str (backend_name backend)) ]
    ~name:"interp-run" ~kind:Obs.Trace.Interp_run
    (fun sp ->
      let t0 = Obs.Monotonic.now_s () in
      let finish (r : result) =
        let steps = r.counters.Counters.steps in
        record_run steps (Obs.Monotonic.now_s () -. t0);
        Obs.Trace.add_attr sp "steps" (Obs.Trace.Int steps);
        r
      in
      match backend with
      | `Ast -> finish (Walker.run config program)
      | `Compiled -> finish (Compile.run config program)
      | `Vm -> finish (Vm.run config program))

let find_loop_stats (r : result) sid = List.assoc_opt sid r.loop_stats

let find_region_stats (r : result) region = List.assoc_opt region r.region_stats
