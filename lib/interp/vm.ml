(* The superinstruction VM backend: lower the program's canonical loops to
   the typed flat IR (bounds-elided cursors, fused opcode pairs, batched
   step/counter accounting), then run the closure compiler with the plan
   installed.  Loops the lowering rejects — and any planned loop whose
   runtime guard declines (aliasing, step budget, observation regions) —
   execute on the reference compiled closures, so the backend is observably
   identical to [Compile.run] and [Walker.run] on every program. *)

let plan_of (cfg : Interp_rt.config) (p : Ast.program) : Ir.plan =
  let region_sids =
    List.filter_map
      (function Interp_rt.Rstmt sid -> Some sid | Interp_rt.Rfunc _ -> None)
      cfg.Interp_rt.regions
  in
  Ir_lower.plan ~region_sids p

let run (config : Interp_rt.config) (p : Ast.program) : Interp_rt.result =
  Compile.run ~plan:(plan_of config p) config p
