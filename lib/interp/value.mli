(** Runtime values of the mini-C++ interpreter.

    Floating-point values carry their precision so the event counters can
    distinguish single- from double-precision work — the PSA-flow's
    "Employ SP Math Fns / SP Numeric Literals" transforms matter to the GPU
    and FPGA models precisely because SP arithmetic is cheaper. *)

type prec = Sp | Dp

type ptr = { base : int; offset : int }
(** Pointer into interpreter memory: array id + element offset. *)

type t =
  | Vint of int
  | Vbool of bool
  | Vfloat of prec * float
  | Vptr of ptr

val zero_of : Ast.ty -> t
(** Default-initialised value of a scalar type. *)

val to_float : t -> float
(** Numeric coercion. @raise Invalid_argument on pointers. *)

val to_int : t -> int

val truth : t -> bool
(** C truthiness of bools and ints. *)

val demote : float -> float
(** Round a float to single precision (through 32-bit representation). *)

val coerce : Ast.ty -> t -> t
(** Convert a value to the representation of the given scalar type,
    demoting doubles stored into [float] slots. *)

val prec_of_ty : Ast.ty -> prec

val to_string : t -> string
