(* Reference tree-walking backend.

   This is the original interpreter, kept verbatim as the semantic oracle
   for the closure-compiled backend (Compile): environments are chains of
   per-scope hashtables, every statement ticks the step budget
   individually, and every call resolves its callee by name.  Slow, but
   each operation maps one-to-one onto the language definition — the
   differential tests hold Compile to byte-identical observables against
   this module. *)

open Ast
open Interp_rt

(* ---- environment ---- *)

type env = (string, Value.t ref) Hashtbl.t list

let push_scope env : env = Hashtbl.create 8 :: env

let rec lookup env name =
  match env with
  | [] -> None
  | scope :: rest ->
    (match Hashtbl.find_opt scope name with Some r -> Some r | None -> lookup rest name)

let bind env name v =
  match env with
  | scope :: _ -> Hashtbl.replace scope name (ref v)
  | [] -> invalid_arg "Machine.bind: empty environment"

(* ---- expression evaluation ---- *)

let rec eval_expr st env (e : expr) : Value.t =
  match e.edesc with
  | Int_lit n -> Value.Vint n
  | Float_lit (f, single) ->
    if single then Value.Vfloat (Value.Sp, Value.demote f) else Value.Vfloat (Value.Dp, f)
  | Bool_lit b -> Value.Vbool b
  | Var v ->
    (match lookup env v with
     | Some r -> !r
     | None -> runtime_error e.eloc "unbound variable %s" v)
  | Unary (Neg, a) ->
    let va = eval_expr st env a in
    (match va with
     | Value.Vint n -> count_int_op st; Value.Vint (-n)
     | Value.Vfloat (p, f) -> count_flop st p Cadd; Value.Vfloat (p, -.f)
     | Value.Vbool _ | Value.Vptr _ -> runtime_error e.eloc "negating non-number")
  | Unary (Not, a) ->
    let va = eval_expr st env a in
    count_int_op st;
    Value.Vbool (not (Value.truth va))
  | Binary (And, a, b) ->
    count_branch st;
    if Value.truth (eval_expr st env a) then Value.Vbool (Value.truth (eval_expr st env b))
    else Value.Vbool false
  | Binary (Or, a, b) ->
    count_branch st;
    if Value.truth (eval_expr st env a) then Value.Vbool true
    else Value.Vbool (Value.truth (eval_expr st env b))
  | Binary (op, a, b) ->
    let va = eval_expr st env a in
    let vb = eval_expr st env b in
    eval_binop st e.eloc op va vb
  | Call (name, args) ->
    let vargs = List.map (eval_expr st env) args in
    (match Hashtbl.find_opt st.func_table name with
     | Some fn ->
       st.counters.calls <- st.counters.calls + 1;
       (match call_function st fn vargs with
        | Some v -> v
        | None -> Value.Vint 0)
     | None -> eval_intrinsic st e.eloc name vargs)
  | Index (base, idx) ->
    let vb = eval_expr st env base in
    let vi = eval_expr st env idx in
    (match vb with
     | Value.Vptr ptr ->
       let i = Value.to_int vi in
       let v =
         try Memory.load st.mem ptr i with Failure msg -> runtime_error e.eloc "%s" msg
       in
       count_load st ptr.Value.base (ptr.Value.offset + i);
       v
     | _ -> runtime_error e.eloc "indexing a non-pointer")
  | Cast (ty, a) ->
    let va = eval_expr st env a in
    (try Value.coerce ty va
     with Invalid_argument msg -> runtime_error e.eloc "%s" msg)
  | Cond (c, a, b) ->
    count_branch st;
    if Value.truth (eval_expr st env c) then eval_expr st env a else eval_expr st env b

(* ---- statements ---- *)

and exec_block st env (blk : block) : flow =
  let env = push_scope env in
  let rec loop = function
    | [] -> Fnormal
    | s :: rest ->
      (match exec_stmt st env s with
       | Fnormal -> loop rest
       | (Fbreak | Fcontinue | Freturn _) as f -> f)
  in
  loop blk

and exec_stmt st env (s : stmt) : flow =
  tick_step st;
  let profiled_region =
    if st.cfg.regions = [] then None
    else if List.mem (Rstmt s.sid) st.cfg.regions then Some (Rstmt s.sid)
    else None
  in
  (match profiled_region with Some r -> push_region st r | None -> ());
  let flow = exec_stmt_inner st env s in
  (match profiled_region with Some _ -> pop_region st | None -> ());
  flow

and exec_stmt_inner st env (s : stmt) : flow =
  match s.sdesc with
  | Decl d ->
    (match d.darray with
     | Some size_e ->
       let n = Value.to_int (eval_expr st env size_e) in
       let ptr =
         try Memory.alloc st.mem ~name:d.dname ~elem_ty:d.dty n
         with Invalid_argument msg -> runtime_error s.sloc "%s" msg
       in
       bind env d.dname (Value.Vptr ptr)
     | None ->
       let v =
         match d.dinit with
         | Some e -> Value.coerce (decl_scalar_ty d) (eval_expr st env e)
         | None -> Value.zero_of (decl_scalar_ty d)
       in
       bind env d.dname v);
    Fnormal
  | Assign (lhs, op, rhs) ->
    let vr = eval_expr st env rhs in
    (match lhs.edesc with
     | Var v ->
       (match lookup env v with
        | None -> runtime_error lhs.eloc "unbound variable %s" v
        | Some r ->
          let nv =
            match op with
            | Set -> cast_like !r vr
            | AddEq | SubEq | MulEq | DivEq ->
              eval_binop st s.sloc (binop_of_assign op) !r vr |> cast_like !r
          in
          r := nv)
     | Index (base, idx) ->
       let vb = eval_expr st env base in
       let vi = eval_expr st env idx in
       (match vb with
        | Value.Vptr ptr ->
          let i = Value.to_int vi in
          let elem = ptr.Value.base in
          let nv =
            match op with
            | Set -> vr
            | AddEq | SubEq | MulEq | DivEq ->
              let old =
                try Memory.load st.mem ptr i
                with Failure msg -> runtime_error lhs.eloc "%s" msg
              in
              count_load st elem (ptr.Value.offset + i);
              eval_binop st s.sloc (binop_of_assign op) old vr
          in
          (try Memory.store st.mem ptr i nv
           with Failure msg -> runtime_error lhs.eloc "%s" msg);
          count_store st elem (ptr.Value.offset + i)
        | _ -> runtime_error lhs.eloc "assigning through a non-pointer")
     | _ -> runtime_error lhs.eloc "invalid assignment target");
    Fnormal
  | Expr_stmt e ->
    ignore (eval_expr st env e);
    Fnormal
  | If (c, b1, b2) ->
    count_branch st;
    if Value.truth (eval_expr st env c) then exec_block st env b1 else exec_block st env b2
  | For (h, body) ->
    let lo = Value.to_int (eval_expr st env h.lo) in
    let acc =
      if st.cfg.profile_loops then Some (loop_acc_of st s.sid) else None
    in
    (match acc with
     | Some a ->
       a.la_entries <- a.la_entries + 1;
       let snapshot = Counters.copy st.counters in
       let flow = exec_for st env s h body lo a in
       Counters.add_into a.la_counters (Counters.diff st.counters snapshot);
       flow
     | None -> exec_for st env s h body lo (dummy_loop_acc ()))
  | While (c, body) ->
    let acc =
      if st.cfg.profile_loops then Some (loop_acc_of st s.sid) else None
    in
    let rec iterate (acc : loop_acc) =
      count_branch st;
      if Value.truth (eval_expr st env c) then begin
        acc.la_iterations <- acc.la_iterations + 1;
        match exec_block st env body with
        | Fnormal | Fcontinue -> iterate acc
        | Fbreak -> Fnormal
        | Freturn _ as f -> f
      end
      else Fnormal
    in
    (match acc with
     | Some a ->
       a.la_entries <- a.la_entries + 1;
       let snapshot = Counters.copy st.counters in
       let flow = iterate a in
       Counters.add_into a.la_counters (Counters.diff st.counters snapshot);
       flow
     | None -> iterate (dummy_loop_acc ()))
  | Return None -> Freturn None
  | Return (Some e) -> Freturn (Some (eval_expr st env e))
  | Break -> Fbreak
  | Continue -> Fcontinue
  | Scope blk -> exec_block st env blk

and exec_for st env s h body lo acc : flow =
  ignore s;
  let env_loop = push_scope env in
  bind env_loop h.index (Value.Vint lo);
  let index_ref =
    match lookup env_loop h.index with Some r -> r | None -> assert false
  in
  let test () =
    count_branch st;
    count_int_op st;
    let i = Value.to_int !index_ref in
    let hi = Value.to_int (eval_expr st env_loop h.hi) in
    match h.cmp with CLt -> i < hi | CLe -> i <= hi
  in
  let bump () =
    count_int_op st;
    let step = Value.to_int (eval_expr st env_loop h.step) in
    index_ref := Value.Vint (Value.to_int !index_ref + step)
  in
  let rec iterate () =
    if test () then begin
      acc.la_iterations <- acc.la_iterations + 1;
      match exec_block st env_loop body with
      | Fnormal | Fcontinue ->
        bump ();
        iterate ()
      | Fbreak -> Fnormal
      | Freturn _ as f -> f
    end
    else Fnormal
  in
  iterate ()

and call_function st (fn : func) (args : Value.t list) : Value.t option =
  if List.length args <> List.length fn.fparams then
    runtime_error fn.floc "calling %s with %d arguments (expects %d)" fn.fname
      (List.length args) (List.length fn.fparams);
  if st.cfg.trace_aliases then
    note_alias_bases st fn.fname
      (List.filter_map
         (function Value.Vptr p -> Some p.Value.base | _ -> None)
         args);
  let profiled = List.mem (Rfunc fn.fname) st.cfg.regions in
  if profiled then push_region st (Rfunc fn.fname);
  let env : env = [ Hashtbl.create 16; st.globals ] in
  List.iter2
    (fun prm v ->
      let v' =
        match prm.prm_ty with
        | Tptr _ -> v
        | t -> Value.coerce t v
      in
      bind env prm.prm_name v')
    fn.fparams args;
  let flow = exec_block st env fn.fbody in
  if profiled then pop_region st;
  match flow with
  | Freturn v -> v
  | Fnormal -> None
  | Fbreak | Fcontinue -> runtime_error fn.floc "break/continue escaped function %s" fn.fname

(* ---- program setup and entry ---- *)

let init_globals st =
  let env : env = [ st.globals ] in
  List.iter
    (function
      | Gfunc _ -> ()
      | Gdecl d ->
        (match d.darray with
         | Some size_e ->
           let n = Value.to_int (eval_expr st env size_e) in
           let ptr = Memory.alloc st.mem ~name:d.dname ~elem_ty:d.dty n in
           Hashtbl.replace st.globals d.dname (ref (Value.Vptr ptr))
         | None ->
           let v =
             match List.assoc_opt d.dname st.cfg.overrides with
             | Some ov -> Value.coerce d.dty ov
             | None ->
               (match d.dinit with
                | Some e -> Value.coerce d.dty (eval_expr st env e)
                | None -> Value.zero_of d.dty)
           in
           Hashtbl.replace st.globals d.dname (ref v)))
    st.program.pglobals

let run (config : config) program : result =
  let st = make_state config program in
  List.iter (fun fn -> Hashtbl.replace st.func_table fn.fname fn) (funcs program);
  init_globals st;
  let entry =
    match Hashtbl.find_opt st.func_table config.entry with
    | Some fn -> fn
    | None -> runtime_error Loc.dummy "entry function %s not found" config.entry
  in
  let ret = call_function st entry [] in
  assemble_result st ret
