(* Shared runtime core of the two interpreter backends.

   Both the reference tree-walker (Walker) and the closure compiler
   (Compile) execute against the same mutable [state]: one memory, one
   counter set, one PRNG, one output buffer, and the same profiling
   tables.  Keeping every observable accumulator and its update helpers
   here is what makes the backends bit-identical: a loop snapshot, a
   region footprint or an alias cell is maintained by exactly one piece
   of code, whichever backend drives it. *)

open Ast

exception Runtime_error of Loc.t * string

exception Step_limit_exceeded

type region = Rfunc of string | Rstmt of int

type config = {
  seed : int;
  overrides : (string * Value.t) list;
  profile_loops : bool;
  regions : region list;
  trace_aliases : bool;
  max_steps : int;
  entry : string;
}

let default_config =
  {
    seed = 42;
    overrides = [];
    profile_loops = false;
    regions = [];
    trace_aliases = false;
    max_steps = 400_000_000;
    entry = "main";
  }

type loop_stats = {
  ls_entries : int;
  ls_iterations : int;
  ls_work : float;
  ls_counters : Counters.t;
}

type array_traffic = {
  at_name : string;
  at_elem_bytes : int;
  at_read_elems : int;
  at_written_elems : int;
}

type region_stats = {
  rs_invocations : int;
  rs_counters : Counters.t;
  rs_traffic : array_traffic list;
  rs_bytes_in : int;
  rs_bytes_out : int;
}

type result = {
  ret : Value.t option;
  output : string list;
  counters : Counters.t;
  loop_stats : (int * loop_stats) list;
  region_stats : (region * region_stats) list;
  aliased_funcs : (string * bool) list;
  memory : Memory.t;
}

(* ---- mutable profiling state ---- *)

type loop_acc = {
  mutable la_entries : int;
  mutable la_iterations : int;
  mutable la_counters : Counters.t;
}

(* footprint bitsets of one array within one active region frame *)
type footprint = { fp_written : Bytes.t; fp_read_first : Bytes.t }

type region_frame = {
  rf_region : region;
  rf_snapshot : Counters.t;
  rf_footprints : (int, footprint) Hashtbl.t;
  rf_alloc_watermark : int;
      (* arrays allocated after the region began are region-local scratch
         (tiles, privatised buffers): they are not transferred data *)
}

type region_acc = {
  mutable ra_invocations : int;
  mutable ra_counters : Counters.t;
  (* per array base: read-before-write / written element totals over invocations *)
  ra_traffic : (int, int ref * int ref) Hashtbl.t;
}

type flow = Fnormal | Fbreak | Fcontinue | Freturn of Value.t option

type state = {
  program : program;
  cfg : config;
  mem : Memory.t;
  counters : Counters.t;
  prng : Util.Prng.t;
  output : Buffer.t;
  globals : (string, Value.t ref) Hashtbl.t;
  loop_table : (int, loop_acc) Hashtbl.t;
  region_table : (region, region_acc) Hashtbl.t;
  mutable active_regions : region_frame list;
  alias_table : (string, bool ref) Hashtbl.t;
  func_table : (string, func) Hashtbl.t;
  mutable steps_left : int;
}

let make_state (cfg : config) program =
  {
    program;
    cfg;
    mem = Memory.create ();
    counters = Counters.create ();
    prng = Util.Prng.create cfg.seed;
    output = Buffer.create 256;
    globals = Hashtbl.create 16;
    loop_table = Hashtbl.create 16;
    region_table = Hashtbl.create 4;
    active_regions = [];
    alias_table = Hashtbl.create 4;
    func_table = Hashtbl.create 16;
    steps_left = cfg.max_steps;
  }

let runtime_error loc fmt = Printf.ksprintf (fun msg -> raise (Runtime_error (loc, msg))) fmt

(* ---- counting helpers ---- *)

let tick_step st =
  st.steps_left <- st.steps_left - 1;
  if st.steps_left <= 0 then raise Step_limit_exceeded;
  st.counters.steps <- st.counters.steps + 1

(* One step-budget decrement and one counter update for a straight-line
   run of [k] statements.  The raise condition is identical to ticking k
   times ([steps_left <= k] either way), only the abort point within the
   (discarded) run moves.  Callers must skip the call for k = 0. *)
let consume_steps st k =
  st.steps_left <- st.steps_left - k;
  if st.steps_left <= 0 then raise Step_limit_exceeded;
  st.counters.steps <- st.counters.steps + k

let count_branch st = st.counters.branches <- st.counters.branches + 1

type op_class = Cadd | Cmul | Cdiv | Cspecial

let count_flop st prec cls =
  let c = st.counters in
  match prec, cls with
  | Value.Sp, Cadd -> c.flops_sp_add <- c.flops_sp_add + 1
  | Value.Sp, Cmul -> c.flops_sp_mul <- c.flops_sp_mul + 1
  | Value.Sp, Cdiv -> c.flops_sp_div <- c.flops_sp_div + 1
  | Value.Sp, Cspecial -> c.flops_sp_special <- c.flops_sp_special + 1
  | Value.Dp, Cadd -> c.flops_dp_add <- c.flops_dp_add + 1
  | Value.Dp, Cmul -> c.flops_dp_mul <- c.flops_dp_mul + 1
  | Value.Dp, Cdiv -> c.flops_dp_div <- c.flops_dp_div + 1
  | Value.Dp, Cspecial -> c.flops_dp_special <- c.flops_dp_special + 1

let count_int_op st = st.counters.int_ops <- st.counters.int_ops + 1

(* footprint marking on the active region frames *)

let get_footprint st frame base =
  match Hashtbl.find_opt frame.rf_footprints base with
  | Some fp -> fp
  | None ->
    let len = Memory.length st.mem base in
    let fp = { fp_written = Bytes.make len '\000'; fp_read_first = Bytes.make len '\000' } in
    Hashtbl.replace frame.rf_footprints base fp;
    fp

let mark_read st base idx =
  List.iter
    (fun frame ->
      let fp = get_footprint st frame base in
      if Bytes.get fp.fp_written idx = '\000' then Bytes.set fp.fp_read_first idx '\001')
    st.active_regions

let mark_write st base idx =
  List.iter
    (fun frame ->
      let fp = get_footprint st frame base in
      Bytes.set fp.fp_written idx '\001')
    st.active_regions

let count_load st base idx =
  st.counters.loads <- st.counters.loads + 1;
  st.counters.bytes_loaded <- st.counters.bytes_loaded + Memory.elem_bytes st.mem base;
  if st.active_regions <> [] then mark_read st base idx

let count_store st base idx =
  st.counters.stores <- st.counters.stores + 1;
  st.counters.bytes_stored <- st.counters.bytes_stored + Memory.elem_bytes st.mem base;
  if st.active_regions <> [] then mark_write st base idx

(* ---- region frames ---- *)

let region_acc st region =
  match Hashtbl.find_opt st.region_table region with
  | Some acc -> acc
  | None ->
    let acc =
      { ra_invocations = 0; ra_counters = Counters.create (); ra_traffic = Hashtbl.create 8 }
    in
    Hashtbl.replace st.region_table region acc;
    acc

let push_region st region =
  let frame =
    {
      rf_region = region;
      rf_snapshot = Counters.copy st.counters;
      rf_footprints = Hashtbl.create 8;
      rf_alloc_watermark = Memory.array_count st.mem;
    }
  in
  st.active_regions <- frame :: st.active_regions

let popcount bytes =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) bytes;
  !n

let pop_region st =
  match st.active_regions with
  | [] -> invalid_arg "Machine.pop_region: no active region"
  | frame :: rest ->
    st.active_regions <- rest;
    let acc = region_acc st frame.rf_region in
    acc.ra_invocations <- acc.ra_invocations + 1;
    Counters.add_into acc.ra_counters (Counters.diff st.counters frame.rf_snapshot);
    Hashtbl.iter
      (fun base fp ->
        if base < frame.rf_alloc_watermark then begin
          let rd, wr =
            match Hashtbl.find_opt acc.ra_traffic base with
            | Some pair -> pair
            | None ->
              let pair = (ref 0, ref 0) in
              Hashtbl.replace acc.ra_traffic base pair;
              pair
          in
          rd := !rd + popcount fp.fp_read_first;
          wr := !wr + popcount fp.fp_written
        end)
      frame.rf_footprints

(* ---- loop accumulators ---- *)

let loop_acc_of st sid =
  match Hashtbl.find_opt st.loop_table sid with
  | Some a -> a
  | None ->
    let a = { la_entries = 0; la_iterations = 0; la_counters = Counters.create () } in
    Hashtbl.replace st.loop_table sid a;
    a

let dummy_loop_acc () =
  { la_entries = 0; la_iterations = 0; la_counters = Counters.create () }

(* ---- alias tracing (per user-function call) ---- *)

let alias_cell st fname =
  match Hashtbl.find_opt st.alias_table fname with
  | Some c -> c
  | None ->
    let c = ref false in
    Hashtbl.replace st.alias_table fname c;
    c

(* record one traced call: do two pointer arguments share a base? *)
let note_alias_bases st fname (bases : int list) =
  let sorted = List.sort compare bases in
  let rec has_dup = function
    | a :: (b :: _ as rest) -> a = b || has_dup rest
    | [ _ ] | [] -> false
  in
  let cell = alias_cell st fname in
  if has_dup sorted then cell := true

(* ---- intrinsics ---- *)

let special_fns =
  [ "sqrt"; "sqrtf"; "sin"; "sinf"; "cos"; "cosf"; "tan"; "tanf"; "exp"; "expf";
    "log"; "logf"; "pow"; "powf"; "tanh"; "tanhf"; "erf"; "erff"; "rsqrt"; "rsqrtf" ]

let cheap_fns =
  [ "fabs"; "fabsf"; "fmin"; "fminf"; "fmax"; "fmaxf"; "floor"; "floorf";
    "ceil"; "ceilf" ]

(* Abramowitz-Stegun 7.1.26 rational approximation *)
let erf_approx x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let y =
    1.0
    -. (((((1.061405429 *. t -. 1.453152027) *. t +. 1.421413741) *. t
          -. 0.284496736) *. t +. 0.254829592)
        *. t *. exp (-.x *. x))
  in
  sign *. y

let eval_intrinsic st loc name (args : Value.t list) : Value.t =
  let f1 () = match args with [ a ] -> Value.to_float a | _ -> runtime_error loc "%s: arity" name in
  let f2 () =
    match args with
    | [ a; b ] -> (Value.to_float a, Value.to_float b)
    | _ -> runtime_error loc "%s: arity" name
  in
  let single = String.length name > 0 && name.[String.length name - 1] = 'f'
               && name <> "erf" in
  let ret_float x =
    if single then Value.Vfloat (Value.Sp, Value.demote x) else Value.Vfloat (Value.Dp, x)
  in
  let count () =
    let prec = if single then Value.Sp else Value.Dp in
    if List.mem name special_fns then count_flop st prec Cspecial
    else if List.mem name cheap_fns then count_flop st prec Cadd
  in
  match name with
  | "sqrt" | "sqrtf" -> count (); ret_float (sqrt (f1 ()))
  | "rsqrt" | "rsqrtf" -> count (); ret_float (1.0 /. sqrt (f1 ()))
  | "sin" | "sinf" -> count (); ret_float (sin (f1 ()))
  | "cos" | "cosf" -> count (); ret_float (cos (f1 ()))
  | "tan" | "tanf" -> count (); ret_float (tan (f1 ()))
  | "exp" | "expf" -> count (); ret_float (exp (f1 ()))
  | "log" | "logf" -> count (); ret_float (log (f1 ()))
  | "tanh" | "tanhf" -> count (); ret_float (tanh (f1 ()))
  | "erf" | "erff" -> count (); ret_float (erf_approx (f1 ()))
  | "pow" | "powf" ->
    count ();
    let a, b = f2 () in
    ret_float (Float.pow a b)
  | "fabs" | "fabsf" -> count (); ret_float (Float.abs (f1 ()))
  | "floor" | "floorf" -> count (); ret_float (Float.floor (f1 ()))
  | "ceil" | "ceilf" -> count (); ret_float (Float.ceil (f1 ()))
  | "fmin" | "fminf" ->
    count ();
    let a, b = f2 () in
    ret_float (Float.min a b)
  | "fmax" | "fmaxf" ->
    count ();
    let a, b = f2 () in
    ret_float (Float.max a b)
  | "abs" ->
    count_int_op st;
    (match args with
     | [ a ] -> Value.Vint (Int.abs (Value.to_int a))
     | _ -> runtime_error loc "abs: arity")
  | "imin" ->
    count_int_op st;
    (match args with
     | [ a; b ] -> Value.Vint (Int.min (Value.to_int a) (Value.to_int b))
     | _ -> runtime_error loc "imin: arity")
  | "imax" ->
    count_int_op st;
    (match args with
     | [ a; b ] -> Value.Vint (Int.max (Value.to_int a) (Value.to_int b))
     | _ -> runtime_error loc "imax: arity")
  | "rand01" -> Value.Vfloat (Value.Dp, Util.Prng.uniform st.prng)
  | "print_int" ->
    (match args with
     | [ a ] ->
       Buffer.add_string st.output (string_of_int (Value.to_int a));
       Buffer.add_char st.output '\n';
       Value.Vint 0
     | _ -> runtime_error loc "print_int: arity")
  | "print_float" ->
    (match args with
     | [ a ] ->
       Buffer.add_string st.output (Printf.sprintf "%.17g" (Value.to_float a));
       Buffer.add_char st.output '\n';
       Value.Vint 0
     | _ -> runtime_error loc "print_float: arity")
  | _ -> runtime_error loc "unknown intrinsic %s" name

(* ---- dynamic binary operations ---- *)

let float_op_prec (a : Value.t) (b : Value.t) : Value.prec option =
  match a, b with
  | Value.Vfloat (Value.Dp, _), (Value.Vfloat _ | Value.Vint _ | Value.Vbool _)
  | (Value.Vint _ | Value.Vbool _ | Value.Vfloat _), Value.Vfloat (Value.Dp, _) ->
    Some Value.Dp
  | Value.Vfloat (Value.Sp, _), (Value.Vfloat (Value.Sp, _) | Value.Vint _ | Value.Vbool _)
  | (Value.Vint _ | Value.Vbool _), Value.Vfloat (Value.Sp, _) ->
    Some Value.Sp
  | _, _ -> None

let eval_binop st loc op va vb : Value.t =
  let arith cls int_case float_case =
    match float_op_prec va vb with
    | Some p ->
      count_flop st p cls;
      let r = float_case (Value.to_float va) (Value.to_float vb) in
      Value.Vfloat (p, (if p = Value.Sp then Value.demote r else r))
    | None ->
      count_int_op st;
      Value.Vint (int_case (Value.to_int va) (Value.to_int vb))
  in
  let compare_vals cmp_i cmp_f =
    count_int_op st;
    match float_op_prec va vb with
    | Some _ -> Value.Vbool (cmp_f (Value.to_float va) (Value.to_float vb))
    | None -> Value.Vbool (cmp_i (Value.to_int va) (Value.to_int vb))
  in
  match op with
  | Add -> arith Cadd ( + ) ( +. )
  | Sub -> arith Cadd ( - ) ( -. )
  | Mul -> arith Cmul ( * ) ( *. )
  | Div ->
    (match float_op_prec va vb with
     | Some _ -> arith Cdiv (fun _ _ -> 0) ( /. )
     | None ->
       let d = Value.to_int vb in
       if d = 0 then runtime_error loc "integer division by zero";
       count_int_op st;
       Value.Vint (Value.to_int va / d))
  | Mod ->
    let d = Value.to_int vb in
    if d = 0 then runtime_error loc "modulo by zero";
    count_int_op st;
    Value.Vint (Value.to_int va mod d)
  | Lt -> compare_vals ( < ) ( < )
  | Le -> compare_vals ( <= ) ( <= )
  | Gt -> compare_vals ( > ) ( > )
  | Ge -> compare_vals ( >= ) ( >= )
  | Eq -> compare_vals ( = ) ( = )
  | Ne -> compare_vals ( <> ) ( <> )
  | And | Or -> runtime_error loc "internal: logical op in eval_binop"

let binop_of_assign = function
  | AddEq -> Add
  | SubEq -> Sub
  | MulEq -> Mul
  | DivEq -> Div
  | Set -> invalid_arg "binop_of_assign: Set"

(* Keep the representation kind of the assigned slot. *)
let cast_like (old : Value.t) (v : Value.t) : Value.t =
  match old with
  | Value.Vint _ -> Value.Vint (Value.to_int v)
  | Value.Vbool _ -> Value.Vbool (Value.truth v)
  | Value.Vfloat (Value.Sp, _) -> Value.Vfloat (Value.Sp, Value.demote (Value.to_float v))
  | Value.Vfloat (Value.Dp, _) -> Value.Vfloat (Value.Dp, Value.to_float v)
  | Value.Vptr _ -> v

let decl_scalar_ty (d : decl) : ty =
  match d.darray with Some _ -> Tptr d.dty | None -> d.dty

(* ---- result assembly ----

   Both backends fill the same tables in the same first-touch order, so
   folding them here yields identical association lists either way. *)

let assemble_result st ret : result =
  let loop_stats =
    Hashtbl.fold
      (fun sid (a : loop_acc) acc ->
        ( sid,
          {
            ls_entries = a.la_entries;
            ls_iterations = a.la_iterations;
            ls_work = Counters.work a.la_counters;
            ls_counters = a.la_counters;
          } )
        :: acc)
      st.loop_table []
  in
  let region_stats =
    Hashtbl.fold
      (fun region (a : region_acc) acc ->
        let traffic =
          Hashtbl.fold
            (fun base (rd, wr) acc ->
              {
                at_name = Memory.name st.mem base;
                at_elem_bytes = Memory.elem_bytes st.mem base;
                at_read_elems = !rd;
                at_written_elems = !wr;
              }
              :: acc)
            a.ra_traffic []
        in
        let bytes_in =
          List.fold_left (fun n t -> n + (t.at_read_elems * t.at_elem_bytes)) 0 traffic
        in
        let bytes_out =
          List.fold_left (fun n t -> n + (t.at_written_elems * t.at_elem_bytes)) 0 traffic
        in
        ( region,
          {
            rs_invocations = a.ra_invocations;
            rs_counters = a.ra_counters;
            rs_traffic = traffic;
            rs_bytes_in = bytes_in;
            rs_bytes_out = bytes_out;
          } )
        :: acc)
      st.region_table []
  in
  let aliased =
    Hashtbl.fold (fun name cell acc -> (name, !cell) :: acc) st.alias_table []
  in
  {
    ret;
    output =
      (match Buffer.contents st.output with
       | "" -> []
       | text -> String.split_on_char '\n' (String.trim text));
    counters = st.counters;
    loop_stats;
    region_stats;
    aliased_funcs = aliased;
    memory = st.mem;
  }
