(* Closure-compiling interpreter backend.

   A one-shot pass lowers the AST into OCaml closures before execution:

   - variables are resolved at compile time to slots of a flat per-call
     [Value.t array] frame (no hashtable scope chains at run time);
   - call sites bind directly to compiled function records (no per-call
     [func_table] lookup, parameter coercions precomputed);
   - arithmetic is specialized on the statically known representation of
     each operand ([cexp] below), so int/float fast paths run unboxed and
     skip [Value] dispatch;
   - step-budget/step-counter updates are batched per straight-line
     statement run: one [consume_steps] per segment instead of one
     [tick_step] per statement.

   The contract, enforced by the differential tests against Walker, is
   bit-identical observables: printed output, every counter, loop and
   region statistics, alias verdicts, final memory, and which exception
   (if any) terminates the run.  Comments below flag the few places where
   an internal ordering differs from the walker; all of them are confined
   to pure computations or to aborting runs whose partial state is
   unobservable.

   Static scope resolution mirrors the walker's dynamic binding order:
   the compile-time environment [venv] is extended exactly where the
   walker would execute a [bind], so a use before a declaration resolves
   to the enclosing binding in both backends.  Each declaration site gets
   its own slot (no reuse), which keeps resolution trivially correct for
   shadowing and loop-carried re-declarations.

   One knowing divergence: a function body referencing a global declared
   *after* it textually, when that function is called from an earlier
   global initialiser, reads the (not yet initialised) cell instead of
   raising "unbound variable" as the walker would.  No program produced
   by the suite or the generators can reach this; it would require a
   call in a global initialiser to a function peeking at a later global. *)

open Ast
open Interp_rt

type frame = Value.t array

(* A compiled expression, tagged with the representation its result is
   statically known to have.  [Kval] is the fully dynamic fallback and is
   always semantically exact (it reuses the shared Interp_rt evaluators). *)
type cexp =
  | Kint of (state -> frame -> int)
  | Kbool of (state -> frame -> bool)
  | Kfloat of Value.prec * (state -> frame -> float)
  | Kval of (state -> frame -> Value.t)

let to_val = function
  | Kint f -> fun st fr -> Value.Vint (f st fr)
  | Kbool f -> fun st fr -> Value.Vbool (f st fr)
  | Kfloat (p, f) -> fun st fr -> Value.Vfloat (p, f st fr)
  | Kval f -> f

let as_int = function
  | Kint f -> f
  | Kbool f -> fun st fr -> if f st fr then 1 else 0
  | Kfloat (_, f) -> fun st fr -> int_of_float (f st fr)
  | Kval f -> fun st fr -> Value.to_int (f st fr)

let as_float = function
  | Kint f -> fun st fr -> float_of_int (f st fr)
  | Kbool f -> fun st fr -> if f st fr then 1.0 else 0.0
  | Kfloat (_, f) -> f
  | Kval f -> fun st fr -> Value.to_float (f st fr)

let as_truth = function
  | Kint f -> fun st fr -> f st fr <> 0
  | Kbool f -> f
  | Kfloat (_, f) -> fun st fr -> f st fr <> 0.0
  | Kval f -> fun st fr -> Value.truth (f st fr)

(* ---- compiled functions and name resolution ---- *)

type binding = Bslot of int * ty | Bglobal of Value.t ref * ty

let binding_ty = function Bslot (_, t) -> t | Bglobal (_, t) -> t

type cfunc = {
  cf_name : string;
  cf_loc : Loc.t;
  cf_coerce : (Value.t -> Value.t) array;  (* per-parameter coercion *)
  mutable cf_nslots : int;
  mutable cf_body : state -> frame -> flow;
  cf_profiled : bool;
}

type fctx = {
  c_cfg : config;
  c_funcs : (string, cfunc) Hashtbl.t;
  c_globals : (string, binding) Hashtbl.t;
  c_plan : Ir.plan;  (* lowered loops to intercept; empty for pure `Compiled *)
  mutable c_nslots : int;
}

let alloc_slot ctx =
  let i = ctx.c_nslots in
  ctx.c_nslots <- i + 1;
  i

type venv = (string * binding) list

let lookup_var ctx (venv : venv) v =
  match List.assoc_opt v venv with
  | Some b -> Some b
  | None -> Hashtbl.find_opt ctx.c_globals v

(* call a compiled function; mirrors Walker.call_function after its arity
   check (arity mismatches are compiled into raising closures upstream) *)
let invoke st (cf : cfunc) (vargs : frame) : Value.t option =
  if st.cfg.trace_aliases then begin
    let bases = ref [] in
    for k = Array.length vargs - 1 downto 0 do
      match vargs.(k) with
      | Value.Vptr p -> bases := p.Value.base :: !bases
      | _ -> ()
    done;
    note_alias_bases st cf.cf_name !bases
  end;
  if cf.cf_profiled then push_region st (Rfunc cf.cf_name);
  let fr = Array.make cf.cf_nslots (Value.Vint 0) in
  let coerce = cf.cf_coerce in
  for k = 0 to Array.length coerce - 1 do
    fr.(k) <- coerce.(k) vargs.(k)
  done;
  let flow = cf.cf_body st fr in
  if cf.cf_profiled then pop_region st;
  match flow with
  | Freturn v -> v
  | Fnormal -> None
  | Fbreak | Fcontinue ->
    runtime_error cf.cf_loc "break/continue escaped function %s" cf.cf_name

(* reads of a declared binding: the declaration's type determines the
   representation invariantly held by the slot/cell (declarations, [Set]
   and [cast_like] all preserve it), except for pointer-typed parameters,
   which the walker passes unchecked and we therefore read dynamically *)
let read_binding (b : binding) : cexp =
  match b with
  | Bslot (i, ty) ->
    (match ty with
     | Tint -> Kint (fun _ fr -> Value.to_int fr.(i))
     | Tbool -> Kbool (fun _ fr -> Value.truth fr.(i))
     | Tfloat -> Kfloat (Value.Sp, fun _ fr -> Value.to_float fr.(i))
     | Tdouble -> Kfloat (Value.Dp, fun _ fr -> Value.to_float fr.(i))
     | Tptr _ | Tvoid -> Kval (fun _ fr -> fr.(i)))
  | Bglobal (cell, ty) ->
    (match ty with
     | Tint -> Kint (fun _ _ -> Value.to_int !cell)
     | Tbool -> Kbool (fun _ _ -> Value.truth !cell)
     | Tfloat -> Kfloat (Value.Sp, fun _ _ -> Value.to_float !cell)
     | Tdouble -> Kfloat (Value.Dp, fun _ _ -> Value.to_float !cell)
     | Tptr _ | Tvoid -> Kval (fun _ _ -> !cell))

(* ---- compiled statements ---- *)

(* Simple statements (Decl/Assign/Expr_stmt) can never redirect control
   flow, so they compile to unit closures and can share one batched
   step-budget update per straight-line run (see [segment]). *)
type citem =
  | Cunit of (state -> frame -> unit)
  | Cflow of (state -> frame -> flow)

let wrap_region cfg sid (it : citem) : citem =
  if cfg.regions <> [] && List.mem (Rstmt sid) cfg.regions then
    match it with
    | Cunit f ->
      Cunit
        (fun st fr ->
          push_region st (Rstmt sid);
          f st fr;
          pop_region st)
    | Cflow f ->
      Cflow
        (fun st fr ->
          push_region st (Rstmt sid);
          let fl = f st fr in
          pop_region st;
          fl)
  else it

let unit_seq us =
  match us with
  | [] -> fun _ _ -> ()
  | [ u ] -> u
  | us ->
    let rec build = function
      | [] -> assert false
      | [ u ] -> u
      | u :: rest ->
        let tail = build rest in
        fun st fr ->
          u st fr;
          tail st fr
    in
    build us

(* Chop a block into segments: maximal runs of simple statements, each
   optionally terminated by one control statement.  One [consume_steps]
   covers the whole segment; the raise condition of the step budget is
   identical to per-statement ticking (the budget crosses zero within a
   k-statement run iff it is <= k at its start), and because profiling
   snapshots are taken inside the segment *after* its batch — exactly
   where the walker has also already ticked every one of these
   statements — all snapshot diffs and final totals agree exactly. *)
let segment (items : citem list) : (state -> frame -> flow) list =
  let close_units units n =
    let u = unit_seq (List.rev units) in
    fun st fr ->
      consume_steps st n;
      u st fr;
      Fnormal
  in
  let close_seg units n f =
    match units with
    | [] ->
      fun st fr ->
        consume_steps st n;
        f st fr
    | _ ->
      let u = unit_seq (List.rev units) in
      fun st fr ->
        consume_steps st n;
        u st fr;
        f st fr
  in
  let rec go units n = function
    | [] -> if n = 0 then [] else [ close_units units n ]
    | Cunit u :: rest -> go (u :: units) (n + 1) rest
    | Cflow f :: rest -> close_seg units (n + 1) f :: go [] 0 rest
  in
  go [] 0 items

let chain segs : state -> frame -> flow =
  match segs with
  | [] -> fun _ _ -> Fnormal
  | [ s ] -> s
  | s :: rest ->
    let rec build s rest =
      match rest with
      | [] -> s
      | s2 :: rest ->
        let tail = build s2 rest in
        fun st fr ->
          (match s st fr with
           | Fnormal -> tail st fr
           | f -> f)
    in
    build s rest

(* ---- expression compilation ---- *)

(* [compile_expr] returns the closure plus the statically known source
   type ([None] when unknown); the type drives arithmetic and memory
   specialization.  Calls to user functions are always dynamic: the
   walker does not coerce return values to the declared return type. *)
let rec compile_expr ctx (venv : venv) (e : expr) : cexp * ty option =
  match e.edesc with
  | Int_lit n -> (Kint (fun _ _ -> n), Some Tint)
  | Float_lit (f, true) ->
    let x = Value.demote f in
    (Kfloat (Value.Sp, fun _ _ -> x), Some Tfloat)
  | Float_lit (f, false) -> (Kfloat (Value.Dp, fun _ _ -> f), Some Tdouble)
  | Bool_lit b -> (Kbool (fun _ _ -> b), Some Tbool)
  | Var v ->
    (match lookup_var ctx venv v with
     | Some b -> (read_binding b, Some (binding_ty b))
     | None ->
       let loc = e.eloc in
       (Kval (fun _ _ -> runtime_error loc "unbound variable %s" v), None))
  | Unary (Neg, a) ->
    let ca, ta = compile_expr ctx venv a in
    (match ca with
     | Kint f ->
       ( Kint
           (fun st fr ->
             let n = f st fr in
             count_int_op st;
             -n),
         Some Tint )
     | Kfloat (p, f) ->
       ( Kfloat
           ( p,
             fun st fr ->
               let x = f st fr in
               count_flop st p Cadd;
               -.x ),
         ta )
     | Kbool _ | Kval _ ->
       let vf = to_val ca in
       let loc = e.eloc in
       ( Kval
           (fun st fr ->
             match vf st fr with
             | Value.Vint n ->
               count_int_op st;
               Value.Vint (-n)
             | Value.Vfloat (p, x) ->
               count_flop st p Cadd;
               Value.Vfloat (p, -.x)
             | Value.Vbool _ | Value.Vptr _ -> runtime_error loc "negating non-number"),
         None ))
  | Unary (Not, a) ->
    let tf = as_truth (fst (compile_expr ctx venv a)) in
    ( Kbool
        (fun st fr ->
          let b = tf st fr in
          count_int_op st;
          not b),
      Some Tbool )
  | Binary (And, a, b) ->
    let ta = as_truth (fst (compile_expr ctx venv a)) in
    let tb = as_truth (fst (compile_expr ctx venv b)) in
    ( Kbool
        (fun st fr ->
          count_branch st;
          if ta st fr then tb st fr else false),
      Some Tbool )
  | Binary (Or, a, b) ->
    let ta = as_truth (fst (compile_expr ctx venv a)) in
    let tb = as_truth (fst (compile_expr ctx venv b)) in
    ( Kbool
        (fun st fr ->
          count_branch st;
          if ta st fr then true else tb st fr),
      Some Tbool )
  | Binary (op, a, b) -> compile_binary ctx venv e op a b
  | Call (name, args) -> compile_call ctx venv e name args
  | Index (base, idx) -> compile_index ctx venv e base idx
  | Cast (ty, a) -> compile_cast ctx venv e ty a
  | Cond (c, a, b) ->
    let tc = as_truth (fst (compile_expr ctx venv c)) in
    let ca, ta = compile_expr ctx venv a in
    let cb, tb = compile_expr ctx venv b in
    let sty = if ta = tb then ta else None in
    (match ca, cb with
     | Kint fa, Kint fb ->
       ( Kint
           (fun st fr ->
             count_branch st;
             if tc st fr then fa st fr else fb st fr),
         sty )
     | Kbool fa, Kbool fb ->
       ( Kbool
           (fun st fr ->
             count_branch st;
             if tc st fr then fa st fr else fb st fr),
         sty )
     | Kfloat (p1, fa), Kfloat (p2, fb) when p1 = p2 ->
       ( Kfloat
           ( p1,
             fun st fr ->
               count_branch st;
               if tc st fr then fa st fr else fb st fr ),
         sty )
     | _ ->
       let va = to_val ca and vb = to_val cb in
       ( Kval
           (fun st fr ->
             count_branch st;
             if tc st fr then va st fr else vb st fr),
         sty ))

and compile_binary ctx venv e op a b : cexp * ty option =
  let ca, ta = compile_expr ctx venv a in
  let cb, tb = compile_expr ctx venv b in
  let loc = e.eloc in
  let is_cmp = match op with Lt | Le | Gt | Ge | Eq | Ne -> true | _ -> false in
  let generic () =
    let va = to_val ca and vb = to_val cb in
    ( Kval
        (fun st fr ->
          let x = va st fr in
          let y = vb st fr in
          eval_binop st loc op x y),
      if is_cmp then Some Tbool else None )
  in
  let kind = function
    | Some Tint | Some Tbool -> `Int
    | Some Tfloat -> `Float Value.Sp
    | Some Tdouble -> `Float Value.Dp
    | Some (Tptr _) | Some Tvoid | None -> `Dyn
  in
  match kind ta, kind tb with
  | `Dyn, _ | _, `Dyn -> generic ()
  | `Int, `Int ->
    let ai = as_int ca and bi = as_int cb in
    let iarith f =
      ( Kint
          (fun st fr ->
            let x = ai st fr in
            let y = bi st fr in
            count_int_op st;
            f x y),
        Some Tint )
    in
    let icmp f =
      ( Kbool
          (fun st fr ->
            let x = ai st fr in
            let y = bi st fr in
            count_int_op st;
            f x y),
        Some Tbool )
    in
    (match op with
     | Add -> iarith ( + )
     | Sub -> iarith ( - )
     | Mul -> iarith ( * )
     | Div ->
       ( Kint
           (fun st fr ->
             let x = ai st fr in
             let y = bi st fr in
             if y = 0 then runtime_error loc "integer division by zero";
             count_int_op st;
             x / y),
         Some Tint )
     | Mod ->
       ( Kint
           (fun st fr ->
             let x = ai st fr in
             let y = bi st fr in
             if y = 0 then runtime_error loc "modulo by zero";
             count_int_op st;
             x mod y),
         Some Tint )
     | Lt -> icmp ( < )
     | Le -> icmp ( <= )
     | Gt -> icmp ( > )
     | Ge -> icmp ( >= )
     | Eq -> icmp ( = )
     | Ne -> icmp ( <> )
     | And | Or -> assert false)
  | ka, kb ->
    (* at least one float operand, none dynamic: the walker's
       [float_op_prec] join *)
    let p =
      match ka, kb with
      | `Float Value.Dp, _ | _, `Float Value.Dp -> Value.Dp
      | _ -> Value.Sp
    in
    let af = as_float ca and bf = as_float cb in
    let farith cls fop =
      if p = Value.Sp then
        Kfloat
          ( Value.Sp,
            fun st fr ->
              let x = af st fr in
              let y = bf st fr in
              count_flop st Value.Sp cls;
              Value.demote (fop x y) )
      else
        Kfloat
          ( Value.Dp,
            fun st fr ->
              let x = af st fr in
              let y = bf st fr in
              count_flop st Value.Dp cls;
              fop x y )
    in
    let fty = Some (if p = Value.Dp then Tdouble else Tfloat) in
    let fcmp fop =
      ( Kbool
          (fun st fr ->
            let x = af st fr in
            let y = bf st fr in
            count_int_op st;
            fop x y),
        Some Tbool )
    in
    (match op with
     | Add -> (farith Cadd ( +. ), fty)
     | Sub -> (farith Cadd ( -. ), fty)
     | Mul -> (farith Cmul ( *. ), fty)
     | Div -> (farith Cdiv ( /. ), fty)
     | Mod ->
       (* the walker's Mod is integral regardless of operand precision *)
       let ai = as_int ca and bi = as_int cb in
       ( Kint
           (fun st fr ->
             let x = ai st fr in
             let y = bi st fr in
             if y = 0 then runtime_error loc "modulo by zero";
             count_int_op st;
             x mod y),
         Some Tint )
     | Lt -> fcmp ( < )
     | Le -> fcmp ( <= )
     | Gt -> fcmp ( > )
     | Ge -> fcmp ( >= )
     | Eq -> fcmp ( = )
     | Ne -> fcmp ( <> )
     | And | Or -> assert false)

and compile_call ctx venv e name args : cexp * ty option =
  let cargs = List.map (fun a -> fst (compile_expr ctx venv a)) args in
  let loc = e.eloc in
  match Hashtbl.find_opt ctx.c_funcs name with
  | Some cf ->
    let vfs = Array.of_list (List.map to_val cargs) in
    let n = Array.length vfs in
    let expects = Array.length cf.cf_coerce in
    if n <> expects then
      (* as in the walker: arguments evaluate and the call counts before
         the arity error is raised *)
      ( Kval
          (fun st fr ->
            for k = 0 to n - 1 do
              ignore (vfs.(k) st fr)
            done;
            st.counters.calls <- st.counters.calls + 1;
            runtime_error cf.cf_loc "calling %s with %d arguments (expects %d)"
              cf.cf_name n expects),
        None )
    else
      ( Kval
          (fun st fr ->
            let vargs = Array.make n (Value.Vint 0) in
            for k = 0 to n - 1 do
              vargs.(k) <- vfs.(k) st fr
            done;
            st.counters.calls <- st.counters.calls + 1;
            match invoke st cf vargs with
            | Some v -> v
            | None -> Value.Vint 0),
        None )
  | None -> compile_intrinsic loc name cargs

and compile_intrinsic loc name (cargs : cexp list) : cexp * ty option =
  let generic () =
    let vfs = List.map to_val cargs in
    ( Kval
        (fun st fr ->
          let rec ev = function
            | [] -> []
            | f :: tl ->
              let v = f st fr in
              v :: ev tl
          in
          eval_intrinsic st loc name (ev vfs)),
      None )
  in
  (* specialized closures only fire on the walker's exact arity; anything
     else falls back to [eval_intrinsic], which reproduces its errors *)
  let f1 cls single op =
    match cargs with
    | [ a ] ->
      let af = as_float a in
      if single then
        ( Kfloat
            ( Value.Sp,
              fun st fr ->
                let x = af st fr in
                count_flop st Value.Sp cls;
                Value.demote (op x) ),
          Some Tfloat )
      else
        ( Kfloat
            ( Value.Dp,
              fun st fr ->
                let x = af st fr in
                count_flop st Value.Dp cls;
                op x ),
          Some Tdouble )
    | _ -> generic ()
  in
  let f2 cls single op =
    match cargs with
    | [ a; b ] ->
      let af = as_float a and bf = as_float b in
      if single then
        ( Kfloat
            ( Value.Sp,
              fun st fr ->
                let x = af st fr in
                let y = bf st fr in
                count_flop st Value.Sp cls;
                Value.demote (op x y) ),
          Some Tfloat )
      else
        ( Kfloat
            ( Value.Dp,
              fun st fr ->
                let x = af st fr in
                let y = bf st fr in
                count_flop st Value.Dp cls;
                op x y ),
          Some Tdouble )
    | _ -> generic ()
  in
  let i2 op =
    match cargs with
    | [ a; b ] ->
      let ai = as_int a and bi = as_int b in
      ( Kint
          (fun st fr ->
            let x = ai st fr in
            let y = bi st fr in
            count_int_op st;
            op x y),
        Some Tint )
    | _ -> generic ()
  in
  match name with
  | "sqrt" -> f1 Cspecial false sqrt
  | "sqrtf" -> f1 Cspecial true sqrt
  | "rsqrt" -> f1 Cspecial false (fun x -> 1.0 /. sqrt x)
  | "rsqrtf" -> f1 Cspecial true (fun x -> 1.0 /. sqrt x)
  | "sin" -> f1 Cspecial false sin
  | "sinf" -> f1 Cspecial true sin
  | "cos" -> f1 Cspecial false cos
  | "cosf" -> f1 Cspecial true cos
  | "tan" -> f1 Cspecial false tan
  | "tanf" -> f1 Cspecial true tan
  | "exp" -> f1 Cspecial false exp
  | "expf" -> f1 Cspecial true exp
  | "log" -> f1 Cspecial false log
  | "logf" -> f1 Cspecial true log
  | "tanh" -> f1 Cspecial false tanh
  | "tanhf" -> f1 Cspecial true tanh
  | "erf" -> f1 Cspecial false erf_approx
  | "erff" -> f1 Cspecial true erf_approx
  | "pow" -> f2 Cspecial false Float.pow
  | "powf" -> f2 Cspecial true Float.pow
  | "fabs" -> f1 Cadd false Float.abs
  | "fabsf" -> f1 Cadd true Float.abs
  | "floor" -> f1 Cadd false Float.floor
  | "floorf" -> f1 Cadd true Float.floor
  | "ceil" -> f1 Cadd false Float.ceil
  | "ceilf" -> f1 Cadd true Float.ceil
  | "fmin" -> f2 Cadd false Float.min
  | "fminf" -> f2 Cadd true Float.min
  | "fmax" -> f2 Cadd false Float.max
  | "fmaxf" -> f2 Cadd true Float.max
  | "abs" ->
    (match cargs with
     | [ a ] ->
       let ai = as_int a in
       ( Kint
           (fun st fr ->
             let x = ai st fr in
             count_int_op st;
             Int.abs x),
         Some Tint )
     | _ -> generic ())
  | "imin" -> i2 Int.min
  | "imax" -> i2 Int.max
  | "rand01" ->
    (match cargs with
     | [] -> (Kfloat (Value.Dp, fun st _ -> Util.Prng.uniform st.prng), Some Tdouble)
     | _ -> generic ())
  | "print_int" ->
    (match cargs with
     | [ a ] ->
       let ai = as_int a in
       ( Kint
           (fun st fr ->
             let n = ai st fr in
             Buffer.add_string st.output (string_of_int n);
             Buffer.add_char st.output '\n';
             0),
         Some Tint )
     | _ -> generic ())
  | "print_float" ->
    (match cargs with
     | [ a ] ->
       let af = as_float a in
       ( Kint
           (fun st fr ->
             let x = af st fr in
             Buffer.add_string st.output (Printf.sprintf "%.17g" x);
             Buffer.add_char st.output '\n';
             0),
         Some Tint )
     | _ -> generic ())
  | _ -> generic ()

and compile_index ctx venv e base idx : cexp * ty option =
  let cb, tb = compile_expr ctx venv base in
  let ci, _ = compile_expr ctx venv idx in
  let loc = e.eloc in
  let bf = to_val cb in
  let generic () =
    let vif = to_val ci in
    ( Kval
        (fun st fr ->
          let vb = bf st fr in
          let vi = vif st fr in
          match vb with
          | Value.Vptr ptr ->
            let i = Value.to_int vi in
            let v =
              try Memory.load st.mem ptr i
              with Failure msg -> runtime_error loc "%s" msg
            in
            count_load st ptr.Value.base (ptr.Value.offset + i);
            v
          | _ -> runtime_error loc "indexing a non-pointer"),
      None )
  in
  match tb with
  | Some (Tptr ((Tfloat | Tdouble) as ety)) ->
    let inf = as_int ci in
    let p = if ety = Tfloat then Value.Sp else Value.Dp in
    ( Kfloat
        ( p,
          fun st fr ->
            match bf st fr with
            | Value.Vptr ptr ->
              let i = inf st fr in
              let x =
                try Memory.load_float st.mem ptr i
                with Failure msg -> runtime_error loc "%s" msg
              in
              count_load st ptr.Value.base (ptr.Value.offset + i);
              x
            | _ -> runtime_error loc "indexing a non-pointer" ),
      Some ety )
  | Some (Tptr Tint) ->
    let inf = as_int ci in
    ( Kint
        (fun st fr ->
          match bf st fr with
          | Value.Vptr ptr ->
            let i = inf st fr in
            let x =
              try Memory.load_int st.mem ptr i
              with Failure msg -> runtime_error loc "%s" msg
            in
            count_load st ptr.Value.base (ptr.Value.offset + i);
            x
          | _ -> runtime_error loc "indexing a non-pointer"),
      Some Tint )
  | Some (Tptr Tbool) ->
    let inf = as_int ci in
    ( Kbool
        (fun st fr ->
          match bf st fr with
          | Value.Vptr ptr ->
            let i = inf st fr in
            let x =
              try Memory.load_int st.mem ptr i
              with Failure msg -> runtime_error loc "%s" msg
            in
            count_load st ptr.Value.base (ptr.Value.offset + i);
            x <> 0
          | _ -> runtime_error loc "indexing a non-pointer"),
      Some Tbool )
  | _ -> generic ()

and compile_cast ctx venv e ty a : cexp * ty option =
  let ca, _ = compile_expr ctx venv a in
  let loc = e.eloc in
  match ca, ty with
  | (Kint _ | Kbool _ | Kfloat _), Tint -> (Kint (as_int ca), Some Tint)
  | (Kint _ | Kbool _ | Kfloat _), Tbool -> (Kbool (as_truth ca), Some Tbool)
  | (Kint _ | Kbool _ | Kfloat _), Tfloat ->
    let af = as_float ca in
    (Kfloat (Value.Sp, fun st fr -> Value.demote (af st fr)), Some Tfloat)
  | (Kint _ | Kbool _ | Kfloat _), Tdouble ->
    (Kfloat (Value.Dp, as_float ca), Some Tdouble)
  | _ ->
    let vf = to_val ca in
    ( Kval
        (fun st fr ->
          let v = vf st fr in
          try Value.coerce ty v
          with Invalid_argument msg -> runtime_error loc "%s" msg),
      Some ty )

(* a closure producing [Value.coerce dty <expr>], specialized on the
   declared type; the generic arm keeps the walker's raw [Invalid_argument]
   from pointer/void coercions *)
and coerced_value ctx venv (dty : ty) e0 : state -> frame -> Value.t =
  let c, _ = compile_expr ctx venv e0 in
  match dty, c with
  | Tint, (Kint _ | Kbool _ | Kfloat _) ->
    let f = as_int c in
    fun st fr -> Value.Vint (f st fr)
  | Tbool, (Kint _ | Kbool _ | Kfloat _) ->
    let f = as_truth c in
    fun st fr -> Value.Vbool (f st fr)
  | Tfloat, (Kint _ | Kbool _ | Kfloat _) ->
    let f = as_float c in
    fun st fr -> Value.Vfloat (Value.Sp, Value.demote (f st fr))
  | Tdouble, (Kint _ | Kbool _ | Kfloat _) ->
    let f = as_float c in
    fun st fr -> Value.Vfloat (Value.Dp, f st fr)
  | _ ->
    let vf = to_val c in
    fun st fr -> Value.coerce dty (vf st fr)

(* ---- statement compilation ---- *)

and compile_stmt ctx (venv : venv) (s : stmt) : citem * venv =
  let it, venv' = compile_stmt_inner ctx venv s in
  (wrap_region ctx.c_cfg s.sid it, venv')

and compile_stmt_inner ctx (venv : venv) (s : stmt) : citem * venv =
  match s.sdesc with
  | Decl d ->
    (match d.darray with
     | Some size_e ->
       let sz = as_int (fst (compile_expr ctx venv size_e)) in
       let slot = alloc_slot ctx in
       let name = d.dname and ety = d.dty and loc = s.sloc in
       ( Cunit
           (fun st fr ->
             let n = sz st fr in
             let ptr =
               try Memory.alloc st.mem ~name ~elem_ty:ety n
               with Invalid_argument msg -> runtime_error loc "%s" msg
             in
             fr.(slot) <- Value.Vptr ptr),
         (d.dname, Bslot (slot, Tptr d.dty)) :: venv )
     | None ->
       let dty = decl_scalar_ty d in
       let slot = alloc_slot ctx in
       let write =
         match d.dinit with
         | Some e0 ->
           let cv = coerced_value ctx venv dty e0 in
           fun st fr -> fr.(slot) <- cv st fr
         | None -> fun _ fr -> fr.(slot) <- Value.zero_of dty
       in
       (Cunit write, (d.dname, Bslot (slot, dty)) :: venv))
  | Assign (lhs, op, rhs) -> (compile_assign ctx venv s lhs op rhs, venv)
  | Expr_stmt e ->
    let c, _ = compile_expr ctx venv e in
    let u =
      match c with
      | Kint f -> fun st fr -> ignore (f st fr)
      | Kbool f -> fun st fr -> ignore (f st fr)
      | Kfloat (_, f) -> fun st fr -> ignore (f st fr)
      | Kval f -> fun st fr -> ignore (f st fr)
    in
    (Cunit u, venv)
  | If (c, b1, b2) ->
    let tc = as_truth (fst (compile_expr ctx venv c)) in
    let f1 = compile_block ctx venv b1 in
    let f2 = compile_block ctx venv b2 in
    ( Cflow
        (fun st fr ->
          count_branch st;
          if tc st fr then f1 st fr else f2 st fr),
      venv )
  | While (c, body) ->
    let tc = as_truth (fst (compile_expr ctx venv c)) in
    let bodyf = compile_block ctx venv body in
    let run_while st fr (a : loop_acc) =
      let rec iterate () =
        count_branch st;
        if tc st fr then begin
          a.la_iterations <- a.la_iterations + 1;
          match bodyf st fr with
          | Fnormal | Fcontinue -> iterate ()
          | Fbreak -> Fnormal
          | Freturn _ as f -> f
        end
        else Fnormal
      in
      iterate ()
    in
    let sid = s.sid in
    if ctx.c_cfg.profile_loops then
      ( Cflow
          (fun st fr ->
            let a = loop_acc_of st sid in
            a.la_entries <- a.la_entries + 1;
            let snapshot = Counters.copy st.counters in
            let flow = run_while st fr a in
            Counters.add_into a.la_counters (Counters.diff st.counters snapshot);
            flow),
        venv )
    else (Cflow (fun st fr -> run_while st fr (dummy_loop_acc ())), venv)
  | For (h, body) ->
    let lof = as_int (fst (compile_expr ctx venv h.lo)) in
    let slot = alloc_slot ctx in
    let venv' = (h.index, Bslot (slot, Tint)) :: venv in
    let hif = as_int (fst (compile_expr ctx venv' h.hi)) in
    let stepf = as_int (fst (compile_expr ctx venv' h.step)) in
    let bodyf = compile_block ctx venv' body in
    let cmp : int -> int -> bool =
      match h.cmp with CLt -> ( < ) | CLe -> ( <= )
    in
    (* If the lowering planned this loop, bind the plan to this function's
       frame layout once; at runtime the guard either executes the whole
       loop on the fast path or falls through to [run_for] untouched. *)
    let fast =
      match Hashtbl.find_opt ctx.c_plan s.sid with
      | None -> None
      | Some fl ->
        let lookup name =
          match lookup_var ctx venv' name with
          | Some (Bslot (i, t)) -> Some (Fastloop.Slot i, t)
          | Some (Bglobal (c, t)) -> Some (Fastloop.Global c, t)
          | None -> None
        in
        Fastloop.prepare fl ~index_slot:slot ~lookup
    in
    let run_for st fr (a : loop_acc) =
      let rec iterate () =
        count_branch st;
        count_int_op st;
        let i = Value.to_int fr.(slot) in
        let hi = hif st fr in
        if cmp i hi then begin
          a.la_iterations <- a.la_iterations + 1;
          match bodyf st fr with
          | Fnormal | Fcontinue ->
            count_int_op st;
            let step = stepf st fr in
            fr.(slot) <- Value.Vint (Value.to_int fr.(slot) + step);
            iterate ()
          | Fbreak -> Fnormal
          | Freturn _ as f -> f
        end
        else Fnormal
      in
      iterate ()
    in
    let run_loop st fr a =
      match fast with
      | Some fp when Fastloop.try_run fp st fr a -> Fnormal
      | _ -> run_for st fr a
    in
    let sid = s.sid in
    if ctx.c_cfg.profile_loops then
      ( Cflow
          (fun st fr ->
            let lo = lof st fr in
            let a = loop_acc_of st sid in
            a.la_entries <- a.la_entries + 1;
            let snapshot = Counters.copy st.counters in
            fr.(slot) <- Value.Vint lo;
            let flow = run_loop st fr a in
            Counters.add_into a.la_counters (Counters.diff st.counters snapshot);
            flow),
        venv )
    else
      ( Cflow
          (fun st fr ->
            let lo = lof st fr in
            fr.(slot) <- Value.Vint lo;
            run_loop st fr (dummy_loop_acc ())),
        venv )
  | Return None -> (Cflow (fun _ _ -> Freturn None), venv)
  | Return (Some e0) ->
    let vf = to_val (fst (compile_expr ctx venv e0)) in
    (Cflow (fun st fr -> Freturn (Some (vf st fr))), venv)
  | Break -> (Cflow (fun _ _ -> Fbreak), venv)
  | Continue -> (Cflow (fun _ _ -> Fcontinue), venv)
  | Scope blk -> (Cflow (compile_block ctx venv blk), venv)

and compile_assign ctx venv (s : stmt) lhs op rhs : citem =
  let cr, _ = compile_expr ctx venv rhs in
  match lhs.edesc with
  | Var v ->
    (match lookup_var ctx venv v with
     | None ->
       let vf = to_val cr in
       let loc = lhs.eloc in
       Cunit
         (fun st fr ->
           ignore (vf st fr);
           runtime_error loc "unbound variable %s" v)
     | Some b -> compile_var_assign s b op cr)
  | Index (base, idx) -> compile_index_assign ctx venv s lhs base idx op cr
  | _ ->
    let vf = to_val cr in
    let loc = lhs.eloc in
    Cunit
      (fun st fr ->
        ignore (vf st fr);
        runtime_error loc "invalid assignment target")

and compile_var_assign (s : stmt) (b : binding) op (cr : cexp) : citem =
  let ty = binding_ty b in
  let get : state -> frame -> Value.t =
    match b with
    | Bslot (i, _) -> fun _ fr -> fr.(i)
    | Bglobal (cell, _) -> fun _ _ -> !cell
  in
  let set : state -> frame -> Value.t -> unit =
    match b with
    | Bslot (i, _) -> fun _ fr v -> fr.(i) <- v
    | Bglobal (cell, _) -> fun _ _ v -> cell := v
  in
  match op with
  | Set ->
    (match ty, cr with
     | Tint, (Kint _ | Kbool _ | Kfloat _) ->
       let f = as_int cr in
       Cunit (fun st fr -> set st fr (Value.Vint (f st fr)))
     | Tbool, (Kint _ | Kbool _ | Kfloat _) ->
       let f = as_truth cr in
       Cunit (fun st fr -> set st fr (Value.Vbool (f st fr)))
     | Tfloat, (Kint _ | Kbool _ | Kfloat _) ->
       let f = as_float cr in
       Cunit (fun st fr -> set st fr (Value.Vfloat (Value.Sp, Value.demote (f st fr))))
     | Tdouble, (Kint _ | Kbool _ | Kfloat _) ->
       let f = as_float cr in
       Cunit (fun st fr -> set st fr (Value.Vfloat (Value.Dp, f st fr)))
     | _ ->
       let vf = to_val cr in
       Cunit
         (fun st fr ->
           let v = vf st fr in
           set st fr (cast_like (get st fr) v)))
  | AddEq | SubEq | MulEq | DivEq ->
    let bop = binop_of_assign op in
    let loc = s.sloc in
    (match ty, cr with
     | Tint, (Kint _ | Kbool _) ->
       let f = as_int cr in
       (match bop with
        | Add ->
          Cunit
            (fun st fr ->
              let y = f st fr in
              let x = Value.to_int (get st fr) in
              count_int_op st;
              set st fr (Value.Vint (x + y)))
        | Sub ->
          Cunit
            (fun st fr ->
              let y = f st fr in
              let x = Value.to_int (get st fr) in
              count_int_op st;
              set st fr (Value.Vint (x - y)))
        | Mul ->
          Cunit
            (fun st fr ->
              let y = f st fr in
              let x = Value.to_int (get st fr) in
              count_int_op st;
              set st fr (Value.Vint (x * y)))
        | Div ->
          Cunit
            (fun st fr ->
              let y = f st fr in
              let x = Value.to_int (get st fr) in
              if y = 0 then runtime_error loc "integer division by zero";
              count_int_op st;
              set st fr (Value.Vint (x / y)))
        | _ -> assert false)
     | Tint, Kfloat (p, _) ->
       (* float compound op on an int variable: flop-counted at the rhs
          precision, result truncated back to int by [cast_like] *)
       let f = as_float cr in
       let cls = (match bop with Add | Sub -> Cadd | Mul -> Cmul | _ -> Cdiv) in
       let fop =
         match bop with
         | Add -> ( +. )
         | Sub -> ( -. )
         | Mul -> ( *. )
         | _ -> ( /. )
       in
       Cunit
         (fun st fr ->
           let y = f st fr in
           let x = Value.to_float (get st fr) in
           count_flop st p cls;
           let r = fop x y in
           let r = if p = Value.Sp then Value.demote r else r in
           set st fr (Value.Vint (int_of_float r)))
     | (Tfloat | Tdouble), (Kint _ | Kbool _ | Kfloat _) ->
       let sp = ty = Tfloat in
       let p =
         match ty, cr with
         | Tdouble, _ -> Value.Dp
         | _, Kfloat (Value.Dp, _) -> Value.Dp
         | _ -> Value.Sp
       in
       let f = as_float cr in
       let cls = (match bop with Add | Sub -> Cadd | Mul -> Cmul | _ -> Cdiv) in
       let fop =
         match bop with
         | Add -> ( +. )
         | Sub -> ( -. )
         | Mul -> ( *. )
         | _ -> ( /. )
       in
       Cunit
         (fun st fr ->
           let y = f st fr in
           let x = Value.to_float (get st fr) in
           count_flop st p cls;
           let r = fop x y in
           let r = if p = Value.Sp then Value.demote r else r in
           set st fr
             (if sp then Value.Vfloat (Value.Sp, Value.demote r)
              else Value.Vfloat (Value.Dp, r)))
     | _ ->
       let vf = to_val cr in
       Cunit
         (fun st fr ->
           let vr = vf st fr in
           let old = get st fr in
           set st fr (cast_like old (eval_binop st loc bop old vr))))

and compile_index_assign ctx venv (s : stmt) lhs base idx op (cr : cexp) : citem =
  let cb, tb = compile_expr ctx venv base in
  let ci, _ = compile_expr ctx venv idx in
  let bf = to_val cb in
  let lloc = lhs.eloc and sloc = s.sloc in
  let generic () =
    let vrf = to_val cr and vif = to_val ci in
    Cunit
      (fun st fr ->
        let vr = vrf st fr in
        let vb = bf st fr in
        let vi = vif st fr in
        match vb with
        | Value.Vptr ptr ->
          let i = Value.to_int vi in
          let elem = ptr.Value.base in
          let nv =
            match op with
            | Set -> vr
            | AddEq | SubEq | MulEq | DivEq ->
              let old =
                try Memory.load st.mem ptr i
                with Failure msg -> runtime_error lloc "%s" msg
              in
              count_load st elem (ptr.Value.offset + i);
              eval_binop st sloc (binop_of_assign op) old vr
          in
          (try Memory.store st.mem ptr i nv
           with Failure msg -> runtime_error lloc "%s" msg);
          count_store st elem (ptr.Value.offset + i)
        | _ -> runtime_error lloc "assigning through a non-pointer")
  in
  match tb, op, cr with
  | Some (Tptr (Tfloat | Tdouble)), Set, (Kint _ | Kbool _ | Kfloat _) ->
    let rf = as_float cr and inf = as_int ci in
    Cunit
      (fun st fr ->
        let y = rf st fr in
        match bf st fr with
        | Value.Vptr ptr ->
          let i = inf st fr in
          (try Memory.store_float st.mem ptr i y
           with Failure msg -> runtime_error lloc "%s" msg);
          count_store st ptr.Value.base (ptr.Value.offset + i)
        | _ -> runtime_error lloc "assigning through a non-pointer")
  | Some (Tptr Tint), Set, (Kint _ | Kbool _ | Kfloat _) ->
    let rn = as_int cr and inf = as_int ci in
    Cunit
      (fun st fr ->
        let y = rn st fr in
        match bf st fr with
        | Value.Vptr ptr ->
          let i = inf st fr in
          (try Memory.store_int st.mem ptr i y
           with Failure msg -> runtime_error lloc "%s" msg);
          count_store st ptr.Value.base (ptr.Value.offset + i)
        | _ -> runtime_error lloc "assigning through a non-pointer")
  | Some (Tptr Tbool), Set, (Kint _ | Kbool _ | Kfloat _) ->
    (* bool stores truth-test the value; [as_int] would truncate floats *)
    let rb = as_truth cr and inf = as_int ci in
    Cunit
      (fun st fr ->
        let y = rb st fr in
        match bf st fr with
        | Value.Vptr ptr ->
          let i = inf st fr in
          (try Memory.store_int st.mem ptr i (if y then 1 else 0)
           with Failure msg -> runtime_error lloc "%s" msg);
          count_store st ptr.Value.base (ptr.Value.offset + i)
        | _ -> runtime_error lloc "assigning through a non-pointer")
  | ( Some (Tptr ((Tfloat | Tdouble) as ety)),
      (AddEq | SubEq | MulEq | DivEq),
      (Kint _ | Kbool _ | Kfloat _) ) ->
    let bop = binop_of_assign op in
    let p =
      match ety, cr with
      | Tdouble, _ -> Value.Dp
      | _, Kfloat (Value.Dp, _) -> Value.Dp
      | _ -> Value.Sp
    in
    let cls = (match bop with Add | Sub -> Cadd | Mul -> Cmul | _ -> Cdiv) in
    let fop =
      match bop with Add -> ( +. ) | Sub -> ( -. ) | Mul -> ( *. ) | _ -> ( /. )
    in
    let rf = as_float cr and inf = as_int ci in
    Cunit
      (fun st fr ->
        let y = rf st fr in
        match bf st fr with
        | Value.Vptr ptr ->
          let i = inf st fr in
          let x =
            try Memory.load_float st.mem ptr i
            with Failure msg -> runtime_error lloc "%s" msg
          in
          count_load st ptr.Value.base (ptr.Value.offset + i);
          count_flop st p cls;
          let r = fop x y in
          let r = if p = Value.Sp then Value.demote r else r in
          (try Memory.store_float st.mem ptr i r
           with Failure msg -> runtime_error lloc "%s" msg);
          count_store st ptr.Value.base (ptr.Value.offset + i)
        | _ -> runtime_error lloc "assigning through a non-pointer")
  | Some (Tptr Tint), (AddEq | SubEq | MulEq | DivEq), (Kint _ | Kbool _) ->
    let bop = binop_of_assign op in
    let rn = as_int cr and inf = as_int ci in
    let finish st ptr i r =
      (try Memory.store_int st.mem ptr i r
       with Failure msg -> runtime_error lloc "%s" msg);
      count_store st ptr.Value.base (ptr.Value.offset + i)
    in
    Cunit
      (fun st fr ->
        let y = rn st fr in
        match bf st fr with
        | Value.Vptr ptr ->
          let i = inf st fr in
          let x =
            try Memory.load_int st.mem ptr i
            with Failure msg -> runtime_error lloc "%s" msg
          in
          count_load st ptr.Value.base (ptr.Value.offset + i);
          (match bop with
           | Add ->
             count_int_op st;
             finish st ptr i (x + y)
           | Sub ->
             count_int_op st;
             finish st ptr i (x - y)
           | Mul ->
             count_int_op st;
             finish st ptr i (x * y)
           | _ ->
             if y = 0 then runtime_error sloc "integer division by zero";
             count_int_op st;
             finish st ptr i (x / y))
        | _ -> runtime_error lloc "assigning through a non-pointer")
  | _ -> generic ()

and compile_block ctx (venv : venv) (blk : block) : state -> frame -> flow =
  let items_rev, _ =
    List.fold_left
      (fun (acc, venv) s ->
        let it, venv' = compile_stmt ctx venv s in
        (it :: acc, venv'))
      ([], venv) blk
  in
  chain (segment (List.rev items_rev))

(* ---- program compilation ---- *)

type cprogram = {
  cp_ginits : (state -> unit) list;
  cp_entry : cfunc option;
  cp_entry_name : string;
}

let empty_frame : frame = [||]

let compile ?(plan : Ir.plan = Hashtbl.create 0) (cfg : config) (p : program) :
    cprogram =
  let c_funcs = Hashtbl.create 16 in
  (* pass 1: function records, so call sites (including ones inside global
     initialisers) bind directly; bodies are filled in by pass 3.
     Hashtbl.replace makes the last duplicate name win, as in the walker. *)
  List.iter
    (fun fn ->
      let coerce =
        Array.of_list
          (List.map
             (fun prm ->
               match prm.prm_ty with
               | Tptr _ -> fun (v : Value.t) -> v
               | t -> fun v -> Value.coerce t v)
             fn.fparams)
      in
      Hashtbl.replace c_funcs fn.fname
        {
          cf_name = fn.fname;
          cf_loc = fn.floc;
          cf_coerce = coerce;
          cf_nslots = 0;
          cf_body = (fun _ _ -> Fnormal);
          cf_profiled = List.mem (Rfunc fn.fname) cfg.regions;
        })
    (funcs p);
  let c_globals = Hashtbl.create 16 in
  let mk_ctx () = { c_cfg = cfg; c_funcs; c_globals; c_plan = plan; c_nslots = 0 } in
  (* pass 2: global cells and their initialiser closures.  Each initialiser
     is compiled before its own cell is registered, so self-references and
     forward references fail with "unbound variable" like the walker's
     incremental binding. *)
  let ginits_rev =
    List.fold_left
      (fun acc g ->
        match g with
        | Gfunc _ -> acc
        | Gdecl d ->
          let cell = ref (Value.Vint 0) in
          let ctx = mk_ctx () in
          let init =
            match d.darray with
            | Some size_e ->
              let sz = as_int (fst (compile_expr ctx [] size_e)) in
              let name = d.dname and ety = d.dty in
              fun st ->
                cell := Value.Vptr (Memory.alloc st.mem ~name ~elem_ty:ety (sz st empty_frame))
            | None ->
              (match List.assoc_opt d.dname cfg.overrides with
               | Some ov ->
                 let v = Value.coerce d.dty ov in
                 fun _ -> cell := v
               | None ->
                 (match d.dinit with
                  | Some e0 ->
                    let cv = coerced_value ctx [] d.dty e0 in
                    fun st -> cell := cv st empty_frame
                  | None -> fun _ -> cell := Value.zero_of d.dty))
          in
          Hashtbl.replace c_globals d.dname (Bglobal (cell, decl_scalar_ty d));
          init :: acc)
      [] p.pglobals
  in
  (* pass 3: function bodies, with every global and function visible *)
  List.iter
    (fun fn ->
      let cf = Hashtbl.find c_funcs fn.fname in
      let ctx = mk_ctx () in
      let venv, nparams =
        List.fold_left
          (fun (venv, k) prm -> ((prm.prm_name, Bslot (k, prm.prm_ty)) :: venv, k + 1))
          ([], 0) fn.fparams
      in
      ctx.c_nslots <- nparams;
      let body = compile_block ctx venv fn.fbody in
      cf.cf_nslots <- ctx.c_nslots;
      cf.cf_body <- body)
    (funcs p);
  {
    cp_ginits = List.rev ginits_rev;
    cp_entry = Hashtbl.find_opt c_funcs cfg.entry;
    cp_entry_name = cfg.entry;
  }

let run ?plan (config : config) (p : program) : result =
  let cp = compile ?plan config p in
  let st = make_state config p in
  List.iter (fun init -> init st) cp.cp_ginits;
  match cp.cp_entry with
  | None -> runtime_error Loc.dummy "entry function %s not found" cp.cp_entry_name
  | Some cf ->
    let expects = Array.length cf.cf_coerce in
    if expects <> 0 then
      runtime_error cf.cf_loc "calling %s with %d arguments (expects %d)" cf.cf_name 0
        expects;
    let ret = invoke st cf empty_frame in
    assemble_result st ret
