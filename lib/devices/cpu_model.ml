type estimate = {
  ce_time_s : float;
  ce_compute_s : float;
  ce_memory_s : float;
  ce_threads : int;
  ce_overhead_s : float;
}

let compute_cycles (spec : Device.cpu_spec) (c : Counters.t) =
  let f = float_of_int in
  (f (c.flops_sp_add + c.flops_dp_add + c.flops_sp_mul + c.flops_dp_mul)
   *. spec.cyc_per_flop_addmul)
  +. (f (c.flops_sp_div + c.flops_dp_div) *. spec.cyc_per_flop_div)
  +. (f (c.flops_sp_special + c.flops_dp_special) *. spec.cyc_per_flop_special)
  +. (f c.int_ops *. spec.cyc_per_int_op)
  +. (f (c.loads + c.stores) *. spec.cyc_per_mem_op)
  +. (f c.branches *. 0.5)

let time_of_counters (spec : Device.cpu_spec) counters ~footprint_bytes ~threads
    ~parallel_regions =
  let threads = max 1 threads in
  let compute_s =
    compute_cycles spec counters /. (spec.freq_ghz *. 1e9)
    /. float_of_int threads
    /. (if threads = 1 then 1.0 else spec.omp_efficiency)
  in
  let memory_s =
    if footprint_bytes <= spec.llc_bytes then 0.0
    else begin
      let traffic = float_of_int (Counters.bytes counters) in
      let bw =
        if threads = 1 then spec.core_bw_gbs *. 1e9
        else Float.min (float_of_int threads *. spec.core_bw_gbs) spec.dram_bw_gbs *. 1e9
      in
      traffic /. bw
    end
  in
  let overhead_s =
    if threads = 1 then 0.0
    else float_of_int parallel_regions *. spec.omp_fork_us *. 1e-6
  in
  {
    ce_time_s = Float.max compute_s memory_s +. overhead_s;
    ce_compute_s = compute_s;
    ce_memory_s = memory_s;
    ce_threads = threads;
    ce_overhead_s = overhead_s;
  }

let single_thread spec (kp : Kprofile.t) =
  time_of_counters spec kp.kp_counters ~footprint_bytes:kp.kp_footprint_bytes
    ~threads:1 ~parallel_regions:0

let openmp spec ~threads (kp : Kprofile.t) =
  if not kp.kp_outer_parallel then single_thread spec kp
  else
    time_of_counters spec kp.kp_counters ~footprint_bytes:kp.kp_footprint_bytes
      ~threads ~parallel_regions:kp.kp_invocations
