(** FPGA execution-time and resource model (oneAPI HLS designs).

    The kernel's outermost loop becomes a pipeline initiated every II
    cycles; the unroll factor replicates the pipeline.  II comes from the
    dependence structure: 1 for parallel bodies and scalarised reductions
    (shift-register relaxation), the FP-adder latency for a serial inner
    loop carrying a floating-point accumulation.  A non-unrollable inner
    loop serialises the outer initiation to its whole duration (the
    paper's N-Body effect).

    Resources sum per-operator ALM/DSP/M20K cores over the pipeline body
    (fully-unrolled inner loops multiply), plus the board shell; the
    achieved clock degrades with utilisation (routing congestion).  The
    "unroll until overmap" DSE (Fig. 2) reads the utilisation report this
    model produces and stops above 90 % — Rush Larsen overmaps at
    unroll 1, reproducing the paper's unsynthesisable designs. *)

type params = {
  unroll : int;
  zero_copy : bool;    (** only effective on devices with USM support *)
}

val default_params : params
(** unroll 1, no zero-copy. *)

type resources = {
  r_alms : int;
  r_dsps : int;
  r_m20ks : int;
  r_alm_frac : float;  (** of the device, including shell *)
  r_dsp_frac : float;
  r_m20k_frac : float;
}

type estimate = {
  fe_time_s : float;
  fe_kernel_s : float;
  fe_transfer_s : float;
  fe_cycles : float;
  fe_ii : float;              (** effective initiation interval of the outer loop *)
  fe_resources : resources;
  fe_overmapped : bool;       (** > 90 % ALMs or DSPs: design not synthesisable *)
  fe_memory_limited : bool;   (** DDR bandwidth bound the pipeline *)
}

val overmap_threshold : float
(** 0.9 — the DSE's stopping condition from Fig. 2. *)

val resources_of : Device.fpga_spec -> Kstatic.t -> unroll:int -> resources

val estimate :
  ?resources:resources ->
  Device.fpga_spec ->
  Kstatic.t ->
  Kprofile.t ->
  params ->
  estimate
(** [resources], when given, must be [resources_of spec ks ~unroll] for
    the (clamped) [params.unroll]; passing it skips recomputing the
    report (the unroll DSE already evaluated it during the doubling
    loop). *)
