type link = {
  link_name : string;
  bw_gbs : float;
  latency_us : float;
}

let pcie_gen3 = { link_name = "PCIe Gen3 x16"; bw_gbs = 10.0; latency_us = 10.0 }

let time_s link ~bytes ~transactions =
  (float_of_int bytes /. (link.bw_gbs *. 1e9))
  +. (float_of_int transactions *. link.latency_us *. 1e-6)

let of_datainout link (dio : Datainout.t) =
  time_s link
    ~bytes:(dio.dio_bytes_in + dio.dio_bytes_out)
    ~transactions:(2 * dio.dio_invocations)
