type params = {
  blocksize : int;
  pinned : bool;
  shared_tiling : bool;
}

let default_params = { blocksize = 256; pinned = false; shared_tiling = false }

type estimate = {
  ge_time_s : float;
  ge_kernel_s : float;
  ge_transfer_s : float;
  ge_compute_s : float;
  ge_memory_s : float;
  ge_occupancy : float;
  ge_blocks_per_sm : int;
  ge_active_threads_per_sm : int;
  ge_regs_per_thread : int;
  ge_hiding_efficiency : float;
  ge_wave_efficiency : float;
  ge_launchable : bool;
}

let occupancy (spec : Device.gpu_spec) ~regs_per_thread ~blocksize ~shared_bytes =
  if blocksize <= 0 || blocksize > 1024 then 0
  else begin
    let by_blocks = spec.max_blocks_per_sm in
    let by_threads = spec.max_threads_per_sm / blocksize in
    let by_regs =
      let per_block = regs_per_thread * blocksize in
      if per_block = 0 then spec.max_blocks_per_sm else spec.regs_per_sm / per_block
    in
    let by_shared =
      if shared_bytes = 0 then spec.max_blocks_per_sm
      else spec.shared_mem_per_sm / shared_bytes
    in
    max 0 (min (min by_blocks by_threads) (min by_regs by_shared))
  end

let infinite =
  {
    ge_time_s = Float.infinity;
    ge_kernel_s = Float.infinity;
    ge_transfer_s = 0.0;
    ge_compute_s = Float.infinity;
    ge_memory_s = 0.0;
    ge_occupancy = 0.0;
    ge_blocks_per_sm = 0;
    ge_active_threads_per_sm = 0;
    ge_regs_per_thread = 0;
    ge_hiding_efficiency = 0.0;
    ge_wave_efficiency = 0.0;
    ge_launchable = false;
  }

let estimate (spec : Device.gpu_spec) (ks : Kstatic.t) (kp : Kprofile.t)
    (params : params) =
  let regs = min ks.ks_regs_estimate spec.max_regs_per_thread in
  let shared_bytes =
    if params.shared_tiling then max ks.ks_local_array_bytes (params.blocksize * 8)
    else ks.ks_local_array_bytes
  in
  let blocks_per_sm =
    occupancy spec ~regs_per_thread:regs ~blocksize:params.blocksize ~shared_bytes
  in
  if blocks_per_sm = 0 then infinite
  else begin
    let active = blocks_per_sm * params.blocksize in
    let occ = float_of_int active /. float_of_int spec.max_threads_per_sm in
    let hiding =
      Float.min 1.0
        (float_of_int active
         /. (float_of_int spec.cores_per_sm *. spec.latency_hiding_threads_per_core))
    in
    (* wave quantisation over the whole grid *)
    let total_threads = max 1 kp.kp_outer_trips in
    let total_blocks = (total_threads + params.blocksize - 1) / params.blocksize in
    let blocks_per_wave = spec.sms * blocks_per_sm in
    let waves = (total_blocks + blocks_per_wave - 1) / blocks_per_wave in
    let wave_eff =
      float_of_int total_blocks /. float_of_int (waves * blocks_per_wave)
    in
    (* pipeline times over the whole run *)
    let c = kp.kp_counters in
    let f = float_of_int in
    let cycle_rate = f spec.sms *. spec.freq_ghz *. 1e9 in
    let sp_rate = cycle_rate *. spec.sp_flops_per_cycle_per_sm in
    let dp_rate = sp_rate *. spec.dp_ratio in
    let sfu_rate = cycle_rate *. f spec.sfu_per_sm in
    let int_rate = sp_rate /. 2.0 in
    let compute_s =
      (f (c.flops_sp_add + c.flops_sp_mul) /. sp_rate)
      +. (f c.flops_sp_div /. (sfu_rate /. 2.0))
      +. (f c.flops_sp_special /. sfu_rate)
      +. (f (c.flops_dp_add + c.flops_dp_mul) /. dp_rate)
      +. (f c.flops_dp_div /. (dp_rate /. 4.0))
      +. (f c.flops_dp_special /. (dp_rate /. 4.0))
      +. (f c.int_ops /. int_rate)
    in
    (* register spills: live state beyond 255 registers round-trips through
       local memory (the paper's Rush Larsen saturation effect) *)
    let spill_traffic =
      if ks.ks_regs_raw <= spec.max_regs_per_thread then 0.0
      else begin
        let frac =
          f (ks.ks_regs_raw - spec.max_regs_per_thread) /. f ks.ks_regs_raw
        in
        frac *. f (Counters.flops c) *. 8.0 *. 8.0
      end
    in
    let traffic =
      let raw = f (Counters.bytes c) in
      (* uncoalesced gathers fetch a whole 32B sector per 4B element *)
      let gather_frac =
        if ks.ks_ops.Kstatic.mem_sites = 0 then 0.0
        else f ks.ks_gather_sites /. f ks.ks_ops.Kstatic.mem_sites
      in
      let raw = raw *. (1.0 +. (7.0 *. gather_frac)) in
      if params.shared_tiling then raw /. f params.blocksize else raw
    in
    let mem_bw =
      if kp.kp_footprint_bytes <= spec.l2_bytes then spec.l2_bw_gbs *. 1e9
      else spec.mem_bw_gbs *. 1e9
    in
    (* spills stream at raw DRAM bandwidth; occupancy cannot hide them *)
    let spill_s = spill_traffic /. (spec.mem_bw_gbs *. 1e9) in
    let memory_s = traffic /. mem_bw in
    let derate = hiding *. wave_eff in
    let kernel_s =
      (Float.max compute_s memory_s /. Float.max derate 1e-9)
      +. spill_s
      +. (f kp.kp_invocations *. spec.launch_overhead_us *. 1e-6)
    in
    let pcie_bw =
      (if params.pinned then spec.pcie_pinned_gbs else spec.pcie_pageable_gbs) *. 1e9
    in
    let transfer_s =
      (f (kp.kp_bytes_in + kp.kp_bytes_out) /. pcie_bw)
      +. (f kp.kp_invocations *. 2.0 *. spec.pcie_latency_us *. 1e-6)
    in
    {
      ge_time_s = kernel_s +. transfer_s;
      ge_kernel_s = kernel_s;
      ge_transfer_s = transfer_s;
      ge_compute_s = compute_s;
      ge_memory_s = memory_s +. spill_s;
      ge_occupancy = occ;
      ge_blocks_per_sm = blocks_per_sm;
      ge_active_threads_per_sm = active;
      ge_regs_per_thread = regs;
      ge_hiding_efficiency = hiding;
      ge_wave_efficiency = wave_eff;
      ge_launchable = true;
    }
  end
