type op_counts = {
  sp_addsub : int;
  sp_mul : int;
  sp_div : int;
  sp_sqrt : int;
  sp_heavy : int;
  dp_addsub : int;
  dp_mul : int;
  dp_div : int;
  dp_sqrt : int;
  dp_heavy : int;
  int_ops : int;
  mem_sites : int;
  local_sites : int;  (* accesses to kernel-local arrays: registers/BRAM, not LSUs *)
}

type t = {
  ks_fname : string;
  ks_ops : op_counts;
  ks_locals : int;
  ks_special_calls : int;
  ks_regs_estimate : int;
  ks_regs_raw : int;
  ks_has_serial_inner : inner_summary option;
  ks_local_array_bytes : int;
  ks_gather_sites : int;
}

and inner_summary = {
  is_sid : int;
  is_fp_reduction : bool;
}

let zero_ops =
  {
    sp_addsub = 0;
    sp_mul = 0;
    sp_div = 0;
    sp_sqrt = 0;
    sp_heavy = 0;
    dp_addsub = 0;
    dp_mul = 0;
    dp_div = 0;
    dp_sqrt = 0;
    dp_heavy = 0;
    int_ops = 0;
    mem_sites = 0;
    local_sites = 0;
  }

let scale_ops k o =
  {
    sp_addsub = k * o.sp_addsub;
    sp_mul = k * o.sp_mul;
    sp_div = k * o.sp_div;
    sp_sqrt = k * o.sp_sqrt;
    sp_heavy = k * o.sp_heavy;
    dp_addsub = k * o.dp_addsub;
    dp_mul = k * o.dp_mul;
    dp_div = k * o.dp_div;
    dp_sqrt = k * o.dp_sqrt;
    dp_heavy = k * o.dp_heavy;
    int_ops = k * o.int_ops;
    mem_sites = k * o.mem_sites;
    local_sites = k * o.local_sites;
  }

let add_ops a b =
  {
    sp_addsub = a.sp_addsub + b.sp_addsub;
    sp_mul = a.sp_mul + b.sp_mul;
    sp_div = a.sp_div + b.sp_div;
    sp_sqrt = a.sp_sqrt + b.sp_sqrt;
    sp_heavy = a.sp_heavy + b.sp_heavy;
    dp_addsub = a.dp_addsub + b.dp_addsub;
    dp_mul = a.dp_mul + b.dp_mul;
    dp_div = a.dp_div + b.dp_div;
    dp_sqrt = a.dp_sqrt + b.dp_sqrt;
    dp_heavy = a.dp_heavy + b.dp_heavy;
    int_ops = a.int_ops + b.int_ops;
    mem_sites = a.mem_sites + b.mem_sites;
    local_sites = a.local_sites + b.local_sites;
  }

let total_flop_sites o =
  o.sp_addsub + o.sp_mul + o.sp_div + o.sp_sqrt + o.sp_heavy + o.dp_addsub + o.dp_mul
  + o.dp_div + o.dp_sqrt + o.dp_heavy

let sqrt_names = [ "sqrt"; "sqrtf"; "rsqrt"; "rsqrtf" ]

let heavy_names =
  [ "sin"; "sinf"; "cos"; "cosf"; "tan"; "tanf"; "exp"; "expf"; "log"; "logf";
    "pow"; "powf"; "tanh"; "tanhf"; "erf"; "erff" ]

(* expression type with a lenient fallback: generated kernels are
   type-correct, but we never want feature extraction to fail *)
let ty_of tenv e =
  try Typecheck.expr_ty tenv e with Typecheck.Type_error _ -> Ast.Tdouble

let is_sp tenv a b =
  let sp e = Ast.equal_ty (ty_of tenv e) Ast.Tfloat in
  let fl e = Ast.is_float_ty (ty_of tenv e) in
  (* single-precision op when at least one side is float and none is double *)
  (sp a || sp b) && not (Ast.equal_ty (ty_of tenv a) Ast.Tdouble)
  && not (Ast.equal_ty (ty_of tenv b) Ast.Tdouble)
  && (fl a || fl b)

let is_float_op tenv a b =
  Ast.is_float_ty (ty_of tenv a) || Ast.is_float_ty (ty_of tenv b)

(* ops of one expression evaluation; [is_local] marks kernel-local arrays
   whose accesses become registers/BRAM rather than memory load-store units *)
let rec expr_ops ~is_local tenv (e : Ast.expr) : op_counts =
  let expr_ops = expr_ops ~is_local in
  let children =
    List.fold_left (fun acc c -> add_ops acc (expr_ops tenv c)) zero_ops
      (Ast.expr_children e)
  in
  match e.edesc with
  | Binary ((Add | Sub | Mul | Div) as op, a, b) ->
    let fl = is_float_op tenv a b in
    let sp = fl && is_sp tenv a b in
    let bump =
      match op, fl, sp with
      | (Add | Sub), true, true -> { zero_ops with sp_addsub = 1 }
      | (Add | Sub), true, false -> { zero_ops with dp_addsub = 1 }
      | Mul, true, true -> { zero_ops with sp_mul = 1 }
      | Mul, true, false -> { zero_ops with dp_mul = 1 }
      | Div, true, true -> { zero_ops with sp_div = 1 }
      | Div, true, false -> { zero_ops with dp_div = 1 }
      | (Add | Sub | Mul | Div), false, _ -> { zero_ops with int_ops = 1 }
      | _ -> zero_ops
    in
    add_ops children bump
  | Binary ((Mod | Lt | Le | Gt | Ge | Eq | Ne | And | Or), _, _) ->
    add_ops children { zero_ops with int_ops = 1 }
  | Unary (Neg, a) ->
    let bump =
      if Ast.is_float_ty (ty_of tenv a) then
        if Ast.equal_ty (ty_of tenv a) Ast.Tfloat then { zero_ops with sp_addsub = 1 }
        else { zero_ops with dp_addsub = 1 }
      else { zero_ops with int_ops = 1 }
    in
    add_ops children bump
  | Unary (Not, _) -> add_ops children { zero_ops with int_ops = 1 }
  | Call (name, _) ->
    let single = String.length name > 0 && name.[String.length name - 1] = 'f' && name <> "erf" in
    let bump =
      if List.mem name sqrt_names then
        if single then { zero_ops with sp_sqrt = 1 } else { zero_ops with dp_sqrt = 1 }
      else if List.mem name heavy_names then
        if single then { zero_ops with sp_heavy = 1 } else { zero_ops with dp_heavy = 1 }
      else if List.mem name [ "fabs"; "fabsf"; "fmin"; "fminf"; "fmax"; "fmaxf"; "floor"; "floorf"; "ceil"; "ceilf" ]
      then
        if single then { zero_ops with sp_addsub = 1 } else { zero_ops with dp_addsub = 1 }
      else { zero_ops with int_ops = 1 }
    in
    add_ops children bump
  | Index (base, _) ->
    let local =
      match Query.array_base_name base with Some v -> is_local v | None -> false
    in
    if local then add_ops children { zero_ops with local_sites = 1 }
    else add_ops children { zero_ops with mem_sites = 1 }
  | Cond (_, _, _) -> add_ops children { zero_ops with int_ops = 1 }
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ | Cast _ -> children

type walk_acc = {
  mutable ops : op_counts;
  mutable locals : int;
  mutable specials : int;
  mutable serial_inner : inner_summary option;
  mutable local_array_bytes : int;
}

(* memory sites whose subscript is neither affine in the parallel index nor
   loop-invariant nor block-affine: an uncoalesced gather/scatter on a GPU *)
let gather_sites ~consts ~index (blk : Ast.block) =
  let n = ref 0 in
  let local_indices = ref [ index ] in
  let classify_sub mult sub =
    (* coalesced if affine/invariant in the parallel index or in any nested
       loop index (unit-ish strides); everything else is a gather *)
    let ok =
      List.exists
        (fun ix ->
          match Affine.classify ~index:ix ~consts sub with
          | Affine.Affine _ | Affine.Invariant | Affine.Linear_plus _ -> true
          | Affine.Unknown -> false)
        !local_indices
      (* a subscript mentioning no loop index at all is a broadcast *)
      || List.for_all (fun ix -> not (Affine.mentions ix sub)) !local_indices
    in
    if not ok then n := !n + mult
  in
  let rec expr_walk mult (e : Ast.expr) =
    (match e.Ast.edesc with
     | Ast.Index (_, sub) -> classify_sub mult sub
     | _ -> ());
    List.iter (expr_walk mult) (Ast.expr_children e)
  in
  let rec stmt_walk mult (s : Ast.stmt) =
    let mult' =
      match s.Ast.sdesc with
      | Ast.For (h, _) ->
        local_indices := h.Ast.index :: !local_indices;
        (match Dependence.static_trip_count consts h with
         | Some t when t <= 64 -> mult * t
         | Some _ | None -> mult)
      | _ -> mult
    in
    List.iter (expr_walk mult') (Ast.stmt_exprs s);
    List.iter (List.iter (stmt_walk mult')) (Ast.stmt_sub_blocks s)
  in
  List.iter (stmt_walk 1) blk;
  !n

(* Memory sites whose address is constant once the fixed loops are
   unrolled (they mention neither the pipeline index nor any serial loop
   index) and whose array is read-only: HLS caches these in on-chip
   registers/BRAM, so they are local sites, not LSUs. *)
let cacheable_sites ~unroll_threshold ~consts ~pipeline_index ~read_only (body : Ast.block) =
  let n = ref 0 in
  (* [mult] mirrors the unroll scaling applied to op counts *)
  let rec walk_block serial mult blk = List.iter (walk_stmt serial mult) blk
  and walk_stmt serial mult (s : Ast.stmt) =
    let serial', mult' =
      match s.Ast.sdesc with
      | Ast.For (h, _) ->
        (match Dependence.static_trip_count consts h with
         | Some t when t <= unroll_threshold -> (serial, mult * t)
         | Some _ | None -> (h.Ast.index :: serial, mult))
      | _ -> (serial, mult)
    in
    let check (e : Ast.expr) =
      let rec expr_walk (e : Ast.expr) =
        (match e.Ast.edesc with
         | Ast.Index (base, sub) ->
           (match Query.array_base_name base with
            | Some arr
              when read_only arr
                   && List.for_all (fun ix -> not (Affine.mentions ix sub)) serial' ->
              n := !n + mult'
            | Some _ | None -> ())
         | _ -> ());
        List.iter expr_walk (Ast.expr_children e)
      in
      expr_walk e
    in
    List.iter check (Ast.stmt_exprs s);
    List.iter (walk_block serial' mult') (Ast.stmt_sub_blocks s)
  in
  walk_block [ pipeline_index ] 1 body;
  !n

let of_kernel ?consts ?(unroll_threshold = 64) ?(require_unroll_pragma = false)
    ?thread_index (p : Ast.program) ~fname =
  match Ast.find_func p fname with
  | None -> Error (Printf.sprintf "kernel %s not found" fname)
  | Some fn ->
    (match Query.outermost_loops fn, thread_index with
     | [], None -> Error (Printf.sprintf "kernel %s has no loop" fname)
     | outermost, _ ->
       let index, body =
         match outermost with
         | outer :: _ -> (outer.Query.lm_header.Ast.index, outer.Query.lm_body)
         | [] ->
           ((match thread_index with Some ix -> ix | None -> assert false), fn.Ast.fbody)
       in
       let consts = match consts with Some c -> c | None -> Consteval.of_program p in
       let tenv0 = Typecheck.env_for_func p fn in
       let acc =
         {
           ops = zero_ops;
           locals = 0;
           specials = 0;
           serial_inner = None;
           local_array_bytes = 0;
         }
       in
       let local_arrays = ref [] in
       let is_local v = List.mem v !local_arrays in
       let expr_ops = expr_ops ~is_local in
       let count_specials_expr (e : Ast.expr) =
         let n = ref 0 in
         ignore
           (Ast.fold_expr
              (fun () e ->
                match e.Ast.edesc with
                | Ast.Call (name, _)
                  when List.mem name sqrt_names || List.mem name heavy_names ->
                  incr n
                | _ -> ())
              () e);
         !n
       in
       (* returns ops of one iteration of the given block *)
       let rec block_ops tenv (blk : Ast.block) : op_counts =
         let ops, _ =
           List.fold_left
             (fun (ops, tenv) s ->
               let so, tenv = stmt_ops tenv s in
               (add_ops ops so, tenv))
             (zero_ops, tenv) blk
         in
         ops
       and stmt_ops tenv (s : Ast.stmt) : op_counts * Typecheck.env =
         List.iter (fun e -> acc.specials <- acc.specials + count_specials_expr e)
           (Ast.stmt_exprs s);
         match s.sdesc with
         | Decl d ->
           let ops =
             match d.dinit with Some e -> expr_ops tenv e | None -> zero_ops
           in
           (match d.darray with
            | Some size ->
              let n =
                match Consteval.eval_int consts size with Some n -> n | None -> 64
              in
              local_arrays := d.dname :: !local_arrays;
              acc.local_array_bytes <-
                acc.local_array_bytes + (n * Ast.sizeof d.dty)
            | None -> acc.locals <- acc.locals + 1);
           let tenv =
             Typecheck.bind tenv d.dname
               (match d.darray with Some _ -> Ast.Tptr d.dty | None -> d.dty)
           in
           (ops, tenv)
         | Assign (lhs, op, rhs) ->
           let lops = expr_ops tenv lhs in
           let rops = expr_ops tenv rhs in
           let extra =
             match op with
             | Ast.Set -> zero_ops
             | Ast.AddEq | Ast.SubEq ->
               if Ast.is_float_ty (ty_of tenv lhs) then
                 if Ast.equal_ty (ty_of tenv lhs) Ast.Tfloat then
                   { zero_ops with sp_addsub = 1 }
                 else { zero_ops with dp_addsub = 1 }
               else { zero_ops with int_ops = 1 }
             | Ast.MulEq ->
               if Ast.is_float_ty (ty_of tenv lhs) then
                 if Ast.equal_ty (ty_of tenv lhs) Ast.Tfloat then
                   { zero_ops with sp_mul = 1 }
                 else { zero_ops with dp_mul = 1 }
               else { zero_ops with int_ops = 1 }
             | Ast.DivEq ->
               if Ast.is_float_ty (ty_of tenv lhs) then
                 if Ast.equal_ty (ty_of tenv lhs) Ast.Tfloat then
                   { zero_ops with sp_div = 1 }
                 else { zero_ops with dp_div = 1 }
               else { zero_ops with int_ops = 1 }
           in
           (add_ops (add_ops lops rops) extra, tenv)
         | Expr_stmt e -> (expr_ops tenv e, tenv)
         | If (c, b1, b2) ->
           (* hardware instantiates both arms *)
           let cops = expr_ops tenv c in
           let t = block_ops tenv b1 in
           let f = block_ops tenv b2 in
           (add_ops cops (add_ops t f), tenv)
         | For (h, body) ->
           let tenv_body = Typecheck.bind tenv h.index Ast.Tint in
           let body_ops = block_ops tenv_body body in
           let annotated =
             (not require_unroll_pragma)
             || List.exists (fun (pr : Ast.pragma) -> pr.Ast.pname = "unroll") s.Ast.pragmas
           in
           let trips =
             match Dependence.static_trip_count consts h with
             | Some n when n <= unroll_threshold && annotated -> Some n
             | Some _ | None -> None
           in
           (match trips with
            | Some n -> (scale_ops n body_ops, tenv)
            | None ->
              (* a serially pipelined inner loop: hardware once *)
              if acc.serial_inner = None then begin
                let lm =
                  List.find_opt
                    (fun (lm : Query.loop_match) -> lm.lm_stmt.sid = s.sid)
                    (Query.loops_in_func fn)
                in
                let fp_red =
                  match lm with
                  | Some lm ->
                    let v = Dependence.analyse_loop ~consts p lm in
                    List.exists
                      (fun (r : Dependence.reduction) -> Ast.is_float_ty r.red_ty)
                      v.Dependence.reductions
                  | None -> false
                in
                acc.serial_inner <- Some { is_sid = s.sid; is_fp_reduction = fp_red }
              end;
              (body_ops, tenv))
         | While (_, body) ->
           if acc.serial_inner = None then
             acc.serial_inner <- Some { is_sid = s.sid; is_fp_reduction = false };
           (block_ops tenv body, tenv)
         | Return (Some e) -> (expr_ops tenv e, tenv)
         | Return None | Break | Continue -> (zero_ops, tenv)
         | Scope body -> (block_ops tenv body, tenv)
       in
       let tenv = Typecheck.bind tenv0 index Ast.Tint in
       let ops = block_ops tenv body in
       (* re-classify cacheable read-only sites as local *)
       let written = Query.writes_in_block body in
       let read_only arr =
         (not (List.mem arr written))
         && List.exists
              (fun (prm : Ast.param) ->
                prm.Ast.prm_name = arr
                && match prm.Ast.prm_ty with Ast.Tptr _ -> true | _ -> false)
              fn.Ast.fparams
       in
       let cacheable =
         min ops.mem_sites
           (cacheable_sites ~unroll_threshold ~consts ~pipeline_index:index ~read_only
              body)
       in
       let ops =
         {
           ops with
           mem_sites = ops.mem_sites - cacheable;
           local_sites = ops.local_sites + cacheable;
         }
       in
       acc.ops <- ops;
       (* GPU registers-per-thread heuristic: base ISA state, two registers
          per live scalar, working registers for each transcendental call,
          address registers per memory site.  Very large estimates spill:
          the compiler caps at 255 (the Rush Larsen effect). *)
       let raw_regs =
         16 + (5 * acc.locals / 2) + (4 * acc.specials) + acc.ops.mem_sites
       in
       let regs = if raw_regs > 200 then 255 else raw_regs in
       Ok
         {
           ks_fname = fname;
           ks_ops = ops;
           ks_locals = acc.locals;
           ks_special_calls = acc.specials;
           ks_regs_estimate = regs;
           ks_regs_raw = raw_regs;
           ks_has_serial_inner = acc.serial_inner;
           ks_local_array_bytes = acc.local_array_bytes;
           ks_gather_sites = gather_sites ~consts ~index body;
         })
