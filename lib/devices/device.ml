type cpu_spec = {
  cpu_name : string;
  cores : int;
  freq_ghz : float;
  cyc_per_flop_addmul : float;
  cyc_per_flop_div : float;
  cyc_per_flop_special : float;
  cyc_per_int_op : float;
  cyc_per_mem_op : float;
  dram_bw_gbs : float;
  core_bw_gbs : float;
  llc_bytes : int;
  cache_bw_core_gbs : float;
  omp_fork_us : float;
  omp_efficiency : float;
}

type gpu_spec = {
  gpu_name : string;
  sms : int;
  cores_per_sm : int;
  freq_ghz : float;
  regs_per_sm : int;
  max_regs_per_thread : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  shared_mem_per_sm : int;
  sp_flops_per_cycle_per_sm : float;
  dp_ratio : float;
  sfu_per_sm : int;
  mem_bw_gbs : float;
  l2_bytes : int;
  l2_bw_gbs : float;
  latency_hiding_threads_per_core : float;
  launch_overhead_us : float;
  pcie_pageable_gbs : float;
  pcie_pinned_gbs : float;
  pcie_latency_us : float;
}

type fpga_spec = {
  fpga_name : string;
  alms : int;
  dsps : int;
  m20ks : int;
  fmax_mhz : float;
  ddr_bw_gbs : float;
  usm_zero_copy : bool;
  shell_alm_frac : float;
  shell_dsp_frac : float;
  fadd_latency : int;
  pipeline_depth : int;
  fpga_pcie_gbs : float;
  fpga_pcie_latency_us : float;
  reconfig_overhead_ms : float;
}

let epyc_7543 =
  {
    cpu_name = "AMD EPYC 7543 (32c @ 2.8GHz)";
    cores = 32;
    freq_ghz = 2.8;
    (* scalar, unoptimised reference code: roughly one dependent FP op per
       cycle, microcoded division, library transcendentals *)
    cyc_per_flop_addmul = 0.7;
    cyc_per_flop_div = 14.0;
    cyc_per_flop_special = 25.0;
    cyc_per_int_op = 0.35;
    cyc_per_mem_op = 0.6;
    dram_bw_gbs = 190.0;
    core_bw_gbs = 22.0;
    llc_bytes = 256 * 1024 * 1024;
    cache_bw_core_gbs = 60.0;
    omp_fork_us = 6.0;
    omp_efficiency = 0.92;
  }

let gtx_1080_ti =
  {
    gpu_name = "NVIDIA GeForce GTX 1080 Ti";
    sms = 28;
    cores_per_sm = 128;
    freq_ghz = 1.58;
    regs_per_sm = 65536;
    max_regs_per_thread = 255;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    shared_mem_per_sm = 96 * 1024;
    (* achieved rates for compiler-generated kernels (~0.4 of peak) *)
    sp_flops_per_cycle_per_sm = 96.0;
    dp_ratio = 1.0 /. 32.0;
    sfu_per_sm = 20;
    mem_bw_gbs = 484.0;
    l2_bytes = 2816 * 1024;
    l2_bw_gbs = 1200.0;
    latency_hiding_threads_per_core = 3.0;
    launch_overhead_us = 6.0;
    pcie_pageable_gbs = 4.0;
    pcie_pinned_gbs = 7.0;
    pcie_latency_us = 12.0;
  }

let rtx_2080_ti =
  {
    gpu_name = "NVIDIA GeForce RTX 2080 Ti";
    sms = 68;
    cores_per_sm = 64;
    freq_ghz = 1.545;
    regs_per_sm = 65536;
    max_regs_per_thread = 255;
    max_threads_per_sm = 1024;
    max_blocks_per_sm = 16;
    shared_mem_per_sm = 64 * 1024;
    sp_flops_per_cycle_per_sm = 48.0;
    dp_ratio = 1.0 /. 32.0;
    sfu_per_sm = 10;
    mem_bw_gbs = 616.0;
    l2_bytes = 5632 * 1024;
    l2_bw_gbs = 2200.0;
    latency_hiding_threads_per_core = 3.0;
    launch_overhead_us = 5.0;
    pcie_pageable_gbs = 4.0;
    pcie_pinned_gbs = 7.5;
    pcie_latency_us = 12.0;
  }

let pac_arria10 =
  {
    fpga_name = "Intel PAC Arria 10 GX";
    alms = 427_200;
    dsps = 1518;
    m20ks = 2713;
    fmax_mhz = 240.0;
    ddr_bw_gbs = 34.0;
    usm_zero_copy = false;
    shell_alm_frac = 0.20;
    shell_dsp_frac = 0.05;
    fadd_latency = 8;
    pipeline_depth = 220;
    fpga_pcie_gbs = 7.0;
    fpga_pcie_latency_us = 20.0;
    reconfig_overhead_ms = 0.0;
  }

let pac_stratix10 =
  {
    fpga_name = "Intel PAC Stratix 10 SX (D5005)";
    alms = 933_120;
    dsps = 5760;
    m20ks = 11_721;
    fmax_mhz = 300.0;
    ddr_bw_gbs = 76.0;
    usm_zero_copy = true;
    shell_alm_frac = 0.18;
    shell_dsp_frac = 0.05;
    fadd_latency = 6;
    pipeline_depth = 260;
    fpga_pcie_gbs = 10.0;
    fpga_pcie_latency_us = 20.0;
    reconfig_overhead_ms = 0.0;
  }

type target =
  | Tcpu of cpu_spec
  | Tgpu of gpu_spec
  | Tfpga of fpga_spec

let target_name = function
  | Tcpu c -> c.cpu_name
  | Tgpu g -> g.gpu_name
  | Tfpga f -> f.fpga_name

let all_targets =
  [
    Tcpu epyc_7543;
    Tgpu gtx_1080_ti;
    Tgpu rtx_2080_ti;
    Tfpga pac_arria10;
    Tfpga pac_stratix10;
  ]
