(** Host-accelerator transfer model shared by PSA decisions.

    The informed strategy's first test (Fig. 3) compares
    [T_data_transfer] against [T_cpu]; this module provides the estimate
    for an arbitrary link before a target is chosen. *)

type link = {
  link_name : string;
  bw_gbs : float;
  latency_us : float;
}

val pcie_gen3 : link
(** A generic PCIe Gen3 x16 accelerator link, used target-independently. *)

val time_s : link -> bytes:int -> transactions:int -> float
(** [bytes / bandwidth + transactions * latency]. *)

val of_datainout : link -> Datainout.t -> float
(** Transfer time of a profiled kernel's in+out traffic (two transactions
    per invocation: in and out). *)
