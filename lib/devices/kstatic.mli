(** Static kernel features: the operation mix, local-variable pressure and
    memory-port count of a kernel's pipeline body.

    The FPGA model instantiates hardware for every operation that appears in
    the source (fully-unrolled inner loops multiply their body), so these
    are *static* counts — unlike {!Kprofile} which counts executed events.
    The GPU model derives its registers-per-thread estimate from the same
    features. *)

type op_counts = {
  sp_addsub : int;
  sp_mul : int;
  sp_div : int;
  sp_sqrt : int;        (** sqrt / rsqrt — cheaper cores than transcendentals *)
  sp_heavy : int;       (** exp/log/pow/sin/... *)
  dp_addsub : int;
  dp_mul : int;
  dp_div : int;
  dp_sqrt : int;
  dp_heavy : int;
  int_ops : int;
  mem_sites : int;      (** static load/store sites (LSUs on the FPGA) *)
  local_sites : int;    (** accesses to kernel-local arrays (registers/BRAM) *)
}

type t = {
  ks_fname : string;
  ks_ops : op_counts;           (** per outer-iteration pipeline instance *)
  ks_locals : int;              (** scalar locals declared in the body *)
  ks_special_calls : int;       (** static transcendental/sqrt call sites *)
  ks_regs_estimate : int;       (** GPU registers per thread (capped at 255) *)
  ks_regs_raw : int;            (** uncapped estimate; the excess spills *)
  ks_has_serial_inner : inner_summary option;
      (** a nested loop that is not fully unrolled (pipelines separately) *)
  ks_local_array_bytes : int;   (** bytes of fixed-size local arrays *)
  ks_gather_sites : int;        (** memory sites whose subscript is not affine
                                    in the parallel index (uncoalesced on GPU) *)
}

and inner_summary = {
  is_sid : int;
  is_fp_reduction : bool;       (** its recurrence is an FP accumulation *)
}

val zero_ops : op_counts

val of_kernel :
  ?consts:Consteval.env ->
  ?unroll_threshold:int ->
  ?require_unroll_pragma:bool ->
  ?thread_index:string ->
  Ast.program ->
  fname:string ->
  (t, string) result
(** Analyse the kernel function's outermost loop body — or, when the
    function has no loop (a GPU thread body whose outer loop became the
    grid), its whole body; pass [thread_index] so gather classification
    knows the parallel index in that case.  Inner loops with a static trip
    count at most [unroll_threshold] (default 64) count as spatially
    unrolled: their body multiplies by the trip count (when
    [require_unroll_pragma] is set — the HLS view — only loops annotated
    [#pragma unroll] qualify).  Deeper non-unrollable loops count once and
    are reported in [ks_has_serial_inner]. *)

val total_flop_sites : op_counts -> int
