(** Kernel profile: the bundle of dynamic observations about an extracted
    hotspot kernel that every device model consumes.

    Produced by one profiled interpreter run (loop profiling + kernel
    region + alias tracing) plus the static dependence verdicts. *)

type inner_loop = {
  il_sid : int;
  il_static_trips : int option;
  il_avg_trips : float;              (** dynamic iterations per entry *)
  il_iters_per_outer : float;        (** total iterations per outer-loop iteration
                                         (captures the whole nest below this loop) *)
  il_fully_unrollable : bool;        (** static trips under the unroll threshold *)
  il_fp_reduction : bool;            (** carries a floating-point accumulation *)
  il_parallel : bool;                (** strictly independent: no carried deps and no reductions *)
}

type t = {
  kp_kernel : string;
  kp_invocations : int;              (** kernel calls during the run *)
  kp_outer_sid : int;                (** outermost kernel loop statement id *)
  kp_outer_trips : int;              (** total outer iterations across the run *)
  kp_counters : Counters.t;          (** kernel-region event counts, whole run *)
  kp_bytes_in : int;
  kp_bytes_out : int;
  kp_footprint_bytes : int;          (** distinct bytes touched *)
  kp_outer_verdict : Dependence.verdict;
  kp_outer_parallel : bool;          (** parallel up to reductions *)
  kp_inner : inner_loop list;        (** loops nested in the outer loop *)
  kp_no_alias : bool;                (** pointer args never aliased *)
  kp_cpu_baseline_result : Machine.result; (** the profiling run itself *)
}

val collect :
  ?config:Machine.config ->
  ?unroll_threshold:int ->
  Ast.program ->
  kernel:string ->
  (t, string) result
(** Profile the program and assemble the kernel profile.  Fails when the
    kernel has no loop or was never called. *)

val ops_per_outer_iter : t -> float
(** Weighted flops per outer-loop iteration. *)

val scale : t -> int -> t
(** Extrapolate the profile to [k] times the outer trip count: counters,
    trips and data volumes multiply; per-iteration structure (inner-loop
    shapes, verdicts, invocation count) is preserved.  Used to evaluate
    paper-scale workloads the interpreter cannot execute directly. *)
