type inner_loop = {
  il_sid : int;
  il_static_trips : int option;
  il_avg_trips : float;
  il_iters_per_outer : float;
  il_fully_unrollable : bool;
  il_fp_reduction : bool;
  il_parallel : bool;
}

type t = {
  kp_kernel : string;
  kp_invocations : int;
  kp_outer_sid : int;
  kp_outer_trips : int;
  kp_counters : Counters.t;
  kp_bytes_in : int;
  kp_bytes_out : int;
  kp_footprint_bytes : int;
  kp_outer_verdict : Dependence.verdict;
  kp_outer_parallel : bool;
  kp_inner : inner_loop list;
  kp_no_alias : bool;
  kp_cpu_baseline_result : Machine.result;
}

let collect ?config ?(unroll_threshold = 64) (p : Ast.program) ~kernel =
  match Ast.find_func p kernel with
  | None -> Error (Printf.sprintf "kernel function %s not found" kernel)
  | Some fn ->
    (match Query.outermost_loops fn with
     | [] -> Error (Printf.sprintf "kernel %s contains no loop" kernel)
     | outer :: _ ->
       let config =
         let base = Option.value config ~default:Machine.default_config in
         {
           base with
           Machine.profile_loops = true;
           trace_aliases = true;
           regions = Machine.Rfunc kernel :: base.Machine.regions;
         }
       in
       let result = Memo.run ~config p in
       (match Machine.find_region_stats result (Machine.Rfunc kernel) with
        | None -> Error (Printf.sprintf "kernel %s was never invoked" kernel)
        | Some region ->
          let consts = Consteval.of_program p in
          let outer_stats = Machine.find_loop_stats result outer.lm_stmt.sid in
          let outer_trips =
            match outer_stats with
            | Some s -> s.Machine.ls_iterations
            | None -> 0
          in
          let verdict = Dependence.analyse_loop ~consts p outer in
          let is_fp (v : Dependence.verdict) =
            List.exists
              (fun (r : Dependence.reduction) -> Ast.is_float_ty r.red_ty)
              v.reductions
          in
          let inner =
            List.map
              (fun (lm : Query.loop_match) ->
                let v = Dependence.analyse_loop ~consts p lm in
                let stats = Machine.find_loop_stats result lm.lm_stmt.sid in
                let avg =
                  match stats with
                  | Some s when s.Machine.ls_entries > 0 ->
                    float_of_int s.Machine.ls_iterations
                    /. float_of_int s.Machine.ls_entries
                  | Some _ | None -> 0.0
                in
                let per_outer =
                  match stats with
                  | Some s when outer_trips > 0 ->
                    float_of_int s.Machine.ls_iterations /. float_of_int outer_trips
                  | Some _ | None -> 0.0
                in
                {
                  il_sid = lm.lm_stmt.sid;
                  il_static_trips = Dependence.static_trip_count consts lm.lm_header;
                  il_avg_trips = avg;
                  il_iters_per_outer = per_outer;
                  il_fully_unrollable =
                    Dependence.fully_unrollable ~threshold:unroll_threshold consts lm;
                  il_fp_reduction = is_fp v;
                  il_parallel = v.Dependence.parallel;
                })
              (Query.inner_loops outer)
          in
          let no_alias =
            match List.assoc_opt kernel result.Machine.aliased_funcs with
            | Some aliased -> not aliased
            | None -> false
          in
          Ok
            {
              kp_kernel = kernel;
              kp_invocations = region.Machine.rs_invocations;
              kp_outer_sid = outer.lm_stmt.sid;
              kp_outer_trips = outer_trips;
              kp_counters = region.Machine.rs_counters;
              kp_bytes_in = region.Machine.rs_bytes_in;
              kp_bytes_out = region.Machine.rs_bytes_out;
              kp_footprint_bytes =
                region.Machine.rs_bytes_in + region.Machine.rs_bytes_out;
              kp_outer_verdict = verdict;
              kp_outer_parallel = verdict.Dependence.parallel_with_reductions;
              kp_inner = inner;
              kp_no_alias = no_alias;
              (* drop the final memory image: profiles are kept inside
                 artifacts (and their cached copies) for the lifetime of
                 a flow, and no consumer reads [memory] — only output,
                 counters and the loop/region statistics.  The image is
                 ~800 KB per app and dominated disk-cache writes. *)
              kp_cpu_baseline_result = { result with Machine.memory = Memory.create () };
            }))

let scale t k =
  if k <= 1 then t
  else
    {
      t with
      kp_outer_trips = k * t.kp_outer_trips;
      kp_counters = Counters.scale t.kp_counters k;
      kp_bytes_in = k * t.kp_bytes_in;
      kp_bytes_out = k * t.kp_bytes_out;
      kp_footprint_bytes = k * t.kp_footprint_bytes;
    }

let ops_per_outer_iter t =
  if t.kp_outer_trips = 0 then 0.0
  else Intensity.flop_equiv t.kp_counters /. float_of_int t.kp_outer_trips
