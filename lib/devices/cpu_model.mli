(** CPU execution-time model (single-thread baseline and OpenMP scaling).

    Single-thread time is a scalar-issue cost model over the interpreter's
    event counters, with a DRAM roofline term when the working set exceeds
    the last-level cache.  The OpenMP estimate divides compute across
    threads at the spec's scaling efficiency, serialises on aggregate DRAM
    bandwidth for cache-missing workloads, and charges a fork/join overhead
    per parallel region. *)

type estimate = {
  ce_time_s : float;
  ce_compute_s : float;
  ce_memory_s : float;   (** DRAM-bound component (0 when cache-resident) *)
  ce_threads : int;
  ce_overhead_s : float; (** fork/join *)
}

val time_of_counters :
  Device.cpu_spec ->
  Counters.t ->
  footprint_bytes:int ->
  threads:int ->
  parallel_regions:int ->
  estimate
(** Core model: [threads = 1] with [parallel_regions = 0] is the
    single-thread baseline. *)

val single_thread : Device.cpu_spec -> Kprofile.t -> estimate
(** Baseline time of the kernel region — the denominator of every speedup
    in Fig. 5. *)

val openmp : Device.cpu_spec -> threads:int -> Kprofile.t -> estimate
(** Multi-thread estimate of the kernel region.  Non-parallel kernels
    (no [parallel_with_reductions] verdict) fall back to single-thread. *)
