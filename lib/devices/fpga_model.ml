type params = {
  unroll : int;
  zero_copy : bool;
}

let default_params = { unroll = 1; zero_copy = false }

type resources = {
  r_alms : int;
  r_dsps : int;
  r_m20ks : int;
  r_alm_frac : float;
  r_dsp_frac : float;
  r_m20k_frac : float;
}

type estimate = {
  fe_time_s : float;
  fe_kernel_s : float;
  fe_transfer_s : float;
  fe_cycles : float;
  fe_ii : float;
  fe_resources : resources;
  fe_overmapped : bool;
  fe_memory_limited : bool;
}

let overmap_threshold = 0.9

(* per-operator implementation costs (ALMs, DSPs, M20Ks) *)
let op_cost = function
  (* Arria10/Stratix10 hard floating-point DSP blocks implement SP
     add/mul/FMA almost entirely inside the DSP *)
  | `Sp_addsub -> (150, 0, 0)   (* adders fuse into the preceding DSP's FMA stage *)
  | `Sp_mul -> (80, 1, 0)
  | `Sp_div -> (3200, 2, 0)
  | `Sp_sqrt -> (4200, 4, 2)
  | `Sp_heavy -> (14500, 14, 8)   (* exp/log/pow/trig cores *)
  | `Dp_addsub -> (1200, 4, 0)
  | `Dp_mul -> (950, 8, 0)
  | `Dp_div -> (9500, 8, 2)
  | `Dp_sqrt -> (11000, 10, 4)
  | `Dp_heavy -> (34000, 36, 16)
  | `Int_op -> (25, 0, 0)
  | `Mem_site -> (650, 0, 4)      (* load/store unit + burst buffers *)
  | `Local_site -> (40, 0, 0)     (* register/BRAM port muxing *)

let instance_cost (ops : Kstatic.op_counts) =
  let acc = ref (0, 0, 0) in
  let add n kind =
    let a, d, m = op_cost kind in
    let ca, cd, cm = !acc in
    acc := (ca + (n * a), cd + (n * d), cm + (n * m))
  in
  add ops.sp_addsub `Sp_addsub;
  add ops.sp_mul `Sp_mul;
  add ops.sp_div `Sp_div;
  add ops.sp_sqrt `Sp_sqrt;
  add ops.sp_heavy `Sp_heavy;
  add ops.dp_addsub `Dp_addsub;
  add ops.dp_mul `Dp_mul;
  add ops.dp_div `Dp_div;
  add ops.dp_sqrt `Dp_sqrt;
  add ops.dp_heavy `Dp_heavy;
  add ops.int_ops `Int_op;
  add ops.mem_sites `Mem_site;
  add ops.local_sites `Local_site;
  !acc

let resources_of (spec : Device.fpga_spec) (ks : Kstatic.t) ~unroll =
  let ia, id_, im = instance_cost ks.ks_ops in
  let shell_alms = int_of_float (spec.shell_alm_frac *. float_of_int spec.alms) in
  let shell_dsps = int_of_float (spec.shell_dsp_frac *. float_of_int spec.dsps) in
  let local_m20ks = (ks.ks_local_array_bytes + 2559) / 2560 in
  let alms = shell_alms + (unroll * ia) in
  let dsps = shell_dsps + (unroll * id_) in
  let m20ks = (unroll * (im + local_m20ks)) + 100 in
  {
    r_alms = alms;
    r_dsps = dsps;
    r_m20ks = m20ks;
    r_alm_frac = float_of_int alms /. float_of_int spec.alms;
    r_dsp_frac = float_of_int dsps /. float_of_int spec.dsps;
    r_m20k_frac = float_of_int m20ks /. float_of_int spec.m20ks;
  }

let estimate ?resources (spec : Device.fpga_spec) (ks : Kstatic.t) (kp : Kprofile.t)
    (params : params) =
  let unroll = max 1 params.unroll in
  let resources =
    match resources with
    | Some r -> r
    | None -> resources_of spec ks ~unroll
  in
  let overmapped =
    resources.r_alm_frac > overmap_threshold || resources.r_dsp_frac > overmap_threshold
  in
  (* effective initiation interval of one outer iteration *)
  let ii =
    match ks.ks_has_serial_inner with
    | Some inner ->
      (* a serially pipelined inner nest: the outer loop initiates a new
         iteration only when the nest drains, so the effective interval is
         the nest's iterations per outer trip times the nest's own II *)
      let inner_trips =
        match
          List.find_opt
            (fun (il : Kprofile.inner_loop) -> il.il_sid = inner.is_sid)
            kp.kp_inner
        with
        | Some il -> Float.max 1.0 il.il_iters_per_outer
        | None -> 16.0
      in
      let inner_ii =
        if inner.is_fp_reduction then float_of_int spec.fadd_latency else 1.0
      in
      inner_trips *. inner_ii
    | None ->
      (* single flat pipeline; scalarised reductions run at II=1 via the
         shift-register transformation *)
      if kp.kp_outer_verdict.Dependence.parallel_with_reductions then 1.0
      else float_of_int spec.fadd_latency
  in
  (* heavily accessed local arrays live in M20Ks with limited ports (even
     after replication): initiation stalls when one iteration makes
     hundreds of accesses *)
  let bram_ports_effective = 64.0 in
  let ii =
    if ks.ks_ops.Kstatic.local_sites > int_of_float bram_ports_effective then
      Float.max ii (float_of_int ks.ks_ops.Kstatic.local_sites /. bram_ports_effective)
    else ii
  in
  let outer_trips = float_of_int (max 1 kp.kp_outer_trips) in
  let invocations = float_of_int (max 1 kp.kp_invocations) in
  (* routing congestion: achieved clock degrades as the design fills up *)
  let congestion =
    Float.max 0.5 (1.0 -. (0.5 *. Float.max 0.0 (resources.r_alm_frac -. 0.2)))
  in
  let fmax = spec.fmax_mhz *. 1e6 *. congestion in
  let cycles =
    (outer_trips /. float_of_int unroll *. ii)
    +. (invocations *. float_of_int spec.pipeline_depth)
  in
  let pipe_s = cycles /. fmax in
  (* only accesses through load-store units reach DDR; local-array and
     BRAM-cached accesses stay on chip.  Apportion the measured bytes by
     the static site mix. *)
  let ddr_fraction =
    let sites = ks.ks_ops.Kstatic.mem_sites + ks.ks_ops.Kstatic.local_sites in
    if sites = 0 then 1.0
    else float_of_int ks.ks_ops.Kstatic.mem_sites /. float_of_int sites
  in
  let traffic_s =
    float_of_int (Counters.bytes kp.kp_counters) *. ddr_fraction
    /. (spec.ddr_bw_gbs *. 1e9)
  in
  let memory_limited = traffic_s > pipe_s in
  let kernel_s = Float.max pipe_s traffic_s in
  let zero_copy = params.zero_copy && spec.usm_zero_copy in
  let transfer_raw_s =
    (float_of_int (kp.kp_bytes_in + kp.kp_bytes_out) /. (spec.fpga_pcie_gbs *. 1e9))
    +. invocations *. 2.0 *. spec.fpga_pcie_latency_us *. 1e-6
       *. (if zero_copy then 0.1 else 1.0)
    (* USM pointer dereferences need no DMA setup *)
  in
  let time_s, transfer_s =
    if zero_copy then
      (* streaming over USM overlaps transfer with compute *)
      (Float.max kernel_s transfer_raw_s, Float.max 0.0 (transfer_raw_s -. kernel_s))
    else (kernel_s +. transfer_raw_s, transfer_raw_s)
  in
  {
    fe_time_s = (if overmapped then Float.infinity else time_s);
    fe_kernel_s = kernel_s;
    fe_transfer_s = transfer_s;
    fe_cycles = cycles;
    fe_ii = ii;
    fe_resources = resources;
    fe_overmapped = overmapped;
    fe_memory_limited = memory_limited;
  }
