(** GPU execution-time model (HIP designs).

    Classic SM occupancy analysis — blocks per SM limited by the block
    budget, the thread budget, the register file and shared memory — feeds
    a throughput roofline: SP/DP/SFU pipelines and the memory system, each
    derated by latency-hiding efficiency and by wave (tail) utilisation.
    Uncoalesced gathers (subscripts that are not affine in any loop index)
    pay a sector-fetch traffic penalty.  Transfers go over PCIe at the
    pageable or pinned rate.

    One thread executes one outer-loop iteration, the mapping the HIP code
    generator produces. *)

type params = {
  blocksize : int;
  pinned : bool;          (** "Employ HIP Pinned Memory" applied *)
  shared_tiling : bool;   (** "Introduce Shared Mem Buf" applied: block-wide
                              reuse divides global traffic by the blocksize *)
}

val default_params : params
(** blocksize 256, no pinned memory, no shared tiling. *)

type estimate = {
  ge_time_s : float;
  ge_kernel_s : float;
  ge_transfer_s : float;
  ge_compute_s : float;
  ge_memory_s : float;
  ge_occupancy : float;          (** active threads / max threads per SM *)
  ge_blocks_per_sm : int;
  ge_active_threads_per_sm : int;
  ge_regs_per_thread : int;
  ge_hiding_efficiency : float;  (** latency-hiding derate, 0..1 *)
  ge_wave_efficiency : float;    (** grid/tail utilisation, 0..1 *)
  ge_launchable : bool;          (** false when a block cannot fit on an SM *)
}

val occupancy :
  Device.gpu_spec -> regs_per_thread:int -> blocksize:int -> shared_bytes:int -> int
(** Blocks resident per SM (0 = unlaunchable). *)

val estimate : Device.gpu_spec -> Kstatic.t -> Kprofile.t -> params -> estimate
