(** Device specifications and the catalog of the paper's five platforms.

    The specs hold published hardware parameters (core/SM/ALM counts,
    clocks, bandwidths, register files).  The performance models consume
    these; nothing in the catalog is tuned per benchmark. *)

type cpu_spec = {
  cpu_name : string;
  cores : int;
  freq_ghz : float;
  (* single-thread scalar issue costs, cycles per operation *)
  cyc_per_flop_addmul : float;
  cyc_per_flop_div : float;
  cyc_per_flop_special : float;
  cyc_per_int_op : float;
  cyc_per_mem_op : float;     (** cache-hit load/store *)
  dram_bw_gbs : float;        (** all-core DRAM bandwidth *)
  core_bw_gbs : float;        (** single-core DRAM bandwidth *)
  llc_bytes : int;            (** last-level cache capacity *)
  cache_bw_core_gbs : float;  (** per-core bandwidth when resident in cache *)
  omp_fork_us : float;        (** parallel-region fork/join overhead *)
  omp_efficiency : float;     (** per-thread scaling efficiency, 0..1 *)
}

type gpu_spec = {
  gpu_name : string;
  sms : int;
  cores_per_sm : int;
  freq_ghz : float;
  regs_per_sm : int;
  max_regs_per_thread : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  shared_mem_per_sm : int;     (** bytes *)
  sp_flops_per_cycle_per_sm : float;  (** FMA counted as 2 *)
  dp_ratio : float;            (** DP throughput as fraction of SP *)
  sfu_per_sm : int;            (** special-function units *)
  mem_bw_gbs : float;
  l2_bytes : int;
  l2_bw_gbs : float;
  latency_hiding_threads_per_core : float;
      (** resident threads per core needed to reach full throughput *)
  launch_overhead_us : float;
  pcie_pageable_gbs : float;
  pcie_pinned_gbs : float;
  pcie_latency_us : float;
}

type fpga_spec = {
  fpga_name : string;
  alms : int;
  dsps : int;
  m20ks : int;
  fmax_mhz : float;           (** achieved HLS clock *)
  ddr_bw_gbs : float;
  usm_zero_copy : bool;       (** unified shared memory supported *)
  shell_alm_frac : float;     (** board-support-package overhead *)
  shell_dsp_frac : float;
  fadd_latency : int;         (** cycles; II of a naive FP accumulation *)
  pipeline_depth : int;       (** fill/drain latency of a typical kernel pipeline *)
  fpga_pcie_gbs : float;
  fpga_pcie_latency_us : float;
  reconfig_overhead_ms : float;
}

val epyc_7543 : cpu_spec
(** AMD EPYC 7543, 32 cores @ 2.8 GHz — the paper's CPU platform. *)

val gtx_1080_ti : gpu_spec
val rtx_2080_ti : gpu_spec

val pac_arria10 : fpga_spec
val pac_stratix10 : fpga_spec

type target =
  | Tcpu of cpu_spec           (** multi-thread CPU *)
  | Tgpu of gpu_spec
  | Tfpga of fpga_spec

val target_name : target -> string

val all_targets : target list
(** The five concrete devices of Fig. 4 (CPU, two GPUs, two FPGAs). *)
