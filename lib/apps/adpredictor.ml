let source =
  {|
// AdPredictor: Bayesian CTR scoring with a probit link.
const int NIMP = 4096;
const int NW = 8192;
const int F = 4;
const int EPOCHS = 4;

int main() {
  double wmean[NW];
  double wvar[NW];
  double loss[NIMP];
  int clicks[NIMP];
  for (int w = 0; w < NW; w++) {
    wmean[w] = rand01() - 0.5;
    wvar[w] = 0.8 + rand01() * 0.4;
  }
  for (int i = 0; i < NIMP; i++) {
    clicks[i] = rand01() < 0.3 ? 1 : 0;
    loss[i] = 0.0;
  }
  for (int e = 0; e < EPOCHS; e++) {
    // hotspot: score every impression against the current weights
    for (int i = 0; i < NIMP; i++) {
      double smean = 0.0;
      double svar = 1.0;
      for (int k = 0; k < F; k++) {
        smean += wmean[(i * 2377 + k * 7919) % NW];
        svar += wvar[(i * 2377 + k * 7919) % NW];
      }
      double t = smean / sqrt(svar);
      double z = t / 1.4142135623730951;
      double pclick = 0.5 * (1.0 + erf(z));
      double pdf = 0.3989422804014327 * exp(-0.5 * t * t);
      double v = pdf / fmax(pclick, 0.000001);
      double w2 = v * (v + t);
      double y = (double)clicks[i] * 2.0 - 1.0;
      double p = y > 0.0 ? pclick : 1.0 - pclick;
      double nll = 0.0 - log(fmax(p, 0.000001));
      // calibration term: entropy of the predicted Bernoulli
      double q = fmax(fmin(pclick, 0.999999), 0.000001);
      double entropy = 0.0 - q * log(q) - (1.0 - q) * log(1.0 - q);
      loss[i] = nll + 0.01 * entropy + w2 * 0.0001;
    }
    // epochs are sequential: the variances decay between scoring passes
    for (int w = 0; w < NW; w++) {
      wvar[w] = wvar[w] * 0.999 + 0.0005;
    }
  }
  double checksum = 0.0;
  for (int i = 0; i < NIMP; i++) {
    checksum += loss[i];
  }
  print_float(checksum);
  return 0;
}
|}

let app =
  {
    App.app_name = "AdPredictor";
    app_slug = "adpredictor";
    app_descr = "Bayesian click-through-rate scoring (probit link)";
    app_source = source;
    app_eval_overrides = [ ("NIMP", 8192); ("EPOCHS", 8) ];
    app_test_overrides = [ ("NIMP", 512); ("NW", 512); ("EPOCHS", 2) ];
    app_outer_scale = 8;
  }
