(** Benchmark applications: the paper's five HPC/AI workloads, written as
    unoptimised high-level mini-C++ sources (the PSA-flow's input).

    Each app ships two workloads: the evaluation workload used by the
    benchmark harness (Fig. 5 / Table I / Fig. 6) and a small test workload
    that keeps unit tests fast.  Workload parameters override global
    constants by name at interpretation time. *)

type t = {
  app_name : string;                          (** display name, e.g. "N-Body Simulation" *)
  app_slug : string;                          (** short id, e.g. "nbody" *)
  app_descr : string;
  app_source : string;                        (** mini-C++ source text *)
  app_eval_overrides : (string * int) list;   (** evaluation workload *)
  app_test_overrides : (string * int) list;   (** fast workload for tests *)
  app_outer_scale : int;
      (** extrapolation factor from the interpreted evaluation workload to
          the paper-scale workload: the evaluation multiplies the measured
          kernel profile's outer trips (and proportional counters/volumes)
          by this factor before feeding the device models *)
}

val program : t -> Ast.program
(** Parse (and typecheck) the source. @raise Failure on any error — app
    sources are internal and must always be valid. *)

val machine_overrides : (string * int) list -> (string * Value.t) list
(** Lift workload parameters to interpreter overrides. *)

val run :
  ?overrides:(string * int) list -> ?config:Machine.config -> t -> Machine.result
(** Interpret the app (default: test workload). *)
