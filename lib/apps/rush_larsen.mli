(** Rush-Larsen ODE solver benchmark (cardiac membrane model).

    Each cell integrates an independent stiff gating-variable system with
    the Rush-Larsen exponential integrator: 10 gates, each needing several
    [exp] evaluations per step — ~40 transcendentals per cell per step.
    The hotspot is the parallel cell loop; the time loop is sequential and
    lives inside each cell's body ("a single outer loop").

    The huge straight-line body gives the GPU kernel its 255-register
    footprint (saturating the GTX 1080 but not the RTX 2080) and makes the
    FPGA designs overmap both devices at unroll 1 — the paper's
    unsynthesisable Rush Larsen oneAPI designs.  The integration is
    precision-sensitive, so the SP-demotion guard keeps this kernel in
    double precision. *)

val app : App.t
