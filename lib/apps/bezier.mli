(** Bezier Surface Generation benchmark.

    Evaluates a degree-5 (6x6 control grid) Bezier patch on a RES x RES
    sample grid with padded de Casteljau reduction per coordinate.  The
    hotspot is the parallel sample loop; its inner reduction levels carry
    dependences with fixed bounds *above* the PSA full-unroll threshold, so
    the informed strategy maps it to the GPU (the paper's outcome), while
    the FPGA path can still unroll the levels spatially under its larger
    hardware-unroll threshold. *)

val app : App.t
