type t = {
  app_name : string;
  app_slug : string;
  app_descr : string;
  app_source : string;
  app_eval_overrides : (string * int) list;
  app_test_overrides : (string * int) list;
  app_outer_scale : int;
}

let program app =
  let p =
    try Parser.parse_program ~file:(app.app_slug ^ ".cpp") app.app_source
    with
    | Parser.Error (loc, msg) ->
      failwith (Printf.sprintf "%s: parse error at %s: %s" app.app_slug (Loc.to_string loc) msg)
    | Lexer.Error (loc, msg) ->
      failwith (Printf.sprintf "%s: lex error at %s: %s" app.app_slug (Loc.to_string loc) msg)
  in
  (match Typecheck.check_program p with
   | Ok () -> ()
   | Error (e :: _) ->
     failwith
       (Printf.sprintf "%s: type error at %s: %s" app.app_slug (Loc.to_string e.loc) e.msg)
   | Error [] -> ());
  p

let machine_overrides params =
  List.map (fun (name, v) -> (name, Value.Vint v)) params

let run ?overrides ?config app =
  let params = Option.value overrides ~default:app.app_test_overrides in
  let config = Option.value config ~default:Machine.default_config in
  let config = { config with Machine.overrides = machine_overrides params } in
  Machine.run ~config (program app)
