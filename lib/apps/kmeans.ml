let source =
  {|
// K-Means classification (Lloyd's algorithm).
const int N = 4096;
const int K = 8;
const int D = 4;
const int ITERS = 3;

int main() {
  double points[N * D];
  double centroids[K * D];
  double sums[K * D];
  int counts[K];
  int assign[N];
  for (int i = 0; i < N * D; i++) {
    points[i] = rand01() * 100.0;
  }
  for (int k = 0; k < K; k++) {
    for (int d = 0; d < D; d++) {
      centroids[k * D + d] = points[k * D + d];
    }
  }
  for (int it = 0; it < ITERS; it++) {
    // assignment phase (hotspot): nearest centroid per point
    for (int i = 0; i < N; i++) {
      double best = 1.0e30;
      int bi = 0;
      for (int k = 0; k < K; k++) {
        double d2 = 0.0;
        for (int d = 0; d < D; d++) {
          double diff = points[i * D + d] - centroids[k * D + d];
          d2 += diff * diff;
        }
        if (d2 < best) {
          best = d2;
          bi = k;
        }
      }
      assign[i] = bi;
    }
    // update phase: recompute centroids
    for (int k = 0; k < K; k++) {
      counts[k] = 0;
      for (int d = 0; d < D; d++) {
        sums[k * D + d] = 0.0;
      }
    }
    for (int i = 0; i < N; i++) {
      counts[assign[i]] += 1;
      for (int d = 0; d < D; d++) {
        sums[assign[i] * D + d] += points[i * D + d];
      }
    }
    for (int k = 0; k < K; k++) {
      if (counts[k] > 0) {
        for (int d = 0; d < D; d++) {
          centroids[k * D + d] = sums[k * D + d] / (double)counts[k];
        }
      }
    }
  }
  int spread = 0;
  for (int i = 0; i < N; i++) {
    spread += assign[i];
  }
  print_int(spread);
  return 0;
}
|}

let app =
  {
    App.app_name = "K-Means Classification";
    app_slug = "kmeans";
    app_descr = "Lloyd's K-means over random points";
    app_source = source;
    app_eval_overrides = [ ("N", 8192); ("ITERS", 2) ];
    app_test_overrides = [ ("N", 512); ("ITERS", 2) ];
    app_outer_scale = 32;
  }
