(** K-Means Classification benchmark.

    Lloyd iterations over [N] points in [D] dimensions with [K] clusters.
    The hotspot is the assignment phase — embarrassingly parallel but
    memory-bound (it streams the points with only a few flops per byte), so
    the informed PSA keeps it on the multi-thread CPU, matching the paper's
    result that OpenMP is the best K-Means target. *)

val app : App.t
