(* per-coordinate padded de Casteljau reduction: always reduce the full
   row width so every loop has static bounds (classic HLS-friendly padding,
   at the cost of redundant lerps) *)
let coord_block coord =
  Printf.sprintf
    {|    // %s coordinate
    for (int j = 0; j < CP; j++) {
      for (int i = 0; i < CP; i++) {
        row[i] = cp%s[j * CP + i];
      }
      for (int l = 0; l < CP - 1; l++) {
        for (int i = 0; i < CP - 1; i++) {
          row[i] = w * row[i] + u * row[i + 1];
        }
      }
      col[j] = row[0];
    }
    for (int l = 0; l < CP - 1; l++) {
      for (int i = 0; i < CP - 1; i++) {
        col[i] = wv * col[i] + v * col[i + 1];
      }
    }
    s%s[t] = col[0];|}
    coord coord coord

let source =
  Printf.sprintf
    {|
// Bezier surface generation: degree-(CP-1) patch sampled on a RES x RES grid.
const int RES = 32;
const int CP = 6;

int main() {
  double cpx[CP * CP];
  double cpy[CP * CP];
  double cpz[CP * CP];
  double sx[RES * RES];
  double sy[RES * RES];
  double sz[RES * RES];
  for (int j = 0; j < CP; j++) {
    for (int i = 0; i < CP; i++) {
      cpx[j * CP + i] = (double)i + rand01() * 0.25;
      cpy[j * CP + i] = (double)j + rand01() * 0.25;
      cpz[j * CP + i] = rand01() * 4.0;
    }
  }
  // hotspot: evaluate every surface sample
  for (int t = 0; t < RES * RES; t++) {
    double u = (double)(t %% RES) / (double)(RES - 1);
    double v = (double)(t / RES) / (double)(RES - 1);
    double w = 1.0 - u;
    double wv = 1.0 - v;
    double row[CP];
    double col[CP];
%s
%s
%s
  }
  double checksum = 0.0;
  for (int t = 0; t < RES * RES; t++) {
    checksum += sx[t] + sy[t] + sz[t];
  }
  print_float(checksum);
  return 0;
}
|}
    (coord_block "x") (coord_block "y") (coord_block "z")

let app =
  {
    App.app_name = "Bezier Surface Generation";
    app_slug = "bezier";
    app_descr = "Degree-5 Bezier patch evaluation by padded de Casteljau";
    app_source = source;
    app_eval_overrides = [ ("RES", 32) ];
    app_test_overrides = [ ("RES", 12) ];
    app_outer_scale = 144;
  }
