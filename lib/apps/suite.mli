(** The benchmark suite: the paper's five applications (Section IV-A). *)

val all : App.t list
(** N-Body, K-Means, AdPredictor, Rush Larsen, Bezier — evaluation order
    of Fig. 5. *)

val find : string -> App.t option
(** Look up by slug ("nbody", "kmeans", "adpredictor", "rush_larsen",
    "bezier"). *)

val sp_rel_tolerance : App.t -> float
(** Application-specific validation tolerance for the single-precision
    demotion guard.  Most benchmarks accept ~1e-3 relative error; the Rush
    Larsen solver ships a bit-reproducibility regression criterion
    (tolerance 0), which keeps its accelerator kernels in double
    precision. *)
