(** N-Body Simulation benchmark.

    All-pairs gravitational forces over [N] bodies for [STEPS] steps.  The
    hotspot is the parallel force loop; its inner loop carries
    floating-point force accumulations with a dynamic bound, so the
    informed PSA maps it to the GPU (compute-bound, parallel outer loop,
    inner dependence loop not fully unrollable). *)

val app : App.t
