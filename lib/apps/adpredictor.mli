(** AdPredictor benchmark (Bayesian click-through-rate scoring).

    Scores [NIMP] impressions per epoch against a Gaussian weight table:
    each impression gathers [F] feature weights (hashed indices), computes
    the click probability through a probit link ([erf]/[exp]/[log]) and
    writes its calibration loss.  Between epochs the variances decay, so
    the weight table must be re-shipped to an accelerator each epoch.

    The hotspot's outer loop is parallel and compute-bound, and its inner
    reduction loops have small fixed bounds ([F]) — exactly the "fully
    unrollable inner loops with dependences" case Fig. 3 routes to the
    FPGA, where the paper's Stratix10 design is the best of all targets. *)

val app : App.t
