let source =
  {|
// N-Body simulation: all-pairs gravitational interaction.
const int N = 512;
const int STEPS = 2;

int main() {
  double xs[N];
  double ys[N];
  double zs[N];
  double ms[N];
  double vx[N];
  double vy[N];
  double vz[N];
  double ax[N];
  double ay[N];
  double az[N];
  for (int i = 0; i < N; i++) {
    xs[i] = rand01() * 10.0;
    ys[i] = rand01() * 10.0;
    zs[i] = rand01() * 10.0;
    ms[i] = 0.5 + rand01();
    vx[i] = 0.0;
    vy[i] = 0.0;
    vz[i] = 0.0;
  }
  double dt = 0.01;
  for (int s = 0; s < STEPS; s++) {
    for (int i = 0; i < N; i++) {
      ax[i] = 0.0;
      ay[i] = 0.0;
      az[i] = 0.0;
      for (int j = 0; j < N; j++) {
        double dx = xs[j] - xs[i];
        double dy = ys[j] - ys[i];
        double dz = zs[j] - zs[i];
        double d2 = dx * dx + dy * dy + dz * dz + 0.000001;
        double inv = 1.0 / sqrt(d2);
        double inv3 = inv * inv * inv;
        double sc = ms[j] * inv3;
        ax[i] += sc * dx;
        ay[i] += sc * dy;
        az[i] += sc * dz;
      }
      vx[i] += dt * ax[i];
      vy[i] += dt * ay[i];
      vz[i] += dt * az[i];
    }
    for (int i = 0; i < N; i++) {
      xs[i] += dt * vx[i];
      ys[i] += dt * vy[i];
      zs[i] += dt * vz[i];
    }
  }
  double checksum = 0.0;
  for (int i = 0; i < N; i++) {
    checksum += xs[i] + ys[i] + zs[i];
  }
  print_float(checksum);
  return 0;
}
|}

let app =
  {
    App.app_name = "N-Body Simulation";
    app_slug = "nbody";
    app_descr = "All-pairs gravitational N-body integration";
    app_source = source;
    app_eval_overrides = [ ("N", 1024); ("STEPS", 1) ];
    app_test_overrides = [ ("N", 96); ("STEPS", 1) ];
    app_outer_scale = 64;
  }
