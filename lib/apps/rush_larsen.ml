(* Ten Hodgkin-Huxley-style gates; constants vary per gate so the source is
   genuine straight-line code rather than a loop the tools could collapse. *)
let gates =
  [
    (0, 0.32, 0.085, 47.1, 0.055, 0.080, 11.0, 0.14, -55.0);
    (1, 0.135, 0.070, 80.0, 0.048, 0.310, 9.5, 0.09, -72.0);
    (2, 0.095, 0.062, 67.0, 0.042, 0.120, 12.5, 0.11, 40.0);
    (3, 0.074, 0.058, 44.0, 0.051, 0.095, 10.0, 0.07, -61.0);
    (4, 0.205, 0.078, 71.0, 0.046, 0.160, 8.5, 0.05, -23.0);
    (5, 0.112, 0.066, 52.0, 0.044, 0.210, 13.0, 0.12, 10.0);
    (6, 0.088, 0.054, 63.0, 0.050, 0.105, 9.0, 0.08, -84.0);
    (7, 0.150, 0.073, 58.0, 0.047, 0.260, 11.5, 0.06, 30.0);
    (8, 0.066, 0.049, 75.0, 0.053, 0.140, 10.5, 0.10, -47.0);
    (9, 0.178, 0.081, 49.0, 0.045, 0.185, 12.0, 0.13, -15.0);
  ]

let gate_decl_arrays =
  gates
  |> List.map (fun (i, _, _, _, _, _, _, _, _) -> Printf.sprintf "  double g%d[CELLS];" i)
  |> String.concat "\n"

let gate_inits =
  gates
  |> List.map (fun (i, _, _, _, _, _, _, _, _) ->
         Printf.sprintf "    g%d[c] = 0.1 + rand01() * 0.2;" i)
  |> String.concat "\n"

let gate_loads =
  gates
  |> List.map (fun (i, _, _, _, _, _, _, _, _) -> Printf.sprintf "    double y%d = g%d[c];" i i)
  |> String.concat "\n"

let gate_stores =
  gates
  |> List.map (fun (i, _, _, _, _, _, _, _, _) -> Printf.sprintf "    g%d[c] = y%d;" i i)
  |> String.concat "\n"

(* Rush-Larsen update of one gate: alpha with a saturating denominator
   (2 exps), beta (1 exp), exponential integration step (1 exp). *)
let gate_update (i, c1, c2, vh, c3, c4, c5, _g, _e) =
  String.concat "\n"
    [
      Printf.sprintf
        "      double a%d = %g * exp(%g * (v + %g)) / (1.0 + exp(%g * (v + %g)));" i c1
        c2 vh c3 vh;
      Printf.sprintf "      double b%d = %g * exp(0.0 - (v + 40.0) / %g);" i c4 c5;
      Printf.sprintf "      double tau%d = 1.0 / (a%d + b%d);" i i i;
      Printf.sprintf "      double inf%d = a%d * tau%d;" i i i;
      Printf.sprintf "      y%d = inf%d + (y%d - inf%d) * exp(0.0 - dt / tau%d);" i i i i i;
    ]

let gate_updates = gates |> List.map gate_update |> String.concat "\n"

let ionic_terms =
  gates
  |> List.map (fun (i, _, _, _, _, _, _, g, e) ->
         Printf.sprintf "      ionic = ionic + %g * y%d * y%d * (v - %g);" g i i e)
  |> String.concat "\n"

let source =
  Printf.sprintf
    {|
// Rush-Larsen exponential integrator over independent membrane cells.
const int CELLS = 1024;
const int STEPS = 16;

int main() {
  double vm[CELLS];
%s
  for (int c = 0; c < CELLS; c++) {
    vm[c] = -80.0 + rand01() * 20.0;
%s
  }
  double dt = 0.02;
  // hotspot: every cell integrates its stiff gate system independently
  for (int c = 0; c < CELLS; c++) {
    double v = vm[c];
%s
    for (int s = 0; s < STEPS; s++) {
%s
      double ionic = 0.0;
%s
      v = v + dt * (2.0 - ionic);
    }
    vm[c] = v;
%s
  }
  double checksum = 0.0;
  for (int c = 0; c < CELLS; c++) {
    checksum += vm[c];
  }
  print_float(checksum);
  return 0;
}
|}
    gate_decl_arrays gate_inits gate_loads gate_updates ionic_terms gate_stores

let app =
  {
    App.app_name = "Rush Larsen ODE Solver";
    app_slug = "rush_larsen";
    app_descr = "Rush-Larsen exponential integration of 10-gate membrane cells";
    app_source = source;
    app_eval_overrides = [ ("CELLS", 2048); ("STEPS", 16) ];
    app_test_overrides = [ ("CELLS", 768); ("STEPS", 4) ];
    app_outer_scale = 32;
  }
