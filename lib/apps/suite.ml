let all =
  [ Nbody.app; Kmeans.app; Adpredictor.app; Rush_larsen.app; Bezier.app ]

let find slug = List.find_opt (fun (a : App.t) -> a.app_slug = slug) all

let sp_rel_tolerance (a : App.t) =
  (* the Rush-Larsen solver ships with a bit-reproducibility regression
     criterion: any precision change is rejected *)
  if a.app_slug = "rush_larsen" then 0.0 else 1e-3
