type alternative = {
  alt_target : Target.t;
  alt_time_s : float;
}

let alternatives_of_report (rep : Engine.report) =
  List.filter_map
    (fun (d : Design.t) ->
      match d.Design.d_time_s with
      | Some t when d.Design.d_feasible -> Some { alt_target = d.Design.d_target; alt_time_s = t }
      | _ -> None)
    rep.Engine.rep_designs

type resource_class = Rcpu | Rgpu | Rfpga

let class_of_target = function
  | Target.Omp _ -> Rcpu
  | Target.Gpu _ -> Rgpu
  | Target.Fpga _ -> Rfpga

type pool = {
  cpu_instances : int;
  gpu_instances : int;
  fpga_instances : int;
}

type job = {
  job_id : int;
  job_scale : float;
}

type policy = Min_cost | Min_makespan

type assignment = {
  as_job : job;
  as_target : Target.t;
  as_instance : int;
  as_start_s : float;
  as_finish_s : float;
  as_cost : float;
}

type schedule = {
  sc_assignments : assignment list;
  sc_makespan_s : float;
  sc_total_cost : float;
}

let instances_of pool = function
  | Rcpu -> pool.cpu_instances
  | Rgpu -> pool.gpu_instances
  | Rfpga -> pool.fpga_instances

let run ?(pricing = Cost.default_pricing) ~policy ~pool ~alternatives jobs =
  Obs.Trace.with_span
    ~attrs:[ ("jobs", Obs.Trace.Int (List.length jobs)) ]
    ~name:"schedule" ~kind:Obs.Trace.Flow
  @@ fun _ ->
  let capacity =
    pool.cpu_instances + pool.gpu_instances + pool.fpga_instances
  in
  if capacity = 0 then Error "empty resource pool"
  else if alternatives = [] then Error "no feasible designs to schedule"
  else begin
    (* free time per (class, instance index) *)
    let free : (resource_class * int, float) Hashtbl.t = Hashtbl.create 16 in
    let free_at cls idx = Option.value (Hashtbl.find_opt free (cls, idx)) ~default:0.0 in
    let usable =
      List.filter
        (fun alt -> instances_of pool (class_of_target alt.alt_target) > 0)
        alternatives
    in
    if usable = [] then Error "pool has no instances for any design's target"
    else begin
      let place job =
        (* candidate (alt, instance) pairs with their finish time and cost *)
        let candidates =
          List.concat_map
            (fun alt ->
              let cls = class_of_target alt.alt_target in
              let time_s = alt.alt_time_s *. job.job_scale in
              let cost = Cost.monetary_cost pricing alt.alt_target ~time_s in
              List.init (instances_of pool cls) (fun idx ->
                  let start = free_at cls idx in
                  (alt, cls, idx, start, start +. time_s, cost)))
            usable
        in
        let better (_, _, _, _, f1, c1) (_, _, _, _, f2, c2) =
          match policy with
          | Min_makespan -> if f1 = f2 then compare c1 c2 else compare f1 f2
          | Min_cost -> if c1 = c2 then compare f1 f2 else compare c1 c2
        in
        match List.sort better candidates with
        | [] -> assert false (* usable <> [] and instance counts > 0 *)
        | (alt, cls, idx, start, finish, cost) :: _ ->
          Hashtbl.replace free (cls, idx) finish;
          {
            as_job = job;
            as_target = alt.alt_target;
            as_instance = idx;
            as_start_s = start;
            as_finish_s = finish;
            as_cost = cost;
          }
      in
      let assignments = List.map place jobs in
      Ok
        {
          sc_assignments = assignments;
          sc_makespan_s =
            List.fold_left (fun m a -> Float.max m a.as_finish_s) 0.0 assignments;
          sc_total_cost = List.fold_left (fun c a -> c +. a.as_cost) 0.0 assignments;
        }
    end
  end

let render sc =
  let table =
    Util.Table.create
      ~headers:[ "job"; "target"; "instance"; "start (s)"; "finish (s)"; "cost ($)" ]
  in
  Util.Table.set_aligns table
    [ Util.Table.Right; Util.Table.Left; Util.Table.Right; Util.Table.Right;
      Util.Table.Right; Util.Table.Right ];
  List.iter
    (fun a ->
      Util.Table.add_row table
        [
          string_of_int a.as_job.job_id;
          Target.short a.as_target;
          string_of_int a.as_instance;
          Printf.sprintf "%.3g" a.as_start_s;
          Printf.sprintf "%.3g" a.as_finish_s;
          Printf.sprintf "%.3g" a.as_cost;
        ])
    sc.sc_assignments;
  Util.Table.render table
  ^ Printf.sprintf "makespan %.3g s, total cost $%.3g\n" sc.sc_makespan_s sc.sc_total_cost
