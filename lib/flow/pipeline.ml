type mode = Informed | Uninformed

let mode_name = function Informed -> "informed" | Uninformed -> "uninformed"

let target_independent =
  Graph.Seq (List.map (fun t -> Graph.Task t) Tasks.target_independent)

let cpu_path =
  Graph.Seq
    [ Graph.Task Tasks.multi_thread_parallel_loops; Graph.Task Tasks.omp_num_threads_dse ]

let gpu_path =
  Graph.Seq
    [
      Graph.Task Tasks.generate_hip_design;
      Graph.Task Tasks.gpu_sp_math_fns;
      Graph.Task Tasks.gpu_sp_numeric_literals;
      Graph.Task Tasks.introduce_shared_mem_buf;
      Graph.Task Tasks.employ_specialised_math_fns;
      Graph.Task Tasks.employ_hip_pinned_memory;
      Graph.Task Tasks.profile_gpu_design;
      Graph.Branch
        {
          Graph.bp_name = "C";
          bp_select = Graph.select_all;
          bp_paths =
            [
              ("1080", Graph.Task (Tasks.gpu_blocksize_dse Device.gtx_1080_ti));
              ("2080", Graph.Task (Tasks.gpu_blocksize_dse Device.rtx_2080_ti));
            ];
        };
    ]

let fpga_path =
  Graph.Seq
    [
      Graph.Task Tasks.generate_oneapi_design;
      Graph.Task Tasks.unroll_fixed_loops;
      Graph.Task Tasks.fpga_sp_math_fns;
      Graph.Task Tasks.fpga_sp_numeric_literals;
      Graph.Branch
        {
          Graph.bp_name = "B";
          bp_select = Graph.select_all;
          bp_paths =
            [
              ( "A10",
                Graph.Seq
                  [
                    Graph.Task Tasks.profile_fpga_design;
                    Graph.Task (Tasks.fpga_unroll_until_overmap_dse Device.pac_arria10);
                  ] );
              ( "S10",
                Graph.Seq
                  [
                    Graph.Task Tasks.zero_copy_data_transfer;
                    Graph.Task Tasks.profile_fpga_design;
                    Graph.Task (Tasks.fpga_unroll_until_overmap_dse Device.pac_stratix10);
                  ] );
            ];
        };
    ]

let branch_a ?psa_config mode =
  let select =
    match mode with
    | Informed -> Psa.informed ?config:psa_config
    | Uninformed -> Graph.select_all
  in
  Graph.Branch
    {
      Graph.bp_name = "A";
      bp_select = select;
      bp_paths = [ ("cpu", cpu_path); ("gpu", gpu_path); ("fpga", fpga_path) ];
    }

let full_flow ?psa_config mode =
  Graph.Seq [ target_independent; branch_a ?psa_config mode ]

let repository = Graph.tasks (full_flow Uninformed)
