let design_table (rep : Engine.report) =
  let table =
    Util.Table.create
      ~headers:[ "target"; "device"; "time (s)"; "speedup"; "LOC +%"; "prec"; "valid" ]
  in
  Util.Table.set_aligns table
    [ Util.Table.Left; Util.Table.Left; Util.Table.Right; Util.Table.Right;
      Util.Table.Right; Util.Table.Center; Util.Table.Center ];
  List.iter
    (fun (d : Design.t) ->
      Util.Table.add_row table
        [
          Target.short d.Design.d_target;
          Target.device_name d.Design.d_target;
          (match d.Design.d_time_s with
           | Some t -> Printf.sprintf "%.3g" t
           | None -> "n/a");
          (match d.Design.d_speedup with
           | Some s -> Printf.sprintf "%.1fx" s
           | None -> "n/a");
          Printf.sprintf "%+.0f%%" d.Design.d_loc_added_pct;
          (if d.Design.d_sp then "SP" else "DP");
          (if d.Design.d_valid then "yes" else "NO");
        ])
    rep.Engine.rep_designs;
  Util.Table.render table

let decision_text (rep : Engine.report) =
  let d = rep.Engine.rep_decision in
  Printf.sprintf "branch A decision: %s\n%s\n" d.Psa.dec_path
    (String.concat "\n" (List.map (fun r -> "  - " ^ r) d.Psa.dec_reasons))

(* Every run-shaped text names the backend that interpreted the programs:
   a pure function of process configuration, so the line is byte-identical
   whatever the job count or cache temperature. *)
let backend_line () =
  Printf.sprintf "interpreter backend: %s\n"
    (Machine.backend_name (Machine.default_backend ()))

let log_text (rep : Engine.report) =
  backend_line ()
  ^ String.concat "\n" rep.Engine.rep_analysed.Artifact.art_log
  ^ "\n"

(* Deliberately timing-free: the same seed and flow must render
   byte-identical text whatever the cache temperature or job count, so
   only the per-step cache statuses (legitimately run-dependent) vary
   between cold and warm runs of the same command. *)
let pruned_label (f : Graph.failure) =
  match f.Graph.fl_path with
  | [] -> f.Graph.fl_failure.Resilience.f_site
  | path -> String.concat "/" (List.map snd path)

let why_text (rep : Engine.report) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (backend_line ());
  List.iter
    (fun (d : Design.t) ->
      Buffer.add_string buf
        (Printf.sprintf "why %s (%s):\n" (Target.short d.Design.d_target)
           (Target.device_name d.Design.d_target));
      Buffer.add_string buf (Prov.render d.Design.d_prov);
      Buffer.add_char buf '\n')
    rep.Engine.rep_designs;
  (* pruned paths render after the designs, so a failure-free report is
     byte-identical to one produced before failures existed *)
  List.iter
    (fun (f : Graph.failure) ->
      Buffer.add_string buf
        (Printf.sprintf "why %s (pruned):\n" (pruned_label f));
      Buffer.add_string buf (Prov.render f.Graph.fl_prov);
      Buffer.add_char buf '\n')
    rep.Engine.rep_failures;
  Buffer.contents buf

let failures_text (rep : Engine.report) =
  let buf = Buffer.create 256 in
  List.iter
    (fun (f : Graph.failure) ->
      let fl = f.Graph.fl_failure in
      Buffer.add_string buf
        (Printf.sprintf "pruned %-18s %s at %s after %d attempt%s: %s\n"
           (pruned_label f)
           (Resilience.class_label fl.Resilience.f_class)
           fl.Resilience.f_site fl.Resilience.f_attempts
           (if fl.Resilience.f_attempts = 1 then "" else "s")
           fl.Resilience.f_msg))
    rep.Engine.rep_failures;
  Buffer.contents buf

let summary_line (rep : Engine.report) =
  let best = Engine.best_design rep in
  Printf.sprintf "%-28s mode=%-10s branch=%-5s best=%s" rep.Engine.rep_app.App.app_name
    (Pipeline.mode_name rep.Engine.rep_mode)
    rep.Engine.rep_decision.Psa.dec_path
    (match best with
     | Some d ->
       Printf.sprintf "%s (%.1fx)" (Target.short d.Design.d_target)
         (Option.value d.Design.d_speedup ~default:Float.nan)
     | None -> "none")

(* The CLI's default `psaflow run` output, assembled from the same report
   the daemon holds; both surfaces print this exact string so the two can
   be byte-compared (the serve smoke gate does). *)
let run_text (rep : Engine.report) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s - %s mode, workload %s\n\n" rep.Engine.rep_app.App.app_name
       (Pipeline.mode_name rep.Engine.rep_mode)
       (String.concat ", "
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=%d" k v)
             rep.Engine.rep_workload)));
  Buffer.add_string buf (decision_text rep);
  Buffer.add_string buf
    (Printf.sprintf "\nbaseline (single-thread CPU hotspot): %.4g s\n\n"
       rep.Engine.rep_baseline_s);
  Buffer.add_string buf (design_table rep);
  if rep.Engine.rep_failures <> [] then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf (failures_text rep)
  end;
  Buffer.contents buf
