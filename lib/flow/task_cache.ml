exception Task_failed of string

module C = Cache.Make (struct
  type value = Artifact.t

  let kind = "task"

  (* v2: Artifact.t gained [art_prov]; older marshalled layouts must miss.
     v3: kernel profiles no longer retain the baseline run's final memory
     image; v2 entries would splice the ~800 KB images back in. *)
  let version = 3
end)

(* Only the expensive task classes are cached: dynamic tasks run the
   interpreter and Optimisation tasks run DSE sweeps.  Static transforms
   are cheaper to recompute than to key (they would also recompute with
   fresh node ids, which keeps id allocation on the `--cache off` path
   byte-identical to a cache-free build). *)
let cacheable (t : Task.t) = t.Task.dynamic || t.Task.kind = Task.Optimisation

(* Structural log lines only: task tags "[name]" (from {!Task.apply}) and
   branch tags "<branch b -> p>" (from {!Graph.run}).  Free-text lines
   are dropped from the key because they embed raw statement ids, which
   are allocation-order-dependent; the tag subsequence alone identifies
   which flow path produced the artifact. *)
let tag_line l = String.length l > 0 && (l.[0] = '[' || l.[0] = '<')

(* Canonical projection of an artifact: the program in canonical id
   space, every sid-bearing field translated through the same mapping
   (sids minted by earlier interpreter runs but since rewritten away map
   to -1), and the log reduced to its tag subsequence.  Two artifacts
   with equal projections are indistinguishable to any task. *)
let project (art : Artifact.t) =
  let canon_p, to_canon, _ = Memo.canonicalize art.Artifact.art_program in
  let t sid = match Hashtbl.find_opt to_canon sid with Some s -> s | None -> -1 in
  let t_region = function
    | Machine.Rstmt s -> Machine.Rstmt (t s)
    | r -> r
  in
  let t_result (r : Machine.result) =
    {
      r with
      Machine.loop_stats =
        List.sort compare
          (List.map (fun (s, ls) -> (t s, ls)) r.Machine.loop_stats);
      region_stats =
        List.sort compare
          (List.map (fun (rg, rs) -> (t_region rg, rs)) r.Machine.region_stats);
    }
  in
  let t_kp (kp : Kprofile.t) =
    {
      kp with
      Kprofile.kp_outer_sid = t kp.Kprofile.kp_outer_sid;
      kp_inner =
        List.map
          (fun il -> { il with Kprofile.il_sid = t il.Kprofile.il_sid })
          kp.Kprofile.kp_inner;
      kp_outer_verdict =
        { kp.Kprofile.kp_outer_verdict with
          Dependence.loop_sid = t kp.Kprofile.kp_outer_verdict.Dependence.loop_sid };
      kp_cpu_baseline_result = t_result kp.Kprofile.kp_cpu_baseline_result;
    }
  in
  let t_ks (ks : Kstatic.t) =
    {
      ks with
      Kstatic.ks_has_serial_inner =
        Option.map
          (fun is -> { is with Kstatic.is_sid = t is.Kstatic.is_sid })
          ks.Kstatic.ks_has_serial_inner;
    }
  in
  let t_hs (h : Hotspot.hotspot) = { h with Hotspot.hs_sid = t h.Hotspot.hs_sid } in
  let t_design (d : Artifact.design_state) =
    {
      d with
      Artifact.ds_kprofile = Option.map t_kp d.Artifact.ds_kprofile;
      ds_kstatic = Option.map t_ks d.Artifact.ds_kstatic;
    }
  in
  ( canon_p,
    {
      art with
      Artifact.art_program = { Ast.pglobals = [] };
      art_hotspot_sid = Option.map t art.Artifact.art_hotspot_sid;
      art_hotspots = Option.map (List.map t_hs) art.Artifact.art_hotspots;
      art_kprofile = Option.map t_kp art.Artifact.art_kprofile;
      art_design = Option.map t_design art.Artifact.art_design;
      art_log = List.filter tag_line art.Artifact.art_log;
      (* the trail differs between cold and warm runs (cache statuses);
         it must never influence a key *)
      art_prov = [];
    } )

let backend_tag () =
  match Machine.default_backend () with `Ast -> 0 | `Compiled -> 1 | `Vm -> 2

let key_of (task : Task.t) art =
  Digest.string
    (Marshal.to_string
       ( Machine.interp_version,
         Ir.version,
         backend_tag (),
         task.Task.name,
         Task.scope_label task.Task.scope,
         task.Task.kind,
         project art )
       (* No_sharing: artifacts loaded from the disk tier have different
          physical sharing than freshly computed ones; keys must depend
          on content only *)
       [ Marshal.No_sharing ])

let prov_step (task : Task.t) status =
  Prov.Stask
    {
      st_name = task.Task.name;
      st_kind = Task.kind_letter task.Task.kind;
      st_scope = Task.scope_label task.Task.scope;
      st_dynamic = task.Task.dynamic;
      st_cache = status;
    }

(* Drop the first [k] steps: splits a cached artifact's trail into the
   prefix that mirrors this input's trail and the steps the task itself
   appended (e.g. {!Prov.Sdse}).  Trails are structurally determined by
   the tag subsequence in the key, so equal keys imply equal prefix
   lengths even across processes. *)
let rec drop k = function
  | l when k <= 0 -> l
  | [] -> []
  | _ :: tl -> drop (k - 1) tl

(* Wall-clock of every task application, hit or compute: the population
   behind the ledger's flow.task.seconds latency percentiles. *)
let h_task_seconds = Obs.Metrics.histogram "flow.task.seconds"

let apply (task : Task.t) art =
  let t0 = Obs.Monotonic.now_s () in
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.Histogram.observe h_task_seconds (Obs.Monotonic.now_s () -. t0))
  @@ fun () ->
  Obs.Trace.with_span
    ~attrs:[ ("kind", Obs.Trace.Str (Task.kind_letter task.Task.kind)) ]
    ~name:task.Task.name ~kind:Obs.Trace.Task
    (fun sp ->
      let finish status (out : Artifact.t) =
        Obs.Trace.add_attr sp "cache" (Obs.Trace.Str (Prov.cache_status_label status));
        Artifact.add_prov out (prov_step task status)
      in
      if not (Cache.enabled () && cacheable task) then
        Result.map (finish Prov.Bypass) (Task.apply task art)
      else
        let key = key_of task art in
        let computed = ref false in
        match
          C.find_or_compute ~key
            ~on_disk_hit:(fun out ->
              (* the loaded artifact carries another process's ids; move the
                 counter past them so later transforms cannot collide *)
              Ast.reserve_ids (Ast.max_id out.Artifact.art_program))
            (fun () ->
              computed := true;
              match Task.apply task art with
              | Ok out -> out
              | Error e -> raise (Task_failed e))
        with
        | out ->
          if !computed then Ok (finish Prov.Miss out)
          else
            (* the cached trail records the *first* run's cache statuses;
               splice this run's input trail onto the task-added suffix *)
            let suffix =
              drop (List.length art.Artifact.art_prov) out.Artifact.art_prov
            in
            let out =
              { out with Artifact.art_prov = art.Artifact.art_prov @ suffix }
            in
            Ok (finish Prov.Hit out)
        | exception Task_failed e -> Error e)

let stats () = C.stats ()

let reset () = C.reset ()
