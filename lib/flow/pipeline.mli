(** The implemented PSA-flow (Fig. 4): target-independent tasks, branch
    point A selecting CPU / GPU / FPGA, and device-level branch points B
    (FPGA: Arria10 / Stratix10) and C (GPU: GTX 1080 Ti / RTX 2080 Ti),
    which "automatically select both paths, generating two CPU+GPU designs
    or two CPU+FPGA designs". *)

type mode = Informed | Uninformed

val mode_name : mode -> string

val target_independent : Graph.node
(** The eight T-INDEP tasks as a sequence. *)

val branch_a : ?psa_config:Psa.config -> mode -> Graph.node
(** Branch point A with the informed strategy of Fig. 3, or taking all
    paths in uninformed mode. *)

val full_flow : ?psa_config:Psa.config -> mode -> Graph.node
(** [target_independent] followed by [branch_a]. *)

val repository : Task.t list
(** Every codified task of Fig. 4 (for the documentation table and the
    registry tests). *)
