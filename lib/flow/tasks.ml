let ( let* ) = Result.bind

let kernel_name = "knl"

let share_threshold = 0.5

(* ---- output validation ---- *)

let validate_outputs ?(tol = 1e-9) ~reference actual =
  List.length reference = List.length actual
  && List.for_all2
       (fun r a ->
         match float_of_string_opt r, float_of_string_opt a with
         | Some fr, Some fa ->
           let scale = Float.max 1e-9 (Float.max (Float.abs fr) (Float.abs fa)) in
           Float.abs (fr -. fa) /. scale <= tol
         | _, _ -> String.equal r a)
       reference actual

(* ---- target-independent tasks ---- *)

let identify_hotspot_loops =
  Task.make ~name:"Identify Hotspot Loops" ~kind:Task.Analysis
    ~scope:Task.Target_independent ~dynamic:true (fun art ->
      let config = Artifact.machine_config art in
      let hotspots = Hotspot.detect ~config art.Artifact.art_program in
      let parallelisable (h : Hotspot.hotspot) =
        match Query.find_loop art.Artifact.art_program h.hs_sid with
        | None -> false
        | Some lm ->
          (Dependence.analyse_loop art.Artifact.art_program lm)
            .Dependence.parallel_with_reductions
      in
      let heavy =
        List.filter (fun (h : Hotspot.hotspot) -> h.hs_share >= share_threshold) hotspots
      in
      let parallel_heavy = List.filter parallelisable heavy in
      let chosen =
        match
          List.sort
            (fun (a : Hotspot.hotspot) b ->
              compare (a.hs_depth, -.a.hs_share) (b.hs_depth, -.b.hs_share))
            parallel_heavy
        with
        | h :: _ -> Some h
        | [] ->
          (match List.filter (fun (h : Hotspot.hotspot) -> h.hs_depth = 0) hotspots with
           | h :: _ -> Some h
           | [] -> None)
      in
      match chosen with
      | None -> Error "no loops found to accelerate"
      | Some h ->
        Ok
          (Artifact.logf
             {
               art with
               Artifact.art_hotspots = Some hotspots;
               art_hotspot_sid = Some h.hs_sid;
             }
             "hotspot: loop %d in %s (%.1f%% of run, depth %d)" h.hs_sid h.hs_func
             (100.0 *. h.hs_share) h.hs_depth))

let hotspot_extraction =
  Task.make ~name:"Hotspot Loop Extraction" ~kind:Task.Transform
    ~scope:Task.Target_independent (fun art ->
      match art.Artifact.art_hotspot_sid with
      | None -> Error "run hotspot identification first"
      | Some sid ->
        let* ex = Hotspot.extract art.Artifact.art_program ~sid ~kernel_name in
        Ok
          {
            art with
            Artifact.art_program = ex.Hotspot.ex_program;
            art_kernel = Some ex.Hotspot.ex_kernel;
          })

let remove_array_acc_dependency =
  Task.make ~name:"Remove Array += Dependency" ~kind:Task.Transform
    ~scope:Task.Target_independent (fun art ->
      let kernel = Artifact.kernel_exn art in
      match Ast.find_func art.Artifact.art_program kernel with
      | None -> Error "kernel disappeared"
      | Some fn ->
        let loops = Query.loops_in_func fn in
        let program, n =
          List.fold_left
            (fun (p, n) (lm : Query.loop_match) ->
              let sid = lm.lm_stmt.Ast.sid in
              let cands = Scalarize.candidates p ~loop_sid:sid in
              if cands = [] then (p, n)
              else (Scalarize.apply p ~loop_sid:sid, n + List.length cands))
            (art.Artifact.art_program, 0)
            loops
        in
        Ok
          (Artifact.logf
             { art with Artifact.art_program = program }
             "scalarised %d array accumulator(s)" n))

(* Always recollect: the interpretation behind [Kprofile.collect] is
   memoized (Memo), so recollection only redoes the cheap static part
   while keeping every analysis task's view of the profile fresh. *)
let ensure_kprofile art =
  let kernel = Artifact.kernel_exn art in
  let config = Artifact.machine_config art in
  let* kp = Kprofile.collect ~config art.Artifact.art_program ~kernel in
  (* extrapolate the measured profile to the paper-scale workload *)
  let kp = Kprofile.scale kp art.Artifact.art_app.App.app_outer_scale in
  Ok
    {
      art with
      Artifact.art_kprofile = Some kp;
      art_reference_output =
        Some kp.Kprofile.kp_cpu_baseline_result.Machine.output;
    }

let pointer_analysis =
  Task.make ~name:"Pointer Analysis" ~kind:Task.Analysis ~scope:Task.Target_independent
    ~dynamic:true (fun art ->
      let* art = ensure_kprofile art in
      let kp = Artifact.kprofile_exn art in
      let kernel = Artifact.kernel_exn art in
      let program =
        if kp.Kprofile.kp_no_alias then
          Alias.mark_restrict art.Artifact.art_program ~fname:kernel
        else art.Artifact.art_program
      in
      Ok
        (Artifact.logf
           {
             art with
             Artifact.art_program = program;
             art_alias_free = Some kp.Kprofile.kp_no_alias;
           }
           "pointer arguments %s"
           (if kp.Kprofile.kp_no_alias then "never alias: marked __restrict__"
            else "may alias")))

let loop_tripcount_analysis =
  Task.make ~name:"Loop Trip-Count Analysis" ~kind:Task.Analysis
    ~scope:Task.Target_independent ~dynamic:true (fun art ->
      let* art = ensure_kprofile art in
      let kp = Artifact.kprofile_exn art in
      Ok
        (Artifact.logf art "outer loop runs %d iterations over %d invocation(s)"
           kp.Kprofile.kp_outer_trips kp.Kprofile.kp_invocations))

let data_inout_analysis =
  Task.make ~name:"Data In/Out Analysis" ~kind:Task.Analysis
    ~scope:Task.Target_independent ~dynamic:true (fun art ->
      let* art = ensure_kprofile art in
      let kp = Artifact.kprofile_exn art in
      let t_transfer =
        Transfer.time_s Transfer.pcie_gen3
          ~bytes:(kp.Kprofile.kp_bytes_in + kp.Kprofile.kp_bytes_out)
          ~transactions:(2 * kp.Kprofile.kp_invocations)
      in
      Ok
        (Artifact.logf
           { art with Artifact.art_t_transfer = Some t_transfer }
           "data in %d B, out %d B; est. transfer %.3g s" kp.Kprofile.kp_bytes_in
           kp.Kprofile.kp_bytes_out t_transfer))

let arithmetic_intensity_analysis =
  Task.make ~name:"Arithmetic Intensity Analysis" ~kind:Task.Analysis
    ~scope:Task.Target_independent (fun art ->
      let* art = ensure_kprofile art in
      let kp = Artifact.kprofile_exn art in
      let measure =
        Intensity.of_region_stats
          {
            Machine.rs_invocations = kp.Kprofile.kp_invocations;
            rs_counters = kp.Kprofile.kp_counters;
            rs_traffic = [];
            rs_bytes_in = kp.Kprofile.kp_bytes_in;
            rs_bytes_out = kp.Kprofile.kp_bytes_out;
          }
      in
      let t_cpu = (Cpu_model.single_thread Device.epyc_7543 kp).Cpu_model.ce_time_s in
      Ok
        (Artifact.logf
           {
             art with
             Artifact.art_intensity = Some measure;
             art_t_cpu_single = Some t_cpu;
           }
           "FLOPs/B = %.2f; single-thread CPU time %.3g s" measure.Intensity.ai_value
           t_cpu))

let loop_dependence_analysis =
  Task.make ~name:"Loop Dependence Analysis" ~kind:Task.Analysis
    ~scope:Task.Target_independent (fun art ->
      let* art = ensure_kprofile art in
      let kp = Artifact.kprofile_exn art in
      let v = kp.Kprofile.kp_outer_verdict in
      Ok
        (Artifact.logf art "outer loop %s (%d reduction(s), %d carried)"
           (if v.Dependence.parallel_with_reductions then "is parallel" else "carries dependences")
           (List.length v.Dependence.reductions)
           (List.length v.Dependence.carried)))

let target_independent =
  [
    identify_hotspot_loops;
    hotspot_extraction;
    remove_array_acc_dependency;
    pointer_analysis;
    loop_tripcount_analysis;
    data_inout_analysis;
    arithmetic_intensity_analysis;
    loop_dependence_analysis;
  ]

(* ---- design-state helpers ---- *)

let initial_design ~target ~manage ~compute ?body ?thread_index () =
  {
    Artifact.ds_target = target;
    ds_manage_fn = manage;
    ds_compute_fn = compute;
    ds_body_fn = body;
    ds_thread_index = thread_index;
    ds_sp = false;
    ds_kprofile = None;
    ds_kstatic = None;
    ds_estimate_s = None;
    ds_feasible = true;
    ds_output = None;
  }

let run_design_output art =
  let config = Artifact.machine_config art in
  let result = Memo.run ~config art.Artifact.art_program in
  result.Machine.output

(* demote the annotated device-buffer declarations of the management fn *)
let demote_buffers program ~manage_fn =
  match Ast.find_func program manage_fn with
  | None -> program
  | Some fn ->
    let fbody =
      List.map
        (fun (s : Ast.stmt) ->
          let is_buffer =
            List.exists
              (fun (pr : Ast.pragma) -> List.mem "device_buffer" pr.Ast.pargs)
              s.Ast.pragmas
          in
          match s.Ast.sdesc, is_buffer with
          | Ast.Decl d, true when d.Ast.dty = Ast.Tdouble ->
            { s with Ast.sdesc = Ast.Decl { d with Ast.dty = Ast.Tfloat } }
          | _, _ -> s)
        fn.Ast.fbody
    in
    Ast.replace_func program { fn with Ast.fbody }

(* Apply a precision-affecting transform, validate the design's output
   against the reference at the application's tolerance, and revert the
   transform when validation fails (the paper's SP tasks carry a [*]:
   applied only where precision allows). *)
let sp_guarded_transform art ~transform ~what =
  let ds = Artifact.design_exn art in
  let program = transform art.Artifact.art_program in
  let art' = { art with Artifact.art_program = program } in
  let tol = Suite.sp_rel_tolerance art.Artifact.art_app in
  match art.Artifact.art_reference_output with
  | None -> Error "reference output missing; run the analysis tasks first"
  | Some reference ->
    let output = run_design_output art' in
    if validate_outputs ~tol ~reference output then
      Ok
        (Artifact.logf
           { art' with Artifact.art_design = Some { ds with Artifact.ds_sp = true } }
           "%s validated (tol %.1e)" what tol)
    else
      Ok
        (Artifact.logf art "%s rejected by validation (tol %.1e): keeping double" what
           tol)

let sp_demote_with_guard art ~fnames ~manage_fn =
  sp_guarded_transform art ~what:"single-precision data"
    ~transform:(fun program ->
      let program = Sp_transforms.sp_literals program ~fnames in
      let program = Sp_transforms.demote_types program ~fnames in
      demote_buffers program ~manage_fn)

(* ---- CPU (OpenMP) tasks ---- *)

let multi_thread_parallel_loops =
  Task.make ~name:"Multi-Thread Parallel Loops" ~kind:Task.Transform ~scope:Task.Cpu_omp
    (fun art ->
      let kernel = Artifact.kernel_exn art in
      let* r = Openmp.generate art.Artifact.art_program ~kernel in
      let ds =
        initial_design
          ~target:(Target.Omp { threads = Device.epyc_7543.Device.cores })
          ~manage:kernel ~compute:kernel ()
      in
      let ds = { ds with Artifact.ds_output = art.Artifact.art_reference_output } in
      Ok
        {
          art with
          Artifact.art_program = r.Openmp.omp_program;
          art_design = Some ds;
        })

let omp_num_threads_dse =
  Task.make ~name:"OMP Num. Threads DSE" ~kind:Task.Optimisation ~scope:Task.Cpu_omp
    (fun art ->
      let kernel = Artifact.kernel_exn art in
      let kp = Artifact.kprofile_exn art in
      let ds = Artifact.design_exn art in
      let r = Threads_dse.run Device.epyc_7543 kp art.Artifact.art_program ~kernel in
      let ds =
        {
          ds with
          Artifact.ds_target = Target.Omp { threads = r.Threads_dse.td_threads };
          ds_estimate_s = Some r.Threads_dse.td_estimate.Cpu_model.ce_time_s;
          ds_kprofile = Some kp;
        }
      in
      let art' =
        Artifact.logf
          { art with Artifact.art_program = r.Threads_dse.td_program;
            art_design = Some ds }
          "selected %d threads (est. %.3g s)" r.Threads_dse.td_threads
          r.Threads_dse.td_estimate.Cpu_model.ce_time_s
      in
      Ok
        (Artifact.add_prov art'
           (Prov.Sdse
              {
                sd_tag = "cpu-threads";
                sd_points = List.length r.Threads_dse.td_sweep;
                sd_best = Printf.sprintf "%d threads" r.Threads_dse.td_threads;
              })))

(* ---- GPU (HIP) tasks ---- *)

let generate_hip_design =
  Task.make ~name:"Generate HIP Design" ~kind:Task.Codegen ~scope:Task.Gpu_scope
    (fun art ->
      let kernel = Artifact.kernel_exn art in
      let* r = Hip.generate art.Artifact.art_program ~kernel in
      let thread_index =
        match Ast.find_func r.Hip.hip_program r.Hip.hip_body_fn with
        | Some fn ->
          (match fn.Ast.fbody with
           | { Ast.sdesc = Ast.Decl d; _ } :: _ -> Some d.Ast.dname
           | _ -> None)
        | None -> None
      in
      let ds =
        initial_design
          ~target:
            (Target.Gpu { spec = Device.gtx_1080_ti; params = Gpu_model.default_params })
          ~manage:r.Hip.hip_manage_fn ~compute:r.Hip.hip_launch_fn ~body:r.Hip.hip_body_fn
          ?thread_index ()
      in
      Ok { art with Artifact.art_program = r.Hip.hip_program; art_design = Some ds })

let gpu_body_fn art =
  match (Artifact.design_exn art).Artifact.ds_body_fn with
  | Some f -> Ok f
  | None -> Error "no GPU body function; generate the HIP design first"

let gpu_sp_math_fns =
  Task.make ~name:"Employ SP Math Fns" ~kind:Task.Transform ~scope:Task.Gpu_scope
    ~dynamic:true (fun art ->
      let* body = gpu_body_fn art in
      sp_guarded_transform art ~what:"single-precision math functions"
        ~transform:(fun program -> Sp_transforms.sp_math_fns program ~fnames:[ body ]))

let gpu_sp_numeric_literals =
  Task.make ~name:"Employ SP Numeric Literals" ~kind:Task.Transform ~scope:Task.Gpu_scope
    ~dynamic:true (fun art ->
      let* body = gpu_body_fn art in
      let ds = Artifact.design_exn art in
      sp_demote_with_guard art ~fnames:[ body ] ~manage_fn:ds.Artifact.ds_manage_fn)

let employ_hip_pinned_memory =
  Task.make ~name:"Employ HIP Pinned Memory" ~kind:Task.Transform ~scope:Task.Gpu_scope
    (fun art ->
      let ds = Artifact.design_exn art in
      Ok
        {
          art with
          Artifact.art_program =
            Hip.employ_pinned art.Artifact.art_program ~manage_fn:ds.Artifact.ds_manage_fn;
        })

let introduce_shared_mem_buf =
  Task.make ~name:"Introduce Shared Mem Buf" ~kind:Task.Transform ~scope:Task.Gpu_scope
    (fun art ->
      let* body = gpu_body_fn art in
      match Shared_mem.apply art.Artifact.art_program ~body_fn:body with
      | Ok applied ->
        Ok
          (Artifact.logf
             { art with Artifact.art_program = applied.Shared_mem.sm_program }
             "staged %s through shared-memory tiles"
             (String.concat ", " applied.Shared_mem.sm_arrays))
      | Error _ -> Ok (Artifact.log art "no shared-memory candidates"))

let employ_specialised_math_fns =
  Task.make ~name:"Employ Specialised Math Fns" ~kind:Task.Transform ~scope:Task.Gpu_scope
    (fun art ->
      let* body = gpu_body_fn art in
      Ok
        {
          art with
          Artifact.art_program = Specialized_math.apply art.Artifact.art_program ~fnames:[ body ];
        })

let has_shared_tiling program ~body_fn =
  match Ast.find_func program body_fn with
  | None -> false
  | Some fn ->
    List.exists
      (fun (lm : Query.loop_match) ->
        List.exists
          (fun (pr : Ast.pragma) -> List.mem "shared_tiling" pr.Ast.pargs)
          lm.lm_stmt.Ast.pragmas)
      (Query.loops_in_func fn)

let profile_gpu_design =
  Task.make ~name:"Profile HIP Design" ~kind:Task.Analysis ~scope:Task.Gpu_scope
    ~dynamic:true (fun art ->
      let ds = Artifact.design_exn art in
      let* body = gpu_body_fn art in
      let config = Artifact.machine_config art in
      let* kp =
        Kprofile.collect ~config art.Artifact.art_program ~kernel:ds.Artifact.ds_compute_fn
      in
      let kp = Kprofile.scale kp art.Artifact.art_app.App.app_outer_scale in
      let* ks =
        Kstatic.of_kernel art.Artifact.art_program ~fname:body
          ?thread_index:ds.Artifact.ds_thread_index
      in
      let output = kp.Kprofile.kp_cpu_baseline_result.Machine.output in
      Ok
        {
          art with
          Artifact.art_design =
            Some
              {
                ds with
                Artifact.ds_kprofile = Some kp;
                ds_kstatic = Some ks;
                ds_output = Some output;
              };
        })

let gpu_blocksize_dse (spec : Device.gpu_spec) =
  let dev =
    if spec.Device.gpu_name = Device.gtx_1080_ti.Device.gpu_name then "1080"
    else "2080"
  in
  Task.make
    ~name:(Printf.sprintf "%s Blocksize DSE" (if dev = "1080" then "GTX 1080" else "RTX 2080"))
    ~kind:Task.Optimisation ~scope:(Task.Gpu_device dev) (fun art ->
      let ds = Artifact.design_exn art in
      match ds.Artifact.ds_kprofile, ds.Artifact.ds_kstatic, ds.Artifact.ds_body_fn with
      | Some kp, Some ks, Some body ->
        let base =
          {
            Gpu_model.blocksize = 256;
            pinned = Hip.is_pinned art.Artifact.art_program ~manage_fn:ds.Artifact.ds_manage_fn;
            shared_tiling = has_shared_tiling art.Artifact.art_program ~body_fn:body;
          }
        in
        let r =
          Blocksize_dse.run spec ks kp ~base art.Artifact.art_program
            ~launch_fn:ds.Artifact.ds_compute_fn
        in
        let params = { base with Gpu_model.blocksize = r.Blocksize_dse.bd_blocksize } in
        let ds =
          {
            ds with
            Artifact.ds_target = Target.Gpu { spec; params };
            ds_estimate_s = Some r.Blocksize_dse.bd_estimate.Gpu_model.ge_time_s;
            ds_feasible = r.Blocksize_dse.bd_estimate.Gpu_model.ge_launchable;
          }
        in
        let art' =
          Artifact.logf
            { art with Artifact.art_program = r.Blocksize_dse.bd_program;
              art_design = Some ds }
            "blocksize %d (est. %.3g s, occupancy %.0f%%, %d regs/thread)"
            r.Blocksize_dse.bd_blocksize r.Blocksize_dse.bd_estimate.Gpu_model.ge_time_s
            (100.0 *. r.Blocksize_dse.bd_estimate.Gpu_model.ge_occupancy)
            r.Blocksize_dse.bd_estimate.Gpu_model.ge_regs_per_thread
        in
        Ok
          (Artifact.add_prov art'
             (Prov.Sdse
                {
                  sd_tag = "gpu-blocksize";
                  sd_points = List.length r.Blocksize_dse.bd_sweep;
                  sd_best =
                    Printf.sprintf "blocksize %d" r.Blocksize_dse.bd_blocksize;
                }))
      | _, _, _ -> Error "profile the HIP design before the blocksize DSE")

(* ---- FPGA (oneAPI) tasks ---- *)

let generate_oneapi_design =
  Task.make ~name:"Generate oneAPI Design" ~kind:Task.Codegen ~scope:Task.Fpga_scope
    (fun art ->
      let kernel = Artifact.kernel_exn art in
      let* r = Oneapi.generate art.Artifact.art_program ~kernel in
      let ds =
        initial_design
          ~target:
            (Target.Fpga { spec = Device.pac_arria10; params = Fpga_model.default_params })
          ~manage:r.Oneapi.oneapi_manage_fn ~compute:r.Oneapi.oneapi_kernel_fn ()
      in
      Ok { art with Artifact.art_program = r.Oneapi.oneapi_program; art_design = Some ds })

let unroll_fixed_loops =
  Task.make ~name:"Unroll Fixed Loops" ~kind:Task.Transform ~scope:Task.Fpga_scope
    (fun art ->
      let ds = Artifact.design_exn art in
      Ok
        {
          art with
          Artifact.art_program =
            Unroll.unroll_fixed_inner art.Artifact.art_program
              ~kernel:ds.Artifact.ds_compute_fn;
        })

let fpga_sp_math_fns =
  Task.make ~name:"Employ SP Math Fns" ~kind:Task.Transform ~scope:Task.Fpga_scope
    ~dynamic:true (fun art ->
      let ds = Artifact.design_exn art in
      sp_guarded_transform art ~what:"single-precision math functions"
        ~transform:(fun program ->
          Sp_transforms.sp_math_fns program ~fnames:[ ds.Artifact.ds_compute_fn ]))

let fpga_sp_numeric_literals =
  Task.make ~name:"Employ SP Numeric Literals" ~kind:Task.Transform ~scope:Task.Fpga_scope
    ~dynamic:true (fun art ->
      let ds = Artifact.design_exn art in
      sp_demote_with_guard art ~fnames:[ ds.Artifact.ds_compute_fn ]
        ~manage_fn:ds.Artifact.ds_manage_fn)

let zero_copy_data_transfer =
  Task.make ~name:"Zero-Copy Data Transfer" ~kind:Task.Transform
    ~scope:(Task.Fpga_device "S10") (fun art ->
      let ds = Artifact.design_exn art in
      Ok
        {
          art with
          Artifact.art_program =
            Oneapi.employ_zero_copy art.Artifact.art_program
              ~manage_fn:ds.Artifact.ds_manage_fn ~kernel_fn:ds.Artifact.ds_compute_fn;
        })

let profile_fpga_design =
  Task.make ~name:"Profile oneAPI Design" ~kind:Task.Analysis ~scope:Task.Fpga_scope
    ~dynamic:true (fun art ->
      let ds = Artifact.design_exn art in
      let config = Artifact.machine_config art in
      let* kp =
        Kprofile.collect ~config art.Artifact.art_program ~kernel:ds.Artifact.ds_compute_fn
      in
      let kp = Kprofile.scale kp art.Artifact.art_app.App.app_outer_scale in
      let* ks =
        Kstatic.of_kernel art.Artifact.art_program ~require_unroll_pragma:true
          ~fname:ds.Artifact.ds_compute_fn
      in
      let output = kp.Kprofile.kp_cpu_baseline_result.Machine.output in
      Ok
        {
          art with
          Artifact.art_design =
            Some
              {
                ds with
                Artifact.ds_kprofile = Some kp;
                ds_kstatic = Some ks;
                ds_output = Some output;
              };
        })

let fpga_unroll_until_overmap_dse (spec : Device.fpga_spec) =
  let dev =
    if spec.Device.fpga_name = Device.pac_arria10.Device.fpga_name then "A10" else "S10"
  in
  Task.make
    ~name:(Printf.sprintf "%s Unroll Until Overmap DSE" dev)
    ~kind:Task.Optimisation ~scope:(Task.Fpga_device dev) (fun art ->
      let ds = Artifact.design_exn art in
      match ds.Artifact.ds_kprofile, ds.Artifact.ds_kstatic with
      | Some kp, Some ks ->
        let zero_copy =
          Oneapi.is_zero_copy art.Artifact.art_program ~kernel_fn:ds.Artifact.ds_compute_fn
        in
        let r =
          Unroll_dse.run spec ks kp ~zero_copy art.Artifact.art_program
            ~kernel_fn:ds.Artifact.ds_compute_fn
        in
        let feasible = r.Unroll_dse.ud_unroll <> None in
        let params =
          {
            Fpga_model.unroll = Option.value r.Unroll_dse.ud_unroll ~default:1;
            zero_copy;
          }
        in
        let ds =
          {
            ds with
            Artifact.ds_target = Target.Fpga { spec; params };
            ds_estimate_s =
              (if feasible then Some r.Unroll_dse.ud_estimate.Fpga_model.fe_time_s
               else None);
            ds_feasible = feasible;
          }
        in
        let art' =
          { art with Artifact.art_program = r.Unroll_dse.ud_program; art_design = Some ds }
        in
        let art' =
          Artifact.add_prov art'
            (Prov.Sdse
               {
                 sd_tag = "fpga-unroll";
                 sd_points = List.length r.Unroll_dse.ud_trace;
                 sd_best =
                   (match r.Unroll_dse.ud_unroll with
                    | Some u -> Printf.sprintf "unroll %d" u
                    | None -> "overmapped at unroll 1");
               })
        in
        if feasible then
          Ok
            (Artifact.logf art' "unroll %d (est. %.3g s, %.0f%% ALMs, II=%.0f)"
               params.Fpga_model.unroll r.Unroll_dse.ud_estimate.Fpga_model.fe_time_s
               (100.0 *. r.Unroll_dse.ud_estimate.Fpga_model.fe_resources.Fpga_model.r_alm_frac)
               r.Unroll_dse.ud_estimate.Fpga_model.fe_ii)
        else
          let alm_frac_1 =
            (* the DSE's doubling loop already evaluated unroll 1 *)
            match List.assoc_opt 1 r.Unroll_dse.ud_trace with
            | Some frac -> frac
            | None -> (Fpga_model.resources_of spec ks ~unroll:1).Fpga_model.r_alm_frac
          in
          Ok
            (Artifact.logf art'
               "design overmaps %s at unroll 1 (%.0f%% ALMs): not synthesisable" dev
               (100.0 *. alm_frac_1))
      | _, _ -> Error "profile the oneAPI design before the unroll DSE")
