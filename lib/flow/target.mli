(** Concrete optimisation targets of the implemented PSA-flow (Fig. 4). *)

type t =
  | Omp of { threads : int }
  | Gpu of { spec : Device.gpu_spec; params : Gpu_model.params }
  | Fpga of { spec : Device.fpga_spec; params : Fpga_model.params }

val label : t -> string
(** e.g. ["OpenMP CPU (32 threads)"], ["HIP (NVIDIA GeForce RTX 2080 Ti)"]. *)

val short : t -> string
(** Column label: ["OMP"], ["HIP 1080Ti"], ["oneAPI S10"], ... *)

val device_name : t -> string
