(** PSA-flow graphs: sequences of codified tasks with branch points.

    A branch point holds named paths and a Path Selection Automation
    strategy that reads the artifact's accrued facts and decides which
    path(s) to take — one for an informed strategy, several (or all) for an
    uninformed one.  Running a flow therefore yields a *list* of outcomes,
    one per reached leaf, each tagged with the branch decisions on its
    path (Fig. 1). *)

(** What a PSA strategy decided at a branch point: the paths to take (in
    preference order) and the analysis facts that justified them, which
    flow into each outcome's provenance trail ({!Prov.Sbranch}). *)
type selection = {
  sel_paths : string list;
  sel_reasons : string list;
}

type node =
  | Task of Task.t
  | Seq of node list
  | Branch of branch_point

and branch_point = {
  bp_name : string;                        (** e.g. "A", "B", "C" *)
  bp_select : Artifact.t -> (selection, string) result;
      (** PSA strategy: names of paths to take, in preference order *)
  bp_paths : (string * node) list;
}

type outcome = {
  oc_path : (string * string) list;  (** (branch point, chosen path) pairs *)
  oc_artifact : Artifact.t;
}

(** A path pruned by a task failure during a tolerant run. *)
type failure = {
  fl_path : (string * string) list;
      (** branch decisions taken before the failure *)
  fl_failure : Resilience.failure;
  fl_prov : Prov.step list;
      (** the pruned path's trail, ending in its {!Prov.Sfailed} step *)
}

type run_result = {
  rr_outcomes : outcome list;  (** surviving paths, in branch order *)
  rr_pruned : failure list;  (** pruned paths, in branch order *)
}

val run : node -> Artifact.t -> (outcome list, string) result
(** Execute the flow fail-fast.  A sequence threads each outcome through
    the remaining nodes; a branch fans out.  The first task failure (in
    input order, after {!Resilience} retries are exhausted) aborts the
    whole run with the task's error message; a branch strategy may select
    zero paths, pruning that artifact.

    Determinism invariant: outcomes are returned in branch-definition
    order regardless of the parallel schedule, so [run] at any [--jobs]
    level returns exactly the sequential result. *)

val run_tolerant : node -> Artifact.t -> (run_result, string) result
(** Like {!run}, but a task failure prunes only the artifact that hit it:
    the failing path is dropped from [rr_outcomes] and recorded in
    [rr_pruned] with a trail ending in {!Prov.Sfailed}, while sibling
    branch paths continue.  Structural errors (a strategy selecting an
    unknown path) still abort — they are flow bugs, not task faults.
    With no failures, [rr_outcomes] is byte-identical to what {!run}
    returns. *)

val select : ?reasons:string list -> string list -> (selection, string) result
(** Convenience constructor for strategy results. *)

val select_all : Artifact.t -> (selection, string) result
(** Distinguished strategy recognised by {!run}: take every path of the
    branch (the paper's "uninformed" mode, and the implementation's
    default at device-level branch points B and C, which "automatically
    select both paths"). *)

val with_select : node -> branch:string -> (Artifact.t -> (selection, string) result) -> node
(** Replace the strategy of the named branch point (how the evaluation
    swaps informed/uninformed at branch point A). *)

val tasks : node -> Task.t list
(** All tasks reachable in the graph, in definition order. *)

val to_dot : ?name:string -> node -> string
(** Graphviz rendering of the flow: tasks as boxes (labelled with their
    Fig. 4 classification), branch points as diamonds with one edge per
    path — the Fig. 1/Fig. 4 pictures, generated from the live graph. *)
