(** PSA-flow graphs: sequences of codified tasks with branch points.

    A branch point holds named paths and a Path Selection Automation
    strategy that reads the artifact's accrued facts and decides which
    path(s) to take — one for an informed strategy, several (or all) for an
    uninformed one.  Running a flow therefore yields a *list* of outcomes,
    one per reached leaf, each tagged with the branch decisions on its
    path (Fig. 1). *)

(** What a PSA strategy decided at a branch point: the paths to take (in
    preference order) and the analysis facts that justified them, which
    flow into each outcome's provenance trail ({!Prov.Sbranch}). *)
type selection = {
  sel_paths : string list;
  sel_reasons : string list;
}

type node =
  | Task of Task.t
  | Seq of node list
  | Branch of branch_point

and branch_point = {
  bp_name : string;                        (** e.g. "A", "B", "C" *)
  bp_select : Artifact.t -> (selection, string) result;
      (** PSA strategy: names of paths to take, in preference order *)
  bp_paths : (string * node) list;
}

type outcome = {
  oc_path : (string * string) list;  (** (branch point, chosen path) pairs *)
  oc_artifact : Artifact.t;
}

val run : node -> Artifact.t -> (outcome list, string) result
(** Execute the flow.  A sequence threads each outcome through the
    remaining nodes; a branch fans out.  The first task error aborts the
    whole run (analysis/codegen failures are flow bugs); a branch strategy
    may select zero paths, pruning that artifact. *)

val select : ?reasons:string list -> string list -> (selection, string) result
(** Convenience constructor for strategy results. *)

val select_all : Artifact.t -> (selection, string) result
(** Distinguished strategy recognised by {!run}: take every path of the
    branch (the paper's "uninformed" mode, and the implementation's
    default at device-level branch points B and C, which "automatically
    select both paths"). *)

val with_select : node -> branch:string -> (Artifact.t -> (selection, string) result) -> node
(** Replace the strategy of the named branch point (how the evaluation
    swaps informed/uninformed at branch point A). *)

val tasks : node -> Task.t list
(** All tasks reachable in the graph, in definition order. *)

val to_dot : ?name:string -> node -> string
(** Graphviz rendering of the flow: tasks as boxes (labelled with their
    Fig. 4 classification), branch points as diamonds with one edge per
    path — the Fig. 1/Fig. 4 pictures, generated from the live graph. *)
