type features = {
  ft_log_intensity : float;
  ft_log_transfer_ratio : float;
  ft_outer_parallel : float;
  ft_dep_inner : float;
  ft_unrollable_dep_inner : float;
  ft_log_outer_trips : float;
  ft_special_fraction : float;
}

let features_of ?(psa_config = Psa.default_config) (art : Artifact.t) =
  match
    ( art.Artifact.art_kprofile,
      art.Artifact.art_intensity,
      art.Artifact.art_t_cpu_single,
      art.Artifact.art_t_transfer )
  with
  | Some kp, Some ai, Some t_cpu, Some t_transfer ->
    let log10_pos x = Float.log10 (Float.max 1e-12 x) in
    let dep_inner =
      List.exists (fun (il : Kprofile.inner_loop) -> not il.Kprofile.il_parallel)
        kp.Kprofile.kp_inner
    in
    let unrollable_dep_inner =
      List.exists
        (fun (il : Kprofile.inner_loop) ->
          (not il.Kprofile.il_parallel)
          &&
          match il.Kprofile.il_static_trips with
          | Some n -> n <= psa_config.Psa.unroll_threshold
          | None -> false)
        kp.Kprofile.kp_inner
    in
    let c = kp.Kprofile.kp_counters in
    let specials =
      float_of_int (c.Counters.flops_sp_special + c.Counters.flops_dp_special)
    in
    let flops = float_of_int (Counters.flops c) in
    Ok
      {
        ft_log_intensity = log10_pos ai.Intensity.ai_value;
        ft_log_transfer_ratio = log10_pos (t_cpu /. Float.max 1e-12 t_transfer);
        ft_outer_parallel = (if kp.Kprofile.kp_outer_parallel then 1.0 else 0.0);
        ft_dep_inner = (if dep_inner then 1.0 else 0.0);
        ft_unrollable_dep_inner = (if unrollable_dep_inner then 1.0 else 0.0);
        ft_log_outer_trips = log10_pos (float_of_int kp.Kprofile.kp_outer_trips);
        ft_special_fraction = (if flops = 0.0 then 0.0 else specials /. flops);
      }
  | _, _, _, _ -> Error "learned PSA needs the target-independent analyses to have run"

let to_vector f =
  [|
    f.ft_log_intensity;
    f.ft_log_transfer_ratio;
    f.ft_outer_parallel;
    f.ft_dep_inner;
    f.ft_unrollable_dep_inner;
    f.ft_log_outer_trips;
    f.ft_special_fraction;
  |]

type example = { ex_features : features; ex_label : string }

let branch_of_target = function
  | Target.Omp _ -> "cpu"
  | Target.Gpu _ -> "gpu"
  | Target.Fpga _ -> "fpga"

let label_of_report (rep : Engine.report) =
  match Engine.best_design rep with
  | None -> None
  | Some best ->
    (match features_of rep.Engine.rep_analysed with
     | Ok ft -> Some { ex_features = ft; ex_label = branch_of_target best.Design.d_target }
     | Error _ -> None)

type model = {
  m_mean : float array;
  m_scale : float array;         (* 1 / stddev, 1 when degenerate *)
  m_points : (float array * string) list;  (* standardised *)
  m_labels : string list;
}

let dims = 7

let standardise mean scale v =
  Array.init dims (fun i -> (v.(i) -. mean.(i)) *. scale.(i))

let train = function
  | [] -> Error "empty training set"
  | examples ->
    let vectors = List.map (fun e -> to_vector e.ex_features) examples in
    let n = float_of_int (List.length vectors) in
    let mean =
      Array.init dims (fun i ->
          List.fold_left (fun acc v -> acc +. v.(i)) 0.0 vectors /. n)
    in
    let scale =
      Array.init dims (fun i ->
          let var =
            List.fold_left (fun acc v -> acc +. ((v.(i) -. mean.(i)) ** 2.0)) 0.0 vectors
            /. n
          in
          let sd = sqrt var in
          if sd < 1e-9 then 1.0 else 1.0 /. sd)
    in
    let points =
      List.map2
        (fun v e -> (standardise mean scale v, e.ex_label))
        vectors examples
    in
    let labels =
      List.sort_uniq compare (List.map (fun e -> e.ex_label) examples)
    in
    Ok { m_mean = mean; m_scale = scale; m_points = points; m_labels = labels }

let distance2 a b =
  let acc = ref 0.0 in
  for i = 0 to dims - 1 do
    acc := !acc +. ((a.(i) -. b.(i)) ** 2.0)
  done;
  !acc

let predict model features =
  let q = standardise model.m_mean model.m_scale (to_vector features) in
  let best =
    List.fold_left
      (fun acc (p, label) ->
        let d = distance2 q p in
        match acc with
        | None -> Some (d, label)
        | Some (db, _) when d < db -> Some (d, label)
        | Some _ -> acc)
      None model.m_points
  in
  match best with Some (_, label) -> label | None -> "cpu"

let strategy model art =
  match features_of art with
  | Error _ as e -> (match e with Error m -> Error m | Ok _ -> assert false)
  | Ok ft ->
    let branch = predict model ft in
    Graph.select
      ~reasons:[ Printf.sprintf "learned 1-NN strategy chose %s" branch ]
      [ branch ]

let labels model = model.m_labels
