(** Flow provenance: the ordered trail of what produced a design.

    Each artifact accrues one step per task application, branch decision
    and DSE sweep on its path; {!Design.t} carries the finished trail and
    [psaflow --why] renders it.  Steps hold only strings and scalars so
    they marshal stably into the task cache (see {!Task_cache.project},
    which blanks the trail out of cache keys). *)

type cache_status =
  | Hit  (** served from the evaluation cache (memory or disk tier) *)
  | Miss  (** computed and stored *)
  | Bypass  (** cache disabled or task class not cached *)

type step =
  | Stask of {
      st_name : string;
      st_kind : string;  (** Fig. 4 class letter: A, T, CG, O *)
      st_scope : string;
      st_dynamic : bool;
      st_cache : cache_status;
    }
  | Sbranch of {
      sb_name : string;  (** branch point, e.g. "A" *)
      sb_taken : string;  (** the path this artifact followed *)
      sb_alternatives : string list;  (** every path the branch offered *)
      sb_chosen : string list;  (** all paths the strategy selected *)
      sb_reasons : string list;  (** analysis facts justifying the choice *)
    }
  | Sdse of {
      sd_tag : string;  (** sweep identity, e.g. "cpu-threads" *)
      sd_points : int;  (** design points examined *)
      sd_best : string;  (** winning configuration, human-readable *)
    }
  | Sfailed of {
      sf_task : string;  (** the task that gave up *)
      sf_class : string;  (** {!Resilience.class_label} of the failure *)
      sf_attempts : int;  (** attempts consumed before pruning *)
      sf_msg : string;  (** underlying error message *)
    }
      (** Terminal step of a pruned branch: the task failed after its
          retry budget, so no design was produced on this path.  Recorded
          by tolerant runs ({!Graph.run_tolerant}); never present in a
          trail that produced a design, and never cached (failed task
          applications are not stored in the task cache). *)

val cache_status_label : cache_status -> string

val render : step list -> string
(** One line per step, stable across runs (no timings, no ids). *)
