type cache_status = Hit | Miss | Bypass

type step =
  | Stask of {
      st_name : string;
      st_kind : string;
      st_scope : string;
      st_dynamic : bool;
      st_cache : cache_status;
    }
  | Sbranch of {
      sb_name : string;
      sb_taken : string;
      sb_alternatives : string list;
      sb_chosen : string list;
      sb_reasons : string list;
    }
  | Sdse of {
      sd_tag : string;
      sd_points : int;
      sd_best : string;
    }
  | Sfailed of {
      sf_task : string;
      sf_class : string;
      sf_attempts : int;
      sf_msg : string;
    }

let cache_status_label = function
  | Hit -> "cache hit"
  | Miss -> "cache miss"
  | Bypass -> "uncached"

let render steps =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iteri
    (fun i step ->
      match step with
      | Stask s ->
        line "%2d. task   %s [%s%s] scope=%s (%s)" (i + 1) s.st_name s.st_kind
          (if s.st_dynamic then ", dyn" else "")
          s.st_scope
          (cache_status_label s.st_cache)
      | Sbranch b ->
        line "%2d. branch %s -> %s (offered: %s; selected: %s)" (i + 1) b.sb_name
          b.sb_taken
          (String.concat ", " b.sb_alternatives)
          (String.concat ", " b.sb_chosen);
        List.iter (fun r -> line "      - %s" r) b.sb_reasons
      | Sdse d -> line "%2d. dse    %s: %d points -> %s" (i + 1) d.sd_tag d.sd_points d.sd_best
      | Sfailed f ->
        line "%2d. failed %s (%s after %d attempt%s) — branch pruned" (i + 1)
          f.sf_task f.sf_class f.sf_attempts
          (if f.sf_attempts = 1 then "" else "s");
        line "      ! %s" f.sf_msg)
    steps;
  Buffer.contents buf
