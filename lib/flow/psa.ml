type config = {
  x_threshold : float;
  unroll_threshold : int;
}

let default_config = { x_threshold = 5.0; unroll_threshold = 4 }

type decision = {
  dec_path : string;
  dec_reasons : string list;
}

let path_names = [ "cpu"; "gpu"; "fpga" ]

let decide ?(config = default_config) (art : Artifact.t) =
  match
    ( art.Artifact.art_kprofile,
      art.Artifact.art_intensity,
      art.Artifact.art_t_cpu_single,
      art.Artifact.art_t_transfer )
  with
  | Some kp, Some ai, Some t_cpu, Some t_transfer ->
    let reasons = ref [] in
    let note fmt = Printf.ksprintf (fun s -> reasons := s :: !reasons) fmt in
    let parallel = kp.Kprofile.kp_outer_parallel in
    let compute_bound = ai.Intensity.ai_value > config.x_threshold in
    let transfer_ok = t_transfer < t_cpu in
    note "T_data_transfer %.3g s %s T_cpu %.3g s" t_transfer
      (if transfer_ok then "<" else ">=")
      t_cpu;
    note "FLOPs/B = %.2f %s X = %.2f (%s)" ai.Intensity.ai_value
      (if compute_bound then ">" else "<=")
      config.x_threshold
      (if compute_bound then "compute-bound" else "memory-bound");
    let path =
      if not (transfer_ok && compute_bound) then begin
        if parallel then begin
          note "no benefit from offloading; outer loop is parallel -> multi-thread CPU";
          "cpu"
        end
        else begin
          note "no benefit from offloading and outer loop not parallel -> keep reference";
          "none"
        end
      end
      else if parallel then begin
        let unrollable_dep_inner =
          List.filter
            (fun (il : Kprofile.inner_loop) ->
              (not il.Kprofile.il_parallel)
              &&
              match il.Kprofile.il_static_trips with
              | Some n -> n <= config.unroll_threshold
              | None -> false)
            kp.Kprofile.kp_inner
        in
        let dep_inner =
          List.exists (fun (il : Kprofile.inner_loop) -> not il.Kprofile.il_parallel)
            kp.Kprofile.kp_inner
        in
        if not dep_inner then begin
          note "parallel outer loop with independent inner structure -> GPU";
          "gpu"
        end
        else if unrollable_dep_inner <> [] then begin
          note
            "inner dependence loop(s) with fixed bounds <= %d are fully unrollable -> \
             FPGA pipelining"
            config.unroll_threshold;
          "fpga"
        end
        else begin
          note "inner dependence loops are not fully unrollable -> GPU";
          "gpu"
        end
      end
      else begin
        note "outer loop not parallel -> FPGA pipelining";
        "fpga"
      end
    in
    Ok { dec_path = path; dec_reasons = List.rev !reasons }
  | _, _, _, _ ->
    Error "informed PSA needs the target-independent analyses to have run"

let informed ?config art =
  match decide ?config art with
  | Error _ as e -> e
  | Ok ({ dec_path = "none"; _ } as d) -> Graph.select ~reasons:d.dec_reasons []
  | Ok d -> Graph.select ~reasons:d.dec_reasons [ d.dec_path ]
