type selection = {
  sel_paths : string list;
  sel_reasons : string list;
}

type node =
  | Task of Task.t
  | Seq of node list
  | Branch of branch_point

and branch_point = {
  bp_name : string;
  bp_select : Artifact.t -> (selection, string) result;
  bp_paths : (string * node) list;
}

type outcome = {
  oc_path : (string * string) list;
  oc_artifact : Artifact.t;
}

type failure = {
  fl_path : (string * string) list;
  fl_failure : Resilience.failure;
  fl_prov : Prov.step list;
}

type run_result = {
  rr_outcomes : outcome list;
  rr_pruned : failure list;
}

let ( let* ) = Result.bind

let select ?(reasons = []) paths = Ok { sel_paths = paths; sel_reasons = reasons }

(* recognised physically by [run_node]: take every path of the branch *)
let select_all _art = Ok { sel_paths = []; sel_reasons = [] }

(* Concatenate per-element (outcomes, failures) results in input order,
   surfacing the first error in input order — the same answer a
   sequential short-circuiting fold would produce, but linear and
   applicable to an already-computed list of results. *)
let concat_results results =
  let folded =
    List.fold_left
      (fun acc r ->
        let* ocs, fls = acc in
        let* outs, fails = r in
        Ok (outs :: ocs, fails :: fls))
      (Ok ([], []))
      results
  in
  Result.map
    (fun (ocs, fls) ->
      (List.concat (List.rev ocs), List.concat (List.rev fls)))
    folded

(* Every task application crosses one supervised boundary.  In tolerant
   mode a final failure prunes this artifact's path: the outcome
   disappears from the result, and a terminal [Prov.Sfailed] step is
   recorded on the failure's trail for `--why`.  In fail-fast mode the
   failure aborts the run with the task's own error message, exactly as
   the unsupervised executor did. *)
let rec run_node ~tolerant node (oc : outcome) :
    (outcome list * failure list, string) result =
  match node with
  | Task t -> (
    match
      Resilience.supervise ~site:(Task.site t) (fun () ->
          Task_cache.apply t oc.oc_artifact)
    with
    | Ok art -> Ok ([ { oc with oc_artifact = art } ], [])
    | Error f when tolerant ->
      let art =
        Artifact.add_prov oc.oc_artifact
          (Prov.Sfailed
             {
               sf_task = t.Task.name;
               sf_class = Resilience.class_label f.Resilience.f_class;
               sf_attempts = f.Resilience.f_attempts;
               sf_msg = f.Resilience.f_msg;
             })
      in
      Ok
        ( [],
          [
            {
              fl_path = oc.oc_path;
              fl_failure = f;
              fl_prov = art.Artifact.art_prov;
            };
          ] )
    | Error f -> Error f.Resilience.f_msg)
  | Seq nodes ->
    let step acc node =
      let* outcomes, fails = acc in
      let* outs, fails' =
        outcomes
        |> List.map (fun oc ->
               Util.Pool.Fut.spawn (fun () -> run_node ~tolerant node oc))
        |> Util.Pool.Fut.await_all |> concat_results
      in
      Ok (outs, fails @ fails')
    in
    List.fold_left step (Ok ([ oc ], [])) nodes
  | Branch bp ->
    Obs.Trace.with_span ~name:("branch " ^ bp.bp_name) ~kind:Obs.Trace.Branch
      (fun sp ->
        let all = List.map fst bp.bp_paths in
        let* sel =
          if bp.bp_select == select_all then
            Ok { sel_paths = all; sel_reasons = [] }
          else bp.bp_select oc.oc_artifact
        in
        let chosen = sel.sel_paths in
        let* available =
          let missing = List.filter (fun c -> not (List.mem_assoc c bp.bp_paths)) chosen in
          if missing = [] then Ok chosen
          else
            Error
              (Printf.sprintf "branch %s: strategy chose unknown path(s) %s" bp.bp_name
                 (String.concat ", " missing))
        in
        Obs.Trace.add_attr sp "chosen" (Obs.Trace.Str (String.concat "," available));
        (* spawn every taken path as its own future: paths overlap with
           each other and with any sibling fan-out elsewhere in the DAG
           sharing the scheduler, while [await_all] keeps the joined
           outcomes in path order *)
        available
        |> List.map (fun path_name ->
               let node = List.assoc path_name bp.bp_paths in
               let art =
                 Artifact.logf oc.oc_artifact "<branch %s -> %s>" bp.bp_name path_name
               in
               let art =
                 Artifact.add_prov art
                   (Prov.Sbranch
                      {
                        sb_name = bp.bp_name;
                        sb_taken = path_name;
                        sb_alternatives = all;
                        sb_chosen = available;
                        sb_reasons = sel.sel_reasons;
                      })
               in
               let tagged =
                 {
                   oc_path = oc.oc_path @ [ (bp.bp_name, path_name) ];
                   oc_artifact = art;
                 }
               in
               Util.Pool.Fut.spawn
                 ~label:("path " ^ path_name)
                 (fun () -> run_node ~tolerant node tagged))
        |> Util.Pool.Fut.await_all |> concat_results)

let run node art =
  Result.map fst (run_node ~tolerant:false node { oc_path = []; oc_artifact = art })

let run_tolerant node art =
  Result.map
    (fun (ocs, fails) -> { rr_outcomes = ocs; rr_pruned = fails })
    (run_node ~tolerant:true node { oc_path = []; oc_artifact = art })

let rec with_select node ~branch select =
  match node with
  | Task _ -> node
  | Seq nodes -> Seq (List.map (fun n -> with_select n ~branch select) nodes)
  | Branch bp ->
    let bp_paths =
      List.map (fun (name, n) -> (name, with_select n ~branch select)) bp.bp_paths
    in
    if bp.bp_name = branch then Branch { bp with bp_select = select; bp_paths }
    else Branch { bp with bp_paths }

let rec tasks = function
  | Task t -> [ t ]
  | Seq nodes -> List.concat_map tasks nodes
  | Branch bp -> List.concat_map (fun (_, n) -> tasks n) bp.bp_paths

let to_dot ?(name = "psaflow") node =
  let buf = Buffer.create 1024 in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "n%d" !counter
  in
  let escape s = String.concat "\\\"" (String.split_on_char '\"' s) in
  (* returns (entry node id, exit node ids) of the subgraph *)
  let rec emit = function
    | Task t ->
      let id = fresh () in
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=box,label=\"%s\\n[%s%s]\"];\n" id
           (escape t.Task.name) (Task.kind_letter t.Task.kind)
           (if t.Task.dynamic then ", dyn" else ""));
      (id, [ id ])
    | Seq [] ->
      let id = fresh () in
      Buffer.add_string buf (Printf.sprintf "  %s [shape=point];\n" id);
      (id, [ id ])
    | Seq (first :: rest) ->
      let entry, exits = emit first in
      let final_exits =
        List.fold_left
          (fun exits node ->
            let entry', exits' = emit node in
            List.iter
              (fun e -> Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" e entry'))
              exits;
            exits')
          exits rest
      in
      (entry, final_exits)
    | Branch bp ->
      let id = fresh () in
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=diamond,label=\"branch %s\"];\n" id
           (escape bp.bp_name));
      let exits =
        List.concat_map
          (fun (path, node) ->
            let entry', exits' = emit node in
            Buffer.add_string buf
              (Printf.sprintf "  %s -> %s [label=\"%s\"];\n" id entry' (escape path));
            exits')
          bp.bp_paths
      in
      (id, exits)
  in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=TB;\n" name);
  ignore (emit node);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
