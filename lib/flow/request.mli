(** Request-scoped flow execution: one self-contained spec in, one
    self-contained outcome out.

    This is the engine entry used by the [psaflowd] daemon (and usable by
    any embedder): a {!spec} carries everything a flow run depends on —
    the application (a suite slug or inline mini-C++ source), the branch
    strategy, the workload choice and an optional interpreter step budget
    — and {!run} resolves, executes and renders it without touching
    process-global CLI state.

    {2 Determinism invariant}

    The outcome's rendered texts ([oc_text], [oc_why]) are produced by
    {!Report.run_text}/{!Report.why_text} over the engine report, so they
    are byte-identical at any [--jobs] level and equal to what
    [psaflow run] prints for the same spec — including when other
    requests execute concurrently on the same scheduler: the engine
    never branches on scheduling, cached values are content-addressed,
    and single-flight replay returns the same values a fresh computation
    would.

    {2 Step-budget caveat}

    [Machine.set_step_cap] is process-wide, so a step-budgeted request
    must not run concurrently with other requests (the cap would leak
    into their interpreter runs and could fail them spuriously).  {!run}
    arms the cap only for its own duration; {e callers} running requests
    concurrently must serialize budgeted specs — [psaflowd] admits them
    exclusively (its dispatcher starts a budgeted request only when
    nothing else is in flight, and starts nothing until it finishes). *)

(** Where the program comes from. *)
type source =
  | Builtin of string  (** suite slug, e.g. ["nbody"] *)
  | Inline of { name : string; text : string; scale : int }
      (** user-supplied mini-C++ source; [scale] is the outer-trip
          extrapolation factor ([psaflow run --file --scale]) *)

type spec = {
  sp_source : source;
  sp_mode : Pipeline.mode;
  sp_quick : bool;  (** test workload instead of the evaluation workload *)
  sp_step_budget : int option;
      (** interpreter step cap per supervised task (see the caveat above) *)
  sp_jobs_hint : int option;
      (** advisory only: recorded for provenance; execution parallelism
          belongs to the process-wide scheduler ([--jobs] at daemon
          startup), never to a single request *)
}

(** What a request produced.  [oc_status] uses the [psaflow run] exit
    code convention: 0 all designs ok, 1 flow failed or spec unresolvable,
    3 partial (paths pruned, >= 1 design), 4 no design survived. *)
type outcome = {
  oc_status : int;
  oc_report : Engine.report option;  (** present when the engine ran *)
  oc_error : string;  (** non-empty iff the flow failed outright *)
  oc_text : string;  (** {!Report.run_text}, [""] on failure *)
  oc_why : string;  (** {!Report.why_text}, [""] on failure *)
}

val exit_partial : int
(** 3 — some branch paths pruned, at least one design produced. *)

val exit_none : int
(** 4 — every branch path pruned. *)

val resolve : spec -> (App.t * (string * int) list, string) result
(** Resolve the spec's application and workload without running anything:
    suite lookup for {!Builtin} (unknown slugs listed in the error),
    parse + typecheck for {!Inline} (errors reported, nothing raised). *)

val status_of_report : Engine.report -> int
(** The exit code {!run} derives from a completed report. *)

val run : spec -> outcome
(** Resolve and execute the spec on the current scheduler, then render
    the report.  Never raises: resolution and flow failures come back as
    [oc_status = 1] with [oc_error] set. *)
