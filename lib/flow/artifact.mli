(** The design artifact threaded through a PSA-flow.

    An artifact carries the evolving program, the workload, every fact the
    analysis tasks have accrued, and (once a branch has specialised it) the
    state of the target-specific design.  Tasks are pure functions from
    artifact to artifact; branch-point strategies read the facts.

    {2 Determinism invariant}

    An artifact is a pure function of [(app, workload, flow path)].  Every
    field — including the "timing" facts like [art_t_cpu_single], which
    come from deterministic interpretation and analytic device models, not
    wall-clock measurement — is reproducible bit-for-bit, and nothing
    records scheduling, domain ids, or real time.  This is what lets flow
    outputs stay byte-identical at any [--jobs] level and lets the
    evaluation cache replay artifacts safely across runs. *)

(** Target-specific design state, filled in along a branch. *)
type design_state = {
  ds_target : Target.t;
  ds_manage_fn : string;           (** host-side function (original kernel name) *)
  ds_compute_fn : string;          (** function profiled as the device kernel region *)
  ds_body_fn : string option;      (** GPU per-thread body *)
  ds_thread_index : string option; (** loop index the GPU grid replaced *)
  ds_sp : bool;                    (** single-precision transforms applied *)
  ds_kprofile : Kprofile.t option; (** profile of the generated design *)
  ds_kstatic : Kstatic.t option;
  ds_estimate_s : float option;    (** modelled kernel+transfer time *)
  ds_feasible : bool;              (** false: overmapped FPGA design *)
  ds_output : string list option;  (** functional output of the design *)
}

type t = {
  art_app : App.t;
  art_workload : (string * int) list;
  art_program : Ast.program;
  art_kernel : string option;        (** extracted hotspot kernel name *)
  art_hotspot_sid : int option;
  art_hotspots : Hotspot.hotspot list option;
  art_kprofile : Kprofile.t option;  (** reference kernel profile *)
  art_alias_free : bool option;
  art_intensity : Intensity.measure option;
  art_t_cpu_single : float option;   (** baseline hotspot time, seconds *)
  art_t_transfer : float option;     (** estimated accelerator transfer time *)
  art_reference_output : string list option;
  art_design : design_state option;
  art_log : string list;             (** chronological task log *)
  art_prov : Prov.step list;         (** provenance trail (see {!Prov}) *)
}

val create : App.t -> workload:(string * int) list -> t

val machine_config : t -> Machine.config
(** Default interpreter configuration with the artifact's workload. *)

val log : t -> string -> t
(** Append a line to the task log. *)

val logf : t -> ('a, unit, string, t) format4 -> 'a

val add_prov : t -> Prov.step -> t
(** Append a provenance step to the trail. *)

val kernel_exn : t -> string
(** @raise Failure when no kernel has been extracted yet. *)

val kprofile_exn : t -> Kprofile.t

val design_exn : t -> design_state
