(** Fault-tolerance policies for flow execution.

    Every task application in a {!Graph} run crosses one supervised
    boundary ({!supervise}): exceptions and error results are classified
    into a small taxonomy, retryable classes are retried a bounded number
    of times with deterministic seeded backoff, and what remains becomes a
    structured {!failure} that the engine turns into a pruned branch (an
    {!Prov.Sfailed} trail step) rather than an aborted run — except under
    [psaflow run --strict], which restores fail-fast.

    Timeouts come in two shapes:

    - {b interpreter step budgets} ([pol_step_budget]) cap
      [Machine.max_steps] while a flow phase runs ({!with_step_cap}); a
      blown budget raises [Machine.Step_limit_exceeded], classified as
      {!Timeout}.  Step budgets are exact and deterministic: the same
      program blows the same budget at the same statement at any [--jobs]
      level.
    - {b wall-clock deadlines} ([pol_deadline_s]) are checked against
      {!Obs.Monotonic} after each attempt.  They are a safety net against
      pathological slowness, {e not} deterministic — scheduling can push a
      borderline task over the line — so deadline timeouts are never
      retried and default to off.

    Determinism invariant: with no policy armed beyond the defaults and no
    faults injected, supervision is observationally free — every task
    succeeds on its first attempt and flow output is byte-identical to an
    unsupervised run at any [--jobs] level. *)

(** Why a task ultimately failed. *)
type error_class =
  | Task_failed  (** the task returned an error or raised *)
  | Timeout  (** step budget or wall-clock deadline exhausted *)
  | Cache_corrupt  (** failure traced to a corrupted cache entry *)
  | Resource_exhausted  (** out of memory / stack overflow *)

type failure = {
  f_class : error_class;
  f_site : string;  (** supervised site, e.g. ["FPGA/Generate oneAPI Design"] *)
  f_msg : string;  (** underlying error message, attempt-independent *)
  f_attempts : int;  (** attempts consumed, [>= 1] *)
}

type policy = {
  pol_max_attempts : int;  (** total attempts per site, [>= 1]; default 2 *)
  pol_backoff_s : float;
      (** base backoff before attempt [n+1]: [base * 2^(n-1) * jitter]
          with jitter drawn in [\[0.5, 1.5)] from a {!Util.Prng} stream
          seeded by [pol_seed] and the site name — deterministic per
          (policy, site, attempt).  Default 0.01 s. *)
  pol_seed : int;  (** seeds the backoff jitter; default 42 *)
  pol_deadline_s : float option;  (** wall-clock deadline per attempt; default off *)
  pol_step_budget : int option;
      (** interpreter step cap armed by {!with_step_cap}; default off *)
  pol_retryable : error_class -> bool;
      (** default: retry {!Task_failed} and {!Cache_corrupt} only —
          {!Timeout} and {!Resource_exhausted} are deterministic blowouts
          that would fail identically again *)
}

val default_policy : policy

val policy : unit -> policy
(** The process-wide policy used when {!supervise} is not given one. *)

val set_policy : policy -> unit

val class_label : error_class -> string
(** Stable lowercase label ("task-failed", "timeout", "cache-corrupt",
    "resource-exhausted") used in provenance rendering and metrics. *)

val classify_message : string -> error_class
(** Heuristic classification of a task's error string. *)

val supervise :
  ?policy:policy -> site:string -> (unit -> ('a, string) result) -> ('a, failure) result
(** [supervise ~site thunk] runs [thunk] under the policy: exceptions are
    caught and classified ([Machine.Step_limit_exceeded] is a {!Timeout},
    [Out_of_memory]/[Stack_overflow] are {!Resource_exhausted}, anything
    else {!Task_failed}), error results are classified by message, and
    retryable failures re-run the thunk after a seeded backoff until
    [pol_max_attempts] is spent.  Each retry increments the
    [flow.retries] counter; a final failure increments
    [flow.task.failures]. *)

val with_step_cap : ?policy:policy -> (unit -> 'a) -> 'a
(** Arm the policy's step budget as a process-wide interpreter cap
    ([Machine.set_step_cap]) for the duration of the callback, restoring
    the previous cap on exit.  A no-op when the policy has no budget. *)
