(** Learned Path Selection Automation.

    The paper closes with "developing sophisticated ML-based PSA
    strategies" as future work; this module provides the machinery: a
    feature vector extracted from the artifact's analysis facts, a training
    set built by labelling flow runs with their fastest branch, a
    lightweight nearest-neighbour classifier over standardised features,
    and a {!Graph}-compatible strategy backed by the learned model.

    The hand-written Fig. 3 tree remains the default; the learned strategy
    is evaluated against it in the test suite (leave-one-out over the
    benchmark suite). *)

type features = {
  ft_log_intensity : float;     (** log10 of FLOPs per footprint byte *)
  ft_log_transfer_ratio : float;(** log10 of T_cpu / T_transfer *)
  ft_outer_parallel : float;    (** 0/1 *)
  ft_dep_inner : float;         (** 0/1: some inner loop carries a dependence *)
  ft_unrollable_dep_inner : float; (** 0/1: such a loop is fully unrollable *)
  ft_log_outer_trips : float;
  ft_special_fraction : float;  (** transcendental share of the flop mix *)
}

val features_of : ?psa_config:Psa.config -> Artifact.t -> (features, string) result
(** Extract features from an analysed artifact (the same facts Fig. 3
    reads). *)

val to_vector : features -> float array

type example = { ex_features : features; ex_label : string }
(** A labelled training point; labels are branch names ("cpu" | "gpu" |
    "fpga"). *)

val label_of_report : Engine.report -> example option
(** Label an uninformed flow run with the branch of its fastest feasible
    design. *)

type model

val train : example list -> (model, string) result
(** Fit the feature standardisation and store the examples (k-NN with
    k = 1 over standardised Euclidean distance; ties broken by order).
    Fails on an empty training set. *)

val predict : model -> features -> string

val strategy : model -> Artifact.t -> (Graph.selection, string) result
(** The learned selector, pluggable at branch point A via
    {!Graph.with_select} or {!Pipeline.branch_a}. *)

val labels : model -> string list
(** Distinct labels seen at training time. *)
