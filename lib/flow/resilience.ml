(* Fault-tolerance policies: classification, bounded retry with seeded
   backoff, step-budget/deadline timeouts.  See resilience.mli. *)

type error_class = Task_failed | Timeout | Cache_corrupt | Resource_exhausted

type failure = {
  f_class : error_class;
  f_site : string;
  f_msg : string;
  f_attempts : int;
}

type policy = {
  pol_max_attempts : int;
  pol_backoff_s : float;
  pol_seed : int;
  pol_deadline_s : float option;
  pol_step_budget : int option;
  pol_retryable : error_class -> bool;
}

let default_retryable = function
  | Task_failed | Cache_corrupt -> true
  | Timeout | Resource_exhausted -> false

let default_policy =
  {
    pol_max_attempts = 2;
    pol_backoff_s = 0.01;
    pol_seed = 42;
    pol_deadline_s = None;
    pol_step_budget = None;
    pol_retryable = default_retryable;
  }

let the_policy = Atomic.make default_policy

let policy () = Atomic.get the_policy

let set_policy p =
  Atomic.set the_policy { p with pol_max_attempts = max 1 p.pol_max_attempts }

let class_label = function
  | Task_failed -> "task-failed"
  | Timeout -> "timeout"
  | Cache_corrupt -> "cache-corrupt"
  | Resource_exhausted -> "resource-exhausted"

let c_failures = Obs.Metrics.counter "flow.task.failures"

let c_retries = Obs.Metrics.counter "flow.retries"

let contains ~needle hay =
  let hay = String.lowercase_ascii hay in
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  nl > 0 && at 0

let classify_message msg =
  if contains ~needle:"corrupt" msg then Cache_corrupt
  else if
    contains ~needle:"step budget" msg
    || contains ~needle:"step limit" msg
    || contains ~needle:"deadline" msg
    || contains ~needle:"timeout" msg
  then Timeout
  else if contains ~needle:"out of memory" msg || contains ~needle:"resource" msg
  then Resource_exhausted
  else Task_failed

let classify_exn = function
  | Machine.Step_limit_exceeded ->
    Some (Timeout, "interpreter step budget exhausted")
  | Out_of_memory -> Some (Resource_exhausted, "out of memory")
  | Stack_overflow -> Some (Resource_exhausted, "stack overflow")
  | Machine.Runtime_error (_, msg) ->
    Some (Task_failed, "interpreter runtime error: " ^ msg)
  | _ -> None

(* Backoff before attempt [n+1]: exponential in the attempt index with a
   jitter factor in [0.5, 1.5) drawn from a stream seeded purely by
   (policy seed, site) — the same (site, attempt) always waits the same
   time, whatever else runs concurrently. *)
let backoff pol ~site n =
  if pol.pol_backoff_s > 0.0 then begin
    let g = Util.Prng.create (pol.pol_seed lxor Hashtbl.hash site) in
    (* advance the stream to this attempt's draw *)
    let jitter = ref 1.0 in
    for _ = 1 to n do
      jitter := 0.5 +. Util.Prng.uniform g
    done;
    let d = pol.pol_backoff_s *. (2.0 ** float_of_int (n - 1)) *. !jitter in
    Unix.sleepf (Float.min d 1.0)
  end

let supervise ?policy:p ~site thunk =
  let pol = match p with Some p -> p | None -> Atomic.get the_policy in
  let rec attempt n =
    let t0 = Obs.Monotonic.now_s () in
    let outcome =
      match thunk () with
      | Ok v -> Ok v
      | Error msg -> Error (classify_message msg, msg)
      | exception e -> (
        match classify_exn e with
        | Some c -> Error c
        | None -> Error (Task_failed, Printexc.to_string e))
    in
    let elapsed = Obs.Monotonic.now_s () -. t0 in
    let outcome =
      match pol.pol_deadline_s with
      | Some d when elapsed > d ->
        Error
          ( Timeout,
            Printf.sprintf "wall-clock deadline %.3gs exceeded (ran %.3gs)" d
              elapsed )
      | _ -> outcome
    in
    match outcome with
    | Ok v -> Ok v
    | Error (cls, msg) ->
      if n < pol.pol_max_attempts && pol.pol_retryable cls then begin
        Obs.Metrics.Counter.incr c_retries;
        Obs.Journal.record ~kind:"retry" ~detail:(class_label cls) site;
        backoff pol ~site n;
        attempt (n + 1)
      end
      else begin
        Obs.Metrics.Counter.incr c_failures;
        Obs.Journal.record ~kind:"failure" ~detail:(class_label cls) site;
        Error { f_class = cls; f_site = site; f_msg = msg; f_attempts = n }
      end
  in
  attempt 1

let with_step_cap ?policy:p f =
  let pol = match p with Some p -> p | None -> Atomic.get the_policy in
  match pol.pol_step_budget with
  | None -> f ()
  | Some budget ->
    let previous = Machine.step_cap () in
    Machine.set_step_cap (Some budget);
    Fun.protect ~finally:(fun () -> Machine.set_step_cap previous) f
