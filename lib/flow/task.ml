type kind = Analysis | Transform | Codegen | Optimisation

type scope =
  | Target_independent
  | Fpga_scope
  | Fpga_device of string
  | Gpu_scope
  | Gpu_device of string
  | Cpu_omp

type t = {
  name : string;
  kind : kind;
  scope : scope;
  dynamic : bool;
  run : Artifact.t -> (Artifact.t, string) result;
}

let make ~name ~kind ~scope ?(dynamic = false) run =
  { name; kind; scope; dynamic; run }

let kind_letter = function
  | Analysis -> "A"
  | Transform -> "T"
  | Codegen -> "CG"
  | Optimisation -> "O"

let scope_label = function
  | Target_independent -> "T-INDEP"
  | Fpga_scope -> "FPGA"
  | Fpga_device d -> "FPGA-" ^ d
  | Gpu_scope -> "GPU"
  | Gpu_device d -> "GPU-" ^ d
  | Cpu_omp -> "CPU-OMP"

let site t = scope_label t.scope ^ "/" ^ t.name

let apply t art =
  if Util.Faultsim.fire Util.Faultsim.Task_site ~site:(site t) then
    Error (Printf.sprintf "%s: injected fault" t.name)
  else
    match t.run art with
    | Ok art' -> Ok (Artifact.logf art' "[%s]" t.name)
    | Error msg -> Error (Printf.sprintf "%s: %s" t.name msg)
