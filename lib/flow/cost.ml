type pricing = {
  cpu_per_hour : float;
  gpu_per_hour : float;
  fpga_per_hour : float;
}

let default_pricing = { cpu_per_hour = 2.0; gpu_per_hour = 3.0; fpga_per_hour = 1.65 }

let unit_price pricing = function
  | Target.Omp _ -> pricing.cpu_per_hour
  | Target.Gpu _ -> pricing.gpu_per_hour
  | Target.Fpga _ -> pricing.fpga_per_hour

let monetary_cost pricing target ~time_s = unit_price pricing target *. time_s /. 3600.0

let relative_cost ~fpga_s ~gpu_s ~price_ratio =
  if gpu_s <= 0.0 then Float.infinity else fpga_s /. gpu_s *. price_ratio

let crossover_ratio ~fpga_s ~gpu_s =
  if fpga_s <= 0.0 then Float.infinity else gpu_s /. fpga_s

let within_budget pricing target ~time_s ~budget =
  monetary_cost pricing target ~time_s <= budget

let cheapest pricing alternatives =
  let costed =
    List.map
      (fun (target, time_s) -> (target, time_s, monetary_cost pricing target ~time_s))
      alternatives
  in
  List.fold_left
    (fun acc ((_, _, c) as x) ->
      match acc with
      | None -> Some x
      | Some (_, _, cb) -> if c < cb then Some x else acc)
    None costed
