(** Path Selection Automation strategies (Fig. 3).

    A strategy reads the artifact's accrued analysis facts and names the
    branch paths to take.  The informed strategy implements the decision
    tree of Fig. 3:

    - offloading pays only if the estimated transfer time is below the
      single-thread CPU time *and* the arithmetic intensity exceeds the
      tunable threshold X; otherwise take the multi-thread CPU path when
      the outer loop is parallel (or stop);
    - for an offloadable parallel outer loop: inner loops that carry
      dependences *and* are fully unrollable (fixed bounds at most the
      threshold) favour the FPGA's pipelined execution; otherwise the GPU;
    - a non-parallel outer loop maps to the FPGA.

    [explain] returns the decision with the chain of reasons, used by the
    CLI's [--explain] mode and the tests. *)

type config = {
  x_threshold : float;       (** FLOPs/byte compute-bound threshold (X) *)
  unroll_threshold : int;    (** "fully unrollable" fixed-bound threshold *)
}

val default_config : config
(** X = 5.0, unroll threshold 4. *)

type decision = {
  dec_path : string;         (** "cpu" | "gpu" | "fpga" | "none" *)
  dec_reasons : string list; (** decision trail, in evaluation order *)
}

val decide : ?config:config -> Artifact.t -> (decision, string) result
(** The informed strategy.  Fails when required facts are missing (the
    target-independent tasks must have run). *)

val informed : ?config:config -> Artifact.t -> (Graph.selection, string) result
(** {!decide} wrapped as a branch-point selector (empty selection for
    "none": the flow "terminates without modifying the input"); the
    decision trail rides along as the selection's reasons. *)

val path_names : string list
(** ["cpu"; "gpu"; "fpga"] — branch point A's paths. *)
