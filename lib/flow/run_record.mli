(** Assembly of {!Obs.Ledger} records from flow executions.

    The engine computes; this module observes.  A record is assembled at
    run completion (or on the failure path) from the {!Engine.report},
    the process-wide metrics snapshot and best-effort provenance — the
    flow itself never reads the ledger.

    Stable fields are derived only from the report (designs, decision,
    failure taxonomy, exit status), so they inherit the engine's
    determinism invariant: byte-identical at any [--jobs] level. *)

val git_rev : string
(** Best-effort current commit: reads [.git/HEAD] (and the ref or
    packed-refs it points to) in this or an enclosing directory, without
    spawning a subprocess.  ["unknown"] outside a checkout or on any
    read failure.  Computed once per process. *)

val meta : cmdline:string -> Obs.Ledger.meta
(** Provenance for a record assembled now. *)

val base :
  kind:string ->
  app:string ->
  mode:string ->
  workload:(string * int) list ->
  status:int ->
  cmdline:string ->
  Obs.Ledger.record
(** A record with current meta, backend, IR version and metrics snapshot
    but no designs or failures — the bench suite's record shape, and the
    base the other constructors extend. *)

val of_report :
  ?kind:string ->
  cmdline:string -> status:int -> mode:Pipeline.mode -> Engine.report ->
  Obs.Ledger.record
(** Record a completed [psaflow run]: design-quality summary (per-design
    time/speedup/feasibility, chosen best design and its estimated
    monetary cost under {!Cost.default_pricing}), branch decision, and
    any pruned paths as the failure taxonomy.  [kind] defaults to
    ["run"]; the daemon records under ["serve"] so ledger analyses can
    tell CLI runs from served requests. *)

val of_failure :
  ?kind:string ->
  cmdline:string ->
  status:int ->
  app:string ->
  mode:string ->
  workload:(string * int) list ->
  string ->
  Obs.Ledger.record
(** Record a run that produced no report (flow abort, bad spec): the
    error message becomes a single failure entry. *)
