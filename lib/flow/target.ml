type t =
  | Omp of { threads : int }
  | Gpu of { spec : Device.gpu_spec; params : Gpu_model.params }
  | Fpga of { spec : Device.fpga_spec; params : Fpga_model.params }

let device_name = function
  | Omp _ -> Device.epyc_7543.Device.cpu_name
  | Gpu { spec; _ } -> spec.Device.gpu_name
  | Fpga { spec; _ } -> spec.Device.fpga_name

let label = function
  | Omp { threads } -> Printf.sprintf "OpenMP CPU (%d threads)" threads
  | Gpu { spec; params } ->
    Printf.sprintf "HIP (%s, blocksize %d)" spec.Device.gpu_name params.Gpu_model.blocksize
  | Fpga { spec; params } ->
    Printf.sprintf "oneAPI (%s, unroll %d)" spec.Device.fpga_name params.Fpga_model.unroll

let short = function
  | Omp _ -> "OMP"
  | Gpu { spec; _ } ->
    if spec.Device.gpu_name = Device.gtx_1080_ti.Device.gpu_name then "HIP 1080Ti"
    else "HIP 2080Ti"
  | Fpga { spec; _ } ->
    if spec.Device.fpga_name = Device.pac_arria10.Device.fpga_name then "oneAPI A10"
    else "oneAPI S10"
