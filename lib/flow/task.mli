(** Codified design-flow tasks.

    A task is a named, classified, self-contained unit of work over an
    artifact — the paper's meta-program unit (Fig. 2/Fig. 4).  Tasks are
    composed into flows by {!Graph}; the classifications (Analysis,
    Transform, Code-Generation, Optimisation) and the dynamic flag mirror
    the repository table of Fig. 4. *)

type kind = Analysis | Transform | Codegen | Optimisation

type scope =
  | Target_independent
  | Fpga_scope
  | Fpga_device of string   (** e.g. "A10" *)
  | Gpu_scope
  | Gpu_device of string
  | Cpu_omp

type t = {
  name : string;
  kind : kind;
  scope : scope;
  dynamic : bool;  (** requires program execution (the paper's clock marker) *)
  run : Artifact.t -> (Artifact.t, string) result;
}

val make :
  name:string -> kind:kind -> scope:scope -> ?dynamic:bool ->
  (Artifact.t -> (Artifact.t, string) result) -> t

val apply : t -> Artifact.t -> (Artifact.t, string) result
(** Run the task, appending its name to the artifact log on success and
    prefixing it to the error on failure. *)

val kind_letter : kind -> string
(** "A" / "T" / "CG" / "O", the Fig. 4 classification letters. *)

val scope_label : scope -> string
