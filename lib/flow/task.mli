(** Codified design-flow tasks.

    A task is a named, classified, self-contained unit of work over an
    artifact — the paper's meta-program unit (Fig. 2/Fig. 4).  Tasks are
    composed into flows by {!Graph}; the classifications (Analysis,
    Transform, Code-Generation, Optimisation) and the dynamic flag mirror
    the repository table of Fig. 4. *)

type kind = Analysis | Transform | Codegen | Optimisation

type scope =
  | Target_independent
  | Fpga_scope
  | Fpga_device of string   (** e.g. "A10" *)
  | Gpu_scope
  | Gpu_device of string
  | Cpu_omp

type t = {
  name : string;
  kind : kind;
  scope : scope;
  dynamic : bool;  (** requires program execution (the paper's clock marker) *)
  run : Artifact.t -> (Artifact.t, string) result;
}

val make :
  name:string -> kind:kind -> scope:scope -> ?dynamic:bool ->
  (Artifact.t -> (Artifact.t, string) result) -> t

val apply : t -> Artifact.t -> (Artifact.t, string) result
(** Run the task, appending its name to the artifact log on success and
    prefixing it to the error on failure.  This is also the fault
    boundary: an armed {!Util.Faultsim} rule matching the task's
    {!site} makes the application fail without running it (cached
    applications that never reach [apply] are not faultable — the cache
    is authoritative for work it has already validated). *)

val kind_letter : kind -> string
(** "A" / "T" / "CG" / "O", the Fig. 4 classification letters. *)

val scope_label : scope -> string
(** "T-INDEP", "FPGA", "FPGA-A10", "GPU", "GPU-2080", "CPU-OMP", ... *)

val site : t -> string
(** ["<scope_label>/<name>"] — the name supervised task boundaries and
    fault-injection rules match against, unique per task instance in the
    flow (e.g. ["FPGA/Generate oneAPI Design"], ["GPU-2080/Block-size
    DSE"]). *)
