let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Some s
  | exception Sys_error _ -> None

let first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

(* Resolve "ref: refs/heads/x" through loose refs, then packed-refs. *)
let resolve_ref git_dir ref_name =
  let loose = Filename.concat git_dir ref_name in
  match read_file loose with
  | Some s -> Some (String.trim (first_line s))
  | None -> (
    match read_file (Filename.concat git_dir "packed-refs") with
    | None -> None
    | Some packed ->
      String.split_on_char '\n' packed
      |> List.find_map (fun line ->
             match String.index_opt line ' ' with
             | Some i
               when String.sub line (i + 1) (String.length line - i - 1) = ref_name
               -> Some (String.sub line 0 i)
             | _ -> None))

let git_rev =
  let rec find_git dir depth =
    if depth > 5 then None
    else
      let cand = Filename.concat dir ".git" in
      if Sys.file_exists (Filename.concat cand "HEAD") then Some cand
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else find_git parent (depth + 1)
  in
  match
    Option.bind (find_git (Sys.getcwd ()) 0) (fun git_dir ->
        Option.bind (read_file (Filename.concat git_dir "HEAD")) (fun head ->
            let head = String.trim (first_line head) in
            if String.length head > 5 && String.sub head 0 5 = "ref: " then
              resolve_ref git_dir
                (String.trim (String.sub head 5 (String.length head - 5)))
            else Some head))
  with
  | Some rev when rev <> "" -> rev
  | _ | (exception _) -> "unknown"

let meta ~cmdline =
  {
    Obs.Ledger.m_git_rev = git_rev;
    m_cmdline = cmdline;
    m_jobs = Util.Pool.default_jobs ();
    m_unix_time = Unix.gettimeofday ();
  }

let base ~kind ~app ~mode ~workload ~status ~cmdline =
  {
    Obs.Ledger.r_meta = meta ~cmdline;
    r_stable =
      {
        s_kind = kind;
        s_app = app;
        s_mode = mode;
        s_workload = workload;
        s_backend = Machine.backend_name (Machine.default_backend ());
        s_ir_version = Ir.version;
        s_status = status;
        s_decision = "";
        s_best = None;
        s_best_cost = None;
        s_designs = [];
        s_failures = [];
      };
    r_metrics = Obs.Metrics.flatten (Obs.Metrics.snapshot ());
  }

let design_sum (d : Design.t) =
  {
    Obs.Ledger.ds_target = Target.short d.Design.d_target;
    ds_device = Target.device_name d.Design.d_target;
    ds_time_s = d.Design.d_time_s;
    ds_speedup = d.Design.d_speedup;
    ds_feasible = d.Design.d_feasible;
    ds_valid = d.Design.d_valid;
  }

let failure_sum (f : Graph.failure) =
  let fl = f.Graph.fl_failure in
  {
    Obs.Ledger.fs_path =
      (match f.Graph.fl_path with
      | [] -> fl.Resilience.f_site
      | path -> String.concat "/" (List.map snd path));
    fs_class = Resilience.class_label fl.Resilience.f_class;
    fs_site = fl.Resilience.f_site;
    fs_attempts = fl.Resilience.f_attempts;
    fs_msg = fl.Resilience.f_msg;
  }

let of_report ?(kind = "run") ~cmdline ~status ~mode (rep : Engine.report) =
  let r =
    base ~kind ~app:rep.Engine.rep_app.App.app_slug
      ~mode:(Pipeline.mode_name mode) ~workload:rep.Engine.rep_workload ~status
      ~cmdline
  in
  let best = Engine.best_design rep in
  {
    r with
    r_stable =
      {
        r.r_stable with
        s_decision = rep.Engine.rep_decision.Psa.dec_path;
        s_best = Option.map (fun d -> Target.short d.Design.d_target) best;
        s_best_cost =
          Option.bind best (fun d ->
              Option.map
                (fun t ->
                  Cost.monetary_cost Cost.default_pricing d.Design.d_target
                    ~time_s:t)
                d.Design.d_time_s);
        s_designs = List.map design_sum rep.Engine.rep_designs;
        s_failures = List.map failure_sum rep.Engine.rep_failures;
      };
  }

let of_failure ?(kind = "run") ~cmdline ~status ~app ~mode ~workload msg =
  let r = base ~kind ~app ~mode ~workload ~status ~cmdline in
  {
    r with
    r_stable =
      {
        r.r_stable with
        s_failures =
          [
            {
              Obs.Ledger.fs_path = "flow";
              fs_class = "fatal";
              fs_site = "flow";
              fs_attempts = 1;
              fs_msg = msg;
            };
          ];
      };
  }
