type source =
  | Builtin of string
  | Inline of { name : string; text : string; scale : int }

type spec = {
  sp_source : source;
  sp_mode : Pipeline.mode;
  sp_quick : bool;
  sp_step_budget : int option;
  sp_jobs_hint : int option;
}

type outcome = {
  oc_status : int;
  oc_report : Engine.report option;
  oc_error : string;
  oc_text : string;
  oc_why : string;
}

let exit_partial = 3

let exit_none = 4

let inline_app ~name ~text ~scale =
  let app =
    {
      App.app_name = name ^ " (user program)";
      app_slug = name;
      app_descr = "inline source: " ^ name;
      app_source = text;
      app_eval_overrides = [];
      app_test_overrides = [];
      app_outer_scale = max 1 scale;
    }
  in
  (* surface parse/type errors as a readable message, not an exception *)
  match App.program app with
  | exception Failure msg -> Error msg
  | _ -> Ok app

let resolve spec =
  let app =
    match spec.sp_source with
    | Builtin slug -> (
      match Suite.find slug with
      | Some app -> Ok app
      | None ->
        Error
          (Printf.sprintf "unknown benchmark %S (try: %s)" slug
             (String.concat ", "
                (List.map (fun (a : App.t) -> a.App.app_slug) Suite.all))))
    | Inline { name; text; scale } -> inline_app ~name ~text ~scale
  in
  Result.map
    (fun (app : App.t) ->
      let workload =
        if spec.sp_quick then app.App.app_test_overrides
        else app.App.app_eval_overrides
      in
      (app, workload))
    app

let status_of_report (rep : Engine.report) =
  if rep.Engine.rep_failures = [] then 0
  else if rep.Engine.rep_designs <> [] then exit_partial
  else exit_none

let failed msg =
  { oc_status = 1; oc_report = None; oc_error = msg; oc_text = ""; oc_why = "" }

let run spec =
  match resolve spec with
  | Error msg -> failed msg
  | Ok (app, workload) -> (
    let exec () = Engine.run ~workload ~mode:spec.sp_mode app in
    let result =
      match spec.sp_step_budget with
      | None -> exec ()
      | Some budget ->
        (* the cap is process-wide (see .mli): callers serialize budgeted
           requests; here we only scope the arming to this run *)
        let policy =
          { (Resilience.policy ()) with Resilience.pol_step_budget = Some budget }
        in
        Resilience.with_step_cap ~policy exec
    in
    match result with
    | Error msg -> failed msg
    | Ok rep ->
      {
        oc_status = status_of_report rep;
        oc_report = Some rep;
        oc_error = "";
        oc_text = Report.run_text rep;
        oc_why = Report.why_text rep;
      })
