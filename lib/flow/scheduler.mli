(** Runtime mapping of jobs over a pool of diverse designs (Section IV-D).

    With the uninformed flow's design set in hand, "computations can be
    mapped at runtime to minimise cost" on priced cloud resources.  This
    module implements that runtime layer: a resource pool with per-class
    instance counts and prices, a job stream, and two greedy mapping
    policies — minimise money or minimise completion time — using the
    designs' modelled execution times.

    Times scale linearly with the job's relative workload size, matching
    the models' behaviour on these kernels. *)

(** One execution alternative for the application: a generated design and
    its modelled time at the reference workload. *)
type alternative = {
  alt_target : Target.t;
  alt_time_s : float;
}

val alternatives_of_report : Engine.report -> alternative list
(** Feasible designs of an (uninformed) flow run. *)

type resource_class = Rcpu | Rgpu | Rfpga

val class_of_target : Target.t -> resource_class

(** A pool of provisioned instances. *)
type pool = {
  cpu_instances : int;
  gpu_instances : int;
  fpga_instances : int;
}

type job = {
  job_id : int;
  job_scale : float;   (** workload relative to the evaluated one *)
}

type policy = Min_cost | Min_makespan

type assignment = {
  as_job : job;
  as_target : Target.t;
  as_instance : int;    (** index within the class *)
  as_start_s : float;
  as_finish_s : float;
  as_cost : float;      (** USD *)
}

type schedule = {
  sc_assignments : assignment list;  (** in completion order of the greedy pass *)
  sc_makespan_s : float;
  sc_total_cost : float;
}

val run :
  ?pricing:Cost.pricing ->
  policy:policy ->
  pool:pool ->
  alternatives:alternative list ->
  job list ->
  (schedule, string) result
(** Greedy list scheduling: jobs are taken in order; each is placed on the
    instance/design combination minimising the policy objective (earliest
    finish for [Min_makespan], cheapest execution with earliest finish as
    tie-break for [Min_cost]).  Fails when the pool is empty or no
    alternative exists. *)

val render : schedule -> string
