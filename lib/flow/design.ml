type t = {
  d_app : App.t;
  d_target : Target.t;
  d_path : (string * string) list;
  d_program : Ast.program;
  d_sp : bool;
  d_feasible : bool;
  d_time_s : float option;
  d_speedup : float option;
  d_loc_added_pct : float;
  d_valid : bool;
  d_log : string list;
  d_prov : Prov.step list;
}

let of_outcome ~app ~reference_program ~baseline_s ~reference_output
    (oc : Graph.outcome) =
  let art = oc.Graph.oc_artifact in
  match art.Artifact.art_design with
  | None -> Error "flow outcome carries no design"
  | Some ds ->
    let time_s = if ds.Artifact.ds_feasible then ds.Artifact.ds_estimate_s else None in
    let speedup =
      match time_s with
      | Some t when t > 0.0 -> Some (baseline_s /. t)
      | Some _ | None -> None
    in
    let tol =
      if ds.Artifact.ds_sp then Suite.sp_rel_tolerance app else 1e-9
    in
    let valid =
      match ds.Artifact.ds_output with
      | Some output -> Tasks.validate_outputs ~tol ~reference:reference_output output
      | None -> false
    in
    Ok
      {
        d_app = app;
        d_target = ds.Artifact.ds_target;
        d_path = oc.Graph.oc_path;
        d_program = art.Artifact.art_program;
        d_sp = ds.Artifact.ds_sp;
        d_feasible = ds.Artifact.ds_feasible;
        d_time_s = time_s;
        d_speedup = speedup;
        d_loc_added_pct =
          Loc_count.added_pct ~reference:reference_program ~design:art.Artifact.art_program;
        d_valid = valid;
        d_log = art.Artifact.art_log;
        d_prov = art.Artifact.art_prov;
      }

let label t = Target.label t.d_target

let compare_speedup a b =
  match a.d_speedup, b.d_speedup with
  | Some x, Some y -> compare y x
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None -> 0
