(** Finalised designs: the PSA-flow's outputs, evaluated.

    A design couples the generated (human-readable, runnable) program with
    its target, the modelled execution time of the hotspot region, its
    speedup over the single-thread CPU baseline (the Fig. 5 metric), the
    added lines of code against the reference source (the Table I metric),
    and functional validation of its output. *)

type t = {
  d_app : App.t;
  d_target : Target.t;
  d_path : (string * string) list;  (** branch decisions that produced it *)
  d_program : Ast.program;
  d_sp : bool;                      (** runs in single precision *)
  d_feasible : bool;                (** false: FPGA design overmaps (no result, as in Fig. 5's missing Rush Larsen bars) *)
  d_time_s : float option;          (** modelled hotspot time incl. transfers *)
  d_speedup : float option;         (** baseline / time *)
  d_loc_added_pct : float;
  d_valid : bool;                   (** output matches the reference within tolerance *)
  d_log : string list;
  d_prov : Prov.step list;          (** provenance trail ([psaflow --why]) *)
}

val of_outcome :
  app:App.t ->
  reference_program:Ast.program ->
  baseline_s:float ->
  reference_output:string list ->
  Graph.outcome ->
  (t, string) result
(** Package a flow outcome. Fails when the outcome carries no design. *)

val label : t -> string

val compare_speedup : t -> t -> int
(** Fastest (feasible) first. *)
