type design_state = {
  ds_target : Target.t;
  ds_manage_fn : string;
  ds_compute_fn : string;
  ds_body_fn : string option;
  ds_thread_index : string option;
  ds_sp : bool;
  ds_kprofile : Kprofile.t option;
  ds_kstatic : Kstatic.t option;
  ds_estimate_s : float option;
  ds_feasible : bool;
  ds_output : string list option;
}

type t = {
  art_app : App.t;
  art_workload : (string * int) list;
  art_program : Ast.program;
  art_kernel : string option;
  art_hotspot_sid : int option;
  art_hotspots : Hotspot.hotspot list option;
  art_kprofile : Kprofile.t option;
  art_alias_free : bool option;
  art_intensity : Intensity.measure option;
  art_t_cpu_single : float option;
  art_t_transfer : float option;
  art_reference_output : string list option;
  art_design : design_state option;
  art_log : string list;
  art_prov : Prov.step list;
}

let create app ~workload =
  {
    art_app = app;
    art_workload = workload;
    art_program = App.program app;
    art_kernel = None;
    art_hotspot_sid = None;
    art_hotspots = None;
    art_kprofile = None;
    art_alias_free = None;
    art_intensity = None;
    art_t_cpu_single = None;
    art_t_transfer = None;
    art_reference_output = None;
    art_design = None;
    art_log = [];
    art_prov = [];
  }

let machine_config t =
  { Machine.default_config with overrides = App.machine_overrides t.art_workload }

let log t line = { t with art_log = t.art_log @ [ line ] }

let add_prov t step = { t with art_prov = t.art_prov @ [ step ] }

let logf t fmt = Printf.ksprintf (log t) fmt

let kernel_exn t =
  match t.art_kernel with
  | Some k -> k
  | None -> failwith "artifact has no extracted kernel"

let kprofile_exn t =
  match t.art_kprofile with
  | Some kp -> kp
  | None -> failwith "artifact has no kernel profile"

let design_exn t =
  match t.art_design with
  | Some d -> d
  | None -> failwith "artifact has no design state"
