(** Cost and performance trade-offs (Fig. 3's cost evaluation and the
    Fig. 6 analysis).

    Cloud resources are priced per provisioned time; the monetary cost of a
    design is its execution time times the resource's unit price.  Fig. 6
    plots the cost of FPGA execution relative to GPU execution as the price
    ratio varies: with execution times [t_fpga] and [t_gpu] and a price
    ratio [r = p_fpga / p_gpu], the relative cost is
    [(t_fpga / t_gpu) * r]; the crossover ratio where both cost the same is
    [t_gpu / t_fpga]. *)

type pricing = {
  cpu_per_hour : float;
  gpu_per_hour : float;
  fpga_per_hour : float;
}

val default_pricing : pricing
(** Indicative on-demand prices (USD/h): CPU 2.0, GPU 3.0, FPGA 1.65 —
    in line with the cloud instance classes the paper cites. *)

val unit_price : pricing -> Target.t -> float

val monetary_cost : pricing -> Target.t -> time_s:float -> float
(** USD for one execution. *)

val relative_cost : fpga_s:float -> gpu_s:float -> price_ratio:float -> float
(** Fig. 6's y-value: FPGA cost / GPU cost at the given price ratio. *)

val crossover_ratio : fpga_s:float -> gpu_s:float -> float
(** Price ratio [p_fpga/p_gpu] at which both targets cost the same. *)

val within_budget : pricing -> Target.t -> time_s:float -> budget:float -> bool
(** The branch-point feedback test ("IF cost > budget: revise design"). *)

val cheapest :
  pricing -> (Target.t * float) list -> (Target.t * float * float) option
(** Given (target, time) alternatives, the one with minimal monetary cost;
    returns (target, time, cost). *)
