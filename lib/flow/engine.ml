let ( let* ) = Result.bind

type report = {
  rep_app : App.t;
  rep_mode : Pipeline.mode;
  rep_workload : (string * int) list;
  rep_analysed : Artifact.t;
  rep_decision : Psa.decision;
  rep_baseline_s : float;
  rep_designs : Design.t list;
  rep_failures : Graph.failure list;
}

(* Each phase also records its wall-clock into a flow.phase.<slug>.seconds
   gauge — the per-phase section timings persisted in ledger records.
   Gauges hold the most recent run's value; the ledger snapshots them at
   record time, one record per run. *)
let flow_span ~phase name app f =
  let g = Obs.Metrics.gauge ("flow.phase." ^ phase ^ ".seconds") in
  Obs.Trace.with_span
    ~attrs:[ ("app", Obs.Trace.Str app.App.app_name) ]
    ~name ~kind:Obs.Trace.Flow
    (fun _ ->
      let t0 = Obs.Monotonic.now_s () in
      Fun.protect
        ~finally:(fun () -> Obs.Metrics.Gauge.set g (Obs.Monotonic.now_s () -. t0))
        f)

(* An assemble-phase failure (design validation, feasibility modelling)
   prunes its outcome exactly as a task failure would: record a terminal
   Sfailed step on the outcome's trail and keep the siblings. *)
let assemble_failure (oc : Graph.outcome) (f : Resilience.failure) =
  let sfailed =
    Prov.Sfailed
      {
        sf_task = "Assemble Design";
        sf_class = Resilience.class_label f.Resilience.f_class;
        sf_attempts = f.Resilience.f_attempts;
        sf_msg = f.Resilience.f_msg;
      }
  in
  let art = Artifact.add_prov oc.Graph.oc_artifact sfailed in
  {
    Graph.fl_path = oc.Graph.oc_path;
    fl_failure = f;
    fl_prov = art.Artifact.art_prov;
  }

let assemble_site (oc : Graph.outcome) =
  "assemble/" ^ String.concat "/" (List.map snd oc.Graph.oc_path)

let run ?psa_config ?workload ?(strict = false) ~mode app =
  flow_span ~phase:"total" ("flow " ^ app.App.app_name) app @@ fun () ->
  let workload = Option.value workload ~default:app.App.app_eval_overrides in
  let art0 = Artifact.create app ~workload in
  let* analysed_outcomes =
    flow_span ~phase:"analyse" "target-independent analysis" app (fun () ->
        Graph.run Pipeline.target_independent art0)
  in
  let* analysed =
    match analysed_outcomes with
    | [ oc ] -> Ok oc.Graph.oc_artifact
    | _ -> Error "target-independent pipeline must produce exactly one artifact"
  in
  let* decision =
    flow_span ~phase:"decide" "psa decide" app (fun () ->
        Psa.decide ?config:psa_config analysed)
  in
  let* baseline_s =
    match analysed.Artifact.art_t_cpu_single with
    | Some t -> Ok t
    | None -> Error "analysis did not produce a CPU baseline"
  in
  let* reference_output =
    match analysed.Artifact.art_reference_output with
    | Some o -> Ok o
    | None -> Error "analysis did not capture the reference output"
  in
  (* The resilience step budget (when the policy arms one) covers the
     branch fan-out only: a blown budget there prunes one path.  The
     target-independent phase and design assembly run uncapped — they
     have no sibling paths to fall back on. *)
  let* outcomes, pruned =
    flow_span ~phase:"fanout" "branch fan-out" app (fun () ->
        Resilience.with_step_cap (fun () ->
            let node = Pipeline.branch_a ?psa_config mode in
            if strict then
              Result.map (fun ocs -> (ocs, [])) (Graph.run node analysed)
            else
              Result.map
                (fun r -> (r.Graph.rr_outcomes, r.Graph.rr_pruned))
                (Graph.run_tolerant node analysed)))
  in
  let reference_program = App.program app in
  let* designs, pruned =
    flow_span ~phase:"assemble" "assemble designs" app @@ fun () ->
    let folded =
      List.fold_left
        (fun acc oc ->
          let* designs, pruned = acc in
          match
            Resilience.supervise ~site:(assemble_site oc) (fun () ->
                Design.of_outcome ~app ~reference_program ~baseline_s
                  ~reference_output oc)
          with
          | Ok d -> Ok (d :: designs, pruned)
          | Error f when not strict ->
            Ok (designs, assemble_failure oc f :: pruned)
          | Error f -> Error f.Resilience.f_msg)
        (Ok ([], List.rev pruned))
        outcomes
    in
    Result.map (fun (ds, fs) -> (List.rev ds, List.rev fs)) folded
  in
  Ok
    {
      rep_app = app;
      rep_mode = mode;
      rep_workload = workload;
      rep_analysed = analysed;
      rep_decision = decision;
      rep_baseline_s = baseline_s;
      rep_designs = designs;
      rep_failures = pruned;
    }

let best_design report =
  report.rep_designs
  |> List.filter (fun (d : Design.t) -> d.Design.d_feasible && d.Design.d_speedup <> None)
  |> List.sort Design.compare_speedup
  |> function
  | [] -> None
  | d :: _ -> Some d

let design_for report ~short =
  List.find_opt
    (fun (d : Design.t) -> Target.short d.Design.d_target = short)
    report.rep_designs

(* ---- budget feedback (Fig. 3's cost evaluation) ---- *)

type attempt = {
  at_branch : string;
  at_design : Design.t option;
  at_cost : float option;
  at_within : bool;
}

type budget_report = {
  br_app : App.t;
  br_budget : float;
  br_pricing : Cost.pricing;
  br_attempts : attempt list;
  br_accepted : attempt option;
  br_within_budget : bool;
  br_baseline_s : float;
}

let run_budgeted ?psa_config ?workload ?(pricing = Cost.default_pricing) ~budget app =
  let workload = Option.value workload ~default:app.App.app_eval_overrides in
  let art0 = Artifact.create app ~workload in
  let* analysed_outcomes = Graph.run Pipeline.target_independent art0 in
  let* analysed =
    match analysed_outcomes with
    | [ oc ] -> Ok oc.Graph.oc_artifact
    | _ -> Error "target-independent pipeline must produce exactly one artifact"
  in
  let* decision = Psa.decide ?config:psa_config analysed in
  let* baseline_s =
    match analysed.Artifact.art_t_cpu_single with
    | Some t -> Ok t
    | None -> Error "analysis did not produce a CPU baseline"
  in
  let* reference_output =
    match analysed.Artifact.art_reference_output with
    | Some o -> Ok o
    | None -> Error "analysis did not capture the reference output"
  in
  let reference_program = App.program app in
  let try_branch branch =
    let select _ =
      Graph.select
        ~reasons:[ Printf.sprintf "budget feedback loop forcing branch %s" branch ]
        [ branch ]
    in
    let node = Graph.with_select (Pipeline.branch_a Pipeline.Informed) ~branch:"A" select in
    match Graph.run node analysed with
    | Error _ -> { at_branch = branch; at_design = None; at_cost = None; at_within = false }
    | Ok outcomes ->
      let designs =
        List.filter_map
          (fun oc ->
            match
              Design.of_outcome ~app ~reference_program ~baseline_s ~reference_output oc
            with
            | Ok d when d.Design.d_feasible && d.Design.d_time_s <> None -> Some d
            | Ok _ | Error _ -> None)
          outcomes
      in
      (match List.sort Design.compare_speedup designs with
       | [] -> { at_branch = branch; at_design = None; at_cost = None; at_within = false }
       | best :: _ ->
         let time_s = Option.get best.Design.d_time_s in
         let cost = Cost.monetary_cost pricing best.Design.d_target ~time_s in
         {
           at_branch = branch;
           at_design = Some best;
           at_cost = Some cost;
           at_within = cost <= budget;
         })
  in
  (* the informed path first, then the feedback loop revises through the
     remaining branches *)
  let order =
    decision.Psa.dec_path
    :: List.filter (fun b -> b <> decision.Psa.dec_path) Psa.path_names
  in
  let order = List.filter (fun b -> b <> "none") order in
  let rec search tried = function
    | [] -> (List.rev tried, None)
    | branch :: rest ->
      let a = try_branch branch in
      if a.at_within then (List.rev (a :: tried), Some a)
      else search (a :: tried) rest
  in
  let attempts, accepted = search [] order in
  let accepted =
    match accepted with
    | Some _ as a -> a
    | None ->
      (* nothing fits: report the cheapest thing the flow could produce *)
      List.fold_left
        (fun acc a ->
          match a.at_cost, acc with
          | None, _ -> acc
          | Some _, None -> Some a
          | Some c, Some best ->
            (match best.at_cost with
             | Some cb when cb <= c -> acc
             | _ -> Some a))
        None attempts
  in
  Ok
    {
      br_app = app;
      br_budget = budget;
      br_pricing = pricing;
      br_attempts = attempts;
      br_accepted = accepted;
      br_within_budget = (match accepted with Some a -> a.at_within | None -> false);
      br_baseline_s = baseline_s;
    }
