(** Flow-level task caching on top of {!Cache}.

    A flow's expensive tasks — the dynamic ones that run the interpreter
    and the Optimisation ones that run DSE sweeps — are pure functions of
    the incoming artifact, so their applications can be content-addressed
    and replayed: across repeated flow runs in one process (suite runs,
    bench iterations, ablation studies) via the in-memory tier, and
    across processes via the on-disk tier when {!Cache.set_dir} enabled
    it.

    The key is a digest of the task's identity plus a canonical
    projection of the artifact: the program in {!Memo.canonicalize} id
    space, every statement-id-bearing field (hotspots, kernel profiles,
    static features) translated through the same mapping, and the log
    reduced to its structural task/branch tags (free-text lines embed
    raw, allocation-order-dependent ids).  The cached value is the raw
    output artifact; a disk hit reserves the loaded program's id range
    (see {!Ast.reserve_ids}) before the artifact re-enters the flow.

    When the disk tier is disabled the whole mechanism is bypassed and
    {!Task.apply} runs directly, keeping [--cache off] byte-identical to
    a cache-free build (recomputed tasks mint fresh node ids; replayed
    ones would not). *)

val cacheable : Task.t -> bool
(** Dynamic or Optimisation tasks. *)

val key_of : Task.t -> Artifact.t -> string
(** Content key for applying [task] to this artifact (a binary digest;
    hex-encode for display). *)

val apply : Task.t -> Artifact.t -> (Artifact.t, string) result
(** {!Task.apply} through the cache.  Uncacheable tasks, and every task
    while the cache is disabled, run directly.  Task errors are never
    cached.  Concurrent applications of the same key single-flight. *)

val stats : unit -> Cache.stats
(** This instance's counters (see {!Cache.Make}). *)

val reset : unit -> unit
(** Drop the in-memory tier and zero the counters. *)
