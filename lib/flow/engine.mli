(** Flow execution engine: runs the implemented PSA-flow on an application
    and packages the evaluated designs.

    The informed mode reproduces the paper's "Informed" experiments
    (branch point A decides one target); the uninformed mode takes every
    path, generating all five designs.

    {2 Failure model}

    By default the engine is {e fault-tolerant}: a task failure during
    the branch fan-out (after {!Resilience} retries) prunes only the
    branch path that hit it — surviving paths still produce designs, and
    each pruned path is reported in [rep_failures] with a provenance
    trail ending in {!Prov.Sfailed}.  With [~strict:true] any failure
    aborts the run ([psaflow run --strict]).  The target-independent
    phase is always fail-fast: there is exactly one path, so nothing
    survives pruning it.

    {2 Determinism invariant}

    With no faults injected and no failures, the report — designs,
    trails, logs — is byte-identical at every [--jobs] level and for
    both values of [~strict]; parallel scheduling is never observable in
    outputs. *)

type report = {
  rep_app : App.t;
  rep_mode : Pipeline.mode;
  rep_workload : (string * int) list;
  rep_analysed : Artifact.t;          (** artifact after the T-INDEP tasks *)
  rep_decision : Psa.decision;        (** Fig. 3 strategy verdict (also computed in uninformed mode, for reporting) *)
  rep_baseline_s : float;             (** single-thread CPU hotspot time *)
  rep_designs : Design.t list;        (** in branch order *)
  rep_failures : Graph.failure list;  (** pruned paths: fan-out failures in branch order, then assemble failures *)
}

val run :
  ?psa_config:Psa.config ->
  ?workload:(string * int) list ->
  ?strict:bool ->
  mode:Pipeline.mode ->
  App.t ->
  (report, string) result
(** Default workload: the app's evaluation workload.  [~strict] (default
    [false]) restores fail-fast: the first task failure aborts the run
    instead of pruning its branch. *)

val best_design : report -> Design.t option
(** Fastest feasible design (the paper's "Auto-Selected" bar under the
    informed mode; under uninformed, the best of all five). *)

val design_for : report -> short:string -> Design.t option
(** Look up a design by its target's short label ("OMP", "HIP 2080Ti",
    "oneAPI A10", ...). *)

(** {1 Budget-constrained selection}

    Fig. 3's cost-evaluation feedback: after a path is selected, the
    design's monetary cost (execution time times the resource's unit
    price) is checked against a user budget; over-budget designs are
    revised by falling back to the next branch. *)

type attempt = {
  at_branch : string;           (** branch tried at point A *)
  at_design : Design.t option;  (** best feasible design of that branch *)
  at_cost : float option;       (** USD per run *)
  at_within : bool;
}

type budget_report = {
  br_app : App.t;
  br_budget : float;
  br_pricing : Cost.pricing;
  br_attempts : attempt list;   (** in the order the feedback loop tried them *)
  br_accepted : attempt option; (** first within-budget attempt, or the
                                    cheapest one when none fits *)
  br_within_budget : bool;
  br_baseline_s : float;
}

val run_budgeted :
  ?psa_config:Psa.config ->
  ?workload:(string * int) list ->
  ?pricing:Cost.pricing ->
  budget:float ->
  App.t ->
  (budget_report, string) result
(** Informed run under a monetary budget (USD per execution).  The
    informed decision is tried first; when its design costs more than the
    budget, the remaining branches are tried in turn ("IF cost > budget:
    revise design").  When nothing fits, the cheapest attempt is reported
    with [br_within_budget = false]. *)
