(** The repository of codified design-flow tasks (the Fig. 4 table).

    Target-independent tasks fill the artifact's facts; target-specific
    tasks generate and optimise designs.  Dynamic tasks execute the program
    under the interpreter (the paper's clock-marked tasks). *)

(** {1 Target-independent tasks} *)

val identify_hotspot_loops : Task.t
(** Instrument every loop with timers, execute, rank; choose the
    outermost parallelisable loop covering at least half the run, falling
    back to the hottest outermost loop. *)

val hotspot_extraction : Task.t
(** Outline the chosen loop into the kernel function [knl]. *)

val remove_array_acc_dependency : Task.t
(** "Remove Array += Dependency": scalarise loop-invariant array
    accumulators in the kernel's loops. *)

val pointer_analysis : Task.t
(** Dynamic alias check; marks kernel pointers [__restrict__] when clean. *)

val loop_tripcount_analysis : Task.t

val data_inout_analysis : Task.t
(** Also estimates the target-independent transfer time (PCIe). *)

val arithmetic_intensity_analysis : Task.t
(** Also computes the single-thread CPU baseline time of the kernel. *)

val loop_dependence_analysis : Task.t

val target_independent : Task.t list
(** The eight tasks above, in execution order. *)

(** {1 CPU (OpenMP) tasks} *)

val multi_thread_parallel_loops : Task.t
val omp_num_threads_dse : Task.t

(** {1 GPU (HIP) tasks} *)

val generate_hip_design : Task.t
val gpu_sp_math_fns : Task.t
val gpu_sp_numeric_literals : Task.t
(** Applies the demotion and validates the design output against the
    reference; reverts to double precision when the application's
    tolerance is exceeded (the Rush Larsen case). *)

val employ_hip_pinned_memory : Task.t
val introduce_shared_mem_buf : Task.t
val employ_specialised_math_fns : Task.t
val profile_gpu_design : Task.t
(** Dynamic: executes the generated design to obtain its kernel profile,
    static features and functional output. *)

val gpu_blocksize_dse : Device.gpu_spec -> Task.t
(** Device-specific (branch C): picks the blocksize minimising the modelled
    time on the given GPU and pins the target. *)

(** {1 FPGA (oneAPI) tasks} *)

val generate_oneapi_design : Task.t
val unroll_fixed_loops : Task.t
val fpga_sp_math_fns : Task.t
val fpga_sp_numeric_literals : Task.t
val zero_copy_data_transfer : Task.t
(** Stratix10-only (USM). *)

val profile_fpga_design : Task.t

val fpga_unroll_until_overmap_dse : Device.fpga_spec -> Task.t
(** Device-specific (branch B): Fig. 2's doubling DSE against the resource
    model; flags the design infeasible when unroll 1 already overmaps. *)

(** {1 Helpers shared with strategies} *)

val kernel_name : string
(** Name given to extracted hotspot kernels ("knl"). *)

val ensure_kprofile : Artifact.t -> (Artifact.t, string) result
(** Profile the (current) reference program's kernel once and memoise. *)

val validate_outputs : ?tol:float -> reference:string list -> string list -> bool
(** Line-by-line numeric comparison with relative tolerance. *)
