(** Text rendering of flow reports. *)

val design_table : Engine.report -> string
(** One row per generated design: target, estimated time, speedup over the
    single-thread baseline, added LOC, precision, validity. *)

val decision_text : Engine.report -> string
(** The informed PSA decision with its reasoning trail. *)

val log_text : Engine.report -> string
(** The analysed artifact's task log, headed by the active interpreter
    backend ([psaflow --explain]). *)

val why_text : Engine.report -> string
(** Per-design provenance trails ([psaflow --why]): the active interpreter
    backend, then ordered tasks with cache status, branch decisions with
    their reasons, DSE sweeps with point counts.  Pruned paths (if any)
    follow the designs, each trail ending in its {!Prov.Sfailed} step.
    Timing-free, so a given flow renders deterministically regardless of
    parallelism; only cache statuses differ between cold and warm runs. *)

val failures_text : Engine.report -> string
(** One line per pruned path: where it failed, the failure class,
    attempts consumed, and the error.  Empty for a clean run. *)

val summary_line : Engine.report -> string
(** One line: app, chosen branch, best design and speedup. *)

val run_text : Engine.report -> string
(** The complete default output of [psaflow run]: header line (app, mode,
    workload), {!decision_text}, baseline line, {!design_table}, and —
    only when paths were pruned — a blank line plus {!failures_text}.
    Shared verbatim by the CLI and by [psaflowd]'s [/v1/flows/ID/report]
    endpoint, so a daemon-served report is byte-identical to the CLI
    report for the same spec.  Inherits the engine's determinism
    invariant: byte-identical at any [--jobs] level. *)
