(** Always-on flight recorder: a bounded per-domain ring of recent events.

    Unlike {!Trace}, which records everything but only when armed, the
    journal is armed by default and keeps only the most recent
    {!capacity} events per domain — span completions (fed by
    {!Trace.with_span}), retries, failures, injected faults, and anything
    else callers {!record}.  A crashed or partially-failed run can then
    flush the rings to JSONL ({!flush}) and leave a post-mortem trail
    where a disabled tracer would have left nothing.

    The hot path is lock-free and allocation-light: each domain owns its
    ring exclusively, so {!record} is two clock reads and an array store.
    Overwritten events are simply lost — the journal answers "what was
    happening just before it went wrong", not "what happened overall".

    The journal never influences flow results and its contents are
    wall-clock and scheduling dependent: nothing in it participates in
    the byte-identical [--jobs] guarantees.  Flushed JSONL is one event
    object per line (fields [ts_us], [tid], [seq], [kind], [name],
    [detail], [dur_us]), validated by [bench/tracecheck.exe --journal]. *)

val capacity : int
(** Events retained per domain ring (oldest overwritten first). *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Disarm (or re-arm) recording; [true] by default. *)

val record : kind:string -> ?detail:string -> ?dur_us:float -> string -> unit
(** [record ~kind name] appends an event to the calling domain's ring.
    [kind] is a short class tag ("span", "retry", "failure", "fault",
    "run", ...); [detail] free-form context; [dur_us] a duration for
    span-shaped events. *)

(** One recorded event, merged across rings. *)
type event = {
  jv_ts_us : float;  (** process-anchored timestamp ({!Monotonic}) *)
  jv_tid : int;  (** recording domain id *)
  jv_seq : int;  (** per-ring sequence number *)
  jv_kind : string;
  jv_name : string;
  jv_detail : string;
  jv_dur_us : float;  (** 0 for point events *)
}

val events : unit -> event list
(** Surviving events from every domain ring, ordered by (domain, birth,
    sequence) — the same track discipline as {!Trace.events}. *)

val clear : unit -> unit
(** Drop all recorded events (testing). *)

val to_jsonl : unit -> string
(** Render {!events} as JSONL, one object per line. *)

val flush : string -> (int, string) result
(** Atomically write {!to_jsonl} to a file; returns the event count. *)
