(** Torn-write-free file publication, shared by every artifact writer.

    All output files that another process (or a rerun of this one) may
    read — cache entries, traces, bench JSON, ledger records, emitted
    design sources — go through the same discipline: write to a unique
    temp file in the destination directory, then publish with an atomic
    [rename].  An interrupted writer leaves at worst a stale temp file,
    never a truncated artifact under the real name.

    {!write_checksummed}/{!read_checksummed} add the [.psa-cache] entry
    discipline on top: the published file carries a header line with a
    format tag, a schema version and an MD5 digest of the payload, so a
    reader can tell truncation/corruption from valid data without trusting
    file length. *)

val with_atomic_out : string -> (out_channel -> unit) -> (unit, string) result
(** [with_atomic_out path writer] opens a fresh temp file next to [path]
    (binary mode), runs [writer] on it, closes it and renames it onto
    [path].  On any I/O failure (including one raised by [writer]) the
    temp file is removed and the previous [path] contents, if any, are
    left untouched. *)

val write_file : string -> string -> (unit, string) result
(** [write_file path contents] — {!with_atomic_out} with a fixed string. *)

val write_checksummed : tag:string -> version:int -> string -> string -> (unit, string) result
(** [write_checksummed ~tag ~version path payload] atomically publishes
    ["<tag> v<version> <md5-hex> <length>\n<payload>"]. *)

type read_error =
  | Unreadable of string  (** open/read failure *)
  | Malformed  (** bad header, truncation or digest mismatch *)
  | Wrong_version of int  (** valid entry recorded under another schema *)

val read_checksummed : tag:string -> version:int -> string -> (string, read_error) result
(** Read a {!write_checksummed} file back, validating tag, version,
    length and digest; the payload is returned only when all match. *)
