let tmp_counter = Atomic.make 0

let tmp_path dir =
  Filename.concat dir
    (Printf.sprintf ".tmp-%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add tmp_counter 1))

let with_atomic_out path writer =
  let dir = Filename.dirname path in
  let tmp = tmp_path dir in
  match
    let oc = open_out_bin tmp in
    (try
       writer oc;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let write_file path contents =
  with_atomic_out path (fun oc -> output_string oc contents)

let header ~tag ~version payload =
  Printf.sprintf "%s v%d %s %d\n" tag version
    (Digest.to_hex (Digest.string payload))
    (String.length payload)

let write_checksummed ~tag ~version path payload =
  with_atomic_out path (fun oc ->
      output_string oc (header ~tag ~version payload);
      output_string oc payload)

type read_error =
  | Unreadable of string
  | Malformed
  | Wrong_version of int

let read_checksummed ~tag ~version path =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Unreadable msg)
  | ic ->
    let result =
      match input_line ic with
      | exception End_of_file -> Error Malformed
      | line -> (
        match String.split_on_char ' ' line with
        | [ t; v; digest; len ]
          when t = tag
               && String.length v > 1
               && v.[0] = 'v'
               && int_of_string_opt (String.sub v 1 (String.length v - 1)) <> None
          -> (
          let v = int_of_string (String.sub v 1 (String.length v - 1)) in
          if v <> version then Error (Wrong_version v)
          else
            match int_of_string_opt len with
            | None -> Error Malformed
            | Some len -> (
              match really_input_string ic len with
              | exception End_of_file -> Error Malformed
              | payload ->
                (* anything after the declared payload is corruption too *)
                if
                  (try
                     ignore (input_char ic);
                     true
                   with End_of_file -> false)
                  || Digest.to_hex (Digest.string payload) <> digest
                then Error Malformed
                else Ok payload))
        | _ -> Error Malformed)
    in
    close_in_noerr ic;
    result
