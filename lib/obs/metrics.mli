(** Process-wide metrics registry: named counters, gauges and histograms
    with atomic updates.

    Instruments are created on first use and live for the process; looking
    up an existing name returns the same instrument (a name registered as
    one instrument class cannot be re-registered as another).  All update
    paths are safe to call concurrently from pool workers.

    Metrics are write-only from the flow's point of view: library code
    updates instruments but never branches on their values, so the
    registry cannot perturb flow results.  Counter totals (e.g.
    [flow.retries], [cache.<kind>.disk_hits]) may legitimately differ
    between [--jobs] levels or cold/warm cache runs even though the flow
    outputs are byte-identical. *)

module Counter : sig
  type t

  val incr : t -> unit

  val add : t -> int -> unit

  val set : t -> int -> unit

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit

  val add : t -> float -> unit

  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit

  val count : t -> int

  val sum : t -> float

  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [0..100]; linear interpolation between
      order statistics; [nan] when empty. *)
end

val counter : string -> Counter.t
(** @raise Invalid_argument if the name names a non-counter instrument. *)

val gauge : string -> Gauge.t

val histogram : string -> Histogram.t

(** A point-in-time reading of one instrument. *)
type value =
  | Count of int
  | Value of float
  | Summary of {
      count : int;
      sum : float;
      min : float;
      max : float;
      p50 : float;
      p90 : float;
      p99 : float;
    }

val snapshot : unit -> (string * value) list
(** All registered instruments, sorted by name. *)

val flatten : (string * value) list -> (string * float) list
(** Serialize a snapshot to a flat name -> number map: counters and
    gauges keep their name, a histogram [h] expands to [h.count],
    [h.sum], [h.p50], [h.p90] and [h.p99].  The flat form is what
    crosses process boundaries (bench [--json], ledger records) —
    consumers with a parser too minimal for arrays still read every
    instrument. *)

val jobs_invariant : string -> bool
(** Whether this instrument's value is deterministic at any [--jobs]
    level and across machine speeds — i.e. safe to print where output
    must be byte-identical ([psaflow --explain]).  False for
    scheduling-dependent names ([pool.*], single-flight [*.waits]),
    daemon traffic telemetry ([serve.*] — arrival-order dependent) and
    all wall-clock ones ([*.seconds] and their histogram expansions,
    [bench.section.*], [pool.idle_ns]). *)

val find : string -> value option

val reset : unit -> unit
(** Zero every instrument (registrations are kept). *)
