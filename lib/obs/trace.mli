(** Span tracer with Chrome trace-event JSON export.

    Spans record begin/end events with process-anchored timestamps
    ({!Monotonic}) and the domain id of the recording domain.  Each domain
    appends to its own buffer (no locking on the hot path beyond one
    atomic read), so {!Util.Pool} workers trace freely; buffers are merged
    when the trace is exported.  When tracing is disabled, {!with_span}
    costs one atomic load and runs its body against a shared dummy span.

    Event ordering is reconstructed from per-buffer sequence numbers, not
    timestamps: a span's begin and end events carry the sequence values
    they were recorded at, so the exported stream is balanced by the stack
    discipline of [with_span] even when clock resolution makes sibling
    spans collide on the same timestamp.  Timestamps are clamped to be
    non-decreasing per domain track.

    {2 Span nesting rules}

    - Spans {e strictly nest} within a domain track: {!with_span} is the
      only way to open one, so a span closes after every span opened
      inside its body ([E] events close the most recent open [B] with the
      same name — what {!Trace_json.validate} checks).
    - A span begins and ends on the domain that opened it.  Work handed
      to {!Util.Pool} workers opens {e new} spans on the worker's track;
      a span never migrates between tracks, so per-track balance holds
      even under work stealing.
    - A span closes exactly once, including when the body raises.
    - {!add_attr} only mutates a live (un-closed) span; attributes become
      visible on the span's [E] event.

    Tracing never influences flow results: spans carry no data back into
    the computation, so enabling or disabling the tracer leaves outputs
    byte-identical. *)

type kind =
  | Task  (** one flow-task application *)
  | Branch  (** branch-point selection + fan-out *)
  | Dse_point  (** one DSE point evaluation *)
  | Interp_run  (** one interpreter execution *)
  | Cache_lookup  (** one find_or_compute round trip *)
  | Pool  (** one work item on a pool worker *)
  | Flow  (** engine phases (analysis, decide, fan-out, designs) *)
  | Section  (** bench sections *)

val cat_of_kind : kind -> string
(** Chrome [cat] string: ["task"], ["branch"], ["dse-point"],
    ["interp-run"], ["cache-lookup"], ["pool"], ["flow"], ["section"]. *)

type attr = Str of string | Int of int | Float of float | Bool of bool

type span

val enabled : unit -> bool

val start : unit -> unit
(** Discard previously recorded spans and start recording. *)

val stop : unit -> unit
(** Stop recording; recorded spans stay available for export. *)

val with_span : ?attrs:(string * attr) list -> name:string -> kind:kind -> (span -> 'a) -> 'a
(** Run the body inside a span.  The span closes when the body returns or
    raises.  When tracing is off the body runs against a dummy span and
    nothing is recorded. *)

val add_attr : span -> string -> attr -> unit
(** Attach an attribute to a live span (e.g. a step count known only
    after the work ran).  No-op on the dummy span. *)

(** A merged begin/end event, for tests and validation. *)
type event = {
  ev_ph : [ `B | `E ];
  ev_name : string;
  ev_cat : string;
  ev_tid : int;
  ev_ts : float;  (** microseconds, non-decreasing per [ev_tid] *)
  ev_attrs : (string * attr) list;
}

val events : unit -> event list
(** All recorded events, grouped by domain track; within a track, events
    are in recording order with non-decreasing timestamps. *)

val export_json : Buffer.t -> unit
(** Append the Chrome trace-event JSON document ([traceEvents] array plus
    thread-name metadata) to the buffer. *)

val write_file : string -> (unit, string) result
(** Export to a file; [Error] on I/O failure. *)
