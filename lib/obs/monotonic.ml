let t0 = Unix.gettimeofday ()

let now_s () = Unix.gettimeofday () -. t0

let now_us () = (Unix.gettimeofday () -. t0) *. 1e6
