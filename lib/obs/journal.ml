let capacity = 512

let enabled_flag = Atomic.make true

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

type event = {
  jv_ts_us : float;
  jv_tid : int;
  jv_seq : int;
  jv_kind : string;
  jv_name : string;
  jv_detail : string;
  jv_dur_us : float;
}

let dummy_event =
  {
    jv_ts_us = 0.0;
    jv_tid = 0;
    jv_seq = 0;
    jv_kind = "";
    jv_name = "";
    jv_detail = "";
    jv_dur_us = 0.0;
  }

(* Same ownership scheme as Trace's buffers: one ring per domain, owned
   exclusively by its domain while it runs, reachable by the flushing
   domain through a registry; [r_born] orders rings that reuse a domain
   id after the original owner exited. *)
type ring = {
  r_tid : int;
  r_born : int;
  events : event array;
  mutable next : int;  (** total events ever recorded; slot = next mod capacity *)
}

let reg_mu = Mutex.create ()

let rings : ring list ref = ref []

let born_counter = Atomic.make 0

let new_ring () =
  let r =
    {
      r_tid = (Domain.self () :> int);
      r_born = Atomic.fetch_and_add born_counter 1;
      events = Array.make capacity dummy_event;
      next = 0;
    }
  in
  Mutex.lock reg_mu;
  rings := r :: !rings;
  Mutex.unlock reg_mu;
  r

let epoch = Atomic.make 0

let key : (int * ring) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (Atomic.get epoch, new_ring ()))

let get_ring () =
  let e, r = Domain.DLS.get key in
  let cur = Atomic.get epoch in
  if e = cur then r
  else begin
    let r = new_ring () in
    Domain.DLS.set key (cur, r);
    r
  end

let record ~kind ?(detail = "") ?(dur_us = 0.0) name =
  if Atomic.get enabled_flag then begin
    let r = get_ring () in
    let seq = r.next in
    r.events.(seq mod capacity) <-
      {
        jv_ts_us = Monotonic.now_us ();
        jv_tid = r.r_tid;
        jv_seq = seq;
        jv_kind = kind;
        jv_name = name;
        jv_detail = detail;
        jv_dur_us = dur_us;
      };
    r.next <- seq + 1
  end

let clear () =
  Mutex.lock reg_mu;
  rings := [];
  Mutex.unlock reg_mu;
  Atomic.incr epoch

let events () =
  Mutex.lock reg_mu;
  let rs = !rings in
  Mutex.unlock reg_mu;
  let rs =
    List.sort
      (fun a b ->
        if a.r_tid <> b.r_tid then compare a.r_tid b.r_tid
        else compare a.r_born b.r_born)
      rs
  in
  List.concat_map
    (fun r ->
      (* the owning domain may still be appending; snapshot [next] once
         and read at most [capacity] settled slots behind it.  A slot
         being overwritten concurrently yields one stale-or-fresh event,
         never a torn read of interest (events are immutable records). *)
      let hi = r.next in
      let lo = max 0 (hi - capacity) in
      List.init (hi - lo) (fun i -> r.events.((lo + i) mod capacity))
      |> List.filter (fun ev -> ev != dummy_event))
    rs

let to_jsonl () =
  let buf = Buffer.create 8192 in
  List.iter
    (fun ev ->
      let first = ref true in
      Buffer.add_char buf '{';
      Json_out.field buf ~first "ts_us";
      Json_out.num buf ev.jv_ts_us;
      Json_out.field buf ~first "tid";
      Buffer.add_string buf (string_of_int ev.jv_tid);
      Json_out.field buf ~first "seq";
      Buffer.add_string buf (string_of_int ev.jv_seq);
      Json_out.field buf ~first "kind";
      Json_out.str buf ev.jv_kind;
      Json_out.field buf ~first "name";
      Json_out.str buf ev.jv_name;
      Json_out.field buf ~first "detail";
      Json_out.str buf ev.jv_detail;
      Json_out.field buf ~first "dur_us";
      Json_out.num buf ev.jv_dur_us;
      Buffer.add_string buf "}\n")
    (events ());
  Buffer.contents buf

let flush path =
  let n = List.length (events ()) in
  Result.map (fun () -> n) (Atomic_io.write_file path (to_jsonl ()))
