let schema_version = 1

let tag = "psaflow-run"

let suffix = ".psarun"

type design = {
  ds_target : string;
  ds_device : string;
  ds_time_s : float option;
  ds_speedup : float option;
  ds_feasible : bool;
  ds_valid : bool;
}

type failure = {
  fs_path : string;
  fs_class : string;
  fs_site : string;
  fs_attempts : int;
  fs_msg : string;
}

type meta = {
  m_git_rev : string;
  m_cmdline : string;
  m_jobs : int;
  m_unix_time : float;
}

type stable = {
  s_kind : string;
  s_app : string;
  s_mode : string;
  s_workload : (string * int) list;
  s_backend : string;
  s_ir_version : int;
  s_status : int;
  s_decision : string;
  s_best : string option;
  s_best_cost : float option;
  s_designs : design list;
  s_failures : failure list;
}

type record = {
  r_meta : meta;
  r_stable : stable;
  r_metrics : (string * float) list;
}

(* ---- serialization ---- *)

let add_bool buf b = Buffer.add_string buf (if b then "true" else "false")

let add_int buf i = Buffer.add_string buf (string_of_int i)

let add_opt buf add = function
  | None -> Buffer.add_string buf "null"
  | Some v -> add buf v

let add_design buf d =
  let first = ref true in
  Buffer.add_char buf '{';
  Json_out.field buf ~first "target";
  Json_out.str buf d.ds_target;
  Json_out.field buf ~first "device";
  Json_out.str buf d.ds_device;
  Json_out.field buf ~first "time_s";
  add_opt buf Json_out.gnum d.ds_time_s;
  Json_out.field buf ~first "speedup";
  add_opt buf Json_out.gnum d.ds_speedup;
  Json_out.field buf ~first "feasible";
  add_bool buf d.ds_feasible;
  Json_out.field buf ~first "valid";
  add_bool buf d.ds_valid;
  Buffer.add_char buf '}'

let add_failure buf f =
  let first = ref true in
  Buffer.add_char buf '{';
  Json_out.field buf ~first "path";
  Json_out.str buf f.fs_path;
  Json_out.field buf ~first "class";
  Json_out.str buf f.fs_class;
  Json_out.field buf ~first "site";
  Json_out.str buf f.fs_site;
  Json_out.field buf ~first "attempts";
  add_int buf f.fs_attempts;
  Json_out.field buf ~first "msg";
  Json_out.str buf f.fs_msg;
  Buffer.add_char buf '}'

let add_list buf add xs =
  Buffer.add_char buf '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf ',';
      add buf x)
    xs;
  Buffer.add_char buf ']'

let add_stable buf s =
  let first = ref true in
  Buffer.add_char buf '{';
  Json_out.field buf ~first "kind";
  Json_out.str buf s.s_kind;
  Json_out.field buf ~first "app";
  Json_out.str buf s.s_app;
  Json_out.field buf ~first "mode";
  Json_out.str buf s.s_mode;
  Json_out.field buf ~first "workload";
  let wfirst = ref true in
  Buffer.add_char buf '{';
  List.iter
    (fun (k, v) ->
      Json_out.field buf ~first:wfirst k;
      add_int buf v)
    s.s_workload;
  Buffer.add_char buf '}';
  Json_out.field buf ~first "backend";
  Json_out.str buf s.s_backend;
  Json_out.field buf ~first "ir_version";
  add_int buf s.s_ir_version;
  Json_out.field buf ~first "status";
  add_int buf s.s_status;
  Json_out.field buf ~first "decision";
  Json_out.str buf s.s_decision;
  Json_out.field buf ~first "best";
  add_opt buf Json_out.str s.s_best;
  Json_out.field buf ~first "best_cost";
  add_opt buf Json_out.gnum s.s_best_cost;
  Json_out.field buf ~first "designs";
  add_list buf add_design s.s_designs;
  Json_out.field buf ~first "failures";
  add_list buf add_failure s.s_failures;
  Buffer.add_char buf '}'

let stable_json r =
  let buf = Buffer.create 512 in
  add_stable buf r.r_stable;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 2048 in
  let first = ref true in
  Buffer.add_char buf '{';
  Json_out.field buf ~first "schema";
  add_int buf schema_version;
  Json_out.field buf ~first "meta";
  let m = r.r_meta in
  let mfirst = ref true in
  Buffer.add_char buf '{';
  Json_out.field buf ~first:mfirst "git_rev";
  Json_out.str buf m.m_git_rev;
  Json_out.field buf ~first:mfirst "cmdline";
  Json_out.str buf m.m_cmdline;
  Json_out.field buf ~first:mfirst "jobs";
  add_int buf m.m_jobs;
  Json_out.field buf ~first:mfirst "unix_time";
  Json_out.gnum buf m.m_unix_time;
  Buffer.add_char buf '}';
  Json_out.field buf ~first "stable";
  add_stable buf r.r_stable;
  Json_out.field buf ~first "metrics";
  let xfirst = ref true in
  Buffer.add_char buf '{';
  List.iter
    (fun (k, v) ->
      Json_out.field buf ~first:xfirst k;
      Json_out.gnum buf v)
    r.r_metrics;
  Buffer.add_char buf '}';
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ---- parsing ---- *)

let j_str ?(default = "") name j =
  match Trace_json.member name j with Some (Str s) -> s | _ -> default

let j_int ?(default = 0) name j =
  match Trace_json.member name j with
  | Some (Num f) -> int_of_float f
  | _ -> default

let j_bool ?(default = false) name j =
  match Trace_json.member name j with Some (Bool b) -> b | _ -> default

let j_opt_num name j =
  match Trace_json.member name j with Some (Num f) -> Some f | _ -> None

let j_opt_str name j =
  match Trace_json.member name j with Some (Str s) -> Some s | _ -> None

let design_of_json j =
  {
    ds_target = j_str "target" j;
    ds_device = j_str "device" j;
    ds_time_s = j_opt_num "time_s" j;
    ds_speedup = j_opt_num "speedup" j;
    ds_feasible = j_bool "feasible" j;
    ds_valid = j_bool "valid" j;
  }

let failure_of_json j =
  {
    fs_path = j_str "path" j;
    fs_class = j_str "class" j;
    fs_site = j_str "site" j;
    fs_attempts = j_int "attempts" j;
    fs_msg = j_str "msg" j;
  }

let j_list name j =
  match Trace_json.member name j with Some (List l) -> l | _ -> []

let of_json text =
  match Trace_json.parse text with
  | Error e -> Error e
  | Ok j -> (
    match Trace_json.member "schema" j with
    | Some (Num v) when int_of_float v <> schema_version ->
      Error (Printf.sprintf "record schema v%.0f, expected v%d" v schema_version)
    | _ -> (
      match (Trace_json.member "meta" j, Trace_json.member "stable" j) with
      | Some meta, Some stable ->
        let workload =
          match Trace_json.member "workload" stable with
          | Some (Obj kvs) ->
            List.filter_map
              (fun (k, v) ->
                match v with Trace_json.Num f -> Some (k, int_of_float f) | _ -> None)
              kvs
          | _ -> []
        in
        let metrics =
          match Trace_json.member "metrics" j with
          | Some (Obj kvs) ->
            List.filter_map
              (fun (k, v) ->
                match v with
                | Trace_json.Num f -> Some (k, f)
                | Trace_json.Null -> Some (k, Float.nan)
                | _ -> None)
              kvs
          | _ -> []
        in
        Ok
          {
            r_meta =
              {
                m_git_rev = j_str "git_rev" meta ~default:"unknown";
                m_cmdline = j_str "cmdline" meta;
                m_jobs = j_int "jobs" meta ~default:1;
                m_unix_time =
                  (match j_opt_num "unix_time" meta with Some t -> t | None -> 0.0);
              };
            r_stable =
              {
                s_kind = j_str "kind" stable ~default:"run";
                s_app = j_str "app" stable;
                s_mode = j_str "mode" stable;
                s_workload = workload;
                s_backend = j_str "backend" stable;
                s_ir_version = j_int "ir_version" stable;
                s_status = j_int "status" stable;
                s_decision = j_str "decision" stable;
                s_best = j_opt_str "best" stable;
                s_best_cost = j_opt_num "best_cost" stable;
                s_designs = List.map design_of_json (j_list "designs" stable);
                s_failures = List.map failure_of_json (j_list "failures" stable);
              };
            r_metrics = metrics;
          }
      | _ -> Error "not a ledger record (missing meta/stable)"))

(* ---- persistence ---- *)

let appended = Metrics.counter "ledger.appended"

let skipped_ctr = Metrics.counter "ledger.skipped"

let mkdir_p dir =
  let rec go d =
    if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
    else begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let seq_counter = Atomic.make 0

let record_path ~dir r =
  let payload = to_json r in
  (* sortable by recording time; pid + per-process sequence break ties *)
  let name =
    Printf.sprintf "r%013.0f-%05d-%04d%s"
      (r.r_meta.m_unix_time *. 1000.0)
      (Unix.getpid () mod 100000)
      (Atomic.fetch_and_add seq_counter 1 mod 10000)
      suffix
  in
  (Filename.concat dir name, payload)

let append ~dir r =
  let path, payload = record_path ~dir r in
  match mkdir_p dir with
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | () -> (
    match
      Atomic_io.write_checksummed ~tag ~version:schema_version path (payload ^ "\n")
    with
    | Ok () ->
      Metrics.Counter.incr appended;
      Ok path
    | Error e -> Error e)

let load_file path =
  match Atomic_io.read_checksummed ~tag ~version:schema_version path with
  | Error (Atomic_io.Unreadable e) -> Error e
  | Error Atomic_io.Malformed -> Error "malformed record file"
  | Error (Atomic_io.Wrong_version v) ->
    Error (Printf.sprintf "record file is v%d, expected v%d" v schema_version)
  | Ok payload -> of_json (String.trim payload)

let record_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter (fun n -> Filename.check_suffix n suffix)
    |> List.sort compare
    |> List.map (Filename.concat dir)

let load ~dir =
  List.fold_left
    (fun (recs, skipped) path ->
      match load_file path with
      | Ok r -> (r :: recs, skipped)
      | Error _ ->
        Metrics.Counter.incr skipped_ctr;
        (recs, skipped + 1))
    ([], 0) (record_files dir)
  |> fun (recs, skipped) -> (List.rev recs, skipped)

let load_path p =
  if (not (Sys.file_exists p)) || Sys.is_directory p then Ok (load ~dir:p)
  else
    match load_file p with
    | Ok r -> Ok ([ r ], 0)
    | Error e -> Error (Printf.sprintf "%s: %s" p e)

let count ~dir = List.length (record_files dir)
