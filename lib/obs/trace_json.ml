type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> bad "expected %c at offset %d, found %c" c st.pos c'
  | None -> bad "expected %c at offset %d, found end of input" c st.pos

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else bad "invalid literal at offset %d" st.pos

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> bad "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
       | Some '"' -> Buffer.add_char buf '"'; advance st; go ()
       | Some '\\' -> Buffer.add_char buf '\\'; advance st; go ()
       | Some '/' -> Buffer.add_char buf '/'; advance st; go ()
       | Some 'n' -> Buffer.add_char buf '\n'; advance st; go ()
       | Some 'r' -> Buffer.add_char buf '\r'; advance st; go ()
       | Some 't' -> Buffer.add_char buf '\t'; advance st; go ()
       | Some 'b' -> Buffer.add_char buf '\b'; advance st; go ()
       | Some 'f' -> Buffer.add_char buf '\012'; advance st; go ()
       | Some 'u' ->
         advance st;
         if st.pos + 4 > String.length st.src then bad "truncated \\u escape";
         let hex = String.sub st.src st.pos 4 in
         st.pos <- st.pos + 4;
         (match int_of_string_opt ("0x" ^ hex) with
          | None -> bad "invalid \\u escape %S" hex
          | Some code ->
            (* decoded byte-wise; enough for the ASCII traces we emit *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf (Printf.sprintf "\\u%s" hex));
         go ()
       | _ -> bad "invalid escape at offset %d" st.pos)
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c when is_num_char c -> true | _ -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> bad "invalid number %S at offset %d" s start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> bad "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        expect st '"';
        let k = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((k, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((k, v) :: acc)
        | _ -> bad "expected , or } at offset %d" st.pos
      in
      Obj (members [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> bad "expected , or ] at offset %d" st.pos
      in
      List (elements [])
    end
  | Some '"' ->
    advance st;
    Str (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then Error "trailing garbage after JSON value"
    else Ok v
  | exception Bad msg -> Error msg

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

(* ---- validation ---- *)

type summary = {
  su_events : int;
  su_tids : int list;
  su_cats : (string * int) list;
}

let field_str k ev = match member k ev with Some (Str s) -> Some s | _ -> None

let field_num k ev = match member k ev with Some (Num f) -> Some f | _ -> None

let validate doc =
  match member "traceEvents" doc with
  | Some (List evs) ->
    (* per-tid open-span stack and last timestamp *)
    let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
    let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
    let cats : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let n_events = ref 0 in
    let check ev =
      match field_str "ph" ev with
      | Some "M" | None -> Ok ()
      | Some (("B" | "E") as ph) -> (
        incr n_events;
        match field_num "tid" ev, field_num "ts" ev, field_str "name" ev with
        | None, _, _ -> Error "event without tid"
        | _, None, _ -> Error "event without ts"
        | _, _, None -> Error "event without name"
        | Some tid, Some ts, Some name ->
          let tid = int_of_float tid in
          let prev = Option.value (Hashtbl.find_opt last_ts tid) ~default:neg_infinity in
          if ts < prev then
            Error
              (Printf.sprintf "tid %d: ts %.3f decreases (previous %.3f)" tid ts prev)
          else begin
            Hashtbl.replace last_ts tid ts;
            let stack = Option.value (Hashtbl.find_opt stacks tid) ~default:[] in
            if ph = "B" then begin
              Hashtbl.replace stacks tid (name :: stack);
              Ok ()
            end
            else
              match stack with
              | [] -> Error (Printf.sprintf "tid %d: E %S with no open span" tid name)
              | top :: rest when top = name ->
                Hashtbl.replace stacks tid rest;
                (match field_str "cat" ev with
                 | Some cat ->
                   Hashtbl.replace cats cat
                     (1 + Option.value (Hashtbl.find_opt cats cat) ~default:0)
                 | None -> ());
                Ok ()
              | top :: _ ->
                Error
                  (Printf.sprintf "tid %d: E %S closes open span %S (interleaved)" tid
                     name top)
          end)
      | Some ph -> Error (Printf.sprintf "unsupported event phase %S" ph)
    in
    let rec go = function
      | [] ->
        let unbalanced =
          Hashtbl.fold
            (fun tid stack acc -> if stack = [] then acc else tid :: acc)
            stacks []
        in
        if unbalanced <> [] then
          Error
            (Printf.sprintf "unbalanced spans left open on tid(s) %s"
               (String.concat ", "
                  (List.map string_of_int (List.sort compare unbalanced))))
        else
          Ok
            {
              su_events = !n_events;
              su_tids =
                List.sort compare (Hashtbl.fold (fun tid _ acc -> tid :: acc) last_ts []);
              su_cats =
                List.sort compare (Hashtbl.fold (fun c n acc -> (c, n) :: acc) cats []);
            }
      | ev :: rest -> (match check ev with Ok () -> go rest | Error _ as e -> e)
    in
    go evs
  | Some _ -> Error "traceEvents is not an array"
  | None -> Error "no traceEvents member"

let validate_string s = Result.bind (parse s) validate
