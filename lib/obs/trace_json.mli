(** Minimal JSON parser and Chrome-trace validator.

    Shared by the test suite and [bench/tracecheck.exe]: parse a trace
    file, then check that every domain track is balanced (each E closes
    the most recent B with the same name) and that timestamps are
    non-decreasing per track. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result

val member : string -> json -> json option

(** What a valid trace contained. *)
type summary = {
  su_events : int;  (** B/E events (metadata excluded) *)
  su_tids : int list;  (** distinct domain tracks, sorted *)
  su_cats : (string * int) list;  (** complete-span count per category, sorted *)
}

val validate : json -> (summary, string) result
(** Check the [traceEvents] of a parsed trace document. *)

val validate_string : string -> (summary, string) result
