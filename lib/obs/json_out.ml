let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let str buf s =
  Buffer.add_char buf '"';
  escape buf s;
  Buffer.add_char buf '"'

let num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.3f" f)

let gnum buf f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else begin
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then Buffer.add_string buf s
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  end

let field buf ~first name =
  if !first then first := false else Buffer.add_char buf ',';
  str buf name;
  Buffer.add_char buf ':'
