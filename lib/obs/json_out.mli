(** Minimal JSON writing helpers.

    Shared by the span tracer ({!Trace}), the run ledger ({!Ledger}) and
    the flight-recorder journal ({!Journal}); the inverse of
    {!Trace_json.parse}.  Emission is deterministic: identical values
    produce identical bytes, with no locale or float-formatting drift. *)

val escape : Buffer.t -> string -> unit
(** Append the JSON-escaped body of a string (no surrounding quotes). *)

val str : Buffer.t -> string -> unit
(** Append a quoted, escaped JSON string. *)

val num : Buffer.t -> float -> unit
(** Append a JSON number: integers within float precision print as
    integers, everything else with three decimals ([%.3f]). *)

val gnum : Buffer.t -> float -> unit
(** Append a JSON number with round-trippable precision ([%.17g] only
    when needed; [nan]/[inf] degrade to [null], which JSON lacks). *)

val field : Buffer.t -> first:bool ref -> string -> unit
(** Append [,"name":] (or ["name":] on the first call); the caller then
    appends the value.  Flips [first]. *)
