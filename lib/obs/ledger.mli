(** Persistent run ledger: one structured record per flow/bench execution.

    Every [psaflow run]/[bench] execution appends a {!record} to a ledger
    directory ([.psa-runs/] by default) so observability survives the
    process: [psaflow report]/[diff]/[stats] reconstruct hit rates,
    latency percentiles and failure breakdowns purely from prior runs'
    records, with nothing rerun.

    {2 Entry discipline}

    Records reuse the [.psa-cache] publication discipline: each record is
    its own file ([r*.psarun]), written to a temp file and published with
    an atomic rename, carrying a header with a format tag, the schema
    version and an MD5 digest of the payload ({!Atomic_io}).  A
    truncated, corrupted or foreign-version file is {e skipped and
    counted} on load (and tallied under the [ledger.skipped] counter),
    never fatal — a damaged ledger degrades to a smaller population.

    {2 Determinism and versioning invariants}

    A record separates {b stable} fields — pure functions of (app, spec,
    seed, backend, code version): designs, decision, failure taxonomy,
    exit status — from {b volatile} ones (wall-clock metrics, cache
    temperatures, scheduling counters, provenance metadata).  Stable
    fields are byte-identical at any [--jobs] level; report/diff/stats
    output over a fixed ledger is byte-identical across invocations.
    {!schema_version} is bumped whenever a field's meaning, presence or
    serialization changes; readers only accept their own version. *)

val schema_version : int

(** Design-quality summary of one produced design. *)
type design = {
  ds_target : string;  (** e.g. ["GPU-2080"] *)
  ds_device : string;
  ds_time_s : float option;  (** modelled hotspot time *)
  ds_speedup : float option;
  ds_feasible : bool;
  ds_valid : bool;
}

(** One pruned branch path (or outright flow failure). *)
type failure = {
  fs_path : string;  (** branch path label, or the failing site *)
  fs_class : string;  (** {!Resilience.class_label} taxonomy string *)
  fs_site : string;
  fs_attempts : int;
  fs_msg : string;
}

(** Volatile provenance: how and when the record was produced. *)
type meta = {
  m_git_rev : string;  (** best-effort; ["unknown"] outside a checkout *)
  m_cmdline : string;
  m_jobs : int;
  m_unix_time : float;  (** seconds since the epoch at record time *)
}

(** Jobs-invariant description of what the run computed. *)
type stable = {
  s_kind : string;  (** ["run"] or ["bench"] *)
  s_app : string;  (** app slug; ["suite"] for bench records *)
  s_mode : string;
  s_workload : (string * int) list;
  s_backend : string;
  s_ir_version : int;
  s_status : int;  (** process exit code *)
  s_decision : string;  (** informed branch decision, [""] when n/a *)
  s_best : string option;  (** chosen design point (fastest feasible) *)
  s_best_cost : float option;  (** estimated monetary cost of [s_best] *)
  s_designs : design list;
  s_failures : failure list;
}

type record = {
  r_meta : meta;
  r_stable : stable;
  r_metrics : (string * float) list;
      (** full flattened {!Metrics.snapshot} at record time — counters,
          gauges, histogram percentiles, per-kind cache stats, resilience
          and fault counters.  Volatile.  Sorted by name. *)
}

val to_json : record -> string
(** One-line JSON document (no newline). *)

val stable_json : record -> string
(** The serialized [stable] object alone — the byte-comparable part. *)

val of_json : string -> (record, string) result

val append : dir:string -> record -> (string, string) result
(** Atomically publish a record file in [dir] (created if missing);
    returns the file path. *)

val load : dir:string -> record list * int
(** All valid records in [dir], in file-name (i.e. recording-time) order,
    plus the count of skipped (corrupt/truncated/foreign-version) files.
    A missing directory is an empty ledger. *)

val load_path : string -> (record list * int, string) result
(** [load] on a directory, or a single-record load on a record file. *)

val count : dir:string -> int
(** Number of record files (valid or not) — the [--explain] footer. *)
