let pf = Printf.sprintf

(* ---- small aggregation helpers (all deterministic folds) ---- *)

let metric r name = List.assoc_opt name r.Ledger.r_metrics

let is_real f = not (Float.is_nan f) && Float.abs f <> Float.infinity

let sum_metric recs name =
  List.fold_left
    (fun acc r ->
      match metric r name with Some v when is_real v -> acc +. v | _ -> acc)
    0.0 recs

let tally key xs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let k = key x in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    xs;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [] |> List.sort compare

let status_label = function
  | 0 -> "ok"
  | 1 -> "flow-failed"
  | 2 -> "bad-spec"
  | 3 -> "partial"
  | 4 -> "no-design"
  | n -> pf "exit-%d" n

(* names matching prefix.<mid>.suffix, collected across all records *)
let middle_names recs ~prefix ~suffix =
  let plen = String.length prefix and slen = String.length suffix in
  List.concat_map (fun r -> List.map fst r.Ledger.r_metrics) recs
  |> List.filter_map (fun n ->
         let len = String.length n in
         if
           len > plen + slen
           && String.sub n 0 plen = prefix
           && String.sub n (len - slen) slen = suffix
           && not (String.contains (String.sub n plen (len - plen - slen)) '.')
         then Some (String.sub n plen (len - plen - slen))
         else None)
  |> List.sort_uniq compare

let cache_kinds recs = middle_names recs ~prefix:"cache." ~suffix:".mem_hits"

(* histogram families persisted flat: base.count with a base.p50 sibling *)
let histogram_bases recs =
  List.concat_map (fun r -> List.map fst r.Ledger.r_metrics) recs
  |> List.filter_map (fun n ->
         if Filename.check_suffix n ".count" then
           Some (Filename.chop_suffix n ".count")
         else None)
  |> List.sort_uniq compare
  |> List.filter (fun base ->
         List.exists
           (fun r -> metric r (base ^ ".p50") <> None)
           recs)

(* count-weighted mean of a per-record percentile: an approximation of
   the population percentile that needs only the persisted summaries *)
let weighted_pct recs base p =
  let num, den =
    List.fold_left
      (fun (num, den) r ->
        match (metric r (base ^ ".count"), metric r (base ^ "." ^ p)) with
        | Some c, Some v when c > 0.0 && is_real v -> (num +. (c *. v), den +. c)
        | _ -> (num, den))
      (0.0, 0.0) recs
  in
  if den = 0.0 then None else Some (num /. den)

let section_names recs = middle_names recs ~prefix:"bench.section." ~suffix:""

let mean_section recs name =
  let vs =
    List.filter_map
      (fun r ->
        match metric r ("bench.section." ^ name) with
        | Some v when is_real v -> Some v
        | _ -> None)
      recs
  in
  match vs with
  | [] -> None
  | _ -> Some (List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs))

(* fastest feasible+valid design of a record, if any *)
let best_design r =
  List.filter
    (fun d -> d.Ledger.ds_feasible && d.Ledger.ds_valid && d.Ledger.ds_time_s <> None)
    r.Ledger.r_stable.s_designs
  |> List.sort (fun a b -> compare a.Ledger.ds_time_s b.Ledger.ds_time_s)
  |> function
  | [] -> None
  | d :: _ -> Some d

let mean_opt = function
  | [] -> None
  | vs -> Some (List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs))

let mean_best_speedup recs =
  mean_opt
    (List.filter_map
       (fun r -> Option.bind (best_design r) (fun d -> d.Ledger.ds_speedup))
       recs)

let failure_pairs recs =
  List.concat_map
    (fun r ->
      List.map
        (fun f -> (f.Ledger.fs_class, f.Ledger.fs_site))
        r.Ledger.r_stable.s_failures)
    recs

(* ---- report ---- *)

let add_tally buf label items fmt_item =
  if items <> [] then begin
    Buffer.add_string buf label;
    List.iter (fun (k, n) -> Buffer.add_string buf (pf " %s=%d" (fmt_item k) n)) items;
    Buffer.add_char buf '\n'
  end

let report (recs, skipped) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (pf "ledger: %d records%s\n" (List.length recs)
       (if skipped > 0 then pf " (%d skipped: corrupt or foreign version)" skipped
        else ""));
  if recs = [] then Buffer.contents buf
  else begin
    add_tally buf "kinds:" (tally (fun r -> r.Ledger.r_stable.s_kind) recs) Fun.id;
    add_tally buf "apps:" (tally (fun r -> r.Ledger.r_stable.s_app) recs) Fun.id;
    add_tally buf "status:"
      (tally (fun r -> status_label r.Ledger.r_stable.s_status) recs)
      Fun.id;
    (match failure_pairs recs with
    | [] -> ()
    | pairs ->
      Buffer.add_string buf "failures:\n";
      List.iter
        (fun ((cls, site), n) ->
          Buffer.add_string buf (pf "  %-12s @ %-24s x%d\n" cls site n))
        (tally Fun.id pairs));
    (match cache_kinds recs with
    | [] -> ()
    | kinds ->
      Buffer.add_string buf "cache:\n";
      List.iter
        (fun kind ->
          let m field = sum_metric recs (pf "cache.%s.%s" kind field) in
          let mem = m "mem_hits" and disk = m "disk_hits" and miss = m "misses" in
          let total = mem +. disk +. miss in
          let rate = if total = 0.0 then 0.0 else (mem +. disk) /. total *. 100.0 in
          Buffer.add_string buf
            (pf "  %-8s hits %.0f/%.0f (%.1f%%)  mem=%.0f disk=%.0f corrupt=%.0f\n"
               kind (mem +. disk) total rate mem disk (m "corrupt")))
        kinds);
    (match histogram_bases recs with
    | [] -> ()
    | bases ->
      Buffer.add_string buf "latency (count-weighted across records):\n";
      List.iter
        (fun base ->
          let n = sum_metric recs (base ^ ".count") in
          let pct p =
            match weighted_pct recs base p with
            | Some v -> pf "%.6f" v
            | None -> "n/a"
          in
          Buffer.add_string buf
            (pf "  %-24s n=%-8.0f p50=%ss p90=%ss p99=%ss\n" base n (pct "p50")
               (pct "p90") (pct "p99")))
        bases);
    let runs = sum_metric recs "interp.runs" and steps = sum_metric recs "interp.steps" in
    if runs > 0.0 then
      Buffer.add_string buf
        (pf "interp: runs=%.0f steps=%.0f (%.1f steps/run)\n" runs steps (steps /. runs));
    let retries = sum_metric recs "flow.retries"
    and tfail = sum_metric recs "flow.task.failures" in
    if retries > 0.0 || tfail > 0.0 then
      Buffer.add_string buf
        (pf "resilience: retries=%.0f task-failures=%.0f\n" retries tfail);
    (match section_names recs with
    | [] -> ()
    | sections ->
      Buffer.add_string buf "sections (mean s):\n";
      List.iter
        (fun s ->
          match mean_section recs s with
          | Some v -> Buffer.add_string buf (pf "  %-16s %.3f\n" s v)
          | None -> ())
        sections);
    Buffer.contents buf
  end

(* ---- diff ---- *)

let pct_change a b = (b -. a) /. a *. 100.0

let diff ?(tol = 0.20) ~label_a ~label_b (ra, ska) (rb, skb) =
  let buf = Buffer.create 1024 in
  let regression = ref false in
  let flag cond = if cond then regression := true in
  Buffer.add_string buf
    (pf "diff: A=%s (%d records, %d skipped) vs B=%s (%d records, %d skipped)\n"
       label_a (List.length ra) ska label_b (List.length rb) skb);
  if ra = [] || rb = [] then begin
    Buffer.add_string buf "one side is empty: nothing to compare\nverdict: ok\n";
    (Buffer.contents buf, false)
  end
  else begin
    (* section wall-clock: relative growth beyond tol, with an absolute
       noise floor so microscopic sections cannot trip the gate *)
    let sections =
      List.sort_uniq compare (section_names ra @ section_names rb)
    in
    if sections <> [] then begin
      Buffer.add_string buf (pf "sections (mean s, tol %.0f%%):\n" (tol *. 100.0));
      List.iter
        (fun s ->
          match (mean_section ra s, mean_section rb s) with
          | Some a, Some b ->
            let regressed = b -. a > Float.max (tol *. a) 0.05 in
            flag regressed;
            Buffer.add_string buf
              (pf "  %-16s A=%.3f B=%.3f  %+.1f%%  %s\n" s a b (pct_change a b)
                 (if regressed then "REGRESSION" else "ok"))
          | Some a, None ->
            Buffer.add_string buf (pf "  %-16s A=%.3f B=absent\n" s a)
          | None, Some b ->
            Buffer.add_string buf (pf "  %-16s A=absent B=%.3f\n" s b)
          | None, None -> ())
        sections
    end;
    (match (mean_best_speedup ra, mean_best_speedup rb) with
    | Some a, Some b when a > 0.0 ->
      let regressed = b < a *. 0.9 in
      flag regressed;
      Buffer.add_string buf
        (pf "speedup (mean best): A=%.2f B=%.2f  %+.1f%%  %s\n" a b (pct_change a b)
           (if regressed then "REGRESSION" else "ok"))
    | _ -> ());
    let hit_rate recs =
      let total kind field = sum_metric recs (pf "cache.%s.%s" kind field) in
      let kinds = cache_kinds recs in
      let hits =
        List.fold_left (fun acc k -> acc +. total k "mem_hits" +. total k "disk_hits") 0.0 kinds
      in
      let all =
        List.fold_left (fun acc k -> acc +. total k "misses") hits kinds
      in
      if all = 0.0 then None else Some (hits /. all *. 100.0)
    in
    (match (hit_rate ra, hit_rate rb) with
    | Some a, Some b ->
      Buffer.add_string buf
        (pf "cache hit rate: A=%.1f%% B=%.1f%%  (%+.1fpp)\n" a b (b -. a))
    | _ -> ());
    (* any (class, site) failure pair new in B is a regression *)
    let pa = List.sort_uniq compare (failure_pairs ra)
    and pb = List.sort_uniq compare (failure_pairs rb) in
    let fresh = List.filter (fun p -> not (List.mem p pa)) pb in
    List.iter
      (fun (cls, site) ->
        flag true;
        Buffer.add_string buf (pf "new failure in B: %s @ %s  REGRESSION\n" cls site))
      fresh;
    Buffer.add_string buf
      (pf "verdict: %s\n" (if !regression then "REGRESSION" else "ok"));
    (Buffer.contents buf, !regression)
  end

(* ---- stats ---- *)

let stats (recs, skipped) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (pf "ledger: %d records%s\n" (List.length recs)
       (if skipped > 0 then pf " (%d skipped)" skipped else ""));
  if recs <> [] then begin
    let groups =
      tally (fun r -> (r.Ledger.r_stable.s_app, r.Ledger.r_stable.s_mode)) recs
    in
    Buffer.add_string buf
      (pf "%-14s %-12s %5s %5s %8s %10s %8s\n" "app" "mode" "runs" "ok" "designs"
         "best_s" "speedup");
    List.iter
      (fun ((app, mode), n) ->
        let mine =
          List.filter
            (fun r ->
              r.Ledger.r_stable.s_app = app && r.Ledger.r_stable.s_mode = mode)
            recs
        in
        let ok =
          List.length (List.filter (fun r -> r.Ledger.r_stable.s_status = 0) mine)
        in
        let designs =
          mean_opt
            (List.map
               (fun r -> float_of_int (List.length r.Ledger.r_stable.s_designs))
               mine)
        in
        let best_t =
          mean_opt
            (List.filter_map
               (fun r -> Option.bind (best_design r) (fun d -> d.Ledger.ds_time_s))
               mine)
        in
        let fmt_opt fmt = function Some v -> pf fmt v | None -> "n/a" in
        Buffer.add_string buf
          (pf "%-14s %-12s %5d %5d %8s %10s %8s\n" app mode n ok
             (fmt_opt "%.1f" designs)
             (fmt_opt "%.5f" best_t)
             (fmt_opt "%.2f" (mean_best_speedup mine))))
      groups
  end;
  Buffer.contents buf
