module Counter = struct
  type t = int Atomic.t

  let incr t = ignore (Atomic.fetch_and_add t 1)

  let add t n = ignore (Atomic.fetch_and_add t n)

  let set = Atomic.set

  let value = Atomic.get
end

module Gauge = struct
  type t = float Atomic.t

  let set t v = Atomic.set t v

  (* CAS on the boxed float read by [Atomic.get]: physical equality of
     that exact box is what compare_and_set tests, so the loop is a
     correct fetch-and-add. *)
  let add t d =
    let rec go () =
      let cur = Atomic.get t in
      if not (Atomic.compare_and_set t cur (cur +. d)) then go ()
    in
    go ()

  let value = Atomic.get
end

module Histogram = struct
  type t = {
    mu : Mutex.t;
    mutable vals : float array;
    mutable len : int;
    mutable total : float;
  }

  let make () = { mu = Mutex.create (); vals = Array.make 16 0.0; len = 0; total = 0.0 }

  let locked t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  let observe t v =
    locked t (fun () ->
        if t.len = Array.length t.vals then begin
          let bigger = Array.make (2 * t.len) 0.0 in
          Array.blit t.vals 0 bigger 0 t.len;
          t.vals <- bigger
        end;
        t.vals.(t.len) <- v;
        t.len <- t.len + 1;
        t.total <- t.total +. v)

  let count t = locked t (fun () -> t.len)

  let sum t = locked t (fun () -> t.total)

  let percentile_sorted sorted p =
    let n = Array.length sorted in
    if n = 0 then Float.nan
    else if n = 1 then sorted.(0)
    else begin
      let p = Float.max 0.0 (Float.min 100.0 p) in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. ((sorted.(hi) -. sorted.(lo)) *. frac)
    end

  let snapshot_values t = locked t (fun () -> Array.sub t.vals 0 t.len)

  let percentile t p =
    let vs = snapshot_values t in
    Array.sort compare vs;
    percentile_sorted vs p

  let clear t =
    locked t (fun () ->
        t.len <- 0;
        t.total <- 0.0)
end

type instrument =
  | Icounter of Counter.t
  | Igauge of Gauge.t
  | Ihistogram of Histogram.t

let table : (string, instrument) Hashtbl.t = Hashtbl.create 64

let table_mu = Mutex.create ()

let with_table f =
  Mutex.lock table_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock table_mu) f

let class_name = function
  | Icounter _ -> "counter"
  | Igauge _ -> "gauge"
  | Ihistogram _ -> "histogram"

let intern name make =
  with_table (fun () ->
      match Hashtbl.find_opt table name with
      | Some i -> i
      | None ->
        let i = make () in
        Hashtbl.add table name i;
        i)

let mismatch name i want =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %S is a %s, not a %s" name (class_name i) want)

let counter name =
  match intern name (fun () -> Icounter (Atomic.make 0)) with
  | Icounter c -> c
  | i -> mismatch name i "counter"

let gauge name =
  match intern name (fun () -> Igauge (Atomic.make 0.0)) with
  | Igauge g -> g
  | i -> mismatch name i "gauge"

let histogram name =
  match intern name (fun () -> Ihistogram (Histogram.make ())) with
  | Ihistogram h -> h
  | i -> mismatch name i "histogram"

type value =
  | Count of int
  | Value of float
  | Summary of {
      count : int;
      sum : float;
      min : float;
      max : float;
      p50 : float;
      p90 : float;
      p99 : float;
    }

let read = function
  | Icounter c -> Count (Counter.value c)
  | Igauge g -> Value (Gauge.value g)
  | Ihistogram h ->
    let vs = Histogram.snapshot_values h in
    Array.sort compare vs;
    let n = Array.length vs in
    Summary
      {
        count = n;
        sum = Array.fold_left ( +. ) 0.0 vs;
        min = (if n = 0 then Float.nan else vs.(0));
        max = (if n = 0 then Float.nan else vs.(n - 1));
        p50 = Histogram.percentile_sorted vs 50.0;
        p90 = Histogram.percentile_sorted vs 90.0;
        p99 = Histogram.percentile_sorted vs 99.0;
      }

let snapshot () =
  with_table (fun () ->
      Hashtbl.fold (fun name i acc -> (name, read i) :: acc) table [])
  |> List.sort compare

let flatten snap =
  List.concat_map
    (fun (name, v) ->
      match v with
      | Count n -> [ (name, float_of_int n) ]
      | Value x -> [ (name, x) ]
      | Summary { count; sum; p50; p90; p99; _ } ->
        [
          (name ^ ".count", float_of_int count);
          (name ^ ".sum", sum);
          (name ^ ".p50", p50);
          (name ^ ".p90", p90);
          (name ^ ".p99", p99);
        ])
    snap

let prefixed prefix name =
  let n = String.length prefix in
  String.length name >= n && String.sub name 0 n = prefix

let jobs_invariant name =
  not
    (prefixed "pool." name || prefixed "bench.section." name
    (* daemon traffic telemetry: admission, shedding and rate limiting
       depend on arrival order and machine speed, never on the flow *)
    || prefixed "serve." name
    || Filename.check_suffix name ".waits"
    (* any wall-clock instrument, and every flattened field of a
       latency histogram (h.seconds.count is deterministic, but its
       siblings are not; dropping the family keeps the filter simple
       and the explain view free of half-reported instruments) *)
    || Filename.check_suffix name ".seconds"
    || (match String.rindex_opt name '.' with
       | None -> false
       | Some i -> Filename.check_suffix (String.sub name 0 i) ".seconds"))

let find name = with_table (fun () -> Option.map read (Hashtbl.find_opt table name))

let reset () =
  with_table (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Icounter c -> Atomic.set c 0
          | Igauge g -> Atomic.set g 0.0
          | Ihistogram h -> Histogram.clear h)
        table)
