type kind =
  | Task
  | Branch
  | Dse_point
  | Interp_run
  | Cache_lookup
  | Pool
  | Flow
  | Section

let cat_of_kind = function
  | Task -> "task"
  | Branch -> "branch"
  | Dse_point -> "dse-point"
  | Interp_run -> "interp-run"
  | Cache_lookup -> "cache-lookup"
  | Pool -> "pool"
  | Flow -> "flow"
  | Section -> "section"

type attr = Str of string | Int of int | Float of float | Bool of bool

type span = {
  sp_live : bool;
  sp_name : string;
  sp_cat : string;
  sp_ts_b : float;
  sp_seq_b : int;
  mutable sp_ts_e : float;
  mutable sp_seq_e : int;
  mutable sp_attrs : (string * attr) list;
}

(* Shared by every [with_span] call while tracing is off; never recorded. *)
let dummy =
  {
    sp_live = false;
    sp_name = "";
    sp_cat = "";
    sp_ts_b = 0.0;
    sp_seq_b = 0;
    sp_ts_e = 0.0;
    sp_seq_e = 0;
    sp_attrs = [];
  }

(* One buffer per domain, owned exclusively by that domain while it runs;
   the registry (under [reg_mu]) lets the exporting domain reach buffers
   whose owner has since exited (pool domains are short-lived).  [b_born]
   orders buffers that reuse a domain id: ids are recycled after a domain
   exits, so a track can be fed by several buffers, never concurrently. *)
type buffer = {
  b_tid : int;
  b_born : int;
  mutable b_spans : span list;  (* completed spans, most recent first *)
  mutable b_last_ts : float;
  mutable b_seq : int;
}

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let reg_mu = Mutex.create ()

let buffers : buffer list ref = ref []

let born_counter = Atomic.make 0

let new_buffer () =
  let b =
    {
      b_tid = (Domain.self () :> int);
      b_born = Atomic.fetch_and_add born_counter 1;
      b_spans = [];
      b_last_ts = 0.0;
      b_seq = 0;
    }
  in
  Mutex.lock reg_mu;
  buffers := b :: !buffers;
  Mutex.unlock reg_mu;
  b

(* [start] bumps the epoch instead of touching other domains' buffers; a
   domain holding a stale DLS buffer silently re-registers a fresh one on
   its next span. *)
let epoch = Atomic.make 0

let key : (int * buffer) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (Atomic.get epoch, new_buffer ()))

let get_buffer () =
  let e, b = Domain.DLS.get key in
  let cur = Atomic.get epoch in
  if e = cur then b
  else begin
    let b = new_buffer () in
    Domain.DLS.set key (cur, b);
    b
  end

let start () =
  Mutex.lock reg_mu;
  buffers := [];
  Mutex.unlock reg_mu;
  Atomic.incr epoch;
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

(* Non-decreasing per buffer: gettimeofday can tie (or step back); the
   clamp keeps every track's timestamps monotonic. *)
let tick b =
  let t = Monotonic.now_us () in
  let t = if t > b.b_last_ts then t else b.b_last_ts in
  b.b_last_ts <- t;
  t

let next_seq b =
  let s = b.b_seq in
  b.b_seq <- s + 1;
  s

(* Every span completion also feeds the always-on flight recorder
   (Journal): with tracing off that is the only per-span cost — two clock
   reads and a ring store — and with tracing on it reuses the span's own
   timestamps.  The journal keeps a bounded recent window, so this stays
   cheap whatever the span volume. *)
let with_span ?(attrs = []) ~name ~kind f =
  if not (Atomic.get enabled_flag) then
    if not (Journal.enabled ()) then f dummy
    else begin
      let t0 = Monotonic.now_us () in
      Fun.protect
        ~finally:(fun () ->
          Journal.record ~kind:"span" ~detail:(cat_of_kind kind)
            ~dur_us:(Monotonic.now_us () -. t0) name)
        (fun () -> f dummy)
    end
  else begin
    let b = get_buffer () in
    let sp =
      {
        sp_live = true;
        sp_name = name;
        sp_cat = cat_of_kind kind;
        sp_ts_b = tick b;
        sp_seq_b = next_seq b;
        sp_ts_e = 0.0;
        sp_seq_e = 0;
        sp_attrs = attrs;
      }
    in
    Fun.protect
      ~finally:(fun () ->
        sp.sp_ts_e <- tick b;
        sp.sp_seq_e <- next_seq b;
        b.b_spans <- sp :: b.b_spans;
        if Journal.enabled () then
          Journal.record ~kind:"span" ~detail:sp.sp_cat
            ~dur_us:(sp.sp_ts_e -. sp.sp_ts_b) name)
      (fun () -> f sp)
  end

let add_attr sp k v = if sp.sp_live then sp.sp_attrs <- (k, v) :: sp.sp_attrs

type event = {
  ev_ph : [ `B | `E ];
  ev_name : string;
  ev_cat : string;
  ev_tid : int;
  ev_ts : float;
  ev_attrs : (string * attr) list;
}

(* Merge: per buffer, spans expand to (seq, event) pairs sorted by seq —
   balanced by with_span's stack discipline; buffers sharing a tid are
   concatenated in birth order (a reused domain id means strictly later
   wall-clock), and a final clamp makes each track's timestamps
   non-decreasing across the buffer seam. *)
let events () =
  Mutex.lock reg_mu;
  let bufs = !buffers in
  Mutex.unlock reg_mu;
  let bufs =
    List.sort
      (fun a b ->
        if a.b_tid <> b.b_tid then compare a.b_tid b.b_tid
        else compare a.b_born b.b_born)
      bufs
  in
  let track_events b =
    List.concat_map
      (fun sp ->
        [
          ( sp.sp_seq_b,
            {
              ev_ph = `B;
              ev_name = sp.sp_name;
              ev_cat = sp.sp_cat;
              ev_tid = b.b_tid;
              ev_ts = sp.sp_ts_b;
              ev_attrs = List.rev sp.sp_attrs;
            } );
          ( sp.sp_seq_e,
            {
              ev_ph = `E;
              ev_name = sp.sp_name;
              ev_cat = sp.sp_cat;
              ev_tid = b.b_tid;
              ev_ts = sp.sp_ts_e;
              ev_attrs = [];
            } );
        ])
      b.b_spans
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  let clamp_track evs =
    let last = ref neg_infinity in
    List.map
      (fun ev ->
        let ts = if ev.ev_ts > !last then ev.ev_ts else !last in
        last := ts;
        { ev with ev_ts = ts })
      evs
  in
  let rec by_tid = function
    | [] -> []
    | b :: rest ->
      let same, others = List.partition (fun b' -> b'.b_tid = b.b_tid) rest in
      clamp_track (List.concat_map track_events (b :: same)) :: by_tid others
  in
  List.concat (by_tid bufs)

(* ---- JSON ---- *)

let add_json_string = Json_out.str

let add_number = Json_out.num

let add_attr_value buf = function
  | Str s -> add_json_string buf s
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_number buf f
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

let add_args buf attrs =
  Buffer.add_string buf ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_char buf ':';
      add_attr_value buf v)
    attrs;
  Buffer.add_char buf '}'

let export_json buf =
  let evs = events () in
  let tids =
    List.sort_uniq compare (List.map (fun ev -> ev.ev_tid) evs)
  in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n"
  in
  List.iter
    (fun tid ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
           tid tid))
    tids;
  List.iter
    (fun ev ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf "{\"ph\":\"%s\",\"name\":"
           (match ev.ev_ph with `B -> "B" | `E -> "E"));
      add_json_string buf ev.ev_name;
      Buffer.add_string buf ",\"cat\":";
      add_json_string buf ev.ev_cat;
      Buffer.add_string buf (Printf.sprintf ",\"pid\":1,\"tid\":%d,\"ts\":" ev.ev_tid);
      add_number buf ev.ev_ts;
      if ev.ev_attrs <> [] then add_args buf ev.ev_attrs;
      Buffer.add_char buf '}')
    evs;
  Buffer.add_string buf "\n]}\n"

(* Published with temp-file + atomic rename: an interrupted run (or a
   full disk) never leaves a truncated trace under the requested name. *)
let write_file path =
  let buf = Buffer.create 65536 in
  export_json buf;
  Atomic_io.with_atomic_out path (fun oc -> Buffer.output_buffer oc buf)
