(** Offline analysis over {!Ledger} populations.

    Everything here is a pure function of the loaded records: hit rates,
    latency percentiles, throughput and failure taxonomies are
    reconstructed from the persisted metric snapshots and stable fields,
    with nothing rerun.  Output over a fixed ledger is deterministic —
    byte-identical across invocations and [--jobs] levels. *)

val report : Ledger.record list * int -> string
(** Aggregate one ledger: population by kind/app, status breakdown,
    failure taxonomy, per-kind cache hit rates, count-weighted latency
    percentiles (p50/p90/p99 over persisted histogram summaries), interp
    throughput and mean section timings.  The [int] is the skipped-file
    count from {!Ledger.load}.  An empty ledger yields a one-line
    report, not an error. *)

val diff :
  ?tol:float ->
  label_a:string ->
  label_b:string ->
  Ledger.record list * int ->
  Ledger.record list * int ->
  string * bool
(** [diff a b] compares two ledger populations (B is the candidate).
    Returns the textual comparison and a regression verdict, [true] when
    B regresses versus A: a mean section time grew by more than [tol]
    (relative, default [0.20]) beyond a [0.05] s noise floor, the mean
    best-design speedup dropped by more than 10%, or B exhibits a
    failure (class, site) pair absent from A.  Metric deltas within
    threshold are reported but do not trip the verdict — CI gates on the
    boolean (nonzero exit), humans read the text. *)

val stats : Ledger.record list * int -> string
(** Per-population table: one row per (app, mode) with record count,
    ok-rate, mean designs produced, mean best time and speedup. *)
