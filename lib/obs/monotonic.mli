(** Process-anchored time source for spans and section timings.

    The stdlib exposes no true monotonic clock, so this wraps
    [Unix.gettimeofday] anchored at module initialisation; readings are
    relative to process start, which keeps trace timestamps small and
    makes every subsystem measure wall-clock from the same source.
    Per-domain monotonicity of trace timestamps is enforced separately
    by clamping in {!Trace}.

    This clock is for {e observation only} — span timestamps, bench
    section timings, and the advisory wall-clock deadlines of the flow's
    resilience policy.  Flow results never depend on it: deterministic
    timeouts use interpreter step budgets instead. *)

val now_s : unit -> float
(** Seconds since process start. *)

val now_us : unit -> float
(** Microseconds since process start (the unit Chrome traces use). *)
