.PHONY: all check test bench bench-quick bench-compare bench-warm-cold trace-check clean

all:
	dune build @all

# tier-1 verification: everything compiles and the full test suite passes
check:
	dune build && dune runtest

test: check

# full evaluation-workload benchmark run
bench:
	dune exec bench/main.exe

# fast perf smoke run; leaves a machine-readable trajectory in bench.json
bench-quick:
	dune exec bench/main.exe -- --quick --json bench.json

# regression gate: re-run the quick bench and diff against the committed
# seed baseline (fails on >20% regression in any section or in
# interpreter throughput, or if the compiled backend drops below 3x the
# seed walker)
bench-compare: bench-quick
	dune exec bench/compare.exe -- bench.json BENCH_seed.json

# cache-effectiveness gate: a cold quick bench populates a fresh cache,
# then a warm rerun must cut the combined runs+micro+ablation time >= 2x
# and actually serve entries from the disk tier
bench-warm-cold:
	rm -rf .psa-cache bench-cold.json bench-warm.json
	dune exec bench/main.exe -- --quick --json bench-cold.json
	dune exec bench/main.exe -- --quick --json bench-warm.json
	dune exec bench/compare.exe -- --warm-cold bench-cold.json bench-warm.json

# trace gate: record a span trace of an nbody flow run and validate it
# (balanced per-domain tracks, all flow-level span kinds, >= 2 domains)
trace-check:
	dune exec bin/psaflow.exe -- run nbody --quick --jobs 4 --cache off --trace trace.json
	dune exec bench/tracecheck.exe -- trace.json \
	  --require-kinds task,branch,dse-point,interp-run,cache-lookup \
	  --require-tids 2

clean:
	dune clean
