.PHONY: all check test bench bench-quick bench-compare bench-warm-cold bench-jobs trace-check fault-check report-check serve-check doc clean

all:
	dune build @all

# tier-1 verification: everything compiles and the full test suite passes
check:
	dune build && dune runtest

test: check

# full evaluation-workload benchmark run
bench:
	dune exec bench/main.exe

# fast perf smoke run; leaves a machine-readable trajectory in bench.json
bench-quick:
	dune exec bench/main.exe -- --quick --json bench.json

# regression gate: re-run the quick bench and diff against the committed
# seed baseline (fails on >20% regression in any section or in
# interpreter throughput, or if the compiled backend drops below 3x the
# seed walker)
bench-compare: bench-quick
	dune exec bench/compare.exe -- bench.json BENCH_seed.json

# cache-effectiveness gate: a cold quick bench populates a fresh cache,
# then a warm rerun must cut the combined runs+micro+ablation time >= 2x
# and actually serve entries from the disk tier.  Only the gated
# sections run: interpreter throughput is cache-independent and would
# just pay the evaluation workloads twice.
bench-warm-cold:
	rm -rf .psa-cache bench-cold.json bench-warm.json
	dune exec bench/main.exe -- runs micro ablation --quick --json bench-cold.json
	dune exec bench/main.exe -- runs micro ablation --quick --json bench-warm.json
	dune exec bench/compare.exe -- --warm-cold bench-cold.json bench-warm.json

# scheduler-effectiveness gate: the same quick bench at --jobs 1 and
# --jobs 4 (cache off, so both runs do the full work) must show the
# combined runs+ablation time dropping >= 1.8x, with the parallel run
# actually scheduling futures.  Skipped automatically (exit 0) on hosts
# with fewer than 4 cores, where the speedup is physically unavailable.
bench-jobs:
	rm -f bench-jobs1.json bench-jobs4.json
	dune exec bench/main.exe -- runs ablation --quick --jobs 1 --cache off --json bench-jobs1.json
	dune exec bench/main.exe -- runs ablation --quick --jobs 4 --cache off --json bench-jobs4.json
	dune exec bench/compare.exe -- --jobs-speedup bench-jobs1.json bench-jobs4.json

# trace gate: record a span trace of an nbody flow run and validate it
# (balanced per-domain tracks, all flow-level span kinds, >= 2 domains)
trace-check:
	dune exec bin/psaflow.exe -- run nbody --quick --jobs 4 --cache off --trace trace.json
	dune exec bench/tracecheck.exe -- trace.json \
	  --require-kinds task,branch,dse-point,interp-run,cache-lookup \
	  --require-tids 2

# resilience gate: inject a fault into the FPGA codegen task and check
# that the run degrades gracefully -- the surviving branches still emit
# designs, the process exits with the "partial" code (3), and the span
# trace of the degraded run is still well-formed
fault-check:
	dune build bin/psaflow.exe bench/tracecheck.exe
	@rc=0; dune exec --no-build bin/psaflow.exe -- run nbody --quick --jobs 4 --cache off \
	  --faults "task:FPGA/Generate oneAPI Design" --trace fault-trace.json \
	  --journal fault-journal.jsonl || rc=$$?; \
	if [ "$$rc" -ne 3 ]; then echo "fault-check: expected partial exit code 3, got $$rc"; exit 1; fi; \
	echo "fault-check: partial exit code 3 as expected"
	dune exec --no-build bench/tracecheck.exe -- fault-trace.json \
	  --require-kinds task,branch,dse-point,interp-run,cache-lookup \
	  --require-tids 2
	dune exec --no-build bench/tracecheck.exe -- --journal fault-journal.jsonl \
	  --require-kinds span,retry,failure,fault

# ledger gate: two identical quick runs (one per job count) recorded
# into fresh ledgers must yield a readable report, a stats table, and a
# "verdict: ok" diff (exit 0) -- i.e. the stable record fields are
# jobs-invariant and no phantom regressions appear between identical
# runs.  Exercises the record/report/diff path end to end, plus the
# flight-recorder journal via --journal.
report-check:
	dune build bin/psaflow.exe bench/tracecheck.exe
	rm -rf .psa-runs-a .psa-runs-b report-journal.jsonl
	dune exec --no-build bin/psaflow.exe -- run nbody --quick --jobs 4 --cache off \
	  --ledger .psa-runs-a --journal report-journal.jsonl
	dune exec --no-build bin/psaflow.exe -- run nbody --quick --jobs 1 --cache off \
	  --ledger .psa-runs-b
	dune exec --no-build bin/psaflow.exe -- report .psa-runs-a
	dune exec --no-build bin/psaflow.exe -- stats .psa-runs-a
	dune exec --no-build bin/psaflow.exe -- diff .psa-runs-a .psa-runs-b
	dune exec --no-build bench/tracecheck.exe -- --journal report-journal.jsonl \
	  --require-kinds span

# daemon gate: start a real psaflowd, drive it over its Unix socket and
# check the service invariants end to end -- served report bytes equal
# `psaflow run` stdout for the same spec, repeat requests are cache
# splices (zero new cache misses), an overload burst sheds with 503
# without disturbing in-flight runs, finished requests leave ledger
# records and journals, SIGTERM drains cleanly, and a restart still
# serves the persisted history.  Artifacts land in ./serve-smoke/.
serve-check:
	dune build bin/psaflowd.exe bin/psaflow.exe bench/servesmoke.exe
	dune exec --no-build bench/servesmoke.exe -- \
	  _build/default/bin/psaflowd.exe _build/default/bin/psaflow.exe

# API documentation (odoc): fails on any odoc warning in lib/flow,
# lib/obs, lib/ir or lib/serve, whose public interfaces are the
# documented API surface.  Skips gracefully when odoc is not installed
# (opam install odoc).
doc:
	@command -v odoc >/dev/null 2>&1 || { \
	  echo "doc: odoc not installed (opam install odoc); skipping"; exit 0; }; \
	dune build @doc 2> doc-warnings.log; st=$$?; \
	cat doc-warnings.log; \
	if [ $$st -ne 0 ]; then exit $$st; fi; \
	if grep -E 'lib/(flow|obs|ir|serve)/' doc-warnings.log >/dev/null 2>&1; then \
	  echo "doc: odoc warnings in lib/flow, lib/obs, lib/ir or lib/serve (see above)"; exit 1; fi; \
	echo "doc: API docs in _build/default/_doc/_html"

clean:
	dune clean
