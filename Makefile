.PHONY: all check test bench bench-quick clean

all:
	dune build @all

# tier-1 verification: everything compiles and the full test suite passes
check:
	dune build && dune runtest

test: check

# full evaluation-workload benchmark run
bench:
	dune exec bench/main.exe

# fast perf smoke run; leaves a machine-readable trajectory in bench.json
bench-quick:
	dune exec bench/main.exe -- --quick --json bench.json

clean:
	dune clean
