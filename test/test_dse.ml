(* Tests for the DSE framework and the three DSE tasks. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- generic search ---- *)

let test_sweep_minimises () =
  match Search.sweep [ 1; 2; 3; 4 ] ~eval:(fun x -> Float.abs (float_of_int x -. 2.9)) with
  | Some best -> checki "closest to 2.9" 3 best.Search.point
  | None -> Alcotest.fail "no result"

let test_sweep_skips_infinite () =
  match
    Search.sweep [ 1; 2; 3 ] ~eval:(fun x -> if x < 3 then Float.infinity else 1.0)
  with
  | Some best -> checki "only finite point" 3 best.Search.point
  | None -> Alcotest.fail "should find the finite point"

let test_sweep_empty () =
  check "empty space" true (Search.sweep [] ~eval:(fun _ -> 0.0) = None)

let test_sweep_all_infinite () =
  check "all infinite" true
    (Search.sweep [ 1; 2 ] ~eval:(fun _ -> Float.infinity) = None)

let test_doubling_until () =
  (* feasible up to 16 *)
  check "grows to 16" true
    (Search.doubling_until ~init:1 ~max:1024 ~feasible:(fun n -> n <= 16) = Some 16);
  check "capped by max" true
    (Search.doubling_until ~init:1 ~max:8 ~feasible:(fun _ -> true) = Some 8);
  check "infeasible at init" true
    (Search.doubling_until ~init:1 ~max:8 ~feasible:(fun _ -> false) = None);
  check "init beyond max" true
    (Search.doubling_until ~init:16 ~max:8 ~feasible:(fun _ -> true) = None);
  check "init equals max" true
    (Search.doubling_until ~init:8 ~max:8 ~feasible:(fun _ -> true) = Some 8);
  check "init must be positive" true
    (match Search.doubling_until ~init:0 ~max:8 ~feasible:(fun _ -> true) with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_powers_of_two () =
  Alcotest.(check (list int)) "powers" [ 32; 64; 128; 256; 512; 1024 ]
    (Search.powers_of_two ~lo:32 ~hi:1024);
  Alcotest.(check (list int)) "lo beyond hi" [] (Search.powers_of_two ~lo:16 ~hi:8);
  Alcotest.(check (list int)) "lo equals hi" [ 8 ] (Search.powers_of_two ~lo:8 ~hi:8);
  check "lo must be positive" true
    (match Search.powers_of_two ~lo:0 ~hi:8 with
     | exception Invalid_argument _ -> true
     | _ -> false)

let qcheck_doubling_is_power_times_init =
  QCheck.Test.make ~name:"doubling result is init times a power of two" ~count:200
    QCheck.(pair (int_range 1 8) (int_range 1 512))
    (fun (init, cap) ->
      match Search.doubling_until ~init ~max:2048 ~feasible:(fun n -> n <= cap) with
      | None -> cap < init
      | Some r ->
        let rec pow2 x = x = 1 || (x mod 2 = 0 && pow2 (x / 2)) in
        r mod init = 0 && pow2 (r / init) && r <= cap && (2 * r > cap || 2 * r > 2048))

(* ---- task-level DSE on a real kernel ---- *)

let prepared =
  lazy
    (let src =
       "const int N = 48;\n\
        void knl(const double* xs, double* out, int n) {\n\
        for (int i = 0; i < n; i++) { out[i] = sqrt(xs[i] + 1.0); }\n\
        }\n\
        int main() { double xs[N]; double out[N]; for (int i = 0; i < N; i++) { xs[i] = rand01(); } knl(xs, out, N); print_float(out[0]); return 0; }"
     in
     let p = Parser.parse_program src in
     let kp = Result.get_ok (Kprofile.collect p ~kernel:"knl") in
     (p, Kprofile.scale kp 4096))

let test_threads_dse () =
  let p, kp = Lazy.force prepared in
  let omp = Result.get_ok (Openmp.generate p ~kernel:"knl") in
  let r = Threads_dse.run Device.epyc_7543 kp omp.Openmp.omp_program ~kernel:"knl" in
  checki "selects all cores" 32 r.Threads_dse.td_threads;
  check "annotated" true
    (Openmp.num_threads r.Threads_dse.td_program ~kernel:"knl" = Some 32);
  check "sweep covers 1..32" true (List.mem_assoc 1 r.Threads_dse.td_sweep)

let test_blocksize_dse () =
  let p, kp = Lazy.force prepared in
  let hip = Result.get_ok (Hip.generate p ~kernel:"knl") in
  let ks =
    Result.get_ok
      (Kstatic.of_kernel hip.Hip.hip_program ~fname:hip.Hip.hip_body_fn ~thread_index:"i")
  in
  let r =
    Blocksize_dse.run Device.rtx_2080_ti ks kp ~base:Gpu_model.default_params
      hip.Hip.hip_program ~launch_fn:hip.Hip.hip_launch_fn
  in
  check "power of two" true (List.mem r.Blocksize_dse.bd_blocksize [ 32; 64; 128; 256; 512; 1024 ]);
  check "annotation updated" true
    (Hip.blocksize r.Blocksize_dse.bd_program ~launch_fn:hip.Hip.hip_launch_fn
     = Some r.Blocksize_dse.bd_blocksize);
  check "chosen is best in sweep" true
    (List.for_all
       (fun (_, t) -> t >= r.Blocksize_dse.bd_estimate.Gpu_model.ge_time_s -. 1e-12)
       r.Blocksize_dse.bd_sweep)

let test_unroll_dse_fits () =
  let p, kp = Lazy.force prepared in
  let one = Result.get_ok (Oneapi.generate p ~kernel:"knl") in
  let ks = Result.get_ok (Kstatic.of_kernel one.Oneapi.oneapi_program ~fname:one.Oneapi.oneapi_kernel_fn) in
  let r =
    Unroll_dse.run Device.pac_stratix10 ks kp ~zero_copy:false one.Oneapi.oneapi_program
      ~kernel_fn:one.Oneapi.oneapi_kernel_fn
  in
  (match r.Unroll_dse.ud_unroll with
   | Some u ->
     check "unroll > 1 for tiny kernel" true (u > 1);
     checki "annotated" u
       (Unroll.outer_unroll_factor r.Unroll_dse.ud_program ~kernel:one.Oneapi.oneapi_kernel_fn)
   | None -> Alcotest.fail "tiny kernel must fit");
  check "trace visits increasing factors" true
    (let factors = List.map fst r.Unroll_dse.ud_trace in
     factors = List.sort_uniq compare factors)

let test_unroll_dse_overmap () =
  (* a kernel with hundreds of transcendental sites overmaps at unroll 1 *)
  let body =
    String.concat "\n"
      (List.init 60 (fun k ->
           Printf.sprintf "out[i] = out[i] + exp(xs[i] * %d.0);" (k + 1)))
  in
  let src =
    Printf.sprintf
      "const int N = 4;\n\
       void knl(const double* xs, double* out, int n) {\n\
       for (int i = 0; i < n; i++) { out[i] = 0.0;\n%s\n } }\n\
       int main() { double xs[N]; double out[N]; for (int i = 0; i < N; i++) { xs[i] = rand01() * 0.01; } knl(xs, out, N); print_float(out[0]); return 0; }"
      body
  in
  let p = Parser.parse_program src in
  let kp = Result.get_ok (Kprofile.collect p ~kernel:"knl") in
  let ks = Result.get_ok (Kstatic.of_kernel p ~fname:"knl") in
  let r = Unroll_dse.run Device.pac_arria10 ks kp ~zero_copy:false p ~kernel_fn:"knl" in
  check "overmapped at unroll 1" true (r.Unroll_dse.ud_unroll = None);
  check "estimate marks infeasible" true r.Unroll_dse.ud_estimate.Fpga_model.fe_overmapped

let suite =
  [
    Alcotest.test_case "sweep minimises" `Quick test_sweep_minimises;
    Alcotest.test_case "sweep skips infinite" `Quick test_sweep_skips_infinite;
    Alcotest.test_case "sweep empty" `Quick test_sweep_empty;
    Alcotest.test_case "sweep all infinite" `Quick test_sweep_all_infinite;
    Alcotest.test_case "doubling until" `Quick test_doubling_until;
    Alcotest.test_case "powers of two" `Quick test_powers_of_two;
    QCheck_alcotest.to_alcotest qcheck_doubling_is_power_times_init;
    Alcotest.test_case "threads DSE" `Quick test_threads_dse;
    Alcotest.test_case "blocksize DSE" `Quick test_blocksize_dse;
    Alcotest.test_case "unroll DSE fits" `Quick test_unroll_dse_fits;
    Alcotest.test_case "unroll DSE overmap" `Quick test_unroll_dse_overmap;
  ]
