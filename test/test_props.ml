(* Differential property tests: randomly generated (well-typed, total)
   kernels are pushed through the frontend, rewriter and interpreter, and
   through complete flow transforms, checking semantic preservation and
   classification invariants. *)

let check = Alcotest.(check bool)

(* ---- a generator of safe straight-line loop kernels ----

   Programs have the shape

     const int N = 16;
     int main() {
       double x[N]; double y[N];
       <init loop>
       for (int i = 0; i < N; i++) { <random statements> }
       <checksum print>
     }

   Expressions are double-valued, built from x[i], i, literals and locals;
   square roots and divisions are guarded so evaluation is total. *)

module Gen = struct
  open QCheck.Gen

  (* [iv] is the loop index variable the leaves may read — "i" at the
     outer level, "jK" inside a generated inner loop *)
  let leaf ?(iv = "i") locals =
    oneof
      ([
         map (fun n -> Printf.sprintf "%.2f" (float_of_int n /. 4.0)) (1 -- 40);
         return (Printf.sprintf "x[%s]" iv);
         return (Printf.sprintf "(double)%s" iv);
       ]
      @ List.map return locals)

  let rec expr ?iv locals depth =
    if depth = 0 then leaf ?iv locals
    else
      frequency
        [
          (3, leaf ?iv locals);
          ( 4,
            map3
              (fun op a b -> Printf.sprintf "(%s %s %s)" a op b)
              (oneofl [ "+"; "-"; "*" ])
              (expr ?iv locals (depth - 1))
              (expr ?iv locals (depth - 1)) );
          (1, map (fun a -> Printf.sprintf "sqrt(fabs(%s) + 1.0)" a) (expr ?iv locals (depth - 1)));
          ( 1,
            map2
              (fun a b -> Printf.sprintf "(%s / (fabs(%s) + 1.0))" a b)
              (expr ?iv locals (depth - 1))
              (expr ?iv locals (depth - 1)) );
        ]

  (* boolean guards: comparisons between guarded double expressions *)
  let cond locals =
    map3
      (fun op a b -> Printf.sprintf "%s %s %s" a op b)
      (oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ])
      (expr locals 2) (expr locals 2)

  let stmt idx locals =
    let e = expr locals 3 in
    let c = cond locals in
    let j = Printf.sprintf "j%d" idx in
    frequency
      [
        (3, map (fun e -> (Printf.sprintf "double t%d = %s;" idx e, Some (Printf.sprintf "t%d" idx))) e);
        (3, map (fun e -> (Printf.sprintf "y[i] = %s;" e, None)) e);
        (3, map (fun e -> (Printf.sprintf "y[i] += %s;" e, None)) e);
        ( 2,
          map3
            (fun c a b ->
              ( Printf.sprintf "double t%d = (%s) ? %s : %s;" idx c a b,
                Some (Printf.sprintf "t%d" idx) ))
            c e e );
        ( 2,
          map3
            (fun c a b ->
              (Printf.sprintf "if (%s) { y[i] += %s; } else { y[i] -= %s; }" c a b, None))
            c e e );
        ( 1,
          map2
            (fun c a -> (Printf.sprintf "if (%s) { y[i] = %s; }" c a, None))
            c e );
        ( 2,
          map2
            (fun inner lim ->
              ( Printf.sprintf "for (int %s = 0; %s < %d; %s++) { y[i] += %s; }" j j
                  lim j inner,
                None ))
            (expr ~iv:j locals 2) (2 -- 8) );
        ( 1,
          map2
            (fun c inner ->
              ( Printf.sprintf
                  "if (%s) { for (int %s = 0; %s < 4; %s++) { y[i] += %s; } }" c j j
                  j inner,
                None ))
            c
            (expr ~iv:j locals 2) );
      ]

  let body =
    let rec build idx locals n acc =
      if n = 0 then return (List.rev acc)
      else
        stmt idx locals >>= fun (line, binds) ->
        let locals = match binds with Some t -> t :: locals | None -> locals in
        build (idx + 1) locals (n - 1) (line :: acc)
    in
    2 -- 6 >>= fun n -> build 0 [] n []

  let program =
    map
      (fun lines ->
        Printf.sprintf
          "const int N = 16;\n\
           int main() {\n\
           double x[N];\n\
           double y[N];\n\
           for (int i = 0; i < N; i++) { x[i] = rand01() + 0.5; y[i] = 0.0; }\n\
           for (int i = 0; i < N; i++) {\n%s\n}\n\
           double checksum = 0.0;\n\
           for (int i = 0; i < N; i++) { checksum += y[i]; }\n\
           print_float(checksum);\n\
           return 0; }"
          (String.concat "\n" lines))
      body
end

let arbitrary_program = QCheck.make Gen.program ~print:Fun.id

let parse = Parser.parse_program

let prop_roundtrip_stable =
  QCheck.Test.make ~name:"generated kernels: print/parse round trip is stable"
    ~count:120 arbitrary_program (fun src ->
      let p = parse src in
      let t1 = Pretty.program_to_string p in
      let t2 = Pretty.program_to_string (parse t1) in
      String.equal t1 t2)

let prop_typechecks =
  QCheck.Test.make ~name:"generated kernels typecheck" ~count:120 arbitrary_program
    (fun src -> Typecheck.check_program (parse src) = Ok ())

let prop_deterministic =
  QCheck.Test.make ~name:"interpretation is deterministic" ~count:60
    arbitrary_program (fun src ->
      let p = parse src in
      (Machine.run p).Machine.output = (Machine.run p).Machine.output)

let prop_renumber_preserves_semantics =
  QCheck.Test.make ~name:"Ast.renumber preserves semantics" ~count:60
    arbitrary_program (fun src ->
      let p = parse src in
      (Machine.run p).Machine.output = (Machine.run (Ast.renumber p)).Machine.output)

let prop_identity_rewrite =
  QCheck.Test.make ~name:"identity expression rewrite is the identity" ~count:60
    arbitrary_program (fun src ->
      let p = parse src in
      let p' = Rewrite.map_exprs (fun _ -> None) p in
      String.equal (Pretty.program_to_string p) (Pretty.program_to_string p'))

let prop_output_finite =
  QCheck.Test.make ~name:"guarded kernels produce finite checksums" ~count:60
    arbitrary_program (fun src ->
      match (Machine.run (parse src)).Machine.output with
      | [ s ] -> (match float_of_string_opt s with Some f -> Float.is_finite f | None -> false)
      | _ -> false)

let prop_region_counters_bounded =
  QCheck.Test.make ~name:"region counters never exceed whole-program counters"
    ~count:40 arbitrary_program (fun src ->
      (* outline the compute loop and profile it as a region *)
      let p = parse src in
      match Hotspot.detect p with
      | [] -> true
      | h :: _ ->
        (match Hotspot.extract p ~sid:h.Hotspot.hs_sid ~kernel_name:"knl" with
         | Error _ -> true (* extraction legitimately refuses some shapes *)
         | Ok ex ->
           let config =
             { Machine.default_config with regions = [ Machine.Rfunc "knl" ] }
           in
           let r = Machine.run ~config ex.Hotspot.ex_program in
           (match Machine.find_region_stats r (Machine.Rfunc "knl") with
            | None -> true
            | Some rs ->
              Counters.flops rs.Machine.rs_counters <= Counters.flops r.Machine.counters
              && Counters.bytes rs.Machine.rs_counters <= Counters.bytes r.Machine.counters)))

let prop_extraction_preserves_semantics =
  QCheck.Test.make ~name:"hotspot extraction preserves program output" ~count:40
    arbitrary_program (fun src ->
      let p = parse src in
      match Hotspot.detect p with
      | [] -> true
      | h :: _ ->
        (match Hotspot.extract p ~sid:h.Hotspot.hs_sid ~kernel_name:"knl" with
         | Error _ -> true
         | Ok ex ->
           (Machine.run p).Machine.output = (Machine.run ex.Hotspot.ex_program).Machine.output))

let prop_scalarize_preserves_semantics =
  QCheck.Test.make ~name:"scalarisation preserves program output" ~count:40
    arbitrary_program (fun src ->
      let p = parse src in
      let loops = Query.loops p in
      let p' =
        List.fold_left
          (fun p (lm : Query.loop_match) ->
            Scalarize.apply p ~loop_sid:lm.lm_stmt.Ast.sid)
          p loops
      in
      (Machine.run p).Machine.output = (Machine.run p').Machine.output)

(* SIV classification: a[i + k] = a[i] is carried iff k <> 0 *)
let prop_siv_distance =
  QCheck.Test.make ~name:"SIV test: shifted self-assignment carried iff shift nonzero"
    ~count:60
    QCheck.(int_range (-3) 3)
    (fun k ->
      let src =
        Printf.sprintf
          "void f(double* a, int n) { for (int i = 3; i < n - 3; i++) { a[i + %d] = a[i] + 1.0; } }"
          k
      in
      let p = parse src in
      let v = Dependence.analyse_loop p (List.hd (Query.loops p)) in
      if k = 0 then v.Dependence.parallel_with_reductions
      else not v.Dependence.parallel_with_reductions)

(* the OpenMP design of any parallel generated kernel stays equivalent *)
let prop_openmp_design_equivalent =
  QCheck.Test.make ~name:"OpenMP designs of generated kernels are equivalent" ~count:30
    arbitrary_program (fun src ->
      let p = parse src in
      match Hotspot.detect p with
      | [] -> true
      | h :: _ ->
        (match Hotspot.extract p ~sid:h.Hotspot.hs_sid ~kernel_name:"knl" with
         | Error _ -> true
         | Ok ex ->
           (match Openmp.generate ex.Hotspot.ex_program ~kernel:"knl" with
            | Error _ -> true (* non-parallel shapes are legitimately rejected *)
            | Ok r ->
              (Machine.run p).Machine.output
              = (Machine.run r.Openmp.omp_program).Machine.output)))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_roundtrip_stable;
      prop_typechecks;
      prop_deterministic;
      prop_renumber_preserves_semantics;
      prop_identity_rewrite;
      prop_output_finite;
      prop_region_counters_bounded;
      prop_extraction_preserves_semantics;
      prop_scalarize_preserves_semantics;
      prop_siv_distance;
      prop_openmp_design_equivalent;
    ]

let _ = check
