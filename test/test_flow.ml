(* Tests for the PSA-flow core: graph execution with branch points, the
   codified task repository, the informed strategy (Fig. 3), the engine
   end-to-end on every benchmark (test workloads), cost models, and the
   experiment harnesses. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ---- graph semantics ---- *)

let tag name =
  Task.make ~name ~kind:Task.Transform ~scope:Task.Target_independent (fun art ->
      Ok (Artifact.log art name))

let failing name =
  Task.make ~name ~kind:Task.Transform ~scope:Task.Target_independent (fun _ ->
      Error "boom")

let dummy_artifact () = Artifact.create Nbody.app ~workload:[ ("N", 8); ("STEPS", 1) ]

let test_graph_seq_order () =
  let node = Graph.Seq [ Graph.Task (tag "a"); Graph.Task (tag "b") ] in
  match Graph.run node (dummy_artifact ()) with
  | Ok [ oc ] ->
    let log = oc.Graph.oc_artifact.Artifact.art_log in
    check "a before b" true
      (match log with "a" :: _ :: "b" :: _ -> true | _ -> false)
  | _ -> Alcotest.fail "one outcome expected"

let test_graph_task_error_aborts () =
  let node = Graph.Seq [ Graph.Task (tag "a"); Graph.Task (failing "bad") ] in
  match Graph.run node (dummy_artifact ()) with
  | Error msg -> check "error names task" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "should fail"

let branch name paths select = Graph.Branch { Graph.bp_name = name; bp_select = select; bp_paths = paths }

let test_graph_branch_select_one () =
  let node =
    branch "A" [ ("x", Graph.Task (tag "x")); ("y", Graph.Task (tag "y")) ]
      (fun _ -> Graph.select [ "y" ])
  in
  match Graph.run node (dummy_artifact ()) with
  | Ok [ oc ] ->
    check "path recorded" true (oc.Graph.oc_path = [ ("A", "y") ])
  | _ -> Alcotest.fail "one outcome"

let test_graph_branch_select_all () =
  let node =
    branch "A" [ ("x", Graph.Task (tag "x")); ("y", Graph.Task (tag "y")) ]
      Graph.select_all
  in
  match Graph.run node (dummy_artifact ()) with
  | Ok outcomes -> checki "fan out" 2 (List.length outcomes)
  | Error e -> Alcotest.fail e

let test_graph_branch_unknown_path () =
  let node = branch "A" [ ("x", Graph.Task (tag "x")) ] (fun _ -> Graph.select [ "zz" ]) in
  match Graph.run node (dummy_artifact ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown path must error"

let test_graph_branch_empty_selection_prunes () =
  let node = branch "A" [ ("x", Graph.Task (tag "x")) ] (fun _ -> Graph.select []) in
  match Graph.run node (dummy_artifact ()) with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty selection should prune"

let test_graph_nested_branches () =
  let inner = branch "B" [ ("p", Graph.Task (tag "p")); ("q", Graph.Task (tag "q")) ] Graph.select_all in
  let node = branch "A" [ ("x", inner) ] (fun _ -> Graph.select [ "x" ]) in
  match Graph.run node (dummy_artifact ()) with
  | Ok outcomes ->
    checki "two leaves" 2 (List.length outcomes);
    check "paths composed" true
      (List.for_all
         (fun oc -> List.length oc.Graph.oc_path = 2)
         outcomes)
  | Error e -> Alcotest.fail e

let test_graph_with_select () =
  let node =
    branch "A" [ ("x", Graph.Task (tag "x")); ("y", Graph.Task (tag "y")) ]
      (fun _ -> Graph.select [ "x" ])
  in
  let node = Graph.with_select node ~branch:"A" Graph.select_all in
  match Graph.run node (dummy_artifact ()) with
  | Ok outcomes -> checki "now fans out" 2 (List.length outcomes)
  | Error e -> Alcotest.fail e

let test_graph_tasks_listing () =
  let node = Graph.Seq [ Graph.Task (tag "a"); branch "A" [ ("x", Graph.Task (tag "x")) ] Graph.select_all ] in
  checki "two tasks" 2 (List.length (Graph.tasks node))

(* ---- repository (Fig. 4 shape) ---- *)

let test_repository_counts () =
  let repo = Pipeline.repository in
  let by_scope scope =
    List.length (List.filter (fun (t : Task.t) -> t.Task.scope = scope) repo)
  in
  checki "eight target-independent tasks" 8 (by_scope Task.Target_independent);
  check "has GPU tasks" true (by_scope Task.Gpu_scope >= 5);
  check "has FPGA tasks" true (by_scope Task.Fpga_scope >= 4);
  checki "two CPU tasks" 2 (by_scope Task.Cpu_omp);
  check "device-specific DSE tasks" true
    (by_scope (Task.Gpu_device "1080") = 1
     && by_scope (Task.Gpu_device "2080") = 1
     && by_scope (Task.Fpga_device "A10") = 1);
  (* names from the paper's table must be present *)
  let names = List.map (fun (t : Task.t) -> t.Task.name) repo in
  List.iter
    (fun expected -> check expected true (List.mem expected names))
    [
      "Identify Hotspot Loops"; "Hotspot Loop Extraction"; "Pointer Analysis";
      "Arithmetic Intensity Analysis"; "Data In/Out Analysis";
      "Loop Dependence Analysis"; "Loop Trip-Count Analysis";
      "Remove Array += Dependency"; "Generate oneAPI Design";
      "Unroll Fixed Loops"; "Zero-Copy Data Transfer"; "Generate HIP Design";
      "Employ HIP Pinned Memory"; "Introduce Shared Mem Buf";
      "Employ Specialised Math Fns"; "Multi-Thread Parallel Loops";
      "OMP Num. Threads DSE";
    ]

let test_repository_dynamic_flags () =
  let dynamic =
    List.filter_map
      (fun (t : Task.t) -> if t.Task.dynamic then Some t.Task.name else None)
      Pipeline.repository
  in
  (* the paper's clock-marked tasks *)
  List.iter
    (fun name -> check name true (List.mem name dynamic))
    [ "Identify Hotspot Loops"; "Pointer Analysis"; "Data In/Out Analysis";
      "Loop Trip-Count Analysis" ]

(* ---- informed PSA on every benchmark ---- *)

let analysed_artifacts = Hashtbl.create 8

let analysed app =
  match Hashtbl.find_opt analysed_artifacts (app : App.t).app_slug with
  | Some art -> art
  | None ->
    let art = Artifact.create app ~workload:app.App.app_test_overrides in
    (match Graph.run Pipeline.target_independent art with
     | Ok [ oc ] ->
       Hashtbl.replace analysed_artifacts app.App.app_slug oc.Graph.oc_artifact;
       oc.Graph.oc_artifact
     | Ok _ -> Alcotest.fail "unexpected fan-out"
     | Error e -> Alcotest.fail e)

let decision app =
  match Psa.decide (analysed app) with
  | Ok d -> d.Psa.dec_path
  | Error e -> Alcotest.fail e

let test_psa_nbody_gpu () = checks "nbody -> gpu" "gpu" (decision Nbody.app)
let test_psa_kmeans_cpu () = checks "kmeans -> cpu" "cpu" (decision Kmeans.app)
let test_psa_adpredictor_fpga () = checks "adpredictor -> fpga" "fpga" (decision Adpredictor.app)
let test_psa_rush_larsen_gpu () = checks "rush larsen -> gpu" "gpu" (decision Rush_larsen.app)
let test_psa_bezier_gpu () = checks "bezier -> gpu" "gpu" (decision Bezier.app)

let test_psa_reasons_nonempty () =
  match Psa.decide (analysed Nbody.app) with
  | Ok d -> check "has reasoning trail" true (List.length d.Psa.dec_reasons >= 3)
  | Error e -> Alcotest.fail e

let test_psa_threshold_sensitivity () =
  (* with an absurdly high X everything is memory-bound: nbody falls to cpu *)
  let config = { Psa.default_config with Psa.x_threshold = 1e12 } in
  match Psa.decide ~config (analysed Nbody.app) with
  | Ok d -> checks "nbody under huge X" "cpu" d.Psa.dec_path
  | Error e -> Alcotest.fail e

let test_psa_missing_facts () =
  let art = Artifact.create Nbody.app ~workload:[] in
  match Psa.decide art with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must demand analysis facts"

(* ---- engine end-to-end (test workloads) ---- *)

let engine_reports = Hashtbl.create 8

let report ?(mode = Pipeline.Uninformed) app =
  let key = ((app : App.t).app_slug, mode) in
  match Hashtbl.find_opt engine_reports key with
  | Some r -> r
  | None ->
    (match Engine.run ~workload:app.App.app_test_overrides ~mode app with
     | Ok r ->
       Hashtbl.replace engine_reports key r;
       r
     | Error e -> Alcotest.fail e)

let test_engine_uninformed_counts () =
  (* uninformed mode yields 5 designs; Rush Larsen's FPGA ones are present
     but infeasible *)
  List.iter
    (fun (app : App.t) ->
      let r = report app in
      checki (app.app_slug ^ " designs") 5 (List.length r.Engine.rep_designs))
    Suite.all

let test_engine_designs_valid () =
  List.iter
    (fun (app : App.t) ->
      let r = report app in
      List.iter
        (fun (d : Design.t) ->
          check
            (Printf.sprintf "%s %s output valid" app.app_slug (Target.short d.Design.d_target))
            true d.Design.d_valid)
        r.Engine.rep_designs)
    Suite.all

let test_engine_rush_larsen_fpga_infeasible () =
  let r = report Rush_larsen.app in
  List.iter
    (fun short ->
      match Engine.design_for r ~short with
      | Some d -> check (short ^ " infeasible") false d.Design.d_feasible
      | None -> Alcotest.fail "design missing")
    [ "oneAPI A10"; "oneAPI S10" ]

let test_engine_rush_larsen_keeps_dp () =
  let r = report Rush_larsen.app in
  match Engine.design_for r ~short:"HIP 2080Ti" with
  | Some d -> check "precision guard kept DP" false d.Design.d_sp
  | None -> Alcotest.fail "design missing"

let test_engine_informed_single_branch () =
  let r = report ~mode:Pipeline.Informed Kmeans.app in
  checki "one design on cpu branch" 1 (List.length r.Engine.rep_designs);
  match r.Engine.rep_designs with
  | [ d ] -> check "it is OMP" true (Target.short d.Design.d_target = "OMP")
  | _ -> Alcotest.fail "expected one design"

let test_engine_loc_positive () =
  let r = report Nbody.app in
  List.iter
    (fun (d : Design.t) ->
      check "adds code" true (d.Design.d_loc_added_pct > 0.0))
    r.Engine.rep_designs

let test_engine_omp_cheapest_loc () =
  let r = report Bezier.app in
  let loc short =
    match Engine.design_for r ~short with
    | Some d -> d.Design.d_loc_added_pct
    | None -> Alcotest.fail "missing"
  in
  check "OMP adds least code" true
    (loc "OMP" < loc "HIP 2080Ti" && loc "OMP" < loc "oneAPI A10")

let test_engine_speedups_positive () =
  let r = report Nbody.app in
  List.iter
    (fun (d : Design.t) ->
      if d.Design.d_feasible then
        check "speedup defined" true
          (match d.Design.d_speedup with Some s -> s > 0.0 | None -> false))
    r.Engine.rep_designs

let test_engine_best_design () =
  let r = report Nbody.app in
  match Engine.best_design r with
  | Some best ->
    List.iter
      (fun (d : Design.t) ->
        match d.Design.d_speedup, best.Design.d_speedup with
        | Some s, Some sb -> check "best is max" true (sb +. 1e-9 >= s)
        | _, _ -> ())
      r.Engine.rep_designs
  | None -> Alcotest.fail "no best design"

(* ---- targets and pipeline shape ---- *)

let test_target_labels () =
  let omp = Target.Omp { threads = 16 } in
  checks "omp label" "OpenMP CPU (16 threads)" (Target.label omp);
  checks "omp short" "OMP" (Target.short omp);
  let gpu = Target.Gpu { spec = Device.gtx_1080_ti; params = Gpu_model.default_params } in
  checks "gpu short" "HIP 1080Ti" (Target.short gpu);
  let fpga = Target.Fpga { spec = Device.pac_stratix10; params = Fpga_model.default_params } in
  checks "fpga short" "oneAPI S10" (Target.short fpga);
  check "device names distinct" true
    (Target.device_name gpu <> Target.device_name fpga)

let test_graph_to_dot () =
  let dot = Graph.to_dot (Pipeline.full_flow Pipeline.Uninformed) in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check "digraph" true (contains "digraph" dot);
  check "branch A diamond" true (contains "branch A" dot);
  check "task box" true (contains "Identify Hotspot Loops" dot);
  check "edge labels" true (contains "label=\"fpga\"" dot)

let test_pipeline_shape () =
  (* branch point A must offer exactly the three paper targets *)
  let rec find_branch name = function
    | Graph.Task _ -> None
    | Graph.Seq nodes -> List.find_map (find_branch name) nodes
    | Graph.Branch bp ->
      if bp.Graph.bp_name = name then Some bp
      else List.find_map (fun (_, n) -> find_branch name n) bp.Graph.bp_paths
  in
  let flow = Pipeline.full_flow Pipeline.Uninformed in
  (match find_branch "A" flow with
   | Some bp ->
     Alcotest.(check (list string)) "branch A paths" [ "cpu"; "gpu"; "fpga" ]
       (List.map fst bp.Graph.bp_paths)
   | None -> Alcotest.fail "no branch A");
  (match find_branch "B" flow with
   | Some bp ->
     Alcotest.(check (list string)) "branch B devices" [ "A10"; "S10" ]
       (List.map fst bp.Graph.bp_paths)
   | None -> Alcotest.fail "no branch B");
  match find_branch "C" flow with
  | Some bp ->
    Alcotest.(check (list string)) "branch C devices" [ "1080"; "2080" ]
      (List.map fst bp.Graph.bp_paths)
  | None -> Alcotest.fail "no branch C"

(* ---- cost ---- *)

let test_cost_monetary () =
  let target = Target.Omp { threads = 32 } in
  Alcotest.(check (float 1e-12)) "1 hour at cpu price" 2.0
    (Cost.monetary_cost Cost.default_pricing target ~time_s:3600.0)

let test_cost_relative_and_crossover () =
  Alcotest.(check (float 1e-12)) "relative cost" 1.0
    (Cost.relative_cost ~fpga_s:1.0 ~gpu_s:2.0 ~price_ratio:2.0);
  Alcotest.(check (float 1e-12)) "crossover" 2.0
    (Cost.crossover_ratio ~fpga_s:1.0 ~gpu_s:2.0)

let test_cost_budget () =
  let target = Target.Omp { threads = 32 } in
  check "within" true
    (Cost.within_budget Cost.default_pricing target ~time_s:1.0 ~budget:1.0);
  check "over" false
    (Cost.within_budget Cost.default_pricing target ~time_s:1e6 ~budget:0.01)

let test_cost_cheapest () =
  let omp = Target.Omp { threads = 32 } in
  let gpu = Target.Gpu { spec = Device.rtx_2080_ti; params = Gpu_model.default_params } in
  match Cost.cheapest Cost.default_pricing [ (omp, 10.0); (gpu, 1.0) ] with
  | Some (t, _, _) -> check "gpu cheaper here" true (t == gpu)
  | None -> Alcotest.fail "no answer"

(* ---- budget feedback (Fig. 3's cost evaluation loop) ---- *)

let test_budget_generous_keeps_decision () =
  let app = Kmeans.app in
  match
    Engine.run_budgeted ~workload:app.App.app_test_overrides ~budget:1000.0 app
  with
  | Error e -> Alcotest.fail e
  | Ok br ->
    check "within budget" true br.Engine.br_within_budget;
    checki "first attempt accepted" 1 (List.length br.Engine.br_attempts);
    (match br.Engine.br_accepted with
     | Some a -> checks "keeps informed branch" "cpu" a.Engine.at_branch
     | None -> Alcotest.fail "no accepted attempt")

let test_budget_zero_falls_through () =
  let app = Kmeans.app in
  match Engine.run_budgeted ~workload:app.App.app_test_overrides ~budget:0.0 app with
  | Error e -> Alcotest.fail e
  | Ok br ->
    check "over budget" false br.Engine.br_within_budget;
    check "tried every branch" true (List.length br.Engine.br_attempts >= 3);
    (match br.Engine.br_accepted with
     | Some a ->
       (* the fallback is the cheapest attempt overall *)
       List.iter
         (fun (x : Engine.attempt) ->
           match x.Engine.at_cost, a.Engine.at_cost with
           | Some cx, Some ca -> check "cheapest chosen" true (ca <= cx +. 1e-18)
           | _, _ -> ())
         br.Engine.br_attempts
     | None -> Alcotest.fail "fallback expected")

let test_budget_attempt_costs_consistent () =
  let app = Nbody.app in
  match Engine.run_budgeted ~workload:app.App.app_test_overrides ~budget:1e-7 app with
  | Error e -> Alcotest.fail e
  | Ok br ->
    List.iter
      (fun (a : Engine.attempt) ->
        match a.Engine.at_design, a.Engine.at_cost with
        | Some d, Some c ->
          let t = Option.get d.Design.d_time_s in
          let expected =
            Cost.monetary_cost br.Engine.br_pricing d.Design.d_target ~time_s:t
          in
          Alcotest.(check (float 1e-15)) "cost = price x time" expected c
        | _, _ -> ())
      br.Engine.br_attempts

(* ---- bring-your-own-program generality ---- *)

(* the flow must work on programs outside the benchmark suite: a 1D Jacobi
   smoothing stencil (parallel map with +-1 neighbour reads, memory-bound) *)
let stencil_app =
  {
    App.app_name = "Jacobi Stencil (user program)";
    app_slug = "stencil";
    app_descr = "three-point smoothing over a 1D field";
    app_source =
      "const int N = 2048;\n\
       const int SWEEPS = 4;\n\
       int main() {\n\
       double a[N];\n\
       double b[N];\n\
       for (int i = 0; i < N; i++) { a[i] = rand01(); b[i] = 0.0; }\n\
       for (int s = 0; s < SWEEPS; s++) {\n\
       for (int i = 1; i < N - 1; i++) {\n\
       b[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];\n\
       }\n\
       for (int i = 1; i < N - 1; i++) { a[i] = b[i]; }\n\
       }\n\
       double checksum = 0.0;\n\
       for (int i = 0; i < N; i++) { checksum += a[i]; }\n\
       print_float(checksum);\n\
       return 0; }";
    app_eval_overrides = [ ("N", 8192); ("SWEEPS", 8) ];
    app_test_overrides = [ ("N", 1024); ("SWEEPS", 2) ];
    app_outer_scale = 16;
  }

let test_user_program_informed () =
  match
    Engine.run ~workload:stencil_app.App.app_test_overrides ~mode:Pipeline.Informed
      stencil_app
  with
  | Error e -> Alcotest.fail e
  | Ok rep ->
    (* a three-flop-per-24-byte stencil is memory-bound: CPU branch *)
    checks "stencil -> cpu" "cpu" rep.Engine.rep_decision.Psa.dec_path;
    List.iter
      (fun (d : Design.t) -> check "valid design" true d.Design.d_valid)
      rep.Engine.rep_designs

let test_user_program_uninformed () =
  match
    Engine.run ~workload:stencil_app.App.app_test_overrides ~mode:Pipeline.Uninformed
      stencil_app
  with
  | Error e -> Alcotest.fail e
  | Ok rep ->
    checki "five designs for a user program" 5 (List.length rep.Engine.rep_designs);
    List.iter
      (fun (d : Design.t) ->
        check
          (Printf.sprintf "stencil %s valid" (Target.short d.Design.d_target))
          true d.Design.d_valid)
      rep.Engine.rep_designs

(* ---- learned PSA (future-work extension) ---- *)

let test_ml_features_extraction () =
  match Psa_ml.features_of (analysed Nbody.app) with
  | Error e -> Alcotest.fail e
  | Ok ft ->
    check "parallel flag" true (ft.Psa_ml.ft_outer_parallel = 1.0);
    check "dep inner flag" true (ft.Psa_ml.ft_dep_inner = 1.0);
    check "intensity positive" true (ft.Psa_ml.ft_log_intensity > 0.0);
    checki "vector dims" 7 (Array.length (Psa_ml.to_vector ft))

let test_ml_features_require_analysis () =
  match Psa_ml.features_of (Artifact.create Nbody.app ~workload:[]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must require analyses"

let ml_examples () =
  List.filter_map (fun (a : App.t) -> Psa_ml.label_of_report (report a)) Suite.all

let test_ml_training_and_recall () =
  let examples = ml_examples () in
  checki "five labelled examples" 5 (List.length examples);
  match Psa_ml.train examples with
  | Error e -> Alcotest.fail e
  | Ok model ->
    (* 1-NN must recall its own training points *)
    List.iter
      (fun (e : Psa_ml.example) ->
        checks "recall" e.Psa_ml.ex_label (Psa_ml.predict model e.Psa_ml.ex_features))
      examples;
    check "labels cover all three branches" true
      (List.sort compare (Psa_ml.labels model) = [ "cpu"; "fpga"; "gpu" ])

let test_ml_leave_one_out_vs_informed () =
  (* with one benchmark held out, the learned strategy should agree with
     the hand-written Fig. 3 tree on most of the suite *)
  let examples = ml_examples () in
  let agreements = ref 0 in
  List.iteri
    (fun i (held : Psa_ml.example) ->
      let training = List.filteri (fun j _ -> j <> i) examples in
      match Psa_ml.train training with
      | Error e -> Alcotest.fail e
      | Ok model ->
        if Psa_ml.predict model held.Psa_ml.ex_features = held.Psa_ml.ex_label then
          incr agreements)
    examples;
  check "leave-one-out accuracy >= 3/5" true (!agreements >= 3)

let test_ml_strategy_pluggable () =
  let examples = ml_examples () in
  let model = Result.get_ok (Psa_ml.train examples) in
  match Psa_ml.strategy model (analysed Kmeans.app) with
  | Ok { Graph.sel_paths = [ branch ]; _ } -> checks "kmeans stays on cpu" "cpu" branch
  | Ok _ -> Alcotest.fail "one branch expected"
  | Error e -> Alcotest.fail e

let test_ml_empty_training () =
  check "empty training rejected" true
    (match Psa_ml.train [] with Error _ -> true | Ok _ -> false)

(* ---- runtime scheduler (Section IV-D extension) ---- *)

let sched_alternatives () = Scheduler.alternatives_of_report (report Bezier.app)

let jobs n = List.init n (fun i -> { Scheduler.job_id = i; job_scale = 1.0 })

let default_pool = { Scheduler.cpu_instances = 1; gpu_instances = 1; fpga_instances = 1 }

let test_scheduler_alternatives () =
  check "several alternatives" true (List.length (sched_alternatives ()) >= 4)

let test_scheduler_min_cost_vs_makespan () =
  let alternatives = sched_alternatives () in
  let js = jobs 12 in
  let cost_s =
    Result.get_ok
      (Scheduler.run ~policy:Scheduler.Min_cost ~pool:default_pool ~alternatives js)
  in
  let fast_s =
    Result.get_ok
      (Scheduler.run ~policy:Scheduler.Min_makespan ~pool:default_pool ~alternatives js)
  in
  check "min-cost never dearer" true
    (cost_s.Scheduler.sc_total_cost <= fast_s.Scheduler.sc_total_cost +. 1e-15);
  check "min-makespan never slower" true
    (fast_s.Scheduler.sc_makespan_s <= cost_s.Scheduler.sc_makespan_s +. 1e-12)

let test_scheduler_parallelism_helps () =
  let alternatives = sched_alternatives () in
  let js = jobs 8 in
  let one =
    Result.get_ok
      (Scheduler.run ~policy:Scheduler.Min_makespan
         ~pool:{ Scheduler.cpu_instances = 0; gpu_instances = 1; fpga_instances = 0 }
         ~alternatives js)
  in
  let two =
    Result.get_ok
      (Scheduler.run ~policy:Scheduler.Min_makespan
         ~pool:{ Scheduler.cpu_instances = 0; gpu_instances = 2; fpga_instances = 0 }
         ~alternatives js)
  in
  check "two instances halve the makespan" true
    (two.Scheduler.sc_makespan_s < 0.6 *. one.Scheduler.sc_makespan_s)

let test_scheduler_job_scale () =
  let alternatives = sched_alternatives () in
  let s1 =
    Result.get_ok
      (Scheduler.run ~policy:Scheduler.Min_makespan ~pool:default_pool ~alternatives
         [ { Scheduler.job_id = 0; job_scale = 1.0 } ])
  in
  let s2 =
    Result.get_ok
      (Scheduler.run ~policy:Scheduler.Min_makespan ~pool:default_pool ~alternatives
         [ { Scheduler.job_id = 0; job_scale = 3.0 } ])
  in
  Alcotest.(check (float 1e-9)) "time scales with the job"
    (3.0 *. s1.Scheduler.sc_makespan_s) s2.Scheduler.sc_makespan_s

let test_scheduler_empty_pool () =
  check "empty pool rejected" true
    (match
       Scheduler.run ~policy:Scheduler.Min_cost
         ~pool:{ Scheduler.cpu_instances = 0; gpu_instances = 0; fpga_instances = 0 }
         ~alternatives:(sched_alternatives ()) (jobs 1)
     with
     | Error _ -> true
     | Ok _ -> false)

let test_scheduler_render () =
  let sc =
    Result.get_ok
      (Scheduler.run ~policy:Scheduler.Min_cost ~pool:default_pool
         ~alternatives:(sched_alternatives ()) (jobs 3))
  in
  check "renders" true (String.length (Scheduler.render sc) > 100)

(* ---- experiments harnesses (on the quick reports) ---- *)

let all_reports = lazy (List.map (fun a -> report a) Suite.all)

let test_fig5_rows () =
  let rows = Fig5.of_reports (Lazy.force all_reports) in
  checki "five rows" 5 (List.length rows);
  let rl = List.find (fun r -> r.Fig5.f5_app = "rush_larsen") rows in
  check "rl fpga bars absent" true (rl.Fig5.f5_a10 = None && rl.Fig5.f5_s10 = None);
  check "render mentions apps" true (String.length (Fig5.render rows) > 200)

let test_fig5_informed_matches_best () =
  let rows = Fig5.of_reports (Lazy.force all_reports) in
  List.iter
    (fun r -> check (r.Fig5.f5_app ^ " informed=best") true r.Fig5.f5_informed_is_best)
    rows

let test_table1_rows () =
  let rows = Table1.of_reports (Lazy.force all_reports) in
  checki "five rows" 5 (List.length rows);
  let avg = Table1.average rows in
  check "average omp small" true
    (match avg.Table1.t1_omp with Some v -> v < 25.0 | None -> false);
  let rl = List.find (fun r -> r.Table1.t1_app = "rush_larsen") rows in
  check "rl fpga loc excluded" true (rl.Table1.t1_a10 = None)

let test_fig6_series () =
  let series = Fig6.of_reports (Lazy.force all_reports) in
  (* rush larsen lacks FPGA designs: at most 4 series *)
  check "some series" true (List.length series >= 3);
  List.iter
    (fun s ->
      check "monotone in price ratio" true
        (let costs = List.map snd s.Fig6.f6_points in
         List.sort compare costs = costs);
      check "crossover positive" true (s.Fig6.f6_crossover > 0.0))
    series

let test_ablation_smoke () =
  (match Ablation.fpga ~quick:true Adpredictor.app with
   | Error e -> Alcotest.fail e
   | Ok rows ->
     check "several variants" true (List.length rows >= 4);
     let full = List.find (fun r -> r.Ablation.ab_variant = "full") rows in
     check "full has a time" true (full.Ablation.ab_time_s <> None);
     let unrolls =
       List.find (fun r -> r.Ablation.ab_variant = "without Unroll Fixed Loops") rows
     in
     check "fixed-loop unrolling matters" true
       (match unrolls.Ablation.ab_slowdown with Some s -> s > 1.5 | None -> false);
     check "renders" true (String.length (Ablation.render ~title:"t" rows) > 80))

let test_report_rendering () =
  let r = report Kmeans.app in
  check "table renders" true (String.length (Report.design_table r) > 100);
  check "decision text" true (String.length (Report.decision_text r) > 40);
  check "summary" true (String.length (Report.summary_line r) > 20)

let suite =
  [
    Alcotest.test_case "graph seq order" `Quick test_graph_seq_order;
    Alcotest.test_case "graph task error aborts" `Quick test_graph_task_error_aborts;
    Alcotest.test_case "graph branch select one" `Quick test_graph_branch_select_one;
    Alcotest.test_case "graph branch select all" `Quick test_graph_branch_select_all;
    Alcotest.test_case "graph unknown path" `Quick test_graph_branch_unknown_path;
    Alcotest.test_case "graph empty selection" `Quick test_graph_branch_empty_selection_prunes;
    Alcotest.test_case "graph nested branches" `Quick test_graph_nested_branches;
    Alcotest.test_case "graph with_select" `Quick test_graph_with_select;
    Alcotest.test_case "graph tasks listing" `Quick test_graph_tasks_listing;
    Alcotest.test_case "repository counts" `Quick test_repository_counts;
    Alcotest.test_case "repository dynamic flags" `Quick test_repository_dynamic_flags;
    Alcotest.test_case "psa nbody gpu" `Quick test_psa_nbody_gpu;
    Alcotest.test_case "psa kmeans cpu" `Quick test_psa_kmeans_cpu;
    Alcotest.test_case "psa adpredictor fpga" `Quick test_psa_adpredictor_fpga;
    Alcotest.test_case "psa rush larsen gpu" `Quick test_psa_rush_larsen_gpu;
    Alcotest.test_case "psa bezier gpu" `Quick test_psa_bezier_gpu;
    Alcotest.test_case "psa reasons" `Quick test_psa_reasons_nonempty;
    Alcotest.test_case "psa threshold sensitivity" `Quick test_psa_threshold_sensitivity;
    Alcotest.test_case "psa missing facts" `Quick test_psa_missing_facts;
    Alcotest.test_case "engine uninformed counts" `Slow test_engine_uninformed_counts;
    Alcotest.test_case "engine designs valid" `Slow test_engine_designs_valid;
    Alcotest.test_case "engine rush larsen fpga n/a" `Slow test_engine_rush_larsen_fpga_infeasible;
    Alcotest.test_case "engine rush larsen keeps DP" `Slow test_engine_rush_larsen_keeps_dp;
    Alcotest.test_case "engine informed single branch" `Slow test_engine_informed_single_branch;
    Alcotest.test_case "engine loc positive" `Slow test_engine_loc_positive;
    Alcotest.test_case "engine omp least loc" `Slow test_engine_omp_cheapest_loc;
    Alcotest.test_case "engine speedups positive" `Slow test_engine_speedups_positive;
    Alcotest.test_case "engine best design" `Slow test_engine_best_design;
    Alcotest.test_case "target labels" `Quick test_target_labels;
    Alcotest.test_case "pipeline shape" `Quick test_pipeline_shape;
    Alcotest.test_case "graph to dot" `Quick test_graph_to_dot;
    Alcotest.test_case "cost monetary" `Quick test_cost_monetary;
    Alcotest.test_case "cost relative/crossover" `Quick test_cost_relative_and_crossover;
    Alcotest.test_case "cost budget" `Quick test_cost_budget;
    Alcotest.test_case "cost cheapest" `Quick test_cost_cheapest;
    Alcotest.test_case "budget generous" `Slow test_budget_generous_keeps_decision;
    Alcotest.test_case "budget zero falls through" `Slow test_budget_zero_falls_through;
    Alcotest.test_case "budget cost consistency" `Slow test_budget_attempt_costs_consistent;
    Alcotest.test_case "fig5 rows" `Slow test_fig5_rows;
    Alcotest.test_case "fig5 informed=best" `Slow test_fig5_informed_matches_best;
    Alcotest.test_case "table1 rows" `Slow test_table1_rows;
    Alcotest.test_case "fig6 series" `Slow test_fig6_series;
    Alcotest.test_case "user program informed" `Slow test_user_program_informed;
    Alcotest.test_case "user program uninformed" `Slow test_user_program_uninformed;
    Alcotest.test_case "ml features" `Slow test_ml_features_extraction;
    Alcotest.test_case "ml features need analysis" `Quick test_ml_features_require_analysis;
    Alcotest.test_case "ml training recall" `Slow test_ml_training_and_recall;
    Alcotest.test_case "ml leave-one-out" `Slow test_ml_leave_one_out_vs_informed;
    Alcotest.test_case "ml strategy pluggable" `Slow test_ml_strategy_pluggable;
    Alcotest.test_case "ml empty training" `Quick test_ml_empty_training;
    Alcotest.test_case "scheduler alternatives" `Slow test_scheduler_alternatives;
    Alcotest.test_case "scheduler cost vs makespan" `Slow test_scheduler_min_cost_vs_makespan;
    Alcotest.test_case "scheduler parallelism" `Slow test_scheduler_parallelism_helps;
    Alcotest.test_case "scheduler job scale" `Slow test_scheduler_job_scale;
    Alcotest.test_case "scheduler empty pool" `Slow test_scheduler_empty_pool;
    Alcotest.test_case "scheduler render" `Slow test_scheduler_render;
    Alcotest.test_case "ablation smoke" `Slow test_ablation_smoke;
    Alcotest.test_case "report rendering" `Slow test_report_rendering;
  ]
