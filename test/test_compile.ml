(* Differential tests for the non-walker interpreter backends: the
   closure-compiled backend and the superinstruction VM must both be
   observably bit-identical to the reference tree-walker on every
   program — output, counters, loop/region stats, alias verdicts, final
   memory, and raised exceptions.  Every parity check below runs the
   full walker/compiled/VM triangle. *)

let check = Alcotest.(check bool)

let parse = Parser.parse_program

(* Observable projection of a result.  Hashtbl-fold-built assoc lists are
   sorted by key so ordering differences (there are none today, since both
   backends populate the tables in the same first-touch order, but the
   comparison should not depend on that) cannot cause false alarms.
   Memory is projected to (name, elem_ty, contents) per base: both
   backends allocate in the same program order, so bases line up. *)
type observation = {
  o_ret : Value.t option;
  o_output : string list;
  o_counters : Counters.t;
  o_loops : (int * (int * int * Counters.t)) list;
  o_regions :
    (Machine.region * (int * Counters.t * (string * int * int * int) list * int * int))
    list;
  o_aliases : (string * bool) list;
  o_memory : (string * Ast.ty * float array) list;
}

let observe (r : Machine.result) : observation =
  let mem = r.Machine.memory in
  let arrays = ref [] in
  for base = Memory.array_count mem - 1 downto 0 do
    arrays :=
      (Memory.name mem base, Memory.elem_ty mem base, Memory.to_float_array mem base)
      :: !arrays
  done;
  {
    o_ret = r.Machine.ret;
    o_output = r.Machine.output;
    o_counters = r.Machine.counters;
    o_loops =
      List.sort compare
        (List.map
           (fun (sid, (ls : Machine.loop_stats)) ->
             (sid, (ls.Machine.ls_entries, ls.Machine.ls_iterations, ls.Machine.ls_counters)))
           r.Machine.loop_stats);
    o_regions =
      List.sort compare
        (List.map
           (fun (rg, (rs : Machine.region_stats)) ->
             ( rg,
               ( rs.Machine.rs_invocations,
                 rs.Machine.rs_counters,
                 List.sort compare
                   (List.map
                      (fun (t : Machine.array_traffic) ->
                        ( t.Machine.at_name,
                          t.Machine.at_elem_bytes,
                          t.Machine.at_read_elems,
                          t.Machine.at_written_elems ))
                      rs.Machine.rs_traffic),
                 rs.Machine.rs_bytes_in,
                 rs.Machine.rs_bytes_out ) ))
           r.Machine.region_stats);
    o_aliases = List.sort compare r.Machine.aliased_funcs;
    o_memory = !arrays;
  }

(* run one backend, capturing normal results and exceptions uniformly *)
type outcome =
  | Completed of observation
  | Failed of Loc.t * string
  | Out_of_steps

let run_backend backend config p : outcome =
  match Machine.run ~config ~backend p with
  | r -> Completed (observe r)
  | exception Machine.Runtime_error (loc, msg) -> Failed (loc, msg)
  | exception Machine.Step_limit_exceeded -> Out_of_steps

let outcomes_equal a b =
  match a, b with
  | Completed oa, Completed ob -> compare oa ob = 0
  | Failed (la, ma), Failed (lb, mb) -> la = lb && String.equal ma mb
  | Out_of_steps, Out_of_steps -> true
  | _ -> false

let agree ?(config = Machine.default_config) p =
  let reference = run_backend `Ast config p in
  outcomes_equal reference (run_backend `Compiled config p)
  && outcomes_equal reference (run_backend `Vm config p)

let agree_src ?config src = agree ?config (parse src)

(* a config that exercises every profiling observable at once *)
let full_config (p : Ast.program) =
  let fnames = List.map (fun f -> f.Ast.fname) (Ast.funcs p) in
  let sids = List.map (fun (lm : Query.loop_match) -> lm.Query.lm_stmt.Ast.sid) (Query.loops p) in
  {
    Machine.default_config with
    profile_loops = true;
    trace_aliases = true;
    regions =
      List.map (fun f -> Machine.Rfunc f) fnames
      @ List.map (fun s -> Machine.Rstmt s) sids;
  }

(* ---- the five suite applications ---- *)

let test_suite_apps () =
  List.iter
    (fun (app : App.t) ->
      let p = App.program app in
      let config =
        {
          (full_config p) with
          overrides = App.machine_overrides app.App.app_test_overrides;
        }
      in
      check
        (Printf.sprintf "backends agree on %s (fully profiled)" app.App.app_slug)
        true
        (agree ~config p))
    Suite.all

let test_suite_apps_plain () =
  List.iter
    (fun (app : App.t) ->
      let p = App.program app in
      let config =
        {
          Machine.default_config with
          overrides = App.machine_overrides app.App.app_test_overrides;
        }
      in
      check (Printf.sprintf "backends agree on %s (no profiling)" app.App.app_slug)
        true (agree ~config p))
    Suite.all

(* ---- targeted parity cases ---- *)

let test_shadowing () =
  check "inner decl shadows, outer restored" true
    (agree_src
       {|
int main() {
  int x = 1;
  { int x = 2; print_int(x); }
  print_int(x);
  for (int i = 0; i < 3; i++) { double x = 0.5; print_float(x + (double)i); }
  print_int(x);
  return 0;
}|})

let test_use_before_decl () =
  (* a use before the local declaration resolves to the outer binding in
     both backends *)
  check "use before declaration sees outer binding" true
    (agree_src
       {|
int g = 7;
int main() {
  print_int(g);
  int h = g + 1;
  int g = 100;
  print_int(g);
  print_int(h);
  return 0;
}|})

let test_early_return_and_break () =
  check "early return / break / continue" true
    (agree_src
       {|
int f(int n) {
  for (int i = 0; i < n; i++) {
    if (i == 3) { break; }
    if (i == 1) { continue; }
    if (n > 10) { return -1; }
    print_int(i);
  }
  return n;
}
int main() {
  print_int(f(5));
  print_int(f(20));
  while (true) { break; }
  return 0;
}|})

let test_numeric_semantics () =
  (* mixed precision, casts, bool arrays, integral Mod on floats, compound
     ops: the corners where the compiled specializations must match the
     dynamic walker exactly *)
  check "numeric corner cases" true
    (agree_src
       {|
int main() {
  bool flags[4];
  flags[0] = 0.5;
  flags[1] = true;
  flags[2] = 0.0;
  flags[3] = 3;
  int ones = 0;
  for (int i = 0; i < 4; i++) { if (flags[i]) { ones += 1; } }
  print_int(ones);
  double d = 7.9;
  float s = 7.9f;
  int t = (int)d;
  print_int(t);
  print_int(d % 3);
  print_float((double)s);
  float arr[3];
  arr[0] = 1.0000001;
  arr[1] = (float)(1.0 / 3.0);
  arr[2] = 2;
  double acc = 0.0;
  for (int i = 0; i < 3; i++) { acc += arr[i]; }
  print_float(acc);
  int k = 10;
  k /= 3;
  k *= -2;
  print_int(k);
  d -= 0.5f;
  s += 1;
  print_float(d);
  print_float((double)s);
  int ia[2];
  ia[0] = 41;
  ia[1] = 2;
  ia[0] += 1;
  ia[1] *= 3;
  print_int(ia[0] + ia[1]);
  print_float(fabs(-2.5) + fminf(1.0f, 2.0f) + (double)imax(3, 4));
  print_float(1.0 ? 2.0 : 3.0);
  print_int(true ? 1 : 0);
  return 0;
}|})

let test_alias_tracing () =
  let src =
    {|
double sum2(double* a, double* b, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) { s += a[i] + b[i]; }
  return s;
}
int main() {
  double x[8];
  double y[8];
  for (int i = 0; i < 8; i++) { x[i] = (double)i; y[i] = 1.0; }
  print_float(sum2(x, y, 8));
  print_float(sum2(x, x, 8));
  return 0;
}|}
  in
  let p = parse src in
  check "alias verdicts agree" true (agree ~config:(full_config p) p);
  (* and positively: the compiled backend detects the aliasing call *)
  let config = { (full_config p) with trace_aliases = true } in
  let r = Machine.run ~config ~backend:`Compiled p in
  check "compiled backend flags sum2 as aliased" true
    (List.assoc_opt "sum2" r.Machine.aliased_funcs = Some true)

let test_global_overrides () =
  let p =
    parse
      {|
const int N = 4;
double scale = 0.5;
int main() {
  double acc = 0.0;
  for (int i = 0; i < N; i++) { acc += scale * (double)i; }
  print_float(acc);
  return 0;
}|}
  in
  let config =
    { Machine.default_config with overrides = [ ("N", Value.Vint 6) ] }
  in
  check "global override respected identically" true (agree ~config p);
  (* the walker skips evaluating the overridden initializer; so must we *)
  let r = Machine.run ~config ~backend:`Compiled p in
  check "override value used" true (r.Machine.output = [ "7.5" ])

let test_error_parity () =
  let cases =
    [
      ("div by zero", "int main() { int a = 1; int b = 0; print_int(a / b); return 0; }");
      ("mod by zero", "int main() { int a = 1; int b = 0; print_int(a % b); return 0; }");
      ( "oob read",
        "int main() { double a[4]; print_float(a[7]); return 0; }" );
      ( "oob write",
        "int main() { double a[4]; for (int i = 0; i <= 4; i++) { a[i] = 1.0; } return 0; }" );
      ( "unknown intrinsic",
        "int main() { print_int(mystery(3)); return 0; }" );
      ( "arity mismatch",
        "int f(int a, int b) { return a + b; } int main() { print_int(f(1)); return 0; }" );
      ( "negative alloc",
        "int main() { int n = 0 - 3; double a[n]; return 0; }" );
    ]
  in
  List.iter (fun (name, src) -> check name true (agree_src src)) cases

let test_step_limit_parity () =
  let src =
    {|
int main() {
  int acc = 0;
  for (int i = 0; i < 1000; i++) { acc += i; acc += 1; acc += 2; }
  print_int(acc);
  return 0;
}|}
  in
  let p = parse src in
  (* sweep budgets across segment boundaries: the batched budget must
     raise exactly when per-statement ticking would *)
  for max_steps = 1 to 60 do
    let config = { Machine.default_config with max_steps } in
    check (Printf.sprintf "step budget %d" max_steps) true (agree ~config p)
  done;
  (* and at a coarser grain across the whole run *)
  List.iter
    (fun max_steps ->
      let config = { Machine.default_config with max_steps } in
      check (Printf.sprintf "step budget %d" max_steps) true (agree ~config p))
    [ 100; 1000; 2000; 5000; 5999; 6000; 6007; 8000 ]

let test_step_count_identical () =
  (* same program, all backends complete: identical total steps *)
  List.iter
    (fun (app : App.t) ->
      let config =
        {
          Machine.default_config with
          overrides = App.machine_overrides app.App.app_test_overrides;
        }
      in
      let p = App.program app in
      let sa = (Machine.run ~config ~backend:`Ast p).Machine.counters.Counters.steps in
      let sc = (Machine.run ~config ~backend:`Compiled p).Machine.counters.Counters.steps in
      let sv = (Machine.run ~config ~backend:`Vm p).Machine.counters.Counters.steps in
      Alcotest.(check int) (app.App.app_slug ^ " steps") sa sc;
      Alcotest.(check int) (app.App.app_slug ^ " steps (vm)") sa sv)
    Suite.all

let test_recursion () =
  check "recursion and mutual calls" true
    (agree_src
       {|
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
int main() {
  print_int(fib(12));
  print_int(is_even(9));
  print_int(is_odd(9));
  return 0;
}|})

let test_prng_stream () =
  (* PRNG draws must interleave identically with all other evaluation *)
  check "rand01 stream order" true
    (agree_src
       {|
int main() {
  double a = rand01() + rand01() * rand01();
  double b = rand01() < 0.5 ? rand01() : rand01() + 1.0;
  print_float(a);
  print_float(b);
  print_float(rand01());
  return 0;
}|})

let test_exec_stats_accumulate () =
  Machine.reset_exec_stats ();
  let p = parse "int main() { print_int(1 + 2); return 0; }" in
  ignore (Machine.run p);
  ignore (Machine.run ~backend:`Ast p);
  let s = Machine.exec_stats () in
  Alcotest.(check int) "two runs recorded" 2 s.Machine.exec_runs;
  check "steps accumulated" true (s.Machine.exec_steps > 0);
  check "time accumulated" true (s.Machine.exec_seconds >= 0.0)

let test_default_backend_switch () =
  let saved = Machine.default_backend () in
  Machine.set_default_backend `Ast;
  check "default backend switched" true (Machine.default_backend () = `Ast);
  Machine.set_default_backend saved;
  check "backend names round-trip" true
    (Machine.backend_of_string (Machine.backend_name `Ast) = Some `Ast
    && Machine.backend_of_string (Machine.backend_name `Compiled) = Some `Compiled
    && Machine.backend_of_string (Machine.backend_name `Vm) = Some `Vm
    && Machine.backend_of_string "nope" = None)

(* ---- fault-injection parity across backends ---- *)

(* the first line of --explain/--why names the active backend; drop it so
   the rest of the trail can be compared byte-for-byte across backends *)
let drop_backend_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

let test_fault_report_backend_invariant () =
  (* an injected task fault must prune the same branch with the same
     provenance whatever backend interprets the programs: faults fire on
     task sites, never on interpreter internals *)
  let observe backend =
    let saved = Machine.default_backend () in
    Machine.set_default_backend backend;
    Fun.protect
      ~finally:(fun () -> Machine.set_default_backend saved)
      (fun () ->
        (match Util.Faultsim.parse "task:GPU-2080" with
         | Ok spec -> Util.Faultsim.arm spec
         | Error e -> Alcotest.fail e);
        Fun.protect ~finally:Util.Faultsim.disarm (fun () ->
            (* drop the in-memory task/run caches so every backend's run
               actually interprets instead of replaying a cached result *)
            Cache.clear_memory ();
            match
              Engine.run ~workload:Nbody.app.App.app_test_overrides
                ~mode:Pipeline.Uninformed Nbody.app
            with
            | Error e -> Alcotest.fail e
            | Ok rep ->
              ( List.map
                  (fun (d : Design.t) -> Target.short d.Design.d_target)
                  rep.Engine.rep_designs,
                Report.failures_text rep,
                drop_backend_line (Report.why_text rep) )))
  in
  let da, fa, wa = observe `Ast in
  let dc, fc, wc = observe `Compiled in
  let dv, fv, wv = observe `Vm in
  check "fault prunes a branch" true (fa <> "");
  check "designs identical (compiled)" true (da = dc);
  check "designs identical (vm)" true (da = dv);
  Alcotest.(check string) "failure lines identical (compiled)" fa fc;
  Alcotest.(check string) "failure lines identical (vm)" fa fv;
  Alcotest.(check string) "why trails identical (compiled)" wa wc;
  Alcotest.(check string) "why trails identical (vm)" wa wv

(* ---- loop-nest lowering: coverage and budget parity ---- *)

(* a K-Means-shaped kernel: a three-level nest with an if site, a ternary
   site and loop-carried scalars, small enough to sweep step budgets
   across every outer-iteration boundary *)
let nest_src =
  {|
const int N = 8;
int main() {
  double a[N];
  double b[N];
  for (int i = 0; i < N; i++) { a[i] = (double)i * 0.25; b[i] = 0.0; }
  double acc = 0.0;
  for (int it = 0; it < 4; it++) {
    for (int i = 0; i < N; i++) {
      double best = 1.0e9;
      for (int k = 0; k < 4; k++) {
        double d = a[i] - (double)k;
        double d2 = d * d;
        if (d2 < best) { best = d2; }
      }
      b[i] += best;
      acc += (i < 4) ? best : 0.5 * best;
    }
  }
  double checksum = acc;
  for (int i = 0; i < N; i++) { checksum += b[i]; }
  print_float(checksum);
  return 0;
}|}

let test_nest_planned_coverage () =
  let p = parse nest_src in
  (* the lowering pass plans the whole three-level nest including both
     control-flow sites *)
  let outcomes = Ir_lower.plan_report p in
  check "three-level nest planned" true
    (List.exists
       (function
         | _, Ir_lower.Planned { levels; sites } -> levels = 3 && sites = 2
         | _ -> false)
       outcomes);
  check "no unplannable loops" true
    (List.for_all
       (function _, Ir_lower.Planned _ -> true | _ -> false)
       outcomes);
  (* and the VM executes nearly all statements on the planned path *)
  let before = Machine.planned_steps () in
  let r = Machine.run ~backend:`Vm p in
  let planned = Machine.planned_steps () - before in
  let total = r.Machine.counters.Counters.steps in
  check "planned steps bounded by total" true (planned <= total && planned > 0);
  check "step coverage >= 0.9" true
    (float_of_int planned >= 0.9 *. float_of_int total)

let test_nest_budget_bail_parity () =
  (* sweep the step budget across the whole run, hitting every
     outer-iteration boundary of the planned nest: the guard's budget
     bail is pre-effect, so walker, compiled and VM must abort at exactly
     the same statement with identical partial state — and budgets
     between the guard's worst-case site accounting and the actual cost
     exercise bail-then-complete on the closure path with all counters
     observable *)
  let p = parse nest_src in
  let total =
    (Machine.run ~backend:`Ast p).Machine.counters.Counters.steps
  in
  for max_steps = 1 to 100 do
    let config = { Machine.default_config with max_steps } in
    check (Printf.sprintf "nest budget %d" max_steps) true (agree ~config p)
  done;
  List.iter
    (fun max_steps ->
      let config = { Machine.default_config with max_steps } in
      check (Printf.sprintf "nest budget %d" max_steps) true (agree ~config p))
    (List.concat_map
       (fun d -> [ (total / 4) + d; (total / 2) + d; total + d ])
       [ -2; -1; 0; 1 ]);
  (* profiled, the nest bails to the closure path pre-effect: same sweep *)
  List.iter
    (fun max_steps ->
      let config = { (full_config p) with max_steps } in
      check
        (Printf.sprintf "nest budget %d (profiled)" max_steps)
        true (agree ~config p))
    [ 10; 50; (total / 2) + 1; total - 1; total + 50 ]

(* ---- random-program differential property ---- *)

let prop_backends_agree =
  QCheck.Test.make
    ~name:"compiled and vm backends agree with walker on random kernels"
    ~count:150 Test_props.arbitrary_program (fun src ->
      let p = parse src in
      agree ~config:(full_config p) p)

(* unprofiled, the VM actually executes random nests/ifs/ternaries on the
   planned fast path instead of bailing to the closure fallback *)
let prop_backends_agree_plain =
  QCheck.Test.make
    ~name:"backends agree on random kernels (unprofiled, planned nests)"
    ~count:150 Test_props.arbitrary_program (fun src -> agree (parse src))

let suite =
  [
    Alcotest.test_case "suite apps fully profiled" `Quick test_suite_apps;
    Alcotest.test_case "suite apps unprofiled" `Quick test_suite_apps_plain;
    Alcotest.test_case "scope shadowing" `Quick test_shadowing;
    Alcotest.test_case "use before declaration" `Quick test_use_before_decl;
    Alcotest.test_case "early return and break" `Quick test_early_return_and_break;
    Alcotest.test_case "numeric corner cases" `Quick test_numeric_semantics;
    Alcotest.test_case "alias tracing" `Quick test_alias_tracing;
    Alcotest.test_case "global overrides" `Quick test_global_overrides;
    Alcotest.test_case "error parity" `Quick test_error_parity;
    Alcotest.test_case "step limit parity" `Quick test_step_limit_parity;
    Alcotest.test_case "step counts identical" `Quick test_step_count_identical;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "prng stream order" `Quick test_prng_stream;
    Alcotest.test_case "exec stats accumulate" `Quick test_exec_stats_accumulate;
    Alcotest.test_case "default backend switch" `Quick test_default_backend_switch;
    Alcotest.test_case "fault report backend-invariant" `Slow
      test_fault_report_backend_invariant;
    Alcotest.test_case "nest planned coverage" `Quick test_nest_planned_coverage;
    Alcotest.test_case "nest budget-bail parity" `Quick test_nest_budget_bail_parity;
    QCheck_alcotest.to_alcotest prop_backends_agree;
    QCheck_alcotest.to_alcotest prop_backends_agree_plain;
  ]
